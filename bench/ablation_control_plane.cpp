/// Ablation: control plane — executed engine events and host wall time,
/// poll vs watch (DESIGN.md §10). The poll plane burns a periodic event
/// budget proportional to simulated time (RM scheduler passes, agent
/// store polls, heartbeats) whether or not anything changed; the watch
/// plane wakes only on store mutations, lease renewals and a slow
/// quiescent fallback. Two cells bracket the spectrum:
///
///  - idle-heavy: the RP-YARN stack on long tasks — lots of simulated
///    time, very few state changes. This is where polling hurts and the
///    issue's >= 10x event-reduction criterion is checked.
///  - 4k-unit:    the plain stack on 4,000 tiny units — event count is
///    dominated by real work, so the two planes should be close.
///
/// Both modes must complete the identical unit set (same output
/// checksum); the digest is order-insensitive so the check is exact.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.h"

namespace {

using namespace hoh;
using analytics::KmeansExperimentConfig;
using analytics::KmeansExperimentResult;

struct CellOutcome {
  KmeansExperimentResult result;
  double wall_ms = 0.0;
};

CellOutcome run_cell(KmeansExperimentConfig cfg, common::ControlPlane plane) {
  cfg.control_plane = plane;
  CellOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.result = analytics::run_kmeans_experiment(cfg);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return out;
}

/// Idle-heavy: RP-YARN on the 1M-point scenario — long map/reduce tasks,
/// so simulated time dwarfs the number of state changes.
KmeansExperimentConfig idle_heavy_config() {
  KmeansExperimentConfig cfg;
  cfg.machine = cluster::stampede_profile();
  cfg.scheduler = hpc::SchedulerKind::kSlurm;
  cfg.scenario = analytics::scenario_1m_points();
  cfg.nodes = 3;
  cfg.tasks = 4;
  cfg.yarn_stack = true;
  return cfg;
}

/// 4k units: plain stack, 1000 tasks x 2 phases x 2 iterations of tiny
/// work — the event count is dominated by the units themselves. (Larger
/// unit counts hit the scheduler's quadratic host-time scan and push the
/// pilot past its walltime; 4k keeps the run complete and quick.)
KmeansExperimentConfig four_k_unit_config() {
  KmeansExperimentConfig cfg;
  cfg.machine = cluster::stampede_profile();
  cfg.scheduler = hpc::SchedulerKind::kSlurm;
  cfg.scenario = analytics::scenario_10k_points();
  cfg.scenario.iterations = 2;
  cfg.nodes = 8;
  cfg.tasks = 1000;
  cfg.yarn_stack = false;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::print_header(
      "Ablation: control plane — executed engine events, poll vs watch",
      "control-plane refactor (DESIGN.md §10): periodic polling vs "
      "watch/notify state store with event-driven wakeups");

  struct Cell {
    const char* name;
    KmeansExperimentConfig cfg;
  };
  const Cell cells[] = {
      {"idle-heavy", idle_heavy_config()},
      {"4k-unit", four_k_unit_config()},
  };

  std::string json = "{\n  \"cells\": [\n";
  bool first_cell = true;
  std::printf("%-12s %-6s %14s %12s %8s %10s %s\n", "cell", "mode",
              "engine events", "ttc (s)", "units", "wall (ms)", "checksum");
  for (const Cell& cell : cells) {
    const CellOutcome poll = run_cell(cell.cfg, common::ControlPlane::kPoll);
    const CellOutcome watch =
        run_cell(cell.cfg, common::ControlPlane::kWatch);
    for (const auto* o : {&poll, &watch}) {
      const bool is_poll = o == &poll;
      std::printf("%-12s %-6s %14llu %12.1f %8zu %10.1f %s\n", cell.name,
                  is_poll ? "poll" : "watch",
                  static_cast<unsigned long long>(o->result.engine_events),
                  o->result.time_to_completion, o->result.units_completed,
                  o->wall_ms, o->result.output_checksum.c_str());
      if (!first_cell) json += ",\n";
      first_cell = false;
      json += "    {\"cell\": \"" + std::string(cell.name) +
              "\", \"mode\": \"" + (is_poll ? "poll" : "watch") +
              "\", \"engine_events\": " +
              std::to_string(o->result.engine_events) +
              ", \"time_to_completion_s\": " +
              std::to_string(o->result.time_to_completion) +
              ", \"units_completed\": " +
              std::to_string(o->result.units_completed) +
              ", \"wall_ms\": " + std::to_string(o->wall_ms) +
              ", \"ok\": " + (o->result.ok ? "true" : "false") +
              ", \"output_checksum\": \"" + o->result.output_checksum +
              "\"}";
    }
    const double reduction =
        watch.result.engine_events > 0
            ? static_cast<double>(poll.result.engine_events) /
                  static_cast<double>(watch.result.engine_events)
            : 0.0;
    const bool identical =
        poll.result.ok && watch.result.ok &&
        poll.result.output_checksum == watch.result.output_checksum;
    std::printf("%-12s        event reduction %.1fx, outputs %s\n\n",
                cell.name, reduction,
                identical ? "identical" : "DIFFER [FAILED]");
    if (!identical) return 1;
  }
  json += "\n  ]\n}\n";

  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
