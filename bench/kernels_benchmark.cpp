/// google-benchmark microbenchmarks of the *real* execution engines: the
/// four K-Means backends, the threaded MapReduce engine and the mini-RDD
/// engine. These measure host wall time (the engines do real work), in
/// contrast to the figure harnesses which report simulated seconds.

#include <benchmark/benchmark.h>

#include "analytics/graph.h"
#include "analytics/kmeans.h"
#include "analytics/trajectory.h"
#include "mapreduce/mr_engine.h"
#include "spark/rdd.h"

namespace {

using namespace hoh;
using namespace hoh::analytics;

const std::vector<Point3>& bench_points() {
  static const auto points = gaussian_blobs(20'000, 16, 7);
  return points;
}

void BM_KmeansSerial(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(kmeans_serial(bench_points(), 16, 2));
  }
}
BENCHMARK(BM_KmeansSerial);

void BM_KmeansThreaded(benchmark::State& state) {
  common::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kmeans_threaded(pool, bench_points(), 16, 2));
  }
}
BENCHMARK(BM_KmeansThreaded)->Arg(2)->Arg(4)->Arg(8);

void BM_KmeansMapReduce(benchmark::State& state) {
  common::ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kmeans_mapreduce(pool, bench_points(), 16, 2,
                         static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_KmeansMapReduce)->Arg(4)->Arg(16);

void BM_KmeansRdd(benchmark::State& state) {
  spark::SparkEnv env(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kmeans_rdd(env, bench_points(), 16, 2,
                   static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_KmeansRdd)->Arg(4)->Arg(16);

void BM_MapReduceWordCount(benchmark::State& state) {
  common::ThreadPool pool(4);
  std::vector<std::string> lines;
  for (int i = 0; i < 5000; ++i) {
    lines.push_back("alpha beta gamma delta w" + std::to_string(i % 97));
  }
  mapreduce::MrJob<std::string, std::string, int,
                   std::pair<std::string, int>>
      job;
  job.mapper = [](const std::string& line,
                  mapreduce::Emitter<std::string, int>& out) {
    std::string cur;
    for (char c : line) {
      if (c == ' ') {
        if (!cur.empty()) out.emit(cur, 1);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out.emit(cur, 1);
  };
  job.reducer = [](const std::string& k, const std::vector<int>& vs) {
    int sum = 0;
    for (int v : vs) sum += v;
    return std::pair<std::string, int>(k, sum);
  };
  job.map_tasks = 8;
  job.reduce_tasks = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapreduce::run_mr(pool, lines, job));
  }
}
BENCHMARK(BM_MapReduceWordCount);

// The RDD action benchmarks run against a cached lineage — the shape every
// iterative workload (K-Means, PageRank) has: materialize once, act many
// times. They isolate the cost of the action data path itself.
void BM_RddCollect(benchmark::State& state) {
  spark::SparkEnv env(4);
  std::vector<int> data(1'000'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>(i);
  }
  auto rdd = spark::Rdd<int>::parallelize(env, data, 16).cache();
  rdd.count();  // materialize the cache outside the timed region
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdd.collect());
  }
}
BENCHMARK(BM_RddCollect);

void BM_RddReduce(benchmark::State& state) {
  spark::SparkEnv env(4);
  std::vector<int> data(1'000'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>(i);
  }
  auto rdd = spark::Rdd<int>::parallelize(env, data, 16).cache();
  rdd.count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdd.reduce([](int a, int b) { return a + b; }));
  }
}
BENCHMARK(BM_RddReduce);

void BM_RddCount(benchmark::State& state) {
  spark::SparkEnv env(4);
  std::vector<int> data(1'000'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>(i);
  }
  auto rdd = spark::Rdd<int>::parallelize(env, data, 16).cache();
  rdd.count();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rdd.count());
  }
}
BENCHMARK(BM_RddCount);

void BM_RddPipeline(benchmark::State& state) {
  spark::SparkEnv env(4);
  std::vector<int> data(100'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<int>(i);
  }
  for (auto _ : state) {
    auto rdd = spark::Rdd<int>::parallelize(env, data, 16)
                   .map([](const int& x) { return x * 3; })
                   .filter([](const int& x) { return x % 2 == 0; });
    benchmark::DoNotOptimize(rdd.fold(0, [](int a, int b) { return a + b; }));
  }
}
BENCHMARK(BM_RddPipeline);

void BM_TriangleCounting(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto graph = preferential_attachment_graph(5'000, 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_triangles(pool, graph));
  }
}
BENCHMARK(BM_TriangleCounting);

void BM_PageRankThreaded(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto graph = preferential_attachment_graph(5'000, 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pagerank(pool, graph, 10));
  }
}
BENCHMARK(BM_PageRankThreaded);

void BM_PageRankRdd(benchmark::State& state) {
  spark::SparkEnv env(4);
  const auto graph = preferential_attachment_graph(1'000, 4, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pagerank_rdd(env, graph, 5));
  }
}
BENCHMARK(BM_PageRankRdd);

void BM_TrajectoryRgSeries(benchmark::State& state) {
  common::ThreadPool pool(4);
  const auto traj = generate_trajectory(500, 200, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rg_series(pool, traj));
  }
}
BENCHMARK(BM_TrajectoryRgSeries);

}  // namespace

BENCHMARK_MAIN();
