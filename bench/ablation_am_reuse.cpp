/// Ablation: Application-Master re-use — the optimization the paper
/// names as future work ("we will optimize this process by re-using the
/// YARN application master and containers, which will reduce the startup
/// time significantly"). Compares the paper's one-AM-per-unit default
/// against our pooled-AM extension, on Compute-Unit startup and on a full
/// Fig. 6 column. Times are simulated seconds.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace hoh;
  using namespace hoh::analytics;

  benchutil::print_header(
      "Ablation: YARN Application Master re-use (paper SS-V future work)",
      "AM re-use should cut CU startup significantly");

  // --- CU startup with and without re-use ---
  auto measure_cu_startup = [](bool reuse) {
    pilot::Session session;
    session.register_machine(cluster::stampede_profile(),
                             hpc::SchedulerKind::kSlurm, 4);
    pilot::PilotDescription pd;
    pd.resource = "slurm://stampede/";
    pd.nodes = 1;
    pd.runtime = 24 * 3600.0;
    pd.backend = pilot::AgentBackend::kYarnModeI;
    pilot::AgentConfig agent;
    agent.reuse_yarn_app = reuse;
    pilot::PilotManager pm(session);
    pilot::UnitManager um(session);
    auto p = pm.submit_pilot(pd, agent);
    um.add_pilot(p);
    // Warm the pilot (and, for re-use, the shared AM + wrapper caches).
    pilot::ComputeUnitDescription cud;
    cud.duration = 1.0;
    cud.memory_mb = 1024;
    um.submit(cud);
    while (!um.all_done() && session.engine().now() < 7200.0) {
      session.engine().run_until(session.engine().now() + 2.0);
    }
    // Measure 16 sequential probes.
    common::RunningStats stats;
    for (int i = 0; i < 16; ++i) {
      auto u = um.submit(cud);
      while (!um.all_done() && session.engine().now() < 72000.0) {
        session.engine().run_until(session.engine().now() + 1.0);
      }
      for (const auto& s : session.trace().find_spans("unit", "startup")) {
        if (s.key == u->id()) stats.add(s.duration());
      }
    }
    return stats.mean();
  };

  const double without = measure_cu_startup(false);
  const double with = measure_cu_startup(true);
  std::printf("%-36s %14s\n", "configuration", "CU startup (s)");
  std::printf("%-36s %14.1f\n", "one AM per unit (paper default)", without);
  std::printf("%-36s %14.1f\n", "pooled AM (extension)", with);
  std::printf("startup reduction: %.0f%%\n",
              100.0 * (without - with) / without);

  // --- effect on a Fig. 6 column (Stampede, 1M points) ---
  std::printf("\n%-10s %6s %18s %18s\n", "machine", "tasks",
              "per-unit AM (s)", "pooled AM (s)");
  for (const auto& [nodes, tasks] :
       {std::pair{1, 8}, std::pair{2, 16}, std::pair{3, 32}}) {
    double cell[2];
    for (bool reuse : {false, true}) {
      KmeansExperimentConfig cfg;
      cfg.machine = cluster::stampede_profile();
      cfg.scenario = scenario_1m_points();
      cfg.nodes = nodes;
      cfg.tasks = tasks;
      cfg.yarn_stack = true;
      cfg.reuse_yarn_app = reuse;
      const auto r = run_kmeans_experiment(cfg);
      if (!r.ok) {
        std::fprintf(stderr, "FAILED cell tasks=%d reuse=%d\n", tasks,
                     reuse);
        return 1;
      }
      cell[reuse ? 1 : 0] = r.time_to_completion;
    }
    std::printf("%-10s %6d %18.1f %18.1f\n", "stampede", tasks, cell[0],
                cell[1]);
  }
  return 0;
}
