/// Reproduces Fig. 5 (main panel): pilot/agent startup time for plain
/// RADICAL-Pilot vs RADICAL-Pilot-YARN Mode I (Hadoop on HPC) on Stampede
/// and Wrangler, plus Mode II (HPC on Hadoop) on Wrangler's dedicated
/// Hadoop environment. Startup is defined as in the paper: "the time
/// between RADICAL-Pilot-Agent start and the processing of the first
/// Compute-Unit". Times are simulated seconds on the virtual clock.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace hoh;
  using pilot::AgentBackend;

  benchutil::print_header(
      "Figure 5: Pilot startup time (seconds, simulated)",
      "RP ~40-50s; Mode I adds 50-85s bootstrap depending on resource; "
      "Mode II on Wrangler comparable to plain RP");

  struct Row {
    const char* machine;
    const char* config;
    double seconds;
  };
  std::vector<Row> rows;

  const auto stampede = cluster::stampede_profile();
  const auto wrangler = cluster::wrangler_profile();

  rows.push_back({"stampede", "RADICAL-Pilot",
                  benchutil::measure_startup(stampede,
                                             hpc::SchedulerKind::kSlurm,
                                             AgentBackend::kPlain)
                      .agent_startup});
  rows.push_back({"stampede", "RADICAL-Pilot-YARN (Mode I)",
                  benchutil::measure_startup(stampede,
                                             hpc::SchedulerKind::kSlurm,
                                             AgentBackend::kYarnModeI)
                      .agent_startup});
  rows.push_back({"wrangler", "RADICAL-Pilot",
                  benchutil::measure_startup(wrangler,
                                             hpc::SchedulerKind::kSge,
                                             AgentBackend::kPlain)
                      .agent_startup});
  rows.push_back({"wrangler", "RADICAL-Pilot-YARN (Mode I)",
                  benchutil::measure_startup(wrangler,
                                             hpc::SchedulerKind::kSge,
                                             AgentBackend::kYarnModeI)
                      .agent_startup});
  rows.push_back({"wrangler", "RADICAL-Pilot-YARN (Mode II)",
                  benchutil::measure_startup(wrangler,
                                             hpc::SchedulerKind::kSge,
                                             AgentBackend::kYarnModeII)
                      .agent_startup});
  // Extension beyond the figure: the Spark standalone bootstrap path.
  rows.push_back({"stampede", "RADICAL-Pilot-Spark (Mode I)",
                  benchutil::measure_startup(stampede,
                                             hpc::SchedulerKind::kSlurm,
                                             AgentBackend::kSparkModeI)
                      .agent_startup});

  std::printf("%-10s %-32s %12s\n", "machine", "configuration",
              "startup (s)");
  for (const auto& r : rows) {
    std::printf("%-10s %-32s %12.1f\n", r.machine, r.config, r.seconds);
  }

  // Derived checks against the paper's claims.
  const double rp_s = rows[0].seconds;
  const double yarn_s = rows[1].seconds;
  const double rp_w = rows[2].seconds;
  const double yarn_w = rows[3].seconds;
  const double mode2_w = rows[4].seconds;
  std::printf("\nMode I overhead over plain RP (bootstrap + first-unit "
              "YARN dispatch): stampede %+.1fs, wrangler %+.1fs\n",
              yarn_s - rp_s, yarn_w - rp_w);
  std::printf("  of which cluster bootstrap alone (paper: 50-85s "
              "'depending upon the resource selected'): stampede %.1fs, "
              "wrangler %.1fs\n",
              cluster::stampede_profile().bootstrap.yarn_bootstrap_time(1),
              cluster::wrangler_profile().bootstrap.yarn_bootstrap_time(1));
  std::printf("Mode II overhead over plain RP: wrangler %+.1fs, all of it "
              "per-unit YARN dispatch — no cluster to spawn (paper: "
              "comparable to plain RP startup)\n",
              mode2_w - rp_w);
  return 0;
}
