#pragma once

#include <cstdio>
#include <string>

#include "analytics/kmeans_experiment.h"
#include "common/statistics.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

/// \file bench_util.h
/// Shared helpers for the figure-reproduction harnesses. These benches
/// report *simulated* (virtual-clock) durations — the quantities the
/// paper's figures plot — not host wall time; the binaries themselves run
/// in milliseconds.

namespace hoh::benchutil {

/// Measures the paper's "agent startup time": RADICAL-Pilot-Agent start
/// to first Compute-Unit executing, for the given backend on \p machine.
/// The workload is one trivial unit (as in the Fig. 5 measurement).
struct StartupSample {
  double agent_startup = -1.0;     // seconds, virtual
  double mean_unit_startup = -1.0; // unit submit -> executing, on an
                                   // already-active pilot
};

inline StartupSample measure_startup(const cluster::MachineProfile& machine,
                                     hpc::SchedulerKind scheduler,
                                     pilot::AgentBackend backend,
                                     int nodes = 1, int probe_units = 8) {
  pilot::Session session;
  session.register_machine(machine, scheduler, nodes + 4);
  if (backend == pilot::AgentBackend::kYarnModeII) {
    session.create_dedicated_hadoop(machine.name, nodes);
  }

  pilot::PilotDescription pd;
  pd.resource = hpc::to_string(scheduler) + "://" + machine.name + "/";
  pd.nodes = nodes;
  pd.runtime = 24 * 3600.0;
  pd.backend = backend;

  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  auto pilot_handle = pm.submit_pilot(pd);
  um.add_pilot(pilot_handle);

  pilot::ComputeUnitDescription cud;
  cud.duration = 1.0;
  cud.memory_mb = 1024;
  auto first = um.submit(cud);
  while (!um.all_done() && session.engine().now() < 36000.0) {
    session.engine().run_until(session.engine().now() + 2.0);
  }
  StartupSample out;
  for (const auto& s :
       session.trace().find_spans("pilot", "agent_startup")) {
    if (s.key == pilot_handle->id()) out.agent_startup = s.duration();
  }

  // Unit-startup probe on the now-active pilot (Fig. 5 inset metric:
  // submission to startup, without pilot bootstrap in the span).
  std::vector<pilot::ComputeUnitDescription> probes(
      static_cast<std::size_t>(probe_units), cud);
  auto units = um.submit(probes);
  while (!um.all_done() && session.engine().now() < 72000.0) {
    session.engine().run_until(session.engine().now() + 2.0);
  }
  common::RunningStats stats;
  for (const auto& s : session.trace().find_spans("unit", "startup")) {
    if (s.key != first->id()) stats.add(s.duration());
  }
  out.mean_unit_startup = stats.mean();
  return out;
}

inline void print_header(const std::string& title,
                         const std::string& paper_reference) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("paper: %s\n", paper_reference.c_str());
}

}  // namespace hoh::benchutil
