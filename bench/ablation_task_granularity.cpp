/// Ablation: task granularity vs middleware overhead. The paper's SS-IV-A
/// verdict on the YARN path's startup costs is "we believe these are
/// acceptable, in particular for long-running tasks" — this bench
/// quantifies exactly that: for a fixed 32-unit bag on 3 Stampede nodes,
/// sweep the per-unit duration and report the overhead fraction
/// (TTC / ideal - 1) for the plain and YARN stacks. 3 nodes so one
/// 32-unit wave fits both stacks (the YARN path needs headroom for the
/// per-unit Application Masters). Times are simulated.

#include <cstdio>

#include "analytics/workload_gen.h"
#include "bench_util.h"
#include "sim/trace_analysis.h"

namespace {

using namespace hoh;

struct RunResult {
  double ttc = 0.0;       // agent active -> all units done
  double util = 0.0;      // core utilization while units ran
};

RunResult run_bag(pilot::AgentBackend backend, double unit_seconds,
                  int units) {
  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 4);
  pilot::PilotDescription pd;
  pd.resource = "slurm://stampede/";
  pd.nodes = 3;
  pd.runtime = 30 * 24 * 3600.0;
  pd.backend = backend;
  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  auto pilot = pm.submit_pilot(pd);
  um.add_pilot(pilot);
  // Wait for the pilot so cluster bootstrap is excluded: this isolates
  // the *per-unit* overhead the claim is about.
  while (pilot->state() != pilot::PilotState::kActive &&
         session.engine().now() < 36000.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  const double t0 = session.engine().now();

  analytics::WorkloadSpec spec;
  spec.units = units;
  spec.mean_seconds = unit_seconds;
  spec.memory_mb = 1024;
  um.submit(analytics::generate_workload(spec));
  while (!um.all_done() &&
         session.engine().now() < t0 + 1000.0 * unit_seconds + 36000.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  RunResult out;
  out.ttc = session.engine().now() - t0;
  const auto exec_spans = session.trace().find_spans("unit", "exec");
  out.util = sim::utilization(exec_spans, 32, t0, session.engine().now());
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation: task granularity vs middleware overhead (3 Stampede "
      "nodes, 32 single-core units)",
      "SS-IV-A — YARN startup costs 'acceptable, in particular for "
      "long-running tasks'");

  const int units = 32;
  std::printf("%10s %14s %14s %12s %12s\n", "unit (s)", "RP ovh", "YARN ovh",
              "RP util", "YARN util");
  for (double unit_seconds : {10.0, 60.0, 300.0, 1800.0, 3600.0}) {
    // Ideal: 32 units on 32 cores = one wave of unit_seconds.
    const double ideal = unit_seconds;
    const auto rp = run_bag(hoh::pilot::AgentBackend::kPlain, unit_seconds,
                            units);
    const auto yarn = run_bag(hoh::pilot::AgentBackend::kYarnModeI,
                              unit_seconds, units);
    std::printf("%10.0f %13.1f%% %13.1f%% %11.2f %11.2f\n", unit_seconds,
                100.0 * (rp.ttc / ideal - 1.0),
                100.0 * (yarn.ttc / ideal - 1.0), rp.util, yarn.util);
  }
  std::printf("\n(Overhead fraction falls as tasks lengthen: the YARN "
              "path's two-stage allocation amortizes, matching the "
              "paper's conclusion.)\n");
  return 0;
}
