/// Ablation: static vs elastic pilots on a bursty CU arrival trace — the
/// core claim of coupling Hadoop to pilot-based *dynamic* resource
/// management (paper SS-III-B, SS-V). A trough-sized static pilot is
/// cheap but slow through the burst; a peak-sized static pilot is fast
/// but burns idle core-hours; an elastic pilot (backlog policy) grows
/// into the burst through real batch-queue requests and drains back
/// afterwards. Reported times are simulated seconds; core-hours
/// integrate the nodes actually *held* over the run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "elastic/elastic_controller.h"

namespace {

using namespace hoh;

struct Outcome {
  std::string label;
  double makespan = 0.0;        // first arrival -> last unit done
  double core_hours = 0.0;      // cores held, integrated
  double utilization = 0.0;     // unit core-seconds / held core-seconds
  std::size_t failed_units = 0;
  bool blocks_replicated = false;
  elastic::ElasticCounters counters;  // zeros for the static runs
};

/// Arrival trace: two quiet waves, then a 256-unit burst — the shape
/// that punishes both static sizings at once.
struct Wave {
  double at;
  int units;
};
const std::vector<Wave> kWaves = {{0.0, 16}, {600.0, 16}, {1200.0, 256}};
constexpr double kUnitSeconds = 120.0;
constexpr int kCoresPerNode = 16;  // stampede nodes

pilot::ComputeUnitDescription unit_proto() {
  pilot::ComputeUnitDescription cud;
  cud.cores = 1;
  cud.memory_mb = 2048;
  cud.duration = kUnitSeconds;
  return cud;
}

/// Integrates held cores over [t0, t1] from the pilot's resize trace.
double held_core_hours(const sim::Trace& trace, const std::string& pilot_id,
                       int base_nodes, double t0, double t1) {
  double core_seconds = 0.0;
  double prev_time = t0;
  double prev_nodes = base_nodes;
  for (const auto& event : trace.find("pilot", "resize")) {
    if (event.attrs.at("pilot") != pilot_id) continue;
    if (event.time <= t0 || event.time >= t1) continue;
    core_seconds += (event.time - prev_time) * prev_nodes * kCoresPerNode;
    prev_time = event.time;
    prev_nodes = std::stod(event.attrs.at("total"));
  }
  core_seconds += (t1 - prev_time) * prev_nodes * kCoresPerNode;
  return core_seconds / 3600.0;
}

Outcome run_scenario(const std::string& label, int nodes, bool elastic_run) {
  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 12);
  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);

  pilot::PilotDescription pd;
  pd.resource = "slurm://stampede/";
  pd.nodes = nodes;
  pd.runtime = 7 * 24 * 3600.0;
  pd.backend = pilot::AgentBackend::kYarnModeI;
  auto pilot_handle = pm.submit_pilot(pd);
  um.add_pilot(pilot_handle);

  while (pilot_handle->state() != pilot::PilotState::kActive &&
         session.engine().now() < 36000.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  const double t0 = session.engine().now();

  // A persistent dataset rides through every resize: zero block loss is
  // part of the claim, not an afterthought.
  auto* yc = pilot_handle->agent()->yarn_cluster();
  for (int i = 0; i < 6; ++i) {
    yc->hdfs().create_file("/warehouse/part-" + std::to_string(i),
                           common::kGiB);
  }

  std::unique_ptr<elastic::ElasticController> controller;
  if (elastic_run) {
    elastic::ElasticControllerConfig config;
    config.sample_interval = 30.0;
    config.min_nodes = nodes;
    config.max_nodes = 8;
    config.drain_timeout = 300.0;
    controller = std::make_unique<elastic::ElasticController>(
        pm, pilot_handle, elastic::make_policy({"backlog", {}}), config);
    controller->start();
  }

  std::vector<std::shared_ptr<pilot::ComputeUnit>> units;
  for (const auto& wave : kWaves) {
    session.engine().schedule(t0 + wave.at - session.engine().now(),
                              [&um, &units, &wave] {
                                std::vector<pilot::ComputeUnitDescription>
                                    descs(wave.units, unit_proto());
                                auto handles = um.submit(descs);
                                units.insert(units.end(), handles.begin(),
                                             handles.end());
                              });
  }

  // all_done() is vacuously true before the first wave lands — wait out
  // the arrival trace first.
  const double last_wave = t0 + kWaves.back().at;
  while ((session.engine().now() <= last_wave || !um.all_done()) &&
         session.engine().now() < t0 + 7 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 10.0);
  }
  const double t_done = session.engine().now();

  Outcome out;
  out.label = label;
  out.makespan = t_done - t0;
  out.core_hours = held_core_hours(session.trace(), pilot_handle->id(),
                                   nodes, t0, t_done);
  double unit_core_seconds = 0.0;
  for (const auto& u : units) {
    if (u->state() != pilot::UnitState::kDone) out.failed_units += 1;
    unit_core_seconds += u->description().cores * u->description().duration;
  }
  out.utilization = unit_core_seconds / (out.core_hours * 3600.0);
  out.blocks_replicated = yc->hdfs().all_blocks_replicated();
  if (controller != nullptr) out.counters = controller->counters();
  return out;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation: elasticity — static vs elastic pilots, bursty arrivals "
      "(16 + 16 + 256 units of 120 s on a 12-node machine)",
      "SS-III-B/SS-V — pilot-based dynamic resource management");

  const Outcome trough = run_scenario("static-trough (2n)", 2, false);
  const Outcome peak = run_scenario("static-peak (8n)", 8, false);
  const Outcome elastic = run_scenario("elastic (2..8n)", 2, true);

  std::printf("%-20s %13s %12s %12s %8s %8s\n", "scenario", "makespan (s)",
              "core-hours", "utilization", "failed", "blocks");
  for (const Outcome* o : {&trough, &peak, &elastic}) {
    std::printf("%-20s %13.1f %12.2f %12.3f %8zu %8s\n", o->label.c_str(),
                o->makespan, o->core_hours, o->utilization, o->failed_units,
                o->blocks_replicated ? "ok" : "LOST");
  }

  const auto& c = elastic.counters;
  std::printf(
      "\nelastic controller: %zu samples, %zu grow / %zu shrink / %zu hold "
      "decisions, %d nodes added, %d removed, %zu clean shrinks, "
      "%zu drain timeouts\n",
      c.samples, c.grow_decisions, c.shrink_decisions, c.hold_decisions,
      c.nodes_added, c.nodes_removed, c.clean_shrinks, c.forced_shrinks);
  std::printf("elastic vs static-peak core-hours:   %+.1f%%\n",
              100.0 * (elastic.core_hours - peak.core_hours) /
                  peak.core_hours);
  std::printf("elastic vs static-trough makespan:   %+.1f%%\n",
              100.0 * (elastic.makespan - trough.makespan) /
                  trough.makespan);
  return 0;
}
