/// Reproduces the Fig. 5 inset: Compute-Unit startup time through plain
/// RADICAL-Pilot vs RADICAL-Pilot-YARN. The YARN path pays the two-stage
/// allocation ("first the application master container is allocated
/// followed by the containers for the actual compute tasks") plus the
/// container wrapper; the plain path is a fork. Measured on an
/// already-active pilot so pilot bootstrap is excluded, over 8 probe
/// units. Times are simulated seconds.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace hoh;
  using pilot::AgentBackend;

  benchutil::print_header(
      "Figure 5 (inset): Compute-Unit startup time (seconds, simulated)",
      "RP a few seconds; RP-YARN tens of seconds (two-stage AM + "
      "container allocation)");

  const auto stampede = cluster::stampede_profile();

  const auto rp = benchutil::measure_startup(
      stampede, hpc::SchedulerKind::kSlurm, AgentBackend::kPlain);
  const auto yarn = benchutil::measure_startup(
      stampede, hpc::SchedulerKind::kSlurm, AgentBackend::kYarnModeI);

  std::printf("%-32s %18s\n", "configuration", "CU startup (s)");
  std::printf("%-32s %18.1f\n", "RADICAL-Pilot", rp.mean_unit_startup);
  std::printf("%-32s %18.1f\n", "RADICAL-Pilot-YARN",
              yarn.mean_unit_startup);
  std::printf("\nYARN / RP startup ratio: %.1fx (paper: roughly an order "
              "of magnitude)\n",
              yarn.mean_unit_startup / rp.mean_unit_startup);
  return 0;
}
