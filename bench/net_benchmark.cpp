/// net_benchmark — wire-protocol microbenchmark (DESIGN.md §14).
///
/// Drives the same scripted request/reply exchange through
/// InProcessTransport and SocketTransport and reports throughput
/// (msgs/sec) and round-trip latency percentiles (p50/p99) per
/// transport and payload size. The socket numbers price the message
/// boundary: every call packs a versioned frame, crosses loopback TCP
/// into the epoll reactor, and returns the reply the same way.
///
/// Writes a JSON artifact (default BENCH_net.json) and optionally
/// gates: --assert-socket-msgs is a msgs/sec floor, --assert-socket-p99
/// a seconds ceiling, both applied to the small-payload socket run — CI
/// fails if the data plane regresses past them.
///
/// Usage:
///   net_benchmark [--samples N] [--warmup N] [--payload BYTES]
///                 [--out FILE] [--assert-socket-msgs X]
///                 [--assert-socket-p99 SECONDS]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/statistics.h"
#include "net/message.h"
#include "net/socket_transport.h"
#include "net/transport.h"

namespace {

using namespace hoh;

struct BenchConfig {
  int samples = 20000;
  int warmup = 2000;
  std::size_t payload = 1024;  // StoreIngest document bytes (large case)
  std::string out = "BENCH_net.json";
  double assert_socket_msgs = 0.0;  // floor, 0 = no gate
  double assert_socket_p99 = 0.0;   // ceiling seconds, 0 = no gate
};

struct RunResult {
  double msgs_per_sec = 0.0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One call() round trip per sample: NodeProbe out, NodeStatus back
/// (small), or StoreIngest echoed (payload case).
RunResult measure(net::Transport& transport, const BenchConfig& cfg,
                  std::size_t payload_bytes) {
  transport.register_endpoint("bench.echo", [](const net::Envelope& env) {
    if (env.type == net::MsgType::kStoreIngest) {
      return net::make_envelope(net::open_envelope<net::StoreIngest>(env));
    }
    const auto probe = net::open_envelope<net::NodeProbe>(env);
    return net::make_envelope(net::NodeStatus{probe.node, 1.0, true});
  });
  net::StoreIngest ingest;
  if (payload_bytes > 0) {
    ingest.collection = "unit";
    ingest.unit_id = "unit-000001";
    ingest.queue = "agent.p1";
    ingest.document.assign(payload_bytes, 0x5a);
  }
  auto exchange = [&] {
    if (payload_bytes > 0) {
      (void)net::call<net::StoreIngest>(transport, "bench.echo", ingest);
    } else {
      (void)net::call<net::NodeStatus>(transport, "bench.echo",
                                       net::NodeProbe{"c401-001"});
    }
  };
  for (int i = 0; i < cfg.warmup; ++i) exchange();
  std::vector<double> rtt;
  rtt.reserve(static_cast<std::size_t>(cfg.samples));
  const double start = now_seconds();
  for (int i = 0; i < cfg.samples; ++i) {
    const double t0 = now_seconds();
    exchange();
    rtt.push_back(now_seconds() - t0);
  }
  const double elapsed = now_seconds() - start;
  transport.unregister_endpoint("bench.echo");

  RunResult result;
  result.msgs_per_sec = static_cast<double>(cfg.samples) / elapsed;
  result.p50_s = common::percentile(rtt, 0.50);
  result.p99_s = common::percentile(rtt, 0.99);
  common::RunningStats stats;
  for (const double s : rtt) stats.add(s);
  result.mean_s = stats.mean();
  return result;
}

common::Json to_json(const RunResult& r) {
  common::Json j;
  j["msgsPerSec"] = r.msgs_per_sec;
  j["p50Us"] = r.p50_s * 1e6;
  j["p99Us"] = r.p99_s * 1e6;
  j["meanUs"] = r.mean_s * 1e6;
  return j;
}

void report(const char* label, const RunResult& r) {
  std::printf("%-22s %10.0f msgs/s   p50 %8.2f us   p99 %8.2f us\n",
              label, r.msgs_per_sec, r.p50_s * 1e6, r.p99_s * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (value == nullptr) {
      std::fprintf(stderr, "net_benchmark: %s needs a value\n",
                   flag.c_str());
      return 2;
    }
    if (flag == "--samples") {
      cfg.samples = std::atoi(value);
    } else if (flag == "--warmup") {
      cfg.warmup = std::atoi(value);
    } else if (flag == "--payload") {
      cfg.payload = static_cast<std::size_t>(std::atoll(value));
    } else if (flag == "--out") {
      cfg.out = value;
    } else if (flag == "--assert-socket-msgs") {
      cfg.assert_socket_msgs = std::atof(value);
    } else if (flag == "--assert-socket-p99") {
      cfg.assert_socket_p99 = std::atof(value);
    } else {
      std::fprintf(stderr, "net_benchmark: unknown flag %s\n",
                   flag.c_str());
      return 2;
    }
  }

  net::InProcessTransport inproc;
  net::SocketTransport socket;

  const RunResult inproc_small = measure(inproc, cfg, 0);
  const RunResult socket_small = measure(socket, cfg, 0);
  const RunResult inproc_large = measure(inproc, cfg, cfg.payload);
  const RunResult socket_large = measure(socket, cfg, cfg.payload);

  std::printf("net_benchmark: %d samples per cell, payload %zu B\n",
              cfg.samples, cfg.payload);
  report("in-process/small", inproc_small);
  report("socket/small", socket_small);
  report("in-process/payload", inproc_large);
  report("socket/payload", socket_large);

  common::Json doc;
  doc["schema"] = "hoh-bench-net-v1";
  doc["source"] = "bench/net_benchmark";
  doc["samples"] = static_cast<std::int64_t>(cfg.samples);
  doc["payloadBytes"] = static_cast<std::int64_t>(cfg.payload);
  common::Json transports;
  common::Json inproc_j;
  inproc_j["small"] = to_json(inproc_small);
  inproc_j["payload"] = to_json(inproc_large);
  transports["in-process"] = inproc_j;
  common::Json socket_j;
  socket_j["small"] = to_json(socket_small);
  socket_j["payload"] = to_json(socket_large);
  transports["socket"] = socket_j;
  doc["transports"] = transports;
  std::ofstream out(cfg.out);
  out << doc.dump(2) << "\n";
  std::printf("net_benchmark: wrote %s\n", cfg.out.c_str());

  int rc = 0;
  if (cfg.assert_socket_msgs > 0.0 &&
      socket_small.msgs_per_sec < cfg.assert_socket_msgs) {
    std::fprintf(stderr,
                 "net_benchmark: FAIL socket msgs/sec %.0f < floor %.0f\n",
                 socket_small.msgs_per_sec, cfg.assert_socket_msgs);
    rc = 1;
  }
  if (cfg.assert_socket_p99 > 0.0 &&
      socket_small.p99_s > cfg.assert_socket_p99) {
    std::fprintf(stderr,
                 "net_benchmark: FAIL socket p99 %.2f us > ceiling %.2f us\n",
                 socket_small.p99_s * 1e6, cfg.assert_socket_p99 * 1e6);
    rc = 1;
  }
  return rc;
}
