/// Web-scale benchmark (DESIGN.md §13): drives one large K-Means cell —
/// by default the scale_keystone shape, 10,000 nodes and 1,000,000
/// Compute-Units — through the full middleware stack and reports host
/// throughput (engine events/sec, units/sec) plus peak RSS. Before the
/// timed cell it runs a small parity matrix asserting that the digest is
/// independent of the state-store shard count and of trace rollup, so a
/// sharded scale run is provably computing the same workload as the
/// single-lock configuration the rest of the suite exercises.
///
/// Usage:
///   scale_benchmark [--nodes N] [--tasks T] [--iterations I]
///                   [--shards S] [--assert-min-events-per-sec X]
///                   [--assert-max-rss-mb Y] [--out BENCH_scale.json]
///
/// CI runs the 1k-node / 100k-unit trajectory point with both gates
/// armed; the committed BENCH_scale.json is the full keystone run.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hoh;
using analytics::KmeansExperimentConfig;
using analytics::KmeansExperimentResult;

double peak_rss_mb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KB
}

KmeansExperimentConfig cell_config(int nodes, int tasks, int iterations,
                                   int shards, bool rollup) {
  KmeansExperimentConfig cfg;
  cfg.machine = cluster::generic_profile();
  cfg.scheduler = hpc::SchedulerKind::kSlurm;
  cfg.scenario = analytics::scenario_1m_points();
  cfg.scenario.clusters = 100;
  cfg.scenario.iterations = iterations;
  cfg.nodes = nodes;
  cfg.tasks = tasks;
  cfg.yarn_stack = false;
  cfg.control_plane = common::ControlPlane::kWatch;
  cfg.spawn_latency = 0.001;
  cfg.store_shards = shards;
  cfg.trace_rollup = rollup;
  // 20 iterations of 50k units need ~5 simulated days; the 48 h default
  // pilot walltime would kill the keystone mid-trajectory.
  cfg.pilot_runtime = 14 * 24 * 3600.0;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  int nodes = 10000, tasks = 25000, iterations = 20, shards = 16;
  double min_events_per_sec = 0.0, max_rss_mb = 0.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--nodes" && next) {
      nodes = std::atoi(argv[++i]);
    } else if (arg == "--tasks" && next) {
      tasks = std::atoi(argv[++i]);
    } else if (arg == "--iterations" && next) {
      iterations = std::atoi(argv[++i]);
    } else if (arg == "--shards" && next) {
      shards = std::atoi(argv[++i]);
    } else if (arg == "--assert-min-events-per-sec" && next) {
      min_events_per_sec = std::atof(argv[++i]);
    } else if (arg == "--assert-max-rss-mb" && next) {
      max_rss_mb = std::atof(argv[++i]);
    } else if (arg == "--out" && next) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "scale_benchmark: unknown argument %s\n",
                   arg.c_str());
      return 2;
    }
  }

  benchutil::print_header(
      "Web-scale cell — throughput and memory at 10k nodes / 1M units",
      "scale trajectory (DESIGN.md §13): sharded store, batched event "
      "delivery, bitmap scheduling, rollup tracing");

  // Parity matrix: a small cell (100 nodes, 1,000 units) must produce
  // one digest across shard counts and with rollup on or off.
  std::printf("parity matrix (100 nodes, 1000 units):\n");
  std::string parity_digest;
  bool parity_ok = true;
  struct ParityArm {
    int shards;
    bool rollup;
  };
  const ParityArm arms[] = {{1, false}, {8, false}, {16, true}};
  for (const ParityArm& arm : arms) {
    const auto r = analytics::run_kmeans_experiment(
        cell_config(100, 250, 2, arm.shards, arm.rollup));
    if (parity_digest.empty()) parity_digest = r.output_checksum;
    const bool match = r.ok && r.output_checksum == parity_digest;
    parity_ok = parity_ok && match;
    std::printf("  shards %2d rollup %-5s units %4zu digest %s %s\n",
                arm.shards, arm.rollup ? "on" : "off", r.units_completed,
                r.output_checksum.c_str(), match ? "ok" : "MISMATCH");
  }
  if (!parity_ok) {
    std::fprintf(stderr, "scale_benchmark: digest parity FAILED\n");
    return 1;
  }

  // Timed cell.
  const std::size_t expected_units = static_cast<std::size_t>(tasks) * 2 *
                                     static_cast<std::size_t>(iterations);
  std::printf("\ntimed cell: %d nodes, %zu units, %d shards\n", nodes,
              expected_units, shards);
  const auto t0 = std::chrono::steady_clock::now();
  const KmeansExperimentResult result = analytics::run_kmeans_experiment(
      cell_config(nodes, tasks, iterations, shards, /*rollup=*/true));
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  const double events_per_sec =
      wall_s > 0.0 ? static_cast<double>(result.engine_events) / wall_s : 0.0;
  const double units_per_sec =
      wall_s > 0.0 ? static_cast<double>(result.units_completed) / wall_s
                   : 0.0;
  const double rss_mb = peak_rss_mb();

  std::printf(
      "  wall %.1f s, %llu engine events (%.0f events/s), "
      "%zu units (%.0f units/s), peak RSS %.0f MB\n"
      "  ttc %.1f simulated s, digest %s%s\n",
      wall_s, static_cast<unsigned long long>(result.engine_events),
      events_per_sec, result.units_completed, units_per_sec, rss_mb,
      result.time_to_completion, result.output_checksum.c_str(),
      result.ok ? "" : "  [FAILED]");

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << "{\n"
        << "  \"config\": {\"nodes\": " << nodes << ", \"tasks\": " << tasks
        << ", \"iterations\": " << iterations << ", \"units\": "
        << expected_units << ", \"store_shards\": " << shards << "},\n"
        << "  \"parity\": {\"ok\": " << (parity_ok ? "true" : "false")
        << ", \"digest\": \"" << parity_digest << "\"},\n"
        << "  \"wall_s\": " << wall_s << ",\n"
        << "  \"engine_events\": " << result.engine_events << ",\n"
        << "  \"events_per_sec\": " << events_per_sec << ",\n"
        << "  \"units_completed\": " << result.units_completed << ",\n"
        << "  \"units_per_sec\": " << units_per_sec << ",\n"
        << "  \"peak_rss_mb\": " << rss_mb << ",\n"
        << "  \"time_to_completion_s\": " << result.time_to_completion
        << ",\n"
        << "  \"output_checksum\": \"" << result.output_checksum << "\",\n"
        << "  \"ok\": " << (result.ok ? "true" : "false") << "\n"
        << "}\n";
    std::printf("wrote %s\n", out_path.c_str());
  }

  if (!result.ok) {
    std::fprintf(stderr, "scale_benchmark: cell incomplete (%zu/%zu)\n",
                 result.units_completed, expected_units);
    return 1;
  }
  if (min_events_per_sec > 0.0 && events_per_sec < min_events_per_sec) {
    std::fprintf(stderr,
                 "scale_benchmark: throughput gate FAILED "
                 "(%.0f < %.0f events/s)\n",
                 events_per_sec, min_events_per_sec);
    return 1;
  }
  if (max_rss_mb > 0.0 && rss_mb > max_rss_mb) {
    std::fprintf(stderr,
                 "scale_benchmark: memory gate FAILED (%.0f > %.0f MB)\n",
                 rss_mb, max_rss_mb);
    return 1;
  }
  return 0;
}
