/// Ablation: isolates the filesystem backend (the paper's explanation for
/// the Fig. 6 gap: "for RADICAL-Pilot-YARN the local file system is used,
/// while for RADICAL-Pilot the Lustre filesystem is used"). Both columns
/// run the *plain* RP stack so launch-path differences vanish; only the
/// workload's I/O backend changes. Times are simulated seconds for the
/// 1M-point scenario.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace hoh;
  using namespace hoh::analytics;

  benchutil::print_header(
      "Ablation: shared parallel filesystem vs node-local disks",
      "SS-IV-B — the local-disk backend explains most of the 13% win");

  const auto scenario = scenario_1m_points();
  std::printf("%-10s %6s %16s %16s %10s\n", "machine", "tasks",
              "shared-fs (s)", "local-disk (s)", "saving");
  for (const auto& [profile, sched] :
       {std::pair{cluster::stampede_profile(), hpc::SchedulerKind::kSlurm},
        std::pair{cluster::wrangler_profile(), hpc::SchedulerKind::kSge}}) {
    for (const auto& [nodes, tasks] :
         {std::pair{1, 8}, std::pair{2, 16}, std::pair{3, 32}}) {
      // Workload-only comparison via the cost model (identical stack).
      KmeansRunConfig shared;
      shared.machine = &profile;
      shared.nodes = nodes;
      shared.tasks = tasks;
      shared.yarn_stack = false;
      KmeansRunConfig local = shared;
      local.yarn_stack = true;           // local-disk I/O ...
      local.memory_per_task_mb = 2048;   // ... but same memory footprint

      const double t_shared =
          kmeans_phase_durations(scenario, shared).iteration_seconds() *
          scenario.iterations;
      const double t_local =
          kmeans_phase_durations(scenario, local).iteration_seconds() *
          scenario.iterations;
      std::printf("%-10s %6d %16.1f %16.1f %9.1f%%\n", profile.name.c_str(),
                  tasks, t_shared, t_local,
                  100.0 * (t_shared - t_local) / t_shared);
    }
  }
  std::printf("\n(The saving is large on Stampede's busy Lustre and small "
              "on Wrangler's flash — matching the paper's observation "
              "that Wrangler's I/O could not be saturated.)\n");
  return 0;
}
