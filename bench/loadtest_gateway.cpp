/// loadtest_gateway — open-loop load test of the multi-tenant
/// SubmissionGateway (DESIGN.md §11).
///
/// Thousands of tenants submit Poisson arrivals against a deliberately
/// overloaded pilot (≈4× capacity), once under FIFO and once under
/// fair-share, from the *same seeded arrival trace*. Reports
/// submission-to-start latency percentiles and Jain's fairness index
/// over per-tenant completed core-seconds at the horizon cutoff, and
/// writes the comparison to a JSON artifact (BENCH_gateway.json).
///
/// 10% of tenants are "heavy" (10× the submit rate, equal share), so
/// FIFO — which serves demand, not entitlement — lands near J ≈ 0.33
/// while fair-share holds J ≳ 0.95. Every tenant is seeded with a small
/// t=0 burst so all of them stay backlogged for the whole horizon;
/// Jain's index is only meaningful while demand exceeds fair share.
///
/// Usage:
///   loadtest_gateway [--tenants N] [--nodes N] [--horizon S]
///                    [--duration S] [--overload X] [--seed N]
///                    [--out FILE] [--assert-jain X] [--assert-p99 S]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/random.h"
#include "common/statistics.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"
#include "tenant/submission_gateway.h"

namespace {

using namespace hoh;

struct LoadConfig {
  int tenants = 1200;
  int nodes = 32;
  int cores_per_node = 8;
  double horizon = 1200.0;   // submission window, seconds (virtual)
  double duration = 60.0;    // per-unit runtime, seconds
  double overload = 4.0;     // aggregate demand vs. pilot capacity
  // One unit per tenant at t=0 so everyone is backlogged from the start
  // (Jain's index is only meaningful under saturation). Kept small: the
  // equal burst itself is FIFO-fair, so a large one would mask the
  // policy difference the test exists to measure.
  int seed_burst = 1;
  std::uint64_t seed = 42;
  std::string out = "BENCH_gateway.json";
  double assert_jain = 0.0;  // 0 = no assertion
  double assert_p99 = 0.0;   // seconds; 0 = no assertion
};

struct Arrival {
  double t = 0.0;
  int tenant = 0;
};

bool is_heavy(int tenant_index) { return tenant_index % 10 == 9; }

std::string tenant_name(int i) { return "tenant-" + std::to_string(i); }

/// The seeded Poisson arrival trace, identical for both policies.
std::vector<Arrival> make_arrivals(const LoadConfig& cfg) {
  const int heavy = cfg.tenants / 10;
  const int light = cfg.tenants - heavy;
  // Aggregate demand = overload × capacity; heavy tenants run at 10×
  // the light per-tenant rate.
  const double capacity_rate =
      static_cast<double>(cfg.nodes * cfg.cores_per_node) / cfg.duration;
  const double light_rate = cfg.overload * capacity_rate /
                            (static_cast<double>(light) + 10.0 * heavy);
  common::Rng rng(cfg.seed);
  std::vector<Arrival> arrivals;
  for (int i = 0; i < cfg.tenants; ++i) {
    const double rate = is_heavy(i) ? 10.0 * light_rate : light_rate;
    double t = rng.exponential(1.0 / rate);
    while (t < cfg.horizon) {
      arrivals.push_back({t, i});
      t += rng.exponential(1.0 / rate);
    }
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              if (a.t != b.t) return a.t < b.t;
              return a.tenant < b.tenant;
            });
  return arrivals;
}

struct RunResult {
  double jain = 0.0;
  double p50_wait = 0.0;
  double p99_wait = 0.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t started = 0;
  std::size_t peak_in_flight = 0;
};

RunResult run_one(const LoadConfig& cfg, tenant::SchedulingPolicy policy,
                  const std::vector<Arrival>& arrivals) {
  pilot::Session session;
  const cluster::MachineProfile machine =
      cluster::generic_profile(cfg.nodes, cfg.cores_per_node);
  session.register_machine(machine, hpc::SchedulerKind::kSlurm, cfg.nodes);

  pilot::AgentConfig agent;
  agent.spawn_latency = 0.02;  // spawner must outrun the dispatch rate
  agent.control_plane = common::ControlPlane::kWatch;

  pilot::PilotDescription pd;
  pd.resource = "slurm://" + machine.name + "/";
  pd.nodes = cfg.nodes;
  pd.runtime = 48 * 3600.0;
  pd.backend = pilot::AgentBackend::kPlain;

  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  um.set_control_plane(common::ControlPlane::kWatch);
  auto pilot_handle = pm.submit_pilot(pd, agent);
  um.add_pilot(pilot_handle);
  while (pilot_handle->state() != pilot::PilotState::kActive &&
         session.engine().now() < 3600.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  if (pilot_handle->state() != pilot::PilotState::kActive) {
    std::fprintf(stderr, "loadtest_gateway: pilot never became active\n");
    std::exit(1);
  }

  tenant::GatewayConfig gc;
  gc.policy = policy;
  // Window = pilot cores: dispatched ≈ executing, everything else queues
  // gateway-side where the policy decides the order. An unbounded window
  // would dump the backlog into the agent's FIFO queue and erase the
  // policy difference.
  gc.dispatch_window = cfg.nodes * cfg.cores_per_node;
  gc.accounting_journal = false;  // ~10^4 events; aggregates suffice
  tenant::SubmissionGateway gateway(um, gc);
  for (int i = 0; i < cfg.tenants; ++i) {
    tenant::TenantSpec spec;
    spec.id = tenant_name(i);
    gateway.add_tenant(spec);
  }

  auto submit_unit = [&](int tenant_index, int n) {
    pilot::ComputeUnitDescription cud;
    cud.name = tenant_name(tenant_index) + "-u" + std::to_string(n);
    cud.cores = 1;
    cud.memory_mb = 512;
    cud.duration = cfg.duration;
    gateway.submit(tenant_name(tenant_index), cud);
  };

  // Submission window starts once the pilot is up, so wait times measure
  // gateway queueing, not pilot bootstrap.
  const double t0 = session.engine().now();
  std::vector<int> submitted_per_tenant(cfg.tenants, 0);
  for (int i = 0; i < cfg.tenants; ++i) {
    for (int b = 0; b < cfg.seed_burst; ++b) submit_unit(i, b);
    submitted_per_tenant[i] = cfg.seed_burst;
  }
  for (const Arrival& a : arrivals) {
    session.engine().schedule_at(t0 + a.t, [&, a] {
      submit_unit(a.tenant, submitted_per_tenant[a.tenant]++);
    });
  }

  session.engine().run_until(t0 + cfg.horizon);

  // Cutoff metrics: per-tenant completed core-seconds (the service each
  // tenant actually received) and the start-latency distribution.
  RunResult out;
  std::vector<double> service;
  service.reserve(static_cast<std::size_t>(cfg.tenants));
  const auto& per_tenant = gateway.accounting().tenants();
  for (int i = 0; i < cfg.tenants; ++i) {
    double core_seconds = 0.0;
    const auto it = per_tenant.find(tenant_name(i));
    if (it != per_tenant.end()) {
      core_seconds = it->second.core_seconds;
      out.submitted += it->second.submitted;
      out.completed += it->second.completed;
      out.started += it->second.started;
    }
    service.push_back(core_seconds);
  }
  out.jain = tenant::jains_index(service);
  const std::vector<double>& waits = gateway.accounting().wait_samples();
  out.p50_wait = common::percentile(waits, 0.50);
  out.p99_wait = common::percentile(waits, 0.99);
  out.peak_in_flight = gateway.peak_in_flight();
  return out;
}

common::Json result_json(const RunResult& r) {
  common::Json j;
  j["jain"] = r.jain;
  j["p50_wait_s"] = r.p50_wait;
  j["p99_wait_s"] = r.p99_wait;
  j["submitted"] = static_cast<std::int64_t>(r.submitted);
  j["started"] = static_cast<std::int64_t>(r.started);
  j["completed"] = static_cast<std::int64_t>(r.completed);
  j["peak_in_flight"] = static_cast<std::int64_t>(r.peak_in_flight);
  return j;
}

void print_row(const char* label, const RunResult& r) {
  std::printf("%-12s jain %.3f  p50 wait %8.1fs  p99 wait %8.1fs  "
              "%zu submitted, %zu started, %zu completed\n",
              label, r.jain, r.p50_wait, r.p99_wait, r.submitted,
              r.started, r.completed);
}

}  // namespace

int main(int argc, char** argv) {
  LoadConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "loadtest_gateway: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tenants") {
      cfg.tenants = std::atoi(next());
    } else if (arg == "--nodes") {
      cfg.nodes = std::atoi(next());
    } else if (arg == "--horizon") {
      cfg.horizon = std::atof(next());
    } else if (arg == "--duration") {
      cfg.duration = std::atof(next());
    } else if (arg == "--overload") {
      cfg.overload = std::atof(next());
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      cfg.out = next();
    } else if (arg == "--assert-jain") {
      cfg.assert_jain = std::atof(next());
    } else if (arg == "--assert-p99") {
      cfg.assert_p99 = std::atof(next());
    } else {
      std::fprintf(stderr, "loadtest_gateway: unknown flag %s\n",
                   arg.c_str());
      return 2;
    }
  }
  if (cfg.tenants < 10 || cfg.nodes < 1 || cfg.horizon <= 0.0 ||
      cfg.duration <= 0.0) {
    std::fprintf(stderr, "loadtest_gateway: bad configuration\n");
    return 2;
  }

  const std::vector<Arrival> arrivals = make_arrivals(cfg);
  std::printf("gateway load test: %d tenants (%d heavy x10 rate), "
              "%d nodes x %d cores, horizon %.0fs, overload %.1fx, "
              "%zu Poisson arrivals + %d seed units/tenant, seed %llu\n",
              cfg.tenants, cfg.tenants / 10, cfg.nodes, cfg.cores_per_node,
              cfg.horizon, cfg.overload, arrivals.size(), cfg.seed_burst,
              static_cast<unsigned long long>(cfg.seed));

  const RunResult fifo =
      run_one(cfg, tenant::SchedulingPolicy::kFifo, arrivals);
  print_row("fifo", fifo);
  const RunResult fair =
      run_one(cfg, tenant::SchedulingPolicy::kFairShare, arrivals);
  print_row("fair-share", fair);

  common::Json doc;
  doc["schema"] = "hoh-gateway-loadtest-v1";
  common::Json config;
  config["tenants"] = static_cast<std::int64_t>(cfg.tenants);
  config["nodes"] = static_cast<std::int64_t>(cfg.nodes);
  config["cores_per_node"] = static_cast<std::int64_t>(cfg.cores_per_node);
  config["horizon_s"] = cfg.horizon;
  config["unit_duration_s"] = cfg.duration;
  config["overload"] = cfg.overload;
  config["seed"] = static_cast<std::int64_t>(cfg.seed);
  config["arrivals"] = static_cast<std::int64_t>(arrivals.size());
  doc["config"] = std::move(config);
  doc["fifo"] = result_json(fifo);
  doc["fair_share"] = result_json(fair);
  if (!cfg.out.empty()) {
    std::ofstream out(cfg.out);
    if (!out) {
      std::fprintf(stderr, "loadtest_gateway: cannot write %s\n",
                   cfg.out.c_str());
      return 1;
    }
    out << doc.dump(2) << "\n";
    std::printf("wrote %s\n", cfg.out.c_str());
  }

  int rc = 0;
  if (cfg.assert_jain > 0.0 && fair.jain < cfg.assert_jain) {
    std::fprintf(stderr,
                 "FAIL: fair-share Jain %.3f < required %.3f\n",
                 fair.jain, cfg.assert_jain);
    rc = 1;
  }
  if (cfg.assert_p99 > 0.0 && fair.p99_wait > cfg.assert_p99) {
    std::fprintf(stderr,
                 "FAIL: fair-share p99 wait %.1fs > budget %.1fs\n",
                 fair.p99_wait, cfg.assert_p99);
    rc = 1;
  }
  if (cfg.assert_jain > 0.0 && fifo.jain >= cfg.assert_jain) {
    std::fprintf(stderr,
                 "FAIL: FIFO Jain %.3f >= %.3f - overload too low to "
                 "discriminate policies\n",
                 fifo.jain, cfg.assert_jain);
    rc = 1;
  }
  return rc;
}
