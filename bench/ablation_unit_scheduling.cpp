/// Ablation: Unit-Manager scheduling policies (paper SS-V future work:
/// "improved scheduling, e.g. by ... introducing predictive scheduling").
/// A large heterogeneous bag (bimodal: 90% short / 10% long units,
/// several waves deep) is bound to
/// two unequal pilots (1 node vs 3 nodes) under round-robin,
/// least-loaded, and predictive binding; makespan shows what the learned
/// runtime estimates buy. Times are simulated seconds.

#include <cstdio>

#include "analytics/workload_gen.h"
#include "bench_util.h"
#include "pilot/estimator.h"

namespace {

using namespace hoh;

double run_policy(pilot::UnitSchedulingPolicy policy) {
  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 6);
  pilot::PilotManager pm(session);

  pilot::PilotDescription small;
  small.resource = "slurm://stampede/";
  small.nodes = 1;
  small.runtime = 30 * 24 * 3600.0;
  pilot::PilotDescription big = small;
  big.nodes = 3;
  auto p_small = pm.submit_pilot(small);
  auto p_big = pm.submit_pilot(big);

  // Pre-train the estimator so the predictive policy has history (the
  // paper's predictive scheduling assumes past executions).
  auto estimator = std::make_shared<pilot::MovingAverageEstimator>(0.3, 60.0);
  pilot::ComputeUnitDescription short_proto;
  short_proto.executable = "short-task";
  pilot::ComputeUnitDescription long_proto;
  long_proto.executable = "long-task";
  estimator->observe(short_proto, 30.0);
  estimator->observe(long_proto, 930.0);

  pilot::UnitManager um(session, policy, estimator);
  um.add_pilot(p_small);
  um.add_pilot(p_big);
  while ((p_small->state() != pilot::PilotState::kActive ||
          p_big->state() != pilot::PilotState::kActive) &&
         session.engine().now() < 36000.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  const double t0 = session.engine().now();

  // Bimodal bag with distinct executables so the estimator can tell the
  // classes apart.
  analytics::WorkloadSpec spec;
  spec.units = 384;
  spec.distribution = analytics::DurationDistribution::kBimodal;
  spec.mean_seconds = 120.0;
  spec.memory_mb = 1024;
  auto units = analytics::generate_workload(spec);
  for (auto& u : units) {
    u.executable = u.duration > 500.0 ? "long-task" : "short-task";
  }
  um.submit(units);
  while (!um.all_done() && session.engine().now() < 30 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 10.0);
  }
  return session.engine().now() - t0;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation: Unit-Manager binding policies, 384 bimodal units over "
      "unequal pilots (1 node + 3 nodes)",
      "SS-V future work — predictive scheduling extension");

  const double rr = run_policy(hoh::pilot::UnitSchedulingPolicy::kRoundRobin);
  const double ll =
      run_policy(hoh::pilot::UnitSchedulingPolicy::kLeastLoaded);
  const double pred =
      run_policy(hoh::pilot::UnitSchedulingPolicy::kPredictive);

  std::printf("%-16s %14s\n", "policy", "makespan (s)");
  std::printf("%-16s %14.1f\n", "round-robin", rr);
  std::printf("%-16s %14.1f\n", "least-loaded", ll);
  std::printf("%-16s %14.1f\n", "predictive", pred);
  std::printf("\npredictive vs round-robin: %+.1f%%\n",
              100.0 * (pred - rr) / rr);
  return 0;
}
