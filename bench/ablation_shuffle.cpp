/// Ablation: shuffle-volume scaling (paper SS-IV-B: "The amount of I/O
/// between the map and reduce phase depends on the number of points in
/// the scenario. With increased I/O typically a decline of the speedup
/// can be observed"). Sweeps the point count at the paper's constant
/// compute (points x clusters = 5e7) and reports shuffle share and
/// speedup on both machines. Times are simulated seconds.

#include <cstdio>

#include "analytics/kmeans_cost.h"
#include "bench_util.h"

int main() {
  using namespace hoh;
  using namespace hoh::analytics;

  benchutil::print_header(
      "Ablation: shuffle I/O growth with point count",
      "speedup declines with points on Stampede, stays flat on Wrangler");

  const std::vector<std::pair<std::int64_t, std::int64_t>> sweep = {
      {10'000, 5'000},  {50'000, 1'000},   {100'000, 500},
      {500'000, 100},   {1'000'000, 50},   {5'000'000, 10},
  };

  for (const auto& [profile, name] :
       {std::pair{cluster::stampede_profile(), "stampede (Lustre)"},
        std::pair{cluster::wrangler_profile(), "wrangler (flash)"}}) {
    std::printf("\n--- %s ---\n", name);
    std::printf("%12s %12s %16s %16s %10s\n", "points", "clusters",
                "shuffle/iter (s)", "iter @32 (s)", "speedup");
    for (const auto& [points, clusters] : sweep) {
      KmeansScenario s;
      s.label = "sweep";
      s.points = points;
      s.clusters = clusters;

      KmeansRunConfig c8;
      c8.machine = &profile;
      c8.nodes = 1;
      c8.tasks = 8;
      KmeansRunConfig c32 = c8;
      c32.nodes = 3;
      c32.tasks = 32;

      const auto d8 = kmeans_phase_durations(s, c8);
      const auto d32 = kmeans_phase_durations(s, c32);
      const double shuffle32 =
          d32.map_cost.shuffle + d32.reduce_cost.shuffle;
      std::printf("%12lld %12lld %16.1f %16.1f %10.2f\n",
                  static_cast<long long>(points),
                  static_cast<long long>(clusters), shuffle32,
                  d32.iteration_seconds(),
                  d8.iteration_seconds() / d32.iteration_seconds());
    }
  }
  std::printf("\n(Constant compute: points x clusters = 5e7 everywhere; "
              "only the shuffle volume grows.)\n");
  return 0;
}
