/// Ablation: fault recovery — completion time and completion *rate* vs
/// node-failure rate, recovery on vs off. A seeded FailureInjector kills
/// one of the pilot's nodes mid-run, which fails the placeholder batch
/// job the way a real HPC node loss does. With the recovery layer on
/// (pilot resubmission + unit requeue under a retry budget) the K-Means
/// workload completes with output identical to the no-failure baseline;
/// with it off, a single node loss fails the job. A second sweep varies
/// the crash rate to show how recovered completion time degrades
/// gracefully as failures become frequent.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace hoh;
using analytics::KmeansExperimentConfig;
using analytics::KmeansExperimentResult;

/// One 8-node cell of the paper's K-Means benchmark (the keystone
/// scenario: the pilot spans the whole pool, so any crash hits it).
KmeansExperimentConfig base_config() {
  KmeansExperimentConfig cfg;
  cfg.machine = cluster::stampede_profile();
  cfg.scheduler = hpc::SchedulerKind::kSlurm;
  cfg.scenario = analytics::scenario_100k_points();
  cfg.nodes = 8;
  cfg.tasks = 16;
  cfg.yarn_stack = false;
  return cfg;
}

KmeansExperimentConfig faulty_config(std::uint64_t seed, bool recovery,
                                     double mean_time_to_crash,
                                     int max_crashes) {
  KmeansExperimentConfig cfg = base_config();
  cfg.failures = true;
  cfg.failure_plan.seed = seed;
  cfg.failure_plan.mean_time_to_crash = mean_time_to_crash;
  cfg.failure_plan.mean_time_to_repair = 300.0;
  cfg.failure_plan.max_crashes = max_crashes;
  cfg.failure_plan.start_after = 300.0;
  cfg.recovery = recovery;
  if (recovery) {
    cfg.retry_policy.max_attempts = 3;
    cfg.retry_policy.base_backoff = 5.0;
    cfg.retry_policy.max_backoff = 60.0;
  }
  cfg.allow_failure = !recovery;
  return cfg;
}

}  // namespace

int main() {
  benchutil::print_header(
      "Ablation: fault recovery — K-Means under injected node crashes, "
      "recovery on vs off (8-node pilot, 1-of-8 crash at seed-varied times)",
      "fault-tolerance layer: retry/backoff, unit requeue, pilot restart");

  const KmeansExperimentResult baseline =
      analytics::run_kmeans_experiment(base_config());
  std::printf("no-failure baseline: ttc %.1f s, %zu units, checksum %s\n\n",
              baseline.time_to_completion, baseline.units_completed,
              baseline.output_checksum.c_str());

  // --- sweep 1: one mid-run crash, 10 seeds, recovery on vs off --------
  std::printf("%-6s %-9s %12s %8s %9s %9s %10s %s\n", "seed", "recovery",
              "ttc (s)", "crashes", "resubmit", "requeued", "identical",
              "outcome");
  int recovered = 0;
  int baseline_failures = 0;
  double recovered_ttc_sum = 0.0;
  const int kSeeds = 10;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    for (const bool recovery : {true, false}) {
      const auto cfg = faulty_config(seed, recovery, 200.0, 1);
      const auto r = analytics::run_kmeans_experiment(cfg);
      const bool identical =
          r.ok && r.output_checksum == baseline.output_checksum;
      if (recovery && identical) {
        ++recovered;
        recovered_ttc_sum += r.time_to_completion;
      }
      if (!recovery && !r.ok) ++baseline_failures;
      std::printf("%-6llu %-9s %12.1f %8d %9zu %9zu %10s %s\n",
                  static_cast<unsigned long long>(seed),
                  recovery ? "on" : "off", r.time_to_completion,
                  r.failure_counters.crashes, r.pilots_resubmitted,
                  r.units_requeued, identical ? "yes" : "no",
                  r.ok ? "completed" : "FAILED");
    }
  }
  std::printf(
      "\nrecovery on:  %d/%d seeds completed with baseline-identical "
      "output (mean ttc %.1f s, +%.1f%% over no-failure)\n",
      recovered, kSeeds,
      recovered > 0 ? recovered_ttc_sum / recovered : 0.0,
      recovered > 0 ? 100.0 * (recovered_ttc_sum / recovered -
                               baseline.time_to_completion) /
                          baseline.time_to_completion
                    : 0.0);
  std::printf("recovery off: %d/%d seeds failed outright\n\n",
              baseline_failures, kSeeds);

  // --- sweep 2: completion time vs crash rate, recovery on -------------
  // Three crashes per run, arriving faster and faster; a wider retry
  // budget so the chain survives repeated losses.
  std::printf("%-24s %12s %9s %9s %9s\n", "mean-time-to-crash (s)",
              "ttc (s)", "crashes", "resubmit", "requeued");
  for (const double mttc : {1200.0, 600.0, 300.0}) {
    auto cfg = faulty_config(21, true, mttc, 3);
    cfg.retry_policy.max_attempts = 8;
    const auto r = analytics::run_kmeans_experiment(cfg);
    std::printf("%-24.0f %12.1f %9d %9zu %9zu%s\n", mttc,
                r.time_to_completion, r.failure_counters.crashes,
                r.pilots_resubmitted, r.units_requeued,
                r.ok ? "" : "  [FAILED]");
  }
  return 0;
}
