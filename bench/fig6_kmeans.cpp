/// Reproduces Fig. 6: K-Means time-to-completion on Stampede and
/// Wrangler for RADICAL-Pilot vs RADICAL-Pilot-YARN (Mode I), across the
/// paper's three scenarios (10k pts/5k clusters, 100k/500, 1M/50 — 3-D
/// points, 2 iterations) and task/node configurations (8 tasks/1 node,
/// 16/2, 32/3). Every cell is an end-to-end run of the simulated
/// middleware (batch job -> agent -> [YARN bootstrap] -> per-unit
/// launch); RP-YARN runtimes include cluster download and startup, as in
/// the paper. Times are simulated seconds.

#include <cstdio>
#include <map>

#include "bench_util.h"

int main() {
  using namespace hoh;
  using namespace hoh::analytics;

  benchutil::print_header(
      "Figure 6: K-Means time-to-completion (seconds, simulated)",
      "runtimes fall with task count; YARN overhead visible at 8 tasks; "
      "RP-YARN ~13% faster on average at 16/32 tasks; Wrangler faster "
      "than Stampede; speedup declines with points on Stampede, not on "
      "Wrangler");

  struct Machine {
    cluster::MachineProfile profile;
    hpc::SchedulerKind scheduler;
  };
  const std::vector<Machine> machines = {
      {cluster::stampede_profile(), hpc::SchedulerKind::kSlurm},
      {cluster::wrangler_profile(), hpc::SchedulerKind::kSge},
  };
  const std::vector<std::pair<int, int>> configs = {{1, 8}, {2, 16}, {3, 32}};

  // ttc[machine][scenario][tasks][yarn]
  std::map<std::string, std::map<std::string, std::map<int, std::map<bool, double>>>>
      ttc;

  for (const auto& m : machines) {
    std::printf("\n--- %s ---\n", m.profile.name.c_str());
    std::printf("%-28s %6s %14s %14s %8s\n", "scenario", "tasks",
                "RP (s)", "RP-YARN (s)", "delta");
    for (const auto& scenario : paper_scenarios()) {
      for (const auto& [nodes, tasks] : configs) {
        double cell[2] = {0.0, 0.0};
        for (bool yarn : {false, true}) {
          KmeansExperimentConfig cfg;
          cfg.machine = m.profile;
          cfg.scheduler = m.scheduler;
          cfg.scenario = scenario;
          cfg.nodes = nodes;
          cfg.tasks = tasks;
          cfg.yarn_stack = yarn;
          const auto r = run_kmeans_experiment(cfg);
          if (!r.ok) {
            std::fprintf(stderr, "FAILED cell: %s %s T=%d yarn=%d\n",
                         m.profile.name.c_str(), scenario.label.c_str(),
                         tasks, yarn);
            return 1;
          }
          cell[yarn ? 1 : 0] = r.time_to_completion;
          ttc[m.profile.name][scenario.label][tasks][yarn] =
              r.time_to_completion;
        }
        std::printf("%-28s %6d %14.1f %14.1f %+7.1f%%\n",
                    scenario.label.c_str(), tasks, cell[0], cell[1],
                    100.0 * (cell[1] - cell[0]) / cell[0]);
      }
    }
  }

  // --- derived series the paper discusses ---
  std::printf("\n--- speedups (8 -> 32 tasks) ---\n");
  std::printf("%-10s %-28s %10s %10s\n", "machine", "scenario", "RP",
              "RP-YARN");
  for (const auto& m : machines) {
    for (const auto& scenario : paper_scenarios()) {
      const auto& by_tasks = ttc[m.profile.name][scenario.label];
      std::printf("%-10s %-28s %10.2f %10.2f\n", m.profile.name.c_str(),
                  scenario.label.c_str(),
                  by_tasks.at(8).at(false) / by_tasks.at(32).at(false),
                  by_tasks.at(8).at(true) / by_tasks.at(32).at(true));
    }
  }
  std::printf("(paper: RP-YARN 3.2 vs RP 2.4 on Wrangler/1M; on Stampede "
              "speedup declines from ~2.9 at 10k points to ~2.4 at 1M)\n");

  // Average YARN advantage at >= 16 tasks (the 13% headline).
  double sum = 0.0;
  int count = 0;
  for (const auto& m : machines) {
    for (const auto& scenario : paper_scenarios()) {
      for (int tasks : {16, 32}) {
        const auto& cell = ttc[m.profile.name][scenario.label][tasks];
        sum += (cell.at(false) - cell.at(true)) / cell.at(false);
        ++count;
      }
    }
  }
  std::printf("\nMean RP-YARN improvement at 16/32 tasks: %.1f%% "
              "(paper: ~13%% on average)\n",
              100.0 * sum / count);
  return 0;
}
