#include "saga/file_transfer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::saga {
namespace {

class TransferTest : public ::testing::Test {
 protected:
  TransferTest() {
    ctx_.register_machine(cluster::stampede_profile(),
                          hpc::SchedulerKind::kSlurm, 4);
    ctx_.register_machine(cluster::wrangler_profile(),
                          hpc::SchedulerKind::kSlurm, 4);
  }
  SagaContext ctx_;
  FileTransferService xfer_{ctx_};
};

TEST_F(TransferTest, IntraMachineUsesStorageModels) {
  bool done = false;
  const double est = xfer_.transfer(Url("file://stampede/in.trj"),
                                    Url("local://stampede/tmp/in.trj"),
                                    64 * common::kMiB, [&] { done = true; });
  EXPECT_GT(est, 0.0);
  ctx_.engine().run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(ctx_.engine().now(), est);
}

TEST_F(TransferTest, CrossMachinePaysWanHop) {
  const common::Bytes bytes = 64 * common::kMiB;
  const double intra = xfer_.transfer(Url("file://stampede/a"),
                                      Url("local://stampede/a"), bytes);
  const double inter = xfer_.transfer(Url("file://stampede/a"),
                                      Url("file://wrangler/a"), bytes);
  EXPECT_GT(inter, intra);
}

TEST_F(TransferTest, MemorySchemeIsFastest) {
  const common::Bytes bytes = 256 * common::kMiB;
  const double mem = xfer_.transfer(Url("mem://wrangler/x"),
                                    Url("mem://wrangler/y"), bytes);
  const double disk = xfer_.transfer(Url("local://wrangler/x"),
                                     Url("local://wrangler/y"), bytes);
  EXPECT_LT(mem, disk);
}

TEST_F(TransferTest, HdfsSchemeMapsToLocalDisk) {
  EXPECT_EQ(FileTransferService::backend_for_scheme("hdfs"),
            cluster::StorageBackend::kLocalDisk);
  EXPECT_EQ(FileTransferService::backend_for_scheme("file"),
            cluster::StorageBackend::kSharedFs);
}

TEST_F(TransferTest, UnknownSchemeThrows) {
  EXPECT_THROW(
      xfer_.transfer(Url("gopher://stampede/a"), Url("file://stampede/b"), 1),
      common::ConfigError);
}

TEST_F(TransferTest, TraceRecordsTransfers) {
  xfer_.transfer(Url("file://stampede/a"), Url("local://stampede/b"), 1024);
  ctx_.engine().run();
  EXPECT_TRUE(ctx_.trace().first("saga", "transfer_started").has_value());
  EXPECT_TRUE(ctx_.trace().first("saga", "transfer_done").has_value());
}

TEST_F(TransferTest, WanBandwidthConfigurable) {
  const common::Bytes bytes = 100 * common::kMiB;
  const double slow = xfer_.transfer(Url("file://stampede/a"),
                                     Url("file://wrangler/a"), bytes);
  xfer_.set_wan_bandwidth(500.0e6);
  const double fast = xfer_.transfer(Url("file://stampede/a"),
                                     Url("file://wrangler/a"), bytes);
  EXPECT_LT(fast, slow);
}

}  // namespace
}  // namespace hoh::saga
