#include "cluster/storage.h"

#include <gtest/gtest.h>

#include "cluster/network.h"
#include "common/units.h"

namespace hoh::cluster {
namespace {

using common::operator""_MiB;
using common::operator""_GiB;

TEST(LocalStorageTest, SingleStreamTime) {
  LocalStorageModel disk;
  disk.bandwidth = 100.0e6;
  disk.op_latency = 0.0;
  EXPECT_NEAR(disk.transfer_time(100 * 1000 * 1000), 1.0, 1e-9);
}

TEST(LocalStorageTest, ContentionScalesLinearly) {
  LocalStorageModel disk;
  disk.op_latency = 0.0;
  const double one = disk.transfer_time(1_GiB, 1);
  const double four = disk.transfer_time(1_GiB, 4);
  EXPECT_NEAR(four, 4.0 * one, 1e-9);
}

TEST(LocalStorageTest, LatencyAddsPerOp) {
  LocalStorageModel disk;
  disk.op_latency = 0.01;
  EXPECT_NEAR(disk.transfer_time(0), 0.01, 1e-12);
}

TEST(SharedFsTest, PerClientCapDominatesAtLowConcurrency) {
  SharedFsModel fs;
  fs.aggregate_bandwidth = 10.0e9;
  fs.per_client_cap = 100.0e6;
  fs.metadata_latency = 0.0;
  // One stream: capped at 100 MB/s even though aggregate is 10 GB/s.
  EXPECT_NEAR(fs.transfer_time(100 * 1000 * 1000, 1), 1.0, 1e-9);
}

TEST(SharedFsTest, AggregateDividesUnderContention) {
  SharedFsModel fs;
  fs.aggregate_bandwidth = 1.0e9;
  fs.per_client_cap = 1.0e9;
  fs.metadata_latency = 0.0;
  const double t32 = fs.transfer_time(1_GiB, 32);
  const double t1 = fs.transfer_time(1_GiB, 1);
  EXPECT_NEAR(t32, 32.0 * t1, 1e-6);
}

TEST(SharedFsTest, MetadataLatencyHurtsSmallFiles) {
  SharedFsModel fs;
  fs.metadata_latency = 0.03;
  LocalStorageModel disk;
  disk.op_latency = 0.005;
  // A tiny file is latency-bound: local wins despite lower bandwidth.
  // (This is the paper's "many small files" discussion in SS-II.)
  EXPECT_GT(fs.transfer_time(1024, 1), disk.transfer_time(1024, 1));
}

TEST(SharedFsTest, BackgroundStreamsReduceShare) {
  SharedFsModel fs;
  fs.aggregate_bandwidth = 1.0e9;
  fs.per_client_cap = 1.0e9;
  fs.metadata_latency = 0.0;
  const double quiet = fs.transfer_time(1_GiB, 1);
  fs.background_streams = 9;
  const double busy = fs.transfer_time(1_GiB, 1);
  EXPECT_NEAR(busy, 10.0 * quiet, 1e-6);
}

TEST(StorageCrossoverTest, LocalBeatsSharedAtHighTaskCounts) {
  // The Fig. 6 mechanism: on a busy production machine, 32 concurrent
  // tasks through Lustre share the aggregate bandwidth with background
  // load from every other job on the system; the same tasks spread over
  // 3 nodes' local disks only share each disk among ~11 local streams.
  SharedFsModel lustre;
  lustre.aggregate_bandwidth = 1.2e9;
  lustre.per_client_cap = 250.0e6;
  lustre.background_streams = 120;
  LocalStorageModel local;
  local.bandwidth = 90.0e6;

  const common::Bytes chunk = 64_MiB;
  const double shared_32 = lustre.transfer_time(chunk, 32);
  const double local_11 = local.transfer_time(chunk, 11);
  EXPECT_GT(shared_32, local_11);
}

TEST(MemoryStorageTest, FastestTier) {
  MemoryStorageModel mem;
  LocalStorageModel disk;
  EXPECT_LT(mem.transfer_time(1_GiB), disk.transfer_time(1_GiB, 1));
}

TEST(NetworkModelTest, SingleFlowUsesLinkBandwidth) {
  NetworkModel net;
  net.link_bandwidth = 1.0e9;
  net.bisection_bandwidth = 100.0e9;
  net.latency = 0.0;
  EXPECT_NEAR(net.transfer_time(1000 * 1000 * 1000, 1), 1.0, 1e-9);
}

TEST(NetworkModelTest, ManyFlowsShareBisection) {
  NetworkModel net;
  net.link_bandwidth = 10.0e9;
  net.bisection_bandwidth = 40.0e9;
  net.latency = 0.0;
  // 8 flows: 5 GB/s each (bisection-bound), below the 10 GB/s link cap.
  EXPECT_NEAR(net.transfer_time(5LL * 1000 * 1000 * 1000, 8), 1.0, 1e-9);
}

TEST(NetworkModelTest, WanTransfer) {
  const double t =
      NetworkModel::wan_transfer_time(300 * 1000 * 1000, 5.0e6, 0.05);
  EXPECT_NEAR(t, 60.05, 1e-9);
}

TEST(StorageBackendTest, Names) {
  EXPECT_EQ(to_string(StorageBackend::kLocalDisk), "local-disk");
  EXPECT_EQ(to_string(StorageBackend::kSharedFs), "shared-fs");
  EXPECT_EQ(to_string(StorageBackend::kLocalSsd), "local-ssd");
  EXPECT_EQ(to_string(StorageBackend::kMemory), "memory");
}

}  // namespace
}  // namespace hoh::cluster
