#include "saga/url.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::saga {
namespace {

TEST(UrlTest, ParseFull) {
  Url u("slurm://stampede/scratch/user");
  EXPECT_EQ(u.scheme(), "slurm");
  EXPECT_EQ(u.host(), "stampede");
  EXPECT_EQ(u.path(), "/scratch/user");
  EXPECT_EQ(u.str(), "slurm://stampede/scratch/user");
}

TEST(UrlTest, ParseNoPath) {
  Url u("pbs://gordon");
  EXPECT_EQ(u.scheme(), "pbs");
  EXPECT_EQ(u.host(), "gordon");
  EXPECT_EQ(u.path(), "/");
}

TEST(UrlTest, ParseRootPath) {
  Url u("file://wrangler/");
  EXPECT_EQ(u.host(), "wrangler");
  EXPECT_EQ(u.path(), "/");
}

TEST(UrlTest, Malformed) {
  EXPECT_THROW(Url("no-scheme"), common::ConfigError);
  EXPECT_THROW(Url("://host/"), common::ConfigError);
  EXPECT_THROW(Url("slurm:///path-only"), common::ConfigError);
}

TEST(UrlTest, Equality) {
  EXPECT_EQ(Url("sge://m/p"), Url("sge://m/p"));
  EXPECT_NE(Url("sge://m/p"), Url("sge://m/q"));
}

}  // namespace
}  // namespace hoh::saga
