#include "analytics/graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace hoh::analytics {
namespace {

TEST(GraphTest, FromEdgesDedupAndNoSelfLoops) {
  const auto g = graph_from_edges(
      4, {{0, 1}, {1, 0}, {1, 1}, {2, 3}, {2, 3}});
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 2u);  // 0-1 and 2-3
  EXPECT_EQ(g.adjacency[1], (std::vector<std::uint32_t>{0}));
}

TEST(GraphTest, OutOfRangeEdgeThrows) {
  EXPECT_THROW(graph_from_edges(2, {{0, 5}}), common::ConfigError);
}

TEST(GraphTest, CompleteGraphShape) {
  const auto g = complete_graph(6);
  EXPECT_EQ(g.edge_count(), 15u);
  for (const auto& nbrs : g.adjacency) EXPECT_EQ(nbrs.size(), 5u);
}

TEST(TriangleTest, CompleteGraphGroundTruth) {
  common::ThreadPool pool(4);
  // K_n has C(n,3) triangles.
  EXPECT_EQ(count_triangles(pool, complete_graph(3)), 1u);
  EXPECT_EQ(count_triangles(pool, complete_graph(6)), 20u);
  EXPECT_EQ(count_triangles(pool, complete_graph(10)), 120u);
}

TEST(TriangleTest, TriangleFreeGraphs) {
  common::ThreadPool pool(4);
  // Star graph: hub 0 connected to everything, no triangles.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> star;
  for (std::uint32_t v = 1; v < 20; ++v) star.emplace_back(0, v);
  EXPECT_EQ(count_triangles(pool, graph_from_edges(20, star)), 0u);
  // Even cycle: no triangles either.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cycle;
  for (std::uint32_t v = 0; v < 8; ++v) cycle.emplace_back(v, (v + 1) % 8);
  EXPECT_EQ(count_triangles(pool, graph_from_edges(8, cycle)), 0u);
}

TEST(TriangleTest, ErdosRenyiMatchesExpectation) {
  common::ThreadPool pool(4);
  // E[triangles] = C(n,3) p^3; for n=200, p=0.1: ~1313.
  const auto g = random_graph(200, 0.1, 9);
  const auto triangles = count_triangles(pool, g);
  EXPECT_GT(triangles, 800u);
  EXPECT_LT(triangles, 1900u);
}

TEST(TriangleTest, ClusteringCoefficient) {
  common::ThreadPool pool(4);
  // Complete graph: every wedge is closed -> coefficient 1.
  EXPECT_DOUBLE_EQ(clustering_coefficient(pool, complete_graph(8)), 1.0);
  // Star: wedges but no triangles -> 0.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> star;
  for (std::uint32_t v = 1; v < 10; ++v) star.emplace_back(0, v);
  EXPECT_DOUBLE_EQ(
      clustering_coefficient(pool, graph_from_edges(10, star)), 0.0);
  // Empty graph: no wedges -> defined as 0.
  Graph empty;
  empty.adjacency.resize(5);
  EXPECT_DOUBLE_EQ(clustering_coefficient(pool, empty), 0.0);
}

TEST(GraphGenTest, PreferentialAttachmentProperties) {
  const auto g = preferential_attachment_graph(500, 3, 11);
  EXPECT_EQ(g.vertex_count(), 500u);
  // m edges per new vertex + seed clique.
  EXPECT_GE(g.edge_count(), (500u - 4u) * 3u);
  // Heavy-tailed degrees: the max degree far exceeds the mean.
  std::size_t max_degree = 0;
  std::size_t degree_sum = 0;
  for (const auto& nbrs : g.adjacency) {
    max_degree = std::max(max_degree, nbrs.size());
    degree_sum += nbrs.size();
  }
  const double mean = static_cast<double>(degree_sum) / 500.0;
  EXPECT_GT(static_cast<double>(max_degree), 4.0 * mean);
  // Deterministic.
  const auto g2 = preferential_attachment_graph(500, 3, 11);
  EXPECT_EQ(g.adjacency, g2.adjacency);
  EXPECT_THROW(preferential_attachment_graph(3, 3, 1),
               common::ConfigError);
}

TEST(PageRankTest, UniformOnRegularGraphs) {
  common::ThreadPool pool(4);
  // On a cycle (2-regular), PageRank is uniform.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cycle;
  for (std::uint32_t v = 0; v < 10; ++v) cycle.emplace_back(v, (v + 1) % 10);
  const auto ranks = pagerank(pool, graph_from_edges(10, cycle), 30);
  for (const auto r : ranks) EXPECT_NEAR(r, 0.1, 1e-9);
}

TEST(PageRankTest, SumsToOneAndHubsWin) {
  common::ThreadPool pool(4);
  const auto g = preferential_attachment_graph(300, 2, 5);
  const auto ranks = pagerank(pool, g, 30);
  EXPECT_NEAR(std::accumulate(ranks.begin(), ranks.end(), 0.0), 1.0, 1e-9);
  // The max-degree vertex outranks the min-degree vertex.
  std::size_t hub = 0;
  std::size_t leaf = 0;
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    if (g.adjacency[v].size() > g.adjacency[hub].size()) hub = v;
    if (g.adjacency[v].size() < g.adjacency[leaf].size()) leaf = v;
  }
  EXPECT_GT(ranks[hub], 2.0 * ranks[leaf]);
}

TEST(PageRankTest, DanglingMassRedistributed) {
  common::ThreadPool pool(4);
  // Vertex 2 is isolated; total rank still sums to 1.
  const auto g = graph_from_edges(3, {{0, 1}});
  const auto ranks = pagerank(pool, g, 25);
  EXPECT_NEAR(std::accumulate(ranks.begin(), ranks.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(ranks[0], ranks[2]);  // connected beats isolated
}

TEST(PageRankTest, RddMatchesThreaded) {
  common::ThreadPool pool(4);
  spark::SparkEnv env(4);
  const auto g = preferential_attachment_graph(120, 2, 21);
  const auto threaded = pagerank(pool, g, 15);
  const auto via_rdd = pagerank_rdd(env, g, 15);
  ASSERT_EQ(threaded.size(), via_rdd.size());
  for (std::size_t v = 0; v < threaded.size(); ++v) {
    EXPECT_NEAR(threaded[v], via_rdd[v], 1e-9) << "vertex " << v;
  }
}

TEST(PageRankTest, EmptyGraph) {
  common::ThreadPool pool(2);
  spark::SparkEnv env(2);
  Graph empty;
  EXPECT_TRUE(pagerank(pool, empty).empty());
  EXPECT_TRUE(pagerank_rdd(env, empty).empty());
}

}  // namespace
}  // namespace hoh::analytics
