#include "sim/trace.h"

#include <gtest/gtest.h>

namespace hoh::sim {
namespace {

TEST(TraceTest, RecordAndFind) {
  Trace t;
  t.record(1.0, "pilot", "launched", {{"pilot", "p0"}});
  t.record(2.0, "pilot", "active", {{"pilot", "p0"}});
  t.record(3.0, "unit", "done", {{"unit", "u0"}});

  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.find("pilot").size(), 2u);
  EXPECT_EQ(t.find("pilot", "active").size(), 1u);
  EXPECT_TRUE(t.find("yarn").empty());
}

TEST(TraceTest, FirstAndLast) {
  Trace t;
  t.record(1.0, "unit", "state", {{"s", "a"}});
  t.record(5.0, "unit", "state", {{"s", "b"}});
  ASSERT_TRUE(t.first("unit", "state").has_value());
  EXPECT_EQ(t.first("unit", "state")->attrs.at("s"), "a");
  EXPECT_EQ(t.last("unit", "state")->attrs.at("s"), "b");
  EXPECT_FALSE(t.first("nope").has_value());
  EXPECT_FALSE(t.last("nope").has_value());
}

TEST(TraceTest, SpansComputeDurations) {
  Trace t;
  t.begin_span(10.0, "yarn", "am_alloc", "cu.0");
  t.begin_span(11.0, "yarn", "am_alloc", "cu.1");
  t.end_span(14.0, "yarn", "am_alloc", "cu.0");
  t.end_span(18.0, "yarn", "am_alloc", "cu.1");

  auto spans = t.find_spans("yarn", "am_alloc");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_DOUBLE_EQ(spans[0].duration(), 4.0);
  EXPECT_DOUBLE_EQ(spans[1].duration(), 7.0);
}

TEST(TraceTest, EndWithoutBeginIgnored) {
  Trace t;
  t.end_span(5.0, "x", "y", "k");
  EXPECT_TRUE(t.spans().empty());
}

TEST(TraceTest, ReopenOverwritesBegin) {
  Trace t;
  t.begin_span(1.0, "x", "y", "k");
  t.begin_span(3.0, "x", "y", "k");
  t.end_span(4.0, "x", "y", "k");
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(t.spans()[0].duration(), 1.0);
}

TEST(TraceTest, JsonExport) {
  Trace t;
  t.record(2.5, "saga", "job_submitted", {{"job", "42"}});
  auto j = t.to_json();
  ASSERT_TRUE(j.is_array());
  ASSERT_EQ(j.as_array().size(), 1u);
  const auto& e = j.as_array()[0];
  EXPECT_DOUBLE_EQ(e.at("t").as_number(), 2.5);
  EXPECT_EQ(e.at("attrs").at("job").as_string(), "42");
}

TEST(TraceTest, Clear) {
  Trace t;
  t.record(1.0, "a", "b");
  t.begin_span(1.0, "a", "s", "k");
  t.clear();
  EXPECT_TRUE(t.events().empty());
  t.end_span(2.0, "a", "s", "k");  // open span was cleared too
  EXPECT_TRUE(t.spans().empty());
}

}  // namespace
}  // namespace hoh::sim
