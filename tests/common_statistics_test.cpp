#include "common/statistics.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hoh::common {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138089935299395, 1e-12);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(7);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(PercentileTest, Basics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(PercentileTest, Interpolation) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.9), 9.0);
}

TEST(PercentileTest, EmptyAndClamped) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
  std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 2.0), 2.0);
}

TEST(SummarizeTest, Format) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const std::string line = summarize(s);
  EXPECT_NE(line.find("n=2"), std::string::npos);
  EXPECT_NE(line.find("mean=2.000"), std::string::npos);
}

class RngDistributionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngDistributionTest, UniformBoundsAndMean) {
  Rng rng(GetParam());
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(2.0, 6.0);
    ASSERT_GE(x, 2.0);
    ASSERT_LT(x, 6.0);
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST_P(RngDistributionTest, NormalAtLeastRespectsFloor) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(rng.normal_at_least(1.0, 5.0, 0.25), 0.25);
  }
}

TEST_P(RngDistributionTest, Determinism) {
  Rng a(GetParam());
  Rng b(GetParam());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngDistributionTest,
                         ::testing::Values(1u, 42u, 12345u));

}  // namespace
}  // namespace hoh::common
