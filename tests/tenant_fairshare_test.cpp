#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "tenant/accounting.h"
#include "tenant/fair_share.h"
#include "tenant/tenant.h"

namespace hoh::tenant {
namespace {

// ---- FairShareScheduler properties ----

TEST(FairShare, EqualSharesAndUsageDegeneratesToRoundRobin) {
  // With equal weights and equal per-pick charges, the tie-break (least
  // recently picked, then id) must cycle through every tenant before
  // repeating one — for any pick cadence.
  const std::vector<std::string> ids = {"a", "b", "c", "d"};
  for (const double dt : {0.0, 1.0, 17.5}) {
    FairShareScheduler fs(600.0);
    for (const auto& id : ids) fs.add_tenant(id, 1.0);
    double now = 0.0;
    std::vector<std::string> picks;
    for (int i = 0; i < 40; ++i) {
      const std::string winner = fs.pick(ids, now);
      ASSERT_FALSE(winner.empty());
      fs.charge(winner, 1.0, now);
      picks.push_back(winner);
      now += dt;
    }
    for (std::size_t w = 0; w + ids.size() <= picks.size();
         w += ids.size()) {
      std::set<std::string> window(picks.begin() + w,
                                   picks.begin() + w + ids.size());
      EXPECT_EQ(window.size(), ids.size())
          << "window at " << w << " (dt " << dt << ") repeats a tenant";
    }
  }
}

TEST(FairShare, PickSequenceIsDeterministic) {
  auto run = [] {
    FairShareScheduler fs(300.0);
    fs.add_tenant("x", 1.0);
    fs.add_tenant("y", 2.0);
    fs.add_tenant("z", 1.5);
    std::vector<std::string> picks;
    for (int i = 0; i < 30; ++i) {
      const std::string winner =
          fs.pick({"x", "y", "z"}, static_cast<double>(i));
      fs.charge(winner, 2.0, static_cast<double>(i));
      picks.push_back(winner);
    }
    return picks;
  };
  EXPECT_EQ(run(), run());
}

TEST(FairShare, UsageDecayHalvesOverOneHalfLife) {
  FairShareScheduler fs(100.0);
  fs.add_tenant("t", 1.0);
  fs.charge("t", 80.0, 0.0);
  EXPECT_NEAR(fs.decayed_usage("t", 0.0), 80.0, 1e-9);
  EXPECT_NEAR(fs.decayed_usage("t", 100.0), 40.0, 1e-9);
  EXPECT_NEAR(fs.decayed_usage("t", 200.0), 20.0, 1e-9);
}

TEST(FairShare, ServiceConvergesToShareWeights) {
  // Closed loop: every step serves the highest-priority tenant and
  // charges one unit of usage. In steady state decay balances inflow,
  // so pick rates converge to the share ratio 1:2:4.
  FairShareScheduler fs(100.0);
  fs.add_tenant("small", 1.0);
  fs.add_tenant("mid", 2.0);
  fs.add_tenant("big", 4.0);
  const std::vector<std::string> ids = {"small", "mid", "big"};
  std::map<std::string, int> counts;
  const int steps = 2000;
  for (int i = 0; i < steps; ++i) {
    const double now = static_cast<double>(i);
    const std::string winner = fs.pick(ids, now);
    fs.charge(winner, 1.0, now);
    if (i >= steps / 2) counts[winner] += 1;  // measure after warm-up
  }
  const double total = steps / 2.0;
  EXPECT_NEAR(counts["small"] / total, 1.0 / 7.0, 0.03);
  EXPECT_NEAR(counts["mid"] / total, 2.0 / 7.0, 0.03);
  EXPECT_NEAR(counts["big"] / total, 4.0 / 7.0, 0.03);
}

TEST(FairShare, RefundNeverDrivesUsageNegative) {
  FairShareScheduler fs(600.0);
  fs.add_tenant("t", 1.0);
  fs.charge("t", 10.0, 0.0);
  // Refund after some decay has eaten part of the original charge.
  fs.charge("t", -10.0, 600.0);
  EXPECT_GE(fs.decayed_usage("t", 600.0), 0.0);
}

TEST(FairShare, UnknownTenantThrows) {
  FairShareScheduler fs;
  EXPECT_THROW(fs.charge("ghost", 1.0, 0.0), common::NotFoundError);
  EXPECT_THROW(fs.decayed_usage("ghost", 0.0), common::NotFoundError);
  EXPECT_THROW((void)fs.add_tenant("", 1.0), common::ConfigError);
  EXPECT_THROW((void)fs.add_tenant("t", 0.0), common::ConfigError);
}

// ---- TokenBucket properties ----

TEST(TokenBucket, NeverExceedsRateTimesWindowAcrossSeeds) {
  // Property: for any arrival pattern, the number of accepted
  // submissions by time t never exceeds burst + rate·t.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    common::Rng rng(seed);
    const double rate = rng.uniform(0.5, 5.0);
    const double burst = rng.uniform(1.0, 6.0);
    TokenBucket bucket(rate, burst);
    double now = 0.0;
    int accepted = 0;
    for (int i = 0; i < 2000; ++i) {
      now += rng.exponential(1.0 / (4.0 * rate));  // ~4x overload
      if (bucket.try_take(now)) accepted += 1;
      EXPECT_LE(accepted, burst + rate * now + 1e-9)
          << "seed " << seed << " at t=" << now;
    }
    EXPECT_GT(accepted, 0);
  }
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0.0));
}

TEST(TokenBucket, RefillsToBurstCapOnly) {
  TokenBucket bucket(1.0, 3.0);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.try_take(0.0));
  EXPECT_FALSE(bucket.try_take(0.0));  // bucket drained
  EXPECT_NEAR(bucket.tokens(1000.0), 3.0, 1e-9);  // capped at burst
}

// ---- accounting ----

TEST(Accounting, JournalRoundTripReproducesAggregates) {
  AccountingStore store;
  store.on_submitted(0.0, "a", "u1");
  store.on_admitted(0.0, "a", "u1", false);
  store.on_dispatched(0.0, "a", "u1");
  store.on_started(4.0, "a", "u1", 4.0);
  store.on_completed(64.0, "a", "u1", 60.0);
  store.on_submitted(1.0, "b", "u2");
  store.on_rejected(1.0, "b", "u2", "rate-limit");
  store.on_submitted(2.0, "b", "u3");
  store.on_admitted(2.0, "b", "u3", true);
  store.on_dispatched(10.0, "b", "u3");
  store.on_started(30.0, "b", "u3", 28.0);
  store.on_preempted(40.0, "b", "u3");
  store.on_failed(41.0, "b", "u3");

  const AccountingStore replayed =
      AccountingStore::from_json(store.to_json());
  ASSERT_EQ(replayed.tenants().size(), 2u);
  const TenantUsage& a = replayed.usage("a");
  EXPECT_EQ(a.completed, 1u);
  EXPECT_DOUBLE_EQ(a.core_seconds, 60.0);
  EXPECT_DOUBLE_EQ(a.wait.mean(), 4.0);
  const TenantUsage& b = replayed.usage("b");
  EXPECT_EQ(b.rejected, 1u);
  EXPECT_EQ(b.preempted, 1u);
  EXPECT_EQ(b.failed, 1u);
  EXPECT_EQ(b.wait_histogram[wait_bucket(28.0)], 1u);
  EXPECT_EQ(replayed.to_json().dump(), store.to_json().dump());
}

TEST(Accounting, JainsIndexBounds) {
  EXPECT_DOUBLE_EQ(jains_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jains_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jains_index({5.0, 5.0, 5.0}), 1.0);
  EXPECT_NEAR(jains_index({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  const double j = jains_index({1.0, 2.0, 3.0});
  EXPECT_GT(j, 1.0 / 3.0);
  EXPECT_LT(j, 1.0);
}

TEST(Accounting, WaitBucketEdges) {
  EXPECT_EQ(wait_bucket(0.0), 0u);
  EXPECT_EQ(wait_bucket(0.999), 0u);
  EXPECT_EQ(wait_bucket(1.0), 1u);
  EXPECT_EQ(wait_bucket(99.9), 2u);
  EXPECT_EQ(wait_bucket(1000.0), 4u);
}

}  // namespace
}  // namespace hoh::tenant
