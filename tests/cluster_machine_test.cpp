#include "cluster/machine.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"

namespace hoh::cluster {
namespace {

TEST(MachineProfileTest, StampedeMatchesPaper) {
  const MachineProfile m = stampede_profile();
  EXPECT_EQ(m.name, "stampede");
  EXPECT_EQ(m.node.cores, 16);          // paper SS-IV
  EXPECT_EQ(m.node.memory_mb, 32 * 1024);
  EXPECT_FALSE(m.has_dedicated_hadoop);
  EXPECT_EQ(m.node.local_ssd_bw, 0.0);
}

TEST(MachineProfileTest, WranglerMatchesPaper) {
  const MachineProfile m = wrangler_profile();
  EXPECT_EQ(m.node.cores, 48);          // paper SS-IV
  EXPECT_EQ(m.node.memory_mb, 128 * 1024);
  EXPECT_TRUE(m.has_dedicated_hadoop);  // data-portal reservation (Mode II)
  EXPECT_GT(m.node.compute_rate, stampede_profile().node.compute_rate);
}

TEST(MachineProfileTest, WranglerLocalStorageFaster) {
  EXPECT_GT(wrangler_profile().node.local_disk_bw,
            stampede_profile().node.local_disk_bw);
}

TEST(BootstrapModelTest, YarnBootstrapInPaperRange) {
  // Paper SS-IV-A: "For a single node YARN environment, the overhead for
  // Mode I (Hadoop on HPC) is between 50-85 sec depending upon the
  // resource selected."
  const double stampede =
      stampede_profile().bootstrap.yarn_bootstrap_time(1);
  const double wrangler =
      wrangler_profile().bootstrap.yarn_bootstrap_time(1);
  EXPECT_GE(stampede, 50.0);
  EXPECT_LE(stampede, 95.0);
  EXPECT_GE(wrangler, 40.0);
  EXPECT_LE(wrangler, 60.0);
  EXPECT_LT(wrangler, stampede);
}

TEST(BootstrapModelTest, BootstrapGrowsWithNodes) {
  const auto& b = stampede_profile().bootstrap;
  EXPECT_GT(b.yarn_bootstrap_time(8), b.yarn_bootstrap_time(1));
  EXPECT_NEAR(b.yarn_bootstrap_time(4) - b.yarn_bootstrap_time(3),
              b.worker_daemon_start, 1e-9);
}

TEST(BootstrapModelTest, SparkCheaperThanYarn) {
  const auto& b = stampede_profile().bootstrap;
  EXPECT_LT(b.spark_bootstrap_time(3), b.yarn_bootstrap_time(3));
}

TEST(MachineProfileTest, StorageDispatch) {
  const MachineProfile m = wrangler_profile();
  const common::Bytes bytes = 64 * common::kMiB;
  EXPECT_GT(m.storage_transfer_time(StorageBackend::kSharedFs, bytes, 1), 0.0);
  EXPECT_GT(m.storage_transfer_time(StorageBackend::kLocalDisk, bytes, 1), 0.0);
  EXPECT_GT(m.storage_transfer_time(StorageBackend::kLocalSsd, bytes, 1), 0.0);
  EXPECT_LT(m.storage_transfer_time(StorageBackend::kMemory, bytes, 1),
            m.storage_transfer_time(StorageBackend::kLocalDisk, bytes, 1));
}

TEST(MachineProfileTest, SsdUnavailableOnStampede) {
  const MachineProfile m = stampede_profile();
  EXPECT_THROW(
      m.storage_transfer_time(StorageBackend::kLocalSsd, 1024, 1),
      common::ResourceError);
}

TEST(AllocationTest, Totals) {
  NodeSpec spec;
  spec.cores = 16;
  spec.memory_mb = 32 * 1024;
  std::vector<std::shared_ptr<Node>> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(std::make_shared<Node>("n" + std::to_string(i), spec));
  }
  Allocation alloc(nodes);
  EXPECT_EQ(alloc.size(), 3u);
  EXPECT_EQ(alloc.total_cores(), 48);
  EXPECT_EQ(alloc.total_memory_mb(), 3 * 32 * 1024);
  EXPECT_EQ(alloc.node_names(),
            (std::vector<std::string>{"n0", "n1", "n2"}));
}

TEST(AllocationTest, EmptyAllocation) {
  Allocation alloc;
  EXPECT_TRUE(alloc.empty());
  EXPECT_EQ(alloc.total_cores(), 0);
}

TEST(GenericProfileTest, Parameterized) {
  const MachineProfile m = generic_profile(4, 12, 24 * 1024);
  EXPECT_EQ(m.total_nodes, 4);
  EXPECT_EQ(m.node.cores, 12);
  EXPECT_EQ(m.node.memory_mb, 24 * 1024);
}

}  // namespace
}  // namespace hoh::cluster
