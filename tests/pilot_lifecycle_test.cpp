#include <gtest/gtest.h>

#include "common/error.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

namespace hoh::pilot {
namespace {

/// Full-stack fixture: one session with Stampede (SLURM) and Wrangler
/// (SGE, with a dedicated Hadoop environment for Mode II).
class PilotLifecycleTest : public ::testing::Test {
 protected:
  PilotLifecycleTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 8);
    session_.register_machine(cluster::wrangler_profile(),
                              hpc::SchedulerKind::kSge, 8);
    session_.create_dedicated_hadoop("wrangler", 3);
  }

  PilotDescription plain_pilot(const std::string& resource, int nodes) {
    PilotDescription pd;
    pd.resource = resource;
    pd.nodes = nodes;
    pd.runtime = 7200.0;
    return pd;
  }

  ComputeUnitDescription simple_unit(common::Seconds duration = 5.0) {
    ComputeUnitDescription cud;
    cud.duration = duration;
    cud.cores = 1;
    cud.memory_mb = 1024;
    return cud;
  }

  Session session_;
  PilotManager pm_{session_};
  UnitManager um_{session_};
};

TEST_F(PilotLifecycleTest, PlainPilotStateProgression) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 2));
  std::vector<PilotState> states;
  pilot->on_state_change([&](PilotState s) { states.push_back(s); });
  EXPECT_EQ(pilot->state(), PilotState::kPendingLaunch);
  session_.engine().run_until(120.0);
  EXPECT_EQ(pilot->state(), PilotState::kActive);
  EXPECT_EQ(states, (std::vector<PilotState>{PilotState::kLaunching,
                                             PilotState::kActive}));
  ASSERT_NE(pilot->agent(), nullptr);
  EXPECT_TRUE(pilot->agent()->active());
  EXPECT_EQ(pilot->agent()->allocation().size(), 2u);
}

TEST_F(PilotLifecycleTest, InvalidResourceRejected) {
  EXPECT_THROW(pm_.submit_pilot(PilotDescription{}), common::ConfigError);
  PilotDescription pd;
  pd.resource = "slurm://unknown-machine/";
  EXPECT_THROW(pm_.submit_pilot(pd), common::NotFoundError);
}

TEST_F(PilotLifecycleTest, UnitsExecuteOnPlainPilot) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  auto units = um_.submit(
      std::vector<ComputeUnitDescription>(8, simple_unit(10.0)));
  EXPECT_EQ(units.size(), 8u);
  session_.engine().run_until(300.0);
  EXPECT_TRUE(um_.all_done());
  EXPECT_EQ(um_.done_count(), 8u);
  for (const auto& u : units) EXPECT_EQ(u->state(), UnitState::kDone);
  EXPECT_EQ(pilot->agent()->units_completed(), 8u);
}

TEST_F(PilotLifecycleTest, UnitsQueueWhenPilotSaturated) {
  // 1 Stampede node = 16 cores; 32 single-core units of 50 s run in two
  // waves.
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  auto units = um_.submit(
      std::vector<ComputeUnitDescription>(32, simple_unit(50.0)));
  session_.engine().run_until(80.0);
  // First wave running, second wave still queued.
  EXPECT_EQ(pilot->agent()->units_running(), 16u);
  EXPECT_EQ(pilot->agent()->units_queued(), 16u);
  session_.engine().run_until(400.0);
  EXPECT_TRUE(um_.all_done());
}

TEST_F(PilotLifecycleTest, MemoryLimitsConstrainPlainScheduling) {
  // Stampede node: 32 GB. 16 cores but only 3 units of 10 GB fit at once.
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  ComputeUnitDescription big = simple_unit(50.0);
  big.memory_mb = 10 * 1024;
  um_.submit(std::vector<ComputeUnitDescription>(6, big));
  session_.engine().run_until(120.0);
  EXPECT_EQ(pilot->agent()->units_running(), 3u);
  session_.engine().run_until(500.0);
  EXPECT_TRUE(um_.all_done());
}

TEST_F(PilotLifecycleTest, MpiUnitsGangScheduleCores) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  ComputeUnitDescription mpi = simple_unit(20.0);
  mpi.cores = 16;
  mpi.is_mpi = true;
  auto unit = um_.submit(mpi);
  session_.engine().run_until(200.0);
  EXPECT_EQ(unit->state(), UnitState::kDone);
}

TEST_F(PilotLifecycleTest, PilotCancelCancelsQueuedUnits) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  // 17th unit can never start on 16 cores before cancellation.
  auto units = um_.submit(
      std::vector<ComputeUnitDescription>(17, simple_unit(500.0)));
  session_.engine().run_until(120.0);
  pilot->cancel();
  EXPECT_EQ(pilot->state(), PilotState::kCanceled);
  session_.engine().run_until(130.0);
  EXPECT_EQ(units.back()->state(), UnitState::kCanceled);
}

TEST_F(PilotLifecycleTest, WalltimeExpiryFailsPilot) {
  PilotDescription pd = plain_pilot("slurm://stampede/", 1);
  pd.runtime = 100.0;  // expires before the unit finishes
  auto pilot = pm_.submit_pilot(pd);
  um_.add_pilot(pilot);
  um_.submit(simple_unit(5000.0));
  session_.engine().run_until(300.0);
  EXPECT_EQ(pilot->state(), PilotState::kFailed);
}

TEST_F(PilotLifecycleTest, RoundRobinAcrossTwoPilots) {
  auto p0 = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  auto p1 = pm_.submit_pilot(plain_pilot("sge://wrangler/", 1));
  um_.add_pilot(p0);
  um_.add_pilot(p1);
  auto units = um_.submit(
      std::vector<ComputeUnitDescription>(10, simple_unit(5.0)));
  int on_p0 = 0;
  for (const auto& u : units) {
    if (u->pilot_id() == p0->id()) ++on_p0;
  }
  EXPECT_EQ(on_p0, 5);
  session_.engine().run_until(300.0);
  EXPECT_TRUE(um_.all_done());
}

TEST_F(PilotLifecycleTest, StagingStatesTraversed) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  ComputeUnitDescription cud = simple_unit(5.0);
  cud.input_staging = {
      StagedFile{saga::Url("file://stampede/in.dat"), 64 * common::kMiB}};
  cud.output_staging = {
      StagedFile{saga::Url("file://stampede/out.dat"), 16 * common::kMiB}};
  auto unit = um_.submit(cud);
  session_.engine().run_until(300.0);
  EXPECT_EQ(unit->state(), UnitState::kDone);
  // The trace shows the full state sequence including staging.
  std::vector<std::string> names;
  for (const auto& e : session_.trace().find("unit")) {
    if (e.attrs.count("unit") && e.attrs.at("unit") == unit->id()) {
      names.push_back(e.name);
    }
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "StagingInput"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "StagingOutput"),
            names.end());
  EXPECT_EQ(names.back(), "Done");
}

TEST_F(PilotLifecycleTest, UnitStartupSpanRecorded) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  um_.submit(simple_unit(1.0));
  session_.engine().run_until(300.0);
  const auto spans = session_.trace().find_spans("unit", "startup");
  ASSERT_EQ(spans.size(), 1u);
  // Unit was submitted before the pilot was active, so startup includes
  // pilot wait; it must end exactly when Executing was reached.
  EXPECT_GT(spans[0].duration(), 0.0);
}

TEST_F(PilotLifecycleTest, SubmitWithoutPilotsThrows) {
  EXPECT_THROW(um_.submit(simple_unit()), common::StateError);
}

TEST_F(PilotLifecycleTest, InvalidUnitRejected) {
  auto pilot = pm_.submit_pilot(plain_pilot("slurm://stampede/", 1));
  um_.add_pilot(pilot);
  ComputeUnitDescription bad;
  bad.cores = 0;
  EXPECT_THROW(um_.submit(bad), common::ConfigError);
}

}  // namespace
}  // namespace hoh::pilot
