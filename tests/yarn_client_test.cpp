#include "yarn/yarn_client.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "mapreduce/yarn_mr_driver.h"
#include "yarn/application_master.h"

namespace hoh {
namespace {

class YarnClientTest : public ::testing::Test {
 protected:
  YarnClientTest() : machine_(cluster::generic_profile(3, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
    rm_ = std::make_unique<yarn::ResourceManager>(engine_, allocation_);
  }
  ~YarnClientTest() override { rm_->shutdown(); }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
  std::unique_ptr<yarn::ResourceManager> rm_;
};

TEST_F(YarnClientTest, SubmitStatusList) {
  yarn::YarnClient client(*rm_);
  yarn::AppDescriptor app;
  app.name = "sleepjob";
  app.on_am_start = [](yarn::ApplicationMaster& am) { am.unregister(true); };
  const auto id = client.submit(std::move(app));
  EXPECT_EQ(client.status(id).name, "sleepjob");
  engine_.run_until(60.0);
  EXPECT_EQ(client.status(id).state, yarn::AppState::kFinished);
  EXPECT_EQ(client.list().size(), 1u);
  EXPECT_EQ(client.list(yarn::AppState::kFinished).size(), 1u);
  EXPECT_TRUE(client.list(yarn::AppState::kRunning).empty());
}

TEST_F(YarnClientTest, KillThroughClient) {
  yarn::YarnClient client(*rm_);
  yarn::AppDescriptor app;
  app.on_am_start = [](yarn::ApplicationMaster&) {};  // hangs
  const auto id = client.submit(std::move(app));
  engine_.run_until(60.0);
  ASSERT_EQ(client.status(id).state, yarn::AppState::kRunning);
  client.kill(id);
  EXPECT_EQ(client.status(id).state, yarn::AppState::kKilled);
}

TEST_F(YarnClientTest, LogsAccumulate) {
  yarn::YarnClient client(*rm_);
  yarn::AppDescriptor app;
  app.on_am_start = [](yarn::ApplicationMaster& am) { am.unregister(true); };
  const auto id = client.submit(std::move(app));
  client.append_log(id, "map 100% reduce 0%");
  client.append_log(id, "map 100% reduce 100%");
  ASSERT_EQ(client.logs(id).size(), 3u);  // "submitted" + 2
  EXPECT_EQ(client.logs(id).back(), "map 100% reduce 100%");
  EXPECT_TRUE(client.logs("application_nope").empty());
}

// ------------------------------------------------- MR-over-YARN driver ---

TEST_F(YarnClientTest, MrJobRunsMapThenReduce) {
  mapreduce::YarnMrDriver driver(*rm_);
  bool done = false;
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 6;
  spec.reduce_tasks = 2;
  spec.map_task_seconds = 20.0;
  spec.reduce_task_seconds = 10.0;
  const auto id = driver.submit(spec, [&] { done = true; });

  // Mid-flight: maps progress before any reduce starts (maps finish
  // around t=42; reduce containers need allocation + launch after that).
  engine_.run_until(45.0);
  const auto mid = driver.status(id);
  EXPECT_GT(mid.maps_done, 0);
  EXPECT_EQ(mid.reduces_done, 0);

  engine_.run_until(400.0);
  const auto fin = driver.status(id);
  EXPECT_TRUE(done);
  EXPECT_TRUE(fin.finished);
  EXPECT_EQ(fin.maps_done, 6);
  EXPECT_EQ(fin.reduces_done, 2);
  EXPECT_EQ(rm_->application(id).state, yarn::AppState::kFinished);
  // All resources returned.
  EXPECT_EQ(rm_->total_allocated().memory_mb, 0);
}

TEST_F(YarnClientTest, MrJobHonorsSplitLocality) {
  mapreduce::YarnMrDriver driver(*rm_);
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 3;
  spec.reduce_tasks = 1;
  spec.map_task_seconds = 5.0;
  spec.reduce_task_seconds = 2.0;
  spec.split_locations = {"n0", "n1", "n2"};  // one split per node
  const auto id = driver.submit(spec);
  engine_.run_until(300.0);
  const auto status = driver.status(id);
  ASSERT_TRUE(status.finished);
  // With an idle cluster every map lands on its split's node.
  EXPECT_DOUBLE_EQ(status.map_locality, 1.0);
}

TEST_F(YarnClientTest, MapOnlyJob) {
  mapreduce::YarnMrDriver driver(*rm_);
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 2;
  spec.reduce_tasks = 0;
  spec.map_task_seconds = 5.0;
  const auto id = driver.submit(spec);
  engine_.run_until(120.0);
  EXPECT_TRUE(driver.status(id).finished);
}

TEST_F(YarnClientTest, MrSpecValidation) {
  mapreduce::YarnMrDriver driver(*rm_);
  mapreduce::YarnMrJobSpec bad;
  bad.map_tasks = 0;
  EXPECT_THROW(driver.submit(bad), common::ConfigError);
  EXPECT_THROW(driver.status("nope"), common::NotFoundError);
}

TEST_F(YarnClientTest, TwoConcurrentMrJobsShareCluster) {
  mapreduce::YarnMrDriver driver(*rm_);
  int done = 0;
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 4;
  spec.reduce_tasks = 1;
  spec.map_task_seconds = 15.0;
  spec.reduce_task_seconds = 5.0;
  driver.submit(spec, [&] { ++done; });
  driver.submit(spec, [&] { ++done; });
  engine_.run_until(600.0);
  EXPECT_EQ(done, 2);
}

}  // namespace
}  // namespace hoh
