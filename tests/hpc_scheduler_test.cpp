#include "hpc/batch_scheduler.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/engine.h"

namespace hoh::hpc {
namespace {

class BatchSchedulerTest : public ::testing::Test {
 protected:
  BatchSchedulerTest()
      : profile_(cluster::generic_profile(4, 8, 16 * 1024)),
        sched_(engine_, profile_, 4) {}

  sim::Engine engine_;
  cluster::MachineProfile profile_;
  BatchScheduler sched_;
};

TEST_F(BatchSchedulerTest, PoolConstruction) {
  EXPECT_EQ(sched_.pool_size(), 4);
  EXPECT_EQ(sched_.free_nodes(), 4);
}

TEST_F(BatchSchedulerTest, SubmitValidation) {
  EXPECT_THROW(sched_.submit(BatchJobRequest{"j", 0, 10.0, "q", ""}, nullptr),
               common::ConfigError);
  EXPECT_THROW(sched_.submit(BatchJobRequest{"j", 5, 10.0, "q", ""}, nullptr),
               common::ResourceError);
}

TEST_F(BatchSchedulerTest, JobStartsAfterSubmitLatencyAndProlog) {
  double started_at = -1.0;
  cluster::Allocation got;
  const auto id = sched_.submit(
      BatchJobRequest{"pilot", 2, 600.0, "normal", ""},
      [&](const std::string&, const cluster::Allocation& alloc) {
        started_at = engine_.now();
        got = alloc;
      });
  EXPECT_EQ(sched_.state(id), BatchJobState::kPending);
  engine_.run_until(100.0);
  EXPECT_EQ(sched_.state(id), BatchJobState::kRunning);
  EXPECT_DOUBLE_EQ(started_at,
                   profile_.scheduler_submit_latency + profile_.job_prolog_time);
  EXPECT_EQ(got.size(), 2u);
  EXPECT_EQ(sched_.free_nodes(), 2);
}

TEST_F(BatchSchedulerTest, CompleteReleasesNodes) {
  const auto id = sched_.submit(BatchJobRequest{"j", 3, 600.0, "q", ""},
                                nullptr);
  engine_.run_until(50.0);
  ASSERT_EQ(sched_.state(id), BatchJobState::kRunning);
  sched_.complete(id);
  EXPECT_EQ(sched_.state(id), BatchJobState::kCompleted);
  EXPECT_EQ(sched_.free_nodes(), 4);
}

TEST_F(BatchSchedulerTest, EndCallbackFires) {
  BatchJobState final_state = BatchJobState::kPending;
  const auto id = sched_.submit(
      BatchJobRequest{"j", 1, 600.0, "q", ""}, nullptr,
      [&](const std::string&, BatchJobState s) { final_state = s; });
  engine_.run_until(50.0);
  sched_.complete(id);
  EXPECT_EQ(final_state, BatchJobState::kCompleted);
}

TEST_F(BatchSchedulerTest, WalltimeEnforced) {
  BatchJobState final_state = BatchJobState::kPending;
  const auto id = sched_.submit(
      BatchJobRequest{"j", 1, 60.0, "q", ""}, nullptr,
      [&](const std::string&, BatchJobState s) { final_state = s; });
  engine_.run();
  EXPECT_EQ(sched_.state(id), BatchJobState::kTimedOut);
  EXPECT_EQ(final_state, BatchJobState::kTimedOut);
  EXPECT_EQ(sched_.free_nodes(), 4);
}

TEST_F(BatchSchedulerTest, CancelPendingJob) {
  // Fill the machine so the next job stays queued.
  const auto big = sched_.submit(BatchJobRequest{"big", 4, 600.0, "q", ""},
                                 nullptr);
  engine_.run_until(20.0);
  ASSERT_EQ(sched_.state(big), BatchJobState::kRunning);
  const auto queued = sched_.submit(BatchJobRequest{"q", 1, 600.0, "q", ""},
                                    nullptr);
  engine_.run_until(40.0);
  EXPECT_EQ(sched_.state(queued), BatchJobState::kPending);
  sched_.cancel(queued);
  EXPECT_EQ(sched_.state(queued), BatchJobState::kCancelled);
}

TEST_F(BatchSchedulerTest, CancelRunningJobReleasesNodes) {
  const auto id = sched_.submit(BatchJobRequest{"j", 2, 600.0, "q", ""},
                                nullptr);
  engine_.run_until(20.0);
  sched_.cancel(id);
  EXPECT_EQ(sched_.state(id), BatchJobState::kCancelled);
  EXPECT_EQ(sched_.free_nodes(), 4);
}

TEST_F(BatchSchedulerTest, FifoQueueing) {
  const auto a = sched_.submit(BatchJobRequest{"a", 3, 100.0, "q", ""},
                               nullptr);
  const auto b = sched_.submit(BatchJobRequest{"b", 3, 100.0, "q", ""},
                               nullptr);
  engine_.run_until(20.0);
  EXPECT_EQ(sched_.state(a), BatchJobState::kRunning);
  EXPECT_EQ(sched_.state(b), BatchJobState::kPending);
  sched_.complete(a);
  engine_.run_until(40.0);
  EXPECT_EQ(sched_.state(b), BatchJobState::kRunning);
}

TEST_F(BatchSchedulerTest, FifoHeadOfLineBlocks) {
  sched_.set_policy(BatchScheduler::Policy::kFifo);
  const auto a = sched_.submit(BatchJobRequest{"a", 3, 1000.0, "q", ""},
                               nullptr);
  const auto big = sched_.submit(BatchJobRequest{"big", 4, 100.0, "q", ""},
                                 nullptr);
  const auto small = sched_.submit(BatchJobRequest{"small", 1, 10.0, "q", ""},
                                   nullptr);
  engine_.run_until(50.0);
  EXPECT_EQ(sched_.state(a), BatchJobState::kRunning);
  // Under strict FIFO the 1-node job may NOT jump the queue.
  EXPECT_EQ(sched_.state(big), BatchJobState::kPending);
  EXPECT_EQ(sched_.state(small), BatchJobState::kPending);
}

TEST_F(BatchSchedulerTest, BackfillLetsShortJobJumpSafely) {
  sched_.set_policy(BatchScheduler::Policy::kBackfill);
  const auto a = sched_.submit(BatchJobRequest{"a", 3, 1000.0, "q", ""},
                               nullptr);
  const auto big = sched_.submit(BatchJobRequest{"big", 4, 100.0, "q", ""},
                                 nullptr);
  // Short job fits in the 1 free node and finishes (walltime 10s) long
  // before the head job's reservation (~1000s out).
  const auto small = sched_.submit(BatchJobRequest{"small", 1, 10.0, "q", ""},
                                   nullptr);
  engine_.run_until(50.0);
  EXPECT_EQ(sched_.state(a), BatchJobState::kRunning);
  EXPECT_EQ(sched_.state(big), BatchJobState::kPending);
  EXPECT_TRUE(sched_.state(small) == BatchJobState::kRunning ||
              sched_.state(small) == BatchJobState::kTimedOut);
}

TEST_F(BatchSchedulerTest, BaseQueueWaitDelaysEligibility) {
  sched_.set_base_queue_wait(120.0);
  const auto id = sched_.submit(BatchJobRequest{"j", 1, 600.0, "q", ""},
                                nullptr);
  engine_.run_until(60.0);
  EXPECT_EQ(sched_.state(id), BatchJobState::kPending);
  engine_.run_until(140.0);
  EXPECT_EQ(sched_.state(id), BatchJobState::kRunning);
  EXPECT_GE(sched_.queue_wait(id), 120.0);
}

TEST_F(BatchSchedulerTest, UnknownJobThrows) {
  EXPECT_THROW(sched_.state("nope"), common::NotFoundError);
  EXPECT_THROW(sched_.cancel("nope"), common::NotFoundError);
}

TEST_F(BatchSchedulerTest, SequentialJobsReuseNodes) {
  for (int i = 0; i < 3; ++i) {
    const auto id = sched_.submit(BatchJobRequest{"j", 4, 600.0, "q", ""},
                                  nullptr);
    engine_.run_until(engine_.now() + 30.0);
    ASSERT_EQ(sched_.state(id), BatchJobState::kRunning) << "round " << i;
    sched_.complete(id);
    engine_.run_until(engine_.now() + 10.0);
  }
  EXPECT_EQ(sched_.free_nodes(), 4);
}

}  // namespace
}  // namespace hoh::hpc
