#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace hoh::common {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZero) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForSum) {
  ThreadPool pool;
  std::vector<long> vals(10000);
  pool.parallel_for(vals.size(),
                    [&vals](std::size_t i) { vals[i] = static_cast<long>(i); });
  const long sum = std::accumulate(vals.begin(), vals.end(), 0L);
  EXPECT_EQ(sum, 10000L * 9999L / 2);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, WaitIdleSeesEveryQueuedTaskFinished) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      count.fetch_add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing queued: must not block
  auto fut = pool.submit([] { return 7; });
  pool.wait_idle();
  EXPECT_EQ(fut.get(), 7);
}

TEST(ThreadPoolTest, CountersTrackSubmittedAndCompleted) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_submitted(), 0u);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_submitted(), 50u);
  EXPECT_EQ(pool.tasks_completed(), 50u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, CountersVisibleWhileTasksInFlight) {
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.submit([&release] {
      while (!release.load()) std::this_thread::yield();
    }));
  }
  // Reading the counters mid-flight from this thread must be safe (they
  // are GUARDED_BY the pool mutex) and must already see all submissions.
  EXPECT_EQ(pool.tasks_submitted(), 4u);
  EXPECT_LE(pool.tasks_completed(), 4u);
  release.store(true);
  for (auto& f : futures) f.get();
  pool.wait_idle();
  EXPECT_EQ(pool.tasks_completed(), 4u);
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 5; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 6);
}

}  // namespace
}  // namespace hoh::common
