// Known-bad fixture for hoh_analyze rule lock-order-self: re-acquiring a
// held (non-recursive) mutex on the same path.
namespace fixture_self {

struct Recur {
  common::Mutex mu_;
  int v_ HOH_GUARDED_BY(mu_) = 0;

  void outer() {
    common::MutexLock lock(mu_);
    {
      common::MutexLock again(mu_);                 // EXPECT: lock-order-self
      ++v_;
    }
  }
};

}  // namespace fixture_self
