// Known-bad fixture for hoh_analyze rule state-write: lifecycle enum
// stores outside the designated gates. A declaration with an initializer
// and the gate functions themselves stay clean.
namespace fixture_state {

enum class UnitState { kNew, kDone };
enum class PilotState { kNew, kRunning };

struct UnitRec {
  UnitState state = UnitState::kNew;
};

struct Rogue {
  void flip(UnitRec& unit) {
    unit.state = UnitState::kDone;                  // EXPECT: state-write
  }
  void forward(UnitRec& unit, UnitState next) {
    unit.state = next;                              // EXPECT: state-write
  }
  void pilot_write(PilotState next) {
    state_ = next;                                  // EXPECT: state-write
  }
  void local_decl_ok() {
    UnitState state = UnitState::kNew;  // declaration, not a store: clean
    (void)state;
  }
  PilotState state_ = PilotState::kNew;
};

struct Agent {
  // Byte-identical body to Rogue::flip, but this is a designated gate
  // (Agent::set_unit_state routes through StateStore::update).
  void set_unit_state(UnitRec& unit, UnitState state) {
    unit.state = state;  // gate function: clean
  }
};

}  // namespace fixture_state
