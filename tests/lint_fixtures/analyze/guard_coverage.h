// Known-bad fixture for hoh_analyze rules guard-missing and
// guard-local-mutex (annotation-coverage family).
namespace fixture_guard {

struct Unguarded {
  mutable common::Mutex mu_;                        // EXPECT: guard-missing
  int counter_ = 0;
};

struct Annotated {
  mutable common::Mutex mu_;  // guards counter_: clean
  int counter_ HOH_GUARDED_BY(mu_) = 0;
};

inline void local_mutex_bad() {
  common::Mutex mu;                                 // EXPECT: guard-local-mutex
  common::MutexLock lock(mu);
}

}  // namespace fixture_guard
