// Fixture for the suppression machinery: a justified `allow(...)` hides
// the finding; an unjustified one (no `--` explanation) hides it but is
// itself reported as suppression-unjustified.
#include <cstdlib>

namespace fixture_sup {

inline int justified() {
  return std::rand();  // hoh-analyze: allow(det-rand) -- fixture: justified suppression is honoured
}

inline int lazy() {
  // hoh-analyze: allow-next-line(det-rand)         // EXPECT: suppression-unjustified
  return std::rand();
}

}  // namespace fixture_sup
