// Known-bad fixture for hoh_analyze rules det-rand and det-unseeded-rng.
#include <cstdlib>
#include <random>

namespace fixture_rand {

int bad_rand() {
  std::random_device rd;                            // EXPECT: det-rand
  std::srand(42);                                   // EXPECT: det-rand
  (void)rd;
  return std::rand();                               // EXPECT: det-rand
}

int bad_unseeded() {
  std::mt19937 gen;                                 // EXPECT: det-unseeded-rng
  std::mt19937_64 gen64{};                          // EXPECT: det-unseeded-rng
  return static_cast<int>(gen() + gen64());
}

int seeded_ok(unsigned seed) {
  std::mt19937 gen(seed);  // explicit seed: clean
  return static_cast<int>(gen());
}

}  // namespace fixture_rand
