// Fixture for the wire-encoding rule: ad-hoc serialization outside
// src/net/. Every wire image must come from the net::Packer codec —
// pointer reinterpretation, struct memcpy and naked byte-order
// intrinsics are host-dependent and invisible to the codec fuzz tests.
#include <cstdint>
#include <cstring>

struct Header {
  std::uint32_t magic;
  std::uint16_t port;
};

void serialize_struct(const Header& h, unsigned char* out) {
  std::memcpy(out, &h, sizeof(h));                  // EXPECT: wire-encoding
}

const Header* deserialize_struct(const unsigned char* in) {
  return reinterpret_cast<const Header*>(in);       // EXPECT: wire-encoding
}

void shift_bytes(unsigned char* buf, std::size_t n) {
  std::memmove(buf, buf + 4, n - 4);                // EXPECT: wire-encoding
}

unsigned short naked_byteorder(const Header& h) {
  const unsigned long be = htonl(h.magic);          // EXPECT: wire-encoding
  return htons(h.port) + static_cast<unsigned short>(be);  // EXPECT: wire-encoding
}
