// Known-bad fixture for hoh_analyze rule det-wallclock. Not compiled —
// consumed by tools/lint/test_lint_rules.py, which asserts each rule
// fires exactly on the lines annotated `EXPECT: <rule>`.
#include <chrono>
#include <ctime>

namespace fixture_wall {

double bad_wallclock() {
  auto a = std::chrono::system_clock::now();        // EXPECT: det-wallclock
  auto b = std::chrono::steady_clock::now();        // EXPECT: det-wallclock
  auto c = std::chrono::high_resolution_clock::now();  // EXPECT: det-wallclock
  struct timespec ts;
  clock_gettime(0, &ts);                            // EXPECT: det-wallclock
  std::clock();                                     // EXPECT: det-wallclock
  (void)a;
  (void)b;
  (void)c;
  return 0.0;
}

double fine_sim_time(double now) {
  return now;  // sim::Engine::now() flows in as a parameter: clean
}

}  // namespace fixture_wall
