// Known-bad fixture for hoh_analyze rule lock-order-cycle: two mutexes
// acquired in both nesting orders inside one translation unit.
namespace fixture_cycle {

struct Pair {
  common::Mutex a_;
  common::Mutex b_;
  int left_ HOH_GUARDED_BY(a_) = 0;
  int right_ HOH_GUARDED_BY(b_) = 0;

  void forward() {
    common::MutexLock la(a_);
    common::MutexLock lb(b_);                       // EXPECT: lock-order-cycle
    ++left_;
    ++right_;
  }

  void backward() {
    common::MutexLock lb(b_);
    common::MutexLock la(a_);
    ++left_;
    ++right_;
  }
};

}  // namespace fixture_cycle
