// Known-bad fixture for the interprocedural half of lock-order-cycle:
// each side holds its own mutex while calling into the other, so the
// cycle only appears once callee acquisitions are propagated into the
// nesting graph.
namespace fixture_ipc {

struct IpcRight;

struct IpcLeft {
  common::Mutex mu_;
  int v_ HOH_GUARDED_BY(mu_) = 0;
  void lock_then_call(IpcRight& r);
};

struct IpcRight {
  common::Mutex mu_;
  int v_ HOH_GUARDED_BY(mu_) = 0;
  void lock_then_call_back(IpcLeft& l);
};

void IpcLeft::lock_then_call(IpcRight& r) {
  common::MutexLock lock(mu_);
  r.lock_then_call_back(*this);                     // EXPECT: lock-order-cycle
  ++v_;
}

void IpcRight::lock_then_call_back(IpcLeft& l) {
  common::MutexLock lock(mu_);
  l.lock_then_call(*this);
  ++v_;
}

}  // namespace fixture_ipc
