// Known-bad fixture for hoh_analyze rule det-unordered-emit: iteration
// over an unordered container whose body reaches an emission path
// (directly, or transitively through a helper) leaks hash-bucket order
// into replayable output. Gather-only iteration stays clean, as does an
// iteration over an ordered std::map.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture_unordered {

struct Trace {
  void record(int value);
};

struct Emitter {
  std::unordered_map<int, int> table_;
  Trace trace_;

  void helper(int value) { trace_.record(value); }

  void bad_direct() {
    for (const auto& kv : table_) {                 // EXPECT: det-unordered-emit
      trace_.record(kv.second);
    }
  }

  void bad_transitive() {
    for (const auto& kv : table_) {                 // EXPECT: det-unordered-emit
      helper(kv.first);
    }
  }

  void good_gather_only() {
    std::vector<int> keys;
    for (const auto& kv : table_) {  // gathers into a sortable copy: clean
      keys.push_back(kv.first);
    }
  }

  void suppressed() {
    // hoh-analyze: allow-next-line(det-unordered-emit) -- fixture: justified suppression is honoured
    for (const auto& kv : table_) {
      helper(kv.second);
    }
  }
};

struct OrderedEmitter {
  std::map<int, int> table_;
  Trace trace_;

  void fine() {
    for (const auto& kv : table_) {  // ordered container: clean
      trace_.record(kv.second);
    }
  }
};

}  // namespace fixture_unordered
