// Negative fixture: this path mirrors the PRIMITIVE_ALLOWLIST entry, so
// the naked primitive below must NOT be flagged — proving the allowlist
// is keyed on the fixture-root-relative path.
namespace fixture {

struct Wrapper {
  std::mutex mu_;  // allowlisted file: clean
};

}  // namespace fixture
