// Known-bad fixture for tools/lint/check_concurrency.py rules 1-4.
// Not compiled — consumed by tools/lint/test_lint_rules.py, which asserts
// each rule fires exactly on the lines annotated `EXPECT: lint-ruleN`.
#include <mutex>
#include <thread>

namespace fixture {

void bad() {
  std::mutex m;                                     // EXPECT: lint-rule1
  std::lock_guard<std::mutex> lock(m);              // EXPECT: lint-rule1
  std::condition_variable cv;                       // EXPECT: lint-rule1
  std::thread t([] {});                             // EXPECT: lint-rule2
  t.detach();                                       // EXPECT: lint-rule3
}

struct Pool {
  template <typename F>
  void submit(F f);
  void go();
  void kick() {
    submit([this] { go(); });                       // EXPECT: lint-rule4
  }
};

}  // namespace fixture
