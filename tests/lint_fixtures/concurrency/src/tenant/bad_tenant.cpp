// Rule 6 fixture: the tenant subsystem is deterministic engine-driven
// code — atomics are banned outright, and a common::Mutex declared in a
// tenant file without any guard annotation in the file is a violation.
// (The guard macro's name must not appear in any non-comment line here,
// or the per-file guard detection would see it.)
#include <atomic>

namespace fixture {

struct Gateway {
  std::atomic<int> counter_{0};                     // EXPECT: lint-rule6
  common::Mutex mu_;                                // EXPECT: lint-rule6b
  int queued_ = 0;
};

}  // namespace fixture
