// Rule 6 negative fixture: a tenant-file mutex paired with a guard
// annotation is fine.
namespace fixture {

struct GatewayOk {
  common::Mutex mu_;
  int queued_ HOH_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
