// Rule 5 fixture: this path has a PERIODIC_BUDGET of 1, so the first
// schedule_periodic site is within budget and the second is over it.
namespace fixture {

struct Engine;

inline void wire(Engine& e) {
  e.schedule_periodic(1.0, [] {});  // within budget: clean
  e.schedule_periodic(2.0, [] {});                  // EXPECT: lint-rule5
}

}  // namespace fixture
