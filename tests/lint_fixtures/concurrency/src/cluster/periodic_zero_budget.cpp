// Rule 5 fixture: no PERIODIC_BUDGET entry for this path, so a single
// schedule_periodic call site is already a violation.
namespace fixture {

struct Engine2;

inline void wire_zero(Engine2& e) {
  e.schedule_periodic(1.0, [] {});                  // EXPECT: lint-rule5
}

}  // namespace fixture
