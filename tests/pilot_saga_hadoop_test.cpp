#include "pilot/saga_hadoop.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "yarn/application_master.h"

namespace hoh::pilot {
namespace {

class SagaHadoopTest : public ::testing::Test {
 protected:
  SagaHadoopTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 8);
  }
  Session session_;
  SagaHadoop tool_{session_};
};

TEST_F(SagaHadoopTest, YarnClusterLifecycle) {
  bool ready = false;
  const auto id = tool_.start_cluster("slurm://stampede/", 3,
                                      HadoopFramework::kYarn, 3600.0,
                                      [&] { ready = true; });
  EXPECT_EQ(tool_.state(id), HadoopClusterState::kPending);
  session_.engine().run_until(300.0);
  EXPECT_TRUE(ready);
  EXPECT_EQ(tool_.state(id), HadoopClusterState::kRunning);
  ASSERT_NE(tool_.yarn(id), nullptr);
  EXPECT_EQ(tool_.yarn(id)->resource_manager().node_count(), 3u);
  EXPECT_EQ(tool_.spark(id), nullptr);

  tool_.stop_cluster(id);
  EXPECT_EQ(tool_.state(id), HadoopClusterState::kStopped);
  tool_.stop_cluster(id);  // idempotent
}

TEST_F(SagaHadoopTest, SubmitYarnAppThroughTool) {
  const auto id = tool_.start_cluster("slurm://stampede/", 2,
                                      HadoopFramework::kYarn);
  session_.engine().run_until(300.0);
  ASSERT_EQ(tool_.state(id), HadoopClusterState::kRunning);

  bool app_ran = false;
  yarn::AppDescriptor app;
  app.name = "wordcount";
  app.on_am_start = [&](yarn::ApplicationMaster& am) {
    app_ran = true;
    am.unregister(true);
  };
  const auto app_id = tool_.submit_yarn_app(id, std::move(app));
  session_.engine().run_until(session_.engine().now() + 120.0);
  EXPECT_TRUE(app_ran);
  EXPECT_EQ(tool_.yarn(id)->resource_manager().application(app_id).state,
            yarn::AppState::kFinished);
}

TEST_F(SagaHadoopTest, SparkClusterLifecycle) {
  const auto id = tool_.start_cluster("slurm://stampede/", 2,
                                      HadoopFramework::kSpark);
  session_.engine().run_until(300.0);
  EXPECT_EQ(tool_.state(id), HadoopClusterState::kRunning);
  ASSERT_NE(tool_.spark(id), nullptr);
  EXPECT_EQ(tool_.yarn(id), nullptr);

  bool ready = false;
  spark::SparkAppDescriptor app;
  app.executor_cores = 4;
  tool_.submit_spark_app(id, app, [&] { ready = true; });
  session_.engine().run_until(session_.engine().now() + 60.0);
  EXPECT_TRUE(ready);
  tool_.stop_cluster(id);
}

TEST_F(SagaHadoopTest, SparkBootstrapFasterThanYarn) {
  const auto y = tool_.start_cluster("slurm://stampede/", 2,
                                     HadoopFramework::kYarn);
  const auto s = tool_.start_cluster("slurm://stampede/", 2,
                                     HadoopFramework::kSpark);
  double yarn_ready = -1.0;
  double spark_ready = -1.0;
  // Poll through trace events after the run.
  session_.engine().run_until(400.0);
  for (const auto& e :
       session_.trace().find("saga-hadoop", "cluster_running")) {
    if (e.attrs.at("cluster") == y) yarn_ready = e.time;
    if (e.attrs.at("cluster") == s) spark_ready = e.time;
  }
  ASSERT_GT(yarn_ready, 0.0);
  ASSERT_GT(spark_ready, 0.0);
  EXPECT_LT(spark_ready, yarn_ready);
}

TEST_F(SagaHadoopTest, SubmitToNonRunningClusterThrows) {
  const auto id = tool_.start_cluster("slurm://stampede/", 1,
                                      HadoopFramework::kYarn);
  EXPECT_THROW(tool_.submit_yarn_app(id, yarn::AppDescriptor{}),
               common::StateError);
  EXPECT_THROW(tool_.submit_spark_app(id, spark::SparkAppDescriptor{}),
               common::StateError);
}

TEST_F(SagaHadoopTest, WalltimeExpiryFailsCluster) {
  const auto id = tool_.start_cluster("slurm://stampede/", 1,
                                      HadoopFramework::kYarn, 30.0);
  session_.engine().run_until(600.0);
  EXPECT_EQ(tool_.state(id), HadoopClusterState::kFailed);
}

TEST_F(SagaHadoopTest, UnknownClusterThrows) {
  EXPECT_THROW(tool_.state("nope"), common::NotFoundError);
}

}  // namespace
}  // namespace hoh::pilot
