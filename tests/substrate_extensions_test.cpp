#include <gtest/gtest.h>

#include "hdfs/hdfs_cluster.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"
#include "sim/trace_analysis.h"
#include "yarn/application_master.h"
#include "yarn/resource_manager.h"

namespace hoh {
namespace {

// -------------------------------------------------------- HDFS balancer ---

class BalancerTest : public ::testing::Test {
 protected:
  BalancerTest() : machine_(cluster::stampede_profile()) {
    for (int i = 0; i < 4; ++i) nodes_.push_back("n" + std::to_string(i));
    fs_ = std::make_unique<hdfs::HdfsCluster>(engine_, machine_, nodes_);
  }

  double usage_spread() const {
    common::Bytes lo = INT64_MAX;
    common::Bytes hi = 0;
    for (const auto& r : fs_->datanode_reports()) {
      lo = std::min(lo, r.used);
      hi = std::max(hi, r.used);
    }
    return static_cast<double>(hi - lo);
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  std::vector<std::string> nodes_;
  std::unique_ptr<hdfs::HdfsCluster> fs_;
};

TEST_F(BalancerTest, EvensOutSkewedPlacement) {
  // Pile single-replica files onto n0 via the writer-affinity rule.
  for (int i = 0; i < 12; ++i) {
    fs_->create_file("/skew" + std::to_string(i), 64 * common::kMiB, "n0",
                     1);
  }
  const auto before = usage_spread();
  const auto used_before = fs_->used_bytes();
  const auto moves = fs_->balance(0.1);
  EXPECT_GT(moves, 0u);
  EXPECT_LT(usage_spread(), before);
  EXPECT_EQ(fs_->used_bytes(), used_before);  // moves, not copies
  // Replicas still on distinct nodes per block.
  for (const auto& path : fs_->list()) {
    for (const auto& block : fs_->stat(path).blocks) {
      std::set<std::string> holders;
      for (const auto& r : block.replicas) holders.insert(r.node);
      EXPECT_EQ(holders.size(), block.replicas.size());
    }
  }
}

TEST_F(BalancerTest, BalancedClusterNeedsNoMoves) {
  for (int i = 0; i < 4; ++i) {
    fs_->create_file("/even" + std::to_string(i), 64 * common::kMiB,
                     "n" + std::to_string(i), 1);
  }
  EXPECT_EQ(fs_->balance(0.1), 0u);
}

TEST_F(BalancerTest, EmptyClusterNoMoves) {
  EXPECT_EQ(fs_->balance(), 0u);
}

TEST_F(BalancerTest, FullReplicationLeavesNoLegalMoves) {
  // Replication 4 on 4 nodes: every node holds every block; the balancer
  // must recognize there is nowhere to move anything.
  fs_->create_file("/full", 256 * common::kMiB, "n0", 4);
  EXPECT_EQ(fs_->balance(0.0), 0u);
}

// --------------------------------------------------- YARN FIFO policy ---

class YarnPolicyTest : public ::testing::Test {
 protected:
  YarnPolicyTest() : machine_(cluster::generic_profile(2, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
  }
  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
};

TEST_F(YarnPolicyTest, FifoRunsAppsInSubmissionOrder) {
  yarn::YarnConfig cfg;
  cfg.scheduler_policy = yarn::SchedulerPolicy::kFifo;
  cfg.nm_memory_mb = 4096;  // tiny NMs: one 4 GB app at a time
  yarn::ResourceManager rm(engine_, allocation_, cfg);
  std::vector<int> start_order;
  auto make_app = [&](int index) {
    yarn::AppDescriptor app;
    app.am_resource = {4096, 1};
    app.on_am_start = [&, index](yarn::ApplicationMaster& am) {
      start_order.push_back(index);
      engine_.schedule(30.0, [&am] { am.unregister(true); });
    };
    return app;
  };
  for (int i = 0; i < 4; ++i) rm.submit_application(make_app(i));
  engine_.run_until(600.0);
  EXPECT_EQ(start_order, (std::vector<int>{0, 1, 2, 3}));
  rm.shutdown();
}

TEST_F(YarnPolicyTest, RecoveredNodeServesAgain) {
  yarn::ResourceManager rm(engine_, allocation_);
  engine_.run_until(5.0);
  rm.fail_node("n0");
  EXPECT_EQ(rm.live_node_count(), 1u);
  rm.recover_node("n0");
  EXPECT_EQ(rm.live_node_count(), 2u);
  // New work lands on the recovered node when preferred.
  std::string placed;
  yarn::AppDescriptor app;
  app.on_am_start = [&](yarn::ApplicationMaster& am) {
    yarn::ContainerRequest req;
    req.preferred_nodes = {"n0"};
    am.request_containers(1, req, [&](const yarn::Container& c) {
      placed = c.node;
    });
  };
  rm.submit_application(std::move(app));
  engine_.run_until(120.0);
  EXPECT_EQ(placed, "n0");
  rm.shutdown();
}

TEST_F(YarnPolicyTest, AppsJsonListsApplications) {
  yarn::ResourceManager rm(engine_, allocation_);
  yarn::AppDescriptor app;
  app.name = "wordcount";
  app.on_am_start = [](yarn::ApplicationMaster& am) { am.unregister(true); };
  const auto id = rm.submit_application(std::move(app));
  engine_.run_until(60.0);
  const auto apps = rm.apps_json().at("apps").at("app").as_array();
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_EQ(apps[0].at("id").as_string(), id);
  EXPECT_EQ(apps[0].at("name").as_string(), "wordcount");
  EXPECT_EQ(apps[0].at("state").as_string(), "FINISHED");
  rm.shutdown();
}

// -------------------------------------------- bounded staging workers ---

TEST(StagingWorkerTest, ConcurrentTransfersCappedAtConfig) {
  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 4);
  pilot::PilotDescription pd;
  pd.resource = "slurm://stampede/";
  pd.nodes = 2;
  pilot::AgentConfig cfg;
  cfg.max_concurrent_staging = 2;
  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  auto pilot = pm.submit_pilot(pd, cfg);
  um.add_pilot(pilot);

  // 12 units each staging one 512 MiB input: with 2 staging slots the
  // transfers serialize into waves.
  std::vector<pilot::ComputeUnitDescription> cuds;
  for (int i = 0; i < 12; ++i) {
    pilot::ComputeUnitDescription cud;
    cud.duration = 1.0;
    cud.memory_mb = 1024;
    cud.input_staging = {{saga::Url("file://stampede/in-" +
                                    std::to_string(i) + ".dat"),
                          512 * common::kMiB}};
    cuds.push_back(cud);
  }
  um.submit(cuds);
  while (!um.all_done() && session.engine().now() < 7 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 10.0);
  }
  ASSERT_TRUE(um.all_done());
  // Count the peak of concurrent transfers from the SAGA trace.
  std::vector<sim::TraceSpan> transfers;
  std::map<std::string, double> starts;
  for (const auto& e : session.trace().find("saga")) {
    if (e.name == "transfer_started") {
      starts[e.attrs.at("src")] = e.time;
    } else if (e.name == "transfer_done") {
      auto it = starts.find(e.attrs.at("src"));
      if (it != starts.end()) {
        transfers.push_back(
            sim::TraceSpan{it->second, e.time, "saga", "xfer", ""});
        starts.erase(it);
      }
    }
  }
  EXPECT_LE(sim::peak_concurrency(transfers), 2);
  EXPECT_GE(transfers.size(), 12u);
}

}  // namespace
}  // namespace hoh
