#include "spark/standalone.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::spark {
namespace {

class SparkStandaloneTest : public ::testing::Test {
 protected:
  SparkStandaloneTest() : machine_(cluster::generic_profile(3, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
};

TEST_F(SparkStandaloneTest, MasterOnFirstNode) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  EXPECT_EQ(spark.master_node(), "n0");
}

TEST_F(SparkStandaloneTest, ExecutorsGrantedAndReady) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  bool ready = false;
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.executor_memory_mb = 4096;
  app.max_cores = 12;
  const auto id = spark.submit_application(app, [&] { ready = true; });
  EXPECT_EQ(spark.app_state(id), SparkAppState::kWaiting);
  engine_.run_until(30.0);
  EXPECT_TRUE(ready);
  EXPECT_EQ(spark.app_state(id), SparkAppState::kRunning);
  EXPECT_EQ(spark.task_slots(id), 12);
  EXPECT_EQ(spark.executors(id).size(), 3u);
}

TEST_F(SparkStandaloneTest, SpreadOutPlacesAcrossWorkers) {
  SparkConfig cfg;
  cfg.spread_out = true;
  SparkStandaloneCluster spark(engine_, machine_, allocation_, cfg);
  SparkAppDescriptor app;
  app.executor_cores = 2;
  app.max_cores = 6;
  const auto id = spark.submit_application(app);
  engine_.run_until(30.0);
  std::set<std::string> nodes;
  for (const auto& e : spark.executors(id)) nodes.insert(e.worker_node);
  EXPECT_EQ(nodes.size(), 3u);
}

TEST_F(SparkStandaloneTest, ConsolidatePacksOneWorker) {
  SparkConfig cfg;
  cfg.spread_out = false;
  SparkStandaloneCluster spark(engine_, machine_, allocation_, cfg);
  SparkAppDescriptor app;
  app.executor_cores = 2;
  app.executor_memory_mb = 1024;
  app.max_cores = 6;
  const auto id = spark.submit_application(app);
  engine_.run_until(30.0);
  std::set<std::string> nodes;
  for (const auto& e : spark.executors(id)) nodes.insert(e.worker_node);
  EXPECT_EQ(nodes.size(), 1u);
}

TEST_F(SparkStandaloneTest, StageRunsAllTasksInWaves) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.max_cores = 8;  // 8 slots
  const auto id = spark.submit_application(app);
  engine_.run_until(30.0);
  ASSERT_EQ(spark.task_slots(id), 8);

  double done_at = -1.0;
  const double t0 = engine_.now();
  // 16 tasks x 10 s on 8 slots => 2 waves => 20 s.
  spark.run_stage(id, 16, [](int) { return 10.0; },
                  [&] { done_at = engine_.now(); });
  engine_.run_until(t0 + 100.0);
  ASSERT_GT(done_at, 0.0);
  EXPECT_NEAR(done_at - t0, 20.0, 1e-6);
}

TEST_F(SparkStandaloneTest, StagesRunSequentially) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  SparkAppDescriptor app;
  app.executor_cores = 8;
  app.max_cores = 8;
  const auto id = spark.submit_application(app);
  engine_.run_until(30.0);
  std::vector<int> order;
  spark.run_stage(id, 8, [](int) { return 5.0; }, [&] { order.push_back(1); });
  spark.run_stage(id, 8, [](int) { return 5.0; }, [&] { order.push_back(2); });
  engine_.run_until(engine_.now() + 60.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(SparkStandaloneTest, FinishReleasesExecutors) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  SparkAppDescriptor app;
  app.executor_cores = 8;
  app.executor_memory_mb = 8192;
  const auto id = spark.submit_application(app);
  engine_.run_until(30.0);
  ASSERT_GT(spark.task_slots(id), 0);
  spark.finish_application(id);
  EXPECT_EQ(spark.app_state(id), SparkAppState::kFinished);
  EXPECT_EQ(spark.task_slots(id), 0);
  // Node ledgers returned to full capacity.
  for (const auto& node : allocation_.nodes()) {
    EXPECT_EQ(node->free_cores(), node->spec().cores);
  }
}

TEST_F(SparkStandaloneTest, TwoAppsShareTheCluster) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.executor_memory_mb = 4096;
  app.max_cores = 12;
  const auto a = spark.submit_application(app);
  const auto b = spark.submit_application(app);
  engine_.run_until(30.0);
  EXPECT_EQ(spark.task_slots(a) + spark.task_slots(b), 24);
}

TEST_F(SparkStandaloneTest, StatusJson) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  auto j = spark.status();
  EXPECT_EQ(j.at("master").as_string(), "n0");
  EXPECT_EQ(j.at("workers").as_array().size(), 3u);
}

TEST_F(SparkStandaloneTest, SubmitAfterShutdownThrows) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  spark.shutdown();
  EXPECT_THROW(spark.submit_application(SparkAppDescriptor{}),
               common::StateError);
}

TEST_F(SparkStandaloneTest, InvalidDescriptorRejected) {
  SparkStandaloneCluster spark(engine_, machine_, allocation_);
  SparkAppDescriptor app;
  app.executor_cores = 0;
  EXPECT_THROW(spark.submit_application(app), common::ConfigError);
}

}  // namespace
}  // namespace hoh::spark
