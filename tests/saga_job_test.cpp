#include "saga/job.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::saga {
namespace {

class SagaJobTest : public ::testing::Test {
 protected:
  SagaJobTest() {
    ctx_.register_machine(cluster::generic_profile(4, 8, 16 * 1024),
                          hpc::SchedulerKind::kSlurm, 4);
  }
  SagaContext ctx_;
};

TEST_F(SagaJobTest, SchemeMustMatchScheduler) {
  EXPECT_NO_THROW(JobService(ctx_, Url("slurm://beowulf/")));
  EXPECT_NO_THROW(JobService(ctx_, Url("batch://beowulf/")));
  EXPECT_THROW(JobService(ctx_, Url("pbs://beowulf/")), common::ConfigError);
  EXPECT_THROW(JobService(ctx_, Url("xyz://beowulf/")), common::ConfigError);
}

TEST_F(SagaJobTest, UnknownHostThrows) {
  EXPECT_THROW(JobService(ctx_, Url("slurm://nonexistent/")),
               common::NotFoundError);
}

TEST_F(SagaJobTest, EmptyExecutableRejected) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  JobDescription jd;
  EXPECT_THROW(service.submit(jd), common::ConfigError);
}

TEST_F(SagaJobTest, LifecycleToDone) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  JobDescription jd;
  jd.executable = "/bin/agent";
  jd.total_nodes = 2;

  std::vector<JobState> transitions;
  bool started = false;
  auto job = service.submit(jd, [&](const cluster::Allocation& alloc) {
    started = true;
    EXPECT_EQ(alloc.size(), 2u);
  });
  job->on_state_change([&](JobState s) { transitions.push_back(s); });
  EXPECT_EQ(job->state(), JobState::kPending);

  ctx_.engine().run_until(30.0);
  EXPECT_TRUE(started);
  EXPECT_EQ(job->state(), JobState::kRunning);
  EXPECT_EQ(job->allocation().size(), 2u);

  job->complete();
  EXPECT_EQ(job->state(), JobState::kDone);
  EXPECT_EQ(transitions,
            (std::vector<JobState>{JobState::kRunning, JobState::kDone}));
}

TEST_F(SagaJobTest, CancelYieldsCanceled) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  JobDescription jd;
  jd.executable = "/bin/agent";
  auto job = service.submit(jd);
  ctx_.engine().run_until(30.0);
  job->cancel();
  EXPECT_EQ(job->state(), JobState::kCanceled);
}

TEST_F(SagaJobTest, WalltimeExpiryYieldsFailed) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  JobDescription jd;
  jd.executable = "/bin/agent";
  jd.wall_time_limit = 60.0;
  auto job = service.submit(jd);
  ctx_.engine().run();
  EXPECT_EQ(job->state(), JobState::kFailed);
}

TEST_F(SagaJobTest, AttributesExposeSchedulerEnvironment) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  JobDescription jd;
  jd.executable = "/bin/agent";
  jd.total_nodes = 3;
  auto job = service.submit(jd);
  ctx_.engine().run_until(30.0);
  const auto attrs = job->attributes();
  EXPECT_EQ(attrs.at("SLURM_NNODES"), "3");
}

TEST_F(SagaJobTest, TraceRecordsSubmissionAndStates) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  JobDescription jd;
  jd.executable = "/bin/agent";
  auto job = service.submit(jd);
  ctx_.engine().run_until(30.0);
  job->complete();
  EXPECT_TRUE(ctx_.trace().first("saga", "job_submitted").has_value());
  const auto states = ctx_.trace().find("saga", "job_state");
  ASSERT_GE(states.size(), 2u);
  EXPECT_EQ(states.back().attrs.at("state"), "Done");
}

TEST_F(SagaJobTest, ProfileAccessor) {
  JobService service(ctx_, Url("slurm://beowulf/"));
  EXPECT_EQ(service.profile().name, "beowulf");
}

}  // namespace
}  // namespace hoh::saga
