#include "spark/rdd.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>

#include "common/error.h"

namespace hoh::spark {
namespace {

std::vector<int> iota(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(RddTest, ParallelizeAndCollectPreservesData) {
  SparkEnv env(4);
  auto rdd = Rdd<int>::parallelize(env, iota(100), 7);
  auto out = rdd.collect();
  EXPECT_EQ(out, iota(100));
  EXPECT_EQ(rdd.count(), 100u);
  EXPECT_EQ(rdd.num_partitions(), 7u);
}

TEST(RddTest, MapTransformsLazily) {
  SparkEnv env(4);
  std::atomic<int> calls{0};
  auto rdd = Rdd<int>::parallelize(env, iota(10), 2).map([&calls](const int& x) {
    calls.fetch_add(1);
    return x * 2;
  });
  EXPECT_EQ(calls.load(), 0);  // lazy until action
  auto out = rdd.collect();
  EXPECT_EQ(calls.load(), 10);
  EXPECT_EQ(out[3], 6);
}

TEST(RddTest, FilterKeepsMatching) {
  SparkEnv env(2);
  auto evens = Rdd<int>::parallelize(env, iota(20), 3)
                   .filter([](const int& x) { return x % 2 == 0; });
  EXPECT_EQ(evens.count(), 10u);
}

TEST(RddTest, FlatMapExpands) {
  SparkEnv env(2);
  auto words = Rdd<std::string>::parallelize(
      env, {"a b", "c d e"}, 2);
  auto split = words.flat_map([](const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
      if (c == ' ') {
        out.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  });
  EXPECT_EQ(split.count(), 5u);
}

TEST(RddTest, MapPartitionsSeesWholePartition) {
  SparkEnv env(2);
  auto sums = Rdd<int>::parallelize(env, iota(10), 2)
                  .map_partitions([](const std::vector<int>& part) {
                    return std::vector<int>{
                        std::accumulate(part.begin(), part.end(), 0)};
                  });
  auto out = sums.collect();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0] + out[1], 45);
}

TEST(RddTest, ReduceComputesAggregate) {
  SparkEnv env(4);
  auto rdd = Rdd<int>::parallelize(env, iota(101), 8);
  EXPECT_EQ(rdd.reduce([](int a, int b) { return a + b; }), 5050);
}

TEST(RddTest, ReduceEmptyThrows) {
  SparkEnv env(2);
  auto rdd = Rdd<int>::parallelize(env, {}, 2);
  EXPECT_THROW(rdd.reduce([](int a, int b) { return a + b; }),
               common::StateError);
}

TEST(RddTest, FoldSafeOnEmpty) {
  SparkEnv env(2);
  auto rdd = Rdd<int>::parallelize(env, {}, 2);
  EXPECT_EQ(rdd.fold(7, [](int a, int b) { return a + b; }), 7);
}

TEST(RddTest, ChainedPipeline) {
  SparkEnv env(4);
  const int result = Rdd<int>::parallelize(env, iota(1000), 16)
                         .map([](const int& x) { return x + 1; })
                         .filter([](const int& x) { return x % 3 == 0; })
                         .map([](const int& x) { return x * x; })
                         .fold(0, [](int a, int b) { return a + b; });
  int expected = 0;
  for (int x = 0; x < 1000; ++x) {
    const int y = x + 1;
    if (y % 3 == 0) expected += y * y;
  }
  EXPECT_EQ(result, expected);
}

TEST(RddTest, CacheEvaluatesOnce) {
  SparkEnv env(2);
  std::atomic<int> calls{0};
  auto rdd = Rdd<int>::parallelize(env, iota(10), 2)
                 .map([&calls](const int& x) {
                   calls.fetch_add(1);
                   return x;
                 })
                 .cache();
  rdd.count();
  rdd.count();
  rdd.collect();
  EXPECT_EQ(calls.load(), 10);  // map ran exactly once
}

TEST(RddTest, CollectDoesNotMutateCachedPartitions) {
  SparkEnv env(2);
  auto rdd = Rdd<int>::parallelize(env, iota(100), 4).cache();
  const auto first = rdd.collect();
  // Mutating the returned copy must not reach the pinned partitions.
  auto stolen = rdd.collect();
  for (auto& x : stolen) x = -1;
  const auto second = rdd.collect();
  EXPECT_EQ(first, second);
  EXPECT_EQ(second.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(second[static_cast<std::size_t>(i)], i);
}

TEST(RddTest, ActionsOnSharedLineageAgree) {
  SparkEnv env(2);
  // Two RDD handles over the same cached lineage: actions through either
  // handle see identical, un-cannibalised partitions.
  auto base = Rdd<int>::parallelize(env, iota(50), 4).cache();
  auto view = base;  // shares the cache slot
  const auto a = view.collect();
  const long sum = base.reduce([](int x, int y) { return x + y; });
  const auto b = base.collect();
  EXPECT_EQ(a, b);
  EXPECT_EQ(sum, 50L * 49L / 2);
  EXPECT_EQ(base.count(), 50u);
}

TEST(RddTest, WithoutCacheRecomputes) {
  SparkEnv env(2);
  std::atomic<int> calls{0};
  auto rdd = Rdd<int>::parallelize(env, iota(10), 2)
                 .map([&calls](const int& x) {
                   calls.fetch_add(1);
                   return x;
                 });
  rdd.count();
  rdd.count();
  EXPECT_EQ(calls.load(), 20);
}

TEST(RddTest, ReduceByKeyAggregatesPerKey) {
  SparkEnv env(4);
  std::vector<std::pair<int, double>> pairs;
  for (int i = 0; i < 100; ++i) {
    pairs.emplace_back(i % 5, 1.0);
  }
  auto rdd = Rdd<std::pair<int, double>>::parallelize(env, pairs, 8);
  auto counts = collect_as_map(
      reduce_by_key(rdd, [](double a, double b) { return a + b; }, 4));
  ASSERT_EQ(counts.size(), 5u);
  for (const auto& [k, v] : counts) EXPECT_DOUBLE_EQ(v, 20.0);
}

TEST(RddTest, ReduceByKeyStringKeys) {
  SparkEnv env(2);
  auto rdd = Rdd<std::pair<std::string, int>>::parallelize(
      env, {{"a", 1}, {"b", 2}, {"a", 3}, {"b", 4}, {"c", 5}}, 3);
  auto m = collect_as_map(
      reduce_by_key(rdd, [](int a, int b) { return a + b; }));
  EXPECT_EQ(m.at("a"), 4);
  EXPECT_EQ(m.at("b"), 6);
  EXPECT_EQ(m.at("c"), 5);
}

TEST(RddTest, WordCountEndToEnd) {
  SparkEnv env(4);
  std::vector<std::string> lines = {"the quick brown fox", "the lazy dog",
                                    "the fox"};
  auto words = Rdd<std::string>::parallelize(env, lines, 2)
                   .flat_map([](const std::string& line) {
                     std::vector<std::string> out;
                     std::string cur;
                     for (char c : line) {
                       if (c == ' ') {
                         if (!cur.empty()) out.push_back(cur);
                         cur.clear();
                       } else {
                         cur.push_back(c);
                       }
                     }
                     if (!cur.empty()) out.push_back(cur);
                     return out;
                   })
                   .map([](const std::string& w) {
                     return std::pair<std::string, int>(w, 1);
                   });
  auto counts =
      collect_as_map(reduce_by_key(words, [](int a, int b) { return a + b; }));
  EXPECT_EQ(counts.at("the"), 3);
  EXPECT_EQ(counts.at("fox"), 2);
  EXPECT_EQ(counts.at("dog"), 1);
}

class RddPartitionSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RddPartitionSweep, SumInvariantUnderPartitioning) {
  SparkEnv env(4);
  auto rdd = Rdd<int>::parallelize(env, iota(500), GetParam());
  EXPECT_EQ(rdd.fold(0, [](int a, int b) { return a + b; }), 124750);
  EXPECT_EQ(rdd.count(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Partitions, RddPartitionSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 64u, 500u, 1000u));

}  // namespace
}  // namespace hoh::spark
