#include "analytics/kmeans_cost.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::analytics {
namespace {

class KmeansCostTest : public ::testing::Test {
 protected:
  KmeansCostTest()
      : stampede_(cluster::stampede_profile()),
        wrangler_(cluster::wrangler_profile()) {}

  KmeansRunConfig config(const cluster::MachineProfile& m, int nodes,
                         int tasks, bool yarn) const {
    KmeansRunConfig c;
    c.machine = &m;
    c.nodes = nodes;
    c.tasks = tasks;
    c.yarn_stack = yarn;
    return c;
  }

  cluster::MachineProfile stampede_;
  cluster::MachineProfile wrangler_;
};

TEST_F(KmeansCostTest, PaperScenarios) {
  const auto scenarios = paper_scenarios();
  ASSERT_EQ(scenarios.size(), 3u);
  // points x clusters constant at 5e7 (the paper's constant-compute
  // design).
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.points * s.clusters, 50'000'000);
    EXPECT_EQ(s.dim, 3);
    EXPECT_EQ(s.iterations, 2);
  }
}

TEST_F(KmeansCostTest, ComputeConstantAcrossScenarios) {
  const auto cfg = config(stampede_, 1, 8, false);
  const auto c10k = kmeans_phase_durations(scenario_10k_points(), cfg);
  const auto c1m = kmeans_phase_durations(scenario_1m_points(), cfg);
  EXPECT_NEAR(c10k.map_cost.compute, c1m.map_cost.compute, 1e-9);
}

TEST_F(KmeansCostTest, ShuffleGrowsWithPoints) {
  const auto cfg = config(stampede_, 3, 32, false);
  const auto c10k = kmeans_phase_durations(scenario_10k_points(), cfg);
  const auto c1m = kmeans_phase_durations(scenario_1m_points(), cfg);
  EXPECT_GT(c1m.map_cost.shuffle + c1m.reduce_cost.shuffle,
            c10k.map_cost.shuffle + c10k.reduce_cost.shuffle);
}

TEST_F(KmeansCostTest, RuntimeDecreasesWithTasks) {
  for (const auto& scenario : paper_scenarios()) {
    const auto t8 =
        kmeans_phase_durations(scenario, config(stampede_, 1, 8, false));
    const auto t16 =
        kmeans_phase_durations(scenario, config(stampede_, 2, 16, false));
    const auto t32 =
        kmeans_phase_durations(scenario, config(stampede_, 3, 32, false));
    EXPECT_GT(t8.iteration_seconds(), t16.iteration_seconds())
        << scenario.label;
    EXPECT_GT(t16.iteration_seconds(), t32.iteration_seconds())
        << scenario.label;
  }
}

TEST_F(KmeansCostTest, WranglerFasterThanStampede) {
  for (const auto& scenario : paper_scenarios()) {
    const auto s =
        kmeans_phase_durations(scenario, config(stampede_, 2, 16, false));
    const auto w =
        kmeans_phase_durations(scenario, config(wrangler_, 2, 16, false));
    EXPECT_LT(w.iteration_seconds(), s.iteration_seconds())
        << scenario.label;
  }
}

TEST_F(KmeansCostTest, EnvLoadOnlyOnMatchingPath) {
  const auto rp =
      kmeans_phase_durations(scenario_1m_points(), config(stampede_, 3, 32, false));
  EXPECT_GT(rp.env_load_per_task, 0.0);
  EXPECT_EQ(rp.wrapper_per_node, 0.0);

  const auto yarn =
      kmeans_phase_durations(scenario_1m_points(), config(stampede_, 3, 32, true));
  EXPECT_GT(yarn.wrapper_per_node, 0.0);
  EXPECT_EQ(yarn.env_load_per_task, 0.0);
  // YARN's per-node localization is far cheaper than RP's per-task
  // shared-filesystem load.
  EXPECT_LT(yarn.wrapper_per_node, rp.env_load_per_task);
}

TEST_F(KmeansCostTest, YarnIoFasterAtScaleOnStampede) {
  // The Fig. 6 claim isolated to I/O: at 32 tasks the local-disk stack
  // moves shuffle+input faster than the busy Lustre stack.
  const auto scenario = scenario_1m_points();
  const auto rp =
      kmeans_phase_durations(scenario, config(stampede_, 3, 32, false));
  const auto yarn =
      kmeans_phase_durations(scenario, config(stampede_, 3, 32, true));
  const double rp_io = rp.map_cost.input_read + rp.map_cost.shuffle +
                       rp.reduce_cost.shuffle;
  const double yarn_io = yarn.map_cost.input_read + yarn.map_cost.shuffle +
                         yarn.reduce_cost.shuffle;
  EXPECT_LT(yarn_io, rp_io);
}

TEST_F(KmeansCostTest, SpeedupDeclinesWithPointsOnStampede) {
  // Paper SS-IV-B: "On Stampede the speedup is highest for the 10,000
  // points scenario ... and decreases to 2.4 for 1,000,000 points."
  auto speedup = [&](const KmeansScenario& s, bool yarn) {
    const auto t8 = kmeans_phase_durations(s, config(stampede_, 1, 8, yarn));
    const auto t32 =
        kmeans_phase_durations(s, config(stampede_, 3, 32, yarn));
    return t8.iteration_seconds() / t32.iteration_seconds();
  };
  EXPECT_GT(speedup(scenario_10k_points(), false),
            speedup(scenario_1m_points(), false));
}

TEST_F(KmeansCostTest, NoSpeedupDeclineOnWrangler) {
  // "Interestingly, we do not see the effect on Wrangler".
  auto speedup = [&](const KmeansScenario& s) {
    const auto t8 = kmeans_phase_durations(s, config(wrangler_, 1, 8, false));
    const auto t32 =
        kmeans_phase_durations(s, config(wrangler_, 3, 32, false));
    return t8.iteration_seconds() / t32.iteration_seconds();
  };
  const double decline =
      speedup(scenario_10k_points()) - speedup(scenario_1m_points());
  EXPECT_LT(decline, 0.3);  // essentially flat
}

TEST_F(KmeansCostTest, MissingMachineThrows) {
  KmeansRunConfig bad;
  EXPECT_THROW(kmeans_phase_durations(scenario_10k_points(), bad),
               common::ConfigError);
}

}  // namespace
}  // namespace hoh::analytics
