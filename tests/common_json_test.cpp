#include "common/json.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::common {
namespace {

TEST(JsonTest, DefaultIsNull) {
  Json j;
  EXPECT_TRUE(j.is_null());
}

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonTest, FloatingPointDump) {
  EXPECT_EQ(Json(1.5).dump(), "1.5");
  EXPECT_EQ(Json(3.0).dump(), "3");  // integral doubles render as integers
}

TEST(JsonTest, StringEscapes) {
  EXPECT_EQ(Json("a\"b").dump(), "\"a\\\"b\"");
  EXPECT_EQ(Json("line\nbreak").dump(), "\"line\\nbreak\"");
  EXPECT_EQ(Json("tab\there").dump(), "\"tab\\there\"");
  EXPECT_EQ(Json("back\\slash").dump(), "\"back\\\\slash\"");
}

TEST(JsonTest, ObjectAccess) {
  Json j;
  j["b"] = 2;
  j["a"] = "x";
  EXPECT_TRUE(j.is_object());
  EXPECT_EQ(j.at("a").as_string(), "x");
  EXPECT_EQ(j.at("b").as_int(), 2);
  EXPECT_TRUE(j.contains("a"));
  EXPECT_FALSE(j.contains("zz"));
  EXPECT_THROW(j.at("zz"), NotFoundError);
  // Deterministic (sorted) key order.
  EXPECT_EQ(j.dump(), "{\"a\":\"x\",\"b\":2}");
}

TEST(JsonTest, NestedStructure) {
  Json j;
  j["metrics"]["cores"] = 16;
  j["nodes"] = JsonArray{Json("n0"), Json("n1")};
  EXPECT_EQ(j.at("metrics").at("cores").as_int(), 16);
  EXPECT_EQ(j.at("nodes").as_array().size(), 2u);
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-12.5").as_number(), -12.5);
  EXPECT_EQ(Json::parse("\"s\"").as_string(), "s");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string doc =
      R"({"clusterMetrics":{"availableMB":28672,"availableVirtualCores":14},)"
      R"("nodes":["n0","n1"],"active":true})";
  Json j = Json::parse(doc);
  EXPECT_EQ(j.at("clusterMetrics").at("availableMB").as_int(), 28672);
  EXPECT_EQ(j.at("nodes").as_array()[1].as_string(), "n1");
  EXPECT_TRUE(j.at("active").as_bool());
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(JsonTest, ParseEscapes) {
  Json j = Json::parse(R"("a\nb\t\"c\"A")");
  EXPECT_EQ(j.as_string(), "a\nb\t\"c\"A");
}

TEST(JsonTest, ParseWhitespaceTolerant) {
  Json j = Json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(j.at("a").as_array().size(), 2u);
}

TEST(JsonTest, ParseErrors) {
  EXPECT_THROW(Json::parse(""), ConfigError);
  EXPECT_THROW(Json::parse("{"), ConfigError);
  EXPECT_THROW(Json::parse("{\"a\":}"), ConfigError);
  EXPECT_THROW(Json::parse("[1,]"), ConfigError);
  EXPECT_THROW(Json::parse("tru"), ConfigError);
  EXPECT_THROW(Json::parse("1 2"), ConfigError);
}

TEST(JsonTest, PrettyPrint) {
  Json j;
  j["a"] = 1;
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos);
}

TEST(JsonTest, Equality) {
  Json a = Json::parse(R"({"x":[1,2]})");
  Json b = Json::parse(R"({ "x" : [1, 2] })");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hoh::common
