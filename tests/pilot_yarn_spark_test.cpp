#include <gtest/gtest.h>

#include "common/error.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

namespace hoh::pilot {
namespace {

/// Fixture for the YARN/Spark integration paths (Mode I and Mode II).
class PilotYarnSparkTest : public ::testing::Test {
 protected:
  PilotYarnSparkTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 8);
    session_.register_machine(cluster::wrangler_profile(),
                              hpc::SchedulerKind::kSge, 8);
    session_.create_dedicated_hadoop("wrangler", 3);
  }

  PilotDescription pilot_desc(const std::string& resource, int nodes,
                              AgentBackend backend) {
    PilotDescription pd;
    pd.resource = resource;
    pd.nodes = nodes;
    pd.runtime = 14400.0;
    pd.backend = backend;
    return pd;
  }

  ComputeUnitDescription simple_unit(common::Seconds duration = 10.0) {
    ComputeUnitDescription cud;
    cud.duration = duration;
    cud.cores = 1;
    cud.memory_mb = 2048;
    return cud;
  }

  /// Seconds from agent start to first unit executing (the paper's agent
  /// startup metric).
  double agent_startup_span(const std::string& pilot_id) {
    for (const auto& s : session_.trace().find_spans("pilot",
                                                     "agent_startup")) {
      if (s.key == pilot_id) return s.duration();
    }
    return -1.0;
  }

  double engine_now_plus(double dt) { return session_.engine().now() + dt; }

  Session session_;
  PilotManager pm_{session_};
  UnitManager um_{session_};
};

TEST_F(PilotYarnSparkTest, ModeIBootstrapsYarnCluster) {
  auto pilot = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 3, AgentBackend::kYarnModeI));
  um_.add_pilot(pilot);
  auto unit = um_.submit(simple_unit());
  session_.engine().run_until(600.0);
  EXPECT_EQ(pilot->state(), PilotState::kActive);
  ASSERT_NE(pilot->agent()->yarn_cluster(), nullptr);
  EXPECT_EQ(pilot->agent()->yarn_cluster()->resource_manager().node_count(),
            3u);
  EXPECT_EQ(unit->state(), UnitState::kDone);
  EXPECT_TRUE(
      session_.trace().first("pilot", "yarn_bootstrapped").has_value());
}

TEST_F(PilotYarnSparkTest, ModeIStartupSlowerThanPlain) {
  auto plain = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 1, AgentBackend::kPlain));
  auto mode1 = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 1, AgentBackend::kYarnModeI));
  UnitManager um_plain(session_);
  UnitManager um_yarn(session_);
  um_plain.add_pilot(plain);
  um_yarn.add_pilot(mode1);
  um_plain.submit(simple_unit(1.0));
  um_yarn.submit(simple_unit(1.0));
  session_.engine().run_until(900.0);

  const double plain_startup = agent_startup_span(plain->id());
  const double yarn_startup = agent_startup_span(mode1->id());
  ASSERT_GT(plain_startup, 0.0);
  ASSERT_GT(yarn_startup, 0.0);
  // Paper SS-IV-A: Mode I pays an extra 50-85 s for the cluster
  // bootstrap (single-node YARN).
  EXPECT_GT(yarn_startup, plain_startup + 50.0);
  EXPECT_LT(yarn_startup, plain_startup + 120.0);
}

TEST_F(PilotYarnSparkTest, ModeIIStartupComparableToPlain) {
  auto plain = pm_.submit_pilot(
      pilot_desc("sge://wrangler/", 1, AgentBackend::kPlain));
  auto mode2 = pm_.submit_pilot(
      pilot_desc("sge://wrangler/", 1, AgentBackend::kYarnModeII));
  UnitManager um_plain(session_);
  UnitManager um_yarn(session_);
  um_plain.add_pilot(plain);
  um_yarn.add_pilot(mode2);
  um_plain.submit(simple_unit(1.0));
  um_yarn.submit(simple_unit(1.0));
  session_.engine().run_until(900.0);

  const double plain_startup = agent_startup_span(plain->id());
  const double mode2_startup = agent_startup_span(mode2->id());
  ASSERT_GT(plain_startup, 0.0);
  ASSERT_GT(mode2_startup, 0.0);
  // "The startup times for Mode II on Wrangler ... are comparable to the
  // normal RADICAL-Pilot startup times" — within the YARN CU dispatch
  // overhead, far below the Mode-I bootstrap.
  EXPECT_LT(mode2_startup - plain_startup, 50.0);
}

TEST_F(PilotYarnSparkTest, ModeIIWithoutDedicatedClusterThrows) {
  EXPECT_THROW(pm_.submit_pilot(pilot_desc("slurm://stampede/", 1,
                                           AgentBackend::kYarnModeII)),
               common::ConfigError);
}

TEST_F(PilotYarnSparkTest, YarnUnitStartupSlowerThanPlainUnit) {
  // Fig. 5 inset: CU startup through YARN (AM + container) is tens of
  // seconds; plain RP startup is ~1-2 s. Measure on active pilots so the
  // pilot bootstrap does not pollute the unit spans.
  auto plain = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 1, AgentBackend::kPlain));
  auto mode1 = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 1, AgentBackend::kYarnModeI));
  session_.engine().run_until(400.0);
  ASSERT_EQ(plain->state(), PilotState::kActive);
  ASSERT_EQ(mode1->state(), PilotState::kActive);

  UnitManager um_plain(session_);
  UnitManager um_yarn(session_);
  um_plain.add_pilot(plain);
  um_yarn.add_pilot(mode1);
  auto plain_unit = um_plain.submit(simple_unit(1.0));
  auto yarn_unit = um_yarn.submit(simple_unit(1.0));
  session_.engine().run_until(600.0);
  ASSERT_EQ(plain_unit->state(), UnitState::kDone);
  ASSERT_EQ(yarn_unit->state(), UnitState::kDone);

  double plain_span = -1.0;
  double yarn_span = -1.0;
  for (const auto& s : session_.trace().find_spans("unit", "startup")) {
    if (s.key == plain_unit->id()) plain_span = s.duration();
    if (s.key == yarn_unit->id()) yarn_span = s.duration();
  }
  ASSERT_GT(plain_span, 0.0);
  ASSERT_GT(yarn_span, 0.0);
  EXPECT_LT(plain_span, 5.0);
  EXPECT_GT(yarn_span, 15.0);
  EXPECT_LT(yarn_span, 60.0);
}

TEST_F(PilotYarnSparkTest, YarnSchedulerGatesOnClusterMemory) {
  // 3 Stampede nodes (28 GB NM each = 84 GB). 32 units of 8 GB + 1 GB AM
  // cannot all run at once; the agent's YARN scheduler must hold some
  // back and finish them in waves.
  auto pilot = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 3, AgentBackend::kYarnModeI));
  um_.add_pilot(pilot);
  ComputeUnitDescription big = simple_unit(30.0);
  big.memory_mb = 8 * 1024;
  um_.submit(std::vector<ComputeUnitDescription>(32, big));
  session_.engine().run_until(240.0);
  ASSERT_EQ(pilot->state(), PilotState::kActive);
  EXPECT_GT(pilot->agent()->units_queued() + pilot->agent()->units_running(),
            0u);
  session_.engine().run_until(3000.0);
  EXPECT_TRUE(um_.all_done()) << "running=" << pilot->agent()->units_running()
                              << " queued=" << pilot->agent()->units_queued();
}

TEST_F(PilotYarnSparkTest, AmReuseCutsSecondUnitStartup) {
  AgentConfig reuse;
  reuse.reuse_yarn_app = true;
  auto pilot = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 1, AgentBackend::kYarnModeI), reuse);
  session_.engine().run_until(400.0);
  ASSERT_EQ(pilot->state(), PilotState::kActive);

  um_.add_pilot(pilot);
  auto first = um_.submit(simple_unit(1.0));
  session_.engine().run_until(engine_now_plus(120.0));
  ASSERT_EQ(first->state(), UnitState::kDone);
  auto second = um_.submit(simple_unit(1.0));
  session_.engine().run_until(engine_now_plus(120.0));
  ASSERT_EQ(second->state(), UnitState::kDone);

  double first_span = -1.0;
  double second_span = -1.0;
  for (const auto& s : session_.trace().find_spans("unit", "startup")) {
    if (s.key == first->id()) first_span = s.duration();
    if (s.key == second->id()) second_span = s.duration();
  }
  // The second unit skips AM allocation *and* hits the wrapper cache.
  EXPECT_LT(second_span, first_span / 2.0);
}

TEST_F(PilotYarnSparkTest, SparkModeIExecutesUnits) {
  auto pilot = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 2, AgentBackend::kSparkModeI));
  um_.add_pilot(pilot);
  auto units = um_.submit(
      std::vector<ComputeUnitDescription>(4, simple_unit(10.0)));
  session_.engine().run_until(600.0);
  EXPECT_EQ(pilot->state(), PilotState::kActive);
  ASSERT_NE(pilot->agent()->spark_cluster(), nullptr);
  EXPECT_TRUE(um_.all_done());
  EXPECT_TRUE(
      session_.trace().first("pilot", "spark_bootstrapped").has_value());
}

TEST_F(PilotYarnSparkTest, SparkBootstrapCheaperThanYarn) {
  auto spark = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 2, AgentBackend::kSparkModeI));
  auto yarn = pm_.submit_pilot(
      pilot_desc("slurm://stampede/", 2, AgentBackend::kYarnModeI));
  UnitManager um_s(session_);
  UnitManager um_y(session_);
  um_s.add_pilot(spark);
  um_y.add_pilot(yarn);
  um_s.submit(simple_unit(1.0));
  um_y.submit(simple_unit(1.0));
  session_.engine().run_until(900.0);
  EXPECT_LT(agent_startup_span(spark->id()), agent_startup_span(yarn->id()));
}

TEST_F(PilotYarnSparkTest, DataAwareSchedulingFollowsHdfsBlocks) {
  AgentConfig cfg;
  cfg.data_aware_scheduling = true;
  auto pilot = pm_.submit_pilot(
      pilot_desc("sge://wrangler/", 1, AgentBackend::kYarnModeII), cfg);
  session_.engine().run_until(200.0);
  ASSERT_EQ(pilot->state(), PilotState::kActive);

  // Put a single-replica file on a known dedicated-Hadoop node.
  auto* hadoop = session_.dedicated_hadoop("wrangler");
  ASSERT_NE(hadoop, nullptr);
  const std::string target = hadoop->allocation().node_names()[2];
  hadoop->hdfs().create_file("/data/traj.dcd", 64 * common::kMiB, target, 1);

  um_.add_pilot(pilot);
  ComputeUnitDescription cud = simple_unit(5.0);
  cud.input_staging = {
      StagedFile{saga::Url("hdfs://wrangler/data/traj.dcd"), 64 * common::kMiB}};
  auto unit = um_.submit(cud);
  session_.engine().run_until(engine_now_plus(300.0));
  ASSERT_EQ(unit->state(), UnitState::kDone);

  // The container must have been placed on the block-holding node.
  std::string placed;
  for (const auto& e : session_.trace().find("unit", "placed")) {
    if (e.attrs.at("unit") == unit->id()) placed = e.attrs.at("node");
  }
  EXPECT_EQ(placed, target);
}

}  // namespace
}  // namespace hoh::pilot
