#include "mapreduce/sim_cost.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::mapreduce {
namespace {

using common::operator""_MiB;

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : stampede_(cluster::stampede_profile()),
        wrangler_(cluster::wrangler_profile()) {}

  PhaseEnv env(const cluster::MachineProfile& m, int nodes, int tasks,
               cluster::StorageBackend backend) const {
    PhaseEnv e;
    e.machine = &m;
    e.nodes = nodes;
    e.tasks = tasks;
    e.io_backend = backend;
    return e;
  }

  cluster::MachineProfile stampede_;
  cluster::MachineProfile wrangler_;
};

TEST_F(CostModelTest, ComputeScalesWithTasks) {
  auto e8 = env(stampede_, 1, 8, cluster::StorageBackend::kSharedFs);
  auto e32 = env(stampede_, 3, 32, cluster::StorageBackend::kSharedFs);
  const double ops = 5.0e7;
  EXPECT_NEAR(compute_time(e8, ops) / compute_time(e32, ops), 4.0, 1e-9);
}

TEST_F(CostModelTest, ComputeCappedByCores) {
  // 64 tasks on one 16-core Stampede node cannot go faster than 16-way.
  auto e16 = env(stampede_, 1, 16, cluster::StorageBackend::kSharedFs);
  auto e64 = env(stampede_, 1, 64, cluster::StorageBackend::kSharedFs);
  EXPECT_DOUBLE_EQ(compute_time(e16, 1e6), compute_time(e64, 1e6));
}

TEST_F(CostModelTest, WranglerComputeFasterPerCore) {
  auto es = env(stampede_, 1, 8, cluster::StorageBackend::kSharedFs);
  auto ew = env(wrangler_, 1, 8, cluster::StorageBackend::kSharedFs);
  EXPECT_LT(compute_time(ew, 1e6), compute_time(es, 1e6));
}

TEST_F(CostModelTest, MemoryPressureOnlyPastThreshold) {
  auto e = env(stampede_, 1, 8, cluster::StorageBackend::kSharedFs);
  e.memory_per_task_mb = 1024;  // 8 GB + framework: fine on 32 GB
  EXPECT_DOUBLE_EQ(memory_pressure_factor(e), 1.0);
  e.memory_per_task_mb = 4096;  // 32 GB + framework 3 GB > 27.2 GB budget
  EXPECT_GT(memory_pressure_factor(e), 1.0);
}

TEST_F(CostModelTest, MemoryPressureGrowsSuperlinearly) {
  auto e = env(stampede_, 1, 16, cluster::StorageBackend::kSharedFs);
  e.memory_per_task_mb = 2048;
  const double f1 = memory_pressure_factor(e);
  e.memory_per_task_mb = 4096;
  const double f2 = memory_pressure_factor(e);
  EXPECT_GT(f2, f1);
}

TEST_F(CostModelTest, WranglerMemoryNeverPressured) {
  auto e = env(wrangler_, 3, 32, cluster::StorageBackend::kLocalDisk);
  e.memory_per_task_mb = 4096;
  EXPECT_DOUBLE_EQ(memory_pressure_factor(e), 1.0);
}

TEST_F(CostModelTest, SharedFsMetadataOpsCharged) {
  const double few_ops = storage_phase_time(
      stampede_, cluster::StorageBackend::kSharedFs, 1_MiB, 1, 1, 1);
  const double many_ops = storage_phase_time(
      stampede_, cluster::StorageBackend::kSharedFs, 1_MiB, 1, 1, 100);
  EXPECT_NEAR(many_ops - few_ops,
              99 * stampede_.shared_fs.metadata_latency, 1e-9);
}

TEST_F(CostModelTest, LocalDiskStreamsShareWithinNodeOnly) {
  // 32 streams on 1 node vs 32 streams on 4 nodes: the latter has 8
  // streams per disk, so each stream is 4x faster.
  const double one_node = storage_phase_time(
      stampede_, cluster::StorageBackend::kLocalDisk, 64_MiB, 32, 1, 1);
  const double four_nodes = storage_phase_time(
      stampede_, cluster::StorageBackend::kLocalDisk, 64_MiB, 32, 4, 1);
  EXPECT_GT(one_node, 3.5 * four_nodes);
}

TEST_F(CostModelTest, EnvLoadCachedPerNodeIsCheaper) {
  PhaseSpec spec;  // pure environment load
  auto rp = env(stampede_, 3, 32, cluster::StorageBackend::kSharedFs);
  rp.env_cached_per_node = false;
  auto yarn = env(stampede_, 3, 32, cluster::StorageBackend::kLocalDisk);
  yarn.env_cached_per_node = true;
  const double rp_cost = estimate_phase(spec, rp).env_load;
  const double yarn_cost = estimate_phase(spec, yarn).env_load;
  EXPECT_GT(rp_cost, 2.0 * yarn_cost);
}

TEST_F(CostModelTest, ShuffleSmallFilesHurtSharedFs) {
  PhaseSpec spec;
  spec.shuffle_write_bytes = 32_MiB;
  spec.shuffle_read_bytes = 32_MiB;
  spec.shuffle_files = 32 * 32;  // M x R
  auto lustre = env(stampede_, 3, 32, cluster::StorageBackend::kSharedFs);
  lustre.env_bytes = 0;
  lustre.env_file_ops = 0;
  auto local = env(stampede_, 3, 32, cluster::StorageBackend::kLocalDisk);
  local.env_bytes = 0;
  local.env_file_ops = 0;
  EXPECT_GT(estimate_phase(spec, lustre).shuffle,
            estimate_phase(spec, local).shuffle);
}

TEST_F(CostModelTest, ShuffleGrowsWithVolume) {
  auto e = env(stampede_, 3, 32, cluster::StorageBackend::kSharedFs);
  e.env_bytes = 0;
  e.env_file_ops = 0;
  PhaseSpec small;
  small.shuffle_write_bytes = 1_MiB;
  small.shuffle_read_bytes = 1_MiB;
  small.shuffle_files = 1024;
  PhaseSpec large = small;
  large.shuffle_write_bytes = 100_MiB;
  large.shuffle_read_bytes = 100_MiB;
  EXPECT_GT(estimate_phase(large, e).shuffle,
            estimate_phase(small, e).shuffle);
}

TEST_F(CostModelTest, TotalIsSumOfComponents) {
  PhaseSpec spec;
  spec.compute_ops = 1e6;
  spec.input_bytes = 10_MiB;
  spec.shuffle_write_bytes = 5_MiB;
  spec.output_bytes = 1_MiB;
  spec.shuffle_files = 64;
  auto e = env(stampede_, 1, 8, cluster::StorageBackend::kSharedFs);
  const PhaseCost cost = estimate_phase(spec, e);
  EXPECT_NEAR(cost.total(),
              cost.env_load + cost.input_read + cost.compute + cost.shuffle +
                  cost.output_write,
              1e-12);
  EXPECT_GT(cost.compute, 0.0);
  EXPECT_GT(cost.input_read, 0.0);
}

TEST_F(CostModelTest, InvalidEnvThrows) {
  PhaseSpec spec;
  PhaseEnv bad;
  bad.machine = nullptr;
  EXPECT_THROW(estimate_phase(spec, bad), common::ConfigError);
  auto e = env(stampede_, 0, 8, cluster::StorageBackend::kSharedFs);
  EXPECT_THROW(estimate_phase(spec, e), common::ConfigError);
}

TEST_F(CostModelTest, MemoryBackendIgnoresOps) {
  const double t = storage_phase_time(
      wrangler_, cluster::StorageBackend::kMemory, 64_MiB, 32, 3, 1000);
  EXPECT_LT(t, 0.1);
}

}  // namespace
}  // namespace hoh::mapreduce
