#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "mapreduce/mr_engine.h"

/// Property test: run_mr's sort-shuffle data path must be output-identical
/// — values AND order — to a single-threaded reference that follows the
/// documented contract directly (reducer-partition order, key order within
/// a partition, each key's values in map-task then emission order, the
/// combiner applied per map task per key). Exercised over random jobs with
/// and without a combiner, reduce counts that do not divide map counts,
/// empty input, and all-keys-collide distributions.

namespace hoh::mapreduce {
namespace {

using Key = int;
// The value carries its provenance so any reordering the engine introduced
// would change the output, not just the sums.
using Value = std::string;
// Output keeps the full value sequence per key: order-sensitive.
using Output = std::pair<Key, std::vector<Value>>;
using Job = MrJob<int, Key, Value, Output>;

Job make_job(int emits_per_record, int key_range, bool with_combiner) {
  Job job;
  job.mapper = [emits_per_record, key_range](const int& record,
                                             Emitter<Key, Value>& out) {
    // Deterministic pseudo-random fan-out per record.
    std::uint32_t h = static_cast<std::uint32_t>(record) * 2654435761u + 1u;
    for (int e = 0; e < emits_per_record; ++e) {
      h = h * 1664525u + 1013904223u;
      const Key k = static_cast<Key>(h % static_cast<std::uint32_t>(key_range));
      out.emit(k, std::to_string(record) + ":" + std::to_string(e));
    }
  };
  if (with_combiner) {
    // Non-commutative fold: the combined value records the exact order
    // its inputs arrived in.
    job.combiner = [](const Key&, const std::vector<Value>& vs) {
      Value folded;
      for (const auto& v : vs) {
        if (!folded.empty()) folded += "|";
        folded += v;
      }
      return folded;
    };
  }
  job.reducer = [](const Key& k, const std::vector<Value>& vs) {
    return Output(k, vs);
  };
  return job;
}

/// Single-threaded reference implementing the contract with the simplest
/// possible data structures (ordered maps, whole-pair vectors).
std::vector<Output> reference_mr(const std::vector<int>& input,
                                 const Job& job, MrStats* stats) {
  const std::size_t m = job.map_tasks;
  const std::size_t r = job.reduce_tasks;
  MrStats s;
  s.map_input_records = input.size();
  // rt -> key -> values in map-task then emission order.
  std::vector<std::map<Key, std::vector<Value>>> shuffled(r);
  const std::size_t chunk =
      (input.size() + m - 1) / std::max<std::size_t>(m, 1);
  std::hash<Key> hasher;
  for (std::size_t t = 0; t < m; ++t) {
    const std::size_t lo = std::min(input.size(), t * chunk);
    const std::size_t hi = std::min(input.size(), lo + chunk);
    Emitter<Key, Value> emitter;  // standalone: one run, emission order
    for (std::size_t i = lo; i < hi; ++i) job.mapper(input[i], emitter);
    s.map_output_records += emitter.emitted();
    // Group this task's emissions per key, preserving emission order.
    std::map<Key, std::vector<Value>> grouped;
    auto& run = emitter.pairs();
    for (std::size_t i = 0; i < run.size(); ++i) {
      grouped[run.keys[i]].push_back(run.values[i]);
    }
    for (auto& [k, vs] : grouped) {
      if (job.combiner) {
        Value combined = job.combiner(k, vs);
        vs.assign(1, std::move(combined));
        ++s.combine_output_records;
      }
      auto& dst = shuffled[hasher(k) % r][k];
      dst.insert(dst.end(), vs.begin(), vs.end());
      s.shuffle_bytes +=
          static_cast<common::Bytes>(vs.size() * job.pair_bytes);
    }
  }
  std::vector<Output> out;
  for (std::size_t rt = 0; rt < r; ++rt) {
    for (const auto& [k, vs] : shuffled[rt]) {
      out.push_back(job.reducer(k, vs));
      ++s.reduce_input_groups;
      ++s.reduce_output_records;
    }
  }
  if (stats != nullptr) *stats = s;
  return out;
}

struct Case {
  std::size_t records;
  std::size_t map_tasks;
  std::size_t reduce_tasks;
  int emits_per_record;
  int key_range;
};

class MrPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(MrPropertyTest, OutputIdenticalToReference) {
  const Case c = GetParam();
  common::ThreadPool pool(4);
  std::vector<int> input(c.records);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int>(i * 7 + 3);
  }
  for (const bool with_combiner : {false, true}) {
    Job job = make_job(c.emits_per_record, c.key_range, with_combiner);
    job.map_tasks = c.map_tasks;
    job.reduce_tasks = c.reduce_tasks;
    MrStats got_stats;
    MrStats want_stats;
    const auto got = run_mr(pool, input, job, &got_stats);
    const auto want = reference_mr(input, job, &want_stats);
    ASSERT_EQ(got.size(), want.size())
        << "combiner=" << with_combiner;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first) << "at " << i;
      EXPECT_EQ(got[i].second, want[i].second)
          << "values differ for key " << got[i].first
          << " (combiner=" << with_combiner << ")";
    }
    EXPECT_EQ(got_stats.map_input_records, want_stats.map_input_records);
    EXPECT_EQ(got_stats.map_output_records, want_stats.map_output_records);
    EXPECT_EQ(got_stats.combine_output_records,
              want_stats.combine_output_records);
    EXPECT_EQ(got_stats.reduce_input_groups, want_stats.reduce_input_groups);
    EXPECT_EQ(got_stats.reduce_output_records,
              want_stats.reduce_output_records);
    EXPECT_EQ(got_stats.shuffle_bytes, want_stats.shuffle_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomJobs, MrPropertyTest,
    ::testing::Values(
        // r divides m and r does not divide m.
        Case{200, 8, 4, 3, 31}, Case{200, 5, 3, 3, 31},
        Case{173, 7, 2, 4, 13}, Case{97, 3, 5, 2, 97},
        // more reduce tasks than keys (empty partitions).
        Case{64, 4, 16, 1, 3},
        // all keys collide into one group.
        Case{150, 6, 4, 2, 1},
        // single map task, single reduce task.
        Case{50, 1, 1, 3, 11},
        // more map tasks than records (empty splits).
        Case{5, 16, 4, 2, 7},
        // empty input.
        Case{0, 4, 4, 3, 17}));

}  // namespace
}  // namespace hoh::mapreduce
