#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/kmeans_experiment.h"
#include "common/error.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"
#include "tenant/submission_gateway.h"

namespace hoh::tenant {
namespace {

/// Small live middleware stack (plain backend, watch plane) for gateway
/// integration tests: an active 2-node pilot fronted by a UnitManager.
struct GatewayHarness {
  pilot::Session session;
  pilot::PilotManager pm{session};
  pilot::UnitManager um{session};
  std::shared_ptr<pilot::Pilot> pilot;

  explicit GatewayHarness(int nodes = 2, int cores_per_node = 2) {
    const cluster::MachineProfile machine =
        cluster::generic_profile(nodes, cores_per_node);
    session.register_machine(machine, hpc::SchedulerKind::kSlurm, nodes);
    um.set_control_plane(common::ControlPlane::kWatch);
    pilot::AgentConfig agent;
    agent.spawn_latency = 0.01;
    agent.control_plane = common::ControlPlane::kWatch;
    pilot::PilotDescription pd;
    pd.resource = "slurm://" + machine.name + "/";
    pd.nodes = nodes;
    pd.runtime = 24 * 3600.0;
    pd.backend = pilot::AgentBackend::kPlain;
    pilot = pm.submit_pilot(pd, agent);
    um.add_pilot(pilot);
    while (pilot->state() != pilot::PilotState::kActive &&
           session.engine().now() < 3600.0) {
      session.engine().run_until(session.engine().now() + 5.0);
    }
    EXPECT_EQ(pilot->state(), pilot::PilotState::kActive);
  }

  void drain(SubmissionGateway& gw, double max_t = 36000.0) {
    while (!(um.all_done() && gw.quiescent()) &&
           session.engine().now() < max_t) {
      session.engine().run_until(session.engine().now() + 5.0);
    }
  }

  static pilot::ComputeUnitDescription unit(const std::string& name,
                                            double duration,
                                            int cores = 1) {
    pilot::ComputeUnitDescription cud;
    cud.name = name;
    cud.cores = cores;
    cud.memory_mb = 512;
    cud.duration = duration;
    return cud;
  }
};

TEST(SubmissionGateway, UnknownTenantThrows) {
  GatewayHarness h;
  SubmissionGateway gw(h.um);
  EXPECT_THROW(gw.submit("nobody", GatewayHarness::unit("u", 1.0)),
               common::NotFoundError);
}

TEST(SubmissionGateway, RateLimitRejectsBeforeStoreInsert) {
  GatewayHarness h;
  SubmissionGateway gw(h.um);
  TenantSpec spec;
  spec.id = "bursty";
  spec.quota.submit_rate = 0.1;
  spec.quota.submit_burst = 1.0;
  gw.add_tenant(spec);

  const Admission first = gw.submit("bursty", GatewayHarness::unit("a", 5.0));
  EXPECT_TRUE(first.accepted);
  const Admission second =
      gw.submit("bursty", GatewayHarness::unit("b", 5.0));
  EXPECT_FALSE(second.accepted);
  EXPECT_EQ(second.reason, "rate-limit");
  // The rejected unit never reached the UnitManager — admission happens
  // before any StateStore insert.
  EXPECT_EQ(h.um.submitted(), 0u);

  // One token accrues after 10 simulated seconds at rate 0.1/s.
  h.session.engine().run_until(h.session.engine().now() + 10.0);
  EXPECT_TRUE(gw.submit("bursty", GatewayHarness::unit("c", 5.0)).accepted);

  h.drain(gw);
  const TenantUsage& usage = gw.accounting().usage("bursty");
  EXPECT_EQ(usage.submitted, 3u);
  EXPECT_EQ(usage.rejected, 1u);
  EXPECT_EQ(usage.completed, 2u);
}

TEST(SubmissionGateway, CapacityQuotaQueuesInsteadOfRejecting) {
  GatewayHarness h;
  SubmissionGateway gw(h.um);
  TenantSpec spec;
  spec.id = "capped";
  spec.quota.max_in_flight_units = 1;
  gw.add_tenant(spec);

  for (int i = 0; i < 3; ++i) {
    const Admission a = gw.submit(
        "capped", GatewayHarness::unit("u" + std::to_string(i), 10.0));
    EXPECT_TRUE(a.accepted);
    if (i > 0) {
      EXPECT_TRUE(a.queued);
    }
  }
  // Only the head may be in the store; the rest are gateway-side.
  h.session.engine().run_until(h.session.engine().now() + 1.0);
  EXPECT_EQ(h.um.submitted(), 1u);
  EXPECT_EQ(gw.pending_count(), 2u);

  h.drain(gw);
  EXPECT_EQ(gw.accounting().usage("capped").completed, 3u);
  EXPECT_EQ(gw.peak_in_flight(), 1u);
}

TEST(SubmissionGateway, FairShareGivesWeightedService) {
  // Window of 1 makes the gateway the only ordering authority. Tenant
  // "gold" (share 3) should receive about three times the service of
  // "bronze" (share 1) while both stay backlogged.
  GatewayHarness h(1, 1);
  GatewayConfig gc;
  gc.policy = SchedulingPolicy::kFairShare;
  gc.dispatch_window = 1;
  SubmissionGateway gw(h.um, gc);
  TenantSpec gold;
  gold.id = "gold";
  gold.share_weight = 3.0;
  gw.add_tenant(gold);
  TenantSpec bronze;
  bronze.id = "bronze";
  bronze.share_weight = 1.0;
  gw.add_tenant(bronze);

  for (int i = 0; i < 24; ++i) {
    gw.submit("gold", GatewayHarness::unit("g" + std::to_string(i), 10.0));
    gw.submit("bronze", GatewayHarness::unit("b" + std::to_string(i), 10.0));
  }
  // Let roughly half the work finish, then compare service so far.
  h.session.engine().run_until(h.session.engine().now() + 250.0);
  const double gold_served = gw.accounting().usage("gold").core_seconds;
  const double bronze_served =
      gw.accounting().usage("bronze").core_seconds;
  ASSERT_GT(bronze_served, 0.0);
  EXPECT_NEAR(gold_served / bronze_served, 3.0, 0.8);

  h.drain(gw);
  EXPECT_EQ(gw.accounting().usage("gold").completed, 24u);
  EXPECT_EQ(gw.accounting().usage("bronze").completed, 24u);
}

TEST(SubmissionGateway, PreemptionEvictsLowPriorityAndRecovers) {
  // One node, two cores, window 2: "hog" fills the window with long
  // units, then "urgent" (hugely higher priority) arrives. With
  // preemption on, a hog unit is parked at kFailed via the legal
  // requeue edge, urgent runs, and the victim is redispatched later.
  GatewayHarness h(1, 2);
  GatewayConfig gc;
  gc.policy = SchedulingPolicy::kFairShare;
  gc.dispatch_window = 2;
  gc.preemption = true;
  gc.preempt_ratio = 4.0;
  SubmissionGateway gw(h.um, gc);
  TenantSpec hog;
  hog.id = "hog";
  gw.add_tenant(hog);
  TenantSpec urgent;
  urgent.id = "urgent";
  urgent.share_weight = 8.0;
  gw.add_tenant(urgent);

  gw.submit("hog", GatewayHarness::unit("hog-0", 400.0));
  gw.submit("hog", GatewayHarness::unit("hog-1", 400.0));
  // Let both hog units reach Executing.
  h.session.engine().run_until(h.session.engine().now() + 30.0);
  EXPECT_EQ(gw.in_flight_count(), 2u);

  gw.submit("urgent", GatewayHarness::unit("urgent-0", 50.0));
  h.session.engine().run_until(h.session.engine().now() + 60.0);
  EXPECT_EQ(gw.units_preempted(), 1u);
  EXPECT_EQ(gw.accounting().usage("hog").preempted, 1u);
  EXPECT_EQ(gw.accounting().usage("urgent").completed, 1u);

  // The victim redispatches across kFailed -> kPendingAgent and still
  // finishes: nothing is lost, only delayed.
  h.drain(gw);
  EXPECT_EQ(gw.accounting().usage("hog").completed, 2u);
  EXPECT_EQ(gw.accounting().usage("hog").failed, 0u);
  ASSERT_EQ(gw.completed_unit_names().size(), 3u);
}

TEST(SubmissionGateway, FifoServesArrivalOrder) {
  GatewayHarness h(1, 1);
  GatewayConfig gc;
  gc.policy = SchedulingPolicy::kFifo;
  gc.dispatch_window = 1;
  SubmissionGateway gw(h.um, gc);
  TenantSpec a;
  a.id = "a";
  gw.add_tenant(a);
  TenantSpec b;
  b.id = "b";
  b.share_weight = 100.0;  // FIFO must ignore weights entirely
  gw.add_tenant(b);
  for (int i = 0; i < 4; ++i) {
    gw.submit("a", GatewayHarness::unit("a" + std::to_string(i), 5.0));
  }
  for (int i = 0; i < 4; ++i) {
    gw.submit("b", GatewayHarness::unit("b" + std::to_string(i), 5.0));
  }
  h.drain(gw);
  const std::vector<std::string>& names = gw.completed_unit_names();
  ASSERT_EQ(names.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(names[static_cast<std::size_t>(i)],
              "a" + std::to_string(i));
    EXPECT_EQ(names[static_cast<std::size_t>(i + 4)],
              "b" + std::to_string(i));
  }
}

TEST(SubmissionGateway, SingleTenantRunMatchesGatewaylessDigest) {
  // The keystone parity property: one tenant with no quotas behind the
  // gateway must complete the same unit set as the raw UnitManager
  // path — same output checksum, ok flag, unit count.
  analytics::KmeansExperimentConfig cfg;
  cfg.machine = cluster::generic_profile(2, 4);
  cfg.scheduler = hpc::SchedulerKind::kSlurm;
  cfg.scenario.points = 10'000;
  cfg.scenario.clusters = 10;
  cfg.scenario.iterations = 2;
  cfg.scenario.label = "parity";
  cfg.nodes = 2;
  cfg.tasks = 8;
  cfg.control_plane = common::ControlPlane::kWatch;

  const analytics::KmeansExperimentResult baseline =
      analytics::run_kmeans_experiment(cfg);
  ASSERT_TRUE(baseline.ok);

  cfg.tenants = true;
  TenantSpec solo;
  solo.id = "solo";
  cfg.tenant_specs.push_back(solo);
  const analytics::KmeansExperimentResult gated =
      analytics::run_kmeans_experiment(cfg);
  ASSERT_TRUE(gated.ok);
  EXPECT_EQ(gated.output_checksum, baseline.output_checksum);
  EXPECT_EQ(gated.units_completed, baseline.units_completed);
  EXPECT_EQ(gated.units_preempted, 0u);
  ASSERT_TRUE(gated.tenant_accounting.is_object());
  EXPECT_EQ(static_cast<std::size_t>(gated.tenant_accounting.at("tenants")
                                         .at("solo")
                                         .at("completed")
                                         .as_number()),
            gated.units_completed);
}

}  // namespace
}  // namespace hoh::tenant
