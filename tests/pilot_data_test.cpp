#include "pilot/pilot_data.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::pilot {
namespace {

class PilotDataTest : public ::testing::Test {
 protected:
  PilotDataTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 4);
    session_.register_machine(cluster::wrangler_profile(),
                              hpc::SchedulerKind::kSge, 4);
  }

  PilotDataDescription pd_desc(const std::string& machine,
                               common::Bytes capacity = 10 * common::kGiB) {
    PilotDataDescription d;
    d.machine = machine;
    d.capacity = capacity;
    return d;
  }

  std::vector<DataFile> trajectory_files(int n, common::Bytes each) {
    std::vector<DataFile> files;
    for (int i = 0; i < n; ++i) {
      files.push_back(DataFile{"traj-" + std::to_string(i), each});
    }
    return files;
  }

  Session session_;
  DataUnitManager dum_{session_};
};

TEST_F(PilotDataTest, CreateRequiresRegisteredMachine) {
  EXPECT_NO_THROW(dum_.create_pilot_data(pd_desc("stampede")));
  EXPECT_THROW(dum_.create_pilot_data(pd_desc("mars")),
               common::NotFoundError);
}

TEST_F(PilotDataTest, SubmitBecomesReadyAfterTransfer) {
  auto pd = dum_.create_pilot_data(pd_desc("stampede"));
  auto du = dum_.submit_data_unit(trajectory_files(4, 256 * common::kMiB),
                                  pd);
  EXPECT_EQ(du->state(), DataUnitState::kPending);
  EXPECT_EQ(du->total_bytes(), 4 * 256 * common::kMiB);
  EXPECT_EQ(pd->used(), du->total_bytes());  // capacity reserved upfront
  session_.engine().run();
  EXPECT_EQ(du->state(), DataUnitState::kReady);
  ASSERT_EQ(du->locations().size(), 1u);
  EXPECT_EQ(du->locations()[0], pd->id());
}

TEST_F(PilotDataTest, CapacityEnforced) {
  auto pd = dum_.create_pilot_data(pd_desc("stampede", 1 * common::kGiB));
  EXPECT_THROW(
      dum_.submit_data_unit(trajectory_files(8, 256 * common::kMiB), pd),
      common::ResourceError);
}

TEST_F(PilotDataTest, ReplicateAcrossMachines) {
  auto src = dum_.create_pilot_data(pd_desc("stampede"));
  auto dst = dum_.create_pilot_data(pd_desc("wrangler"));
  auto du = dum_.submit_data_unit(trajectory_files(2, 128 * common::kMiB),
                                  src);
  EXPECT_THROW(dum_.replicate(du, dst), common::StateError);  // not ready
  session_.engine().run();
  ASSERT_EQ(du->state(), DataUnitState::kReady);
  dum_.replicate(du, dst);
  EXPECT_EQ(du->state(), DataUnitState::kReplicating);
  session_.engine().run();
  EXPECT_EQ(du->state(), DataUnitState::kReady);
  EXPECT_EQ(du->locations().size(), 2u);
  // Locality resolution per machine.
  EXPECT_EQ(dum_.location_on(*du, "stampede"), src->id());
  EXPECT_EQ(dum_.location_on(*du, "wrangler"), dst->id());
  EXPECT_EQ(dum_.location_on(*du, "mars"), "");
}

TEST_F(PilotDataTest, ReplicateIdempotent) {
  auto pd = dum_.create_pilot_data(pd_desc("stampede"));
  auto du = dum_.submit_data_unit(trajectory_files(1, 64 * common::kMiB),
                                  pd);
  session_.engine().run();
  const auto used = pd->used();
  dum_.replicate(du, pd);  // already there: no-op
  EXPECT_EQ(pd->used(), used);
  EXPECT_EQ(du->state(), DataUnitState::kReady);
}

TEST_F(PilotDataTest, StagingCostPrefersLocalReplica) {
  // Source on Wrangler's fast shared storage; Stampede has no replica.
  auto src = dum_.create_pilot_data(pd_desc("wrangler"));
  auto du = dum_.submit_data_unit(trajectory_files(2, 512 * common::kMiB),
                                  src);
  session_.engine().run();
  const double local = dum_.staging_cost(*du, "wrangler");
  const double remote = dum_.staging_cost(*du, "stampede");
  EXPECT_GT(local, 0.0);
  EXPECT_GT(remote, local);  // WAN pull + busy-Lustre write dominates

  // After replication the WAN hop disappears from the Stampede cost.
  auto dst = dum_.create_pilot_data(pd_desc("stampede"));
  dum_.replicate(du, dst);
  session_.engine().run();
  EXPECT_LT(dum_.staging_cost(*du, "stampede"), remote);
}

TEST_F(PilotDataTest, TraceRecordsDataEvents) {
  auto pd = dum_.create_pilot_data(pd_desc("stampede"));
  auto du = dum_.submit_data_unit(trajectory_files(1, 1 * common::kMiB), pd);
  session_.engine().run();
  EXPECT_TRUE(session_.trace().first("pilot-data", "created").has_value());
  const auto ready = session_.trace().first("pilot-data", "ready");
  ASSERT_TRUE(ready.has_value());
  EXPECT_EQ(ready->attrs.at("du"), du->id());
}

}  // namespace
}  // namespace hoh::pilot
