/// Regression tests pinning the *shapes* of the reproduced figures, so
/// refactors cannot silently break the paper's claims. These run the same
/// end-to-end driver the benches use (virtual time, so they are fast).

#include <gtest/gtest.h>

#include "analytics/kmeans_experiment.h"

namespace hoh::analytics {
namespace {

class FigureShapeTest : public ::testing::Test {
 protected:
  double ttc(const cluster::MachineProfile& machine,
             hpc::SchedulerKind scheduler, const KmeansScenario& scenario,
             int nodes, int tasks, bool yarn) {
    KmeansExperimentConfig cfg;
    cfg.machine = machine;
    cfg.scheduler = scheduler;
    cfg.scenario = scenario;
    cfg.nodes = nodes;
    cfg.tasks = tasks;
    cfg.yarn_stack = yarn;
    const auto result = run_kmeans_experiment(cfg);
    EXPECT_TRUE(result.ok);
    return result.time_to_completion;
  }

  double stampede(const KmeansScenario& s, int nodes, int tasks, bool yarn) {
    return ttc(cluster::stampede_profile(), hpc::SchedulerKind::kSlurm, s,
               nodes, tasks, yarn);
  }
  double wrangler(const KmeansScenario& s, int nodes, int tasks, bool yarn) {
    return ttc(cluster::wrangler_profile(), hpc::SchedulerKind::kSge, s,
               nodes, tasks, yarn);
  }
};

TEST_F(FigureShapeTest, RuntimesFallWithTaskCount) {
  const auto s = scenario_1m_points();
  for (bool yarn : {false, true}) {
    const double t8 = stampede(s, 1, 8, yarn);
    const double t16 = stampede(s, 2, 16, yarn);
    const double t32 = stampede(s, 3, 32, yarn);
    EXPECT_GT(t8, t16) << "yarn=" << yarn;
    EXPECT_GT(t16, t32) << "yarn=" << yarn;
  }
}

TEST_F(FigureShapeTest, YarnWinsAtScaleOnStampede1M) {
  const auto s = scenario_1m_points();
  // "for larger number of tasks, we observed on average 13% shorter
  // runtimes for RADICAL-Pilot-YARN"
  const double rp = stampede(s, 3, 32, false);
  const double yarn = stampede(s, 3, 32, true);
  EXPECT_LT(yarn, rp);
  EXPECT_GT((rp - yarn) / rp, 0.10);  // double-digit advantage at 1M/32
}

TEST_F(FigureShapeTest, YarnOverheadVisibleAtEightTasks) {
  // At 8 tasks the bootstrap is not amortized: YARN must not win big
  // anywhere, and loses outright on the small-shuffle scenario.
  const auto small = scenario_10k_points();
  EXPECT_GT(stampede(small, 1, 8, true), stampede(small, 1, 8, false));
  const auto big = scenario_1m_points();
  const double rp = stampede(big, 1, 8, false);
  const double yarn = stampede(big, 1, 8, true);
  EXPECT_GT(yarn, 0.9 * rp);  // within 10% — no big win at 8 tasks
}

TEST_F(FigureShapeTest, WranglerFasterThanStampede) {
  const auto s = scenario_100k_points();
  for (bool yarn : {false, true}) {
    EXPECT_LT(wrangler(s, 2, 16, yarn), stampede(s, 2, 16, yarn));
  }
}

TEST_F(FigureShapeTest, SpeedupDeclinesWithPointsOnStampedeRp) {
  // "On Stampede the speedup is highest for the 10,000 points scenario
  // ... and decreases ... for 1,000,000 points."
  auto speedup = [&](const KmeansScenario& s) {
    return stampede(s, 1, 8, false) / stampede(s, 3, 32, false);
  };
  EXPECT_GT(speedup(scenario_10k_points()),
            speedup(scenario_1m_points()) + 0.15);
}

TEST_F(FigureShapeTest, NoSpeedupDeclineOnWrangler) {
  // "we do not see the effect on Wrangler"
  auto speedup = [&](const KmeansScenario& s) {
    return wrangler(s, 1, 8, false) / wrangler(s, 3, 32, false);
  };
  EXPECT_NEAR(speedup(scenario_10k_points()),
              speedup(scenario_1m_points()), 0.15);
}

TEST_F(FigureShapeTest, YarnSpeedupBeatsRpSpeedup) {
  // Paper: RP-YARN 3.2 vs RP 2.4 on Wrangler/1M.
  const auto s = scenario_1m_points();
  const double rp_speedup = wrangler(s, 1, 8, false) / wrangler(s, 3, 32, false);
  const double yarn_speedup =
      wrangler(s, 1, 8, true) / wrangler(s, 3, 32, true);
  EXPECT_GT(yarn_speedup, rp_speedup);
}

TEST_F(FigureShapeTest, AmReuseNeverHurts) {
  const auto s = scenario_1m_points();
  KmeansExperimentConfig cfg;
  cfg.machine = cluster::stampede_profile();
  cfg.scenario = s;
  cfg.nodes = 3;
  cfg.tasks = 32;
  cfg.yarn_stack = true;
  const double without = run_kmeans_experiment(cfg).time_to_completion;
  cfg.reuse_yarn_app = true;
  const double with = run_kmeans_experiment(cfg).time_to_completion;
  EXPECT_LE(with, without + 1e-9);
}

}  // namespace
}  // namespace hoh::analytics
