#include "cluster/node.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::cluster {
namespace {

NodeSpec small_spec() {
  NodeSpec s;
  s.cores = 4;
  s.memory_mb = 8192;
  return s;
}

TEST(NodeTest, StartsFullyFree) {
  Node n("n0", small_spec());
  EXPECT_EQ(n.free_cores(), 4);
  EXPECT_EQ(n.free_memory_mb(), 8192);
  EXPECT_EQ(n.used_cores(), 0);
}

TEST(NodeTest, AllocateAndRelease) {
  Node n("n0", small_spec());
  ResourceRequest req{2, 4096};
  ASSERT_TRUE(n.allocate(req));
  EXPECT_EQ(n.free_cores(), 2);
  EXPECT_EQ(n.free_memory_mb(), 4096);
  EXPECT_EQ(n.used_memory_mb(), 4096);
  n.release(req);
  EXPECT_EQ(n.free_cores(), 4);
  EXPECT_EQ(n.free_memory_mb(), 8192);
}

TEST(NodeTest, RejectsOverCommitCores) {
  Node n("n0", small_spec());
  EXPECT_FALSE(n.allocate(ResourceRequest{5, 10}));
  EXPECT_EQ(n.free_cores(), 4);  // unchanged on failure
}

TEST(NodeTest, RejectsOverCommitMemory) {
  Node n("n0", small_spec());
  // Enough cores but too much memory — the case the paper's YARN-aware
  // scheduler exists for.
  EXPECT_FALSE(n.allocate(ResourceRequest{1, 16384}));
}

TEST(NodeTest, MemoryExhaustionBeforeCores) {
  Node n("n0", small_spec());
  EXPECT_TRUE(n.allocate(ResourceRequest{1, 8192}));
  EXPECT_EQ(n.free_cores(), 3);
  EXPECT_FALSE(n.fits(ResourceRequest{1, 1}));
}

TEST(NodeTest, OverReleaseThrows) {
  Node n("n0", small_spec());
  EXPECT_THROW(n.release(ResourceRequest{1, 0}), common::StateError);
  ASSERT_TRUE(n.allocate(ResourceRequest{2, 100}));
  EXPECT_THROW(n.release(ResourceRequest{3, 100}), common::StateError);
}

TEST(NodeTest, FillCompletely) {
  Node n("n0", small_spec());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(n.allocate(ResourceRequest{1, 2048}));
  }
  EXPECT_EQ(n.free_cores(), 0);
  EXPECT_EQ(n.free_memory_mb(), 0);
  EXPECT_FALSE(n.fits(ResourceRequest{1, 1}));
}

}  // namespace
}  // namespace hoh::cluster
