/// Property-style fuzz tests: random operation sequences against core
/// components, checking invariants that must hold for *every* sequence.
/// Seeds are parameterized so failures are reproducible.

#include <gtest/gtest.h>

#include "cluster/node.h"
#include "common/random.h"
#include "hdfs/hdfs_cluster.h"
#include "sim/engine.h"
#include "yarn/application_master.h"
#include "yarn/resource_manager.h"

namespace hoh {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

// ----------------------------------------------------------- engine ---

TEST_P(FuzzTest, EngineTimeNeverRunsBackwards) {
  common::Rng rng(GetParam());
  sim::Engine engine;
  double last_seen = 0.0;
  std::size_t fired = 0;
  // Random event cascade: each event may schedule more.
  std::function<void(int)> spawn = [&](int depth) {
    ASSERT_GE(engine.now(), last_seen);
    last_seen = engine.now();
    ++fired;
    if (depth <= 0) return;
    const int children = static_cast<int>(rng.uniform_int(0, 3));
    for (int c = 0; c < children; ++c) {
      engine.schedule(rng.uniform(0.0, 10.0),
                      [&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int i = 0; i < 20; ++i) {
    engine.schedule(rng.uniform(0.0, 50.0), [&spawn] { spawn(4); });
  }
  engine.run();
  EXPECT_GE(fired, 20u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST_P(FuzzTest, EngineCancellationNeverFires) {
  common::Rng rng(GetParam());
  sim::Engine engine;
  std::vector<sim::EventHandle> handles;
  std::vector<bool> cancelled;
  std::vector<bool> fired;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    fired.push_back(false);
    cancelled.push_back(false);
  }
  for (int i = 0; i < n; ++i) {
    handles.push_back(engine.schedule(
        rng.uniform(0.0, 100.0),
        [&fired, i] { fired[static_cast<std::size_t>(i)] = true; }));
  }
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.5)) {
      cancelled[static_cast<std::size_t>(i)] = true;
      engine.cancel(handles[static_cast<std::size_t>(i)]);
    }
  }
  engine.run();
  for (int i = 0; i < n; ++i) {
    EXPECT_NE(fired[static_cast<std::size_t>(i)],
              cancelled[static_cast<std::size_t>(i)])
        << "event " << i;
  }
}

// ------------------------------------------------------------- node ---

TEST_P(FuzzTest, NodeLedgerNeverOverCommitsOrUnderflows) {
  common::Rng rng(GetParam());
  cluster::NodeSpec spec;
  spec.cores = 16;
  spec.memory_mb = 32 * 1024;
  cluster::Node node("n0", spec);
  std::vector<cluster::ResourceRequest> held;
  for (int step = 0; step < 2000; ++step) {
    if (rng.bernoulli(0.6) || held.empty()) {
      const cluster::ResourceRequest req{
          static_cast<int>(rng.uniform_int(1, 6)),
          rng.uniform_int(256, 8192)};
      if (node.allocate(req)) held.push_back(req);
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(held.size()) - 1));
      node.release(held[idx]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Invariants after every step.
    ASSERT_GE(node.free_cores(), 0);
    ASSERT_GE(node.free_memory_mb(), 0);
    ASSERT_LE(node.free_cores(), spec.cores);
    ASSERT_LE(node.free_memory_mb(), spec.memory_mb);
  }
  for (const auto& req : held) node.release(req);
  EXPECT_EQ(node.free_cores(), spec.cores);
  EXPECT_EQ(node.free_memory_mb(), spec.memory_mb);
}

// ------------------------------------------------------------- hdfs ---

TEST_P(FuzzTest, HdfsAccountingConsistentUnderRandomOps) {
  common::Rng rng(GetParam());
  sim::Engine engine;
  const auto machine = cluster::stampede_profile();
  hdfs::HdfsConfig cfg;
  cfg.racks = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<std::string> nodes;
  for (int i = 0; i < 6; ++i) nodes.push_back("n" + std::to_string(i));
  hdfs::HdfsCluster fs(engine, machine, nodes, cfg, GetParam());

  std::vector<std::string> files;
  int created = 0;
  for (int step = 0; step < 300; ++step) {
    const double dice = rng.uniform(0.0, 1.0);
    if (dice < 0.5) {
      const std::string path = "/f" + std::to_string(created++);
      fs.create_file(path, rng.uniform_int(1, 400 * common::kMiB), "",
                     static_cast<int>(rng.uniform_int(1, 3)));
      files.push_back(path);
    } else if (dice < 0.8 && !files.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(files.size()) - 1));
      fs.remove(files[idx]);
      files.erase(files.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!files.empty()) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(files.size()) - 1));
      // Locality of every node sums to the replica count per block.
      const auto& meta = fs.stat(files[idx]);
      double total = 0.0;
      for (const auto& n : nodes) total += fs.locality(files[idx], n);
      double expected = 0.0;
      for (const auto& block : meta.blocks) {
        expected += static_cast<double>(block.replicas.size());
      }
      ASSERT_NEAR(total * static_cast<double>(meta.blocks.size()), expected,
                  1e-9);
    }
    // Invariant: used bytes equals the sum over files of size x replicas.
    common::Bytes expected_used = 0;
    for (const auto& f : files) {
      for (const auto& block : fs.stat(f).blocks) {
        expected_used +=
            block.size * static_cast<common::Bytes>(block.replicas.size());
      }
    }
    ASSERT_EQ(fs.used_bytes(), expected_used) << "step " << step;
  }
  // Removing everything returns to zero.
  for (const auto& f : files) fs.remove(f);
  EXPECT_EQ(fs.used_bytes(), 0);
}

// ------------------------------------------------------------- yarn ---

TEST_P(FuzzTest, YarnAllocationNeverExceedsCapacity) {
  common::Rng rng(GetParam());
  sim::Engine engine;
  auto machine = cluster::generic_profile(4, 8, 16 * 1024);
  std::vector<std::shared_ptr<cluster::Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(std::make_shared<cluster::Node>(
        "n" + std::to_string(i), machine.node));
  }
  cluster::Allocation allocation(nodes);
  yarn::ResourceManager rm(engine, allocation);
  const auto capacity = rm.total_capacity();

  // Random apps, each requesting random containers with random runtimes;
  // some get killed mid-flight.
  std::vector<std::string> app_ids;
  for (int a = 0; a < 12; ++a) {
    const int containers = static_cast<int>(rng.uniform_int(1, 5));
    const common::MemoryMb mem = rng.uniform_int(512, 6 * 1024);
    const double runtime = rng.uniform(5.0, 120.0);
    yarn::AppDescriptor app;
    app.on_am_start = [&engine, containers, mem,
                       runtime](yarn::ApplicationMaster& am) {
      yarn::ContainerRequest req;
      req.resource = {mem, 1};
      auto remaining = std::make_shared<int>(containers);
      am.request_containers(
          containers, req,
          [&engine, runtime, remaining, &am](const yarn::Container& c) {
            am.launch(c.id, [&engine, runtime, remaining, &am,
                             id = c.id] {
              engine.schedule(runtime, [remaining, &am, id] {
                am.complete_container(id);
                if (--(*remaining) == 0) am.unregister(true);
              });
            });
          });
    };
    app_ids.push_back(rm.submit_application(std::move(app)));
  }
  // Drive and check capacity invariants at every step.
  for (int tick = 0; tick < 400; ++tick) {
    engine.run_until(engine.now() + 1.0);
    const auto used = rm.total_allocated();
    ASSERT_LE(used.memory_mb, capacity.memory_mb) << "tick " << tick;
    ASSERT_GE(used.memory_mb, 0);
    if (tick == 50) {
      // Kill a random app mid-flight.
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(app_ids.size()) - 1));
      rm.kill_application(app_ids[idx]);
    }
  }
  engine.run_until(engine.now() + 2000.0);
  // Everything terminal and released.
  for (const auto& id : app_ids) {
    EXPECT_TRUE(yarn::is_final(rm.application(id).state)) << id;
  }
  EXPECT_EQ(rm.total_allocated().memory_mb, 0);
  rm.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace hoh
