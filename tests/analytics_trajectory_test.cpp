#include "analytics/trajectory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace hoh::analytics {
namespace {

TEST(TrajectoryTest, GenerationShapeAndDeterminism) {
  auto t = generate_trajectory(50, 20, 9);
  EXPECT_EQ(t.atoms, 50u);
  EXPECT_EQ(t.frame_count(), 20u);
  for (const auto& f : t.frames) EXPECT_EQ(f.size(), 50u);
  auto t2 = generate_trajectory(50, 20, 9);
  EXPECT_EQ(t.frames, t2.frames);
}

TEST(TrajectoryTest, InvalidShapesThrow) {
  EXPECT_THROW(generate_trajectory(0, 10, 1), common::ConfigError);
  EXPECT_THROW(generate_trajectory(10, 0, 1), common::ConfigError);
}

TEST(TrajectoryTest, BytesEstimate) {
  EXPECT_EQ(trajectory_bytes(100, 10), 10 * (100 * 12 + 100));
  EXPECT_GT(trajectory_bytes(1000, 1000), trajectory_bytes(100, 100));
}

TEST(TrajectoryTest, CenterOfMass) {
  std::vector<Point3> frame = {{0, 0, 0}, {2, 4, 6}};
  const Point3 com = center_of_mass(frame);
  EXPECT_DOUBLE_EQ(com[0], 1.0);
  EXPECT_DOUBLE_EQ(com[1], 2.0);
  EXPECT_DOUBLE_EQ(com[2], 3.0);
}

TEST(TrajectoryTest, RadiusOfGyrationKnownValue) {
  // Two points 2 apart: COM in the middle, every point 1 away -> Rg = 1.
  std::vector<Point3> frame = {{-1, 0, 0}, {1, 0, 0}};
  EXPECT_DOUBLE_EQ(radius_of_gyration(frame), 1.0);
}

TEST(TrajectoryTest, RmsdProperties) {
  auto t = generate_trajectory(30, 5, 3);
  EXPECT_DOUBLE_EQ(rmsd(t.frames[0], t.frames[0]), 0.0);
  EXPECT_GT(rmsd(t.frames[0], t.frames[4]), 0.0);
  // Symmetric.
  EXPECT_DOUBLE_EQ(rmsd(t.frames[1], t.frames[3]),
                   rmsd(t.frames[3], t.frames[1]));
  std::vector<Point3> short_frame = {{0, 0, 0}};
  EXPECT_THROW(rmsd(t.frames[0], short_frame), common::ConfigError);
}

TEST(TrajectoryTest, RmsdGrowsWithLag) {
  // Random-walk trajectories drift: RMSD to frame 0 trends upward.
  common::ThreadPool pool(4);
  auto t = generate_trajectory(200, 100, 17, 0.1);
  auto series = rmsd_series(pool, t);
  ASSERT_EQ(series.size(), 100u);
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_GT(series[99], series[10]);
}

TEST(TrajectoryTest, RgSeriesParallelMatchesDirect) {
  common::ThreadPool pool(4);
  auto t = generate_trajectory(100, 40, 23);
  auto series = rg_series(pool, t);
  ASSERT_EQ(series.size(), 40u);
  for (std::size_t f = 0; f < 40; ++f) {
    EXPECT_DOUBLE_EQ(series[f], radius_of_gyration(t.frames[f]));
  }
}

TEST(TrajectoryTest, PcaEigenvaluesOfKnownMotion) {
  // A trajectory whose COM moves only along x: first eigenvalue carries
  // all the variance, the others vanish.
  Trajectory t;
  t.atoms = 2;
  for (int f = 0; f < 50; ++f) {
    const double x = static_cast<double>(f);
    t.frames.push_back({{x - 1.0, 0.0, 0.0}, {x + 1.0, 0.0, 0.0}});
  }
  const auto eig = com_pca_eigenvalues(t);
  EXPECT_GT(eig[0], 100.0);
  EXPECT_NEAR(eig[1], 0.0, 1e-9);
  EXPECT_NEAR(eig[2], 0.0, 1e-9);
}

TEST(TrajectoryTest, PcaEigenvaluesSortedAndNonNegative) {
  auto t = generate_trajectory(100, 200, 31, 0.2);
  const auto eig = com_pca_eigenvalues(t);
  EXPECT_GE(eig[0], eig[1]);
  EXPECT_GE(eig[1], eig[2]);
  EXPECT_GE(eig[2], -1e-12);
}

TEST(TrajectoryTest, PcaTraceEqualsTotalVariance) {
  // Jacobi rotations preserve the trace: sum of eigenvalues equals the
  // total COM variance.
  auto t = generate_trajectory(50, 100, 13, 0.3);
  std::vector<Point3> coms;
  for (const auto& f : t.frames) coms.push_back(center_of_mass(f));
  Point3 mean{0, 0, 0};
  for (const auto& c : coms) mean = mean + c;
  mean = mean * (1.0 / static_cast<double>(coms.size()));
  double total_var = 0.0;
  for (const auto& c : coms) total_var += distance2(c, mean);
  total_var /= static_cast<double>(coms.size());

  const auto eig = com_pca_eigenvalues(t);
  EXPECT_NEAR(eig[0] + eig[1] + eig[2], total_var, 1e-9);
}

}  // namespace
}  // namespace hoh::analytics
