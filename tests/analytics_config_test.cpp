#include "analytics/experiment_config.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::analytics {
namespace {

TEST(ExperimentConfigTest, DefaultsApplied) {
  const auto cfg = kmeans_config_from_json(common::Json::parse("{}"));
  EXPECT_EQ(cfg.machine.name, "stampede");
  EXPECT_EQ(cfg.scenario.points, 1'000'000);
  EXPECT_FALSE(cfg.yarn_stack);
  EXPECT_EQ(cfg.nodes, 1);
  EXPECT_EQ(cfg.tasks, 8);
}

TEST(ExperimentConfigTest, FullObjectParsed) {
  const auto cfg = kmeans_config_from_json(common::Json::parse(R"({
    "machine": "wrangler", "nodes": 3, "tasks": 32,
    "stack": "rp-yarn", "scenario": "100k",
    "op_cost": 1e-5, "shuffle_amplification": 2.0,
    "reuse_yarn_app": true
  })"));
  EXPECT_EQ(cfg.machine.name, "wrangler");
  EXPECT_EQ(cfg.scheduler, hpc::SchedulerKind::kSge);
  EXPECT_EQ(cfg.nodes, 3);
  EXPECT_EQ(cfg.tasks, 32);
  EXPECT_TRUE(cfg.yarn_stack);
  EXPECT_EQ(cfg.scenario.points, 100'000);
  EXPECT_DOUBLE_EQ(cfg.op_cost, 1e-5);
  EXPECT_DOUBLE_EQ(cfg.shuffle_amplification, 2.0);
  EXPECT_TRUE(cfg.reuse_yarn_app);
}

TEST(ExperimentConfigTest, CustomScenarioObject) {
  const auto cfg = kmeans_config_from_json(common::Json::parse(R"({
    "scenario": {"points": 250000, "clusters": 200, "iterations": 4}
  })"));
  EXPECT_EQ(cfg.scenario.points, 250'000);
  EXPECT_EQ(cfg.scenario.clusters, 200);
  EXPECT_EQ(cfg.scenario.iterations, 4);
  EXPECT_NE(cfg.scenario.label.find("250000"), std::string::npos);
}

TEST(ExperimentConfigTest, RejectsBadValues) {
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"machine": "mars"})")),
               common::ConfigError);
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"stack": "mesos"})")),
               common::ConfigError);
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"scenario": "5k"})")),
               common::ConfigError);
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"scenario": 7})")),
               common::ConfigError);
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"nodes": 0})")),
               common::ConfigError);
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"scenario": {"points": 0,
                                          "clusters": 5}})")),
               common::ConfigError);
  EXPECT_THROW(kmeans_config_from_json(common::Json::parse("[1,2]")),
               common::ConfigError);
}

TEST(ExperimentConfigTest, ElasticSectionParsed) {
  const auto cfg = kmeans_config_from_json(common::Json::parse(R"({
    "nodes": 2, "tasks": 64, "stack": "rp-yarn",
    "elastic": {"policy": "utilization",
                "params": {"high_watermark": 0.9, "cooldown": 60},
                "sample_interval": 15, "max_nodes": 6,
                "drain_timeout": 120}
  })"));
  EXPECT_TRUE(cfg.elastic);
  EXPECT_EQ(cfg.elastic_policy.name, "utilization");
  EXPECT_DOUBLE_EQ(cfg.elastic_policy.params.at("high_watermark"), 0.9);
  EXPECT_DOUBLE_EQ(cfg.elastic_policy.params.at("cooldown"), 60.0);
  EXPECT_DOUBLE_EQ(cfg.elastic_config.sample_interval, 15.0);
  EXPECT_EQ(cfg.elastic_config.min_nodes, 2);  // defaults to nodes
  EXPECT_EQ(cfg.elastic_config.max_nodes, 6);
  EXPECT_DOUBLE_EQ(cfg.elastic_config.drain_timeout, 120.0);
}

TEST(ExperimentConfigTest, ElasticSectionRejectsBadValues) {
  // Unknown policy name.
  EXPECT_THROW(kmeans_config_from_json(common::Json::parse(
                   R"({"elastic": {"policy": "oracle"}})")),
               common::ConfigError);
  // Unknown policy parameter.
  EXPECT_THROW(kmeans_config_from_json(common::Json::parse(
                   R"({"elastic": {"policy": "backlog",
                       "params": {"warp_factor": 9}}})")),
               common::ConfigError);
  // max_nodes below the base allocation.
  EXPECT_THROW(kmeans_config_from_json(common::Json::parse(
                   R"({"nodes": 4, "elastic": {"max_nodes": 2}})")),
               common::ConfigError);
  // Not an object.
  EXPECT_THROW(kmeans_config_from_json(
                   common::Json::parse(R"({"elastic": "yes"})")),
               common::ConfigError);
}

TEST(ExperimentConfigTest, PlanParsing) {
  const auto plan = experiment_plan_from_json(common::Json::parse(R"({
    "experiments": [
      {"machine": "stampede", "tasks": 8},
      {"machine": "wrangler", "tasks": 16}
    ]
  })"));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].machine.name, "stampede");
  EXPECT_EQ(plan[1].tasks, 16);

  EXPECT_THROW(experiment_plan_from_json(common::Json::parse("{}")),
               common::ConfigError);
  EXPECT_THROW(experiment_plan_from_json(
                   common::Json::parse(R"({"experiments": []})")),
               common::ConfigError);
}

TEST(ExperimentConfigTest, ResultRoundTripsThroughJsonText) {
  KmeansExperimentConfig cfg;
  cfg.machine = cluster::stampede_profile();
  cfg.scenario = scenario_10k_points();
  cfg.nodes = 2;
  cfg.tasks = 16;
  cfg.yarn_stack = true;
  KmeansExperimentResult result;
  result.ok = true;
  result.time_to_completion = 987.5;
  result.units_completed = 64;
  const auto parsed =
      common::Json::parse(result_to_json(cfg, result).dump());
  EXPECT_EQ(parsed.at("machine").as_string(), "stampede");
  EXPECT_EQ(parsed.at("stack").as_string(), "rp-yarn");
  EXPECT_TRUE(parsed.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(parsed.at("time_to_completion_s").as_number(), 987.5);
  EXPECT_EQ(parsed.at("units_completed").as_int(), 64);
  EXPECT_FALSE(parsed.contains("elastic"));

  cfg.elastic = true;
  cfg.elastic_config.max_nodes = 6;
  result.peak_nodes = 5;
  result.elastic_counters.grow_decisions = 3;
  const auto with_elastic =
      common::Json::parse(result_to_json(cfg, result).dump());
  EXPECT_EQ(with_elastic.at("elastic").at("policy").as_string(), "backlog");
  EXPECT_EQ(with_elastic.at("elastic").at("peakNodes").as_int(), 5);
  EXPECT_EQ(with_elastic.at("elastic")
                .at("counters")
                .at("growDecisions")
                .as_int(),
            3);
}

TEST(ExperimentConfigTest, ParsedConfigRunsEndToEnd) {
  const auto cfg = kmeans_config_from_json(common::Json::parse(R"({
    "machine": "generic", "nodes": 2, "tasks": 8,
    "scenario": {"points": 10000, "clusters": 10}
  })"));
  const auto result = run_kmeans_experiment(cfg);
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.time_to_completion, 0.0);
}

}  // namespace
}  // namespace hoh::analytics
