/// Parameterized property sweeps over the analytic models: monotonicity
/// and scaling laws that must hold for any sane calibration, so future
/// re-calibration cannot silently break the models' physics.

#include <gtest/gtest.h>

#include "analytics/kmeans_cost.h"
#include "common/string_util.h"
#include "mapreduce/sim_cost.h"

namespace hoh {
namespace {

// ------------------------------------------------ storage monotonicity ---

class StorageSweep
    : public ::testing::TestWithParam<cluster::StorageBackend> {};

TEST_P(StorageSweep, TimeMonotoneInBytes) {
  const auto machine = cluster::wrangler_profile();  // has every tier
  double prev = -1.0;
  for (common::Bytes bytes = 1 * common::kMiB; bytes <= 1024 * common::kMiB;
       bytes *= 4) {
    const double t = machine.storage_transfer_time(GetParam(), bytes, 4);
    EXPECT_GT(t, prev) << common::format_bytes(bytes);
    prev = t;
  }
}

TEST_P(StorageSweep, TimeMonotoneInContention) {
  const auto machine = cluster::wrangler_profile();
  double prev = 0.0;
  for (int streams = 1; streams <= 64; streams *= 2) {
    const double t = machine.storage_transfer_time(
        GetParam(), 256 * common::kMiB, streams);
    EXPECT_GE(t, prev) << streams << " streams";
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StorageSweep,
    ::testing::Values(cluster::StorageBackend::kLocalDisk,
                      cluster::StorageBackend::kLocalSsd,
                      cluster::StorageBackend::kSharedFs),
    [](const auto& info) {
      return info.param == cluster::StorageBackend::kLocalDisk ? "disk"
             : info.param == cluster::StorageBackend::kLocalSsd
                 ? "ssd"
                 : "shared";
    });

// --------------------------------------------- phase-cost monotonicity ---

class PhaseCostSweep : public ::testing::TestWithParam<int> {};

TEST_P(PhaseCostSweep, MoreTasksNeverSlowerAtFixedNodes) {
  // With nodes fixed, adding tasks (up to the core count) must not
  // increase any component of the phase cost.
  const auto machine = cluster::stampede_profile();
  mapreduce::PhaseSpec spec;
  spec.compute_ops = 1e8;
  spec.input_bytes = 512 * common::kMiB;
  mapreduce::PhaseEnv env;
  env.machine = &machine;
  env.nodes = GetParam();
  env.env_bytes = 0;
  env.env_file_ops = 0;
  env.memory_per_task_mb = 512;  // stay far from the pressure knee

  double prev_total = 1e300;
  for (int tasks = 1; tasks <= env.nodes * machine.node.cores; tasks *= 2) {
    env.tasks = tasks;
    const double total = mapreduce::estimate_phase(spec, env).total();
    EXPECT_LE(total, prev_total + 1e-9) << tasks << " tasks";
    prev_total = total;
  }
}

TEST_P(PhaseCostSweep, MoreNodesNeverSlowerAtFixedTasks) {
  const auto machine = cluster::stampede_profile();
  mapreduce::PhaseSpec spec;
  spec.compute_ops = 1e8;
  spec.input_bytes = 512 * common::kMiB;
  spec.shuffle_write_bytes = 128 * common::kMiB;
  spec.shuffle_files = 256;
  mapreduce::PhaseEnv env;
  env.machine = &machine;
  env.tasks = 16 * GetParam();
  env.io_backend = cluster::StorageBackend::kLocalDisk;
  env.env_bytes = 0;
  env.env_file_ops = 0;
  env.memory_per_task_mb = 256;

  double prev_total = 1e300;
  for (int nodes = GetParam(); nodes <= 8 * GetParam(); nodes *= 2) {
    env.nodes = nodes;
    const double total = mapreduce::estimate_phase(spec, env).total();
    EXPECT_LE(total, prev_total + 1e-9) << nodes << " nodes";
    prev_total = total;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, PhaseCostSweep,
                         ::testing::Values(1, 2, 3));

// -------------------------------------------- K-Means model invariants ---

class KmeansModelSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(KmeansModelSweep, YarnEnvNeverWorseThanRpEnv) {
  // YARN's per-node localization must never exceed RP's per-task
  // shared-filesystem load, at any configuration on either machine.
  for (const auto& machine :
       {cluster::stampede_profile(), cluster::wrangler_profile()}) {
    analytics::KmeansRunConfig rp;
    rp.machine = &machine;
    rp.nodes = GetParam().first;
    rp.tasks = GetParam().second;
    rp.yarn_stack = false;
    analytics::KmeansRunConfig yarn = rp;
    yarn.yarn_stack = true;
    const auto scenario = analytics::scenario_100k_points();
    const auto rp_cost = analytics::kmeans_phase_durations(scenario, rp);
    const auto yarn_cost =
        analytics::kmeans_phase_durations(scenario, yarn);
    EXPECT_LE(yarn_cost.wrapper_per_node, rp_cost.env_load_per_task)
        << machine.name;
  }
}

TEST_P(KmeansModelSweep, ShuffleMonotoneInPoints) {
  const auto machine = cluster::stampede_profile();
  analytics::KmeansRunConfig cfg;
  cfg.machine = &machine;
  cfg.nodes = GetParam().first;
  cfg.tasks = GetParam().second;
  double prev = -1.0;
  for (std::int64_t points : {10'000LL, 100'000LL, 1'000'000LL}) {
    analytics::KmeansScenario s;
    s.points = points;
    s.clusters = 50'000'000 / points;
    const auto d = analytics::kmeans_phase_durations(s, cfg);
    const double shuffle = d.map_cost.shuffle + d.reduce_cost.shuffle;
    EXPECT_GT(shuffle, prev);
    prev = shuffle;
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, KmeansModelSweep,
                         ::testing::Values(std::pair{1, 8}, std::pair{2, 16},
                                           std::pair{3, 32}));

}  // namespace
}  // namespace hoh
