#include <gtest/gtest.h>

#include "common/error.h"
#include "hdfs/hdfs_cluster.h"
#include "hpc/batch_scheduler.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"
#include "spark/standalone.h"
#include "yarn/application_master.h"
#include "yarn/resource_manager.h"

namespace hoh {
namespace {

// ---------------------------------------------------------------- HPC ---

class HpcFailureTest : public ::testing::Test {
 protected:
  HpcFailureTest()
      : profile_(cluster::generic_profile(4, 8, 16 * 1024)),
        sched_(engine_, profile_, 4) {}
  sim::Engine engine_;
  cluster::MachineProfile profile_;
  hpc::BatchScheduler sched_;
};

TEST_F(HpcFailureTest, NodeFailureKillsRunningJob) {
  std::string job_node;
  const auto id = sched_.submit(
      hpc::BatchJobRequest{"j", 2, 600.0, "q", "", 0},
      [&](const std::string&, const cluster::Allocation& alloc) {
        job_node = alloc.node_names().front();
      });
  engine_.run_until(30.0);
  ASSERT_EQ(sched_.state(id), hpc::BatchJobState::kRunning);
  sched_.fail_node(job_node);
  EXPECT_EQ(sched_.state(id), hpc::BatchJobState::kFailed);
  // Dead node out of the pool; the other allocated node returned.
  EXPECT_EQ(sched_.live_node_count(), 3);
  EXPECT_EQ(sched_.free_nodes(), 3);
}

TEST_F(HpcFailureTest, FailedNodeNotReallocatedUntilRepair) {
  const auto probe = sched_.submit(
      hpc::BatchJobRequest{"probe", 1, 60.0, "q", "", 0}, nullptr);
  engine_.run_until(20.0);
  sched_.complete(probe);
  sched_.fail_node(profile_.name + "-n0000");
  // 4-node job cannot start with only 3 live nodes.
  const auto big = sched_.submit(
      hpc::BatchJobRequest{"big", 4, 600.0, "q", "", 0}, nullptr);
  engine_.run_until(engine_.now() + 60.0);
  EXPECT_EQ(sched_.state(big), hpc::BatchJobState::kPending);
  sched_.repair_node(profile_.name + "-n0000");
  engine_.run_until(engine_.now() + 60.0);
  EXPECT_EQ(sched_.state(big), hpc::BatchJobState::kRunning);
}

TEST_F(HpcFailureTest, HigherPriorityJumpsQueue) {
  // Occupy the whole machine, then queue a low- and a high-priority job.
  const auto hog = sched_.submit(
      hpc::BatchJobRequest{"hog", 4, 600.0, "q", "", 0}, nullptr);
  engine_.run_until(20.0);
  ASSERT_EQ(sched_.state(hog), hpc::BatchJobState::kRunning);
  const auto low = sched_.submit(
      hpc::BatchJobRequest{"low", 4, 100.0, "q", "", 0}, nullptr);
  const auto high = sched_.submit(
      hpc::BatchJobRequest{"high", 4, 100.0, "q", "", 5}, nullptr);
  engine_.run_until(engine_.now() + 30.0);
  sched_.complete(hog);
  engine_.run_until(engine_.now() + 30.0);
  EXPECT_EQ(sched_.state(high), hpc::BatchJobState::kRunning);
  EXPECT_EQ(sched_.state(low), hpc::BatchJobState::kPending);
}

TEST_F(HpcFailureTest, UnknownNodeThrows) {
  EXPECT_THROW(sched_.fail_node("nope"), common::NotFoundError);
  EXPECT_THROW(sched_.repair_node("nope"), common::NotFoundError);
}

// --------------------------------------------------------------- YARN ---

class YarnFailureTest : public ::testing::Test {
 protected:
  YarnFailureTest() : machine_(cluster::generic_profile(3, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
  }
  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
};

TEST_F(YarnFailureTest, LostTaskContainerNotifiesAm) {
  yarn::ResourceManager rm(engine_, allocation_);
  std::string task_node;
  bool lost = false;
  yarn::AppDescriptor app;
  app.on_am_start = [&](yarn::ApplicationMaster& am) {
    am.on_preempted([&](const yarn::Container&) { lost = true; });
    yarn::ContainerRequest req;
    am.request_containers(1, req, [&](const yarn::Container& c) {
      task_node = c.node;
      am.launch(c.id, [] {});
    });
  };
  const auto app_id = rm.submit_application(std::move(app));
  engine_.run_until(120.0);
  ASSERT_FALSE(task_node.empty());
  // Fail the task's node — unless the AM shares it (then this tests AM
  // restart instead, covered below); pick a different scenario by
  // re-checking.
  const auto am_node = rm.application(app_id).am_node;
  if (task_node == am_node) {
    GTEST_SKIP() << "task collocated with AM on this seed";
  }
  rm.fail_node(task_node);
  EXPECT_TRUE(lost);
  EXPECT_EQ(rm.application(app_id).state, yarn::AppState::kRunning);
  rm.shutdown();
}

TEST_F(YarnFailureTest, AmNodeLossTriggersRestartAttempt) {
  yarn::ResourceManager rm(engine_, allocation_);
  int am_starts = 0;
  yarn::AppDescriptor app;
  app.on_am_start = [&](yarn::ApplicationMaster&) { ++am_starts; };
  const auto app_id = rm.submit_application(std::move(app));
  engine_.run_until(60.0);
  ASSERT_EQ(am_starts, 1);
  const auto first_node = rm.application(app_id).am_node;
  rm.fail_node(first_node);
  EXPECT_EQ(rm.application(app_id).state, yarn::AppState::kSubmitted);
  engine_.run_until(engine_.now() + 120.0);
  EXPECT_EQ(am_starts, 2);  // second attempt registered
  EXPECT_EQ(rm.application(app_id).state, yarn::AppState::kRunning);
  EXPECT_NE(rm.application(app_id).am_node, first_node);
  rm.shutdown();
}

TEST_F(YarnFailureTest, AppFailsAfterMaxAttempts) {
  yarn::YarnConfig cfg;
  cfg.am_max_attempts = 2;
  yarn::ResourceManager rm(engine_, allocation_, cfg);
  yarn::AppDescriptor app;
  app.on_am_start = [](yarn::ApplicationMaster&) {};
  const auto app_id = rm.submit_application(std::move(app));
  engine_.run_until(60.0);
  rm.fail_node(rm.application(app_id).am_node);  // attempt 2 scheduled
  engine_.run_until(engine_.now() + 120.0);
  ASSERT_EQ(rm.application(app_id).state, yarn::AppState::kRunning);
  rm.fail_node(rm.application(app_id).am_node);  // out of attempts
  EXPECT_EQ(rm.application(app_id).state, yarn::AppState::kFailed);
  rm.shutdown();
}

TEST_F(YarnFailureTest, MetricsReportLostNodes) {
  yarn::ResourceManager rm(engine_, allocation_);
  engine_.run_until(5.0);
  rm.fail_node("n1");
  const auto m = rm.cluster_metrics().at("clusterMetrics");
  EXPECT_EQ(m.at("activeNodes").as_int(), 2);
  EXPECT_EQ(m.at("lostNodes").as_int(), 1);
  rm.shutdown();
}

// -------------------------------------------------------------- Spark ---

TEST(SparkFailureTest, WorkerLossShrinksThenRecoversSlots) {
  sim::Engine engine;
  auto machine = cluster::generic_profile(3, 8, 16 * 1024);
  std::vector<std::shared_ptr<cluster::Node>> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(std::make_shared<cluster::Node>(
        "n" + std::to_string(i), machine.node));
  }
  cluster::Allocation allocation(nodes);
  spark::SparkStandaloneCluster spark(engine, machine, allocation);

  spark::SparkAppDescriptor app;
  app.executor_cores = 4;
  app.executor_memory_mb = 4096;
  app.max_cores = 8;  // 2 executors
  const auto id = spark.submit_application(app);
  engine.run_until(30.0);
  ASSERT_EQ(spark.task_slots(id), 8);

  // Fail the node hosting the first executor.
  const auto execs = spark.executors(id);
  ASSERT_FALSE(execs.empty());
  spark.fail_worker(execs.front().worker_node);
  EXPECT_EQ(spark.live_worker_count(), 2u);
  EXPECT_LT(spark.task_slots(id), 8);

  // The master re-grants on surviving workers.
  engine.run_until(engine.now() + 30.0);
  EXPECT_EQ(spark.task_slots(id), 8);
  for (const auto& e : spark.executors(id)) {
    EXPECT_NE(e.worker_node, execs.front().worker_node);
  }
  EXPECT_THROW(spark.fail_worker("nope"), common::NotFoundError);
}

// --------------------------------------------------- unit exit codes ---

class UnitFailureTest : public ::testing::Test {
 protected:
  UnitFailureTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 4);
  }

  pilot::ComputeUnitDescription failing_unit() {
    pilot::ComputeUnitDescription cud;
    cud.duration = 5.0;
    cud.memory_mb = 1024;
    cud.exit_code = 1;
    return cud;
  }

  void run_mixed(pilot::AgentBackend backend) {
    pilot::PilotDescription pd;
    pd.resource = "slurm://stampede/";
    pd.nodes = 1;
    pd.runtime = 7200.0;
    pd.backend = backend;
    pilot::PilotManager pm(session_);
    pilot::UnitManager um(session_);
    auto pilot = pm.submit_pilot(pd);
    um.add_pilot(pilot);
    auto bad = um.submit(failing_unit());
    auto good_desc = failing_unit();
    good_desc.exit_code = 0;
    auto good = um.submit(good_desc);
    while (!um.all_done() && session_.engine().now() < 7200.0) {
      session_.engine().run_until(session_.engine().now() + 5.0);
    }
    EXPECT_EQ(bad->state(), pilot::UnitState::kFailed)
        << pilot::to_string(backend);
    EXPECT_EQ(good->state(), pilot::UnitState::kDone)
        << pilot::to_string(backend);
    ASSERT_NE(pilot->agent(), nullptr);
    EXPECT_EQ(pilot->agent()->units_failed(), 1u);
    EXPECT_EQ(pilot->agent()->units_completed(), 1u);
  }

  pilot::Session session_;
};

TEST_F(UnitFailureTest, PlainLaunchMethodReportsExitCode) {
  run_mixed(pilot::AgentBackend::kPlain);
}

TEST_F(UnitFailureTest, YarnLaunchMethodReportsExitCode) {
  run_mixed(pilot::AgentBackend::kYarnModeI);
}

TEST_F(UnitFailureTest, SparkLaunchMethodReportsExitCode) {
  run_mixed(pilot::AgentBackend::kSparkModeI);
}

// --------------------------------------------------------- HDFS racks ---

TEST(HdfsRackTest, SecondReplicaCrossesRacks) {
  sim::Engine engine;
  auto machine = cluster::stampede_profile();
  hdfs::HdfsConfig cfg;
  cfg.racks = 2;
  hdfs::HdfsCluster fs(engine, machine, {"n0", "n1", "n2", "n3"}, cfg);
  EXPECT_EQ(fs.rack_of("n0"), 0);
  EXPECT_EQ(fs.rack_of("n1"), 1);
  EXPECT_EQ(fs.rack_of("n2"), 0);
  EXPECT_EQ(fs.rack_of("n3"), 1);

  for (int i = 0; i < 10; ++i) {
    const std::string path = "/f" + std::to_string(i);
    fs.create_file(path, 64 * common::kMiB, "n0", 3);
    const auto& block = fs.stat(path).blocks[0];
    ASSERT_EQ(block.replicas.size(), 3u);
    EXPECT_EQ(block.replicas[0].node, "n0");
    // Replica 2 on the other rack; replica 3 back on rack of replica 2.
    EXPECT_NE(fs.rack_of(block.replicas[1].node), 0);
    EXPECT_EQ(fs.rack_of(block.replicas[2].node),
              fs.rack_of(block.replicas[1].node));
  }
}

TEST(HdfsRackTest, SingleRackUnchangedPolicy) {
  sim::Engine engine;
  auto machine = cluster::stampede_profile();
  hdfs::HdfsCluster fs(engine, machine, {"n0", "n1", "n2"});
  for (const auto& n : {"n0", "n1", "n2"}) {
    EXPECT_EQ(fs.rack_of(n), 0);
  }
}

}  // namespace
}  // namespace hoh
