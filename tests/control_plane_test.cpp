/// Control-plane refactor tests (DESIGN.md §10): the StateStore watch
/// API, event-driven wakeups across the agent / unit-manager / YARN /
/// elastic layers, poll-vs-watch output-digest parity on the keystone
/// scenarios, and the teardown paths of everything that arms timers.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analytics/experiment_config.h"
#include "analytics/kmeans_experiment.h"
#include "common/control_plane.h"
#include "common/error.h"
#include "elastic/elastic_controller.h"
#include "elastic/policy.h"
#include "hpc/batch_scheduler.h"
#include "mapreduce/yarn_mr_driver.h"
#include "pilot/pilot_manager.h"
#include "pilot/state_store.h"
#include "pilot/unit_manager.h"
#include "sim/engine.h"
#include "yarn/resource_manager.h"

namespace hoh {
namespace {

// ------------------------------------------------- ControlPlane enum ---

TEST(ControlPlaneTest, StringRoundTrip) {
  EXPECT_EQ(common::to_string(common::ControlPlane::kPoll), "poll");
  EXPECT_EQ(common::to_string(common::ControlPlane::kWatch), "watch");
  EXPECT_EQ(common::control_plane_from_string("poll"),
            common::ControlPlane::kPoll);
  EXPECT_EQ(common::control_plane_from_string("watch"),
            common::ControlPlane::kWatch);
  EXPECT_THROW(common::control_plane_from_string("etcd"),
               common::ConfigError);
}

TEST(ControlPlaneTest, ExperimentConfigParsesAndEmits) {
  const auto cfg = analytics::kmeans_config_from_json(
      common::Json::parse(R"({"control_plane": "watch"})"));
  EXPECT_EQ(cfg.control_plane, common::ControlPlane::kWatch);
  EXPECT_THROW(analytics::kmeans_config_from_json(
                   common::Json::parse(R"({"control_plane": "zk"})")),
               common::ConfigError);
  analytics::KmeansExperimentResult result;
  result.engine_events = 1234;
  const auto j = analytics::result_to_json(cfg, result);
  EXPECT_EQ(j.at("control_plane").as_string(), "watch");
  EXPECT_EQ(j.at("engine_events").as_int(), 1234);
}

// ---------------------------------------------- StateStore watch API ---

class StoreWatchTest : public ::testing::Test {
 protected:
  common::Json doc(const std::string& state = "PendingAgent") {
    common::Json d;
    d["state"] = state;
    return d;
  }

  sim::Engine engine_;
  pilot::StateStore store_{engine_};
};

TEST_F(StoreWatchTest, WatchBeforePutDelivers) {
  std::vector<pilot::WatchEvent> events;
  store_.watch("unit", "", [&](const pilot::WatchEvent& e) {
    events.push_back(e);
  });
  store_.put("unit", "unit.0", doc());
  EXPECT_TRUE(events.empty());  // delivery is an engine event, not inline
  engine_.run();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, pilot::WatchEventType::kPut);
  EXPECT_EQ(events[0].bucket, "unit");
  EXPECT_EQ(events[0].key, "unit.0");
}

TEST_F(StoreWatchTest, MutationBeforeWatchIsNotDelivered) {
  store_.put("unit", "unit.0", doc());
  engine_.run();
  int events = 0;
  store_.watch("unit", "", [&](const pilot::WatchEvent&) { ++events; });
  engine_.run();
  EXPECT_EQ(events, 0);  // watches see subsequent mutations only
}

TEST_F(StoreWatchTest, BucketAndPrefixFilterDelivery) {
  std::vector<std::string> keys;
  store_.watch("unit", "unit.1", [&](const pilot::WatchEvent& e) {
    keys.push_back(e.key);
  });
  store_.put("unit", "unit.0", doc());
  store_.put("unit", "unit.1", doc());
  store_.put("unit", "unit.10", doc());  // prefix match, also delivered
  store_.put("pilot", "unit.1", doc());  // wrong bucket
  engine_.run();
  EXPECT_EQ(keys, (std::vector<std::string>{"unit.1", "unit.10"}));
}

TEST_F(StoreWatchTest, UpdateAndQueuePushCarryTheirEventTypes) {
  std::vector<pilot::WatchEventType> types;
  std::vector<std::string> buckets;
  auto record = [&](const pilot::WatchEvent& e) {
    types.push_back(e.type);
    buckets.push_back(e.bucket);
  };
  store_.watch("unit", "", record);
  store_.watch("agent.p1", "", record);
  store_.put("unit", "u", doc());
  store_.update("unit", "u", {{"state", common::Json("AgentScheduling")}});
  store_.queue_push("agent.p1", "unit.0");
  engine_.run();
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], pilot::WatchEventType::kPut);
  EXPECT_EQ(types[1], pilot::WatchEventType::kUpdate);
  EXPECT_EQ(types[2], pilot::WatchEventType::kQueuePush);
  EXPECT_EQ(buckets[2], "agent.p1");
}

TEST_F(StoreWatchTest, GateRejectedUpdateDoesNotNotify) {
  store_.put("unit", "u", doc("PendingAgent"));
  engine_.run();
  int events = 0;
  store_.watch("unit", "", [&](const pilot::WatchEvent&) { ++events; });
  // PendingAgent -> Executing is not a Fig. 3 edge: the write is rejected
  // and watchers must not hear about it.
  EXPECT_THROW(
      store_.update("unit", "u", {{"state", common::Json("Executing")}}),
      common::StateError);
  engine_.run();
  EXPECT_EQ(events, 0);
}

TEST_F(StoreWatchTest, UnwatchStopsDeliveryAndCountsWatchers) {
  int events = 0;
  pilot::WatchHandle h = store_.watch(
      "unit", "", [&](const pilot::WatchEvent&) { ++events; });
  EXPECT_EQ(store_.watcher_count(), 1u);
  EXPECT_TRUE(store_.unwatch(h));
  EXPECT_FALSE(store_.unwatch(h));  // already gone
  EXPECT_EQ(store_.watcher_count(), 0u);
  store_.put("unit", "u", doc());
  engine_.run();
  EXPECT_EQ(events, 0);
}

TEST_F(StoreWatchTest, UnwatchDuringDeliveryIsSafe) {
  int second_fired = 0;
  pilot::WatchHandle second;
  store_.watch("unit", "", [&](const pilot::WatchEvent&) {
    // First watcher retires the second mid-delivery: the second must not
    // fire for this (or any later) mutation.
    store_.unwatch(second);
  });
  second = store_.watch("unit", "",
                        [&](const pilot::WatchEvent&) { ++second_fired; });
  store_.put("unit", "u", doc());
  engine_.run();
  EXPECT_EQ(second_fired, 0);
  EXPECT_EQ(store_.watcher_count(), 1u);
}

TEST_F(StoreWatchTest, MultipleWatchersFireInRegistrationOrder) {
  std::vector<int> order;
  store_.watch("unit", "", [&](const pilot::WatchEvent&) {
    order.push_back(1);
  });
  store_.watch("unit", "", [&](const pilot::WatchEvent&) {
    order.push_back(2);
  });
  store_.watch("unit", "", [&](const pilot::WatchEvent&) {
    order.push_back(3);
  });
  store_.put("unit", "u", doc());
  store_.put("unit", "v", doc());
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 1, 2, 3}));
}

TEST_F(StoreWatchTest, CallbackMayMutateTheStore) {
  int unit_events = 0;
  store_.watch("unit", "", [&](const pilot::WatchEvent& e) {
    ++unit_events;
    if (e.type == pilot::WatchEventType::kPut) {
      // Notification chain: a watcher reacting with its own write must
      // not deadlock (callbacks never run under the store mutex).
      store_.update("unit", e.key,
                    {{"state", common::Json("AgentScheduling")}});
    }
  });
  store_.put("unit", "u", doc());
  engine_.run();
  EXPECT_EQ(unit_events, 2);  // the put and the chained update
  EXPECT_EQ(store_.get("unit", "u")->at("state").as_string(),
            "AgentScheduling");
}

// --------------------------------------------------- pilot stack (watch) ---

class WatchStackTest : public ::testing::Test {
 protected:
  WatchStackTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 4);
  }

  pilot::PilotDescription plain_pilot(int nodes = 1) {
    pilot::PilotDescription pd;
    pd.resource = "slurm://stampede/";
    pd.nodes = nodes;
    pd.runtime = 14400.0;
    return pd;
  }

  pilot::AgentConfig watch_agent() {
    pilot::AgentConfig cfg;
    cfg.control_plane = common::ControlPlane::kWatch;
    return cfg;
  }

  pilot::ComputeUnitDescription simple_unit(common::Seconds duration = 5.0) {
    pilot::ComputeUnitDescription cud;
    cud.duration = duration;
    cud.cores = 1;
    cud.memory_mb = 1024;
    return cud;
  }

  hpc::BatchScheduler& scheduler() {
    return *session_.saga().resource("stampede").scheduler;
  }

  void run_for(double seconds) {
    session_.engine().run_until(session_.engine().now() + seconds);
  }

  void run_until_active(const std::shared_ptr<pilot::Pilot>& pilot) {
    while (pilot->state() != pilot::PilotState::kActive &&
           session_.engine().now() < 3600.0) {
      run_for(5.0);
    }
    ASSERT_EQ(pilot->state(), pilot::PilotState::kActive);
  }

  pilot::Session session_;
};

TEST_F(WatchStackTest, UnitsExecuteInWatchMode) {
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  um.set_control_plane(common::ControlPlane::kWatch);
  auto pilot = pm.submit_pilot(plain_pilot(), watch_agent());
  um.add_pilot(pilot);
  // Two waves: 16 cores per Stampede node, 32 units — exercises the
  // finish_unit -> schedule_queued path without any agent store poll.
  auto units = um.submit(
      std::vector<pilot::ComputeUnitDescription>(32, simple_unit(20.0)));
  session_.engine().run_until(1800.0);
  EXPECT_TRUE(um.all_done());
  EXPECT_EQ(um.done_count(), 32u);
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), pilot::UnitState::kDone);
  }
}

TEST_F(WatchStackTest, DependencyChainResolvesViaStoreWatch) {
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  um.set_control_plane(common::ControlPlane::kWatch);
  auto pilot = pm.submit_pilot(plain_pilot(), watch_agent());
  um.add_pilot(pilot);
  auto first = um.submit(simple_unit(10.0));
  pilot::ComputeUnitDescription dependent = simple_unit(5.0);
  dependent.depends_on = {first->id()};
  auto second = um.submit(dependent);
  session_.engine().run_until(600.0);
  EXPECT_EQ(first->state(), pilot::UnitState::kDone);
  EXPECT_EQ(second->state(), pilot::UnitState::kDone);
  // The dependency watch retired itself once nothing was held.
  EXPECT_TRUE(um.all_done());
}

TEST_F(WatchStackTest, HeartbeatLeaseExpiresForSilentPilot) {
  pilot::PilotManager pm(session_);
  auto cfg = watch_agent();
  cfg.heartbeat_interval = 10.0;
  // Occupy the whole 4-node pool so the second pilot queues forever and
  // its agent never gets to write a heartbeat.
  auto runner = pm.submit_pilot(plain_pilot(4), cfg);
  auto queued = pm.submit_pilot(plain_pilot(4), cfg);
  run_until_active(runner);
  ASSERT_NE(queued->state(), pilot::PilotState::kActive);
  // A heartbeat appears (say, a half-started bootstrap) and then goes
  // silent: the observer's lease must expire after the grace window.
  common::Json hb;
  hb["alive"] = true;
  session_.store().put("heartbeat", queued->id(), hb);
  EXPECT_EQ(pm.heartbeat_lease_expirations(), 0u);
  run_for(40.0);  // grace = 3 x 10 s
  EXPECT_EQ(pm.heartbeat_lease_expirations(), 1u);
  EXPECT_FALSE(
      session_.trace().find("pilot", "heartbeat_lease_expired").empty());
}

TEST_F(WatchStackTest, TombstoneRetiresHeartbeatLease) {
  pilot::PilotManager pm(session_);
  auto cfg = watch_agent();
  cfg.heartbeat_interval = 10.0;
  auto pilot = pm.submit_pilot(plain_pilot(), cfg);
  run_until_active(pilot);
  pilot->cancel();  // agent stop writes the alive=false tombstone
  run_for(120.0);   // far past the grace window
  EXPECT_EQ(pm.heartbeat_lease_expirations(), 0u);
}

TEST_F(WatchStackTest, RecoveryResubmitsAndWatchPlaneFollows) {
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  um.set_control_plane(common::ControlPlane::kWatch);
  common::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff = 5.0;
  policy.max_backoff = 30.0;
  policy.jitter = 0.0;
  std::shared_ptr<pilot::Pilot> replacement;
  pm.enable_recovery(policy,
                     [&](const std::shared_ptr<pilot::Pilot>& fresh,
                         const std::shared_ptr<pilot::Pilot>&) {
                       replacement = fresh;
                       um.add_pilot(fresh);
                     });
  um.enable_recovery(policy);
  auto pilot = pm.submit_pilot(plain_pilot(), watch_agent());
  um.add_pilot(pilot);
  auto units = um.submit(
      std::vector<pilot::ComputeUnitDescription>(8, simple_unit(120.0)));
  run_until_active(pilot);
  run_for(30.0);  // units executing
  scheduler().fail_node(
      pilot->agent()->allocation().node_names().front());
  EXPECT_EQ(pilot->state(), pilot::PilotState::kFailed);
  session_.engine().run_until(7200.0);
  // The replacement (also watch-plane) picked the requeued units up.
  ASSERT_NE(replacement, nullptr);
  EXPECT_EQ(pm.pilots_resubmitted(), 1u);
  EXPECT_TRUE(um.all_done());
  EXPECT_EQ(um.done_count(), 8u);
}

// ----------------------------------------------------- teardown paths ---

TEST_F(WatchStackTest, UnitManagerDestructionRetiresDependencySweep) {
  for (const auto plane :
       {common::ControlPlane::kPoll, common::ControlPlane::kWatch}) {
    pilot::PilotManager pm(session_);
    std::size_t watchers_with_um = 0;
    {
      pilot::UnitManager um(session_);
      um.set_control_plane(plane);
      auto pilot = pm.submit_pilot(plain_pilot(), watch_agent());
      um.add_pilot(pilot);
      auto first = um.submit(simple_unit(3600.0));  // never done in time
      pilot::ComputeUnitDescription dependent = simple_unit(5.0);
      dependent.depends_on = {first->id()};
      um.submit(dependent);  // held: arms the sweep / registers the watch
      run_for(60.0);
      watchers_with_um = session_.store().watcher_count();
    }
    // The manager is gone while its dependency machinery was still armed;
    // the engine and store must stay usable without touching freed state,
    // and exactly the manager's own dependency watch must have retired
    // (the agent's queue watch and the heartbeat lease remain).
    run_for(120.0);
    common::Json d;
    d["state"] = "PendingAgent";
    session_.store().put("unit", "poke", d);
    run_for(5.0);
    const std::size_t expected =
        plane == common::ControlPlane::kWatch ? watchers_with_um - 1
                                              : watchers_with_um;
    EXPECT_EQ(session_.store().watcher_count(), expected)
        << "mode " << common::to_string(plane);
  }
}

TEST_F(WatchStackTest, PilotCancelTwiceIsIdempotent) {
  pilot::PilotManager pm(session_);
  auto pilot = pm.submit_pilot(plain_pilot(), watch_agent());
  run_until_active(pilot);
  pilot->cancel();
  pilot->cancel();
  run_for(120.0);
  EXPECT_TRUE(pilot::is_final(pilot->state()));
}

// --------------------------------------------------- YARN watch plane ---

class YarnWatchTest : public ::testing::Test {
 protected:
  YarnWatchTest() : machine_(cluster::generic_profile(3, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
  }

  yarn::YarnConfig watch_config() {
    yarn::YarnConfig cfg;
    cfg.control_plane = common::ControlPlane::kWatch;
    return cfg;
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
};

TEST_F(YarnWatchTest, MrJobCompletesWithDemandDrivenScheduler) {
  yarn::ResourceManager rm(engine_, allocation_, watch_config());
  mapreduce::YarnMrDriver driver(rm);
  bool finished = false;
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 8;
  spec.reduce_tasks = 2;
  const auto app_id = driver.submit(spec, [&] { finished = true; });
  // No periodic scheduler exists in watch mode, so the engine drains on
  // its own — run() terminating is itself part of the assertion.
  engine_.run();
  EXPECT_TRUE(finished);
  EXPECT_EQ(driver.status(app_id).maps_done, 8);
  EXPECT_EQ(rm.application(app_id).state, yarn::AppState::kFinished);
  rm.shutdown();
}

TEST_F(YarnWatchTest, SilentNmCrashDetectedByLeaseAtExactTimeout) {
  auto cfg = watch_config();
  cfg.nm_liveness_timeout = 30.0;
  yarn::ResourceManager rm(engine_, allocation_, cfg);
  sim::Trace trace;
  rm.set_trace(&trace);
  engine_.run_until(10.0);
  rm.node_manager("n1").crash();  // silent: no fail_node call
  engine_.run_until(200.0);
  EXPECT_EQ(rm.live_node_count(), 2u);
  const auto lost = trace.find("yarn", "nm_lost");
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost.front().attrs.at("node"), "n1");
  // The lease fires at exactly crash + timeout — no scan-cadence slack.
  EXPECT_NEAR(lost.front().time, 40.0, 1e-9);
  rm.shutdown();
}

TEST_F(YarnWatchTest, OnFinishedFiresExactlyOnceWithFinalReport) {
  yarn::ResourceManager rm(engine_, allocation_, watch_config());
  int calls = 0;
  yarn::AppReport last;
  yarn::AppDescriptor app;
  app.on_am_start = [](yarn::ApplicationMaster& am) {
    am.unregister(true);
  };
  app.on_finished = [&](const yarn::AppReport& report) {
    ++calls;
    last = report;
  };
  const auto app_id = rm.submit_application(std::move(app));
  engine_.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last.id, app_id);
  EXPECT_EQ(last.state, yarn::AppState::kFinished);
  rm.shutdown();
  EXPECT_EQ(calls, 1);  // shutdown must not re-fire a finished app
}

TEST_F(YarnWatchTest, RmSideFailureIsPushedIntoMrDriver) {
  yarn::ResourceManager rm(engine_, allocation_, watch_config());
  mapreduce::YarnMrDriver driver(rm);
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 4;
  spec.map_task_seconds = 600.0;
  const auto app_id = driver.submit(spec);
  engine_.run_until(120.0);  // maps running
  rm.kill_application(app_id);
  EXPECT_TRUE(driver.status(app_id).failed);
  rm.shutdown();
}

// -------------------------------------------------- elastic event path ---

TEST_F(WatchStackTest, ElasticEventTickReactsBeforeFirstSample) {
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  um.set_control_plane(common::ControlPlane::kWatch);
  auto pilot = pm.submit_pilot(plain_pilot(), watch_agent());
  um.add_pilot(pilot);
  run_until_active(pilot);

  elastic::ElasticPolicySpec policy;
  policy.name = "backlog";
  elastic::ElasticControllerConfig cfg;
  cfg.control_plane = common::ControlPlane::kWatch;
  cfg.sample_interval = 100000.0;  // the periodic never fires in this test
  cfg.min_nodes = 1;
  cfg.max_nodes = 2;
  elastic::ElasticController controller(pm, pilot,
                                        elastic::make_policy(policy), cfg,
                                        um.estimator_ptr());
  controller.start();
  const double t0 = session_.engine().now();
  um.submit(std::vector<pilot::ComputeUnitDescription>(
      64, simple_unit(300.0)));  // a backlog spike
  run_for(60.0);
  ASSERT_LT(session_.engine().now(), t0 + cfg.sample_interval);
  const auto counters = controller.counters();
  EXPECT_GE(counters.event_ticks, 1u);
  EXPECT_GE(counters.samples, 1u);  // the event tick took a sample
  controller.stop();
  controller.stop();  // idempotent
  controller.start();
  controller.stop();
}

// ------------------------------------- keystone digest parity (10 seeds) ---

class ControlPlaneParityTest : public ::testing::Test {
 protected:
  static analytics::KmeansExperimentConfig base_config() {
    analytics::KmeansExperimentConfig cfg;
    cfg.machine = cluster::stampede_profile();
    cfg.scheduler = hpc::SchedulerKind::kSlurm;
    cfg.scenario = analytics::scenario_100k_points();
    cfg.nodes = 8;
    cfg.tasks = 16;
    cfg.yarn_stack = false;
    return cfg;
  }

  /// The fault-recovery keystone cell (plans/fault_recovery.json shape).
  static analytics::KmeansExperimentConfig faulty_config(std::uint64_t seed) {
    auto cfg = base_config();
    cfg.failures = true;
    cfg.failure_plan.seed = seed;
    cfg.failure_plan.mean_time_to_crash = 200.0;
    cfg.failure_plan.mean_time_to_repair = 300.0;
    cfg.failure_plan.max_crashes = 1;
    cfg.failure_plan.start_after = 300.0;
    cfg.recovery = true;
    cfg.retry_policy.max_attempts = 3;
    cfg.retry_policy.base_backoff = 5.0;
    cfg.retry_policy.max_backoff = 60.0;
    return cfg;
  }

  /// The elasticity keystone cell (plans/elastic_keystone.json shape):
  /// backlog-driven growth under the same seeded fault plan.
  static analytics::KmeansExperimentConfig elastic_config(std::uint64_t seed) {
    auto cfg = faulty_config(seed);
    cfg.nodes = 4;
    cfg.elastic = true;
    cfg.elastic_policy.name = "backlog";
    cfg.elastic_config.min_nodes = 4;
    cfg.elastic_config.max_nodes = 8;
    cfg.elastic_config.sample_interval = 30.0;
    return cfg;
  }

  static analytics::KmeansExperimentResult run_with(
      analytics::KmeansExperimentConfig cfg, common::ControlPlane plane) {
    cfg.control_plane = plane;
    return analytics::run_kmeans_experiment(cfg);
  }
};

TEST_F(ControlPlaneParityTest, FaultRecoveryDigestIdenticalInAllTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto poll = run_with(faulty_config(seed),
                               common::ControlPlane::kPoll);
    const auto watch = run_with(faulty_config(seed),
                                common::ControlPlane::kWatch);
    EXPECT_TRUE(poll.ok) << "seed " << seed;
    EXPECT_TRUE(watch.ok) << "seed " << seed;
    EXPECT_EQ(poll.output_checksum, watch.output_checksum)
        << "seed " << seed;
  }
}

TEST_F(ControlPlaneParityTest, ElasticKeystoneDigestIdenticalInAllTenSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto poll = run_with(elastic_config(seed),
                               common::ControlPlane::kPoll);
    const auto watch = run_with(elastic_config(seed),
                                common::ControlPlane::kWatch);
    EXPECT_TRUE(poll.ok) << "seed " << seed;
    EXPECT_TRUE(watch.ok) << "seed " << seed;
    EXPECT_EQ(poll.output_checksum, watch.output_checksum)
        << "seed " << seed;
  }
}

TEST_F(ControlPlaneParityTest, WatchModeCutsEventCountOnIdleHeavyCell) {
  // The bench's idle-heavy cell, in miniature: RP-YARN on long tasks.
  analytics::KmeansExperimentConfig cfg;
  cfg.machine = cluster::stampede_profile();
  cfg.scheduler = hpc::SchedulerKind::kSlurm;
  cfg.scenario = analytics::scenario_1m_points();
  cfg.nodes = 3;
  cfg.tasks = 4;
  cfg.yarn_stack = true;
  const auto poll = run_with(cfg, common::ControlPlane::kPoll);
  const auto watch = run_with(cfg, common::ControlPlane::kWatch);
  ASSERT_TRUE(poll.ok);
  ASSERT_TRUE(watch.ok);
  EXPECT_EQ(poll.output_checksum, watch.output_checksum);
  EXPECT_GE(poll.engine_events, 10 * watch.engine_events)
      << "poll " << poll.engine_events << " vs watch "
      << watch.engine_events;
}

}  // namespace
}  // namespace hoh
