#include <gtest/gtest.h>

#include "pilot/config_templates.h"
#include "pilot/estimator.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

namespace hoh::pilot {
namespace {

// ----------------------------------------------------------- heartbeat ---

class HeartbeatTest : public ::testing::Test {
 protected:
  HeartbeatTest() {
    session_.register_machine(cluster::generic_profile(4, 8, 16 * 1024),
                              hpc::SchedulerKind::kSlurm, 4);
  }
  Session session_;
  PilotManager pm_{session_};
};

TEST_F(HeartbeatTest, AgentWritesPeriodicHeartbeats) {
  PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  auto pilot = pm_.submit_pilot(pd);
  EXPECT_FALSE(pilot->heartbeat().has_value());  // not yet active
  session_.engine().run_until(60.0);
  auto hb1 = pilot->heartbeat();
  ASSERT_TRUE(hb1.has_value());
  EXPECT_TRUE(hb1->at("alive").as_bool());
  const double t1 = hb1->at("last_heartbeat").as_number();
  session_.engine().run_until(120.0);
  const double t2 = pilot->heartbeat()->at("last_heartbeat").as_number();
  EXPECT_GT(t2, t1);  // heartbeats keep coming
}

TEST_F(HeartbeatTest, HeartbeatCountsUnits) {
  PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  auto pilot = pm_.submit_pilot(pd);
  UnitManager um(session_);
  um.add_pilot(pilot);
  ComputeUnitDescription cud;
  cud.duration = 5.0;
  cud.memory_mb = 1024;
  um.submit({cud, cud, cud});
  session_.engine().run_until(120.0);
  ASSERT_TRUE(um.all_done());
  session_.engine().run_until(160.0);  // next heartbeat tick
  EXPECT_EQ(pilot->heartbeat()->at("units_completed").as_int(), 3);
}

TEST_F(HeartbeatTest, TombstoneOnCancel) {
  PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  auto pilot = pm_.submit_pilot(pd);
  session_.engine().run_until(60.0);
  ASSERT_TRUE(pilot->heartbeat()->at("alive").as_bool());
  pilot->cancel();
  EXPECT_FALSE(pilot->heartbeat()->at("alive").as_bool());
  const double tomb = pilot->heartbeat()->at("last_heartbeat").as_number();
  session_.engine().run_until(200.0);
  // No further heartbeats after the tombstone.
  EXPECT_DOUBLE_EQ(pilot->heartbeat()->at("last_heartbeat").as_number(),
                   tomb);
}

// ----------------------------------------------------------- estimator ---

TEST(EstimatorTest, ColdStartUsesDefault) {
  MovingAverageEstimator est(0.5, 42.0);
  ComputeUnitDescription cud;
  cud.executable = "gromacs";
  EXPECT_DOUBLE_EQ(est.predict(cud), 42.0);
}

TEST(EstimatorTest, LearnsPerExecutable) {
  MovingAverageEstimator est(0.5, 10.0);
  ComputeUnitDescription md;
  md.executable = "gromacs";
  ComputeUnitDescription py;
  py.executable = "python";
  est.observe(md, 100.0);
  est.observe(py, 4.0);
  EXPECT_DOUBLE_EQ(est.predict(md), 100.0);  // first observation taken
  EXPECT_DOUBLE_EQ(est.predict(py), 4.0);
  est.observe(md, 200.0);
  EXPECT_DOUBLE_EQ(est.predict(md), 150.0);  // EMA with alpha 0.5
  EXPECT_EQ(est.observed_executables(), 2u);
}

TEST(EstimatorTest, ConvergesToStableRuntime) {
  MovingAverageEstimator est(0.3, 1.0);
  ComputeUnitDescription cud;
  cud.executable = "kmeans";
  for (int i = 0; i < 40; ++i) est.observe(cud, 60.0);
  EXPECT_NEAR(est.predict(cud), 60.0, 1e-6);
}

class PredictivePolicyTest : public ::testing::Test {
 protected:
  PredictivePolicyTest() {
    session_.register_machine(cluster::generic_profile(8, 8, 16 * 1024),
                              hpc::SchedulerKind::kSlurm, 8);
  }
  Session session_;
  PilotManager pm_{session_};
};

TEST_F(PredictivePolicyTest, LearnedRuntimesSteerBinding) {
  PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  pd.nodes = 1;
  auto p0 = pm_.submit_pilot(pd);
  auto p1 = pm_.submit_pilot(pd);

  auto estimator = std::make_shared<MovingAverageEstimator>(0.5, 10.0);
  UnitManager um(session_, UnitSchedulingPolicy::kPredictive, estimator);
  um.add_pilot(p0);
  um.add_pilot(p1);

  // Teach the estimator: "slow" runs 100x longer than "fast".
  ComputeUnitDescription slow;
  slow.executable = "slow";
  slow.duration = 300.0;
  slow.memory_mb = 1024;
  ComputeUnitDescription fast = slow;
  fast.executable = "fast";
  fast.duration = 3.0;
  estimator->observe(slow, 300.0);
  estimator->observe(fast, 3.0);

  // One slow unit lands somewhere; the following fast units must all be
  // bound to the *other* pilot (its backlog is predicted tiny).
  auto slow_unit = um.submit(slow);
  std::vector<std::shared_ptr<ComputeUnit>> fast_units;
  for (int i = 0; i < 4; ++i) fast_units.push_back(um.submit(fast));
  int on_other = 0;
  for (const auto& u : fast_units) {
    if (u->pilot_id() != slow_unit->pilot_id()) ++on_other;
  }
  EXPECT_GE(on_other, 3);  // backlog steers away from the slow pilot

  session_.engine().run_until(600.0);
  EXPECT_TRUE(um.all_done());
}

TEST_F(PredictivePolicyTest, ReconcileFeedsObservationsBack) {
  PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  auto pilot = pm_.submit_pilot(pd);
  auto estimator = std::make_shared<MovingAverageEstimator>(0.5, 10.0);
  UnitManager um(session_, UnitSchedulingPolicy::kPredictive, estimator);
  um.add_pilot(pilot);
  ComputeUnitDescription cud;
  cud.executable = "burn";
  cud.duration = 50.0;
  cud.memory_mb = 1024;
  um.submit(cud);
  session_.engine().run_until(200.0);
  ASSERT_TRUE(um.all_done());  // triggers reconcile
  // The estimator learned ~50s (exact: Executing -> Done span).
  EXPECT_NEAR(estimator->predict(cud), 50.0, 1.0);
}

// ------------------------------------------------ config templates ---

TEST(ConfigTemplateTest, AgentTuningTracksLocalStorage) {
  const auto stampede = tuned_agent_config(cluster::stampede_profile());
  const auto wrangler = tuned_agent_config(cluster::wrangler_profile());
  // Flash-backed Wrangler localizes containers much faster.
  EXPECT_LT(wrangler.wrapper_setup_time, stampede.wrapper_setup_time);
  EXPECT_LT(wrangler.yarn.yarn.container_launch_time,
            stampede.yarn.yarn.container_launch_time);
  // NM capacity derived from the node spec.
  EXPECT_EQ(stampede.yarn.yarn.nm_vcores, 16);
  EXPECT_EQ(wrangler.yarn.yarn.nm_vcores, 48);
  EXPECT_EQ(wrangler.yarn.yarn.nm_memory_mb, 128 * 1024 * 7 / 8);
}

TEST(ConfigTemplateTest, YarnSiteUsesFastTierForShuffle) {
  const auto stampede = yarn_site_template(cluster::stampede_profile());
  const auto wrangler = yarn_site_template(cluster::wrangler_profile());
  EXPECT_EQ(stampede.get("yarn.nodemanager.local-dirs"), "/tmp/yarn/local");
  EXPECT_EQ(wrangler.get("yarn.nodemanager.local-dirs"),
            "/flash/yarn/local");
  EXPECT_EQ(stampede.get_int("yarn.nodemanager.resource.memory-mb"),
            32 * 1024 * 7 / 8);
  // Renders to well-formed Hadoop XML.
  const auto xml = wrangler.to_xml();
  EXPECT_NE(xml.find("<name>yarn.nodemanager.local-dirs</name>"),
            std::string::npos);
}

TEST(ConfigTemplateTest, HdfsSiteCapsReplicationByNodes) {
  const auto two = hdfs_site_template(cluster::stampede_profile(), 2);
  EXPECT_EQ(two.get_int("dfs.replication"), 2);
  const auto many = hdfs_site_template(cluster::stampede_profile(), 16);
  EXPECT_EQ(many.get_int("dfs.replication"), 3);
  const auto flash = hdfs_site_template(cluster::wrangler_profile(), 4);
  EXPECT_EQ(flash.get("dfs.storage.policy"), "ALL_SSD");
}

TEST(ConfigTemplateTest, SparkEnvRendersProperties) {
  const auto env = spark_env_template(cluster::wrangler_profile());
  EXPECT_EQ(env.get_int("SPARK_WORKER_CORES"), 48);
  EXPECT_EQ(env.get("SPARK_LOCAL_DIRS"), "/flash/spark");
  const auto props = env.to_properties();
  EXPECT_NE(props.find("SPARK_WORKER_CORES=48\n"), std::string::npos);
}

TEST(ConfigTemplateTest, TunedConfigRunsEndToEnd) {
  // A pilot configured by the template must work like any other.
  Session session;
  session.register_machine(cluster::wrangler_profile(),
                           hpc::SchedulerKind::kSge, 4);
  PilotManager pm(session);
  UnitManager um(session);
  PilotDescription pd;
  pd.resource = "sge://wrangler/";
  pd.nodes = 2;
  pd.backend = AgentBackend::kYarnModeI;
  auto pilot = pm.submit_pilot(
      pd, tuned_agent_config(cluster::wrangler_profile()));
  um.add_pilot(pilot);
  ComputeUnitDescription cud;
  cud.duration = 10.0;
  cud.memory_mb = 2048;
  um.submit({cud, cud});
  while (!um.all_done() && session.engine().now() < 7200.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  EXPECT_EQ(um.done_count(), 2u);
}

}  // namespace
}  // namespace hoh::pilot
