// Transport contract tests (DESIGN.md §14): InProcessTransport and
// SocketTransport must be observationally identical at the call site —
// same replies byte-for-byte, same handler-thread semantics, same
// errors — with the socket one additionally surviving a torn
// connection mid-run (reconnect/backoff, retransmit).

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/message.h"
#include "net/socket_transport.h"
#include "net/transport.h"

namespace hoh::net {
namespace {

/// Runs the same scripted exchange against a transport and returns
/// every reply frame's raw bytes, for cross-implementation comparison.
std::vector<std::vector<std::uint8_t>> scripted_exchange(Transport& t) {
  std::vector<std::vector<std::uint8_t>> replies;
  int sends_seen = 0;
  t.register_endpoint("test.echo", [](const Envelope& env) {
    auto probe = open_envelope<NodeProbe>(env);
    return make_envelope(NodeStatus{probe.node, 42.125, true});
  });
  t.register_endpoint("test.sink", [&sends_seen](const Envelope& env) {
    open_envelope<WatchNotify>(env);
    ++sends_seen;
    return make_envelope(Ack{});
  });
  for (int i = 0; i < 20; ++i) {
    const Envelope reply = t.call(
        "test.echo",
        make_envelope(NodeProbe{"node-" + std::to_string(i)}));
    replies.push_back(encode_frame(reply));
    send(t, "test.sink",
         WatchNotify{static_cast<std::uint64_t>(i), 1, "unit",
                     "key-" + std::to_string(i)});
  }
  EXPECT_EQ(sends_seen, 20);
  t.unregister_endpoint("test.echo");
  t.unregister_endpoint("test.sink");
  return replies;
}

TEST(TransportParity, SocketRepliesByteIdenticalToInProcess) {
  InProcessTransport inproc;
  SocketTransport socket;
  EXPECT_EQ(scripted_exchange(inproc), scripted_exchange(socket));
}

TEST(TransportParity, HandlerRunsOnCallerThreadInBothModes) {
  // The refactored components mutate the single-threaded simulation
  // engine from inside handlers; that is only sound because dispatch
  // stays on the calling thread in both modes.
  const auto caller = std::this_thread::get_id();
  for (const bool use_socket : {false, true}) {
    std::unique_ptr<Transport> t;
    if (use_socket) {
      t = std::make_unique<SocketTransport>();
    } else {
      t = std::make_unique<InProcessTransport>();
    }
    std::thread::id handler_thread;
    t->register_endpoint("test.tid", [&handler_thread](const Envelope&) {
      handler_thread = std::this_thread::get_id();
      return make_envelope(Ack{});
    });
    call<Ack>(*t, "test.tid", Bye{});
    EXPECT_EQ(handler_thread, caller) << t->mode();
  }
}

TEST(TransportParity, UnknownEndpointThrowsInBothModes) {
  InProcessTransport inproc;
  SocketTransport socket;
  for (Transport* t : {static_cast<Transport*>(&inproc),
                       static_cast<Transport*>(&socket)}) {
    EXPECT_THROW(t->call("nobody.home", make_envelope(Bye{})),
                 common::NotFoundError)
        << t->mode();
    EXPECT_FALSE(t->has_endpoint("nobody.home"));
  }
}

TEST(TransportParity, ReRegisterReplacesHandler) {
  SocketTransport t;
  t.register_endpoint("test.v", [](const Envelope&) {
    return make_envelope(SubmitReply{"old"});
  });
  t.register_endpoint("test.v", [](const Envelope&) {
    return make_envelope(SubmitReply{"new"});
  });
  EXPECT_EQ(call<SubmitReply>(t, "test.v", Bye{}).unit_id, "new");
  t.unregister_endpoint("test.v");
}

TEST(SocketTransport, CountsTrafficAndRoundTripsBytes) {
  SocketTransport t;
  t.register_endpoint("test.echo", [](const Envelope& env) {
    return make_envelope(open_envelope<StoreIngest>(env));
  });
  StoreIngest ingest;
  ingest.collection = "unit";
  ingest.unit_id = "unit-000001";
  ingest.queue = "agent.p1";
  ingest.document.assign(4096, 0xab);
  const auto back = call<StoreIngest>(t, "test.echo", ingest);
  EXPECT_EQ(back.document, ingest.document);
  const TransportStats stats = t.stats();
  EXPECT_EQ(stats.calls, 1u);
  // Request and reply each cross the wire: > 2 documents' worth.
  EXPECT_GT(stats.bytes_sent, 2 * ingest.document.size());
  EXPECT_EQ(stats.bytes_received, stats.bytes_sent);
  t.unregister_endpoint("test.echo");
}

TEST(SocketTransport, ReconnectsAfterTornConnection) {
  SocketTransportConfig config;
  config.reconnect.base_backoff = 0.001;
  config.reconnect.max_backoff = 0.02;
  SocketTransport t(config);
  t.register_endpoint("test.echo", [](const Envelope& env) {
    return make_envelope(open_envelope<NodeProbe>(env));
  });
  EXPECT_EQ(call<NodeProbe>(t, "test.echo", NodeProbe{"a"}).node, "a");
  for (int round = 0; round < 3; ++round) {
    t.kill_connection();
    // The in-flight frame is retransmitted on the repaired connection;
    // the caller never observes the tear.
    EXPECT_EQ(call<NodeProbe>(t, "test.echo",
                              NodeProbe{"r" + std::to_string(round)})
                  .node,
              "r" + std::to_string(round))
        << round;
  }
  EXPECT_GE(t.stats().reconnects, 3u);
  t.unregister_endpoint("test.echo");
}

TEST(SocketTransport, BindsEphemeralPortByDefault) {
  SocketTransport a;
  SocketTransport b;
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());  // two transports coexist
}

TEST(SocketTransport, NestedCallFromHandler) {
  // A handler may itself issue a transport call (RM handlers do: the
  // NM launch path sends ContainerRunning back through the transport).
  SocketTransport t;
  t.register_endpoint("test.inner", [](const Envelope&) {
    return make_envelope(SubmitReply{"inner"});
  });
  t.register_endpoint("test.outer", [&t](const Envelope&) {
    const auto inner = call<SubmitReply>(t, "test.inner", Bye{});
    return make_envelope(SubmitReply{inner.unit_id + "+outer"});
  });
  EXPECT_EQ(call<SubmitReply>(t, "test.outer", Bye{}).unit_id,
            "inner+outer");
  t.unregister_endpoint("test.outer");
  t.unregister_endpoint("test.inner");
}

}  // namespace
}  // namespace hoh::net
