#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "analytics/kmeans_experiment.h"
#include "common/error.h"
#include "common/random.h"
#include "common/retry.h"
#include "elastic/elastic_controller.h"
#include "elastic/policy.h"
#include "hpc/batch_scheduler.h"
#include "mapreduce/yarn_mr_driver.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"
#include "sim/engine.h"
#include "sim/failure_injector.h"
#include "sim/trace.h"
#include "yarn/resource_manager.h"

namespace hoh {
namespace {

// -------------------------------------------------------- RetryPolicy ---

TEST(RetryPolicyTest, ValidateRejectsNonsense) {
  common::RetryPolicy p;
  EXPECT_NO_THROW(p.validate());
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), common::ConfigError);
  p = {};
  p.multiplier = 0.5;
  EXPECT_THROW(p.validate(), common::ConfigError);
  p = {};
  p.jitter = 1.0;
  EXPECT_THROW(p.validate(), common::ConfigError);
  p = {};
  p.base_backoff = -1.0;
  EXPECT_THROW(p.validate(), common::ConfigError);
}

TEST(RetryPolicyTest, AllowsCountsTotalAttempts) {
  common::RetryPolicy p;
  p.max_attempts = 3;
  EXPECT_TRUE(p.allows(1));
  EXPECT_TRUE(p.allows(3));
  EXPECT_FALSE(p.allows(4));
}

TEST(RetryPolicyTest, BackoffGrowsExponentiallyAndCaps) {
  common::RetryPolicy p;
  p.base_backoff = 2.0;
  p.multiplier = 2.0;
  p.max_backoff = 10.0;
  p.jitter = 0.0;
  common::Rng rng(1);
  EXPECT_DOUBLE_EQ(p.backoff_for(1, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(2, rng), 4.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(3, rng), 8.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(4, rng), 10.0);  // capped
  EXPECT_DOUBLE_EQ(p.backoff_for(9, rng), 10.0);
}

TEST(RetryPolicyTest, JitterIsBoundedAndSeedDeterministic) {
  common::RetryPolicy p;
  p.base_backoff = 10.0;
  p.multiplier = 1.0;
  p.jitter = 0.25;
  common::Rng a(7), b(7);
  for (int k = 1; k <= 8; ++k) {
    const double da = p.backoff_for(k, a);
    EXPECT_DOUBLE_EQ(da, p.backoff_for(k, b));
    EXPECT_GE(da, 7.5);
    EXPECT_LE(da, 12.5);
  }
}

// -------------------------------------------------------- RetryableOp ---

class RetryableOpTest : public ::testing::Test {
 protected:
  common::RetryPolicy policy() {
    common::RetryPolicy p;
    p.max_attempts = 5;
    p.base_backoff = 10.0;
    p.multiplier = 2.0;
    p.max_backoff = 120.0;
    p.jitter = 0.0;  // deterministic schedule for the assertions below
    return p;
  }
  sim::Engine engine_;
  common::Rng rng_{1};
};

TEST_F(RetryableOpTest, RetriesAfterBackoffUntilSuccess) {
  int attempts_seen = 0;
  bool done_ok = false;
  int done_attempts = 0;
  common::RetryableOp<sim::Engine> op(
      engine_, policy(), rng_, [&](int attempt) { attempts_seen = attempt; },
      [&](bool ok, int attempts) {
        done_ok = ok;
        done_attempts = attempts;
      });
  op.start();  // attempt 1 launches synchronously
  EXPECT_EQ(attempts_seen, 1);
  op.fail();  // retry scheduled for t = 10
  engine_.run_until(5.0);
  EXPECT_EQ(attempts_seen, 1);
  engine_.run_until(15.0);
  EXPECT_EQ(attempts_seen, 2);
  op.fail();  // second backoff doubles: retry at t = 10 + 20
  engine_.run_until(40.0);
  EXPECT_EQ(attempts_seen, 3);
  op.succeed();
  EXPECT_TRUE(op.finished());
  EXPECT_TRUE(op.succeeded());
  EXPECT_TRUE(done_ok);
  EXPECT_EQ(done_attempts, 3);
  op.fail();  // late report after settlement is ignored
  EXPECT_TRUE(op.succeeded());
}

TEST_F(RetryableOpTest, ExhaustsBudgetAndReportsFailure) {
  auto p = policy();
  p.max_attempts = 2;
  int attempts_seen = 0;
  bool finished_called = false;
  bool done_ok = true;
  common::RetryableOp<sim::Engine> op(
      engine_, p, rng_,
      [&](int attempt) {
        attempts_seen = attempt;
      },
      [&](bool ok, int attempts) {
        finished_called = true;
        done_ok = ok;
        EXPECT_EQ(attempts, 2);
      });
  op.start();
  op.fail();
  engine_.run_until(20.0);
  EXPECT_EQ(attempts_seen, 2);
  op.fail();  // out of budget
  EXPECT_TRUE(op.finished());
  EXPECT_FALSE(op.succeeded());
  EXPECT_TRUE(finished_called);
  EXPECT_FALSE(done_ok);
}

TEST_F(RetryableOpTest, AttemptTimeoutCountsAsFailure) {
  auto p = policy();
  p.max_attempts = 2;
  p.attempt_timeout = 3.0;
  int attempts_seen = 0;
  bool done_ok = true;
  common::RetryableOp<sim::Engine> op(
      engine_, p, rng_,
      [&](int attempt) { attempts_seen = attempt; },  // never resolves
      [&](bool ok, int) { done_ok = ok; });
  op.start();
  engine_.run_until(100.0);  // t=3 timeout, t=13 attempt 2, t=16 timeout
  EXPECT_EQ(attempts_seen, 2);
  EXPECT_TRUE(op.finished());
  EXPECT_FALSE(op.succeeded());
  EXPECT_FALSE(done_ok);
}

TEST_F(RetryableOpTest, CancelStopsFutureAttempts) {
  int attempts_seen = 0;
  bool finished_called = false;
  common::RetryableOp<sim::Engine> op(
      engine_, policy(), rng_, [&](int attempt) { attempts_seen = attempt; },
      [&](bool, int) { finished_called = true; });
  op.start();
  op.fail();
  op.cancel();  // before the t = 10 retry fires
  engine_.run_until(100.0);
  EXPECT_EQ(attempts_seen, 1);
  EXPECT_FALSE(finished_called);
}

// ---------------------------------------------------- FailureInjector ---

std::vector<std::pair<double, std::string>> crash_schedule(
    const sim::FailurePlan& plan) {
  sim::Engine engine;
  sim::FailureInjector injector(engine, plan, {"a", "b", "c", "d"});
  std::vector<std::pair<double, std::string>> crashes;
  injector.on_crash([&](const std::string& node) {
    crashes.emplace_back(engine.now(), node);
  });
  injector.arm();
  engine.run_until(50000.0);
  return crashes;
}

TEST(FailureInjectorTest, SamePlanAndSeedReplaysIdentically) {
  sim::FailurePlan plan;
  plan.seed = 11;
  plan.mean_time_to_crash = 200.0;
  plan.mean_time_to_repair = 100.0;
  plan.max_crashes = 8;
  const auto first = crash_schedule(plan);
  const auto second = crash_schedule(plan);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  plan.seed = 12;
  EXPECT_NE(first, crash_schedule(plan));
}

TEST(FailureInjectorTest, MaxCrashesCapsInjection) {
  sim::FailurePlan plan;
  plan.mean_time_to_crash = 50.0;
  plan.mean_time_to_repair = 25.0;
  plan.max_crashes = 3;
  sim::Engine engine;
  sim::FailureInjector injector(engine, plan, {"a", "b", "c", "d"});
  injector.arm();
  engine.run_until(100000.0);
  EXPECT_EQ(injector.counters().crashes, 3);
}

TEST(FailureInjectorTest, StartAfterDelaysFirstEvent) {
  sim::FailurePlan plan;
  plan.mean_time_to_crash = 10.0;  // would fire early without the gate
  plan.start_after = 500.0;
  plan.max_crashes = 4;
  const auto crashes = crash_schedule(plan);
  ASSERT_FALSE(crashes.empty());
  for (const auto& [time, node] : crashes) EXPECT_GE(time, 500.0);
}

TEST(FailureInjectorTest, ManualScheduleDrivesSameDeliveryPath) {
  sim::Engine engine;
  sim::Trace trace;
  sim::FailurePlan plan;  // no stochastic events at all
  sim::FailureInjector injector(engine, plan, {"a", "b"});
  injector.set_trace(&trace);
  injector.schedule_crash(10.0, "b");
  injector.schedule_crash(12.0, "b");  // already down: ignored
  injector.schedule_repair(20.0, "b");
  engine.run_until(15.0);
  EXPECT_TRUE(injector.is_down("b"));
  EXPECT_FALSE(injector.is_down("a"));
  engine.run_until(30.0);
  EXPECT_FALSE(injector.is_down("b"));
  EXPECT_EQ(injector.counters().crashes, 1);
  EXPECT_EQ(injector.counters().repairs, 1);
  ASSERT_EQ(trace.find("failure", "node_crash").size(), 1u);
  EXPECT_EQ(trace.find("failure", "node_crash")[0].attrs.at("node"), "b");
  EXPECT_EQ(trace.find("failure", "node_repair").size(), 1u);
}

TEST(FailureInjectorTest, SlowEpisodeEndsWithFactorOne) {
  sim::Engine engine;
  sim::FailurePlan plan;
  plan.mean_time_to_slow = 100.0;
  plan.slow_factor = 3.0;
  plan.slow_duration = 40.0;
  sim::FailureInjector injector(engine, plan, {"a"});
  std::vector<std::pair<double, double>> calls;  // (time, factor)
  injector.on_slow([&](const std::string&, double factor) {
    calls.emplace_back(engine.now(), factor);
  });
  injector.arm();
  while (calls.size() < 2 && engine.now() < 10000.0) {
    engine.run_until(engine.now() + 50.0);
  }
  ASSERT_GE(calls.size(), 2u);
  EXPECT_DOUBLE_EQ(calls[0].second, 3.0);
  EXPECT_DOUBLE_EQ(calls[1].second, 1.0);
  EXPECT_DOUBLE_EQ(calls[1].first - calls[0].first, 40.0);
  EXPECT_GE(injector.counters().slow_episodes, 1);
}

TEST(FailureInjectorTest, SlowNodeClampAndExecutionScaling) {
  cluster::Node node("n0", cluster::NodeSpec{});
  EXPECT_DOUBLE_EQ(node.speed_factor(), 1.0);
  node.set_speed_factor(2.5);
  EXPECT_DOUBLE_EQ(node.speed_factor(), 2.5);
  node.set_speed_factor(0.5);  // clamps: nodes never run faster than spec
  EXPECT_DOUBLE_EQ(node.speed_factor(), 1.0);
}

// ---------------------------------------- batch starvation regression ---

// A job the live pool can no longer satisfy (its node count exceeds the
// surviving nodes) must not block smaller jobs behind it in the queue —
// the head-of-line skip added with the failure layer.
TEST(BatchStarvationTest, UnsatisfiableHeadJobDoesNotStarveQueue) {
  sim::Engine engine;
  auto profile = cluster::generic_profile(4, 8, 16 * 1024);
  hpc::BatchScheduler sched(engine, profile, 4);
  engine.run_until(5.0);
  sched.fail_node(profile.name + "-n0000");
  ASSERT_EQ(sched.live_node_count(), 3);
  const auto big =
      sched.submit(hpc::BatchJobRequest{"big", 4, 600.0, "q", "", 0}, nullptr);
  const auto small =
      sched.submit(hpc::BatchJobRequest{"small", 1, 60.0, "q", "", 0}, nullptr);
  engine.run_until(engine.now() + 120.0);
  EXPECT_EQ(sched.state(big), hpc::BatchJobState::kPending);
  EXPECT_NE(sched.state(small), hpc::BatchJobState::kPending);
  // Repair restores the pool; the big job finally starts.
  sched.repair_node(profile.name + "-n0000");
  engine.run_until(engine.now() + 120.0);
  EXPECT_EQ(sched.state(big), hpc::BatchJobState::kRunning);
}

// ------------------------------------------------- pilot-layer fixture ---

class PilotRecoveryTest : public ::testing::Test {
 protected:
  PilotRecoveryTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 4);
  }

  pilot::PilotDescription one_node_pilot() {
    pilot::PilotDescription pd;
    pd.resource = "slurm://stampede/";
    pd.nodes = 1;
    pd.runtime = 14400.0;
    return pd;
  }

  common::RetryPolicy fast_policy(int max_attempts = 3) {
    common::RetryPolicy p;
    p.max_attempts = max_attempts;
    p.base_backoff = 5.0;
    p.max_backoff = 30.0;
    p.jitter = 0.0;
    return p;
  }

  hpc::BatchScheduler& scheduler() {
    return *session_.saga().resource("stampede").scheduler;
  }

  void run_for(double seconds) {
    session_.engine().run_until(session_.engine().now() + seconds);
  }

  void run_until_active(const std::shared_ptr<pilot::Pilot>& pilot) {
    while (pilot->state() != pilot::PilotState::kActive &&
           session_.engine().now() < 3600.0) {
      run_for(5.0);
    }
    ASSERT_EQ(pilot->state(), pilot::PilotState::kActive);
  }

  /// The batch node hosting \p pilot's agent.
  std::string pilot_node(const std::shared_ptr<pilot::Pilot>& pilot) {
    return pilot->agent()->allocation().node_names().front();
  }

  pilot::Session session_;
};

TEST_F(PilotRecoveryTest, FailedPilotIsResubmittedWithSameShape) {
  pilot::PilotManager pm(session_);
  std::shared_ptr<pilot::Pilot> replacement;
  pm.enable_recovery(fast_policy(),
                     [&](const std::shared_ptr<pilot::Pilot>& fresh,
                         const std::shared_ptr<pilot::Pilot>&) {
                       replacement = fresh;
                     });
  auto pilot = pm.submit_pilot(one_node_pilot());
  run_until_active(pilot);
  scheduler().fail_node(pilot_node(pilot));
  EXPECT_EQ(pilot->state(), pilot::PilotState::kFailed);
  run_for(600.0);
  ASSERT_NE(replacement, nullptr);
  EXPECT_NE(replacement->id(), pilot->id());
  EXPECT_EQ(replacement->description().nodes, pilot->description().nodes);
  EXPECT_EQ(replacement->state(), pilot::PilotState::kActive);
  EXPECT_EQ(pm.pilots_resubmitted(), 1u);
  EXPECT_FALSE(session_.trace().find("recovery", "pilot_resubmitted").empty());
}

TEST_F(PilotRecoveryTest, ResubmissionChainRespectsBudget) {
  pilot::PilotManager pm(session_);
  pm.enable_recovery(fast_policy(/*max_attempts=*/1));
  auto pilot = pm.submit_pilot(one_node_pilot());
  run_until_active(pilot);
  scheduler().fail_node(pilot_node(pilot));
  run_for(600.0);
  // One submission allowed in total: the chain is abandoned, not retried.
  EXPECT_EQ(pm.pilots_resubmitted(), 0u);
  EXPECT_FALSE(session_.trace().find("recovery", "pilot_abandoned").empty());
}

TEST_F(PilotRecoveryTest, UnitsRequeueOntoSurvivingPilot) {
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  um.enable_recovery(fast_policy());
  auto first = pm.submit_pilot(one_node_pilot());
  auto second = pm.submit_pilot(one_node_pilot());
  um.add_pilot(first);
  um.add_pilot(second);
  std::vector<pilot::ComputeUnitDescription> cuds(8);
  for (auto& cud : cuds) cud.duration = 60.0;
  auto units = um.submit(cuds);
  run_until_active(first);
  run_until_active(second);
  run_for(30.0);  // units dispatched, some executing on each pilot
  scheduler().fail_node(pilot_node(first));
  ASSERT_EQ(first->state(), pilot::PilotState::kFailed);
  while (!um.all_done() && session_.engine().now() < 7200.0) {
    run_for(5.0);
  }
  EXPECT_TRUE(um.all_done());
  for (const auto& unit : units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone) << unit->id();
  }
  EXPECT_GE(um.units_requeued(), 1u);
  EXPECT_EQ(um.units_abandoned(), 0u);
  const auto requeues = session_.trace().find("recovery", "unit_requeued");
  ASSERT_FALSE(requeues.empty());
  EXPECT_EQ(requeues.front().attrs.at("to"), second->id());
  // Every requeued unit's outage span closed when it was re-dispatched.
  for (const auto& span : session_.trace().find_spans("recovery",
                                                      "unit_outage")) {
    EXPECT_GT(span.duration(), 0.0);
  }
}

TEST_F(PilotRecoveryTest, UnitsAbandonedWhenBudgetExhausted) {
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  // One execution per unit in total: any pilot loss exhausts the budget.
  um.enable_recovery(fast_policy(/*max_attempts=*/1));
  auto pilot = pm.submit_pilot(one_node_pilot());
  um.add_pilot(pilot);
  pilot::ComputeUnitDescription cud;
  cud.duration = 120.0;
  auto unit = um.submit(cud);
  run_until_active(pilot);
  run_for(30.0);
  scheduler().fail_node(pilot_node(pilot));
  run_for(600.0);
  EXPECT_EQ(unit->state(), pilot::UnitState::kFailed);
  EXPECT_EQ(um.units_requeued(), 0u);
  EXPECT_EQ(um.units_abandoned(), 1u);
  EXPECT_FALSE(session_.trace().find("recovery", "unit_abandoned").empty());
}

TEST_F(PilotRecoveryTest, RespawnedPilotAbsorbsWaitingUnits) {
  // End-to-end: PilotManager resubmission feeds UnitManager recovery.
  // With a single pilot, its units park until the replacement registers.
  pilot::PilotManager pm(session_);
  pilot::UnitManager um(session_);
  um.enable_recovery(fast_policy());
  pm.enable_recovery(fast_policy(),
                     [&](const std::shared_ptr<pilot::Pilot>& fresh,
                         const std::shared_ptr<pilot::Pilot>&) {
                       um.add_pilot(fresh);
                     });
  auto pilot = pm.submit_pilot(one_node_pilot());
  um.add_pilot(pilot);
  std::vector<pilot::ComputeUnitDescription> cuds(4);
  for (auto& cud : cuds) cud.duration = 60.0;
  auto units = um.submit(cuds);
  run_until_active(pilot);
  run_for(30.0);
  scheduler().fail_node(pilot_node(pilot));
  while (!um.all_done() && session_.engine().now() < 14400.0) {
    run_for(10.0);
  }
  EXPECT_TRUE(um.all_done());
  for (const auto& unit : units) {
    EXPECT_EQ(unit->state(), pilot::UnitState::kDone) << unit->id();
  }
  EXPECT_EQ(pm.pilots_resubmitted(), 1u);
  EXPECT_GE(um.units_requeued(), 1u);
}

// ------------------------------------------------ elastic failure grow ---

TEST_F(PilotRecoveryTest, CapacityLossBelowFloorForcesGrow) {
  pilot::PilotManager pm(session_);
  auto pilot = pm.submit_pilot(one_node_pilot());
  run_until_active(pilot);
  elastic::ElasticControllerConfig config;
  config.min_nodes = 2;  // the 1-node pilot already sits below the floor
  config.max_nodes = 4;
  elastic::ElasticController controller(
      pm, pilot, std::make_unique<elastic::BacklogPolicy>(), config);
  controller.tick();
  EXPECT_EQ(controller.counters().failure_grows, 1u);
  const auto decisions = session_.trace().find("elastic", "decision");
  ASSERT_FALSE(decisions.empty());
  EXPECT_EQ(decisions.back().attrs.at("reason"),
            "failure-induced-capacity-loss");
  EXPECT_EQ(decisions.back().attrs.at("action"), "grow");
}

// ----------------------------------------------- YARN / MR task retry ---

class YarnRecoveryTest : public ::testing::Test {
 protected:
  YarnRecoveryTest() : machine_(cluster::generic_profile(3, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
  }
  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
};

TEST_F(YarnRecoveryTest, SilentNmCrashIsDetectedByLivenessMonitor) {
  yarn::YarnConfig cfg;
  cfg.nm_liveness_timeout = 30.0;
  yarn::ResourceManager rm(engine_, allocation_, cfg);
  sim::Trace trace;
  rm.set_trace(&trace);
  engine_.run_until(10.0);
  ASSERT_EQ(rm.live_node_count(), 3u);
  rm.node_manager("n1").crash();  // silent: no fail_node call
  engine_.run_until(engine_.now() + 120.0);
  EXPECT_EQ(rm.live_node_count(), 2u);
  const auto lost = trace.find("yarn", "nm_lost");
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost.front().attrs.at("node"), "n1");
  rm.shutdown();
}

TEST_F(YarnRecoveryTest, MrJobSurvivesTaskNodeLossViaRetry) {
  yarn::ResourceManager rm(engine_, allocation_);
  mapreduce::YarnMrDriver driver(rm);
  sim::Trace trace;
  driver.set_trace(&trace);
  bool finished = false;
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = 8;  // spread across all three nodes
  spec.reduce_tasks = 2;
  spec.map_task_seconds = 120.0;
  spec.reduce_task_seconds = 10.0;
  const auto app_id = driver.submit(spec, [&] { finished = true; });
  engine_.run_until(60.0);  // maps running on every node
  const auto am_node = rm.application(app_id).am_node;
  for (const auto& node : {"n0", "n1", "n2"}) {
    if (node != am_node) {
      rm.fail_node(node);
      break;
    }
  }
  engine_.run_until(3600.0);
  const auto status = driver.status(app_id);
  EXPECT_TRUE(finished);
  EXPECT_FALSE(status.failed);
  EXPECT_EQ(status.maps_done, 8);
  EXPECT_GT(status.task_retries, 0);
  EXPECT_FALSE(trace.find("mapreduce", "task_retry").empty());
  rm.shutdown();
}

// -------------------------------------------------- keystone scenario ---

// The PR's keystone: a seeded injector kills 1 of the pilot's 8 nodes
// mid-run. With the recovery layer on, the K-Means workload must finish
// with output identical to a failure-free run in at least 9 of 10 seeds;
// with it off, the same fault plan kills the job.
class KeystoneTest : public ::testing::Test {
 protected:
  static analytics::KmeansExperimentConfig base_config() {
    analytics::KmeansExperimentConfig cfg;
    cfg.machine = cluster::stampede_profile();
    cfg.scheduler = hpc::SchedulerKind::kSlurm;
    cfg.scenario = analytics::scenario_100k_points();
    cfg.nodes = 8;
    cfg.tasks = 16;
    cfg.yarn_stack = false;
    return cfg;
  }

  static analytics::KmeansExperimentConfig faulty_config(std::uint64_t seed,
                                                         bool recovery) {
    auto cfg = base_config();
    cfg.failures = true;
    cfg.failure_plan.seed = seed;
    cfg.failure_plan.mean_time_to_crash = 200.0;
    cfg.failure_plan.mean_time_to_repair = 300.0;
    cfg.failure_plan.max_crashes = 1;
    cfg.failure_plan.start_after = 300.0;
    cfg.recovery = recovery;
    if (recovery) {
      cfg.retry_policy.max_attempts = 3;
      cfg.retry_policy.base_backoff = 5.0;
      cfg.retry_policy.max_backoff = 60.0;
    }
    cfg.allow_failure = !recovery;
    return cfg;
  }
};

TEST_F(KeystoneTest, NodeLossRecoversByteIdenticalInNineOfTenSeeds) {
  const auto baseline = analytics::run_kmeans_experiment(base_config());
  ASSERT_TRUE(baseline.ok);
  ASSERT_FALSE(baseline.output_checksum.empty());
  int identical = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto r =
        analytics::run_kmeans_experiment(faulty_config(seed, true));
    if (r.ok && r.output_checksum == baseline.output_checksum) ++identical;
    EXPECT_EQ(r.failure_counters.crashes, 1) << "seed " << seed;
  }
  EXPECT_GE(identical, 9);
}

TEST_F(KeystoneTest, SameFaultPlanWithoutRecoveryFailsTheJob) {
  const auto r = analytics::run_kmeans_experiment(faulty_config(1, false));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.pilots_resubmitted, 0u);
  EXPECT_EQ(r.units_requeued, 0u);
}

}  // namespace
}  // namespace hoh
