#include <gtest/gtest.h>

#include "common/config.h"
#include "common/error.h"
#include "common/id.h"
#include "common/string_util.h"
#include "common/units.h"

namespace hoh::common {
namespace {

TEST(StringUtilTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("trailing,", ','),
            (std::vector<std::string>{"trailing", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string s = "n0,n1,n2";
  EXPECT_EQ(join(split(s, ','), ","), s);
}

TEST(StringUtilTest, StartsWithAndTrim) {
  EXPECT_TRUE(starts_with("slurm://host", "slurm://"));
  EXPECT_FALSE(starts_with("slu", "slurm"));
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.0 GiB");
  EXPECT_EQ(format_seconds(12.34), "12.3s");
  EXPECT_EQ(format_seconds(125.0), "2m05.0s");
  EXPECT_EQ(format_seconds(3700.0), "1h01m40s");
}

TEST(UnitsTest, Literals) {
  EXPECT_EQ(4_KiB, 4096);
  EXPECT_EQ(1_MiB, 1048576);
  EXPECT_EQ(bytes_to_mb(5_MiB), 5);
  EXPECT_EQ(mb_to_bytes(2), 2_MiB);
}

TEST(IdGeneratorTest, MonotonicAndPrefixed) {
  IdGenerator gen("unit");
  EXPECT_EQ(gen.next(), "unit.0000");
  EXPECT_EQ(gen.next(), "unit.0001");
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(ConfigTest, TypedAccess) {
  Config c;
  c.set("yarn.nodemanager.resource.memory-mb", "28672");
  c.set_int("cores", 16);
  c.set_bool("enabled", true);
  c.set_double("rate", 1.5);
  EXPECT_EQ(c.get_int("yarn.nodemanager.resource.memory-mb"), 28672);
  EXPECT_EQ(c.get_int("cores"), 16);
  EXPECT_TRUE(c.get_bool("enabled"));
  EXPECT_DOUBLE_EQ(c.get_double("rate"), 1.5);
  EXPECT_EQ(c.get("missing", "def"), "def");
  EXPECT_EQ(c.get_int("missing", 9), 9);
}

TEST(ConfigTest, MalformedValuesThrow) {
  Config c;
  c.set("n", "not-a-number");
  EXPECT_THROW(c.get_int("n"), ConfigError);
  EXPECT_THROW(c.get_double("n"), ConfigError);
  EXPECT_THROW(c.get_bool("n"), ConfigError);
}

TEST(ConfigTest, MergeOtherWins) {
  Config a;
  a.set("k", "old");
  a.set("only_a", "1");
  Config b;
  b.set("k", "new");
  a.merge(b);
  EXPECT_EQ(a.get("k"), "new");
  EXPECT_EQ(a.get("only_a"), "1");
}

TEST(ConfigTest, XmlRendering) {
  Config c;
  c.set("fs.defaultFS", "hdfs://n0:9000");
  const std::string xml = c.to_xml();
  EXPECT_NE(xml.find("<name>fs.defaultFS</name>"), std::string::npos);
  EXPECT_NE(xml.find("<value>hdfs://n0:9000</value>"), std::string::npos);
  EXPECT_NE(xml.find("<configuration>"), std::string::npos);
}

TEST(ConfigTest, PropertiesRendering) {
  Config c;
  c.set("SPARK_WORKER_CORES", "48");
  EXPECT_EQ(c.to_properties(), "SPARK_WORKER_CORES=48\n");
}

}  // namespace
}  // namespace hoh::common
