#include "common/id.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace hoh::common {
namespace {

TEST(IdGeneratorTest, SequentialFormat) {
  IdGenerator gen("pilot");
  EXPECT_EQ(gen.next(), "pilot.0000");
  EXPECT_EQ(gen.next(), "pilot.0001");
  EXPECT_EQ(gen.issued(), 2u);
}

TEST(IdGeneratorTest, WideCountersDoNotCollide) {
  IdGenerator gen("u");
  for (int i = 0; i < 10000; ++i) gen.next();
  EXPECT_EQ(gen.next(), "u.10000");  // %04 pads, never truncates
}

// The satellite stress for the atomic counter: two threads drawing ids
// concurrently must never collide and must account for every draw.
TEST(IdGeneratorTest, TwoThreadUniquenessStress) {
  constexpr int kPerThread = 20000;
  IdGenerator gen("stress");
  std::vector<std::string> a, b;
  a.reserve(kPerThread);
  b.reserve(kPerThread);
  std::thread ta([&] {
    for (int i = 0; i < kPerThread; ++i) a.push_back(gen.next());
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerThread; ++i) b.push_back(gen.next());
  });
  ta.join();
  tb.join();

  EXPECT_EQ(gen.issued(), 2u * kPerThread);
  std::set<std::string> unique(a.begin(), a.end());
  unique.insert(b.begin(), b.end());
  EXPECT_EQ(unique.size(), 2u * kPerThread);
}

}  // namespace
}  // namespace hoh::common
