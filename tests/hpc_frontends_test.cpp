#include "hpc/frontends.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/string_util.h"
#include "sim/engine.h"

namespace hoh::hpc {
namespace {

class FrontendTest : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  FrontendTest()
      : profile_(cluster::generic_profile(4, 8, 16 * 1024)),
        sched_(engine_, profile_, 4),
        frontend_(make_frontend(GetParam(), sched_)) {}

  sim::Engine engine_;
  cluster::MachineProfile profile_;
  BatchScheduler sched_;
  std::unique_ptr<SchedulerFrontend> frontend_;
};

TEST_P(FrontendTest, SubmitQueryCancelLifecycle) {
  const auto id =
      frontend_->submit(BatchJobRequest{"agent", 2, 600.0, "normal", ""},
                        nullptr);
  EXPECT_EQ(frontend_->state(id), BatchJobState::kPending);
  engine_.run_until(30.0);
  EXPECT_EQ(frontend_->state(id), BatchJobState::kRunning);
  frontend_->cancel(id);
  EXPECT_EQ(frontend_->state(id), BatchJobState::kCancelled);
}

TEST_P(FrontendTest, CompleteViaFrontend) {
  const auto id =
      frontend_->submit(BatchJobRequest{"agent", 1, 600.0, "normal", ""},
                        nullptr);
  engine_.run_until(30.0);
  frontend_->complete(id);
  EXPECT_EQ(frontend_->state(id), BatchJobState::kCompleted);
}

TEST_P(FrontendTest, StartCallbackReceivesFrontendId) {
  std::string seen_id;
  const auto id = frontend_->submit(
      BatchJobRequest{"agent", 1, 600.0, "normal", ""},
      [&](const std::string& jid, const cluster::Allocation&) {
        seen_id = jid;
      });
  engine_.run_until(30.0);
  EXPECT_EQ(seen_id, id);
}

TEST_P(FrontendTest, EnvironmentOnlyWhileRunning) {
  const auto id =
      frontend_->submit(BatchJobRequest{"agent", 2, 600.0, "normal", ""},
                        nullptr);
  EXPECT_THROW(frontend_->environment(id), common::StateError);
  engine_.run_until(30.0);
  EXPECT_FALSE(frontend_->environment(id).empty());
  frontend_->complete(id);
  EXPECT_THROW(frontend_->environment(id), common::StateError);
}

TEST_P(FrontendTest, UnknownIdThrows) {
  EXPECT_THROW(frontend_->state("does-not-exist"), common::NotFoundError);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FrontendTest,
                         ::testing::Values(SchedulerKind::kSlurm,
                                           SchedulerKind::kPbs,
                                           SchedulerKind::kSge),
                         [](const auto& info) {
                           return to_string(info.param);
                         });

TEST(SlurmEnvTest, VariablesMatchConvention) {
  sim::Engine engine;
  auto profile = cluster::generic_profile(3, 8, 16 * 1024);
  BatchScheduler sched(engine, profile, 3);
  SlurmFrontend fe(sched);
  const auto id = fe.submit(BatchJobRequest{"j", 2, 600.0, "q", ""}, nullptr);
  engine.run_until(30.0);
  const auto env = fe.environment(id);
  EXPECT_EQ(env.at("SLURM_JOB_ID"), id);
  EXPECT_EQ(env.at("SLURM_NNODES"), "2");
  EXPECT_EQ(env.at("SLURM_CPUS_ON_NODE"), "8");
  EXPECT_EQ(common::split(env.at("SLURM_JOB_NODELIST"), ',').size(), 2u);
}

TEST(PbsEnvTest, NodefileHasOneLinePerCore) {
  sim::Engine engine;
  auto profile = cluster::generic_profile(3, 4, 8 * 1024);
  BatchScheduler sched(engine, profile, 3);
  PbsFrontend fe(sched);
  const auto id = fe.submit(BatchJobRequest{"j", 2, 600.0, "q", ""}, nullptr);
  engine.run_until(30.0);
  const auto env = fe.environment(id);
  EXPECT_NE(id.find(".beowulf-pbs-server"), std::string::npos);
  EXPECT_EQ(env.at("PBS_NP"), "8");
  const auto lines = common::split(env.at("PBS_NODEFILE_CONTENTS"), '\n');
  EXPECT_EQ(lines.size(), 8u);  // 2 nodes x 4 cores
}

TEST(SgeEnvTest, HostfileFormat) {
  sim::Engine engine;
  auto profile = cluster::generic_profile(3, 4, 8 * 1024);
  BatchScheduler sched(engine, profile, 3);
  SgeFrontend fe(sched);
  const auto id = fe.submit(BatchJobRequest{"j", 2, 600.0, "q", ""}, nullptr);
  engine.run_until(30.0);
  const auto env = fe.environment(id);
  EXPECT_EQ(env.at("NSLOTS"), "8");
  EXPECT_EQ(env.at("NHOSTS"), "2");
  const auto lines = common::split(env.at("PE_HOSTFILE_CONTENTS"), '\n');
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find(" 4"), std::string::npos);
}

}  // namespace
}  // namespace hoh::hpc
