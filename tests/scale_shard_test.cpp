#include "pilot/state_store.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "analytics/experiment_config.h"
#include "analytics/kmeans_experiment.h"
#include "common/error.h"

/// Sharded state store (DESIGN.md §13): the shard count is a pure
/// performance knob — operations, watch delivery order and experiment
/// digests must be indistinguishable from the single-lock store.

namespace hoh::pilot {
namespace {

TEST(ScaleShardTest, OpsAcrossShardsMatchSingleLockSemantics) {
  sim::Engine engine;
  StateStore store(engine);
  store.set_shard_count(8);
  EXPECT_EQ(store.shard_count(), 8u);
  // Many buckets so several shards are actually populated.
  for (int i = 0; i < 32; ++i) {
    const std::string coll = "coll." + std::to_string(i);
    common::Json doc;
    doc["v"] = static_cast<std::int64_t>(i);
    store.put(coll, "a", doc);
    store.put(coll, "b", doc);
    store.update(coll, "a", {{"w", common::Json("x")}});
    store.queue_push("q." + std::to_string(i), "e1");
    store.queue_push("q." + std::to_string(i), "e2");
  }
  for (int i = 0; i < 32; ++i) {
    const std::string coll = "coll." + std::to_string(i);
    auto got = store.get(coll, "a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->at("v").as_int(), i);
    EXPECT_EQ(got->at("w").as_string(), "x");
    EXPECT_EQ(store.find_all(coll).size(), 2u);
    EXPECT_EQ(store.queue_pop_all("q." + std::to_string(i)),
              (std::vector<std::string>{"e1", "e2"}));
  }
  // op_count aggregates across shards.
  EXPECT_GT(store.op_count(), 0u);
}

TEST(ScaleShardTest, ShardCountValidation) {
  sim::Engine engine;
  StateStore store(engine);
  EXPECT_THROW(store.set_shard_count(0), common::ConfigError);
  EXPECT_THROW(store.set_shard_count(StateStore::kMaxShards + 1),
               common::ConfigError);
  store.set_shard_count(4);  // still empty: re-sharding is legal
  store.put("c", "id", common::Json());
  EXPECT_THROW(store.set_shard_count(8), common::StateError);
}

TEST(ScaleShardTest, CrossShardWatchDeliveryIsGlobalFifo) {
  sim::Engine engine;
  StateStore store(engine);
  store.set_shard_count(16);
  // One watcher per bucket; the buckets hash to different shards, but
  // delivery must follow global mutation order, not shard order.
  std::vector<std::string> delivered;
  const int kBuckets = 12;
  for (int i = 0; i < kBuckets; ++i) {
    store.watch("b." + std::to_string(i), "",
                [&delivered](const WatchEvent& e) {
                  delivered.push_back(e.bucket + "/" + e.key);
                });
  }
  std::vector<std::string> expected;
  for (int round = 0; round < 3; ++round) {
    for (int i = kBuckets - 1; i >= 0; --i) {  // deliberately non-sorted
      const std::string bucket = "b." + std::to_string(i);
      const std::string key = "k" + std::to_string(round);
      store.put(bucket, key, common::Json());
      expected.push_back(bucket + "/" + key);
    }
  }
  engine.run_until(1.0);
  EXPECT_EQ(delivered, expected);
}

TEST(ScaleShardTest, UnwatchAcrossShards) {
  sim::Engine engine;
  StateStore store(engine);
  store.set_shard_count(8);
  int fired = 0;
  auto h1 = store.watch("alpha", "", [&fired](const WatchEvent&) { ++fired; });
  auto h2 = store.watch("beta", "", [&fired](const WatchEvent&) { ++fired; });
  EXPECT_EQ(store.watcher_count(), 2u);
  EXPECT_TRUE(store.unwatch(h1));
  EXPECT_FALSE(store.unwatch(h1));  // double-unwatch is a no-op
  EXPECT_EQ(store.watcher_count(), 1u);
  store.put("alpha", "x", common::Json());
  store.put("beta", "y", common::Json());
  engine.run_until(1.0);
  EXPECT_EQ(fired, 1);  // only the surviving beta watcher
  EXPECT_TRUE(store.unwatch(h2));
  EXPECT_EQ(store.watcher_count(), 0u);
}

/// TSan target: hammer the sharded store from several threads, each on
/// its own buckets (watcher-free, so no engine events are scheduled —
/// the engine itself is single-threaded by contract). Any missing shard
/// locking shows up as a data race under -fsanitize=thread.
TEST(ScaleShardTest, ConcurrentMutationStress) {
  sim::Engine engine;
  StateStore store(engine);
  store.set_shard_count(8);
  const int kThreads = 4, kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      const std::string coll = "stress." + std::to_string(t);
      const std::string queue = "q." + std::to_string(t);
      for (int i = 0; i < kOps; ++i) {
        const std::string id = "d" + std::to_string(i);
        common::Json doc;
        doc["n"] = static_cast<std::int64_t>(i);
        store.put(coll, id, doc);
        store.update(coll, id, {{"m", common::Json("y")}});
        ASSERT_TRUE(store.get(coll, id).has_value());
        store.queue_push(queue, id);
      }
      EXPECT_EQ(store.queue_pop_all(queue).size(),
                static_cast<std::size_t>(kOps));
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(store.find_all("stress." + std::to_string(t)).size(),
              static_cast<std::size_t>(kOps));
  }
}

/// End-to-end digest parity: a faulty, recovering cell must reproduce
/// the single-lock digest at any shard count, across injection seeds —
/// the same invariant the CI fault-sweep matrix checks per seed.
TEST(ScaleShardTest, FaultSweepDigestParityAcrossShardCounts) {
  auto cell = [](std::uint64_t seed, int shards) {
    analytics::KmeansExperimentConfig cfg;
    cfg.machine = cluster::stampede_profile();
    cfg.scenario = analytics::scenario_10k_points();
    cfg.scenario.iterations = 2;
    cfg.nodes = 3;
    cfg.tasks = 16;
    cfg.control_plane = common::ControlPlane::kWatch;
    cfg.failures = true;
    cfg.failure_plan.seed = seed;
    cfg.failure_plan.mean_time_to_crash = 600;
    cfg.failure_plan.mean_time_to_repair = 300;
    cfg.failure_plan.max_crashes = 1;
    cfg.failure_plan.start_after = 120;
    cfg.recovery = true;
    cfg.retry_policy.max_attempts = 3;
    cfg.retry_policy.base_backoff = 5;
    cfg.store_shards = shards;
    return analytics::run_kmeans_experiment(cfg);
  };
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull, 8ull,
                             9ull, 10ull}) {
    const auto single = cell(seed, 1);
    const auto sharded = cell(seed, 8);
    ASSERT_TRUE(single.ok) << "seed " << seed;
    ASSERT_TRUE(sharded.ok) << "seed " << seed;
    EXPECT_EQ(single.output_checksum, sharded.output_checksum)
        << "seed " << seed;
    EXPECT_EQ(single.units_completed, sharded.units_completed)
        << "seed " << seed;
  }
}

/// Strict plan parsing (hohsim --strict): an unknown key is a hard
/// ConfigError instead of a warning.
TEST(ScaleShardTest, StrictPlanParsingRejectsUnknownKeys) {
  const char* plan = R"({"experiments": [
      {"machine": "generic", "nodes": 1, "tasks": 2, "stack": "rp",
       "scenario": "10k", "store_shardz": 4}]})";
  const auto doc = common::Json::parse(plan);
  EXPECT_NO_THROW(analytics::experiment_plan_from_json(doc));
  analytics::set_strict_plan_parsing(true);
  EXPECT_THROW(analytics::experiment_plan_from_json(doc),
               common::ConfigError);
  analytics::set_strict_plan_parsing(false);
  // Correctly-spelled scale knobs parse in strict mode.
  const char* good = R"({"experiments": [
      {"machine": "generic", "nodes": 1, "tasks": 2, "stack": "rp",
       "scenario": "10k", "store_shards": 4, "spawn_latency": 0.01,
       "trace_rollup": true, "pilot_runtime": 1209600}]})";
  analytics::set_strict_plan_parsing(true);
  const auto cfgs =
      analytics::experiment_plan_from_json(common::Json::parse(good));
  analytics::set_strict_plan_parsing(false);
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_EQ(cfgs[0].store_shards, 4);
  EXPECT_DOUBLE_EQ(cfgs[0].spawn_latency, 0.01);
  EXPECT_TRUE(cfgs[0].trace_rollup);
  EXPECT_DOUBLE_EQ(cfgs[0].pilot_runtime, 1209600.0);
}

}  // namespace
}  // namespace hoh::pilot
