#include "pilot/transitions.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "pilot/states.h"

namespace hoh::pilot {
namespace {

const std::vector<PilotState> kAllPilotStates = {
    PilotState::kNew,    PilotState::kPendingLaunch, PilotState::kLaunching,
    PilotState::kActive, PilotState::kDone,          PilotState::kCanceled,
    PilotState::kFailed,
};

const std::vector<UnitState> kAllUnitStates = {
    UnitState::kNew,           UnitState::kUmgrScheduling,
    UnitState::kPendingAgent,  UnitState::kAgentScheduling,
    UnitState::kStagingInput,  UnitState::kExecuting,
    UnitState::kStagingOutput, UnitState::kDone,
    UnitState::kCanceled,      UnitState::kFailed,
};

TEST(TransitionTableTest, PilotStateStringRoundTrip) {
  ASSERT_EQ(kAllPilotStates.size(), kPilotStateCount);
  for (PilotState s : kAllPilotStates) {
    EXPECT_EQ(pilot_state_from_string(to_string(s)), s) << to_string(s);
  }
  EXPECT_THROW(pilot_state_from_string("NotAState"), common::StateError);
}

TEST(TransitionTableTest, UnitStateStringRoundTrip) {
  ASSERT_EQ(kAllUnitStates.size(), kUnitStateCount);
  for (UnitState s : kAllUnitStates) {
    EXPECT_EQ(unit_state_from_string(to_string(s)), s) << to_string(s);
  }
  EXPECT_THROW(unit_state_from_string(""), common::StateError);
}

// Exhaustive: no edge (including self-loops) leaves a final state —
// except the one fault-recovery requeue edge, unit kFailed ->
// kPendingAgent, which is asserted to be the *only* exception.
TEST(TransitionTableTest, FinalStatesAreSinksExceptRecoveryRequeue) {
  for (PilotState from : kAllPilotStates) {
    if (!is_final(from)) continue;
    for (PilotState to : kAllPilotStates) {
      EXPECT_FALSE(transition_allowed(from, to))
          << to_string(from) << " -> " << to_string(to);
    }
  }
  for (UnitState from : kAllUnitStates) {
    if (!is_final(from)) continue;
    for (UnitState to : kAllUnitStates) {
      const bool requeue_edge =
          from == UnitState::kFailed && to == UnitState::kPendingAgent;
      EXPECT_EQ(transition_allowed(from, to), requeue_edge)
          << to_string(from) << " -> " << to_string(to);
    }
  }
}

TEST(TransitionTableTest, NonFinalSelfTransitionsAreLegalNoOps) {
  for (UnitState s : kAllUnitStates) {
    EXPECT_EQ(transition_allowed(s, s), !is_final(s)) << to_string(s);
  }
  for (PilotState s : kAllPilotStates) {
    EXPECT_EQ(transition_allowed(s, s), !is_final(s)) << to_string(s);
  }
}

TEST(TransitionTableTest, HappyPathsAreLegal) {
  EXPECT_TRUE(transition_allowed(PilotState::kNew, PilotState::kPendingLaunch));
  EXPECT_TRUE(
      transition_allowed(PilotState::kPendingLaunch, PilotState::kLaunching));
  EXPECT_TRUE(transition_allowed(PilotState::kLaunching, PilotState::kActive));
  EXPECT_TRUE(transition_allowed(PilotState::kActive, PilotState::kDone));

  EXPECT_TRUE(transition_allowed(UnitState::kNew, UnitState::kUmgrScheduling));
  EXPECT_TRUE(transition_allowed(UnitState::kUmgrScheduling,
                                 UnitState::kPendingAgent));
  EXPECT_TRUE(transition_allowed(UnitState::kPendingAgent,
                                 UnitState::kAgentScheduling));
  EXPECT_TRUE(transition_allowed(UnitState::kAgentScheduling,
                                 UnitState::kStagingInput));
  EXPECT_TRUE(
      transition_allowed(UnitState::kStagingInput, UnitState::kExecuting));
  EXPECT_TRUE(
      transition_allowed(UnitState::kExecuting, UnitState::kStagingOutput));
  EXPECT_TRUE(transition_allowed(UnitState::kStagingOutput, UnitState::kDone));
}

// The drain-timeout preempt+requeue sequence from the elasticity
// subsystem: an Executing unit on a leaving node goes back to
// AgentScheduling (legal), runs again to Done (legal) — and any late
// duplicate completion or re-dispatch out of Done must be rejected.
TEST(TransitionTableTest, DrainTimeoutRequeueSequence) {
  EXPECT_TRUE(
      transition_allowed(UnitState::kExecuting, UnitState::kAgentScheduling));
  EXPECT_TRUE(transition_allowed(UnitState::kStagingInput,
                                 UnitState::kAgentScheduling));
  EXPECT_NO_THROW(validate_transition(UnitState::kExecuting,
                                      UnitState::kAgentScheduling, "unit.0"));
  EXPECT_NO_THROW(
      validate_transition(UnitState::kExecuting, UnitState::kDone, "unit.0"));

  // The races the gate exists to catch:
  EXPECT_THROW(
      validate_transition(UnitState::kDone, UnitState::kExecuting, "unit.0"),
      common::StateError);
  EXPECT_THROW(validate_transition(UnitState::kDone,
                                   UnitState::kAgentScheduling, "unit.0"),
               common::StateError);
  EXPECT_THROW(validate_transition(UnitState::kCanceled, UnitState::kExecuting,
                                   "unit.0"),
               common::StateError);
}

TEST(TransitionTableTest, IllegalSkipsAreRejected) {
  // Skipping the agent scheduler entirely.
  EXPECT_FALSE(
      transition_allowed(UnitState::kPendingAgent, UnitState::kExecuting));
  // Going backwards up the pipeline.
  EXPECT_FALSE(
      transition_allowed(UnitState::kExecuting, UnitState::kPendingAgent));
  EXPECT_FALSE(transition_allowed(PilotState::kActive, PilotState::kLaunching));
  // A pilot cannot resurrect.
  EXPECT_FALSE(transition_allowed(PilotState::kDone, PilotState::kActive));
}

TEST(TransitionTableTest, ValidateErrorNamesEntityAndStates) {
  try {
    validate_transition(UnitState::kDone, UnitState::kExecuting, "unit.0042");
    FAIL() << "expected StateError";
  } catch (const common::StateError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("unit.0042"), std::string::npos) << what;
    EXPECT_NE(what.find("Done"), std::string::npos) << what;
    EXPECT_NE(what.find("Executing"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace hoh::pilot
