#include <gtest/gtest.h>

#include "spark/standalone.h"

namespace hoh::spark {
namespace {

class DynamicAllocationTest : public ::testing::Test {
 protected:
  DynamicAllocationTest()
      : machine_(cluster::generic_profile(4, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 4; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
    SparkConfig cfg;
    cfg.dynamic_allocation = true;
    cfg.executor_idle_timeout = 30.0;
    spark_ = std::make_unique<SparkStandaloneCluster>(engine_, machine_,
                                                      allocation_, cfg);
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
  std::unique_ptr<SparkStandaloneCluster> spark_;
};

TEST_F(DynamicAllocationTest, StartsAtMinExecutors) {
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.min_executors = 1;
  const auto id = spark_->submit_application(app);
  engine_.run_until(30.0);
  EXPECT_EQ(spark_->executors(id).size(), 1u);
  EXPECT_EQ(spark_->task_slots(id), 4);
}

TEST_F(DynamicAllocationTest, GrowsUnderBacklogAndFinishesSooner) {
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.min_executors = 1;
  const auto id = spark_->submit_application(app);
  engine_.run_until(30.0);
  ASSERT_EQ(spark_->task_slots(id), 4);

  // 32 tasks x 60 s: with 4 static slots this is 8 waves (480 s); under
  // dynamic allocation the executor set grows toward 32 cores.
  bool done = false;
  double done_at = -1.0;
  const double t0 = engine_.now();
  spark_->run_stage(id, 32, [](int) { return 60.0; }, [&] {
    done = true;
    done_at = engine_.now();
  });
  engine_.run_until(t0 + 50.0);
  EXPECT_GT(spark_->executors(id).size(), 1u);  // grew mid-run
  engine_.run_until(t0 + 2000.0);
  ASSERT_TRUE(done);
  // Clearly better than the 8-wave static floor.
  EXPECT_LT(done_at - t0, 420.0);
}

TEST_F(DynamicAllocationTest, ShedsIdleExecutorsAfterTimeout) {
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.min_executors = 1;
  const auto id = spark_->submit_application(app);
  engine_.run_until(30.0);
  bool done = false;
  const double t0 = engine_.now();
  spark_->run_stage(id, 24, [](int) { return 30.0; }, [&] { done = true; });
  engine_.run_until(t0 + 60.0);
  const auto grown = spark_->executors(id).size();
  ASSERT_GT(grown, 1u);  // grew while the backlog was live
  engine_.run_until(t0 + 1000.0);
  ASSERT_TRUE(done);
  // After the idle timeout the app shrank back to min_executors.
  EXPECT_EQ(spark_->executors(id).size(), 1u);
  // Worker capacity returned (a second app can take the whole cluster
  // minus the retained executor).
  SparkAppDescriptor other;
  other.executor_cores = 4;
  other.min_executors = 1;
  other.max_cores = 28;
  const auto id2 = spark_->submit_application(other);
  engine_.run_until(engine_.now() + 600.0);
  bool done2 = false;
  spark_->run_stage(id2, 28, [](int) { return 10.0; }, [&] { done2 = true; });
  engine_.run_until(engine_.now() + 600.0);
  EXPECT_TRUE(done2);
}

TEST_F(DynamicAllocationTest, StaticModeUnchanged) {
  SparkConfig cfg;  // dynamic_allocation off
  SparkStandaloneCluster static_spark(engine_, machine_, allocation_, cfg);
  SparkAppDescriptor app;
  app.executor_cores = 4;
  app.max_cores = 16;
  const auto id = static_spark.submit_application(app);
  engine_.run_until(engine_.now() + 30.0);
  EXPECT_EQ(static_spark.task_slots(id), 16);  // full grant up front
}

}  // namespace
}  // namespace hoh::spark
