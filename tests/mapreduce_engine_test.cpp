#include "mapreduce/mr_engine.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"

namespace hoh::mapreduce {
namespace {

using WordCountJob = MrJob<std::string, std::string, int, std::pair<std::string, int>>;

WordCountJob word_count_job() {
  WordCountJob job;
  job.mapper = [](const std::string& line, Emitter<std::string, int>& out) {
    std::string cur;
    for (char c : line) {
      if (c == ' ') {
        if (!cur.empty()) out.emit(cur, 1);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) out.emit(cur, 1);
  };
  job.reducer = [](const std::string& k, const std::vector<int>& vs) {
    int sum = 0;
    for (int v : vs) sum += v;
    return std::pair<std::string, int>(k, sum);
  };
  return job;
}

TEST(MrEngineTest, WordCount) {
  common::ThreadPool pool(4);
  std::vector<std::string> input = {"a b a", "c a", "b"};
  MrStats stats;
  auto out = run_mr(pool, input, word_count_job(), &stats);
  std::map<std::string, int> counts(out.begin(), out.end());
  EXPECT_EQ(counts.at("a"), 3);
  EXPECT_EQ(counts.at("b"), 2);
  EXPECT_EQ(counts.at("c"), 1);
  EXPECT_EQ(stats.map_input_records, 3u);
  EXPECT_EQ(stats.map_output_records, 6u);
  EXPECT_EQ(stats.reduce_input_groups, 3u);
}

TEST(MrEngineTest, MissingFunctorsThrow) {
  common::ThreadPool pool(2);
  WordCountJob job;  // no mapper/reducer
  EXPECT_THROW(run_mr(pool, std::vector<std::string>{"x"}, job),
               common::ConfigError);
}

TEST(MrEngineTest, CombinerReducesShuffleVolume) {
  common::ThreadPool pool(4);
  // 1000 copies of the same word in one split.
  std::vector<std::string> input(1000, "w");
  auto plain = word_count_job();
  plain.map_tasks = 4;
  MrStats no_combine;
  run_mr(pool, input, plain, &no_combine);

  auto combined = word_count_job();
  combined.map_tasks = 4;
  combined.combiner = [](const std::string&, const std::vector<int>& vs) {
    int sum = 0;
    for (int v : vs) sum += v;
    return sum;
  };
  MrStats with_combine;
  auto out = run_mr(pool, input, combined, &with_combine);
  // Result identical.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 1000);
  // Shuffle shrank to ~1 value per map task.
  EXPECT_LT(with_combine.shuffle_bytes, no_combine.shuffle_bytes / 100);
}

TEST(MrEngineTest, EmptyInput) {
  common::ThreadPool pool(2);
  MrStats stats;
  auto out = run_mr(pool, std::vector<std::string>{}, word_count_job(),
                    &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.map_input_records, 0u);
}

TEST(MrEngineTest, DeterministicAcrossRuns) {
  common::ThreadPool pool(8);
  std::vector<std::string> input;
  for (int i = 0; i < 200; ++i) {
    input.push_back("k" + std::to_string(i % 17) + " k" +
                    std::to_string(i % 5));
  }
  auto job = word_count_job();
  job.map_tasks = 8;
  job.reduce_tasks = 4;
  auto a = run_mr(pool, input, job);
  auto b = run_mr(pool, input, job);
  EXPECT_EQ(a, b);
}

class MrTaskCountSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MrTaskCountSweep, ResultInvariantUnderParallelism) {
  common::ThreadPool pool(4);
  std::vector<std::string> input;
  for (int i = 0; i < 300; ++i) input.push_back("w" + std::to_string(i % 23));
  auto job = word_count_job();
  job.map_tasks = GetParam().first;
  job.reduce_tasks = GetParam().second;
  auto out = run_mr(pool, input, job);
  std::map<std::string, int> counts(out.begin(), out.end());
  ASSERT_EQ(counts.size(), 23u);
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  EXPECT_EQ(total, 300);
}

INSTANTIATE_TEST_SUITE_P(
    Parallelism, MrTaskCountSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 7},
                      std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{64, 2}));

// Numeric job with a different type signature: mean per group.
TEST(MrEngineTest, TypedNumericJob) {
  common::ThreadPool pool(4);
  struct Sample {
    int group;
    double value;
  };
  MrJob<Sample, int, double, std::pair<int, double>> job;
  job.mapper = [](const Sample& s, Emitter<int, double>& out) {
    out.emit(s.group, s.value);
  };
  job.reducer = [](const int& g, const std::vector<double>& vs) {
    double sum = 0.0;
    for (double v : vs) sum += v;
    return std::pair<int, double>(g, sum / static_cast<double>(vs.size()));
  };
  std::vector<Sample> input;
  for (int i = 0; i < 90; ++i) {
    input.push_back(Sample{i % 3, static_cast<double>(i % 3) * 10.0});
  }
  auto out = run_mr(pool, input, job);
  std::map<int, double> means(out.begin(), out.end());
  EXPECT_DOUBLE_EQ(means.at(0), 0.0);
  EXPECT_DOUBLE_EQ(means.at(1), 10.0);
  EXPECT_DOUBLE_EQ(means.at(2), 20.0);
}

}  // namespace
}  // namespace hoh::mapreduce
