#include "sim/trace_analysis.h"

#include <gtest/gtest.h>

namespace hoh::sim {
namespace {

TraceSpan span(double b, double e) {
  return TraceSpan{b, e, "unit", "exec", "k"};
}

TEST(ConcurrencyProfileTest, EmptyInput) {
  EXPECT_TRUE(concurrency_profile({}).empty());
  EXPECT_EQ(peak_concurrency({}), 0);
}

TEST(ConcurrencyProfileTest, NonOverlappingSpans) {
  const std::vector<TraceSpan> spans = {span(0, 1), span(2, 3)};
  EXPECT_EQ(peak_concurrency(spans), 1);
}

TEST(ConcurrencyProfileTest, OverlapCounts) {
  const std::vector<TraceSpan> spans = {span(0, 10), span(2, 8), span(4, 6)};
  EXPECT_EQ(peak_concurrency(spans), 3);
  const auto profile = concurrency_profile(spans);
  // Ends at zero.
  EXPECT_EQ(profile.back().concurrent, 0);
}

TEST(ConcurrencyProfileTest, TouchingSpansDontInflatePeak) {
  // One ends exactly when the next begins: peak stays 1.
  const std::vector<TraceSpan> spans = {span(0, 5), span(5, 10)};
  EXPECT_EQ(peak_concurrency(spans), 1);
}

TEST(UtilizationTest, FullWindowSingleSlot) {
  const std::vector<TraceSpan> spans = {span(0, 10)};
  EXPECT_DOUBLE_EQ(utilization(spans, 1, 0.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(utilization(spans, 2, 0.0, 10.0), 0.5);
}

TEST(UtilizationTest, ClipsToWindow) {
  const std::vector<TraceSpan> spans = {span(-5, 5), span(5, 15)};
  // Inside [0, 10] each contributes 5 seconds.
  EXPECT_DOUBLE_EQ(utilization(spans, 1, 0.0, 10.0), 1.0);
}

TEST(UtilizationTest, DegenerateInputs) {
  const std::vector<TraceSpan> spans = {span(0, 10)};
  EXPECT_DOUBLE_EQ(utilization(spans, 0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(utilization(spans, 1, 10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(utilization({}, 4, 0.0, 10.0), 0.0);
}

TEST(TraceCsvTest, ExportFormat) {
  Trace t;
  t.record(1.5, "unit", "Executing", {{"unit", "u0"}, {"pilot", "p0"}});
  const std::string csv = to_csv(t);
  EXPECT_NE(csv.find("time,category,name,attrs\n"), std::string::npos);
  EXPECT_NE(csv.find("1.500000,unit,Executing,pilot=p0;unit=u0"),
            std::string::npos);
}

TEST(TraceCsvTest, EmptyTraceHasHeaderOnly) {
  Trace t;
  EXPECT_EQ(to_csv(t), "time,category,name,attrs\n");
}

}  // namespace
}  // namespace hoh::sim
