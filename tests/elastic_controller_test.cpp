#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "elastic/elastic_controller.h"
#include "elastic/policy.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

namespace hoh::elastic {
namespace {

PilotSample sample_at(common::Seconds time, int nodes, int cores_per_node,
                      int used_cores, std::size_t queued_units,
                      int queued_cores) {
  PilotSample s;
  s.time = time;
  s.nodes = nodes;
  s.cores_per_node = cores_per_node;
  s.total_cores = nodes * cores_per_node;
  s.used_cores = used_cores;
  s.queued_units = queued_units;
  s.queued_cores = queued_cores;
  return s;
}

// --- BacklogPolicy ---

TEST(BacklogPolicyTest, GrowsWhenQueueOutstripsIdleSlots) {
  BacklogPolicy policy;
  // 2 nodes x 16 cores fully busy, 40 cores queued: starved.
  const auto d = policy.decide(sample_at(0.0, 2, 16, 32, 40, 40));
  EXPECT_EQ(d.action, ElasticAction::kGrow);
  EXPECT_GT(d.nodes, 0);
}

TEST(BacklogPolicyTest, GrowStepCoversTheCoreDeficit) {
  BacklogPolicyConfig config;
  config.grow_step_max = 8;
  BacklogPolicy policy(config);
  // 33 queued cores against 1 idle core: deficit 32 -> 2 nodes of 16.
  const auto d = policy.decide(sample_at(0.0, 2, 16, 31, 33, 33));
  EXPECT_EQ(d.action, ElasticAction::kGrow);
  EXPECT_EQ(d.nodes, 2);
}

TEST(BacklogPolicyTest, HoldsWhenBacklogFitsIdleSlots) {
  BacklogPolicy policy;  // grow at > 2 queued cores per idle core
  const auto d = policy.decide(sample_at(0.0, 2, 16, 8, 10, 10));
  EXPECT_EQ(d.action, ElasticAction::kHold);
}

TEST(BacklogPolicyTest, ShrinksIdleNodesKeepingTheSpare) {
  BacklogPolicy policy;  // shrink_spare_nodes = 1
  // Queue empty, 3 of 4 nodes fully idle.
  const auto d = policy.decide(sample_at(0.0, 4, 16, 16, 0, 0));
  EXPECT_EQ(d.action, ElasticAction::kShrink);
  EXPECT_EQ(d.nodes, 2);  // 3 idle nodes minus 1 spare
}

TEST(BacklogPolicyTest, HoldsWhenOnlyTheSpareIsIdle) {
  BacklogPolicy policy;
  const auto d = policy.decide(sample_at(0.0, 2, 16, 16, 0, 0));
  EXPECT_EQ(d.action, ElasticAction::kHold);
}

// --- UtilizationPolicy ---

TEST(UtilizationPolicyTest, GrowsAboveHighWatermark) {
  UtilizationPolicy policy;
  const auto d = policy.decide(sample_at(1000.0, 2, 16, 30, 4, 4));
  EXPECT_EQ(d.action, ElasticAction::kGrow);
}

TEST(UtilizationPolicyTest, ShrinksBelowLowWatermarkWithEmptyQueue) {
  UtilizationPolicy policy;
  const auto d = policy.decide(sample_at(1000.0, 4, 16, 4, 0, 0));
  EXPECT_EQ(d.action, ElasticAction::kShrink);
}

TEST(UtilizationPolicyTest, HoldsLowUtilizationWhileUnitsStillQueue) {
  UtilizationPolicy policy;
  // Low utilization but work queued (startup transient): never shrink.
  const auto d = policy.decide(sample_at(1000.0, 4, 16, 4, 12, 12));
  EXPECT_EQ(d.action, ElasticAction::kHold);
}

TEST(UtilizationPolicyTest, CooldownBlocksBackToBackResizes) {
  UtilizationPolicy policy;  // cooldown 120 s
  const auto grow = policy.decide(sample_at(0.0, 2, 16, 31, 8, 8));
  ASSERT_EQ(grow.action, ElasticAction::kGrow);
  // 30 s later the pilot looks idle — still inside the cooldown.
  const auto held = policy.decide(sample_at(30.0, 4, 16, 2, 0, 0));
  EXPECT_EQ(held.action, ElasticAction::kHold);
  // Past the cooldown the shrink goes through.
  const auto shrink = policy.decide(sample_at(150.0, 4, 16, 2, 0, 0));
  EXPECT_EQ(shrink.action, ElasticAction::kShrink);
}

TEST(UtilizationPolicyTest, NoFlapInsideTheHysteresisBand) {
  // Property: load oscillating anywhere inside the band produces zero
  // resize decisions, no matter how long it runs.
  UtilizationPolicy policy;
  std::size_t resizes = 0;
  for (int i = 0; i < 200; ++i) {
    // Utilization swings between 0.375 and 0.75 every sample.
    const int used = (i % 2 == 0) ? 12 : 24;
    const auto d = policy.decide(sample_at(i * 30.0, 2, 16, used, 0, 0));
    if (d.action != ElasticAction::kHold) resizes += 1;
  }
  EXPECT_EQ(resizes, 0u);
}

TEST(UtilizationPolicyTest, CooldownBoundsResizeRateUnderWildOscillation) {
  // Even load swinging across BOTH watermarks every sample cannot resize
  // more often than once per cooldown window.
  UtilizationPolicy policy;  // cooldown 120 s, samples every 30 s
  std::size_t resizes = 0;
  const int samples = 100;
  for (int i = 0; i < samples; ++i) {
    const int used = (i % 2 == 0) ? 32 : 0;  // 100% then 0%
    const auto d = policy.decide(sample_at(i * 30.0, 2, 16, used, 0, 0));
    if (d.action != ElasticAction::kHold) resizes += 1;
  }
  // 100 samples x 30 s = 3000 s of sim time; at most one resize per 120 s.
  EXPECT_LE(resizes, static_cast<std::size_t>(samples * 30.0 / 120.0) + 1);
  EXPECT_GT(resizes, 0u);
}

// --- DeadlinePolicy ---

TEST(DeadlinePolicyTest, GrowsWhenProjectionMissesTheDeadline) {
  DeadlinePolicyConfig config;
  config.deadline = 100.0;
  DeadlinePolicy policy(config);
  auto s = sample_at(0.0, 1, 16, 16, 50, 50);
  s.predicted_backlog_seconds = 10000.0;  // 625 s on 16 cores
  const auto d = policy.decide(s);
  EXPECT_EQ(d.action, ElasticAction::kGrow);
  EXPECT_EQ(d.nodes, config.grow_step_max);  // deficit far beyond the cap
}

TEST(DeadlinePolicyTest, HoldsWhenOnTrack) {
  DeadlinePolicyConfig config;
  config.deadline = 1000.0;
  DeadlinePolicy policy(config);
  auto s = sample_at(0.0, 2, 16, 20, 4, 4);
  s.predicted_backlog_seconds = 800.0;  // 25 s on 32 cores
  EXPECT_EQ(policy.decide(s).action, ElasticAction::kHold);
}

TEST(DeadlinePolicyTest, ShrinksWithSlackAndEmptyQueue) {
  DeadlinePolicyConfig config;
  config.deadline = 10000.0;
  DeadlinePolicy policy(config);
  const auto d = policy.decide(sample_at(100.0, 4, 16, 2, 0, 0));
  EXPECT_EQ(d.action, ElasticAction::kShrink);
}

// --- make_policy factory ---

TEST(MakePolicyTest, BuildsAllThreePolicies) {
  EXPECT_EQ(make_policy({"backlog", {}})->name(), "backlog");
  EXPECT_EQ(make_policy({"utilization", {}})->name(), "utilization");
  EXPECT_EQ(make_policy({"deadline", {}})->name(), "deadline");
}

TEST(MakePolicyTest, AppliesParameterOverrides) {
  auto policy =
      make_policy({"utilization", {{"high_watermark", 0.5},
                                   {"cooldown", 0.0}}});
  // 60% utilization grows only because the watermark was lowered.
  const auto d = policy->decide(sample_at(0.0, 2, 16, 20, 2, 2));
  EXPECT_EQ(d.action, ElasticAction::kGrow);
}

TEST(MakePolicyTest, UnknownPolicyOrParameterThrows) {
  EXPECT_THROW(make_policy({"magic", {}}), common::ConfigError);
  EXPECT_THROW(make_policy({"backlog", {{"high_watermark", 0.9}}}),
               common::ConfigError);
}

// --- ElasticController against a live simulation ---

class ElasticControllerTest : public ::testing::Test {
 protected:
  ElasticControllerTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 12);
  }

  std::shared_ptr<pilot::Pilot> plain_pilot(int nodes) {
    pilot::PilotDescription pd;
    pd.resource = "slurm://stampede/";
    pd.nodes = nodes;
    pd.runtime = 28800.0;
    pd.backend = pilot::AgentBackend::kPlain;
    return pm_.submit_pilot(pd);
  }

  pilot::ComputeUnitDescription unit(common::Seconds duration) {
    pilot::ComputeUnitDescription cud;
    cud.cores = 1;
    cud.memory_mb = 1024;
    cud.duration = duration;
    return cud;
  }

  pilot::Session session_;
  pilot::PilotManager pm_{session_};
  pilot::UnitManager um_{session_};
};

TEST_F(ElasticControllerTest, GrowsUnderBacklogAndShrinksWhenDrained) {
  auto pilot = plain_pilot(1);
  um_.add_pilot(pilot);

  ElasticControllerConfig config;
  config.sample_interval = 15.0;
  config.min_nodes = 1;
  config.max_nodes = 4;
  config.drain_timeout = 300.0;
  BacklogPolicyConfig bp;
  bp.shrink_spare_nodes = 0;
  ElasticController controller(pm_, pilot,
                               std::make_unique<BacklogPolicy>(bp), config);
  controller.start();

  // 64 one-core units of 300 s against 16 base cores: heavy backlog.
  std::vector<pilot::ComputeUnitDescription> descs(64, unit(300.0));
  auto units = um_.submit(descs);

  session_.engine().run_until(1500.0);
  EXPECT_LE(pilot->live_nodes(), 4);
  EXPECT_GE(controller.counters().grow_decisions, 1u);
  EXPECT_GE(controller.counters().nodes_added, 1);

  // Let the burst finish and the controller shed the grown capacity.
  session_.engine().run_until(12000.0);
  EXPECT_TRUE(um_.all_done());
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), pilot::UnitState::kDone);
  }
  EXPECT_EQ(pilot->live_nodes(), 1);
  EXPECT_GE(controller.counters().shrink_decisions, 1u);
  EXPECT_EQ(controller.counters().nodes_removed,
            controller.counters().nodes_added);
  EXPECT_GE(controller.counters().clean_shrinks, 1u);
  EXPECT_EQ(controller.counters().forced_shrinks, 0u);
}

TEST_F(ElasticControllerTest, MaxNodesCapsGrowth) {
  auto pilot = plain_pilot(1);
  um_.add_pilot(pilot);

  ElasticControllerConfig config;
  config.sample_interval = 15.0;
  config.max_nodes = 2;
  ElasticController controller(pm_, pilot,
                               std::make_unique<BacklogPolicy>(), config);
  controller.start();

  std::vector<pilot::ComputeUnitDescription> descs(128, unit(600.0));
  um_.submit(descs);
  session_.engine().run_until(2000.0);
  EXPECT_LE(pilot->live_nodes(), 2);
  EXPECT_GE(controller.counters().clamped_decisions, 1u);
}

TEST_F(ElasticControllerTest, DefersWhileResizeInFlight) {
  auto pilot = plain_pilot(1);
  um_.add_pilot(pilot);

  ElasticControllerConfig config;
  // Sample much faster than a grow job clears the batch queue, so ticks
  // land while the grow is still pending.
  config.sample_interval = 2.0;
  config.max_nodes = 8;
  ElasticController controller(pm_, pilot,
                               std::make_unique<BacklogPolicy>(), config);
  controller.start();

  std::vector<pilot::ComputeUnitDescription> descs(64, unit(300.0));
  um_.submit(descs);
  session_.engine().run_until(600.0);
  EXPECT_GE(controller.counters().deferred_decisions, 1u);
}

// Regression for the publication race this PR fixed: counters() used to
// hand out a const reference to fields the resize-completion callbacks
// mutate, so a monitoring thread polling the controller while the engine
// runs read unsynchronized memory. The accessors now return snapshots
// taken under the controller mutex; this test does exactly that
// monitor-while-running pattern so TSan guards the fix.
TEST_F(ElasticControllerTest, CountersSafeToPollFromMonitorThread) {
  auto pilot = plain_pilot(1);
  um_.add_pilot(pilot);

  ElasticControllerConfig config;
  config.sample_interval = 15.0;
  config.max_nodes = 4;
  ElasticController controller(pm_, pilot,
                               std::make_unique<BacklogPolicy>(), config);
  controller.start();

  std::vector<pilot::ComputeUnitDescription> descs(64, unit(300.0));
  um_.submit(descs);

  std::atomic<bool> stop{false};
  std::size_t observed_samples = 0;
  std::thread monitor([&] {
    while (!stop.load()) {
      const ElasticCounters snapshot = controller.counters();
      const PilotSample sample = controller.last_sample();
      observed_samples = std::max(observed_samples, snapshot.samples);
      (void)sample;
      std::this_thread::yield();
    }
  });
  session_.engine().run_until(3000.0);
  stop.store(true);
  monitor.join();

  EXPECT_GE(controller.counters().samples, observed_samples);
  EXPECT_GE(controller.counters().grow_decisions, 1u);
}

TEST_F(ElasticControllerTest, TraceCarriesDecisions) {
  auto pilot = plain_pilot(1);
  um_.add_pilot(pilot);
  ElasticControllerConfig config;
  config.sample_interval = 15.0;
  ElasticController controller(pm_, pilot,
                               std::make_unique<BacklogPolicy>(), config);
  controller.start();
  um_.submit(std::vector<pilot::ComputeUnitDescription>(48, unit(300.0)));
  session_.engine().run_until(400.0);
  const auto decision = session_.trace().first("elastic", "decision");
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->attrs.at("policy"), "backlog");
}

TEST_F(ElasticControllerTest, RejectsBadConfiguration) {
  auto pilot = plain_pilot(1);
  EXPECT_THROW(ElasticController(pm_, nullptr,
                                 std::make_unique<BacklogPolicy>()),
               common::ConfigError);
  EXPECT_THROW(ElasticController(pm_, pilot, nullptr), common::ConfigError);
  ElasticControllerConfig config;
  config.sample_interval = 0.0;
  EXPECT_THROW(ElasticController(pm_, pilot,
                                 std::make_unique<BacklogPolicy>(), config),
               common::ConfigError);
}

}  // namespace
}  // namespace hoh::elastic
