#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "elastic/elastic_controller.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

/// End-to-end elasticity: grows pay a real batch-queue pass and a Mode-I
/// bootstrap; shrinks drain gracefully through YARN decommission, HDFS
/// re-replication and Spark executor withdrawal. The invariants under
/// test are the paper's ("coupling the Hadoop layer to the dynamic
/// resource management of the pilot"): grown nodes are *usable* by every
/// backend, and no compute unit or HDFS block is ever lost to a shrink.

namespace hoh::pilot {
namespace {

class ElasticIntegrationTest : public ::testing::Test {
 protected:
  ElasticIntegrationTest() {
    session_.register_machine(cluster::stampede_profile(),
                              hpc::SchedulerKind::kSlurm, 12);
  }

  std::shared_ptr<Pilot> pilot_with(int nodes, AgentBackend backend,
                                    AgentConfig agent_config = {}) {
    PilotDescription pd;
    pd.resource = "slurm://stampede/";
    pd.nodes = nodes;
    pd.runtime = 28800.0;
    pd.backend = backend;
    return pm_.submit_pilot(pd, agent_config);
  }

  ComputeUnitDescription unit(common::Seconds duration,
                              common::MemoryMb memory_mb = 2048) {
    ComputeUnitDescription cud;
    cud.cores = 1;
    cud.memory_mb = memory_mb;
    cud.duration = duration;
    return cud;
  }

  void run_until_active(const std::shared_ptr<Pilot>& pilot,
                        common::Seconds deadline = 600.0) {
    session_.engine().run_until(deadline);
    ASSERT_EQ(pilot->state(), PilotState::kActive);
  }

  Session session_;
  PilotManager pm_{session_};
  UnitManager um_{session_};
};

TEST_F(ElasticIntegrationTest, GrowAddsUsableYarnAndHdfsCapacity) {
  auto pilot = pilot_with(2, AgentBackend::kYarnModeI);
  um_.add_pilot(pilot);
  run_until_active(pilot);

  auto* yc = pilot->agent()->yarn_cluster();
  ASSERT_NE(yc, nullptr);
  const int vcores_before = yc->resource_manager().total_capacity().vcores;
  const auto datanodes_before = yc->hdfs().datanodes().size();

  int added = -1;
  pm_.grow_pilot(pilot, 2, [&added](int n) { added = n; });
  session_.engine().run_until(session_.engine().now() + 300.0);

  EXPECT_EQ(added, 2);
  EXPECT_EQ(pilot->live_nodes(), 4);
  EXPECT_GT(yc->resource_manager().total_capacity().vcores, vcores_before);
  EXPECT_EQ(yc->hdfs().datanodes().size(), datanodes_before + 2);

  // The grown capacity runs real work: more units than the original two
  // nodes could hold in memory at once still finish promptly.
  auto units =
      um_.submit(std::vector<ComputeUnitDescription>(48, unit(30.0)));
  session_.engine().run_until(session_.engine().now() + 2500.0);
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), UnitState::kDone);
  }
}

TEST_F(ElasticIntegrationTest, GrowAddsUsableSparkWorkers) {
  auto pilot = pilot_with(2, AgentBackend::kSparkModeI);
  um_.add_pilot(pilot);
  run_until_active(pilot);

  auto* spark = pilot->agent()->spark_cluster();
  ASSERT_NE(spark, nullptr);
  const auto workers_before = spark->live_worker_count();

  pm_.grow_pilot(pilot, 1);
  session_.engine().run_until(session_.engine().now() + 300.0);
  EXPECT_EQ(spark->live_worker_count(), workers_before + 1);

  auto units =
      um_.submit(std::vector<ComputeUnitDescription>(24, unit(20.0)));
  session_.engine().run_until(session_.engine().now() + 2000.0);
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), UnitState::kDone);
  }
}

TEST_F(ElasticIntegrationTest, GrowPaysQueueWaitWhenTheMachineIsFull) {
  // 12-node machine: a 10-node pilot leaves 2 free, so a 4-node grow has
  // to wait for capacity — elastic growth is not free capacity.
  auto big = pilot_with(10, AgentBackend::kPlain);
  run_until_active(big);
  auto pilot = pilot_with(2, AgentBackend::kPlain);
  session_.engine().run_until(session_.engine().now() + 120.0);
  ASSERT_EQ(pilot->state(), PilotState::kActive);

  int added = -1;
  pm_.grow_pilot(pilot, 4, [&added](int n) { added = n; });
  session_.engine().run_until(session_.engine().now() + 600.0);
  EXPECT_EQ(added, -1);  // still queued behind the 10-node pilot
  EXPECT_EQ(pilot->pending_grow_nodes(), 4);

  big->cancel();
  session_.engine().run_until(session_.engine().now() + 600.0);
  EXPECT_EQ(added, 4);
  EXPECT_EQ(pilot->live_nodes(), 6);
}

TEST_F(ElasticIntegrationTest, ModeIIPilotsCannotGrow) {
  session_.register_machine(cluster::wrangler_profile(),
                            hpc::SchedulerKind::kSge, 8);
  session_.create_dedicated_hadoop("wrangler", 3);
  PilotDescription pd;
  pd.resource = "sge://wrangler/";
  pd.nodes = 1;
  pd.backend = AgentBackend::kYarnModeII;
  auto pilot = pm_.submit_pilot(pd);
  EXPECT_THROW(pm_.grow_pilot(pilot, 1), common::StateError);
}

TEST_F(ElasticIntegrationTest, HeadNodeCanNeverBeDecommissioned) {
  auto pilot = pilot_with(2, AgentBackend::kPlain);
  run_until_active(pilot);
  const std::string head =
      pilot->agent()->allocation().nodes().front()->name();
  EXPECT_THROW(
      pilot->agent()->decommission_nodes({head}, 60.0, nullptr),
      common::ConfigError);
}

TEST_F(ElasticIntegrationTest, GracefulShrinkLosesNoUnitAndNoBlock) {
  auto pilot = pilot_with(2, AgentBackend::kYarnModeI);
  um_.add_pilot(pilot);
  run_until_active(pilot);
  auto* yc = pilot->agent()->yarn_cluster();
  ASSERT_NE(yc, nullptr);

  pm_.grow_pilot(pilot, 2);
  session_.engine().run_until(session_.engine().now() + 300.0);
  ASSERT_EQ(pilot->live_nodes(), 4);

  // Put HDFS blocks on the nodes that will leave.
  const auto& grown = pilot->grow_segments().front().node_names;
  for (std::size_t i = 0; i < grown.size(); ++i) {
    yc->hdfs().create_file("/data/part-" + std::to_string(i),
                           512 * common::kMiB, grown[i]);
  }
  ASSERT_TRUE(yc->hdfs().all_blocks_replicated());

  // Keep the cluster busy across the shrink.
  auto units =
      um_.submit(std::vector<ComputeUnitDescription>(32, unit(25.0)));

  bool released = false;
  bool clean = false;
  pm_.shrink_pilot(pilot, 2, 3600.0, [&](bool c) {
    released = true;
    clean = c;
  });
  session_.engine().run_until(session_.engine().now() + 3600.0);

  EXPECT_TRUE(released);
  EXPECT_TRUE(clean);
  EXPECT_EQ(pilot->live_nodes(), 2);
  EXPECT_EQ(pilot->agent()->drain_timeouts(), 0u);
  // Zero CU loss: every unit finished despite the shrink.
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), UnitState::kDone);
  }
  // Zero block loss: the leaving DataNodes are gone, yet every block
  // still meets its replication target on the survivors.
  EXPECT_TRUE(yc->hdfs().all_blocks_replicated());
  for (const auto& name : grown) {
    const auto& datanodes = yc->hdfs().datanodes();
    EXPECT_EQ(std::find(datanodes.begin(), datanodes.end(), name),
              datanodes.end());
  }
  // The batch allocation actually came back: segments are released.
  for (const auto& segment : pilot->grow_segments()) {
    EXPECT_TRUE(segment.released);
  }
}

TEST_F(ElasticIntegrationTest, ShrinkWaitsForReReplication) {
  // Throttle the decommission monitor hard, so the drain is bounded by
  // HDFS re-replication, not by running work.
  AgentConfig agent_config;
  agent_config.yarn.hdfs.decommission_blocks_per_round = 2;
  auto pilot = pilot_with(2, AgentBackend::kYarnModeI, agent_config);
  run_until_active(pilot);
  auto* yc = pilot->agent()->yarn_cluster();

  pm_.grow_pilot(pilot, 1);
  session_.engine().run_until(session_.engine().now() + 300.0);
  ASSERT_EQ(pilot->live_nodes(), 3);

  // ~40 single-replica blocks living ONLY on the leaving node: at 2
  // copies per 3-second round the drain needs >= 60 s of re-replication.
  const std::string leaving = pilot->grow_segments().front().node_names[0];
  yc->hdfs().create_file("/big", 5 * common::kGiB, leaving, 1);

  const common::Seconds shrink_at = session_.engine().now();
  common::Seconds released_at = -1.0;
  pm_.shrink_pilot(pilot, 1, 7200.0, [&](bool clean) {
    EXPECT_TRUE(clean);
    released_at = session_.engine().now();
  });
  session_.engine().run_until(shrink_at + 3600.0);

  ASSERT_GT(released_at, 0.0);
  EXPECT_GE(released_at - shrink_at, 50.0);
  EXPECT_TRUE(yc->hdfs().all_blocks_replicated());
}

TEST_F(ElasticIntegrationTest, DrainTimeoutPreemptsButLosesNoUnit) {
  // Property-style: even when the drain escalates and preempts running
  // units, every unit still reaches Done — preemption costs wasted work,
  // never lost work.
  auto pilot = pilot_with(1, AgentBackend::kPlain);
  um_.add_pilot(pilot);
  run_until_active(pilot);

  pm_.grow_pilot(pilot, 1);
  session_.engine().run_until(session_.engine().now() + 120.0);
  ASSERT_EQ(pilot->live_nodes(), 2);

  // Long units across both nodes, then a drain far shorter than their
  // runtime: the ones on the leaving node must be preempted.
  auto units =
      um_.submit(std::vector<ComputeUnitDescription>(32, unit(500.0)));
  session_.engine().run_until(session_.engine().now() + 60.0);

  bool released = false;
  bool clean = true;
  pm_.shrink_pilot(pilot, 1, 30.0, [&](bool c) {
    released = true;
    clean = c;
  });
  session_.engine().run_until(session_.engine().now() + 5000.0);

  EXPECT_TRUE(released);
  EXPECT_FALSE(clean);
  EXPECT_EQ(pilot->agent()->drain_timeouts(), 1u);
  EXPECT_EQ(pilot->live_nodes(), 1);
  EXPECT_TRUE(um_.all_done());
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), UnitState::kDone);
  }
  EXPECT_TRUE(
      session_.trace().first("unit", "preempted").has_value());
}

TEST_F(ElasticIntegrationTest, YarnDrainTimeoutRequeuesContainerUnits) {
  // Same preemption property on the YARN dispatch path, where requeueing
  // has to withdraw containers and (for dedicated apps) the AM.
  auto pilot = pilot_with(2, AgentBackend::kYarnModeI);
  um_.add_pilot(pilot);
  run_until_active(pilot);

  pm_.grow_pilot(pilot, 1);
  session_.engine().run_until(session_.engine().now() + 300.0);
  ASSERT_EQ(pilot->live_nodes(), 3);

  auto units =
      um_.submit(std::vector<ComputeUnitDescription>(24, unit(600.0)));
  session_.engine().run_until(session_.engine().now() + 120.0);

  bool released = false;
  pm_.shrink_pilot(pilot, 1, 60.0, [&](bool) { released = true; });
  session_.engine().run_until(session_.engine().now() + 20000.0);

  EXPECT_TRUE(released);
  EXPECT_EQ(pilot->live_nodes(), 2);
  EXPECT_TRUE(um_.all_done());
  for (const auto& u : units) {
    EXPECT_EQ(u->state(), UnitState::kDone);
  }
  auto* yc = pilot->agent()->yarn_cluster();
  ASSERT_NE(yc, nullptr);
  EXPECT_TRUE(yc->hdfs().all_blocks_replicated());
}

TEST_F(ElasticIntegrationTest, ShrinkBelowBaseAllocationThrows) {
  auto pilot = pilot_with(2, AgentBackend::kPlain);
  run_until_active(pilot);
  EXPECT_THROW(pm_.shrink_pilot(pilot, 1, 60.0), common::StateError);
}

}  // namespace
}  // namespace hoh::pilot
