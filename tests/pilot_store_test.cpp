#include "pilot/state_store.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "pilot/agent/agent.h"
#include "pilot/descriptions.h"

namespace hoh::pilot {
namespace {

TEST(StateStoreTest, PutGetRoundTrip) {
  sim::Engine engine;
  StateStore store(engine);
  common::Json doc;
  doc["state"] = "PendingAgent";
  store.put("unit", "unit.0", doc);
  auto got = store.get("unit", "unit.0");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->at("state").as_string(), "PendingAgent");
  EXPECT_FALSE(store.get("unit", "missing").has_value());
  EXPECT_FALSE(store.get("nope", "unit.0").has_value());
}

TEST(StateStoreTest, UpdateMergesFields) {
  sim::Engine engine;
  StateStore store(engine);
  common::Json doc;
  doc["state"] = "PendingAgent";
  doc["pilot"] = "pilot.0";
  store.put("unit", "u", doc);
  store.update("unit", "u", {{"state", common::Json("AgentScheduling")}});
  auto got = store.get("unit", "u");
  EXPECT_EQ(got->at("state").as_string(), "AgentScheduling");
  EXPECT_EQ(got->at("pilot").as_string(), "pilot.0");  // untouched
}

TEST(StateStoreTest, UpdateRejectsIllegalUnitTransition) {
  sim::Engine engine;
  StateStore store(engine);
  common::Json doc;
  doc["state"] = "PendingAgent";
  store.put("unit", "u", doc);
  // PendingAgent -> Executing skips AgentScheduling: not a Fig. 3 edge.
  EXPECT_THROW(store.update("unit", "u", {{"state", common::Json("Executing")}}),
               common::StateError);
  // The rejected write must not have leaked into the document.
  EXPECT_EQ(store.get("unit", "u")->at("state").as_string(), "PendingAgent");
}

TEST(StateStoreTest, UpdateOnlyGatesUnitCollection) {
  sim::Engine engine;
  StateStore store(engine);
  common::Json doc;
  doc["state"] = "whatever";  // pilot docs carry their own state strings
  store.put("pilot", "p", doc);
  store.update("pilot", "p", {{"state", common::Json("anything")}});
  EXPECT_EQ(store.get("pilot", "p")->at("state").as_string(), "anything");
}

TEST(StateStoreTest, UpdateMissingThrows) {
  sim::Engine engine;
  StateStore store(engine);
  EXPECT_THROW(store.update("unit", "nope", {}), common::NotFoundError);
}

TEST(StateStoreTest, QueueFifoAndDrain) {
  sim::Engine engine;
  StateStore store(engine);
  store.queue_push("agent.p0", "a");
  store.queue_push("agent.p0", "b");
  EXPECT_EQ(store.queue_depth("agent.p0"), 2u);
  auto drained = store.queue_pop_all("agent.p0");
  EXPECT_EQ(drained, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(store.queue_depth("agent.p0"), 0u);
  EXPECT_TRUE(store.queue_pop_all("agent.p0").empty());
  EXPECT_TRUE(store.queue_pop_all("never-used").empty());
}

TEST(StateStoreTest, FindAllSorted) {
  sim::Engine engine;
  StateStore store(engine);
  store.put("unit", "b", common::Json(1));
  store.put("unit", "a", common::Json(2));
  auto all = store.find_all("unit");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].first, "a");
}

TEST(StateStoreTest, OpCounting) {
  sim::Engine engine;
  StateStore store(engine);
  const auto before = store.op_count();
  store.put("c", "x", common::Json(1));
  store.get("c", "x");
  store.queue_push("q", "x");
  store.queue_pop_all("q");
  EXPECT_EQ(store.op_count(), before + 4);
}

TEST(UnitJsonTest, RoundTrip) {
  ComputeUnitDescription desc;
  desc.name = "kmeans-map-3";
  desc.executable = "/bin/python";
  desc.arguments = {"kmeans.py", "--iter", "2"};
  desc.cores = 4;
  desc.memory_mb = 3072;
  desc.duration = 123.5;
  desc.is_mpi = true;
  desc.input_staging = {
      StagedFile{saga::Url("file://stampede/points.csv"), 1024}};
  desc.output_staging = {
      StagedFile{saga::Url("file://stampede/out.csv"), 64}};
  desc.preferred_nodes = {"n1", "n2"};

  const ComputeUnitDescription back = unit_from_json(unit_to_json(desc));
  EXPECT_EQ(back.name, desc.name);
  EXPECT_EQ(back.executable, desc.executable);
  EXPECT_EQ(back.arguments, desc.arguments);
  EXPECT_EQ(back.cores, desc.cores);
  EXPECT_EQ(back.memory_mb, desc.memory_mb);
  EXPECT_DOUBLE_EQ(back.duration, desc.duration);
  EXPECT_EQ(back.is_mpi, desc.is_mpi);
  ASSERT_EQ(back.input_staging.size(), 1u);
  EXPECT_EQ(back.input_staging[0].url.str(), "file://stampede/points.csv");
  EXPECT_EQ(back.input_staging[0].size, 1024);
  ASSERT_EQ(back.output_staging.size(), 1u);
  EXPECT_EQ(back.preferred_nodes, desc.preferred_nodes);
}

TEST(UnitJsonTest, SerializedThroughTextParser) {
  // The document survives an actual JSON text round trip (what a real
  // MongoDB wire encoding would do).
  ComputeUnitDescription desc;
  desc.name = "quoted \"name\" with\nnewline";
  desc.duration = 0.25;
  const auto text = unit_to_json(desc).dump();
  const auto back = unit_from_json(common::Json::parse(text));
  EXPECT_EQ(back.name, desc.name);
  EXPECT_DOUBLE_EQ(back.duration, 0.25);
}

}  // namespace
}  // namespace hoh::pilot
