#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "common/error.h"
#include "spark/rdd.h"

namespace hoh::spark {
namespace {

std::vector<int> iota(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(RddOpsTest, UnionConcatenates) {
  SparkEnv env(2);
  auto a = Rdd<int>::parallelize(env, {1, 2, 3}, 2);
  auto b = Rdd<int>::parallelize(env, {4, 5}, 1);
  auto u = a.union_with(b);
  EXPECT_EQ(u.count(), 5u);
  EXPECT_EQ(u.num_partitions(), 3u);
  EXPECT_EQ(u.fold(0, [](int x, int y) { return x + y; }), 15);
}

TEST(RddOpsTest, DistinctRemovesDuplicates) {
  SparkEnv env(2);
  auto rdd = Rdd<int>::parallelize(env, {3, 1, 3, 2, 1, 1}, 3).distinct();
  EXPECT_EQ(rdd.collect(), (std::vector<int>{1, 2, 3}));
}

TEST(RddOpsTest, SampleDeterministicAndProportional) {
  SparkEnv env(4);
  auto rdd = Rdd<int>::parallelize(env, iota(10000), 8);
  auto s1 = rdd.sample(0.3, 7).count();
  auto s2 = rdd.sample(0.3, 7).count();
  EXPECT_EQ(s1, s2);
  EXPECT_NEAR(static_cast<double>(s1), 3000.0, 200.0);
  EXPECT_EQ(rdd.sample(0.0).count(), 0u);
  EXPECT_EQ(rdd.sample(1.0).count(), 10000u);
}

TEST(RddOpsTest, ZipWithIndexIsGloballySequential) {
  SparkEnv env(2);
  auto zipped =
      Rdd<std::string>::parallelize(env, {"a", "b", "c", "d"}, 3)
          .zip_with_index()
          .collect();
  ASSERT_EQ(zipped.size(), 4u);
  for (std::size_t i = 0; i < zipped.size(); ++i) {
    EXPECT_EQ(zipped[i].second, i);
  }
  EXPECT_EQ(zipped[2].first, "c");
}

TEST(RddOpsTest, TakeAndFirst) {
  SparkEnv env(2);
  auto rdd = Rdd<int>::parallelize(env, iota(100), 7);
  EXPECT_EQ(rdd.take(3), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(rdd.take(1000).size(), 100u);
  EXPECT_EQ(rdd.first(), 0);
  auto empty = Rdd<int>::parallelize(env, {}, 2);
  EXPECT_TRUE(empty.take(5).empty());
  EXPECT_THROW(empty.first(), common::StateError);
}

TEST(RddOpsTest, GroupByKeyGathersValues) {
  SparkEnv env(2);
  auto rdd = Rdd<std::pair<std::string, int>>::parallelize(
      env, {{"a", 1}, {"b", 2}, {"a", 3}}, 2);
  auto grouped = collect_as_map(group_by_key(rdd));
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped.at("a"), (std::vector<int>{1, 3}));
  EXPECT_EQ(grouped.at("b"), (std::vector<int>{2}));
}

TEST(RddOpsTest, MapValuesKeepsKeys) {
  SparkEnv env(2);
  auto rdd = Rdd<std::pair<std::string, int>>::parallelize(
      env, {{"x", 2}, {"y", 5}}, 2);
  auto doubled = collect_as_map(
      map_values(rdd, [](const int& v) { return v * 10; }));
  EXPECT_EQ(doubled.at("x"), 20);
  EXPECT_EQ(doubled.at("y"), 50);
}

TEST(RddOpsTest, InnerJoinMatchesKeys) {
  SparkEnv env(2);
  auto users = Rdd<std::pair<int, std::string>>::parallelize(
      env, {{1, "ada"}, {2, "bob"}, {3, "eve"}}, 2);
  auto scores = Rdd<std::pair<int, double>>::parallelize(
      env, {{1, 9.5}, {3, 7.0}, {4, 1.0}}, 2);
  auto joined = join(users, scores).collect();
  std::map<int, std::pair<std::string, double>> by_key;
  for (const auto& [k, vw] : joined) by_key[k] = vw;
  ASSERT_EQ(by_key.size(), 2u);  // keys 2 and 4 have no partner
  EXPECT_EQ(by_key.at(1).first, "ada");
  EXPECT_DOUBLE_EQ(by_key.at(1).second, 9.5);
  EXPECT_EQ(by_key.at(3).first, "eve");
}

TEST(RddOpsTest, JoinProducesCrossProductPerKey) {
  SparkEnv env(2);
  auto left = Rdd<std::pair<int, int>>::parallelize(
      env, {{1, 10}, {1, 20}}, 1);
  auto right = Rdd<std::pair<int, int>>::parallelize(
      env, {{1, 100}, {1, 200}, {1, 300}}, 1);
  EXPECT_EQ(join(left, right).count(), 6u);  // 2 x 3
}

TEST(RddOpsTest, CogroupIncludesOneSidedKeys) {
  SparkEnv env(2);
  auto left = Rdd<std::pair<std::string, int>>::parallelize(
      env, {{"a", 1}, {"b", 2}}, 1);
  auto right = Rdd<std::pair<std::string, int>>::parallelize(
      env, {{"b", 20}, {"c", 30}}, 1);
  auto groups = collect_as_map(cogroup(left, right));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.at("a").first.size(), 1u);
  EXPECT_TRUE(groups.at("a").second.empty());
  EXPECT_EQ(groups.at("b").first.size(), 1u);
  EXPECT_EQ(groups.at("b").second.size(), 1u);
  EXPECT_TRUE(groups.at("c").first.empty());
  EXPECT_EQ(groups.at("c").second.size(), 1u);
}

TEST(RddOpsTest, CountByKey) {
  SparkEnv env(2);
  std::vector<std::pair<std::string, int>> pairs;
  for (int i = 0; i < 30; ++i) pairs.push_back({i % 2 ? "odd" : "even", i});
  auto counts = count_by_key(
      Rdd<std::pair<std::string, int>>::parallelize(env, pairs, 4));
  EXPECT_EQ(counts.at("even"), 15u);
  EXPECT_EQ(counts.at("odd"), 15u);
}

TEST(RddOpsTest, ChainedRelationalPipeline) {
  // A small "log analysis": parse -> filter -> join with a lookup ->
  // aggregate. Exercises many ops composed.
  SparkEnv env(4);
  std::vector<std::string> log_lines;
  for (int i = 0; i < 200; ++i) {
    log_lines.push_back("host" + std::to_string(i % 5) + " " +
                        std::to_string(i % 7 == 0 ? 500 : 200));
  }
  auto events =
      Rdd<std::string>::parallelize(env, log_lines, 8)
          .map([](const std::string& line) {
            const auto space = line.find(' ');
            return std::pair<std::string, int>(
                line.substr(0, space),
                std::stoi(line.substr(space + 1)));
          })
          .filter([](const std::pair<std::string, int>& kv) {
            return kv.second >= 500;  // errors only
          });
  auto owners = Rdd<std::pair<std::string, std::string>>::parallelize(
      env,
      {{"host0", "team-a"}, {"host1", "team-a"}, {"host2", "team-b"},
       {"host3", "team-b"}, {"host4", "team-c"}},
      2);
  // join: (host, (code, team)) -> (team, 1) -> counts per team.
  auto errors_per_team = collect_as_map(reduce_by_key(
      join(events, owners)
          .map([](const std::pair<std::string,
                                  std::pair<int, std::string>>& row) {
            return std::pair<std::string, int>(row.second.second, 1);
          }),
      [](int a, int b) { return a + b; }));
  std::size_t total_errors = 0;
  for (const auto& [team, n] : errors_per_team) {
    total_errors += static_cast<std::size_t>(n);
  }
  // i % 7 == 0 for i in [0, 200): 29 error lines.
  EXPECT_EQ(total_errors, 29u);
  EXPECT_EQ(errors_per_team.size(), 3u);  // all three teams saw errors
  // Cross-check against the per-host counts.
  auto per_host = count_by_key(events);
  std::size_t total = 0;
  for (const auto& [host, n] : per_host) total += n;
  EXPECT_EQ(total, 29u);
}

}  // namespace
}  // namespace hoh::spark
