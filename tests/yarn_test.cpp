#include <gtest/gtest.h>

#include "common/error.h"
#include "yarn/application_master.h"
#include "yarn/resource_manager.h"
#include "yarn/yarn_cluster.h"

namespace hoh::yarn {
namespace {

/// Builds a 3-node allocation on a generic profile.
class YarnTest : public ::testing::Test {
 protected:
  YarnTest() : machine_(cluster::generic_profile(3, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
};

TEST_F(YarnTest, NormalizeRoundsToMinimum) {
  YarnConfig cfg;
  cfg.minimum_allocation = {1024, 1};
  cfg.maximum_allocation = {8192, 8};
  EXPECT_EQ(cfg.normalize({100, 1}).memory_mb, 1024);
  EXPECT_EQ(cfg.normalize({1500, 1}).memory_mb, 2048);
  EXPECT_EQ(cfg.normalize({100000, 20}).memory_mb, 8192);
  EXPECT_EQ(cfg.normalize({100000, 20}).vcores, 8);
}

TEST_F(YarnTest, NodeManagerCapacityDefaults) {
  YarnConfig cfg;
  NodeManager nm(engine_, cfg, allocation_.nodes()[0]);
  EXPECT_EQ(nm.capacity().vcores, 8);
  EXPECT_EQ(nm.capacity().memory_mb, 16 * 1024 * 7 / 8);
}

TEST_F(YarnTest, AmLifecycleTwoStageAllocation) {
  ResourceManager rm(engine_, allocation_);
  double am_started_at = -1.0;
  AppDescriptor app;
  app.name = "radical-yarn-app";
  app.on_am_start = [&](ApplicationMaster& am) {
    am_started_at = engine_.now();
    am.unregister(true);
  };
  const auto app_id = rm.submit_application(std::move(app));
  EXPECT_EQ(rm.application(app_id).state, AppState::kSubmitted);
  engine_.run_until(60.0);
  EXPECT_EQ(rm.application(app_id).state, AppState::kFinished);
  // AM start pays: scheduler pass + AM launch + registration.
  EXPECT_GE(am_started_at, rm.config().am_launch_time +
                               rm.config().am_register_time);
  rm.shutdown();
}

TEST_F(YarnTest, FullTaskContainerFlow) {
  ResourceManager rm(engine_, allocation_);
  double task_running_at = -1.0;
  std::string task_node;
  AppDescriptor app;
  app.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    req.resource = {2048, 1};
    am.request_containers(1, req, [&](const Container& c) {
      task_node = c.node;
      am.launch(c.id, [&, id = c.id] {
        task_running_at = engine_.now();
        am.complete_container(id);
        am.unregister(true);
      });
    });
  };
  const auto app_id = rm.submit_application(std::move(app));
  engine_.run_until(120.0);
  EXPECT_EQ(rm.application(app_id).state, AppState::kFinished);
  EXPECT_GT(task_running_at, 0.0);
  EXPECT_FALSE(task_node.empty());
  // Everything released.
  EXPECT_EQ(rm.total_allocated().memory_mb, 0);
  EXPECT_EQ(rm.total_allocated().vcores, 0);
  rm.shutdown();
}

TEST_F(YarnTest, CuStartupOverheadIsTensOfSeconds) {
  // The Fig. 5 inset claim: a YARN-executed Compute-Unit pays the
  // two-stage AM + container allocation, far more than a fork.
  ResourceManager rm(engine_, allocation_);
  double payload_at = -1.0;
  AppDescriptor app;
  app.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    am.request_containers(1, req, [&](const Container& c) {
      am.launch(c.id, [&] { payload_at = engine_.now(); });
    });
  };
  rm.submit_application(std::move(app));
  engine_.run_until(120.0);
  ASSERT_GT(payload_at, 0.0);
  EXPECT_GE(payload_at, 8.0);   // well above an HPC fork
  EXPECT_LE(payload_at, 60.0);  // but bounded
  rm.shutdown();
}

TEST_F(YarnTest, PreferredNodePlacement) {
  ResourceManager rm(engine_, allocation_);
  std::string placed_node;
  AppDescriptor app;
  app.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    req.preferred_nodes = {"n2"};
    am.request_containers(1, req, [&](const Container& c) {
      placed_node = c.node;
    });
  };
  rm.submit_application(std::move(app));
  engine_.run_until(60.0);
  EXPECT_EQ(placed_node, "n2");
  rm.shutdown();
}

TEST_F(YarnTest, StrictLocalityWaitsForBusyNode) {
  YarnConfig cfg;
  cfg.nm_memory_mb = 4096;  // small NMs so we can fill one node
  ResourceManager rm(engine_, allocation_, cfg);
  std::string strict_node;
  AppDescriptor filler;
  filler.on_am_start = [&](ApplicationMaster& am) {
    // Occupy all of n0 (AM may land anywhere).
    ContainerRequest req;
    req.resource = {4096, 1};
    req.preferred_nodes = {"n0"};
    req.relax_locality = false;
    am.request_containers(1, req, [&](const Container& c) {
      am.launch(c.id, [] {});
    });
  };
  rm.submit_application(std::move(filler));
  engine_.run_until(60.0);

  AppDescriptor strict;
  strict.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    req.resource = {4096, 1};
    req.preferred_nodes = {"n0"};
    req.relax_locality = false;  // must wait: n0 is full
    am.request_containers(1, req, [&](const Container& c) {
      strict_node = c.node;
    });
  };
  rm.submit_application(std::move(strict));
  engine_.run_until(120.0);
  EXPECT_TRUE(strict_node.empty());  // still waiting, no fallback
  rm.shutdown();
}

TEST_F(YarnTest, MemoryAwareSchedulingRefusesOverCommit) {
  // 3 nodes x 14336 MB NM capacity: 5 x 8192 MB containers do not fit
  // (one per node + AM), even though plenty of cores remain — this is the
  // memory dimension the paper's scheduler extension adds.
  YarnConfig cfg;
  ResourceManager rm(engine_, allocation_, cfg);
  int granted = 0;
  AppDescriptor app;
  app.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    req.resource = {8192, 1};
    am.request_containers(5, req,
                          [&](const Container&) { ++granted; });
  };
  rm.submit_application(std::move(app));
  engine_.run_until(120.0);
  EXPECT_LT(granted, 5);
  EXPECT_GE(granted, 3);
  rm.shutdown();
}

TEST_F(YarnTest, KillApplicationReleasesEverything) {
  ResourceManager rm(engine_, allocation_);
  std::string app_id;
  AppDescriptor app;
  app.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    am.request_containers(2, req, [&am](const Container& c) {
      am.launch(c.id, [] {});
    });
  };
  app_id = rm.submit_application(std::move(app));
  engine_.run_until(60.0);
  ASSERT_EQ(rm.application(app_id).state, AppState::kRunning);
  rm.kill_application(app_id);
  EXPECT_EQ(rm.application(app_id).state, AppState::kKilled);
  EXPECT_EQ(rm.total_allocated().memory_mb, 0);
  rm.shutdown();
}

TEST_F(YarnTest, ClusterMetricsJson) {
  ResourceManager rm(engine_, allocation_);
  auto m = rm.cluster_metrics().at("clusterMetrics");
  EXPECT_EQ(m.at("activeNodes").as_int(), 3);
  EXPECT_EQ(m.at("totalVirtualCores").as_int(), 24);
  EXPECT_EQ(m.at("allocatedMB").as_int(), 0);
  const auto total = m.at("totalMB").as_int();
  EXPECT_EQ(m.at("availableMB").as_int(), total);
  rm.shutdown();
}

TEST_F(YarnTest, SchedulerInfoShowsQueues) {
  ResourceManager rm(engine_, allocation_, YarnConfig{},
                     {{"default", 0.7}, {"analytics", 0.3}});
  auto queues = rm.scheduler_info().at("scheduler").at("queues").as_array();
  ASSERT_EQ(queues.size(), 2u);
  EXPECT_EQ(queues[0].at("queueName").as_string(), "default");
  rm.shutdown();
}

TEST_F(YarnTest, InvalidQueueRejected) {
  ResourceManager rm(engine_, allocation_);
  AppDescriptor app;
  app.queue = "nope";
  EXPECT_THROW(rm.submit_application(std::move(app)), common::ConfigError);
  rm.shutdown();
}

TEST_F(YarnTest, OverCapacityQueueConfigRejected) {
  EXPECT_THROW(ResourceManager(engine_, allocation_, YarnConfig{},
                               {{"a", 0.8}, {"b", 0.4}}),
               common::ConfigError);
}

TEST_F(YarnTest, PreemptionRebalancesQueues) {
  YarnConfig cfg;
  cfg.preemption_enabled = true;
  ResourceManager rm(engine_, allocation_, cfg,
                     {{"prod", 0.5}, {"ad-hoc", 0.5}});
  // The ad-hoc app grabs the whole cluster.
  int adhoc_granted = 0;
  bool preempted = false;
  AppDescriptor hog;
  hog.queue = "ad-hoc";
  hog.on_am_start = [&](ApplicationMaster& am) {
    am.on_preempted([&](const Container&) { preempted = true; });
    ContainerRequest req;
    req.resource = {8192, 2};
    am.request_containers(5, req, [&](const Container& c) {
      ++adhoc_granted;
      am.launch(c.id, [] {});
    });
  };
  rm.submit_application(std::move(hog));
  engine_.run_until(60.0);
  ASSERT_GE(adhoc_granted, 3);

  // A prod app arrives; preemption must free resources for it.
  int prod_granted = 0;
  AppDescriptor prod;
  prod.queue = "prod";
  prod.on_am_start = [&](ApplicationMaster& am) {
    ContainerRequest req;
    req.resource = {8192, 2};
    am.request_containers(2, req,
                          [&](const Container&) { ++prod_granted; });
  };
  rm.submit_application(std::move(prod));
  engine_.run_until(200.0);
  EXPECT_TRUE(preempted);
  EXPECT_GE(prod_granted, 1);
  rm.shutdown();
}

TEST_F(YarnTest, YarnClusterFacadeBringsUpHdfsAndRm) {
  YarnCluster cluster(engine_, machine_, allocation_);
  EXPECT_EQ(cluster.hdfs().datanodes().size(), 3u);
  EXPECT_EQ(cluster.resource_manager().node_count(), 3u);
  cluster.hdfs().create_file("/input", 64 * common::kMiB, "n0");
  EXPECT_TRUE(cluster.hdfs().exists("/input"));
  cluster.shutdown();
}

TEST_F(YarnTest, SubmitAfterShutdownThrows) {
  ResourceManager rm(engine_, allocation_);
  rm.shutdown();
  EXPECT_THROW(rm.submit_application(AppDescriptor{}), common::StateError);
}

}  // namespace
}  // namespace hoh::yarn
