#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace hoh::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(EngineTest, SameTimestampFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, NestedScheduling) {
  Engine e;
  double inner_time = -1.0;
  e.schedule(1.0, [&] {
    e.schedule(2.5, [&] { inner_time = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(inner_time, 3.5);
}

TEST(EngineTest, NegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.schedule(-1.0, [] {}), common::ConfigError);
}

TEST(EngineTest, ScheduleAtPastThrows) {
  Engine e;
  e.schedule(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), common::ConfigError);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto h = e.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine e;
  int count = 0;
  e.schedule(1.0, [&] { ++count; });
  e.schedule(2.0, [&] { ++count; });
  e.schedule(10.0, [&] { ++count; });
  const std::size_t ran = e.run_until(5.0);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);  // clock advanced to the horizon
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(EngineTest, RunUntilInclusiveOfBoundary) {
  Engine e;
  bool fired = false;
  e.schedule(5.0, [&] { fired = true; });
  e.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(EngineTest, StepExecutesOne) {
  Engine e;
  int count = 0;
  e.schedule(1.0, [&] { ++count; });
  e.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(EngineTest, MaxEventsBound) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) e.schedule(1.0, [&] { ++count; });
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(EngineTest, PeriodicFiresRepeatedly) {
  Engine e;
  int fires = 0;
  EventHandle h;
  h = e.schedule_periodic(1.0, [&] {
    ++fires;
    if (fires == 5) e.cancel(h);
  });
  e.run();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(EngineTest, PeriodicCancelFromOutside) {
  Engine e;
  int fires = 0;
  auto h = e.schedule_periodic(1.0, [&] { ++fires; });
  e.schedule(3.5, [&] { e.cancel(h); });
  e.run();
  EXPECT_EQ(fires, 3);
}

TEST(EngineTest, PeriodicZeroPeriodThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_periodic(0.0, [] {}), common::ConfigError);
}

TEST(EngineTest, ExecutedCounter) {
  Engine e;
  e.schedule(1.0, [] {});
  e.schedule(2.0, [] {});
  e.run();
  EXPECT_EQ(e.executed(), 2u);
}

TEST(EngineTest, DeterministicReplay) {
  auto run_once = [] {
    Engine e;
    std::vector<double> times;
    for (int i = 0; i < 50; ++i) {
      e.schedule(static_cast<double>((i * 7) % 13), [&times, &e] {
        times.push_back(e.now());
      });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hoh::sim
