#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace hoh::sim {
namespace {

TEST(EngineTest, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(3.0, [&] { order.push_back(3); });
  e.schedule(1.0, [&] { order.push_back(1); });
  e.schedule(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
}

TEST(EngineTest, SameTimestampFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EngineTest, NestedScheduling) {
  Engine e;
  double inner_time = -1.0;
  e.schedule(1.0, [&] {
    e.schedule(2.5, [&] { inner_time = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(inner_time, 3.5);
}

TEST(EngineTest, NegativeDelayThrows) {
  Engine e;
  EXPECT_THROW(e.schedule(-1.0, [] {}), common::ConfigError);
}

TEST(EngineTest, ScheduleAtPastThrows) {
  Engine e;
  e.schedule(5.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(1.0, [] {}), common::ConfigError);
}

TEST(EngineTest, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto h = e.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(h));
  EXPECT_FALSE(e.cancel(h));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(fired);
}

TEST(EngineTest, RunUntilStopsAtHorizon) {
  Engine e;
  int count = 0;
  e.schedule(1.0, [&] { ++count; });
  e.schedule(2.0, [&] { ++count; });
  e.schedule(10.0, [&] { ++count; });
  const std::size_t ran = e.run_until(5.0);
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);  // clock advanced to the horizon
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
}

TEST(EngineTest, RunUntilInclusiveOfBoundary) {
  Engine e;
  bool fired = false;
  e.schedule(5.0, [&] { fired = true; });
  e.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(EngineTest, StepExecutesOne) {
  Engine e;
  int count = 0;
  e.schedule(1.0, [&] { ++count; });
  e.schedule(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(EngineTest, MaxEventsBound) {
  Engine e;
  int count = 0;
  for (int i = 0; i < 10; ++i) e.schedule(1.0, [&] { ++count; });
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(EngineTest, PeriodicFiresRepeatedly) {
  Engine e;
  int fires = 0;
  EventHandle h;
  h = e.schedule_periodic(1.0, [&] {
    ++fires;
    if (fires == 5) e.cancel(h);
  });
  e.run();
  EXPECT_EQ(fires, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(EngineTest, PeriodicCancelFromOutside) {
  Engine e;
  int fires = 0;
  auto h = e.schedule_periodic(1.0, [&] { ++fires; });
  e.schedule(3.5, [&] { e.cancel(h); });
  e.run();
  EXPECT_EQ(fires, 3);
}

TEST(EngineTest, PeriodicZeroPeriodThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_periodic(0.0, [] {}), common::ConfigError);
}

TEST(EngineTest, ExecutedCounter) {
  Engine e;
  e.schedule(1.0, [] {});
  e.schedule(2.0, [] {});
  e.run();
  EXPECT_EQ(e.executed(), 2u);
}

TEST(EngineTest, DeterministicReplay) {
  auto run_once = [] {
    Engine e;
    std::vector<double> times;
    for (int i = 0; i < 50; ++i) {
      e.schedule(static_cast<double>((i * 7) % 13), [&times, &e] {
        times.push_back(e.now());
      });
    }
    e.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTest, PendingAccurateAcrossCancellation) {
  Engine e;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(e.schedule(static_cast<double>(i + 1), [] {}));
  }
  EXPECT_EQ(e.pending(), 20u);
  for (int i = 0; i < 10; ++i) e.cancel(handles[static_cast<std::size_t>(i)]);
  EXPECT_EQ(e.pending(), 10u);
  // Double-cancel must not double-count.
  for (int i = 0; i < 10; ++i) e.cancel(handles[static_cast<std::size_t>(i)]);
  EXPECT_EQ(e.pending(), 10u);
  e.run();
  EXPECT_EQ(e.pending(), 0u);
  EXPECT_EQ(e.executed(), 10u);
}

TEST(EngineTest, PendingAccurateForCancelledPeriodicSeries) {
  Engine e;
  int fires = 0;
  EventHandle p = e.schedule_periodic(1.0, [&] { ++fires; });
  EXPECT_EQ(e.pending(), 1u);
  e.run_until(3.5);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(e.pending(), 1u);  // the next occurrence
  e.cancel(p);
  EXPECT_EQ(e.pending(), 0u);
  e.run();
  EXPECT_EQ(fires, 3);
}

TEST(EngineTest, PeriodicCancelFromWithinOwnCallback) {
  Engine e;
  int fires = 0;
  EventHandle p;
  p = e.schedule_periodic(1.0, [&] {
    ++fires;
    if (fires == 2) e.cancel(p);
  });
  e.run_until(10.0);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(EngineTest, CompactionPurgesLazilyCancelledEntries) {
  Engine e;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(e.schedule(static_cast<double>(i + 1), [] {}));
  }
  EXPECT_EQ(e.compactions(), 0u);
  // Cancelling more than half the queue must trigger a purge, after
  // which the cancelled entries are gone from the heap entirely.
  for (int i = 0; i < 60; ++i) e.cancel(handles[static_cast<std::size_t>(i)]);
  EXPECT_GE(e.compactions(), 1u);
  EXPECT_EQ(e.pending(), 40u);
  e.run();
  EXPECT_EQ(e.executed(), 40u);
}

TEST(EngineTest, CompactionPreservesOrderAndFifo) {
  Engine e;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 50; ++i) {
    doomed.push_back(e.schedule(1.0, [] {}));
  }
  for (int i = 0; i < 10; ++i) {
    e.schedule(2.0, [&order, i] { order.push_back(i); });
  }
  for (auto& h : doomed) e.cancel(h);  // forces a compaction
  EXPECT_GE(e.compactions(), 1u);
  e.run();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(DeadlineTimerTest, FiresAtDeadline) {
  Engine e;
  double fired_at = -1.0;
  DeadlineTimer t(e, [&] { fired_at = e.now(); });
  EXPECT_FALSE(t.armed());
  t.arm(5.0);
  EXPECT_TRUE(t.armed());
  EXPECT_DOUBLE_EQ(t.deadline(), 5.0);
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
  EXPECT_FALSE(t.armed());
}

TEST(DeadlineTimerTest, RearmPushesDeadlineOut) {
  Engine e;
  int fires = 0;
  double fired_at = -1.0;
  DeadlineTimer t(e, [&] { ++fires; fired_at = e.now(); });
  t.arm(5.0);
  e.schedule(3.0, [&] { t.arm(5.0); });  // activity at t=3 renews the lease
  e.run();
  EXPECT_EQ(fires, 1);
  EXPECT_DOUBLE_EQ(fired_at, 8.0);  // 3.0 + 5.0, not 5.0
}

TEST(DeadlineTimerTest, CancelPreventsFire) {
  Engine e;
  int fires = 0;
  DeadlineTimer t(e, [&] { ++fires; });
  t.arm(5.0);
  t.cancel();
  t.cancel();  // idempotent
  EXPECT_FALSE(t.armed());
  e.run();
  EXPECT_EQ(fires, 0);
}

TEST(DeadlineTimerTest, RearmFromOwnCallback) {
  Engine e;
  std::vector<double> fires;
  DeadlineTimer t;
  t.bind(e, [&] {
    fires.push_back(e.now());
    if (fires.size() < 3) t.arm(2.0);
  });
  t.arm(2.0);
  e.run();
  EXPECT_EQ(fires, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(DeadlineTimerTest, DestructorCancels) {
  Engine e;
  int fires = 0;
  {
    DeadlineTimer t(e, [&] { ++fires; });
    t.arm(1.0);
  }
  e.run();
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(e.pending(), 0u);
}

TEST(DeadlineTimerTest, ArmUnboundThrows) {
  DeadlineTimer t;
  EXPECT_THROW(t.arm(1.0), common::ConfigError);
}

}  // namespace
}  // namespace hoh::sim
