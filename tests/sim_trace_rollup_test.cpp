#include "sim/trace.h"

#include <gtest/gtest.h>

/// Trace rollup (DESIGN.md §13): per-event storage for a category is
/// replaced by O(1) counters so a 1M-unit run doesn't hold millions of
/// TraceEvents; first()/last() keep working off the counters.

namespace hoh::sim {
namespace {

TEST(TraceRollupTest, RecordFoldsIntoCounters) {
  Trace trace;
  trace.enable_rollup("unit");
  trace.record(1.0, "unit", "Executing", {{"unit", "u.0"}});
  trace.record(2.0, "unit", "Executing", {{"unit", "u.1"}});
  trace.record(5.0, "unit", "Done", {{"unit", "u.0"}});
  // No per-event storage for the rolled category...
  EXPECT_TRUE(trace.find("unit").empty());
  // ...but the counters carry count / first / last.
  const auto exec = trace.rollup("unit", "Executing");
  EXPECT_EQ(exec.count, 2u);
  EXPECT_DOUBLE_EQ(exec.first, 1.0);
  EXPECT_DOUBLE_EQ(exec.last, 2.0);
  EXPECT_EQ(trace.rollup("unit", "Done").count, 1u);
  EXPECT_EQ(trace.rollup("unit", "Missing").count, 0u);
}

TEST(TraceRollupTest, OtherCategoriesStillRecordEvents) {
  Trace trace;
  trace.enable_rollup("unit");
  trace.record(1.0, "pilot", "agent_started", {});
  trace.record(2.0, "unit", "Done", {});
  EXPECT_EQ(trace.find("pilot").size(), 1u);
  EXPECT_TRUE(trace.find("unit").empty());
}

TEST(TraceRollupTest, FirstAndLastSynthesizeFromCounters) {
  Trace trace;
  trace.enable_rollup("unit");
  trace.record(3.0, "unit", "Done", {});
  trace.record(9.0, "unit", "Done", {});
  trace.record(1.0, "unit", "Executing", {});
  const auto first_done = trace.first("unit", "Done");
  ASSERT_TRUE(first_done.has_value());
  EXPECT_DOUBLE_EQ(first_done->time, 3.0);
  EXPECT_EQ(first_done->name, "Done");
  const auto last_done = trace.last("unit", "Done");
  ASSERT_TRUE(last_done.has_value());
  EXPECT_DOUBLE_EQ(last_done->time, 9.0);
  // Name-free queries pick the earliest / latest across names.
  EXPECT_DOUBLE_EQ(trace.first("unit", "")->time, 1.0);
  EXPECT_DOUBLE_EQ(trace.last("unit", "")->time, 9.0);
  EXPECT_FALSE(trace.first("unit", "Nope").has_value());
}

TEST(TraceRollupTest, SpansFoldIntoStats) {
  Trace trace;
  trace.enable_rollup("unit");
  trace.begin_span(0.0, "unit", "startup", "u.0");
  trace.end_span(2.0, "unit", "startup", "u.0");
  trace.begin_span(1.0, "unit", "startup", "u.1");
  trace.end_span(7.0, "unit", "startup", "u.1");
  EXPECT_TRUE(trace.find_spans("unit", "startup").empty());
  const auto stats = trace.span_stats("unit", "startup");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_DOUBLE_EQ(stats.min, 2.0);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_DOUBLE_EQ(stats.total, 8.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  EXPECT_EQ(trace.span_stats("unit", "other").count, 0u);
}

TEST(TraceRollupTest, ClearResetsRollups) {
  Trace trace;
  trace.enable_rollup("unit");
  trace.record(1.0, "unit", "Done", {});
  trace.begin_span(0.0, "unit", "startup", "k");
  trace.end_span(1.0, "unit", "startup", "k");
  trace.clear();
  EXPECT_EQ(trace.rollup("unit", "Done").count, 0u);
  EXPECT_EQ(trace.span_stats("unit", "startup").count, 0u);
  // Rollup stays enabled for the category after clear().
  trace.record(4.0, "unit", "Done", {});
  EXPECT_TRUE(trace.find("unit").empty());
  EXPECT_EQ(trace.rollup("unit", "Done").count, 1u);
}

}  // namespace
}  // namespace hoh::sim
