// Codec property tests (DESIGN.md §14): every message type round-trips
// through pack -> frame -> try_decode_frame -> unpack unchanged, and a
// hostile stream — truncated at every byte, corrupted length, wrong
// magic/version, random garbage — produces a CodecError, never UB, a
// silent partial read, or an allocation driven by a corrupt length.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "common/random.h"
#include "net/json_codec.h"
#include "net/message.h"

namespace hoh::net {
namespace {

/// pack -> encode_frame -> try_decode_frame -> open_envelope.
template <typename M>
M wire_round_trip(const M& msg) {
  const std::vector<std::uint8_t> frame = encode_frame(make_envelope(msg));
  Envelope decoded;
  const std::size_t used =
      try_decode_frame(frame.data(), frame.size(), &decoded);
  EXPECT_EQ(used, frame.size());
  EXPECT_EQ(decoded.type, M::kType);
  return open_envelope<M>(decoded);
}

TEST(NetCodecRoundTrip, AllocatePlane) {
  AllocateRequest areq;
  areq.container_id = "container_01_000042";
  areq.app_id = "application_7";
  areq.node = "c401-002";
  areq.memory_mb = 2048;
  areq.vcores = 4;
  areq.is_am = true;
  const auto areq2 = wire_round_trip(areq);
  EXPECT_EQ(areq2.container_id, areq.container_id);
  EXPECT_EQ(areq2.app_id, areq.app_id);
  EXPECT_EQ(areq2.node, areq.node);
  EXPECT_EQ(areq2.memory_mb, areq.memory_mb);
  EXPECT_EQ(areq2.vcores, areq.vcores);
  EXPECT_EQ(areq2.is_am, areq.is_am);

  const auto arep = wire_round_trip(AllocateReply{true, "c401-002"});
  EXPECT_TRUE(arep.ok);
  EXPECT_EQ(arep.node, "c401-002");

  const auto launch = wire_round_trip(
      LaunchRequest{"c401-002", "container_01_000042", 0xdeadbeefcafeull});
  EXPECT_EQ(launch.node, "c401-002");
  EXPECT_EQ(launch.container_id, "container_01_000042");
  EXPECT_EQ(launch.correlation, 0xdeadbeefcafeull);

  const auto running =
      wire_round_trip(ContainerRunning{"container_01_000042", 7});
  EXPECT_EQ(running.container_id, "container_01_000042");
  EXPECT_EQ(running.correlation, 7u);

  const auto release =
      wire_round_trip(ReleaseRequest{"c401-002", "container_01_000042", 3});
  EXPECT_EQ(release.node, "c401-002");
  EXPECT_EQ(release.final_state, 3);

  const auto probe = wire_round_trip(NodeProbe{"c401-002"});
  EXPECT_EQ(probe.node, "c401-002");

  const auto status =
      wire_round_trip(NodeStatus{"c401-002", 1234.5625, true});
  EXPECT_EQ(status.node, "c401-002");
  EXPECT_EQ(status.last_heartbeat, 1234.5625);
  EXPECT_TRUE(status.alive);
}

TEST(NetCodecRoundTrip, StorePlane) {
  const auto notify =
      wire_round_trip(WatchNotify{99, 2, "unit", "unit-000017"});
  EXPECT_EQ(notify.watcher_id, 99u);
  EXPECT_EQ(notify.event_type, 2);
  EXPECT_EQ(notify.bucket, "unit");
  EXPECT_EQ(notify.key, "unit-000017");

  StoreIngest ingest;
  ingest.collection = "unit";
  ingest.unit_id = "unit-000017";
  ingest.queue = "agent.pilot-1";
  ingest.document = {0x00, 0xff, 0x7f, 0x80, 0x01};
  const auto ingest2 = wire_round_trip(ingest);
  EXPECT_EQ(ingest2.collection, ingest.collection);
  EXPECT_EQ(ingest2.unit_id, ingest.unit_id);
  EXPECT_EQ(ingest2.queue, ingest.queue);
  EXPECT_EQ(ingest2.document, ingest.document);
}

TEST(NetCodecRoundTrip, ControlAndSubmitPlanes) {
  const auto ack = wire_round_trip(Ack{});
  (void)ack;

  const auto cmd = wire_round_trip(
      AgentCommand{"pilot-3", AgentCommand::kStopFailUnits});
  EXPECT_EQ(cmd.pilot_id, "pilot-3");
  EXPECT_EQ(cmd.op, AgentCommand::kStopFailUnits);

  const auto event =
      wire_round_trip(AgentEvent{"pilot-3", AgentEvent::kActive});
  EXPECT_EQ(event.pilot_id, "pilot-3");
  EXPECT_EQ(event.kind, AgentEvent::kActive);

  SubmitRequest sreq;
  sreq.tenant_id = "alice";
  sreq.description = {1, 2, 3, 4};
  const auto sreq2 = wire_round_trip(sreq);
  EXPECT_EQ(sreq2.tenant_id, "alice");
  EXPECT_EQ(sreq2.description, sreq.description);

  const auto srep = wire_round_trip(SubmitReply{"unit-000099"});
  EXPECT_EQ(srep.unit_id, "unit-000099");
}

TEST(NetCodecRoundTrip, HohnodePlane) {
  const auto hello =
      wire_round_trip(Hello{Hello::kAgent, "agent-0", 16});
  EXPECT_EQ(hello.role, Hello::kAgent);
  EXPECT_EQ(hello.name, "agent-0");
  EXPECT_EQ(hello.cores, 16);

  const auto assign =
      wire_round_trip(UnitAssign{"unit-000001", "wave0-map-1", 12.25});
  EXPECT_EQ(assign.unit_id, "unit-000001");
  EXPECT_EQ(assign.name, "wave0-map-1");
  EXPECT_EQ(assign.duration, 12.25);

  const auto result =
      wire_round_trip(UnitResult{"unit-000001", "wave0-map-1", true});
  EXPECT_EQ(result.unit_id, "unit-000001");
  EXPECT_TRUE(result.ok);

  const auto bye = wire_round_trip(Bye{});
  (void)bye;
}

TEST(NetCodecRoundTrip, EmptyAndAwkwardStrings) {
  // Empty strings, embedded NULs and non-ASCII bytes all survive.
  AllocateRequest req;
  req.container_id = std::string("\0with\0nul", 9);
  req.app_id = "";
  req.node = "nøde-\xff\x01";
  const auto rt = wire_round_trip(req);
  EXPECT_EQ(rt.container_id, req.container_id);
  EXPECT_EQ(rt.app_id, "");
  EXPECT_EQ(rt.node, req.node);
}

TEST(NetCodecRoundTrip, JsonDocumentsBitExact) {
  common::Json doc;
  doc["name"] = "unit-000001";
  doc["duration"] = 0.1 + 0.2;  // not representable; must survive bit-exact
  doc["cores"] = std::int64_t{3};
  doc["negative_zero"] = -0.0;
  doc["huge"] = 1.7976931348623157e308;
  doc["tiny"] = 5e-324;
  doc["flag"] = true;
  doc["nothing"] = common::Json();
  common::JsonArray samples;
  for (int i = 0; i < 5; ++i) {
    samples.emplace_back(static_cast<double>(i) / 3.0);
  }
  doc["samples"] = common::Json(std::move(samples));

  Packer p;
  pack_json(p, doc);
  const auto bytes = p.take();
  Unpacker u(bytes);
  const common::Json back = unpack_json(u);
  u.expect_done();

  EXPECT_EQ(back.at("name").as_string(), "unit-000001");
  EXPECT_EQ(back.at("duration").as_number(), 0.1 + 0.2);
  EXPECT_EQ(back.at("huge").as_number(), 1.7976931348623157e308);
  EXPECT_EQ(back.at("tiny").as_number(), 5e-324);
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_TRUE(back.at("nothing").is_null());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(back.at("samples").as_array()[i].as_number(),
              static_cast<double>(i) / 3.0);
  }

  // Equal documents encode identically (object keys in sorted order).
  Packer p2;
  pack_json(p2, back);
  EXPECT_EQ(p2.data(), bytes);
}

// --- hostile input ---------------------------------------------------

std::vector<std::uint8_t> sample_frame() {
  return encode_frame(make_envelope(
      UnitAssign{"unit-000001", "wave0-map-1", 12.25}));
}

TEST(NetCodecHostile, TruncationAtEveryByteNeverPartiallyDecodes) {
  const auto frame = sample_frame();
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Envelope out;
    if (cut < kFrameHeaderBytes) {
      // Header incomplete: decoder must simply wait for more bytes.
      EXPECT_EQ(try_decode_frame(frame.data(), cut, &out), 0u) << cut;
    } else {
      // Header complete, payload short: also "wait for more".
      EXPECT_EQ(try_decode_frame(frame.data(), cut, &out), 0u) << cut;
    }
  }
  Envelope out;
  EXPECT_EQ(try_decode_frame(frame.data(), frame.size(), &out),
            frame.size());
}

TEST(NetCodecHostile, TruncatedPayloadFailsMessageUnpack) {
  // A frame whose length field undercuts the real message: the message
  // unpack hits the bounds check or expect_done, never reads past.
  const auto frame = sample_frame();
  Envelope out;
  ASSERT_EQ(try_decode_frame(frame.data(), frame.size(), &out),
            frame.size());
  for (std::size_t cut = 0; cut < out.payload.size(); ++cut) {
    Envelope shorter = out;
    shorter.payload.resize(cut);
    EXPECT_THROW(open_envelope<UnitAssign>(shorter), CodecError) << cut;
  }
  // Trailing junk is equally fatal (length/payload disagreement).
  Envelope longer = out;
  longer.payload.push_back(0);
  EXPECT_THROW(open_envelope<UnitAssign>(longer), CodecError);
}

TEST(NetCodecHostile, BadMagicRejectedBeforePayload) {
  auto frame = sample_frame();
  frame[0] ^= 0x20;
  Envelope out;
  EXPECT_THROW(try_decode_frame(frame.data(), frame.size(), &out),
               CodecError);
}

TEST(NetCodecHostile, WrongVersionRejected) {
  auto frame = sample_frame();
  frame[5] = static_cast<std::uint8_t>(kWireVersion + 1);  // version lo byte
  Envelope out;
  EXPECT_THROW(try_decode_frame(frame.data(), frame.size(), &out),
               CodecError);
}

TEST(NetCodecHostile, CorruptLengthCannotDriveAllocation) {
  // Length field rewritten to ~4 GiB: the decoder must reject it from
  // the header alone (kMaxFrameBytes), not trust it.
  auto frame = sample_frame();
  frame[8] = 0xff;
  frame[9] = 0xff;
  frame[10] = 0xff;
  frame[11] = 0xff;
  Envelope out;
  EXPECT_THROW(try_decode_frame(frame.data(), frame.size(), &out),
               CodecError);
}

TEST(NetCodecHostile, StringLengthPastBufferThrows) {
  // A message payload whose string length prefix exceeds the payload.
  Packer p;
  p.u32(std::numeric_limits<std::uint32_t>::max());
  const Envelope env{MsgType::kNodeProbe, p.take()};
  EXPECT_THROW(open_envelope<NodeProbe>(env), CodecError);
}

TEST(NetCodecHostile, TypeMismatchThrows) {
  const Envelope env = make_envelope(NodeProbe{"c401-001"});
  EXPECT_THROW(open_envelope<NodeStatus>(env), CodecError);
}

TEST(NetCodecHostile, RandomGarbageNeverCrashes) {
  // Seeded random buffers through the frame decoder and every message
  // unpacker: any outcome but a clean value or CodecError is a bug
  // (ASan/UBSan builds turn out-of-range reads into hard failures).
  common::Rng rng(0x5eed);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t size =
        static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> junk(size);
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    Envelope out;
    try {
      (void)try_decode_frame(junk.data(), junk.size(), &out);
    } catch (const CodecError&) {
    }
    const Envelope env{MsgType::kAllocateRequest, junk};
    try {
      (void)open_envelope<AllocateRequest>(env);
    } catch (const CodecError&) {
    }
    Unpacker u(junk);
    try {
      (void)unpack_json(u);
    } catch (const CodecError&) {
    }
  }
}

TEST(NetCodecHostile, JsonDeepNestingBounded) {
  // 100 nested array headers (count 1 each): the decoder must refuse at
  // its depth bound instead of recursing to a stack overflow.
  Packer p;
  for (int i = 0; i < 100; ++i) {
    p.u8(5);  // array tag
    p.u32(1);
  }
  p.u8(0);  // innermost null
  const auto bytes = p.take();
  Unpacker u(bytes);
  EXPECT_THROW(unpack_json(u), CodecError);
}

}  // namespace
}  // namespace hoh::net
