#include <gtest/gtest.h>

#include "analytics/workload_gen.h"
#include "common/error.h"
#include "common/statistics.h"
#include "hdfs/input_splits.h"
#include "mapreduce/yarn_mr_driver.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"
#include "spark/dag_scheduler.h"

namespace hoh {
namespace {

// ------------------------------------------------------ input splits ---

class InputSplitTest : public ::testing::Test {
 protected:
  InputSplitTest() : machine_(cluster::stampede_profile()) {
    for (int i = 0; i < 4; ++i) nodes_.push_back("n" + std::to_string(i));
    fs_ = std::make_unique<hdfs::HdfsCluster>(engine_, machine_, nodes_);
  }
  sim::Engine engine_;
  cluster::MachineProfile machine_;
  std::vector<std::string> nodes_;
  std::unique_ptr<hdfs::HdfsCluster> fs_;
};

TEST_F(InputSplitTest, OneSplitPerBlock) {
  fs_->create_file("/in", 300 * common::kMiB, "n1");  // 3 blocks
  const auto splits = hdfs::compute_input_splits(*fs_, "/in");
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits[0].offset, 0);
  EXPECT_EQ(splits[0].length, 128 * common::kMiB);
  EXPECT_EQ(splits[1].offset, 128 * common::kMiB);
  EXPECT_EQ(splits[2].length, 44 * common::kMiB);
  // Hosts come from replica placement (writer = n1 holds replica 1).
  for (const auto& s : splits) {
    ASSERT_EQ(s.hosts.size(), 3u);
    EXPECT_EQ(s.hosts[0], "n1");
  }
}

TEST_F(InputSplitTest, MergingCapsSplitCount) {
  fs_->create_file("/in", 1024 * common::kMiB, "n0");  // 8 blocks
  const auto splits = hdfs::compute_input_splits(*fs_, "/in", 3);
  ASSERT_EQ(splits.size(), 3u);
  common::Bytes total = 0;
  for (const auto& s : splits) total += s.length;
  EXPECT_EQ(total, 1024 * common::kMiB);
  // Contiguous coverage.
  EXPECT_EQ(splits[1].offset, splits[0].offset + splits[0].length);
}

TEST_F(InputSplitTest, PreferredHostsVector) {
  fs_->create_file("/in", 256 * common::kMiB, "n2");
  const auto hosts =
      hdfs::preferred_hosts(hdfs::compute_input_splits(*fs_, "/in"));
  ASSERT_EQ(hosts.size(), 2u);
  EXPECT_EQ(hosts[0], "n2");
}

TEST_F(InputSplitTest, SplitsFeedMrDriverLocality) {
  // End-to-end: HDFS placement -> splits -> MR job on YARN over the same
  // nodes -> every map runs on a replica holder.
  std::vector<std::shared_ptr<cluster::Node>> cnodes;
  for (const auto& n : nodes_) {
    cnodes.push_back(std::make_shared<cluster::Node>(n, machine_.node));
  }
  cluster::Allocation allocation(cnodes);
  yarn::ResourceManager rm(engine_, allocation);

  fs_->create_file("/dataset", 512 * common::kMiB, "n0", 2);  // 4 blocks
  const auto splits = hdfs::compute_input_splits(*fs_, "/dataset");

  mapreduce::YarnMrDriver driver(rm);
  mapreduce::YarnMrJobSpec spec;
  spec.map_tasks = static_cast<int>(splits.size());
  spec.reduce_tasks = 1;
  spec.map_task_seconds = 10.0;
  spec.reduce_task_seconds = 5.0;
  spec.split_locations = hdfs::preferred_hosts(splits);
  const auto id = driver.submit(spec);
  engine_.run_until(600.0);
  const auto status = driver.status(id);
  ASSERT_TRUE(status.finished);
  EXPECT_DOUBLE_EQ(status.map_locality, 1.0);
  rm.shutdown();
}

// ------------------------------------------------------ DAG scheduler ---

class DagSchedulerTest : public ::testing::Test {
 protected:
  DagSchedulerTest() : machine_(cluster::generic_profile(2, 8, 16 * 1024)) {
    std::vector<std::shared_ptr<cluster::Node>> nodes;
    for (int i = 0; i < 2; ++i) {
      nodes.push_back(std::make_shared<cluster::Node>(
          "n" + std::to_string(i), machine_.node));
    }
    allocation_ = cluster::Allocation(nodes);
    spark_ = std::make_unique<spark::SparkStandaloneCluster>(
        engine_, machine_, allocation_);
    spark::SparkAppDescriptor app;
    app.executor_cores = 8;
    app_id_ = spark_->submit_application(app);
    engine_.run_until(30.0);
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  cluster::Allocation allocation_;
  std::unique_ptr<spark::SparkStandaloneCluster> spark_;
  std::string app_id_;
};

TEST_F(DagSchedulerTest, LinearDagRunsInOrder) {
  spark::DagScheduler dag(*spark_, app_id_);
  bool done = false;
  spark::SparkJobSpec job;
  job.stages = {{"read", 8, 5.0, {}},
                {"map", 8, 5.0, {0}},
                {"reduce", 2, 5.0, {1}}};
  const auto id = dag.submit(job, [&] { done = true; });
  engine_.run_until(engine_.now() + 300.0);
  const auto status = dag.status(id);
  EXPECT_TRUE(done);
  EXPECT_TRUE(status.finished);
  EXPECT_EQ(status.completion_order, (std::vector<int>{0, 1, 2}));
}

TEST_F(DagSchedulerTest, DiamondDependency) {
  spark::DagScheduler dag(*spark_, app_id_);
  spark::SparkJobSpec job;
  job.stages = {{"src", 4, 5.0, {}},
                {"left", 4, 5.0, {0}},
                {"right", 4, 5.0, {0}},
                {"join", 4, 5.0, {1, 2}}};
  const auto id = dag.submit(job);
  engine_.run_until(engine_.now() + 300.0);
  const auto status = dag.status(id);
  ASSERT_TRUE(status.finished);
  // Join must be last; src first.
  EXPECT_EQ(status.completion_order.front(), 0);
  EXPECT_EQ(status.completion_order.back(), 3);
}

TEST_F(DagSchedulerTest, ValidationRejectsBadDags) {
  spark::DagScheduler dag(*spark_, app_id_);
  spark::SparkJobSpec empty;
  EXPECT_THROW(dag.submit(empty), common::ConfigError);
  spark::SparkJobSpec forward;
  forward.stages = {{"a", 1, 1.0, {1}}, {"b", 1, 1.0, {}}};
  EXPECT_THROW(dag.submit(forward), common::ConfigError);
  spark::SparkJobSpec self_parent;
  self_parent.stages = {{"a", 1, 1.0, {0}}};
  EXPECT_THROW(dag.submit(self_parent), common::ConfigError);
  spark::SparkJobSpec zero_tasks;
  zero_tasks.stages = {{"a", 0, 1.0, {}}};
  EXPECT_THROW(dag.submit(zero_tasks), common::ConfigError);
  EXPECT_THROW(dag.status("nope"), common::NotFoundError);
}

TEST_F(DagSchedulerTest, TwoJobsInterleave) {
  spark::DagScheduler dag(*spark_, app_id_);
  int done = 0;
  spark::SparkJobSpec job;
  job.stages = {{"s0", 8, 10.0, {}}, {"s1", 8, 10.0, {0}}};
  dag.submit(job, [&] { ++done; });
  dag.submit(job, [&] { ++done; });
  engine_.run_until(engine_.now() + 600.0);
  EXPECT_EQ(done, 2);
}

// --------------------------------------------------- workload generator ---

TEST(WorkloadGenTest, DeterministicAndSized) {
  analytics::WorkloadSpec spec;
  spec.units = 64;
  spec.distribution = analytics::DurationDistribution::kUniform;
  auto a = analytics::generate_workload(spec);
  auto b = analytics::generate_workload(spec);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
  }
}

TEST(WorkloadGenTest, MeansConverge) {
  for (auto dist : {analytics::DurationDistribution::kConstant,
                    analytics::DurationDistribution::kUniform,
                    analytics::DurationDistribution::kBimodal,
                    analytics::DurationDistribution::kHeavyTail}) {
    analytics::WorkloadSpec spec;
    spec.units = 20000;
    spec.distribution = dist;
    spec.mean_seconds = 60.0;
    const auto units = analytics::generate_workload(spec);
    const double mean = analytics::total_work_seconds(units) /
                        static_cast<double>(units.size());
    EXPECT_NEAR(mean, 60.0, 3.5) << analytics::to_string(dist);
    for (const auto& u : units) EXPECT_GT(u.duration, 0.0);
  }
}

TEST(WorkloadGenTest, HeavyTailHasStragglers) {
  analytics::WorkloadSpec spec;
  spec.units = 5000;
  spec.distribution = analytics::DurationDistribution::kHeavyTail;
  spec.mean_seconds = 60.0;
  const auto units = analytics::generate_workload(spec);
  double max_duration = 0.0;
  for (const auto& u : units) {
    max_duration = std::max(max_duration, u.duration);
  }
  EXPECT_GT(max_duration, 10.0 * spec.mean_seconds);
}

TEST(WorkloadGenTest, Validation) {
  analytics::WorkloadSpec bad;
  bad.units = 0;
  EXPECT_THROW(analytics::generate_workload(bad), common::ConfigError);
  bad.units = 1;
  bad.mean_seconds = 0.0;
  EXPECT_THROW(analytics::generate_workload(bad), common::ConfigError);
}

TEST(WorkloadGenTest, RunsThroughPilot) {
  pilot::Session session;
  session.register_machine(cluster::generic_profile(4, 8, 16 * 1024),
                           hpc::SchedulerKind::kSlurm, 4);
  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  pilot::PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  pd.nodes = 2;
  auto pilot = pm.submit_pilot(pd);
  um.add_pilot(pilot);
  analytics::WorkloadSpec spec;
  spec.units = 24;
  spec.distribution = analytics::DurationDistribution::kBimodal;
  spec.mean_seconds = 20.0;
  spec.memory_mb = 1024;
  um.submit(analytics::generate_workload(spec));
  while (!um.all_done() && session.engine().now() < 3600.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  EXPECT_EQ(um.done_count(), 24u);
}

// ------------------------------------------------- MPI gang scheduling ---

TEST(GangSchedulingTest, MpiUnitSpansNodes) {
  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 4);
  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  pilot::PilotDescription pd;
  pd.resource = "slurm://stampede/";
  pd.nodes = 3;  // 48 cores total, 16 per node
  auto pilot = pm.submit_pilot(pd);
  um.add_pilot(pilot);

  pilot::ComputeUnitDescription mpi;
  mpi.name = "big-mpi";
  mpi.is_mpi = true;
  mpi.cores = 40;  // cannot fit any single 16-core node
  mpi.memory_mb = 30 * 1024;
  mpi.duration = 60.0;
  auto unit = um.submit(mpi);
  while (!um.all_done() && session.engine().now() < 3600.0) {
    session.engine().run_until(session.engine().now() + 5.0);
  }
  EXPECT_EQ(unit->state(), pilot::UnitState::kDone);
  // The placement record lists several nodes.
  std::string placed;
  for (const auto& e : session.trace().find("unit", "placed")) {
    if (e.attrs.at("unit") == unit->id()) placed = e.attrs.at("node");
  }
  EXPECT_NE(placed.find(','), std::string::npos) << placed;
  // All cores returned afterwards.
  for (const auto& node : pilot->agent()->allocation().nodes()) {
    EXPECT_EQ(node->free_cores(), node->spec().cores);
  }
}

TEST(GangSchedulingTest, NonMpiUnitNeverSpansNodes) {
  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 4);
  pilot::PilotManager pm(session);
  pilot::UnitManager um(session);
  pilot::PilotDescription pd;
  pd.resource = "slurm://stampede/";
  pd.nodes = 3;
  auto pilot = pm.submit_pilot(pd);
  um.add_pilot(pilot);

  pilot::ComputeUnitDescription serial;
  serial.cores = 40;  // too big for one node and NOT MPI
  serial.memory_mb = 1024;
  serial.duration = 10.0;
  auto unit = um.submit(serial);
  session.engine().run_until(600.0);
  // Stays queued forever (never placed, never done).
  EXPECT_EQ(unit->state(), pilot::UnitState::kAgentScheduling);
  EXPECT_EQ(pilot->agent()->units_queued(), 1u);
}

}  // namespace
}  // namespace hoh
