#include "hdfs/hdfs_cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace hoh::hdfs {
namespace {

using common::operator""_MiB;

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest() : machine_(cluster::stampede_profile()) {
    for (int i = 0; i < 4; ++i) nodes_.push_back("n" + std::to_string(i));
    hdfs_ = std::make_unique<HdfsCluster>(engine_, machine_, nodes_);
  }

  sim::Engine engine_;
  cluster::MachineProfile machine_;
  std::vector<std::string> nodes_;
  std::unique_ptr<HdfsCluster> hdfs_;
};

TEST_F(HdfsTest, NamenodeOnFirstNode) {
  EXPECT_EQ(hdfs_->namenode(), "n0");
  EXPECT_EQ(hdfs_->datanodes().size(), 4u);
}

TEST_F(HdfsTest, CreateSplitsIntoBlocks) {
  hdfs_->create_file("/data/points.txt", 300_MiB, "n1");
  const FileMeta& meta = hdfs_->stat("/data/points.txt");
  ASSERT_EQ(meta.blocks.size(), 3u);  // 128 + 128 + 44
  EXPECT_EQ(meta.blocks[0].size, 128_MiB);
  EXPECT_EQ(meta.blocks[2].size, 44_MiB);
  EXPECT_EQ(meta.size, 300_MiB);
}

TEST_F(HdfsTest, WriterNodeGetsFirstReplica) {
  hdfs_->create_file("/f", 64_MiB, "n2");
  const FileMeta& meta = hdfs_->stat("/f");
  ASSERT_EQ(meta.blocks.size(), 1u);
  EXPECT_EQ(meta.blocks[0].replicas.at(0).node, "n2");
  EXPECT_EQ(meta.blocks[0].replicas.size(), 3u);  // default replication
}

TEST_F(HdfsTest, ReplicasOnDistinctNodes) {
  hdfs_->create_file("/f", 256_MiB, "n0");
  for (const auto& block : hdfs_->stat("/f").blocks) {
    std::set<std::string> nodes;
    for (const auto& r : block.replicas) nodes.insert(r.node);
    EXPECT_EQ(nodes.size(), block.replicas.size());
  }
}

TEST_F(HdfsTest, ReplicationCappedByLiveNodes) {
  hdfs_->create_file("/f", 1_MiB, "", 10);
  EXPECT_EQ(hdfs_->stat("/f").blocks[0].replicas.size(), 4u);
}

TEST_F(HdfsTest, DuplicateCreateThrows) {
  hdfs_->create_file("/f", 1_MiB);
  EXPECT_THROW(hdfs_->create_file("/f", 1_MiB), common::StateError);
}

TEST_F(HdfsTest, RemoveFreesSpace) {
  hdfs_->create_file("/f", 100_MiB, "", 2);
  EXPECT_EQ(hdfs_->used_bytes(), 200_MiB);
  hdfs_->remove("/f");
  EXPECT_EQ(hdfs_->used_bytes(), 0);
  EXPECT_FALSE(hdfs_->exists("/f"));
  EXPECT_THROW(hdfs_->remove("/f"), common::NotFoundError);
}

TEST_F(HdfsTest, ListByPrefix) {
  hdfs_->create_file("/data/a", 1_MiB);
  hdfs_->create_file("/data/b", 1_MiB);
  hdfs_->create_file("/tmp/c", 1_MiB);
  EXPECT_EQ(hdfs_->list("/data/").size(), 2u);
  EXPECT_EQ(hdfs_->list().size(), 3u);
}

TEST_F(HdfsTest, LocalityFractions) {
  hdfs_->create_file("/f", 128_MiB, "n1", 2);  // 1 block: n1 + one other
  EXPECT_DOUBLE_EQ(hdfs_->locality("/f", "n1"), 1.0);
  double total = 0.0;
  for (const auto& n : nodes_) total += hdfs_->locality("/f", n);
  EXPECT_DOUBLE_EQ(total, 2.0);  // 2 replicas of the single block
}

TEST_F(HdfsTest, BestNodePrefersReplicaHolder) {
  hdfs_->create_file("/f", 384_MiB, "n3", 1);
  EXPECT_EQ(hdfs_->best_node("/f"), "n3");
}

TEST_F(HdfsTest, LocalReadFasterThanRemote) {
  hdfs_->create_file("/f", 128_MiB, "n1", 1);  // only replica on n1
  const double local = hdfs_->read_time("/f", "n1");
  const double remote = hdfs_->read_time("/f", "n2");
  EXPECT_LT(local, remote);
}

TEST_F(HdfsTest, DatanodeFailureTriggersReReplication) {
  hdfs_->create_file("/f", 128_MiB, "n1", 3);
  hdfs_->fail_datanode("n1");
  engine_.run();  // replication monitor fires
  const FileMeta& meta = hdfs_->stat("/f");
  ASSERT_EQ(meta.blocks[0].replicas.size(), 3u);
  for (const auto& r : meta.blocks[0].replicas) {
    EXPECT_NE(r.node, "n1");
  }
  // Failed node excluded from locality.
  EXPECT_DOUBLE_EQ(hdfs_->locality("/f", "n1"), 0.0);
}

TEST_F(HdfsTest, UnderReplicationWhenNodesShort) {
  hdfs_->create_file("/f", 1_MiB, "", 3);
  hdfs_->fail_datanode("n0");
  hdfs_->fail_datanode("n1");
  engine_.run();
  // Only 2 live nodes: best effort is 2 replicas.
  EXPECT_EQ(hdfs_->stat("/f").blocks[0].replicas.size(), 2u);
}

TEST_F(HdfsTest, DatanodeReports) {
  hdfs_->create_file("/f", 128_MiB, "n0", 2);
  auto reports = hdfs_->datanode_reports();
  ASSERT_EQ(reports.size(), 4u);
  common::Bytes used = 0;
  std::size_t blocks = 0;
  for (const auto& r : reports) {
    used += r.used;
    blocks += r.block_count;
    EXPECT_TRUE(r.alive);
  }
  EXPECT_EQ(used, 256_MiB);
  EXPECT_EQ(blocks, 2u);
}

TEST_F(HdfsTest, StoragePolicySsdOnlyWithHardware) {
  // Stampede has no SSD: ALL_SSD falls back to disk replicas.
  hdfs_->create_file("/f", 1_MiB, "n0", 1, StoragePolicy::kAllSsd);
  EXPECT_FALSE(hdfs_->stat("/f").blocks[0].replicas[0].on_ssd);

  // Wrangler has flash: ALL_SSD marks replicas as SSD.
  auto wrangler = cluster::wrangler_profile();
  HdfsCluster whdfs(engine_, wrangler, {"w0", "w1"});
  whdfs.create_file("/f", 1_MiB, "w0", 1, StoragePolicy::kAllSsd);
  EXPECT_TRUE(whdfs.stat("/f").blocks[0].replicas[0].on_ssd);
}

TEST_F(HdfsTest, WritePipelineDurationPositiveAndMonotonic) {
  const double small = hdfs_->create_file("/small", 16_MiB, "n0");
  const double large = hdfs_->create_file("/large", 512_MiB, "n0");
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST_F(HdfsTest, SummaryJson) {
  hdfs_->create_file("/f", 128_MiB);
  auto j = hdfs_->summary();
  EXPECT_EQ(j.at("files").as_int(), 1);
  EXPECT_EQ(j.at("liveDataNodes").as_int(), 4);
  EXPECT_EQ(j.at("namenode").as_string(), "n0");
}

TEST_F(HdfsTest, EmptyNodeListThrows) {
  EXPECT_THROW(HdfsCluster(engine_, machine_, {}), common::ConfigError);
}

TEST_F(HdfsTest, StatMissingThrows) {
  EXPECT_THROW(hdfs_->stat("/missing"), common::NotFoundError);
}

}  // namespace
}  // namespace hoh::hdfs
