#include <gtest/gtest.h>

#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

namespace hoh::pilot {
namespace {

/// Workflow-dependency tests: units chained with depends_on.
class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() {
    session_.register_machine(cluster::generic_profile(4, 8, 16 * 1024),
                              hpc::SchedulerKind::kSlurm, 4);
    PilotDescription pd;
    pd.resource = "slurm://beowulf/";
    pd.nodes = 2;
    pilot_ = pm_.submit_pilot(pd);
    um_.add_pilot(pilot_);
  }

  ComputeUnitDescription unit(const std::string& name, double duration,
                              std::vector<std::string> deps = {},
                              int exit_code = 0) {
    ComputeUnitDescription cud;
    cud.name = name;
    cud.duration = duration;
    cud.memory_mb = 1024;
    cud.depends_on = std::move(deps);
    cud.exit_code = exit_code;
    return cud;
  }

  void drive(double horizon = 3600.0) {
    const double until = session_.engine().now() + horizon;
    while (!um_.all_done() && session_.engine().now() < until) {
      session_.engine().run_until(session_.engine().now() + 5.0);
    }
  }

  /// Time a unit reached Executing, from the trace (-1 if never).
  double executing_at(const std::string& unit_id) {
    for (const auto& e : session_.trace().find("unit", "Executing")) {
      if (e.attrs.at("unit") == unit_id) return e.time;
    }
    return -1.0;
  }

  Session session_;
  PilotManager pm_{session_};
  UnitManager um_{session_};
  std::shared_ptr<Pilot> pilot_;
};

TEST_F(WorkflowTest, ChainRunsInOrder) {
  auto a = um_.submit(unit("a", 20.0));
  auto b = um_.submit(unit("b", 20.0, {a->id()}));
  auto c = um_.submit(unit("c", 20.0, {b->id()}));
  drive();
  EXPECT_EQ(a->state(), UnitState::kDone);
  EXPECT_EQ(b->state(), UnitState::kDone);
  EXPECT_EQ(c->state(), UnitState::kDone);
  // Strict ordering: each stage starts only after its parent finished.
  EXPECT_GT(executing_at(b->id()), executing_at(a->id()) + 20.0 - 1e-9);
  EXPECT_GT(executing_at(c->id()), executing_at(b->id()) + 20.0 - 1e-9);
}

TEST_F(WorkflowTest, FanInWaitsForAllParents) {
  auto fast = um_.submit(unit("fast", 5.0));
  auto slow = um_.submit(unit("slow", 60.0));
  auto join = um_.submit(unit("join", 5.0, {fast->id(), slow->id()}));
  drive();
  EXPECT_EQ(join->state(), UnitState::kDone);
  EXPECT_GT(executing_at(join->id()), executing_at(slow->id()) + 60.0 - 1e-9);
}

TEST_F(WorkflowTest, SameBatchDependencies) {
  // Dependencies can reference units submitted in the same call: ids are
  // assigned in order, so build them incrementally.
  auto stage1 = um_.submit(unit("sim", 10.0));
  std::vector<ComputeUnitDescription> batch;
  batch.push_back(unit("ana-0", 5.0, {stage1->id()}));
  batch.push_back(unit("ana-1", 5.0, {stage1->id()}));
  auto stage2 = um_.submit(batch);
  drive();
  for (const auto& u : stage2) EXPECT_EQ(u->state(), UnitState::kDone);
}

TEST_F(WorkflowTest, FailedDependencyCancelsDependents) {
  auto bad = um_.submit(unit("bad", 5.0, {}, /*exit_code=*/1));
  auto child = um_.submit(unit("child", 5.0, {bad->id()}));
  auto grandchild = um_.submit(unit("grandchild", 5.0, {child->id()}));
  drive();
  EXPECT_EQ(bad->state(), UnitState::kFailed);
  EXPECT_EQ(child->state(), UnitState::kCanceled);
  EXPECT_EQ(grandchild->state(), UnitState::kCanceled);
  EXPECT_TRUE(um_.all_done());
}

TEST_F(WorkflowTest, UnknownDependencyCancels) {
  auto orphan = um_.submit(unit("orphan", 5.0, {"unit.does-not-exist"}));
  drive(120.0);
  EXPECT_EQ(orphan->state(), UnitState::kCanceled);
}

TEST_F(WorkflowTest, IndependentUnitsUnaffectedByHeldOnes) {
  auto slow = um_.submit(unit("slow", 100.0));
  auto held = um_.submit(unit("held", 5.0, {slow->id()}));
  auto free1 = um_.submit(unit("free", 5.0));
  drive(60.0);
  // The free unit finished long before the held one became eligible.
  EXPECT_EQ(free1->state(), UnitState::kDone);
  EXPECT_NE(held->state(), UnitState::kDone);
  drive();
  EXPECT_EQ(held->state(), UnitState::kDone);
}

TEST_F(WorkflowTest, DependsOnSerializedInStoreDocument) {
  auto a = um_.submit(unit("a", 5.0));
  auto b = um_.submit(unit("b", 5.0, {a->id()}));
  const auto doc = session_.store().get("unit", b->id());
  ASSERT_TRUE(doc.has_value());
  const auto deps = doc->at("description").at("depends_on").as_array();
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].as_string(), a->id());
}

}  // namespace
}  // namespace hoh::pilot
