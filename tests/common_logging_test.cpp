#include "common/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hoh::common {
namespace {

/// RAII guard restoring global logging state after each test.
class LoggingGuard {
 public:
  LoggingGuard() = default;
  ~LoggingGuard() {
    Logging::set_sink(nullptr);
    Logging::set_time_provider(nullptr);
    Logging::set_level(LogLevel::kWarn);
  }
};

struct Captured {
  LogLevel level;
  std::string tag;
  std::string message;
};

TEST(LoggingTest, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, SinkReceivesFilteredMessages) {
  LoggingGuard guard;
  std::vector<Captured> captured;
  Logging::set_sink([&](LogLevel level, std::string_view tag,
                        std::string_view message) {
    captured.push_back(
        {level, std::string(tag), std::string(message)});
  });
  Logging::set_level(LogLevel::kInfo);

  Logger logger("yarn.rm");
  logger.debug("below threshold");
  logger.info("container allocated");
  logger.error("node lost");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].level, LogLevel::kInfo);
  EXPECT_EQ(captured[0].tag, "yarn.rm");
  EXPECT_EQ(captured[0].message, "container allocated");
  EXPECT_EQ(captured[1].level, LogLevel::kError);
}

TEST(LoggingTest, OffSilencesEverything) {
  LoggingGuard guard;
  int count = 0;
  Logging::set_sink([&](LogLevel, std::string_view, std::string_view) {
    ++count;
  });
  Logging::set_level(LogLevel::kOff);
  Logger logger("x");
  logger.error("even errors");
  EXPECT_EQ(count, 0);
}

TEST(LoggingTest, LoggerKeepsTag) {
  Logger logger("pilot.agent");
  EXPECT_EQ(logger.tag(), "pilot.agent");
  Logger copy = logger;  // cheap to copy
  EXPECT_EQ(copy.tag(), "pilot.agent");
}

// Regression for the sink data race this PR fixed: the global sink and
// time provider used to be bare statics, so set_sink() from one thread
// while workers logged was a race (TSan-visible). Now both live behind
// the registry mutex; this hammers exactly that interleaving.
TEST(LoggingTest, ConcurrentLogAndSinkSwapIsRaceFree) {
  LoggingGuard guard;
  Logging::set_level(LogLevel::kInfo);
  std::atomic<int> delivered{0};
  auto counting_sink = [&delivered](LogLevel, std::string_view,
                                    std::string_view) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  Logging::set_sink(counting_sink);

  constexpr int kLoggers = 4;
  constexpr int kMessagesEach = 500;
  std::vector<std::thread> threads;
  threads.reserve(kLoggers);
  for (int t = 0; t < kLoggers; ++t) {
    threads.emplace_back([t] {
      Logger logger("stress." + std::to_string(t));
      for (int i = 0; i < kMessagesEach; ++i) logger.info("msg");
    });
  }
  // Swap the sink (to an equivalent one) while the loggers hammer it.
  for (int i = 0; i < 50; ++i) Logging::set_sink(counting_sink);
  for (auto& t : threads) t.join();

  EXPECT_EQ(delivered.load(), kLoggers * kMessagesEach);
}

TEST(LoggingTest, DefaultLevelIsWarn) {
  LoggingGuard guard;
  // The guard of the previous test restored kWarn.
  EXPECT_EQ(Logging::level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace hoh::common
