#include "analytics/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace hoh::analytics {
namespace {

bool centroids_close(const std::vector<Point3>& a,
                     const std::vector<Point3>& b, double tol = 1e-9) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::sqrt(distance2(a[i], b[i])) > tol) return false;
  }
  return true;
}

TEST(DatasetTest, GaussianBlobsDeterministic) {
  auto a = gaussian_blobs(100, 4, 7);
  auto b = gaussian_blobs(100, 4, 7);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
  auto c = gaussian_blobs(100, 4, 8);
  EXPECT_NE(a, c);
}

TEST(DatasetTest, BlobsClusterAroundCenters) {
  std::vector<Point3> centers;
  auto points = gaussian_blobs(1000, 5, 42, 100.0, 1.0, &centers);
  ASSERT_EQ(centers.size(), 5u);
  // Every point lies near its generating center (i % k assignment).
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = std::sqrt(distance2(points[i], centers[i % 5]));
    EXPECT_LT(d, 10.0);  // ~10 sigma
  }
}

TEST(DatasetTest, UniformPointsWithinRange) {
  auto points = uniform_points(500, 3, 50.0);
  for (const auto& p : points) {
    for (double v : p) {
      EXPECT_GE(v, -50.0);
      EXPECT_LE(v, 50.0);
    }
  }
}

TEST(KmeansTest, ValidatesInput) {
  auto points = uniform_points(10, 1);
  EXPECT_THROW(kmeans_serial(points, 0, 1), common::ConfigError);
  EXPECT_THROW(kmeans_serial(points, 11, 1), common::ConfigError);
  EXPECT_THROW(kmeans_serial(points, 2, 0), common::ConfigError);
}

TEST(KmeansTest, SerialRecoversBlobCenters) {
  std::vector<Point3> centers;
  auto points = gaussian_blobs(3000, 3, 11, 100.0, 0.5, &centers);
  auto result = kmeans_serial(points, 3, 20);
  // Each true center must be close to some recovered centroid.
  for (const auto& c : centers) {
    double best = 1e18;
    for (const auto& r : result.centroids) {
      best = std::min(best, std::sqrt(distance2(c, r)));
    }
    EXPECT_LT(best, 1.0);
  }
  EXPECT_GT(result.inertia, 0.0);
}

TEST(KmeansTest, InertiaNonIncreasingOverIterations) {
  auto points = gaussian_blobs(2000, 8, 5);
  double prev = 1e300;
  for (int iters = 1; iters <= 6; ++iters) {
    const double inertia = kmeans_serial(points, 8, iters).inertia;
    EXPECT_LE(inertia, prev + 1e-6);
    prev = inertia;
  }
}

TEST(KmeansTest, ThreadedMatchesSerial) {
  common::ThreadPool pool(4);
  auto points = gaussian_blobs(5000, 10, 21);
  auto serial = kmeans_serial(points, 10, 4);
  auto threaded = kmeans_threaded(pool, points, 10, 4);
  EXPECT_TRUE(centroids_close(serial.centroids, threaded.centroids));
  EXPECT_NEAR(serial.inertia, threaded.inertia, 1e-6);
}

TEST(KmeansTest, MapReduceMatchesSerial) {
  common::ThreadPool pool(4);
  auto points = gaussian_blobs(5000, 10, 22);
  auto serial = kmeans_serial(points, 10, 3);
  auto mr = kmeans_mapreduce(pool, points, 10, 3, 8, 4);
  EXPECT_TRUE(centroids_close(serial.centroids, mr.centroids, 1e-7));
  EXPECT_NEAR(serial.inertia, mr.inertia, 1e-4);
}

TEST(KmeansTest, RddMatchesSerial) {
  spark::SparkEnv env(4);
  auto points = gaussian_blobs(5000, 10, 23);
  auto serial = kmeans_serial(points, 10, 3);
  auto rdd = kmeans_rdd(env, points, 10, 3, 16);
  EXPECT_TRUE(centroids_close(serial.centroids, rdd.centroids, 1e-7));
  EXPECT_NEAR(serial.inertia, rdd.inertia, 1e-4);
}

class KmeansBackendSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KmeansBackendSweep, AllBackendsAgreeAcrossTaskCounts) {
  const std::size_t tasks = GetParam();
  common::ThreadPool pool(4);
  spark::SparkEnv env(4);
  auto points = gaussian_blobs(2000, 5, 31);
  auto serial = kmeans_serial(points, 5, 2);
  auto mr = kmeans_mapreduce(pool, points, 5, 2, tasks, tasks);
  auto rdd = kmeans_rdd(env, points, 5, 2, tasks);
  EXPECT_TRUE(centroids_close(serial.centroids, mr.centroids, 1e-7));
  EXPECT_TRUE(centroids_close(serial.centroids, rdd.centroids, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, KmeansBackendSweep,
                         ::testing::Values(1u, 2u, 8u, 16u, 32u));

TEST(KmeansTest, EmptyClusterKeepsCentroid) {
  // Two far blobs, k=3 with stride init: one centroid may end up empty;
  // the algorithm must not produce NaNs.
  std::vector<Point3> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({0.0 + i * 1e-3, 0.0, 0.0});
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back({100.0 + i * 1e-3, 0.0, 0.0});
  }
  auto result = kmeans_serial(points, 3, 5);
  for (const auto& c : result.centroids) {
    for (double v : c) EXPECT_FALSE(std::isnan(v));
  }
}

}  // namespace
}  // namespace hoh::analytics
