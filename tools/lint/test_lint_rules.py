#!/usr/bin/env python3
"""Self-test for the static-analysis gates: tools/lint/check_concurrency.py
(rules 1-6) and tools/analyze/hoh_analyze.py (all four rule families).

The fixture tree (tests/lint_fixtures/) holds deliberately-bad snippets;
every line that must be flagged carries a trailing `// EXPECT: <rule>`
annotation (comma-separated for several findings on one line). The test
runs each tool over its fixture tree and asserts the set of (file, line,
rule) findings equals the set of expectations EXACTLY — a rule that fails
to fire is as much a failure as a spurious finding, so both false
negatives and false positives in the tools regress loudly.

Also covered: the analyzer's baseline ratchet (grandfathered findings
suppressed, new findings fatal, stale entries reported) and the
lock-order DOT/JSON artifacts.

Run directly (`python3 tools/lint/test_lint_rules.py`) or through ctest
(`lint_selftest`, part of the tier-1 suite).
"""

from __future__ import annotations

import json
import pathlib
import re
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(__file__).resolve().parent.parent.parent
LINT = REPO / "tools" / "lint" / "check_concurrency.py"
ANALYZE = REPO / "tools" / "analyze" / "hoh_analyze.py"
FIXTURES = REPO / "tests" / "lint_fixtures"

EXPECT_RE = re.compile(r"//\s*EXPECT:\s*(?P<rules>[\w,\s-]+?)\s*$")

# check_concurrency.py reports prose, not rule ids; map fixture EXPECT ids
# to an unambiguous substring of each rule's message.
LINT_RULE_SUBSTRINGS = {
    "lint-rule1": "naked synchronisation primitive",
    "lint-rule2": "raw std::thread",
    "lint-rule3": "detached thread",
    "lint-rule4": "raw `this`",
    "lint-rule5": "schedule_periodic call site over budget",
    "lint-rule6": "threading primitive in src/tenant/",
    "lint-rule6b": "without any HOH_GUARDED_BY",
}

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}


def collect_expectations(root: pathlib.Path) -> set:
    expected = set()
    for path in sorted(root.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(REPO).as_posix()
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if not m:
                continue
            for rule in m.group("rules").split(","):
                expected.add((rel, lineno, rule.strip()))
    return expected


def run(cmd):
    return subprocess.run(
        [sys.executable] + cmd, cwd=REPO, capture_output=True, text=True)


class ConcurrencyLintFixtures(unittest.TestCase):
    """Every check_concurrency.py rule fires exactly where expected."""

    def test_rules_fire_exactly(self):
        root = FIXTURES / "concurrency"
        proc = run([str(LINT), str(root)])
        self.assertEqual(proc.returncode, 1,
                         f"lint must fail on the bad fixtures:\n"
                         f"{proc.stdout}\n{proc.stderr}")
        actual = set()
        for line in proc.stdout.splitlines():
            m = re.match(r"(?P<file>[^:]+):(?P<line>\d+): (?P<msg>.*)", line)
            self.assertIsNotNone(m, f"unparseable finding line: {line!r}")
            rules = [rid for rid, sub in LINT_RULE_SUBSTRINGS.items()
                     if sub in m.group("msg")]
            self.assertEqual(
                len(rules), 1,
                f"finding maps to {rules!r} (need exactly one): {line!r}")
            rel = pathlib.Path(m.group("file"))
            rel = rel.relative_to(REPO).as_posix() if rel.is_absolute() \
                else rel.as_posix()
            actual.add((rel, int(m.group("line")), rules[0]))
        expected = collect_expectations(root)
        self.assertTrue(expected, "fixture tree has no EXPECT annotations?")
        missing = expected - actual
        spurious = actual - expected
        self.assertFalse(missing, f"rules failed to fire: {sorted(missing)}")
        self.assertFalse(spurious, f"spurious findings: {sorted(spurious)}")


class AnalyzerFixtures(unittest.TestCase):
    """Every hoh_analyze.py rule family fires exactly where expected."""

    @staticmethod
    def _run_analyzer(extra):
        return run([str(ANALYZE), "--paths",
                    str(FIXTURES / "analyze"), "--frontend", "internal"]
                   + extra)

    def _findings(self, proc):
        actual = set()
        for line in proc.stdout.splitlines():
            m = re.match(
                r"(?P<file>[^:]+):(?P<line>\d+): (?P<rule>[\w-]+): ", line)
            self.assertIsNotNone(m, f"unparseable finding line: {line!r}")
            actual.add((m.group("file"), int(m.group("line")),
                        m.group("rule")))
        return actual

    def test_rules_fire_exactly(self):
        proc = self._run_analyzer(["--no-baseline"])
        self.assertEqual(proc.returncode, 1,
                         f"analyzer must fail on the bad fixtures:\n"
                         f"{proc.stdout}\n{proc.stderr}")
        actual = self._findings(proc)
        expected = collect_expectations(FIXTURES / "analyze")
        self.assertTrue(expected, "fixture tree has no EXPECT annotations?")
        missing = expected - actual
        spurious = actual - expected
        self.assertFalse(missing, f"rules failed to fire: {sorted(missing)}")
        self.assertFalse(spurious, f"spurious findings: {sorted(spurious)}")

    def test_every_rule_family_covered(self):
        """The fixture tree exercises all four families (plus the
        suppression meta-rule), so a new rule without a fixture fails."""
        rules = {r for (_, _, r) in collect_expectations(FIXTURES / "analyze")}
        for family in ("det-wallclock", "det-rand", "det-unseeded-rng",
                       "det-unordered-emit", "lock-order-cycle",
                       "lock-order-self", "state-write", "guard-missing",
                       "guard-local-mutex", "wire-encoding",
                       "suppression-unjustified"):
            self.assertIn(family, rules,
                          f"no fixture exercises {family}")

    def test_baseline_ratchet(self):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = pathlib.Path(tmp) / "baseline.json"
            wrote = self._run_analyzer(
                ["--write-baseline", "--baseline", str(baseline)])
            self.assertEqual(wrote.returncode, 0, wrote.stderr)
            data = json.loads(baseline.read_text())
            self.assertGreater(len(data["findings"]), 0)

            # Grandfathered: same tree + full baseline -> clean exit.
            clean = self._run_analyzer(["--baseline", str(baseline)])
            self.assertEqual(clean.returncode, 0,
                             f"baselined run must pass:\n{clean.stdout}")
            self.assertEqual(clean.stdout.strip(), "",
                             "baselined findings must not be printed")

            # Ratchet: drop one entry -> that finding is new again.
            dropped = data["findings"][0]
            data["findings"] = data["findings"][1:]
            baseline.write_text(json.dumps(data))
            dirty = self._run_analyzer(["--baseline", str(baseline)])
            self.assertEqual(dirty.returncode, 1,
                             "a finding missing from the baseline must fail")
            self.assertIn(dropped["rule"], dirty.stdout)

            # Stale entries (fixed findings) are reported, not fatal.
            data["findings"] = json.loads(
                (pathlib.Path(tmp) / "baseline.json").read_text()
            )["findings"]
            extra = dict(data["findings"][0])
            extra["fingerprint"] = "feedfacefeed"
            restored = self._run_analyzer(
                ["--write-baseline", "--baseline", str(baseline)])
            self.assertEqual(restored.returncode, 0, restored.stderr)
            data = json.loads(baseline.read_text())
            data["findings"].append(extra)
            baseline.write_text(json.dumps(data))
            stale = self._run_analyzer(["--baseline", str(baseline)])
            self.assertEqual(stale.returncode, 0,
                             "stale baseline entries must not fail the run")
            self.assertIn("1 stale", stale.stderr)

    def test_lock_order_artifacts(self):
        with tempfile.TemporaryDirectory() as tmp:
            dot = pathlib.Path(tmp) / "lock_order.dot"
            graph = pathlib.Path(tmp) / "lock_order.json"
            self._run_analyzer(["--no-baseline", "--dot", str(dot),
                                "--graph-json", str(graph)])
            data = json.loads(graph.read_text())
            self.assertIn("Pair::a_", data["nodes"])
            edges = {(e["from"], e["to"]) for e in data["edges"]}
            self.assertIn(("Pair::a_", "Pair::b_"), edges)
            self.assertIn(("Pair::b_", "Pair::a_"), edges)
            self.assertIn(("IpcLeft::mu_", "IpcRight::mu_"), edges,
                          "interprocedural edge missing")
            cycles = {frozenset(c) for c in data["cycles"]}
            self.assertIn(frozenset({"Pair::a_", "Pair::b_"}), cycles)
            self.assertIn(frozenset({"IpcLeft::mu_", "IpcRight::mu_"}),
                          cycles)
            text = dot.read_text()
            self.assertIn("digraph lock_order", text)
            self.assertIn('"Pair::a_" -> "Pair::b_"', text)

    def test_src_tree_is_clean(self):
        """The real tree passes with the checked-in baseline — the same
        gate CI runs (over compile_commands.json there; the file set for
        src/ is identical)."""
        proc = run([str(ANALYZE), "--paths", "src",
                    "--frontend", "internal"])
        self.assertEqual(
            proc.returncode, 0,
            f"hoh_analyze found new findings in src/:\n{proc.stdout}")


class SrcTreeLint(unittest.TestCase):
    def test_src_tree_is_clean(self):
        proc = run([str(LINT)])
        self.assertEqual(
            proc.returncode, 0,
            f"check_concurrency found violations in src/:\n{proc.stdout}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
