#!/usr/bin/env python3
"""Concurrency lint for the hadoop-on-hpc tree.

Enforces the project's concurrency conventions (DESIGN.md, "Concurrency
invariants") over src/ with plain regexes — fast enough for a pre-commit
hook and dependency-free, unlike the clang-tidy pass it complements:

  1. No naked synchronisation primitives. All locking goes through the
     annotated hoh::common::Mutex / MutexLock / CondVar wrappers from
     src/common/thread_annotations.h so Clang's -Wthread-safety analysis
     sees every acquisition. Rejected: std::mutex, std::recursive_mutex,
     std::shared_mutex, std::timed_mutex, std::lock_guard,
     std::unique_lock, std::scoped_lock, std::shared_lock,
     std::condition_variable, std::condition_variable_any.
  2. No raw std::thread outside common/thread_pool.* — ad-hoc threads
     bypass the pool's shutdown/join discipline.
  3. No .detach() anywhere: a detached thread outlives scope analysis
     and TSan's happens-before graph, and cannot be joined on shutdown.
  4. No raw `this` capture in lambdas handed to cross-thread submission
     points (submit(, enqueue(, parallel_for(): a worker may still hold
     the callback after the object dies.  Capture the needed members by
     value, or use a weak alive-token (see ElasticController::actuate).
  5. No new schedule_periodic call sites (DESIGN.md §10). The control
     plane is event-driven: components react to StateStore watches,
     DeadlineTimer leases and completion notifications, not periodic
     sweeps. The remaining periodic loops are enumerated per file in
     PERIODIC_BUDGET below (legacy poll plane plus the deliberately
     periodic elastic sampler); adding one elsewhere — or exceeding a
     file's budget — is a violation. Prefer a store watch or a
     sim::DeadlineTimer; if a new periodic loop is genuinely required,
     extend the budget in the same change that adds it and justify it in
     DESIGN.md.
  6. src/tenant/ stays deterministic engine-driven code (DESIGN.md §11):
     no std::atomic / semaphore / latch / barrier / promise / future /
     async at all — the gateway runs entirely on the single-threaded
     simulation engine and must stay replayable. If a tenant file does
     declare a common::Mutex, every such declaration must be paired with
     HOH_GUARDED_BY annotations somewhere in the file so -Wthread-safety
     covers the data it protects.

Usage: tools/lint/check_concurrency.py [root]   (root defaults to src/)
Exit status: 0 clean, 1 violations found (one "file:line: message" per
violation on stdout, grep/IDE-clickable).
"""

from __future__ import annotations

import pathlib
import re
import sys

# Files allowed to touch the naked primitives: the wrapper itself.
PRIMITIVE_ALLOWLIST = {"src/common/thread_annotations.h"}
# Files allowed to construct std::thread: the pool, and the socket
# transport's epoll reactor (one long-lived I/O thread, joined in stop).
THREAD_ALLOWLIST = {
    "src/common/thread_pool.h",
    "src/common/thread_pool.cpp",
    "src/net/socket_transport.h",
    "src/net/socket_transport.cpp",
}
# Per-file budget of schedule_periodic call sites (rule 5). These are the
# engine's own declaration/definition, the legacy poll control plane
# (agent store poll + heartbeat + drain sweep, unit-manager dependency
# sweep, RM scheduler pass, Spark standalone scheduler) and the elastic
# sampler, which stays periodic by design in both planes.
PERIODIC_BUDGET = {
    "src/sim/engine.h": 1,
    "src/sim/engine.cpp": 1,
    "src/elastic/elastic_controller.cpp": 1,
    "src/pilot/unit_manager.cpp": 1,
    "src/pilot/agent/agent.cpp": 3,
    "src/yarn/resource_manager.cpp": 1,
    "src/spark/standalone.cpp": 1,
}

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

NAKED_PRIMITIVE = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
)
RAW_THREAD = re.compile(r"std::(?:jthread|thread)\b(?!::hardware_concurrency)")
DETACH = re.compile(r"\.\s*detach\s*\(")
# A lambda capturing raw `this` on the same line as a cross-thread
# submission point. Line-based on purpose: cheap, and the codebase style
# keeps `submit([this...` on one line.
THIS_CAPTURE = re.compile(
    r"(?:submit|enqueue|parallel_for)\s*\(\s*\[[^\]]*\bthis\b"
)

SCHEDULE_PERIODIC = re.compile(r"\bschedule_periodic\s*\(")

# Rule 6: the tenant subsystem is deterministic single-threaded code.
TENANT_PREFIX = "src/tenant/"
TENANT_BANNED = re.compile(
    r"std::(?:atomic\w*|counting_semaphore|binary_semaphore|latch"
    r"|barrier|promise|future|shared_future|async)\b"
)
MUTEX_DECL = re.compile(r"\bcommon::Mutex\b")
GUARDED_BY = re.compile(r"\bHOH_GUARDED_BY\b")

COMMENT = re.compile(r"^\s*(?://|\*|///)")


def strip_strings(line: str) -> str:
    """Blank out string literals so 'std::mutex' in a message can't trip."""
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)


def lint_file(path: pathlib.Path, rel: str,
              rule_rel: str | None = None) -> list[str]:
    # `rel` is the reported (clickable) path; `rule_rel` is the path the
    # path-keyed rules match against (differs only for fixture trees).
    if rule_rel is None:
        rule_rel = rel
    problems: list[str] = []
    periodic_sites: list[int] = []
    tenant_mutex_lines: list[int] = []
    tenant_has_guard = False
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}:0: unreadable ({err})"]
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if COMMENT.match(raw):
            continue
        line = strip_strings(raw)
        if rule_rel not in PRIMITIVE_ALLOWLIST and NAKED_PRIMITIVE.search(line):
            problems.append(
                f"{rel}:{lineno}: naked synchronisation primitive; use "
                f"hoh::common::Mutex / MutexLock / CondVar "
                f"(common/thread_annotations.h)"
            )
        if rule_rel not in THREAD_ALLOWLIST and RAW_THREAD.search(line):
            problems.append(
                f"{rel}:{lineno}: raw std::thread; run work on "
                f"common::ThreadPool instead"
            )
        if DETACH.search(line):
            problems.append(
                f"{rel}:{lineno}: detached thread; detached threads escape "
                f"join/shutdown and TSan analysis"
            )
        if THIS_CAPTURE.search(line):
            problems.append(
                f"{rel}:{lineno}: raw `this` captured in a cross-thread "
                f"callback; capture members by value or use a weak "
                f"alive-token"
            )
        if SCHEDULE_PERIODIC.search(line):
            periodic_sites.append(lineno)
        if rule_rel.startswith(TENANT_PREFIX):
            if TENANT_BANNED.search(line):
                problems.append(
                    f"{rel}:{lineno}: threading primitive in src/tenant/; "
                    f"the gateway is deterministic engine-driven code "
                    f"(DESIGN.md §11) and must not use atomics, futures "
                    f"or barriers"
                )
            if MUTEX_DECL.search(line) and "MutexLock" not in line:
                tenant_mutex_lines.append(lineno)
            if GUARDED_BY.search(line):
                tenant_has_guard = True
    if rule_rel.startswith(TENANT_PREFIX) and tenant_mutex_lines \
            and not tenant_has_guard:
        for lineno in tenant_mutex_lines:
            problems.append(
                f"{rel}:{lineno}: common::Mutex declared in src/tenant/ "
                f"without any HOH_GUARDED_BY annotation in the file; "
                f"annotate the data the mutex protects"
            )
    budget = PERIODIC_BUDGET.get(rule_rel, 0)
    for lineno in periodic_sites[budget:]:
        problems.append(
            f"{rel}:{lineno}: schedule_periodic call site over budget "
            f"({len(periodic_sites)} found, {budget} allowed); the control "
            f"plane is event-driven — use a StateStore watch or "
            f"sim::DeadlineTimer, or extend PERIODIC_BUDGET with a "
            f"DESIGN.md justification"
        )
    return problems


def main(argv: list[str]) -> int:
    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    root = pathlib.Path(argv[1]) if len(argv) > 1 else repo / "src"
    problems: list[str] = []
    checked = 0
    for path in sorted(root.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        checked += 1
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(repo).as_posix()
        except ValueError:  # linting a tree outside the repo (tests do)
            rel = resolved.as_posix()
        # Path-keyed rules (allowlists, TENANT_PREFIX, PERIODIC_BUDGET)
        # match repo paths. When linting a fixture tree that mirrors the
        # src/ layout (tests/lint_fixtures does), key the rules on the
        # root-relative path instead, so `<root>/src/tenant/x.cpp` is
        # treated exactly like `src/tenant/x.cpp`; reported locations
        # keep the real path either way.
        rule_rel = rel
        if not rel.startswith("src/"):
            root_rel = resolved.relative_to(root.resolve()).as_posix()
            if root_rel.startswith("src/"):
                rule_rel = root_rel
        problems.extend(lint_file(path, rel, rule_rel))
    for problem in problems:
        print(problem)
    print(
        f"check_concurrency: {checked} files, {len(problems)} violation(s)",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
