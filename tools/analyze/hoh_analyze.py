#!/usr/bin/env python3
"""hoh_analyze: AST-level project analyzer for the hadoop-on-hpc tree.

Every correctness claim this repo makes — fault-sweep recovery, control-
plane parity, gateway passthrough — is asserted as byte-identical run
digests (DESIGN.md §9–§11). The regex lint (tools/lint/check_concurrency.py)
and the runtime sanitizers cannot see the failure modes that silently
break that replayability: a wall-clock read, an iteration over a hash
table feeding a trace, a state write that bypasses validate_transition.
This tool enforces them structurally, over the same translation units the
tier-1 preset compiles (compile_commands.json), with four rule families:

  determinism
    det-wallclock       std::chrono::{system,steady,high_resolution}_clock,
                        time()/gettimeofday/clock_gettime/std::clock —
                        simulated time comes from sim::Engine only.
    det-rand            std::rand/srand/std::random_device — all randomness
                        flows through the seeded common::Rng wrapper.
    det-unseeded-rng    construction of a std <random> engine with no seed
                        argument (mt19937 g;) — an unseeded engine is a
                        different run every boot.
    det-unordered-emit  a range-for over an unordered_map/unordered_set
                        whose body (transitively) reaches a trace / digest /
                        journal / JSON emission path — hash-bucket order
                        would leak into replayable output.

  lock-order
    lock-order-cycle    the global MutexLock nesting graph, extracted across
                        translation units (including acquisitions made by
                        callees while a lock is held), contains a cycle —
                        a potential deadlock. The full graph is emitted as
                        DOT + JSON artifacts (--dot / --graph-json).
    lock-order-self     a mutex is re-acquired while already held on the
                        same path; common::Mutex is non-recursive.

  state-discipline
    state-write         a PilotState/UnitState-typed store outside the two
                        designated gates (Pilot::set_state,
                        Agent::set_unit_state) and the transition machinery
                        itself — every lifecycle mutation must pass
                        validate_transition (DESIGN.md §7, Fig. 3).

  annotation-coverage
    guard-missing       a common::Mutex member whose class declares no
                        HOH_GUARDED_BY / HOH_PT_GUARDED_BY member — the
                        -Wthread-safety analysis is blind to everything
                        that mutex protects.
    guard-local-mutex   a function-local common::Mutex (outside a local
                        struct): locals cannot carry GUARDED_BY; hoist the
                        mutex into a struct with annotated members (see
                        ThreadPool::parallel_for's Latch).

  wire-encoding
    wire-encoding       reinterpret_cast, memcpy/memmove, or a byte-order
                        intrinsic (htons/htonl/ntohs/ntohl/htobe*/be*toh)
                        outside src/net/ — every wire image is produced by
                        the net::Packer codec (DESIGN.md §14); ad-hoc
                        struct-memcpy or endian fiddling elsewhere would
                        be host-order-dependent and invisible to the codec
                        fuzz tests.

Frontends
  The analyzer is frontend-agnostic over a small file IR. `--frontend
  libclang` uses clang.cindex when the Python bindings and a libclang
  shared object are installed. `--frontend internal` (the default under
  `auto` when libclang is absent, and what CI pins for reproducibility)
  is a dependency-free C++ tokenizer + scope parser tuned to this
  codebase's idiom; it builds a whole-program registry of class members,
  mutex declarations and function bodies across the analyzed file set.

Baseline ratchet
  Findings print as `file:line: rule: message` (IDE-clickable). A checked-
  in baseline (tools/analyze/baseline.json) suppresses grandfathered
  findings by line-independent fingerprint; anything not in the baseline
  fails the run, and baseline entries that no longer fire are reported as
  stale so the file only ever shrinks. Per-site suppression:

      // hoh-analyze: allow(det-unordered-emit) -- <why this is safe>
      // hoh-analyze: allow-next-line(state-write) -- <why>

  A suppression without a `--` justification is itself a finding
  (suppression-unjustified).

Usage
  tools/analyze/hoh_analyze.py -p build               # compile_commands.json
  tools/analyze/hoh_analyze.py --paths src            # plain tree walk
  tools/analyze/hoh_analyze.py -p build --write-baseline
  tools/analyze/hoh_analyze.py -p build --dot lock_order.dot \
      --graph-json lock_order.json

Exit status: 0 clean (baseline-suppressed findings allowed), 1 new
findings, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import re
import sys
from collections import defaultdict
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Rule registry and policy constants
# --------------------------------------------------------------------------

RULES = (
    "det-wallclock",
    "det-rand",
    "det-unseeded-rng",
    "det-unordered-emit",
    "lock-order-cycle",
    "lock-order-self",
    "state-write",
    "guard-missing",
    "guard-local-mutex",
    "wire-encoding",
    "suppression-unjustified",
)

# The codec / transport layer is the one place allowed to touch raw
# bytes and byte order (wire-encoding rule).
WIRE_DIR_PREFIX = "src/net/"
WIRE_BYTEORDER_IDENTS = {
    "htons", "htonl", "ntohs", "ntohl",
    "htobe16", "htobe32", "htobe64", "be16toh", "be32toh", "be64toh",
    "htole16", "htole32", "htole64", "le16toh", "le32toh", "le64toh",
}
WIRE_MEM_CALLEES = {"memcpy", "memmove"}

# The seeded RNG wrapper is the one place allowed to hold a raw engine.
DET_FILE_ALLOWLIST = {
    "src/common/random.h",
    "src/common/random.cpp",
}

# The two legal lifecycle-mutation gates (both call into
# validate_transition, directly or through StateStore::update) plus the
# transition machinery itself.
STATE_GATE_FUNCTIONS = {
    "Pilot::set_state",
    "Agent::set_unit_state",
}
STATE_GATE_FILES = {
    "src/pilot/transitions.h",
    "src/pilot/state_store.cpp",
    "src/pilot/state_store.h",
}
STATE_ENUMS = {"PilotState", "UnitState"}

# Emission sinks for det-unordered-emit: calling one of these (directly or
# transitively) inside a loop over an unordered container means bucket
# order reaches replayable output. Matched by callee simple name, plus a
# receiver-chain hint for trace()/journal-style accessors.
SINK_NAMES = {
    "record",
    "begin_span",
    "end_span",
    "to_json",
    "dump",
    "digest",
    "journal",
    "append_journal",
    "emit",
}
SINK_RECEIVER_HINTS = ("trace", "journal", "json", "digest")

WALLCLOCK_IDENTS = {
    "system_clock",
    "steady_clock",
    "high_resolution_clock",
    "gettimeofday",
    "clock_gettime",
    "timespec_get",
}
RAND_IDENTS = {"random_device"}
RAND_CALLEES = {"rand", "srand"}
RNG_ENGINE_TYPES = {
    "mt19937",
    "mt19937_64",
    "default_random_engine",
    "minstd_rand",
    "minstd_rand0",
    "ranlux24_base",
    "ranlux48_base",
    "ranlux24",
    "ranlux48",
    "knuth_b",
}

SOURCE_SUFFIXES = {".h", ".hpp", ".cc", ".cpp", ".cxx"}

# Callee names too generic to resolve across translation units by simple
# name — almost always STL container methods; resolving them would wire
# e.g. `collections_.count(...)` to Rdd::count and invent lock edges.
# The cost is a missed interprocedural edge through a method with one of
# these names; the nesting graph is an over-approximation either way.
GENERIC_CALLEES = {
    "count", "contains", "size", "empty", "begin", "end", "find", "at",
    "get", "push_back", "pop_back", "insert", "erase", "clear", "front",
    "back", "reset", "str", "c_str", "data", "emplace", "emplace_back",
    "push", "pop", "top", "value", "has_value", "reserve", "resize",
    "swap", "first", "second", "lock", "unlock", "substr", "append",
}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "case",
    "new", "delete", "throw", "alignof", "decltype", "static_assert",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "noexcept", "assert", "defined", "typeid", "co_await", "co_return",
}

SUPPRESS_RE = re.compile(
    r"hoh-analyze:\s*allow(?P<next>-next-line)?\s*\(\s*(?P<rules>[\w\s,-]+?)\s*\)"
    r"(?P<just>\s*--\s*\S.*)?"
)


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule}: {self.message}"

    def fingerprint(self) -> str:
        # Line-independent: rule + file + message, so a finding survives
        # unrelated edits above it without churning the baseline.
        digest = hashlib.sha1(
            f"{self.rule}|{self.file}|{self.message}".encode()
        ).hexdigest()
        return digest[:12]


# --------------------------------------------------------------------------
# File IR shared by both frontends
# --------------------------------------------------------------------------


@dataclass
class MutexDecl:
    mutex_id: str          # e.g. "StateStore::mu_" or "<fn>::mu"
    scope: str             # owning class scope ("" = function-local/global)
    file: str
    line: int
    function_local: bool = False


@dataclass
class Acquire:
    mutex_id: str
    line: int
    held: tuple            # mutex ids already held at this point


@dataclass
class CallSite:
    callee: str            # simple name
    receiver: tuple        # receiver chain idents, e.g. ("saga_", "trace")
    line: int
    held: tuple            # mutex ids held when the call is made


@dataclass
class UnorderedLoop:
    line: int
    container: str
    body_calls: list = field(default_factory=list)  # CallSite


@dataclass
class StateWrite:
    line: int
    lhs: str
    enum: str              # PilotState / UnitState


@dataclass
class FunctionIR:
    qname: str             # Namespace-free qualified name, e.g. "Agent::poll_store"
    simple: str
    file: str
    line: int
    acquires: list = field(default_factory=list)     # Acquire
    calls: list = field(default_factory=list)        # CallSite
    loops: list = field(default_factory=list)        # UnorderedLoop
    state_writes: list = field(default_factory=list)  # StateWrite


@dataclass
class FileIR:
    path: str
    mutexes: list = field(default_factory=list)      # MutexDecl
    guarded: set = field(default_factory=set)        # mutex ids with >=1 GUARDED_BY
    functions: list = field(default_factory=list)    # FunctionIR
    token_findings: list = field(default_factory=list)  # Finding (det-* scans)
    suppressions: dict = field(default_factory=dict)  # line -> set(rules)
    unjustified: list = field(default_factory=list)  # (line, rules)


# --------------------------------------------------------------------------
# Internal frontend: lexer
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|::|->\*?|<<=?|>>=?|<=|>=|==|!=|&&|\|\||\+\+|--|[-+*/%&|^!]=|\.\.\."
    r"|[{}()\[\];:,<>=&*.+\-!/~%?|^#]"
)


@dataclass(frozen=True)
class Tok:
    text: str
    line: int
    is_ident: bool


def lex(text: str, suppressions: dict, unjustified: list) -> list:
    """Tokenize C++ source: strips comments / string and char literals
    (collecting hoh-analyze suppression comments on the way), keeps line
    numbers. Preprocessor lines are dropped except #define bodies are not
    needed for any rule here."""
    toks: list = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            end = text.find("\n", i)
            if end == -1:
                end = n
            _scan_suppression(text[i:end], line, suppressions, unjustified)
            i = end
            continue
        if text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end == -1:
                end = n
            chunk = text[i:end]
            _scan_suppression(chunk, line, suppressions, unjustified)
            line += chunk.count("\n")
            i = end + 2
            continue
        if c == '"':
            if toks and toks[-1].is_ident and toks[-1].text.endswith("R"):
                # Raw string literal R"delim( ... )delim"
                m = re.match(r'"([^(\s]*)\(', text[i:])
                if m:
                    close = ")" + m.group(1) + '"'
                    end = text.find(close, i)
                    if end == -1:
                        end = n
                    line += text.count("\n", i, end)
                    i = end + len(close)
                    continue
            i, line = _skip_quoted(text, i, line, '"')
            continue
        if c == "'":
            i, line = _skip_quoted(text, i, line, "'")
            continue
        if c == "#":
            # Preprocessor directive: skip to end of (continued) line.
            end = i
            while True:
                nl = text.find("\n", end)
                if nl == -1:
                    end = n
                    break
                if text[nl - 1] == "\\":
                    line += 1
                    end = nl + 1
                    continue
                end = nl
                break
            line += 0
            i = end
            continue
        m = TOKEN_RE.match(text, i)
        if not m:
            i += 1
            continue
        t = m.group(0)
        toks.append(Tok(t, line, t[0].isalpha() or t[0] == "_"))
        i = m.end()
    return toks


def _skip_quoted(text: str, i: int, line: int, quote: str):
    i += 1
    n = len(text)
    while i < n:
        c = text[i]
        if c == "\\":
            i += 2
            continue
        if c == "\n":  # unterminated; bail at line end
            return i, line
        if c == quote:
            return i + 1, line
        i += 1
    return i, line


def _scan_suppression(comment: str, line: int, suppressions: dict,
                      unjustified: list) -> None:
    m = SUPPRESS_RE.search(comment)
    if not m:
        return
    rules = {r.strip() for r in m.group("rules").split(",") if r.strip()}
    target = line + 1 if m.group("next") else line
    suppressions.setdefault(target, set()).update(rules)
    if not m.group("just"):
        unjustified.append((line, tuple(sorted(rules))))


# --------------------------------------------------------------------------
# Internal frontend: scope / declaration parser
# --------------------------------------------------------------------------


def _match_paren(toks, i):
    """toks[i] == '('; returns index one past the matching ')'."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _match_brace(toks, i):
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def _ident_chain_before(toks, i):
    """Collect the a::b / a.b / a->b identifier chain ending at index i
    (inclusive). Returns list of idents, outermost first."""
    chain = []
    j = i
    while j >= 0:
        if not toks[j].is_ident:
            break
        chain.append(toks[j].text)
        if j - 1 >= 0 and toks[j - 1].text in ("::", ".", "->"):
            j -= 2
        else:
            break
    chain.reverse()
    return chain, j


class Registry:
    """Whole-program knowledge shared between passes: class members and
    their (string) types, and per-simple-name function index."""

    def __init__(self):
        self.members = defaultdict(dict)   # class -> {member: type_str}
        self.functions_by_simple = defaultdict(list)  # simple -> [FunctionIR]
        self.functions_by_qname = {}

    def member_type(self, cls: str, name: str):
        return self.members.get(cls, {}).get(name)


class InternalFrontend:
    """Tokenizer-based C++ frontend. Two passes: pass 1 records class
    member declarations into the registry; pass 2 parses function bodies
    (locks, calls, loops, state writes) with whole-program member types
    available."""

    def __init__(self, repo: pathlib.Path):
        self.repo = repo
        self.registry = Registry()
        self._lexed = {}   # path -> (tokens, suppressions, unjustified)

    # -- pass 1 ------------------------------------------------------------

    def scan_declarations(self, path: pathlib.Path, rel: str) -> None:
        toks = self._tokens(path, rel)
        self._walk_scopes(toks, rel, None)

    # -- pass 2 ------------------------------------------------------------

    def analyze(self, path: pathlib.Path, rel: str) -> FileIR:
        toks, suppressions, unjustified = self._lexed[rel]
        ir = FileIR(path=rel, suppressions=suppressions,
                    unjustified=list(unjustified))
        self._walk_scopes(toks, rel, ir)
        self._token_scan(toks, rel, ir)
        return ir

    # -- shared machinery --------------------------------------------------

    def _tokens(self, path: pathlib.Path, rel: str):
        if rel not in self._lexed:
            suppressions: dict = {}
            unjustified: list = []
            text = path.read_text(encoding="utf-8", errors="replace")
            toks = lex(text, suppressions, unjustified)
            self._lexed[rel] = (toks, suppressions, unjustified)
        return self._lexed[rel][0]

    def _walk_scopes(self, toks, rel, ir, lo=0, hi=None, scope=()):
        """Walk one brace level, classifying nested scopes. `scope` is the
        stack of enclosing class names (namespaces are dropped — the
        codebase has no same-name classes across namespaces)."""
        i = lo
        n = len(toks) if hi is None else hi
        while i < n:
            t = toks[i]
            if t.text in ("namespace",):
                j = i + 1
                while j < n and toks[j].text != "{" and toks[j].text != ";":
                    j += 1
                if j < n and toks[j].text == "{":
                    end = _match_brace(toks, j)
                    self._walk_scopes(toks, rel, ir, j + 1, end - 1, scope)
                    i = end
                    continue
                i = j + 1
                continue
            if t.text in ("class", "struct") and i + 1 < n \
                    and toks[i + 1].is_ident:
                name = toks[i + 1].text
                j = i + 2
                # Skip to the body '{' or a ';' (fwd decl). Bail on '('
                # (e.g. `struct tm tmbuf(...)`) or '=' (type alias).
                while j < n and toks[j].text not in ("{", ";", "(", "="):
                    j += 1
                if j < n and toks[j].text == "{":
                    end = _match_brace(toks, j)
                    self._class_body(toks, rel, ir, j + 1, end - 1,
                                     scope + (name,))
                    i = end
                    continue
                i = j + 1
                continue
            if t.text == "enum":
                j = i
                while j < n and toks[j].text not in ("{", ";"):
                    j += 1
                i = _match_brace(toks, j) if j < n and toks[j].text == "{" \
                    else j + 1
                continue
            if t.text == "{":
                i = _match_brace(toks, i)
                continue
            if t.text == "(":
                # Possible function definition at this scope.
                consumed = self._maybe_function(toks, rel, ir, i, n, scope)
                if consumed is not None:
                    i = consumed
                    continue
                i = _match_paren(toks, i)
                continue
            i += 1

    def _class_body(self, toks, rel, ir, lo, hi, scope):
        cls = scope[-1]
        i = lo
        while i < hi:
            t = toks[i]
            if t.text in ("class", "struct", "namespace", "enum"):
                # Nested type: recurse through the generic walker.
                j = i
                while j < hi and toks[j].text not in ("{", ";", "(", "="):
                    j += 1
                if j < hi and toks[j].text == "{" \
                        and t.text in ("class", "struct") \
                        and toks[i + 1].is_ident:
                    end = _match_brace(toks, j)
                    self._class_body(toks, rel, ir, j + 1, end - 1,
                                     scope + (toks[i + 1].text,))
                    i = end
                    continue
                if j < hi and toks[j].text == "{":
                    i = _match_brace(toks, j)
                    continue
                i = j + 1
                continue
            if t.is_ident and t.text in ("HOH_GUARDED_BY", "HOH_PT_GUARDED_BY") \
                    and i + 1 < hi and toks[i + 1].text == "(":
                end = _match_paren(toks, i + 1)
                expr = [tok.text for tok in toks[i + 2:end - 1] if tok.is_ident]
                if expr and ir is not None:
                    ir.guarded.add(self._resolve_mutex_name(expr[-1], scope))
                if expr:
                    # Also record during pass 1 (registry-level guard set
                    # is not needed; per-file IR carries it).
                    pass
                i = end
                continue
            if t.is_ident and t.text == "Mutex" and i + 1 < hi \
                    and toks[i + 1].is_ident and i + 2 <= hi \
                    and toks[i + 2].text in (";", "="):
                name = toks[i + 1].text
                mid = "::".join(scope) + "::" + name
                self.registry.members["::".join(scope)][name] = "Mutex"
                self.registry.members[cls][name] = "Mutex"
                if ir is not None:
                    ir.mutexes.append(MutexDecl(
                        mutex_id=self._resolve_mutex_name(name, scope),
                        scope="::".join(scope), file=rel, line=t.line))
                del mid
                i += 2
                continue
            if t.text == "(":
                consumed = self._maybe_function(toks, rel, ir, i, hi, scope)
                if consumed is not None:
                    i = consumed
                    continue
                i = _match_paren(toks, i)
                continue
            if t.text == "{":
                i = _match_brace(toks, i)
                continue
            if t.is_ident and i + 1 < hi and toks[i + 1].is_ident is False \
                    and toks[i + 1].text in (";", "=") and i > lo:
                # Plain member declaration `Type name;` — record its type.
                chain, start = _ident_chain_before(toks, i)
                if start >= lo and chain:
                    prev = toks[start - 1] if start - 1 >= lo else None
                    name = chain[-1]
                    type_toks = []
                    k = start - 1
                    while k >= lo and (toks[k].is_ident or toks[k].text in
                                       ("::", "<", ">", "&", "*", ",", "mutable",
                                        "const")):
                        type_toks.append(toks[k].text)
                        k -= 1
                    type_toks.reverse()
                    if type_toks:
                        # Raw type string: unordered-container detection
                        # needs the full spelling; lock resolution strips
                        # it down at the point of use.
                        self.registry.members[cls][name] = "".join(type_toks)
                    del prev
                i += 2
                continue
            i += 1

    @staticmethod
    def _strip_type(type_str: str) -> str:
        """Reduce a member type string to the class name a `->`/`.` access
        lands on: last identifier inside the innermost template args for
        smart pointers, else the last identifier."""
        idents = re.findall(r"[A-Za-z_]\w*", type_str)
        idents = [t for t in idents
                  if t not in ("std", "const", "mutable", "shared_ptr",
                               "unique_ptr", "weak_ptr", "vector", "deque",
                               "optional", "hoh", "common", "pilot", "sim",
                               "mapreduce", "spark", "yarn", "tenant")]
        return idents[-1] if idents else type_str

    def _resolve_mutex_name(self, name: str, scope) -> str:
        cls = scope[-1] if scope else ""
        return f"{cls}::{name}" if cls else name

    # -- function bodies ---------------------------------------------------

    def _maybe_function(self, toks, rel, ir, paren_i, hi, scope):
        """toks[paren_i] == '('. If this is a function definition, parse
        its body and return the index past the closing brace; else None."""
        # Name chain directly before '('.
        if paren_i == 0 or not toks[paren_i - 1].is_ident:
            return None
        chain, start = _ident_chain_before(toks, paren_i - 1)
        if not chain or chain[-1] in CPP_KEYWORDS:
            return None
        close = _match_paren(toks, paren_i)
        # After params: optional qualifiers, then '{' for a definition.
        j = close
        n = len(toks)
        while j < n and j < hi + 1 and toks[j].is_ident and toks[j].text in (
                "const", "noexcept", "override", "final", "mutable"):
            j += 1
        # Trailing annotation macros e.g. HOH_EXCLUDES(mu_)
        while j < n and toks[j].is_ident and toks[j].text.startswith("HOH_"):
            j += 1
            if j < n and toks[j].text == "(":
                j = _match_paren(toks, j)
        if j < n and toks[j].text == "->":  # trailing return type
            while j < n and toks[j].text not in ("{", ";"):
                j += 1
        if j >= n or toks[j].text != "{":
            return None
        # Constructor initializer lists start with ':' before '{'; the
        # loop above stops at '{' only, so handle ': init(...), ...' here.
        # (We reach here only when toks[j] == '{', so initializer lists
        # were already skipped by the qualifier scan failing — handle:)
        body_end = _match_brace(toks, j)
        simple = chain[-1]
        # Drop namespace qualifiers that are registry-known classes only.
        quals = [q for q in chain[:-1]
                 if q not in ("hoh", "std", "common", "pilot", "sim",
                              "mapreduce", "spark", "yarn", "tenant",
                              "saga", "hpc", "elastic", "analytics",
                              "cluster", "hdfs", "detail")]
        cls_scope = list(scope) + quals
        qname = "::".join(cls_scope + [simple]) if cls_scope else simple
        fn = FunctionIR(qname=qname, simple=simple, file=rel,
                        line=toks[paren_i - 1].line)
        params = self._parse_params(toks, paren_i + 1, close - 1)
        if ir is not None or True:
            self._parse_body(toks, j + 1, body_end - 1, fn, params,
                             tuple(cls_scope), ir)
        self.registry.functions_by_simple[simple].append(fn)
        self.registry.functions_by_qname[qname] = fn
        if ir is not None:
            ir.functions.append(fn)
        return body_end

    @staticmethod
    def _parse_params(toks, lo, hi):
        """Params as {name: stripped_type}; splits on top-level commas."""
        params = {}
        depth = 0
        group: list = []
        groups = [group]
        for k in range(lo, hi):
            t = toks[k].text
            if t in ("<", "(", "["):
                depth += 1
            elif t in (">", ")", "]"):
                depth -= 1
            elif t == "," and depth == 0:
                group = []
                groups.append(group)
                continue
            group.append(toks[k])
        for g in groups:
            idents = [t.text for t in g if t.is_ident]
            if len(idents) >= 2:
                params[idents[-1]] = idents[-2]
        return params

    def _parse_body(self, toks, lo, hi, fn: FunctionIR, params: dict,
                    scope, ir):
        """Single linear walk over a function body with a block stack that
        tracks live MutexLock scopes and local declarations."""
        locals_types = dict(params)
        # stack of (depth, mutex_id) for live locks; depth = brace depth.
        depth = 0
        live_locks: list = []
        i = lo
        while i < hi:
            t = toks[i]
            if t.text == "{":
                depth += 1
                i += 1
                continue
            if t.text == "}":
                depth -= 1
                live_locks = [(d, m) for (d, m) in live_locks if d <= depth]
                i += 1
                continue
            # Local struct/class: treat as class body for guard analysis.
            if t.text in ("struct", "class") and i + 1 < hi \
                    and toks[i + 1].is_ident:
                j = i + 2
                while j < hi and toks[j].text not in ("{", ";", "(", "="):
                    j += 1
                if j < hi and toks[j].text == "{":
                    end = _match_brace(toks, j)
                    self._class_body(toks, fn.file, ir, j + 1, end - 1,
                                     (fn.qname, toks[i + 1].text))
                    # Remember the local type name for later var decls,
                    # and handle the `struct Latch { ... } latch;` form
                    # where the declarator trails the body.
                    locals_types[toks[i + 1].text] = toks[i + 1].text
                    if end < hi and toks[end].is_ident \
                            and end + 1 <= hi \
                            and toks[end + 1].text in (";", "=", ","):
                        locals_types[toks[end].text] = toks[i + 1].text
                        end += 2
                    i = end
                    continue
            # MutexLock acquisition.
            if t.is_ident and t.text == "MutexLock" and i + 2 < hi \
                    and toks[i + 1].is_ident and toks[i + 2].text == "(":
                end = _match_paren(toks, i + 2)
                expr = toks[i + 3:end - 1]
                mid = self._resolve_lock_expr(expr, scope, locals_types, fn)
                held = tuple(m for (_, m) in live_locks)
                fn.acquires.append(Acquire(mutex_id=mid, line=t.line,
                                           held=held))
                live_locks.append((depth, mid))
                i = end
                continue
            # Function-local Mutex declaration (rule guard-local-mutex).
            if t.is_ident and t.text == "Mutex" and i + 1 < hi \
                    and toks[i + 1].is_ident and i + 2 <= hi \
                    and toks[i + 2].text in (";", "="):
                name = toks[i + 1].text
                if ir is not None:
                    ir.mutexes.append(MutexDecl(
                        mutex_id=f"{fn.qname}::{name}", scope="",
                        file=fn.file, line=t.line, function_local=True))
                locals_types[name] = "Mutex"
                i += 2
                continue
            # Range-based for.
            if t.text == "for" and i + 1 < hi and toks[i + 1].text == "(":
                close = _match_paren(toks, i + 1)
                inner = toks[i + 2:close - 1]
                colon_at = self._range_for_colon(inner)
                if colon_at is not None:
                    cont = [tok.text for tok in inner[colon_at + 1:]
                            if tok.is_ident]
                    is_unordered = self._is_unordered(
                        cont, locals_types, scope)
                    if is_unordered:
                        body_lo = close
                        body_hi = (_match_brace(toks, close)
                                   if close < hi and toks[close].text == "{"
                                   else self._stmt_end(toks, close, hi))
                        loop = UnorderedLoop(line=t.line,
                                             container=".".join(cont))
                        self._collect_calls(toks, body_lo, body_hi,
                                            loop.body_calls, live_locks)
                        fn.loops.append(loop)
                        i = body_hi
                        continue
                i = close
                continue
            # Assignment to a state member (rule state-write).
            if t.is_ident and t.text in ("state", "state_") and i + 1 < hi \
                    and toks[i + 1].text == "=" \
                    and (i + 2 >= hi or toks[i + 2].text != "="):
                chain, start = _ident_chain_before(toks, i)
                prev = toks[start - 1] if start - 1 >= 0 else None
                is_decl = prev is not None and prev.is_ident \
                    and prev.text not in ("return", "else")
                if not is_decl:
                    enum = self._state_rhs_enum(toks, i + 2, hi, params,
                                                locals_types)
                    if enum:
                        fn.state_writes.append(StateWrite(
                            line=t.line, lhs=".".join(chain), enum=enum))
                i += 2
                continue
            # Generic call site.
            if t.is_ident and i + 1 < hi and toks[i + 1].text == "(" \
                    and t.text not in CPP_KEYWORDS and t.text != "MutexLock":
                chain, _ = _ident_chain_before(toks, i)
                held = tuple(m for (_, m) in live_locks)
                fn.calls.append(CallSite(callee=chain[-1],
                                         receiver=tuple(chain[:-1]),
                                         line=t.line, held=held))
                # Track declared locals of known unordered types:
                # `std::unordered_map<...> name;` handled below via decl
                # scan; calls just recorded, walk continues inside parens.
                i += 1
                continue
            # Plain local declaration `Type[&*] name ...`: track the
            # variable's type so `x.mu` lock expressions and unordered
            # loops resolve. Conservative: requires the previous token to
            # not be an accessor/scope operator, and the candidate type to
            # look like a class name (leading capital), which is the
            # codebase naming convention.
            if t.is_ident and t.text[0].isupper() \
                    and t.text not in ("Mutex", "MutexLock") \
                    and (i == 0 or toks[i - 1].text not in
                         (".", "->", "::", "<")):
                j = i + 1
                while j < hi and toks[j].text in ("&", "*", "const"):
                    j += 1
                if j < hi and toks[j].is_ident and j + 1 <= hi \
                        and toks[j + 1].text in (";", "=", "(", "{") \
                        and toks[j].text not in CPP_KEYWORDS:
                    locals_types.setdefault(toks[j].text, t.text)
            # Local declaration of an unordered container (for loop rule).
            if t.is_ident and t.text in ("unordered_map", "unordered_set"):
                # find the declared name: skip template args, then ident.
                j = i + 1
                if j < hi and toks[j].text == "<":
                    tdepth = 0
                    while j < hi:
                        if toks[j].text == "<":
                            tdepth += 1
                        elif toks[j].text == ">":
                            tdepth -= 1
                            if tdepth == 0:
                                j += 1
                                break
                        elif toks[j].text == ">>":
                            tdepth -= 2
                            if tdepth <= 0:
                                j += 1
                                break
                        j += 1
                while j < hi and toks[j].text in ("&", "*", "const"):
                    j += 1
                if j < hi and toks[j].is_ident:
                    locals_types[toks[j].text] = "unordered"
                i += 1
                continue
            i += 1

    @staticmethod
    def _stmt_end(toks, i, hi):
        while i < hi and toks[i].text != ";":
            if toks[i].text == "(":
                i = _match_paren(toks, i)
                continue
            i += 1
        return i + 1

    @staticmethod
    def _range_for_colon(inner):
        depth = 0
        for k, tok in enumerate(inner):
            t = tok.text
            if t in ("(", "<", "["):
                depth += 1
            elif t in (")", ">", "]"):
                depth -= 1
            elif t == ";":
                return None  # classic for
            elif t == ":" and depth <= 0:
                return k
        return None

    def _is_unordered(self, chain, locals_types, scope):
        if not chain:
            return False
        for name in chain:
            ty = locals_types.get(name)
            if ty is None and scope:
                ty = self.registry.member_type(scope[-1], name)
            if ty and "unordered" in ty:
                return True
            if name in ("unordered_map", "unordered_set"):
                return True
        return False

    def _collect_calls(self, toks, lo, hi, out, live_locks):
        held = tuple(m for (_, m) in live_locks)
        i = lo
        while i < hi:
            t = toks[i]
            if t.is_ident and i + 1 < hi and toks[i + 1].text == "(" \
                    and t.text not in CPP_KEYWORDS:
                chain, _ = _ident_chain_before(toks, i)
                out.append(CallSite(callee=chain[-1],
                                    receiver=tuple(chain[:-1]),
                                    line=t.line, held=held))
            i += 1

    def _resolve_lock_expr(self, expr, scope, locals_types, fn: FunctionIR):
        idents = [t.text for t in expr if t.is_ident]
        if not idents:
            return "<unknown>"
        member = idents[-1]
        if len(idents) == 1:
            # Bare name: member of the enclosing class, a param, or local.
            if scope and self.registry.member_type(scope[-1], member):
                return f"{scope[-1]}::{member}"
            ty = locals_types.get(member)
            if ty == "Mutex":
                return f"{fn.qname}::{member}"
            if ty and ty != "Mutex":
                return f"{ty}::{member}"
            if scope:
                return f"{scope[-1]}::{member}"
            return f"{fn.qname}::{member}"
        base = idents[0]
        ty = locals_types.get(base)
        if ty is None and scope:
            ty = self.registry.member_type(scope[-1], base)
            if ty is not None:
                ty = self._strip_type(ty)
        if ty:
            return f"{ty}::{member}"
        return f"{base}::{member}"

    def _state_rhs_enum(self, toks, i, hi, params, locals_types):
        """Returns 'PilotState'/'UnitState' when the assignment RHS is a
        lifecycle enum value or a variable of that type, else None."""
        k = i
        while k < hi and toks[k].text != ";":
            t = toks[k]
            if t.is_ident and t.text in STATE_ENUMS:
                return t.text
            if t.is_ident:
                ty = params.get(t.text) or locals_types.get(t.text)
                if ty in STATE_ENUMS:
                    return ty
            k += 1
        return None

    # -- token-stream determinism scans ------------------------------------

    def _token_scan(self, toks, rel, ir: FileIR) -> None:
        if rel in DET_FILE_ALLOWLIST:
            return
        wire_exempt = rel.startswith(WIRE_DIR_PREFIX)
        n = len(toks)
        for i, t in enumerate(toks):
            if not t.is_ident:
                continue
            if not wire_exempt:
                if t.text == "reinterpret_cast":
                    ir.token_findings.append(Finding(
                        rel, t.line, "wire-encoding",
                        "reinterpret_cast outside src/net/; wire images "
                        "come from the net::Packer codec (DESIGN.md "
                        "§14), not pointer reinterpretation"))
                    continue
                if t.text in WIRE_BYTEORDER_IDENTS and i + 1 < n \
                        and toks[i + 1].text == "(":
                    ir.token_findings.append(Finding(
                        rel, t.line, "wire-encoding",
                        f"byte-order intrinsic `{t.text}()` outside "
                        f"src/net/; endianness is the codec's concern "
                        f"(net::Packer, DESIGN.md §14)"))
                    continue
                if t.text in WIRE_MEM_CALLEES and i + 1 < n \
                        and toks[i + 1].text == "(":
                    ir.token_findings.append(Finding(
                        rel, t.line, "wire-encoding",
                        f"`{t.text}()` outside src/net/; raw-memory "
                        f"serialization bypasses the bounds-checked "
                        f"net::Packer codec (DESIGN.md §14)"))
                    continue
            if t.text in WALLCLOCK_IDENTS:
                ir.token_findings.append(Finding(
                    rel, t.line, "det-wallclock",
                    f"wall-clock source `{t.text}`; simulated time comes "
                    f"from sim::Engine::now()"))
                continue
            if t.text == "clock" and i >= 1 and toks[i - 1].text == "::" \
                    and i >= 2 and toks[i - 2].text == "std":
                ir.token_findings.append(Finding(
                    rel, t.line, "det-wallclock",
                    "std::clock; simulated time comes from "
                    "sim::Engine::now()"))
                continue
            if t.text in RAND_IDENTS:
                ir.token_findings.append(Finding(
                    rel, t.line, "det-rand",
                    f"`{t.text}`; all randomness flows through the seeded "
                    f"common::Rng wrapper"))
                continue
            if t.text in RAND_CALLEES and i + 1 < n \
                    and toks[i + 1].text == "(" \
                    and (i == 0 or toks[i - 1].text not in (".", "->")):
                qualified_std = i >= 2 and toks[i - 1].text == "::" \
                    and toks[i - 2].text == "std"
                unqualified = i == 0 or toks[i - 1].text not in ("::",)
                if qualified_std or unqualified:
                    ir.token_findings.append(Finding(
                        rel, t.line, "det-rand",
                        f"`{t.text}()`; all randomness flows through the "
                        f"seeded common::Rng wrapper"))
                continue
            if t.text in RNG_ENGINE_TYPES and i + 1 < n \
                    and toks[i + 1].is_ident:
                j = i + 2
                unseeded = False
                if j <= n - 1 and toks[j].text == ";":
                    unseeded = True
                elif j < n and toks[j].text in ("{", "("):
                    closer = "}" if toks[j].text == "{" else ")"
                    if j + 1 < n and toks[j + 1].text == closer:
                        unseeded = True
                if unseeded:
                    ir.token_findings.append(Finding(
                        rel, t.line, "det-unseeded-rng",
                        f"`std::{t.text} {toks[i + 1].text}` constructed "
                        f"without a seed; seed every engine explicitly "
                        f"(or use common::Rng)"))


# --------------------------------------------------------------------------
# Optional libclang frontend (gated: requires python clang bindings + a
# libclang shared object; absent in minimal containers, present in CI
# images that install them). Produces the same FileIR.
# --------------------------------------------------------------------------


def load_libclang():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # libclang.so missing or unloadable
        return None
    return cindex


class LibclangFrontend:
    """clang.cindex-based frontend. Walks real AST cursors, so lock-expr
    and container-type resolution are exact where the internal frontend
    approximates. Kept behaviourally aligned with InternalFrontend: both
    emit the same FileIR and the fixture self-test runs against whichever
    frontends are available."""

    def __init__(self, repo: pathlib.Path, cindex, compile_args):
        self.repo = repo
        self.cindex = cindex
        self.index = cindex.Index.create()
        self.compile_args = compile_args  # file -> [args]
        # Reuse the internal frontend for suppression comments and the
        # token-level determinism scans (they are lexical by nature).
        self.lexical = InternalFrontend(repo)

    def scan_declarations(self, path, rel):
        self.lexical.scan_declarations(path, rel)

    def analyze(self, path, rel):
        ir = self.lexical.analyze(path, rel)
        args = self.compile_args.get(rel) or ["-x", "c++", "-std=c++17",
                                              "-I", str(self.repo / "src")]
        try:
            tu = self.index.parse(str(path), args=args)
        except self.cindex.TranslationUnitLoadError:
            return ir
        ck = self.cindex.CursorKind
        state_fns = []

        def visit(cur, fn_ir, held):
            for child in cur.get_children():
                loc_file = child.location.file
                if loc_file is None or \
                        not str(loc_file).endswith(str(path.name)):
                    continue
                kind = child.kind
                if kind in (ck.CXX_METHOD, ck.FUNCTION_DECL,
                            ck.CONSTRUCTOR, ck.DESTRUCTOR) \
                        and child.is_definition():
                    qname = self._qname(child)
                    f = FunctionIR(qname=qname,
                                   simple=child.spelling, file=rel,
                                   line=child.location.line)
                    state_fns.append(f)
                    visit(child, f, [])
                    continue
                if fn_ir is not None and kind == ck.VAR_DECL \
                        and child.type.spelling.endswith("MutexLock"):
                    mid = self._lock_target(child)
                    fn_ir.acquires.append(Acquire(
                        mutex_id=mid, line=child.location.line,
                        held=tuple(held)))
                    held = held + [mid]
                if fn_ir is not None and kind == ck.CALL_EXPR:
                    fn_ir.calls.append(CallSite(
                        callee=child.spelling or "<expr>", receiver=(),
                        line=child.location.line, held=tuple(held)))
                if fn_ir is not None and kind == ck.CXX_FOR_RANGE_STMT:
                    children = list(child.get_children())
                    rng = children[-2] if len(children) >= 2 else None
                    tname = rng.type.spelling if rng is not None else ""
                    if "unordered_map" in tname or "unordered_set" in tname:
                        loop = UnorderedLoop(line=child.location.line,
                                             container=tname)
                        self._calls_under(children[-1], loop.body_calls)
                        fn_ir.loops.append(loop)
                visit(child, fn_ir, held)

        def _noop(*_a):
            return None
        del _noop
        visit(tu.cursor, None, [])
        # Merge AST-derived functions over the lexical ones (AST wins on
        # structure; lexical IR already carries token findings etc.).
        if state_fns:
            ir.functions = state_fns
        return ir

    def _calls_under(self, cur, out):
        ck = self.cindex.CursorKind
        for child in cur.walk_preorder():
            if child.kind == ck.CALL_EXPR:
                out.append(CallSite(callee=child.spelling or "<expr>",
                                    receiver=(), line=child.location.line,
                                    held=()))

    def _qname(self, cur):
        parts = [cur.spelling]
        p = cur.semantic_parent
        ck = self.cindex.CursorKind
        while p is not None and p.kind in (ck.CLASS_DECL, ck.STRUCT_DECL):
            parts.append(p.spelling)
            p = p.semantic_parent
        return "::".join(reversed(parts))

    def _lock_target(self, var_cursor):
        ck = self.cindex.CursorKind
        for child in var_cursor.walk_preorder():
            if child.kind == ck.MEMBER_REF_EXPR:
                owner = child.semantic_parent
                cls = owner.spelling if owner is not None else ""
                ref = child.referenced
                if ref is not None and ref.semantic_parent is not None:
                    cls = ref.semantic_parent.spelling
                return f"{cls}::{child.spelling}"
            if child.kind == ck.DECL_REF_EXPR \
                    and child.spelling and child.spelling != var_cursor.spelling:
                return child.spelling
        return "<unknown>"


# --------------------------------------------------------------------------
# Rule evaluation over the collected IR
# --------------------------------------------------------------------------


def eval_rules(files: list, registry: Registry, args) -> tuple:
    findings: list = []
    for ir in files:
        findings.extend(ir.token_findings)
        findings.extend(_guard_rules(ir))
        findings.extend(_state_rules(ir))
        for line, rules in ir.unjustified:
            findings.append(Finding(
                ir.path, line, "suppression-unjustified",
                f"suppression for {', '.join(rules)} has no `--` "
                f"justification; explain why the site is safe"))
    findings.extend(_unordered_emit_rules(files, registry))
    graph, cycle_findings = _lock_order(files, registry)
    findings.extend(cycle_findings)
    # Apply per-site suppressions.
    by_file = {ir.path: ir.suppressions for ir in files}
    kept = []
    for f in findings:
        rules = by_file.get(f.file, {}).get(f.line, set())
        if f.rule in rules and f.rule != "suppression-unjustified":
            continue
        kept.append(f)
    return kept, graph


def _guard_rules(ir: FileIR):
    out = []
    for m in ir.mutexes:
        if m.function_local:
            out.append(Finding(
                m.file, m.line, "guard-local-mutex",
                f"function-local mutex `{m.mutex_id}` cannot carry "
                f"HOH_GUARDED_BY; hoist it into a struct with annotated "
                f"members (see ThreadPool::parallel_for's Latch)"))
            continue
        if m.mutex_id not in ir.guarded:
            out.append(Finding(
                m.file, m.line, "guard-missing",
                f"`{m.mutex_id}` guards no HOH_GUARDED_BY member; "
                f"-Wthread-safety cannot check what it protects"))
    return out


def _state_rules(ir: FileIR):
    out = []
    if ir.path in STATE_GATE_FILES:
        return out
    for fn in ir.functions:
        if fn.qname in STATE_GATE_FUNCTIONS:
            continue
        for w in fn.state_writes:
            out.append(Finding(
                ir.path, w.line, "state-write",
                f"direct {w.enum} store `{w.lhs} = ...` in "
                f"{fn.qname}; lifecycle mutations must flow through "
                f"StateStore::update / Pilot::set_state so "
                f"validate_transition gates every edge"))
    return out


def _unordered_emit_rules(files: list, registry: Registry):
    # reaches-sink fixpoint over the simple-name call graph.
    sink_cache: dict = {}

    def call_is_sink(call: CallSite) -> bool:
        if call.callee in SINK_NAMES:
            return True
        return any(h in r.lower() for r in call.receiver
                   for h in SINK_RECEIVER_HINTS)

    def reaches_sink(simple: str, seen: frozenset) -> bool:
        if simple in sink_cache:
            return sink_cache[simple]
        if simple in seen:
            return False
        result = False
        for fn in registry.functions_by_simple.get(simple, []):
            for call in fn.calls:
                if call_is_sink(call) or reaches_sink(
                        call.callee, seen | {simple}):
                    result = True
                    break
            if result:
                break
        sink_cache[simple] = result
        return result

    out = []
    for ir in files:
        for fn in ir.functions:
            for loop in fn.loops:
                hit = None
                for call in loop.body_calls:
                    if call_is_sink(call):
                        hit = call
                        break
                    if reaches_sink(call.callee, frozenset()):
                        hit = call
                        break
                if hit is not None:
                    out.append(Finding(
                        ir.path, loop.line, "det-unordered-emit",
                        f"iteration over unordered container "
                        f"`{loop.container}` reaches emission path via "
                        f"`{hit.callee}()`; hash-bucket order leaks into "
                        f"replayable output — sort keys first or emit "
                        f"from an ordered copy"))
    return out


def _lock_order(files: list, registry: Registry):
    """Build the cross-TU MutexLock nesting graph and report cycles."""
    # may_acquire fixpoint: simple fn name -> set of mutex ids acquired
    # by the function or anything it calls.
    direct = defaultdict(set)
    calls = defaultdict(set)
    for ir in files:
        for fn in ir.functions:
            for a in fn.acquires:
                direct[fn.simple].add(a.mutex_id)
            for c in fn.calls:
                calls[fn.simple].add(c.callee)
    may = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for f, callees in calls.items():
            cur = may.setdefault(f, set())
            before = len(cur)
            for c in callees:
                if c in GENERIC_CALLEES:
                    continue
                cur |= may.get(c, set())
            if len(cur) != before:
                changed = True

    edges = defaultdict(list)   # (from, to) -> [site]
    for ir in files:
        for fn in ir.functions:
            for a in fn.acquires:
                for h in a.held:
                    if h != a.mutex_id:
                        edges[(h, a.mutex_id)].append(
                            f"{ir.path}:{a.line}")
            for c in fn.calls:
                if not c.held or c.callee in GENERIC_CALLEES:
                    continue
                for target in may.get(c.callee, ()):
                    for h in c.held:
                        if h != target:
                            edges[(h, target)].append(
                                f"{ir.path}:{c.line} (via {c.callee})")

    findings = []
    # Self-deadlock: re-acquiring a held mutex (direct nesting only — the
    # interprocedural may-acquire set is a name-based over-approximation,
    # too coarse to accuse a specific call path of self-deadlock).
    for ir in files:
        for fn in ir.functions:
            for a in fn.acquires:
                if a.mutex_id in a.held:
                    findings.append(Finding(
                        ir.path, a.line, "lock-order-self",
                        f"`{a.mutex_id}` re-acquired while already held in "
                        f"{fn.qname}; common::Mutex is non-recursive"))

    nodes = sorted({n for e in edges for n in e}
                   | {m for ms in direct.values() for m in ms})
    graph = {
        "nodes": nodes,
        "edges": [
            {"from": a, "to": b, "sites": sorted(set(sites))[:8]}
            for (a, b), sites in sorted(edges.items())
        ],
        "cycles": [],
    }

    # Tarjan SCC over the edge set.
    adj = defaultdict(set)
    for (a, b) in edges:
        adj[a].add(b)
    index_of: dict = {}
    low: dict = {}
    on_stack: set = set()
    stack: list = []
    sccs: list = []
    counter = [0]

    def strongconnect(v):
        work = [(v, iter(sorted(adj[v])))]
        index_of[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index_of[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index_of[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(adj):
        if v not in index_of:
            strongconnect(v)

    for scc in sccs:
        cyclic = len(scc) > 1 or (len(scc) == 1 and scc[0] in adj[scc[0]])
        if not cyclic:
            continue
        members = sorted(scc)
        graph["cycles"].append(members)
        sites = []
        for a in members:
            for b in members:
                if (a, b) in edges:
                    sites.append(edges[(a, b)][0])
        site = sites[0] if sites else "<unknown>:0"
        file, _, line = site.partition(":")
        line_no = int(re.match(r"\d+", line).group(0)) if \
            re.match(r"\d+", line) else 0
        findings.append(Finding(
            file, line_no, "lock-order-cycle",
            f"lock-order cycle between {{{', '.join(members)}}}; "
            f"potential deadlock — fix the nesting or document a single "
            f"global order"))
    return graph, findings


# --------------------------------------------------------------------------
# File-set discovery
# --------------------------------------------------------------------------


def discover_files(repo: pathlib.Path, args):
    """Returns (ordered file list, compile_args map). With -p, the TU set
    comes from compile_commands.json (the tier-1 preset exports it) plus
    every header under src/ (the engine and RDD layers are header-only);
    with --paths, a plain tree walk."""
    rels: dict = {}
    compile_args: dict = {}
    if args.build_dir:
        db = pathlib.Path(args.build_dir) / "compile_commands.json"
        if not db.is_file():
            print(f"hoh_analyze: {db} not found; configure with "
                  f"CMAKE_EXPORT_COMPILE_COMMANDS=ON (the tier1 preset "
                  f"does)", file=sys.stderr)
            sys.exit(2)
        for entry in json.loads(db.read_text()):
            f = pathlib.Path(entry["directory"]) / entry["file"] \
                if not pathlib.Path(entry["file"]).is_absolute() \
                else pathlib.Path(entry["file"])
            f = f.resolve()
            try:
                rel = f.relative_to(repo).as_posix()
            except ValueError:
                continue
            if not rel.startswith("src/"):
                continue
            rels[rel] = f
            raw = entry.get("arguments")
            if raw is None and entry.get("command"):
                raw = entry["command"].split()
            if raw:
                compile_args[rel] = [a for a in raw[1:]
                                     if a not in ("-c", "-o")][:-1]
        for f in sorted((repo / "src").rglob("*")):
            if f.suffix in (".h", ".hpp") and f.is_file():
                rels.setdefault(f.relative_to(repo).as_posix(), f)
    else:
        for root in args.paths or ["src"]:
            rootp = pathlib.Path(root)
            if not rootp.is_absolute():
                rootp = repo / root
            for f in sorted(rootp.rglob("*")):
                if f.suffix in SOURCE_SUFFIXES and f.is_file():
                    try:
                        rel = f.resolve().relative_to(repo).as_posix()
                    except ValueError:
                        rel = f.resolve().as_posix()
                    rels[rel] = f
    return sorted(rels.items()), compile_args


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------


def load_baseline(path: pathlib.Path):
    if not path.is_file():
        return []
    data = json.loads(path.read_text())
    return data.get("findings", [])


def write_baseline(path: pathlib.Path, findings):
    entries = []
    counts: dict = {}
    for f in sorted(findings, key=lambda x: (x.file, x.line, x.rule)):
        fp = f.fingerprint()
        counts[fp] = counts.get(fp, 0) + 1
        entries.append({
            "rule": f.rule,
            "file": f.file,
            "fingerprint": fp,
            "occurrence": counts[fp],
            "note": f.message,
        })
    path.write_text(json.dumps(
        {"comment": "Grandfathered hoh_analyze findings. Ratchet-only: "
                    "entries may be removed when fixed, never added — new "
                    "findings must be fixed or suppressed at the site "
                    "with a justified `hoh-analyze: allow(...)` comment.",
         "findings": entries}, indent=2) + "\n")


# --------------------------------------------------------------------------
# Main
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hoh_analyze.py",
        description="AST-level determinism / lock-order / state-discipline "
                    "/ annotation-coverage analyzer (see module docstring)")
    parser.add_argument("-p", "--build-dir",
                        help="build dir containing compile_commands.json "
                             "(tier-1 preset exports it)")
    parser.add_argument("--paths", nargs="*",
                        help="analyze these trees instead of a compile db")
    parser.add_argument("--frontend", choices=("auto", "internal",
                                               "libclang"),
                        default="auto",
                        help="AST frontend; auto = libclang when the "
                             "python bindings are importable, else the "
                             "dependency-free internal parser (CI pins "
                             "internal for reproducibility)")
    parser.add_argument("--baseline",
                        default=str(pathlib.Path(__file__).parent /
                                    "baseline.json"),
                        help="baseline file of grandfathered findings")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline (report everything)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--dot", help="write the lock-order graph as DOT")
    parser.add_argument("--graph-json",
                        help="write the lock-order graph as JSON")
    parser.add_argument("--rules", help="comma-separated rule subset")
    args = parser.parse_args(argv)

    repo = pathlib.Path(__file__).resolve().parent.parent.parent
    files, compile_args = discover_files(repo, args)
    if not files:
        print("hoh_analyze: no source files found", file=sys.stderr)
        return 2

    cindex = None
    if args.frontend in ("auto", "libclang"):
        cindex = load_libclang()
        if cindex is None and args.frontend == "libclang":
            print("hoh_analyze: --frontend libclang requested but "
                  "clang.cindex / libclang.so is unavailable; install the "
                  "python3 clang bindings or use --frontend internal",
                  file=sys.stderr)
            return 2
    if cindex is not None and args.frontend != "internal":
        frontend = LibclangFrontend(repo, cindex, compile_args)
        registry = frontend.lexical.registry
    else:
        frontend = InternalFrontend(repo)
        registry = frontend.registry

    for rel, path in files:          # pass 1: declarations
        frontend.scan_declarations(path, rel)
    irs = [frontend.analyze(path, rel) for rel, path in files]  # pass 2

    findings, graph = eval_rules(irs, registry, args)
    if args.rules:
        keep = {r.strip() for r in args.rules.split(",")}
        findings = [f for f in findings if f.rule in keep]
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    if args.dot:
        lines = ["digraph lock_order {", '  rankdir=LR;',
                 '  node [shape=box, fontname="monospace"];']
        for node in graph["nodes"]:
            lines.append(f'  "{node}";')
        for e in graph["edges"]:
            label = e["sites"][0] if e["sites"] else ""
            lines.append(f'  "{e["from"]}" -> "{e["to"]}" '
                         f'[label="{label}"];')
        for cyc in graph["cycles"]:
            for node in cyc:
                lines.append(f'  "{node}" [color=red, penwidth=2];')
        lines.append("}")
        pathlib.Path(args.dot).write_text("\n".join(lines) + "\n")
    if args.graph_json:
        pathlib.Path(args.graph_json).write_text(
            json.dumps(graph, indent=2) + "\n")

    if args.write_baseline:
        write_baseline(pathlib.Path(args.baseline), findings)
        print(f"hoh_analyze: baseline written with {len(findings)} "
              f"finding(s)", file=sys.stderr)
        return 0

    baseline = [] if args.no_baseline else \
        load_baseline(pathlib.Path(args.baseline))
    budget: dict = defaultdict(int)
    for entry in baseline:
        budget[entry["fingerprint"]] += 1
    new = []
    seen: dict = defaultdict(int)
    for f in findings:
        fp = f.fingerprint()
        seen[fp] += 1
        if seen[fp] <= budget.get(fp, 0):
            continue
        new.append(f)
    stale = sum(b - seen.get(fp, 0) for fp, b in budget.items()
                if b > seen.get(fp, 0))

    for f in new:
        print(f.render())
    print(
        f"hoh_analyze: {len(files)} files, {len(findings)} finding(s), "
        f"{len(findings) - len(new)} baselined, {len(new)} new, "
        f"{stale} stale baseline entr{'y' if stale == 1 else 'ies'}",
        file=sys.stderr)
    if stale:
        print("hoh_analyze: stale baseline entries no longer fire — "
              "shrink the baseline (ratchet!) with --write-baseline",
              file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
