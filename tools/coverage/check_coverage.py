#!/usr/bin/env python3
"""Aggregate gcov line coverage for src/ and gate it against a floor.

Runs plain `gcov --json-format` over every .gcda in a coverage build tree
(CMake preset `coverage`), merges the per-TU reports (a header line is
covered if any TU covered it), and prints per-file plus total line
coverage for files under src/. With --fail-under, exits non-zero when
total line coverage drops below the floor — the CI coverage job's gate.

Usage:
  python3 tools/coverage/check_coverage.py --build-dir build-cov
  python3 tools/coverage/check_coverage.py --build-dir build-cov \
      --fail-under 80.0
"""

import argparse
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda_path):
    """One gcov JSON report per translation unit, parsed from stdout."""
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.basename(gcda_path)],
        cwd=os.path.dirname(gcda_path),
        capture_output=True,
        text=True,
        check=False,
    )
    if out.returncode != 0 or not out.stdout.strip():
        return None
    # gcov emits one JSON document per input file; we pass exactly one.
    return json.loads(out.stdout.splitlines()[0])


def repo_relative(path, repo_root):
    absolute = os.path.normpath(
        path if os.path.isabs(path) else os.path.join(repo_root, path)
    )
    try:
        return os.path.relpath(absolute, repo_root)
    except ValueError:
        return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-cov")
    parser.add_argument(
        "--source-prefix",
        default="src",
        help="only files under this repo-relative prefix count (default: src)",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        help="exit 1 when total line coverage (percent) is below this",
    )
    args = parser.parse_args()

    repo_root = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..")
    )
    build_dir = os.path.abspath(args.build_dir)
    prefix = args.source_prefix.rstrip("/") + "/"

    # (file -> line -> max execution count across TUs)
    lines = {}
    reports = 0
    for gcda in find_gcda(build_dir):
        report = gcov_json(gcda)
        if report is None:
            continue
        reports += 1
        for entry in report.get("files", []):
            rel = repo_relative(entry.get("file", ""), repo_root)
            if rel is None or not rel.startswith(prefix):
                continue
            per_file = lines.setdefault(rel, {})
            for line in entry.get("lines", []):
                number = line.get("line_number")
                count = line.get("count", 0)
                if number is None:
                    continue
                per_file[number] = max(per_file.get(number, 0), count)

    if not lines:
        print(
            f"check_coverage: no gcov data for {prefix}* under {build_dir} "
            "(build with the 'coverage' preset and run ctest first)",
            file=sys.stderr,
        )
        return 2

    total_lines = 0
    total_covered = 0
    print(f"{'file':<52} {'lines':>7} {'covered':>8} {'pct':>7}")
    for rel in sorted(lines):
        per_file = lines[rel]
        if not per_file:  # declaration-only file: nothing instrumented
            continue
        covered = sum(1 for count in per_file.values() if count > 0)
        total_lines += len(per_file)
        total_covered += covered
        pct = 100.0 * covered / len(per_file)
        print(f"{rel:<52} {len(per_file):>7} {covered:>8} {pct:>6.1f}%")

    total_pct = 100.0 * total_covered / total_lines
    print(
        f"\nTOTAL ({reports} translation units): "
        f"{total_covered}/{total_lines} lines = {total_pct:.2f}%"
    )
    if args.fail_under is not None and total_pct < args.fail_under:
        print(
            f"check_coverage: {total_pct:.2f}% is below the "
            f"{args.fail_under:.2f}% floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
