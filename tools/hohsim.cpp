/// hohsim — run K-Means middleware experiments from a JSON plan.
///
/// Usage:
///   hohsim <plan.json>         run every experiment in the plan
///   hohsim --demo              run a built-in two-cell demo plan
///   hohsim --json <plan.json>  emit machine-readable JSON results
///   hohsim --strict ...        unknown plan keys abort instead of warn
///
/// Plan format (see src/analytics/experiment_config.h):
///   {"experiments": [{"machine": "stampede", "nodes": 3, "tasks": 32,
///                     "stack": "rp-yarn", "scenario": "1m"}, ...]}
///
/// An experiment may carry an "elastic" section to run the cell under an
/// ElasticController, e.g.
///   {"machine": "stampede", "nodes": 2, "tasks": 64, "stack": "rp-yarn",
///    "scenario": "1m",
///    "elastic": {"policy": "backlog", "max_nodes": 6,
///                "sample_interval": 30}}
///
/// A "failures" section arms a seeded FailureInjector over the machine's
/// batch pool, and a "recovery" section enables pilot resubmission + unit
/// requeue under a retry policy (see plans/fault_recovery.json):
///   {"machine": "stampede", "nodes": 3, "tasks": 32, "stack": "rp",
///    "scenario": "1m",
///    "failures": {"seed": 7, "mean_time_to_crash": 600,
///                 "mean_time_to_repair": 300, "max_crashes": 1,
///                 "start_after": 300},
///    "recovery": {"max_attempts": 3, "base_backoff": 5}}

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analytics/experiment_config.h"
#include "common/error.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw hoh::common::NotFoundError("cannot open plan file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* kDemoPlan = R"({
  "experiments": [
    {"machine": "stampede", "nodes": 3, "tasks": 32,
     "stack": "rp", "scenario": "1m"},
    {"machine": "stampede", "nodes": 3, "tasks": 32,
     "stack": "rp-yarn", "scenario": "1m"}
  ]
})";

const char* kHelp = R"(hohsim - run K-Means middleware experiments from a JSON plan

usage:
  hohsim <plan.json>         run every experiment in the plan
  hohsim --json <plan.json>  emit machine-readable JSON results
  hohsim --strict ...        unknown plan keys are errors, not warnings
  hohsim --demo              run a built-in two-cell demo plan
  hohsim --help              show this help

A plan is {"experiments": [<experiment>, ...]}. Unknown keys anywhere in
the plan are warned about and ignored; under --strict (used by every CI
invocation) they abort the run instead. Each experiment supports:

  core cell (paper Fig. 6):
    machine   "stampede" | "wrangler" | "generic"    (default stampede)
    scenario  "10k" | "100k" | "1m" or {points, clusters, iterations}
    nodes     pilot allocation size                  (default 1)
    tasks     units per map/reduce wave              (default 8)
    stack     "rp" (plain pilot) | "rp-yarn" (Mode-I YARN)

  cost model & calibration:
    op_cost                per-op seconds            (default 4e-5)
    shuffle_amplification  reduce-phase multiplier   (default 4.0)
    reuse_yarn_app         one AM for all units      (default false)

  control plane (DESIGN.md s10):
    control_plane  "poll" | "watch"                  (default poll)

  elastic (DESIGN.md s8) - resize the pilot under a policy:
    {"policy": "backlog", "max_nodes": 6, "min_nodes": 2,
     "sample_interval": 30, "drain_timeout": 120, "params": {...}}

  failures (DESIGN.md s9) - seeded fault injection on the batch pool:
    {"seed": 7, "mean_time_to_crash": 600, "mean_time_to_repair": 300,
     "mean_time_to_slow": 0, "slow_factor": 0.5, "slow_duration": 60,
     "max_crashes": 1, "start_after": 300}

  recovery (DESIGN.md s9) - pilot resubmission + unit requeue:
    {"max_attempts": 3, "base_backoff": 5, "multiplier": 2,
     "max_backoff": 300, "jitter": 0.1}

  tenants (DESIGN.md s11) - multi-tenant submission gateway; waves are
  submitted through admission control, ordered fair-share or FIFO,
  with per-tenant quotas and usage accounting:
    {"policy": "fair-share" | "fifo",       (default fair-share)
     "decay_half_life": 600,                usage half-life, seconds
     "dispatch_window": 0,                  max in-flight units, 0 = off
     "preemption": false, "preempt_ratio": 4.0,
     "journal": "accounting.json",          durable journal path
     "list": [{"id": "alice", "share": 2.0,
               "max_in_flight": 0, "max_cores": 0,
               "submit_rate": 0.0, "submit_burst": 1.0}, ...]}

  allow_failure  expected-to-fail cell does not fail the run  (false)

  scale knobs (DESIGN.md s13):
    store_shards   state-store shard count, >= 1       (default 1)
    spawn_latency  agent task-spawner seconds          (default 1.2)
    trace_rollup   fold unit trace events to counters  (default false)
    pilot_runtime  pilot walltime request, sim seconds (default 172800)

  transport (DESIGN.md s14) - data-plane message boundary:
    transport  "inprocess" | "socket"                  (default inprocess)
               socket routes every RM<->NM / agent / store / submit
               message over loopback TCP (epoll reactor); digests are
               byte-identical to inprocess (CI socket-parity gate)
    net        socket knobs, ignored for inprocess:
               {"host": "127.0.0.1", "port": 0,        0 = ephemeral
                "reconnect_attempts": 8, "reconnect_backoff": 0.01,
                "reconnect_seed": 1}

Plans without a tenants section run the single-tenant passthrough path
(no gateway constructed) and produce byte-identical digests to older
builds. See plans/ for keystone examples.
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace hoh;
  using namespace hoh::analytics;

  bool json_output = false;
  bool demo = false;
  std::string plan_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        std::printf("%s", kHelp);
        return 0;
      } else if (arg == "--json") {
        json_output = true;
      } else if (arg == "--strict") {
        set_strict_plan_parsing(true);
      } else if (arg == "--demo") {
        demo = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "hohsim: unknown flag %s\n", arg.c_str());
        return 2;
      } else {
        plan_path = arg;
      }
    }
    std::string plan_text;
    if (demo) {
      plan_text = kDemoPlan;
    } else if (!plan_path.empty()) {
      plan_text = read_file(plan_path);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--strict] <plan.json> | --demo | "
                   "--help\n",
                   argv[0]);
      return 2;
    }

    const auto plan =
        experiment_plan_from_json(common::Json::parse(plan_text));
    common::JsonArray results;
    if (!json_output) {
      std::printf("%-10s %-28s %6s %6s %-8s %12s %10s\n", "machine",
                  "scenario", "nodes", "tasks", "stack", "ttc (s)",
                  "startup");
    }
    for (const auto& cfg : plan) {
      const auto result = run_kmeans_experiment(cfg);
      if (json_output) {
        results.push_back(result_to_json(cfg, result));
      } else {
        std::printf("%-10s %-28s %6d %6d %-8s %12.1f %10.1f%s\n",
                    cfg.machine.name.c_str(), cfg.scenario.label.c_str(),
                    cfg.nodes, cfg.tasks, cfg.yarn_stack ? "rp-yarn" : "rp",
                    result.time_to_completion, result.agent_startup,
                    result.ok ? "" : "  [FAILED]");
        if (cfg.elastic) {
          const auto& c = result.elastic_counters;
          std::printf(
              "           elastic[%s %d..%d]: peak %d nodes, %zu samples, "
              "%zu grow / %zu shrink / %zu hold, +%d/-%d nodes, "
              "%zu clean shrinks, %zu drain timeouts\n",
              cfg.elastic_policy.name.c_str(), cfg.elastic_config.min_nodes,
              cfg.elastic_config.max_nodes, result.peak_nodes, c.samples,
              c.grow_decisions, c.shrink_decisions, c.hold_decisions,
              c.nodes_added, c.nodes_removed, c.clean_shrinks,
              c.forced_shrinks);
        }
        if (cfg.failures) {
          const auto& f = result.failure_counters;
          std::printf(
              "           failures[seed %llu]: %d crashes, %d repairs, "
              "%d slow episodes; recovery %s: %zu pilot resubmits, "
              "%zu units requeued, %zu abandoned; checksum %s\n",
              static_cast<unsigned long long>(cfg.failure_plan.seed),
              f.crashes, f.repairs, f.slow_episodes,
              cfg.recovery ? "on" : "off", result.pilots_resubmitted,
              result.units_requeued, result.units_abandoned,
              result.output_checksum.c_str());
        }
        if (cfg.tenants) {
          std::printf(
              "           tenants[%s, %zu tenants]: %zu preempted\n",
              tenant::to_string(cfg.gateway_config.policy),
              cfg.tenant_specs.size(), result.units_preempted);
          if (result.tenant_accounting.is_object() &&
              result.tenant_accounting.contains("tenants")) {
            for (const auto& [id, t] :
                 result.tenant_accounting.at("tenants").as_object()) {
              std::printf(
                  "             %-12s completed %6lld  rejected %4lld  "
                  "core-s %10.1f  mean wait %8.2fs\n",
                  id.c_str(),
                  static_cast<long long>(t.at("completed").as_number()),
                  static_cast<long long>(t.at("rejected").as_number()),
                  t.at("core_seconds").as_number(),
                  t.at("wait").at("mean").as_number());
            }
          }
        }
      }
      if (!result.ok) {
        std::fprintf(stderr, "experiment failed: %s tasks=%d%s\n",
                     cfg.scenario.label.c_str(), cfg.tasks,
                     cfg.allow_failure ? " (allowed)" : "");
        if (!cfg.allow_failure) return 1;
      }
    }
    if (json_output) {
      common::Json out;
      out["results"] = std::move(results);
      std::printf("%s\n", out.dump(2).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hohsim: %s\n", e.what());
    return 1;
  }
  return 0;
}
