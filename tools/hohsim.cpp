/// hohsim — run K-Means middleware experiments from a JSON plan.
///
/// Usage:
///   hohsim <plan.json>         run every experiment in the plan
///   hohsim --demo              run a built-in two-cell demo plan
///   hohsim --json <plan.json>  emit machine-readable JSON results
///
/// Plan format (see src/analytics/experiment_config.h):
///   {"experiments": [{"machine": "stampede", "nodes": 3, "tasks": 32,
///                     "stack": "rp-yarn", "scenario": "1m"}, ...]}
///
/// An experiment may carry an "elastic" section to run the cell under an
/// ElasticController, e.g.
///   {"machine": "stampede", "nodes": 2, "tasks": 64, "stack": "rp-yarn",
///    "scenario": "1m",
///    "elastic": {"policy": "backlog", "max_nodes": 6,
///                "sample_interval": 30}}
///
/// A "failures" section arms a seeded FailureInjector over the machine's
/// batch pool, and a "recovery" section enables pilot resubmission + unit
/// requeue under a retry policy (see plans/fault_recovery.json):
///   {"machine": "stampede", "nodes": 3, "tasks": 32, "stack": "rp",
///    "scenario": "1m",
///    "failures": {"seed": 7, "mean_time_to_crash": 600,
///                 "mean_time_to_repair": 300, "max_crashes": 1,
///                 "start_after": 300},
///    "recovery": {"max_attempts": 3, "base_backoff": 5}}

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analytics/experiment_config.h"
#include "common/error.h"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw hoh::common::NotFoundError("cannot open plan file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

const char* kDemoPlan = R"({
  "experiments": [
    {"machine": "stampede", "nodes": 3, "tasks": 32,
     "stack": "rp", "scenario": "1m"},
    {"machine": "stampede", "nodes": 3, "tasks": 32,
     "stack": "rp-yarn", "scenario": "1m"}
  ]
})";

}  // namespace

int main(int argc, char** argv) {
  using namespace hoh;
  using namespace hoh::analytics;

  bool json_output = false;
  std::string plan_text;
  try {
    if (argc >= 2 && std::string(argv[1]) == "--demo") {
      plan_text = kDemoPlan;
    } else if (argc >= 3 && std::string(argv[1]) == "--json") {
      json_output = true;
      plan_text = read_file(argv[2]);
    } else if (argc >= 2) {
      plan_text = read_file(argv[1]);
    } else {
      std::fprintf(stderr,
                   "usage: %s <plan.json> | --json <plan.json> | --demo\n",
                   argv[0]);
      return 2;
    }

    const auto plan =
        experiment_plan_from_json(common::Json::parse(plan_text));
    common::JsonArray results;
    if (!json_output) {
      std::printf("%-10s %-28s %6s %6s %-8s %12s %10s\n", "machine",
                  "scenario", "nodes", "tasks", "stack", "ttc (s)",
                  "startup");
    }
    for (const auto& cfg : plan) {
      const auto result = run_kmeans_experiment(cfg);
      if (json_output) {
        results.push_back(result_to_json(cfg, result));
      } else {
        std::printf("%-10s %-28s %6d %6d %-8s %12.1f %10.1f%s\n",
                    cfg.machine.name.c_str(), cfg.scenario.label.c_str(),
                    cfg.nodes, cfg.tasks, cfg.yarn_stack ? "rp-yarn" : "rp",
                    result.time_to_completion, result.agent_startup,
                    result.ok ? "" : "  [FAILED]");
        if (cfg.elastic) {
          const auto& c = result.elastic_counters;
          std::printf(
              "           elastic[%s %d..%d]: peak %d nodes, %zu samples, "
              "%zu grow / %zu shrink / %zu hold, +%d/-%d nodes, "
              "%zu clean shrinks, %zu drain timeouts\n",
              cfg.elastic_policy.name.c_str(), cfg.elastic_config.min_nodes,
              cfg.elastic_config.max_nodes, result.peak_nodes, c.samples,
              c.grow_decisions, c.shrink_decisions, c.hold_decisions,
              c.nodes_added, c.nodes_removed, c.clean_shrinks,
              c.forced_shrinks);
        }
        if (cfg.failures) {
          const auto& f = result.failure_counters;
          std::printf(
              "           failures[seed %llu]: %d crashes, %d repairs, "
              "%d slow episodes; recovery %s: %zu pilot resubmits, "
              "%zu units requeued, %zu abandoned; checksum %s\n",
              static_cast<unsigned long long>(cfg.failure_plan.seed),
              f.crashes, f.repairs, f.slow_episodes,
              cfg.recovery ? "on" : "off", result.pilots_resubmitted,
              result.units_requeued, result.units_abandoned,
              result.output_checksum.c_str());
        }
      }
      if (!result.ok) {
        std::fprintf(stderr, "experiment failed: %s tasks=%d%s\n",
                     cfg.scenario.label.c_str(), cfg.tasks,
                     cfg.allow_failure ? " (allowed)" : "");
        if (!cfg.allow_failure) return 1;
      }
    }
    if (json_output) {
      common::Json out;
      out["results"] = std::move(results);
      std::printf("%s\n", out.dump(2).c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hohsim: %s\n", e.what());
    return 1;
  }
  return 0;
}
