// hohnode — the wire protocol (DESIGN.md §14) between real processes.
//
// The simulator exercises the codec and the socket transport inside one
// process; hohnode splits the roles across genuine OS processes speaking
// the same versioned frames over TCP:
//
//   hohnode rm     --port 7410 --agents 2 --units 100
//   hohnode agent  --connect 127.0.0.1:7410 --name a0 --cores 4
//   hohnode agent  --connect 127.0.0.1:7410 --name a1 --cores 4
//
// The rm role listens, waits for the announced number of agents (and
// optional submitters), dispatches UnitAssign messages up to each
// agent's core capacity, collects UnitResult replies, then sends Bye
// and prints the FNV-1a digest over the sorted completed unit names —
// the same digest hohsim prints for a simulated cell, so a
// multi-process run is checkable against the in-process one.
//
// Roles:
//   rm      listen, dispatch, collect, digest
//   agent   execute units (optionally sleeping duration * --work-scale)
//   submit  stream extra UnitAssign submissions to the rm, then Bye

#include <unistd.h>

#include <poll.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "common/error.h"
#include "net/message.h"
#include "net/ring_buffer.h"
#include "net/socket_util.h"

namespace {

using namespace hoh;

constexpr const char* kUsage = R"(usage:
  hohnode rm     [--host H] [--port P] --agents K [--submitters S]
                 [--units N] [--duration SECS]
  hohnode agent  --connect H:P --name NAME [--cores C] [--work-scale X]
  hohnode submit --connect H:P --name NAME --units N [--duration SECS]

rm listens for K agent and S submitter connections (Hello), dispatches
its own N units plus every submitted unit across the agents (at most
`cores` in flight per agent), and on completion sends Bye to each agent
and prints
    hohnode: <n> units, digest <fnv1a hex>
The digest is FNV-1a over the sorted completed unit names — identical
to hohsim's outputChecksum formula, so the multi-process run can be
diffed against a simulated one.

agent runs units: each UnitAssign is answered with a UnitResult after
sleeping duration * work-scale seconds (default 0: complete instantly).

submit streams N UnitAssign submissions and says Bye.
)";

/// FNV-1a over the sorted, newline-joined names — the simulator's
/// outputChecksum formula (kmeans_experiment.cpp).
std::string digest_names(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  std::uint64_t h = 14695981039346656037ull;
  for (const auto& name : names) {
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= static_cast<unsigned char>('\n');
    h *= 1099511628211ull;
  }
  char out[17];
  std::snprintf(out, sizeof(out), "%016llx",
                static_cast<unsigned long long>(h));
  return out;
}

struct Options {
  std::string role;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string name = "node";
  int agents = 0;
  int submitters = 0;
  int units = 0;
  int cores = 1;
  double duration = 0.0;
  double work_scale = 0.0;
};

std::uint16_t parse_port(const std::string& text) {
  const long v = std::strtol(text.c_str(), nullptr, 10);
  if (v < 0 || v > 65535) {
    throw common::ConfigError("bad port: " + text);
  }
  return static_cast<std::uint16_t>(v);
}

Options parse_options(int argc, char** argv) {
  if (argc < 2) throw common::ConfigError("missing role");
  Options opt;
  opt.role = argv[1];
  auto need = [&](int i) -> std::string {
    if (i + 1 >= argc) {
      throw common::ConfigError(std::string("flag ") + argv[i] +
                                " needs a value");
    }
    return argv[i + 1];
  };
  for (int i = 2; i < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--host") {
      opt.host = need(i);
    } else if (flag == "--port") {
      opt.port = parse_port(need(i));
    } else if (flag == "--connect") {
      const std::string hp = need(i);
      const std::size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        throw common::ConfigError("--connect wants HOST:PORT, got " + hp);
      }
      opt.host = hp.substr(0, colon);
      opt.port = parse_port(hp.substr(colon + 1));
    } else if (flag == "--name") {
      opt.name = need(i);
    } else if (flag == "--agents") {
      opt.agents = std::stoi(need(i));
    } else if (flag == "--submitters") {
      opt.submitters = std::stoi(need(i));
    } else if (flag == "--units") {
      opt.units = std::stoi(need(i));
    } else if (flag == "--cores") {
      opt.cores = std::stoi(need(i));
    } else if (flag == "--duration") {
      opt.duration = std::stod(need(i));
    } else if (flag == "--work-scale") {
      opt.work_scale = std::stod(need(i));
    } else {
      throw common::ConfigError("unknown flag " + flag);
    }
  }
  return opt;
}

// --- rm role ---------------------------------------------------------

struct Conn {
  int fd = -1;
  net::RingBuffer buf;
  bool is_agent = false;
  bool said_hello = false;
  bool done = false;  // submitter sent Bye / agent was told Bye
  std::string name;
  int cores = 1;
  int in_flight = 0;
};

/// Drains every complete frame buffered on \p conn into \p out.
void drain_frames(Conn& conn, std::deque<net::Envelope>* out) {
  while (conn.buf.size() >= net::kFrameHeaderBytes) {
    std::vector<std::uint8_t> flat(conn.buf.size());
    conn.buf.peek(flat.data(), flat.size());
    net::Envelope env;
    const std::size_t used =
        net::try_decode_frame(flat.data(), flat.size(), &env);
    if (used == 0) return;
    conn.buf.consume(used);
    out->push_back(std::move(env));
  }
}

int run_rm(const Options& opt) {
  if (opt.agents < 1) {
    throw common::ConfigError("rm needs --agents >= 1");
  }
  std::uint16_t bound = 0;
  int listen_fd = net::tcp_listen(opt.host, opt.port, &bound);
  std::fprintf(stderr, "hohnode rm: listening on %s:%u, waiting for %d agent(s)",
               opt.host.c_str(), bound, opt.agents);
  std::fprintf(stderr, opt.submitters > 0 ? " + %d submitter(s)\n" : "\n",
               opt.submitters);

  std::vector<Conn> conns;
  std::deque<net::UnitAssign> pending;
  for (int i = 0; i < opt.units; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "unit-%06d", i);
    pending.push_back(net::UnitAssign{name, name, opt.duration});
  }
  std::vector<std::string> completed;
  int agents_connected = 0;
  int submitters_open = 0;
  int submitters_seen = 0;
  bool intake_open = true;  // still expecting connections / submissions

  auto dispatch = [&] {
    // Least-loaded agent first keeps the load even without any
    // global queue state on the agents.
    while (!pending.empty()) {
      Conn* best = nullptr;
      for (auto& c : conns) {
        if (!c.is_agent || c.done || c.in_flight >= c.cores) continue;
        if (best == nullptr || c.in_flight < best->in_flight) best = &c;
      }
      if (best == nullptr) return;
      net::write_frame(best->fd, net::make_envelope(pending.front()));
      pending.pop_front();
      ++best->in_flight;
    }
  };

  for (;;) {
    const bool all_agents_in = agents_connected >= opt.agents;
    const bool all_submitters_done =
        submitters_seen >= opt.submitters && submitters_open == 0;
    if (all_agents_in && all_submitters_done) intake_open = false;
    if (!intake_open && pending.empty()) {
      bool idle = true;
      for (const auto& c : conns) {
        if (c.is_agent && c.in_flight > 0) idle = false;
      }
      if (idle) break;
    }

    std::vector<pollfd> fds;
    if (intake_open) fds.push_back({listen_fd, POLLIN, 0});
    for (const auto& c : conns) {
      if (c.fd >= 0 && !c.done) fds.push_back({c.fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw common::ResourceError(std::string("poll: ") +
                                  std::strerror(errno));
    }

    for (const pollfd& p : fds) {
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (p.fd == listen_fd) {
        const int fd = net::tcp_accept(listen_fd);
        if (fd >= 0) {
          Conn c;
          c.fd = fd;
          conns.push_back(std::move(c));
        }
        continue;
      }
      auto it = std::find_if(conns.begin(), conns.end(),
                             [&](const Conn& c) { return c.fd == p.fd; });
      if (it == conns.end()) continue;
      std::uint8_t chunk[4096];
      const ssize_t n = ::read(it->fd, chunk, sizeof(chunk));
      if (n <= 0) {
        if (it->is_agent && it->in_flight > 0) {
          throw common::ResourceError("agent " + it->name +
                                      " died with units in flight");
        }
        if (!it->is_agent && it->said_hello && !it->done) --submitters_open;
        net::close_socket(it->fd);
        it->done = true;
        continue;
      }
      it->buf.append(chunk, static_cast<std::size_t>(n));
      std::deque<net::Envelope> frames;
      drain_frames(*it, &frames);
      for (const auto& env : frames) {
        if (!it->said_hello) {
          const auto hello = net::open_envelope<net::Hello>(env);
          it->said_hello = true;
          it->name = hello.name;
          if (hello.role == net::Hello::kAgent) {
            it->is_agent = true;
            it->cores = std::max<std::int64_t>(1, hello.cores);
            ++agents_connected;
            std::fprintf(stderr, "hohnode rm: agent %s (%d cores)\n",
                         it->name.c_str(), it->cores);
          } else {
            ++submitters_open;
            ++submitters_seen;
            std::fprintf(stderr, "hohnode rm: submitter %s\n",
                         it->name.c_str());
          }
          continue;
        }
        switch (env.type) {
          case net::MsgType::kUnitAssign: {  // submitter -> rm submission
            pending.push_back(net::open_envelope<net::UnitAssign>(env));
            break;
          }
          case net::MsgType::kUnitResult: {
            const auto result = net::open_envelope<net::UnitResult>(env);
            --it->in_flight;
            if (result.ok) completed.push_back(result.name);
            break;
          }
          case net::MsgType::kBye: {
            if (!it->is_agent) --submitters_open;
            it->done = true;
            break;
          }
          default:
            throw common::StateError(
                std::string("rm: unexpected message ") +
                net::to_string(env.type) + " from " + it->name);
        }
      }
    }
    dispatch();
  }

  for (auto& c : conns) {
    if (c.is_agent && c.fd >= 0) {
      net::write_frame(c.fd, net::make_envelope(net::Bye{}));
      net::close_socket(c.fd);
    }
  }
  net::close_socket(listen_fd);
  std::printf("hohnode: %zu units, digest %s\n", completed.size(),
              digest_names(completed).c_str());
  return 0;
}

// --- agent role ------------------------------------------------------

int run_agent(const Options& opt) {
  int fd = net::tcp_connect(opt.host, opt.port);
  net::write_frame(
      fd, net::make_envelope(net::Hello{net::Hello::kAgent, opt.name,
                                        opt.cores}));
  net::RingBuffer buf;
  net::Envelope env;
  std::size_t executed = 0;
  while (net::read_frame(fd, buf, &env)) {
    if (env.type == net::MsgType::kBye) break;
    const auto assign = net::open_envelope<net::UnitAssign>(env);
    if (opt.work_scale > 0.0 && assign.duration > 0.0) {
      ::usleep(static_cast<useconds_t>(assign.duration * opt.work_scale *
                                       1e6));
    }
    ++executed;
    net::write_frame(fd, net::make_envelope(net::UnitResult{
                             assign.unit_id, assign.name, true}));
  }
  net::close_socket(fd);
  std::fprintf(stderr, "hohnode agent %s: %zu unit(s) executed\n",
               opt.name.c_str(), executed);
  return 0;
}

// --- submit role -----------------------------------------------------

int run_submit(const Options& opt) {
  if (opt.units < 1) {
    throw common::ConfigError("submit needs --units >= 1");
  }
  int fd = net::tcp_connect(opt.host, opt.port);
  net::write_frame(fd, net::make_envelope(net::Hello{net::Hello::kSubmitter,
                                                     opt.name, 0}));
  for (int i = 0; i < opt.units; ++i) {
    char name[96];
    std::snprintf(name, sizeof(name), "%s-unit-%06d", opt.name.c_str(), i);
    net::write_frame(fd, net::make_envelope(net::UnitAssign{
                             name, name, opt.duration}));
  }
  net::write_frame(fd, net::make_envelope(net::Bye{}));
  net::close_socket(fd);
  std::fprintf(stderr, "hohnode submit %s: %d unit(s) submitted\n",
               opt.name.c_str(), opt.units);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
      std::printf("%s", kUsage);
      return 0;
    }
    const Options opt = parse_options(argc, argv);
    if (opt.role == "rm") return run_rm(opt);
    if (opt.role == "agent") return run_agent(opt);
    if (opt.role == "submit") return run_submit(opt);
    std::fprintf(stderr, "hohnode: unknown role \"%s\"\n%s",
                 opt.role.c_str(), kUsage);
    return 2;
  } catch (const std::exception& err) {
    std::fprintf(stderr, "hohnode: %s\n", err.what());
    return 1;
  }
}
