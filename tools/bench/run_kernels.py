#!/usr/bin/env python3
"""Run bench/kernels_benchmark and track the results in BENCH_kernels.json.

The committed baseline (BENCH_kernels.json at the repo root) stores, per
benchmark, the median wall time of the seed engines ("before_ns") and of
the current engines ("after_ns"). This tool

  * runs the benchmark binary with --benchmark_format=json and N
    repetitions, normalizing the per-benchmark medians;
  * with --update {before,after}, writes those medians into the chosen
    slot of the baseline (creating the file as needed);
  * with --check, compares the measured medians against the committed
    "after_ns" entries and fails when any benchmark is slower than
    tolerance x baseline — the regression gate CI runs.

Wall times on shared or single-CPU runners are noisy, which is why the
default gate is a generous 2x and why medians (not means) are compared.

Usage:
  tools/bench/run_kernels.py --binary build-rel/bench/kernels_benchmark
  tools/bench/run_kernels.py --binary ... --check [--tolerance 2.0]
  tools/bench/run_kernels.py --binary ... --update after
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
DEFAULT_BASELINE = REPO_ROOT / "BENCH_kernels.json"
SCHEMA = "hoh-bench-kernels-v1"


def find_binary() -> pathlib.Path | None:
    for build in ("build-rel", "build", "build-release"):
        cand = REPO_ROOT / build / "bench" / "kernels_benchmark"
        if cand.is_file():
            return cand
    return None


def run_benchmark(binary: pathlib.Path, repetitions: int,
                  raw_out: pathlib.Path | None) -> dict[str, float]:
    """Runs the binary and returns {benchmark name: median real_time ns}."""
    cmd = [
        str(binary),
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=true",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    data = json.loads(proc.stdout)
    if raw_out is not None:
        raw_out.write_text(proc.stdout)
    medians: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        name = bench["name"]
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
            name = name[: -len("_median")]
        # google-benchmark reports real_time in the benchmark's time_unit.
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        medians[name] = float(bench["real_time"]) * scale
    return medians


def load_baseline(path: pathlib.Path) -> dict:
    if path.is_file():
        return json.loads(path.read_text())
    return {"schema": SCHEMA, "source": "bench/kernels_benchmark",
            "note": ("median wall time over repeated runs; 'before' is the "
                     "seed engine data path, 'after' the flat-shuffle / "
                     "shared-partition one"),
            "benchmarks": {}}


def cmd_update(baseline_path: pathlib.Path, slot: str,
               medians: dict[str, float]) -> int:
    baseline = load_baseline(baseline_path)
    benchmarks = baseline.setdefault("benchmarks", {})
    for name, ns in sorted(medians.items()):
        benchmarks.setdefault(name, {})[f"{slot}_ns"] = round(ns)
    baseline["benchmarks"] = dict(sorted(benchmarks.items()))
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(medians)} '{slot}' entries to {baseline_path}")
    return 0


def cmd_check(baseline_path: pathlib.Path, medians: dict[str, float],
              tolerance: float) -> int:
    baseline = load_baseline(baseline_path)
    entries = baseline.get("benchmarks", {})
    failures = []
    missing = []
    width = max((len(n) for n in medians), default=10)
    print(f"{'benchmark':<{width}}  {'measured':>12}  {'baseline':>12}  ratio")
    for name, ns in sorted(medians.items()):
        ref = entries.get(name, {}).get("after_ns")
        if ref is None:
            missing.append(name)
            print(f"{name:<{width}}  {ns / 1e6:>10.3f}ms  {'--':>12}  (no baseline)")
            continue
        ratio = ns / ref
        flag = " REGRESSION" if ratio > tolerance else ""
        print(f"{name:<{width}}  {ns / 1e6:>10.3f}ms  {ref / 1e6:>10.3f}ms  "
              f"{ratio:5.2f}x{flag}")
        if ratio > tolerance:
            failures.append((name, ratio))
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) slower than "
              f"{tolerance:.1f}x the committed baseline:")
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    if missing:
        print(f"\nnote: {len(missing)} benchmark(s) have no committed "
              f"baseline entry yet (run --update after)")
    print("\nOK: all benchmarks within tolerance")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, default=None,
                        help="kernels_benchmark binary (default: search "
                             "build-rel/, build/)")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help="baseline JSON path (default: BENCH_kernels.json)")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--raw-out", type=pathlib.Path, default=None,
                        help="also write the raw google-benchmark JSON here")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed 'after' baseline")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="allowed measured/baseline ratio for --check")
    parser.add_argument("--update", choices=["before", "after"], default=None,
                        help="write measured medians into this baseline slot")
    args = parser.parse_args()

    binary = args.binary or find_binary()
    if binary is None or not pathlib.Path(binary).is_file():
        print("error: kernels_benchmark binary not found; pass --binary",
              file=sys.stderr)
        return 2

    medians = run_benchmark(pathlib.Path(binary), args.repetitions,
                            args.raw_out)
    if not medians:
        print("error: benchmark produced no results", file=sys.stderr)
        return 2

    if args.update:
        return cmd_update(args.baseline, args.update, medians)
    if args.check:
        return cmd_check(args.baseline, medians, args.tolerance)
    # No mode: print the normalized medians.
    for name, ns in sorted(medians.items()):
        print(f"{name}  {ns / 1e6:.3f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
