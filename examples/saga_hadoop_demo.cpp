/// SAGA-Hadoop walkthrough (paper SS-III-A / Fig. 2): spawn a YARN
/// cluster and a Spark cluster inside HPC allocations, submit framework
/// applications, read cluster status, and tear everything down — the
/// four interactions of the paper's Fig. 2.
///
///   $ ./examples/saga_hadoop_demo

#include <cstdio>

#include "pilot/saga_hadoop.h"
#include "yarn/application_master.h"

int main() {
  using namespace hoh;
  using pilot::HadoopFramework;

  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 8);
  pilot::SagaHadoop tool(session);

  // 1. Start a 3-node YARN cluster on Stampede.
  const auto yarn_id = tool.start_cluster(
      "slurm://stampede/", 3, HadoopFramework::kYarn, 3600.0, [&] {
        std::printf("[%7.1fs] YARN cluster running\n",
                    session.engine().now());
      });
  std::printf("[%7.1fs] requested YARN cluster %s (state %s)\n",
              session.engine().now(), yarn_id.c_str(),
              pilot::to_string(tool.state(yarn_id)).c_str());
  session.engine().run_until(300.0);

  // 2. Submit a YARN application: an AM that fans out 4 task containers.
  int tasks_done = 0;
  yarn::AppDescriptor app;
  app.name = "wordcount";
  app.on_am_start = [&](yarn::ApplicationMaster& am) {
    yarn::ContainerRequest req;
    req.resource = {2048, 1};
    am.request_containers(4, req, [&](const yarn::Container& c) {
      am.launch(c.id, [&, id = c.id] {
        session.engine().schedule(60.0, [&, id] {
          am.complete_container(id);
          if (++tasks_done == 4) am.unregister(true);
        });
      });
    });
  };
  const auto app_id = tool.submit_yarn_app(yarn_id, std::move(app));
  std::printf("[%7.1fs] submitted %s\n", session.engine().now(),
              app_id.c_str());
  session.engine().run_until(600.0);

  // 3. Cluster status via the REST-style metrics.
  auto* yarn = tool.yarn(yarn_id);
  std::printf("[%7.1fs] app %s state: %s\n", session.engine().now(),
              app_id.c_str(),
              yarn::to_string(
                  yarn->resource_manager().application(app_id).state)
                  .c_str());
  std::printf("cluster metrics: %s\n",
              yarn->resource_manager().cluster_metrics().dump(2).c_str());

  // 4. Stop the YARN cluster; spin up Spark instead.
  tool.stop_cluster(yarn_id);
  std::printf("[%7.1fs] YARN cluster stopped\n", session.engine().now());

  const auto spark_id = tool.start_cluster("slurm://stampede/", 2,
                                           HadoopFramework::kSpark);
  session.engine().run_until(session.engine().now() + 200.0);
  spark::SparkAppDescriptor sapp;
  sapp.name = "pyspark-shell";
  sapp.executor_cores = 8;
  const auto spark_app = tool.submit_spark_app(spark_id, sapp);
  session.engine().run_until(session.engine().now() + 60.0);
  auto* spark = tool.spark(spark_id);
  std::printf("[%7.1fs] spark app %s: %d task slots, master status:\n%s\n",
              session.engine().now(), spark_app.c_str(),
              spark->task_slots(spark_app),
              spark->status().dump(2).c_str());
  tool.stop_cluster(spark_id);
  std::printf("[%7.1fs] done\n", session.engine().now());
  return 0;
}
