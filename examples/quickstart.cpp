/// Quickstart: the smallest end-to-end Pilot-API program.
///
/// Registers a small cluster, submits one pilot, runs a bag of
/// Compute-Units through it, and prints the lifecycle as it happens.
/// Everything runs on the deterministic simulation clock, so the output
/// is reproducible.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "common/statistics.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

int main() {
  using namespace hoh;

  // 1. A session holds the simulation engine, the state store and the
  //    machine registry.
  pilot::Session session;
  session.register_machine(cluster::generic_profile(4, 8, 16 * 1024),
                           hpc::SchedulerKind::kSlurm, 4);

  // 2. Describe and submit a pilot: a 2-node placeholder job.
  pilot::PilotDescription pd;
  pd.resource = "slurm://beowulf/";
  pd.nodes = 2;
  pd.runtime = 3600.0;

  pilot::PilotManager pm(session);
  auto pilot = pm.submit_pilot(pd);
  pilot->on_state_change([&](pilot::PilotState s) {
    std::printf("[%7.1fs] pilot %s -> %s\n", session.engine().now(),
                pilot->id().c_str(), pilot::to_string(s).c_str());
  });

  // 3. Submit 12 Compute-Units (each simulating 30s of work).
  pilot::UnitManager um(session);
  um.add_pilot(pilot);
  std::vector<pilot::ComputeUnitDescription> cuds;
  for (int i = 0; i < 12; ++i) {
    pilot::ComputeUnitDescription cud;
    cud.name = "task-" + std::to_string(i);
    cud.executable = "/bin/simulate";
    cud.cores = 2;
    cud.memory_mb = 2048;
    cud.duration = 30.0;
    cuds.push_back(cud);
  }
  auto units = um.submit(cuds);
  std::printf("submitted %zu units to %s\n", units.size(),
              pilot->id().c_str());

  // 4. Drive the simulation until everything finished.
  while (!um.all_done() && session.engine().now() < 7200.0) {
    session.engine().run_until(session.engine().now() + 10.0);
  }
  std::printf("[%7.1fs] all units done: %zu/%zu succeeded\n",
              session.engine().now(), um.done_count(), um.submitted());

  // 5. Inspect the trace: per-unit startup latency.
  common::RunningStats startup;
  for (const auto& s : session.trace().find_spans("unit", "startup")) {
    startup.add(s.duration());
  }
  std::printf("unit startup: %s\n", common::summarize(startup).c_str());
  pilot->cancel();
  return 0;
}
