/// Mode II (HPC on Hadoop) on Wrangler: one application mixes classic
/// HPC simulation units and Hadoop analytics units under a single
/// Unit-Manager — the paper's "seamlessly connect HPC stages with
/// analysis stages using the Pilot-Abstraction" scenario, using
/// Wrangler's dedicated Hadoop reservation.
///
///   $ ./examples/hybrid_pipeline

#include <cstdio>

#include "analytics/graph.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

int main() {
  using namespace hoh;

  pilot::Session session;
  session.register_machine(cluster::wrangler_profile(),
                           hpc::SchedulerKind::kSge, 8);
  // Wrangler's persistent Hadoop environment (data-portal reservation).
  auto& hadoop = session.create_dedicated_hadoop("wrangler", 4);
  std::printf("dedicated Hadoop: %zu NodeManagers, namenode %s\n",
              hadoop.resource_manager().node_count(),
              hadoop.hdfs().namenode().c_str());

  pilot::PilotManager pm(session);

  // Pilot A: plain HPC pilot for the simulation stage.
  pilot::PilotDescription hpc_pd;
  hpc_pd.resource = "sge://wrangler/";
  hpc_pd.nodes = 2;
  hpc_pd.runtime = 12 * 3600.0;
  auto hpc_pilot = pm.submit_pilot(hpc_pd);

  // Pilot B: Mode II pilot connected to the dedicated YARN cluster.
  pilot::PilotDescription yarn_pd = hpc_pd;
  yarn_pd.nodes = 1;
  yarn_pd.backend = pilot::AgentBackend::kYarnModeII;
  auto yarn_pilot = pm.submit_pilot(yarn_pd);

  // One Unit-Manager drives both pilots; units are bound explicitly by
  // stage (simulation -> HPC pilot, analytics -> YARN pilot) using two
  // single-pilot managers for clarity.
  pilot::UnitManager sim_um(session);
  sim_um.add_pilot(hpc_pilot);
  pilot::UnitManager ana_um(session);
  ana_um.add_pilot(yarn_pilot);

  // Stage 1: coupled simulation burst (MPI units).
  std::vector<pilot::ComputeUnitDescription> sims;
  for (int i = 0; i < 6; ++i) {
    pilot::ComputeUnitDescription cud;
    cud.name = "epidemic-sim-" + std::to_string(i);
    cud.executable = "episim";
    cud.is_mpi = true;
    cud.cores = 16;
    cud.memory_mb = 16 * 1024;
    cud.duration = 600.0;
    cud.output_staging = {{saga::Url("file://wrangler/scratch/contacts-" +
                                     std::to_string(i) + ".parquet"),
                           512 * common::kMiB}};
    sims.push_back(cud);
  }
  sim_um.submit(sims);
  while (!sim_um.all_done() && session.engine().now() < 48 * 3600.0) {
    session.engine().run_until(session.engine().now() + 30.0);
  }
  std::printf("[%8.1fs] simulation burst done (%zu units)\n",
              session.engine().now(), sim_um.done_count());

  // Stage 2: graph analytics on the dedicated cluster (Mode II) —
  // contact-network triangle counting per simulation output.
  for (int i = 0; i < 6; ++i) {
    hadoop.hdfs().create_file("/contacts/contacts-" + std::to_string(i) +
                                  ".parquet",
                              512 * common::kMiB, "", 3);
  }
  std::vector<pilot::ComputeUnitDescription> analytics;
  for (int i = 0; i < 6; ++i) {
    pilot::ComputeUnitDescription cud;
    cud.name = "triangle-count-" + std::to_string(i);
    cud.executable = "spark-submit";
    cud.cores = 8;
    cud.memory_mb = 12 * 1024;
    cud.duration = 300.0;
    cud.input_staging = {{saga::Url("hdfs://wrangler/contacts/contacts-" +
                                    std::to_string(i) + ".parquet"),
                          512 * common::kMiB}};
    analytics.push_back(cud);
  }
  ana_um.submit(analytics);
  while (!ana_um.all_done() && session.engine().now() < 96 * 3600.0) {
    session.engine().run_until(session.engine().now() + 30.0);
  }
  std::printf("[%8.1fs] analytics stage done (%zu units)\n",
              session.engine().now(), ana_um.done_count());

  // The real analytics the units stand for: triangle counting and
  // PageRank on a synthetic contact network (the paper's network-science
  // use case, ref [12]), computed in-process.
  common::ThreadPool pool(4);
  spark::SparkEnv spark_env(4);
  const auto contacts =
      analytics::preferential_attachment_graph(2'000, 3, 7);
  const auto triangles = analytics::count_triangles(pool, contacts);
  const auto cc = analytics::clustering_coefficient(pool, contacts);
  const auto ranks = analytics::pagerank_rdd(spark_env, contacts, 15);
  std::size_t hub = 0;
  for (std::size_t v = 0; v < ranks.size(); ++v) {
    if (ranks[v] > ranks[hub]) hub = v;
  }
  std::printf("\ncontact network: %zu vertices, %zu edges, "
              "%llu triangles, clustering %.4f\n",
              contacts.vertex_count(), contacts.edge_count(),
              static_cast<unsigned long long>(triangles), cc);
  std::printf("top spreader by RDD PageRank: vertex %zu (rank %.5f, "
              "degree %zu)\n",
              hub, ranks[hub], contacts.adjacency[hub].size());

  std::printf("\ncluster metrics after the run:\n%s\n",
              hadoop.resource_manager().cluster_metrics().dump(2).c_str());
  std::printf("pipeline spanned both worlds: %zu HPC units + %zu Hadoop "
              "units under one Pilot-API session\n",
              sim_um.done_count(), ana_um.done_count());
  hpc_pilot->cancel();
  yarn_pilot->cancel();
  return 0;
}
