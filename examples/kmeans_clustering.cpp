/// K-Means four ways: runs the *real* K-Means implementations (serial,
/// thread-parallel, MapReduce engine, mini-RDD engine) on the same
/// synthetic dataset, verifies they agree, and reports host wall time —
/// the in-process analogue of the paper's benchmark workload. Then runs
/// one Fig. 6 cell end-to-end through the simulated middleware and
/// reports the simulated time-to-completion.
///
///   $ ./examples/kmeans_clustering

#include <chrono>
#include <cmath>
#include <cstdio>

#include "analytics/kmeans.h"
#include "analytics/kmeans_experiment.h"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main() {
  using namespace hoh;
  using namespace hoh::analytics;

  // --- real computation, four backends ---
  const std::size_t n = 50'000;
  const std::size_t k = 20;
  const int iterations = 3;
  std::printf("dataset: %zu 3-D points, k=%zu, %d iterations\n", n, k,
              iterations);
  const auto points = gaussian_blobs(n, k, 42);

  common::ThreadPool pool(4);
  spark::SparkEnv spark_env(4);

  KMeansResult serial;
  KMeansResult threaded;
  KMeansResult mr;
  KMeansResult rdd;
  const double t_serial = wall_seconds(
      [&] { serial = kmeans_serial(points, k, iterations); });
  const double t_threaded = wall_seconds(
      [&] { threaded = kmeans_threaded(pool, points, k, iterations); });
  const double t_mr = wall_seconds(
      [&] { mr = kmeans_mapreduce(pool, points, k, iterations, 16, 8); });
  const double t_rdd = wall_seconds(
      [&] { rdd = kmeans_rdd(spark_env, points, k, iterations, 16); });

  std::printf("%-22s %12s %14s\n", "backend", "wall (ms)", "inertia");
  std::printf("%-22s %12.1f %14.1f\n", "serial", t_serial * 1e3,
              serial.inertia);
  std::printf("%-22s %12.1f %14.1f\n", "threaded", t_threaded * 1e3,
              threaded.inertia);
  std::printf("%-22s %12.1f %14.1f\n", "mapreduce engine", t_mr * 1e3,
              mr.inertia);
  std::printf("%-22s %12.1f %14.1f\n", "mini-RDD engine", t_rdd * 1e3,
              rdd.inertia);

  const bool agree =
      std::abs(serial.inertia - threaded.inertia) < 1e-3 &&
      std::abs(serial.inertia - mr.inertia) < 1e-3 &&
      std::abs(serial.inertia - rdd.inertia) < 1e-3;
  std::printf("all backends agree: %s\n", agree ? "yes" : "NO");

  // --- one Fig. 6 cell through the full middleware ---
  std::printf("\nFig. 6 cell: 1M points / 50 clusters, 32 tasks on 3 "
              "Stampede nodes\n");
  for (bool yarn : {false, true}) {
    KmeansExperimentConfig cfg;
    cfg.machine = cluster::stampede_profile();
    cfg.scenario = scenario_1m_points();
    cfg.nodes = 3;
    cfg.tasks = 32;
    cfg.yarn_stack = yarn;
    const auto r = run_kmeans_experiment(cfg);
    std::printf("  %-22s ttc=%8.1f simulated-s  (agent startup %.1fs, "
                "mean CU startup %.1fs)\n",
                yarn ? "RADICAL-Pilot-YARN" : "RADICAL-Pilot",
                r.time_to_completion, r.agent_startup,
                r.mean_unit_startup);
  }
  return agree ? 0 : 1;
}
