/// The paper's motivating use case (SS-I): a bio-molecular pipeline that
/// couples an HPC *simulation* stage with a Hadoop-side *analytics*
/// stage under one resource-management layer.
///
/// Stage 1 (HPC): an ensemble of MPI "MD simulation" Compute-Units runs
/// on a plain pilot; each writes a trajectory to the shared filesystem
/// (sizes from the trajectory model; staging goes through the simulated
/// Lustre).
///
/// Stage 2 (Hadoop on HPC): a second pilot bootstraps YARN on its own
/// allocation (Mode I) and runs per-trajectory analysis units against
/// HDFS-resident data.
///
/// Alongside the simulated pipeline, the *real* analysis kernels run on
/// an in-process trajectory so the example produces actual science-like
/// numbers (radius of gyration, RMSD drift, PCA eigenvalues).
///
///   $ ./examples/md_analysis_pipeline

#include <cstdio>

#include "analytics/trajectory.h"
#include "common/string_util.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

int main() {
  using namespace hoh;
  using namespace hoh::analytics;

  pilot::Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 8);
  pilot::PilotManager pm(session);

  const int ensemble = 8;
  const std::size_t atoms = 20'000;
  const std::size_t frames = 1'000;
  const common::Bytes traj_bytes = trajectory_bytes(atoms, frames);
  std::printf("ensemble of %d replicas, %zu atoms x %zu frames "
              "(%s per trajectory)\n",
              ensemble, atoms, frames,
              common::format_bytes(traj_bytes).c_str());

  // --- stage 1: MD simulations on a plain HPC pilot ---
  pilot::PilotDescription sim_pd;
  sim_pd.resource = "slurm://stampede/";
  sim_pd.nodes = 4;
  sim_pd.runtime = 24 * 3600.0;
  auto sim_pilot = pm.submit_pilot(sim_pd);

  pilot::UnitManager sim_um(session);
  sim_um.add_pilot(sim_pilot);
  std::vector<pilot::ComputeUnitDescription> sims;
  for (int r = 0; r < ensemble; ++r) {
    pilot::ComputeUnitDescription cud;
    cud.name = "md-replica-" + std::to_string(r);
    cud.executable = "gromacs";
    cud.is_mpi = true;
    cud.cores = 8;
    cud.memory_mb = 8 * 1024;
    cud.duration = 1800.0;  // 30 simulated minutes of MD
    cud.output_staging = {{saga::Url("file://stampede/scratch/traj-" +
                                     std::to_string(r) + ".dcd"),
                           traj_bytes}};
    sims.push_back(cud);
  }
  sim_um.submit(sims);
  while (!sim_um.all_done() && session.engine().now() < 7 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 30.0);
  }
  std::printf("[%8.1fs] simulation stage done (%zu/%d trajectories)\n",
              session.engine().now(), sim_um.done_count(), ensemble);

  // --- stage 2: Hadoop-on-HPC analytics pilot (Mode I) ---
  pilot::PilotDescription ana_pd;
  ana_pd.resource = "slurm://stampede/";
  ana_pd.nodes = 3;
  ana_pd.runtime = 24 * 3600.0;
  ana_pd.backend = pilot::AgentBackend::kYarnModeI;
  pilot::AgentConfig ana_cfg;
  ana_cfg.data_aware_scheduling = true;
  auto ana_pilot = pm.submit_pilot(ana_pd, ana_cfg);
  while (ana_pilot->state() != pilot::PilotState::kActive &&
         session.engine().now() < 14 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 10.0);
  }

  // Ingest the trajectories into the pilot's HDFS (writer = agent node),
  // then run one analysis unit per trajectory with data-aware placement.
  auto* yarn = ana_pilot->agent()->yarn_cluster();
  const auto dn = yarn->hdfs().datanodes();
  for (int r = 0; r < ensemble; ++r) {
    yarn->hdfs().create_file("/traj/traj-" + std::to_string(r) + ".dcd",
                             traj_bytes, dn[static_cast<std::size_t>(r) % dn.size()], 2);
  }
  std::printf("[%8.1fs] HDFS ingest done: %s across %zu DataNodes\n",
              session.engine().now(),
              common::format_bytes(yarn->hdfs().used_bytes()).c_str(),
              dn.size());

  pilot::UnitManager ana_um(session);
  ana_um.add_pilot(ana_pilot);
  std::vector<pilot::ComputeUnitDescription> analyses;
  for (int r = 0; r < ensemble; ++r) {
    pilot::ComputeUnitDescription cud;
    cud.name = "analyze-" + std::to_string(r);
    cud.executable = "mdanalysis";
    cud.cores = 4;
    cud.memory_mb = 4 * 1024;
    cud.duration = 240.0;
    cud.input_staging = {{saga::Url("hdfs://stampede/traj/traj-" +
                                    std::to_string(r) + ".dcd"),
                          traj_bytes}};
    analyses.push_back(cud);
  }
  ana_um.submit(analyses);
  while (!ana_um.all_done() && session.engine().now() < 14 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 30.0);
  }
  std::printf("[%8.1fs] analytics stage done (%zu/%d units)\n",
              session.engine().now(), ana_um.done_count(), ensemble);

  // Locality achieved by the data-aware scheduler: count analysis units
  // whose container landed on a node holding their trajectory's blocks.
  int local = 0;
  int placed_total = 0;
  for (const auto& e : session.trace().find("unit", "placed")) {
    const auto& node = e.attrs.at("node");
    if (node.empty()) continue;
    ++placed_total;
    for (int r = 0; r < ensemble; ++r) {
      const std::string path = "/traj/traj-" + std::to_string(r) + ".dcd";
      if (yarn->hdfs().exists(path) &&
          yarn->hdfs().locality(path, node) > 0.0) {
        ++local;
        break;
      }
    }
  }
  std::printf("data-aware placement: %d/%d containers on block-holding "
              "nodes\n", local, placed_total);

  // --- real analysis kernels on an in-process trajectory ---
  common::ThreadPool pool(4);
  const auto traj = generate_trajectory(2'000, 400, 7, 0.08);
  const auto rg = rg_series(pool, traj);
  const auto drift = rmsd_series(pool, traj);
  const auto eig = com_pca_eigenvalues(traj);
  std::printf("\nreal kernels on a %zu-atom x %zu-frame trajectory:\n",
              traj.atoms, traj.frame_count());
  std::printf("  radius of gyration: first %.3f -> last %.3f\n", rg.front(),
              rg.back());
  std::printf("  RMSD drift vs frame 0: %.3f\n", drift.back());
  std::printf("  COM PCA eigenvalues: %.4f %.4f %.4f\n", eig[0], eig[1],
              eig[2]);
  sim_pilot->cancel();
  ana_pilot->cancel();
  return 0;
}
