/// Pilot-Data workflow: the data-side half of the Pilot-Abstraction the
/// paper builds on ("the extension of the Pilot-Abstraction to Pilot-Data
/// [15] to form the central component of a resource management
/// middleware"). A genomics-flavoured pipeline:
///
///   1. create PilotData placeholders on Stampede (Lustre) and Wrangler
///      (flash),
///   2. import a sequencing dataset into Stampede's placeholder,
///   3. compare compute placement by staging cost, replicate to Wrangler
///      because analysis is cheaper next to flash,
///   4. run the analysis units on a Wrangler pilot, then an MR-style
///      aggregation job through the MR-over-YARN driver.
///
///   $ ./examples/pilot_data_workflow

#include <cstdio>

#include "common/string_util.h"
#include "mapreduce/yarn_mr_driver.h"
#include "pilot/pilot_data.h"
#include "pilot/pilot_manager.h"
#include "pilot/unit_manager.h"

int main() {
  using namespace hoh;
  using namespace hoh::pilot;

  Session session;
  session.register_machine(cluster::stampede_profile(),
                           hpc::SchedulerKind::kSlurm, 4);
  session.register_machine(cluster::wrangler_profile(),
                           hpc::SchedulerKind::kSge, 4);

  // 1. Storage placeholders.
  DataUnitManager dum(session);
  PilotDataDescription lustre;
  lustre.machine = "stampede";
  lustre.backend = cluster::StorageBackend::kSharedFs;
  PilotDataDescription flash;
  flash.machine = "wrangler";
  flash.backend = cluster::StorageBackend::kLocalSsd;
  auto pd_stampede = dum.create_pilot_data(lustre);
  auto pd_wrangler = dum.create_pilot_data(flash);

  // 2. Import 8 lanes of sequencing reads (2 GiB each) onto Stampede.
  std::vector<DataFile> lanes;
  for (int i = 0; i < 8; ++i) {
    lanes.push_back(DataFile{"lane-" + std::to_string(i) + ".fastq",
                             2 * common::kGiB});
  }
  auto dataset = dum.submit_data_unit(lanes, pd_stampede);
  while (dataset->state() != DataUnitState::kReady &&
         session.engine().now() < 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 60.0);
  }
  std::printf("[%8.1fs] dataset %s ready: %s on %s\n",
              session.engine().now(), dataset->id().c_str(),
              common::format_bytes(dataset->total_bytes()).c_str(),
              pd_stampede->id().c_str());

  // 3. Data-compute placement decision from staging costs.
  const double cost_stampede = dum.staging_cost(*dataset, "stampede");
  const double cost_wrangler = dum.staging_cost(*dataset, "wrangler");
  std::printf("staging cost: stampede %.1fs, wrangler %.1fs (WAN pull)\n",
              cost_stampede, cost_wrangler);
  std::printf("replicating to wrangler flash before the analysis burst\n");
  dum.replicate(dataset, pd_wrangler);
  while (dataset->state() != DataUnitState::kReady &&
         session.engine().now() < 48 * 3600.0) {
    session.engine().run_until(session.engine().now() + 60.0);
  }
  std::printf("[%8.1fs] replica ready; wrangler staging cost now %.1fs\n",
              session.engine().now(),
              dum.staging_cost(*dataset, "wrangler"));

  // 4a. Per-lane alignment units on a Wrangler Mode-I pilot.
  PilotManager pm(session);
  UnitManager um(session);
  PilotDescription pd;
  pd.resource = "sge://wrangler/";
  pd.nodes = 2;
  pd.runtime = 24 * 3600.0;
  pd.backend = AgentBackend::kYarnModeI;
  auto pilot = pm.submit_pilot(pd);
  um.add_pilot(pilot);
  std::vector<ComputeUnitDescription> aligns;
  for (int i = 0; i < 8; ++i) {
    ComputeUnitDescription cud;
    cud.name = "align-lane-" + std::to_string(i);
    cud.executable = "bwa";
    cud.cores = 8;
    cud.memory_mb = 8 * 1024;
    cud.duration = 900.0;
    aligns.push_back(cud);
  }
  um.submit(aligns);
  while (!um.all_done() && session.engine().now() < 7 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 30.0);
  }
  std::printf("[%8.1fs] alignment done (%zu/8 lanes)\n",
              session.engine().now(), um.done_count());

  // 4b. Aggregate variant counts with an MR job on the pilot's cluster.
  auto* yarn = pilot->agent()->yarn_cluster();
  mapreduce::YarnMrDriver mr(yarn->resource_manager());
  bool mr_done = false;
  mapreduce::YarnMrJobSpec spec;
  spec.name = "variant-aggregation";
  spec.map_tasks = 8;
  spec.reduce_tasks = 2;
  spec.map_task_seconds = 120.0;
  spec.reduce_task_seconds = 60.0;
  const auto mr_id = mr.submit(spec, [&] { mr_done = true; });
  while (!mr_done && session.engine().now() < 14 * 24 * 3600.0) {
    session.engine().run_until(session.engine().now() + 30.0);
  }
  const auto status = mr.status(mr_id);
  std::printf("[%8.1fs] MR aggregation finished: %d maps, %d reduces\n",
              session.engine().now(), status.maps_done,
              status.reduces_done);
  pilot->cancel();
  std::printf("pipeline complete\n");
  return 0;
}
