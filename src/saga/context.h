#pragma once

#include <map>
#include <memory>
#include <string>

#include "hpc/batch_scheduler.h"
#include "hpc/frontends.h"
#include "sim/engine.h"
#include "sim/trace.h"

/// \file context.h
/// SagaContext is the in-process stand-in for "the grid": it owns the
/// simulation engine, the trace, and a registry mapping host names to the
/// simulated machines and their batch-scheduler front-ends. All SAGA
/// services (jobs, file transfer) and the pilot framework resolve
/// resources through one context, so an experiment is one context + one
/// deterministic engine.

namespace hoh::saga {

/// One registered machine: profile + scheduler + front-end.
struct ResourceEntry {
  cluster::MachineProfile profile;
  std::unique_ptr<hpc::BatchScheduler> scheduler;
  std::unique_ptr<hpc::SchedulerFrontend> frontend;
};

/// Execution context shared by all services of one experiment.
class SagaContext {
 public:
  SagaContext() = default;
  SagaContext(const SagaContext&) = delete;
  SagaContext& operator=(const SagaContext&) = delete;

  sim::Engine& engine() { return engine_; }
  sim::Trace& trace() { return trace_; }

  /// Registers a machine under its profile name with the given scheduler
  /// kind and simulated pool size (0 = profile.total_nodes). Returns the
  /// entry for direct access.
  ResourceEntry& register_machine(const cluster::MachineProfile& profile,
                                  hpc::SchedulerKind kind,
                                  int managed_nodes = 0);

  /// Looks up a registered machine; throws NotFoundError if absent.
  ResourceEntry& resource(const std::string& host);
  const ResourceEntry& resource(const std::string& host) const;

  bool has_resource(const std::string& host) const;

 private:
  sim::Engine engine_;
  sim::Trace trace_;
  std::map<std::string, ResourceEntry> resources_;
};

}  // namespace hoh::saga
