#pragma once

#include <string>

/// \file url.h
/// SAGA-style resource URLs: "<scheme>://<host>/<path>", e.g.
/// "slurm://stampede/", "pbs://gordon/", "file://wrangler/scratch/data.bin".
/// The scheme selects the adaptor; the host selects the registered
/// resource.

namespace hoh::saga {

/// Parsed URL value type.
class Url {
 public:
  Url() = default;

  /// Parses "<scheme>://<host></path>"; throws ConfigError on malformed
  /// input (missing scheme or host).
  explicit Url(const std::string& url);

  const std::string& scheme() const { return scheme_; }
  const std::string& host() const { return host_; }
  const std::string& path() const { return path_; }

  std::string str() const;

  friend bool operator==(const Url&, const Url&) = default;

 private:
  std::string scheme_;
  std::string host_;
  std::string path_;
};

}  // namespace hoh::saga
