#include "saga/url.h"

#include "common/error.h"

namespace hoh::saga {

Url::Url(const std::string& url) {
  const auto sep = url.find("://");
  if (sep == std::string::npos || sep == 0) {
    throw common::ConfigError("malformed SAGA URL (missing scheme): " + url);
  }
  scheme_ = url.substr(0, sep);
  const auto rest = url.substr(sep + 3);
  const auto slash = rest.find('/');
  if (slash == std::string::npos) {
    host_ = rest;
    path_.assign(1, '/');  // (assign form avoids a GCC -Wrestrict false positive)
  } else {
    host_ = rest.substr(0, slash);
    path_ = rest.substr(slash);
  }
  if (host_.empty()) {
    throw common::ConfigError("malformed SAGA URL (missing host): " + url);
  }
}

std::string Url::str() const { return scheme_ + "://" + host_ + path_; }

}  // namespace hoh::saga
