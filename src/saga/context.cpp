#include "saga/context.h"

#include "common/error.h"

namespace hoh::saga {

ResourceEntry& SagaContext::register_machine(
    const cluster::MachineProfile& profile, hpc::SchedulerKind kind,
    int managed_nodes) {
  ResourceEntry entry;
  entry.profile = profile;
  entry.scheduler = std::make_unique<hpc::BatchScheduler>(engine_, profile,
                                                          managed_nodes);
  entry.frontend = hpc::make_frontend(kind, *entry.scheduler);
  auto [it, inserted] = resources_.emplace(profile.name, std::move(entry));
  if (!inserted) {
    throw common::ConfigError("machine already registered: " + profile.name);
  }
  return it->second;
}

ResourceEntry& SagaContext::resource(const std::string& host) {
  auto it = resources_.find(host);
  if (it == resources_.end()) {
    throw common::NotFoundError("no machine registered for host: " + host);
  }
  return it->second;
}

const ResourceEntry& SagaContext::resource(const std::string& host) const {
  auto it = resources_.find(host);
  if (it == resources_.end()) {
    throw common::NotFoundError("no machine registered for host: " + host);
  }
  return it->second;
}

bool SagaContext::has_resource(const std::string& host) const {
  return resources_.count(host) > 0;
}

}  // namespace hoh::saga
