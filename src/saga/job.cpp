#include "saga/job.h"

#include "common/error.h"

namespace hoh::saga {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kNew:
      return "New";
    case JobState::kPending:
      return "Pending";
    case JobState::kRunning:
      return "Running";
    case JobState::kDone:
      return "Done";
    case JobState::kFailed:
      return "Failed";
    case JobState::kCanceled:
      return "Canceled";
  }
  return "?";
}

namespace {

JobState map_state(hpc::BatchJobState s) {
  switch (s) {
    case hpc::BatchJobState::kPending:
      return JobState::kPending;
    case hpc::BatchJobState::kRunning:
      return JobState::kRunning;
    case hpc::BatchJobState::kCompleted:
      return JobState::kDone;
    case hpc::BatchJobState::kCancelled:
      return JobState::kCanceled;
    case hpc::BatchJobState::kFailed:
    case hpc::BatchJobState::kTimedOut:
      return JobState::kFailed;
  }
  return JobState::kFailed;
}

hpc::SchedulerKind scheme_to_kind(const std::string& scheme) {
  if (scheme == "slurm") return hpc::SchedulerKind::kSlurm;
  if (scheme == "pbs" || scheme == "torque") return hpc::SchedulerKind::kPbs;
  if (scheme == "sge") return hpc::SchedulerKind::kSge;
  throw common::ConfigError("unsupported SAGA job scheme: " + scheme);
}

}  // namespace

JobService::JobService(SagaContext& context, const Url& url)
    : context_(context), url_(url), resource_(&context.resource(url.host())) {
  if (url.scheme() != "batch" &&
      scheme_to_kind(url.scheme()) != resource_->frontend->kind()) {
    throw common::ConfigError(
        "URL scheme '" + url.scheme() + "' does not match the scheduler of " +
        url.host() + " (" + hpc::to_string(resource_->frontend->kind()) + ")");
  }
}

const cluster::MachineProfile& JobService::profile() const {
  return resource_->profile;
}

std::shared_ptr<Job> JobService::submit(const JobDescription& description,
                                        SagaStartCallback on_start) {
  if (description.executable.empty()) {
    throw common::ConfigError("JobDescription.executable must be set");
  }
  hpc::BatchJobRequest request;
  request.name = description.name;
  request.nodes = description.total_nodes;
  request.walltime = description.wall_time_limit;
  request.queue = description.queue;
  request.project = description.project;

  const std::string id = resource_->frontend->submit(
      request,
      [this, on_start](const std::string& job_id,
                       const cluster::Allocation& allocation) {
        auto it = jobs_.find(job_id);
        if (it == jobs_.end()) return;
        it->second.allocation = allocation;
        set_state(job_id, JobState::kRunning);
        if (on_start) on_start(allocation);
      },
      [this](const std::string& job_id, hpc::BatchJobState final_state) {
        auto it = jobs_.find(job_id);
        if (it == jobs_.end()) return;
        it->second.allocation = cluster::Allocation{};
        set_state(job_id, map_state(final_state));
      });

  JobRecord rec;
  rec.description = description;
  rec.state = JobState::kPending;
  jobs_.emplace(id, std::move(rec));

  context_.trace().record(context_.engine().now(), "saga", "job_submitted",
                          {{"job", id}, {"host", url_.host()}});
  return std::shared_ptr<Job>(new Job(this, id));
}

void JobService::set_state(const std::string& id, JobState state) {
  JobRecord& rec = record(id);
  if (rec.state == state || is_final(rec.state)) return;
  rec.state = state;
  context_.trace().record(context_.engine().now(), "saga",
                          "job_state", {{"job", id}, {"state", to_string(state)}});
  for (const auto& cb : rec.callbacks) cb(state);
}

JobService::JobRecord& JobService::record(const std::string& id) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("JobService: unknown job " + id);
  }
  return it->second;
}

const JobService::JobRecord& JobService::record(const std::string& id) const {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("JobService: unknown job " + id);
  }
  return it->second;
}

JobState Job::state() const { return service_->record(id_).state; }

cluster::Allocation Job::allocation() const {
  return service_->record(id_).allocation;
}

std::map<std::string, std::string> Job::attributes() const {
  return service_->resource_->frontend->environment(id_);
}

void Job::cancel() { service_->resource_->frontend->cancel(id_); }

void Job::complete() { service_->resource_->frontend->complete(id_); }

void Job::on_state_change(std::function<void(JobState)> callback) {
  service_->record(id_).callbacks.push_back(std::move(callback));
}

}  // namespace hoh::saga
