#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "saga/context.h"
#include "saga/url.h"

/// \file job.h
/// The SAGA job API: a standards-based, scheduler-agnostic way to submit
/// and control jobs (paper SS-II: "SAGA is a lightweight interface that
/// provides standards-based interoperable capabilities ... for accessing
/// the resource management system"). JobService maps a URL scheme
/// ("slurm://", "pbs://", "sge://") onto the matching front-end adaptor;
/// callers never see scheduler specifics.

namespace hoh::saga {

/// SAGA job states (SAGA spec GFD.90 state model).
enum class JobState { kNew, kPending, kRunning, kDone, kFailed, kCanceled };

std::string to_string(JobState state);

constexpr bool is_final(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCanceled;
}

/// SAGA job description (subset of GFD.90 attributes that the pilot
/// framework uses).
struct JobDescription {
  std::string executable;
  std::vector<std::string> arguments;
  std::map<std::string, std::string> environment;
  int total_nodes = 1;
  common::Seconds wall_time_limit = 3600.0;
  std::string queue = "normal";
  std::string project;
  std::string name = "saga-job";
};

class JobService;

/// Handle to a submitted job. Handles are shared; state lives in the
/// service.
class Job {
 public:
  const std::string& id() const { return id_; }
  JobState state() const;

  /// Node allocation while running (empty otherwise). The payload-side
  /// environment is available through attributes().
  cluster::Allocation allocation() const;

  /// Batch-system environment exported into the running job.
  std::map<std::string, std::string> attributes() const;

  void cancel();

  /// Payload signals natural completion (used by simulated payloads).
  void complete();

  /// Registers a callback fired on every state transition.
  void on_state_change(std::function<void(JobState)> callback);

 private:
  friend class JobService;
  Job(JobService* service, std::string id)
      : service_(service), id_(std::move(id)) {}

  JobService* service_;
  std::string id_;
};

/// Callback fired when the job starts running; the allocation is the node
/// set granted by the batch system.
using SagaStartCallback = std::function<void(const cluster::Allocation&)>;

/// Factory for jobs on one resource (one URL). Mirrors saga::job::Service.
class JobService {
 public:
  /// \p url like "slurm://stampede/"; the scheme must match the
  /// registered front-end kind for that host, or be "batch" to accept any.
  JobService(SagaContext& context, const Url& url);

  /// Submits a job. \p on_start fires when the payload may begin.
  std::shared_ptr<Job> submit(const JobDescription& description,
                              SagaStartCallback on_start = nullptr);

  const Url& url() const { return url_; }
  SagaContext& context() { return context_; }

  /// Machine profile behind this service.
  const cluster::MachineProfile& profile() const;

 private:
  friend class Job;
  struct JobRecord {
    JobDescription description;
    JobState state = JobState::kNew;
    std::vector<std::function<void(JobState)>> callbacks;
    cluster::Allocation allocation;
  };

  void set_state(const std::string& id, JobState state);
  JobRecord& record(const std::string& id);
  const JobRecord& record(const std::string& id) const;

  SagaContext& context_;
  Url url_;
  ResourceEntry* resource_;
  std::map<std::string, JobRecord> jobs_;
};

}  // namespace hoh::saga
