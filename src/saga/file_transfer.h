#pragma once

#include <functional>
#include <string>

#include "saga/context.h"
#include "saga/url.h"

/// \file file_transfer.h
/// SAGA file-transfer service used for Compute-Unit stage-in/stage-out.
/// Transfers are simulated: duration is derived from the endpoint
/// machines' storage/network models and advances virtual time.

namespace hoh::saga {

/// One logical file with a size; the simulation tracks metadata only.
struct FileInfo {
  Url url;
  common::Bytes size = 0;
};

/// Asynchronous file mover between registered resources.
class FileTransferService {
 public:
  explicit FileTransferService(SagaContext& context) : context_(context) {}

  /// Transfers \p bytes from \p src to \p dst; \p on_done fires on the
  /// engine when the copy completes. Returns the estimated duration.
  ///
  /// Cost model: intra-machine copies pay the slower of the two storage
  /// backends; cross-machine copies additionally pay a WAN hop at
  /// \p wan_bandwidth.
  common::Seconds transfer(const Url& src, const Url& dst, common::Bytes bytes,
                           std::function<void()> on_done = nullptr);

  /// Bandwidth used for inter-machine (wide-area) hops.
  void set_wan_bandwidth(common::BytesPerSec bw) { wan_bandwidth_ = bw; }

  /// Maps a URL scheme to the storage backend used for the endpoint cost:
  /// "file" -> shared filesystem, "local" -> node-local disk, "hdfs" ->
  /// node-local disk (HDFS stores on local disks), "mem" -> memory.
  static cluster::StorageBackend backend_for_scheme(const std::string& scheme);

 private:
  SagaContext& context_;
  common::BytesPerSec wan_bandwidth_ = 50.0e6;
};

}  // namespace hoh::saga
