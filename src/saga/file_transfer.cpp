#include "saga/file_transfer.h"

#include <algorithm>

#include "cluster/network.h"
#include "common/error.h"

namespace hoh::saga {

cluster::StorageBackend FileTransferService::backend_for_scheme(
    const std::string& scheme) {
  if (scheme == "file") return cluster::StorageBackend::kSharedFs;
  if (scheme == "local") return cluster::StorageBackend::kLocalDisk;
  if (scheme == "hdfs") return cluster::StorageBackend::kLocalDisk;
  if (scheme == "mem") return cluster::StorageBackend::kMemory;
  throw common::ConfigError("unsupported file scheme: " + scheme);
}

common::Seconds FileTransferService::transfer(const Url& src, const Url& dst,
                                              common::Bytes bytes,
                                              std::function<void()> on_done) {
  const auto& src_machine = context_.resource(src.host()).profile;
  const auto& dst_machine = context_.resource(dst.host()).profile;

  const common::Seconds read_time = src_machine.storage_transfer_time(
      backend_for_scheme(src.scheme()), bytes, 1);
  const common::Seconds write_time = dst_machine.storage_transfer_time(
      backend_for_scheme(dst.scheme()), bytes, 1);

  common::Seconds duration = std::max(read_time, write_time);
  if (src.host() != dst.host()) {
    duration += cluster::NetworkModel::wan_transfer_time(bytes, wan_bandwidth_);
  }

  context_.trace().record(context_.engine().now(), "saga", "transfer_started",
                          {{"src", src.str()},
                           {"dst", dst.str()},
                           {"bytes", std::to_string(bytes)}});
  context_.engine().schedule(duration, [this, src, dst,
                                        done = std::move(on_done)] {
    context_.trace().record(context_.engine().now(), "saga",
                            "transfer_done",
                            {{"src", src.str()}, {"dst", dst.str()}});
    if (done) done();
  });
  return duration;
}

}  // namespace hoh::saga
