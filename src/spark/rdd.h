#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

/// \file rdd.h
/// A real, in-process mini-RDD engine: lazy, lineage-based, partitioned
/// collections evaluated in parallel on a thread pool. This is the
/// "memory-centric processing engine [that] can retain resources across
/// multiple task generations" (paper SS-II) in miniature — enough to run
/// genuine Spark-style analytics (including the K-Means example) against
/// the middleware. Transformations are lazy; actions evaluate the
/// lineage; cache() pins the materialized partitions.
///
/// Partitions flow through the lineage as shared_ptr<const Partitions>
/// (see DESIGN.md, "Engine data path"): materializing a cached or
/// parallelize()d RDD hands out the pinned partitions without copying
/// them, transforms read through the pointer, and actions make a single
/// pass. A thunk whose result is uniquely owned (a fresh, uncached
/// computation) may be cannibalised move-wise; shared or cached
/// partitions are immutable by type.

namespace hoh::spark {

/// Shared execution environment: one thread pool + default parallelism.
class SparkEnv {
 public:
  explicit SparkEnv(std::size_t threads = 0)
      : pool_(std::make_shared<common::ThreadPool>(threads)) {}

  common::ThreadPool& pool() { return *pool_; }
  std::shared_ptr<common::ThreadPool> pool_ptr() const { return pool_; }
  std::size_t default_parallelism() const { return pool_->size(); }

 private:
  std::shared_ptr<common::ThreadPool> pool_;
};

template <typename T>
class Rdd {
 public:
  using Partitions = std::vector<std::vector<T>>;
  using PartitionsPtr = std::shared_ptr<const Partitions>;

  /// Distributes \p data over \p partitions partitions (0 = pool size).
  static Rdd parallelize(SparkEnv& env, std::vector<T> data,
                         std::size_t partitions = 0) {
    if (partitions == 0) partitions = env.default_parallelism();
    partitions = std::max<std::size_t>(1, partitions);
    auto parts = std::make_shared<Partitions>();
    parts->resize(partitions);
    const std::size_t n = data.size();
    const std::size_t chunk = (n + partitions - 1) / std::max<std::size_t>(partitions, 1);
    for (std::size_t p = 0; p < partitions; ++p) {
      const std::size_t lo = p * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo < hi) {
        (*parts)[p].assign(std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(lo)),
                           std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(hi)));
      }
    }
    PartitionsPtr pinned = std::move(parts);
    // The thunk hands out the pinned partitions; nothing is ever copied.
    return Rdd(env.pool_ptr(), [pinned] { return pinned; });
  }

  /// Lazy element-wise transformation. A same-type map whose evaluation
  /// uniquely owns its input rewrites the elements in place, so chained
  /// stages reuse one buffer instead of allocating per stage.
  template <typename F>
  auto map(F f) const -> Rdd<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    auto self = *this;
    return Rdd<U>(pool_, [self, f] {
      auto input = self.materialize();
      if constexpr (std::is_same_v<U, T>) {
        if (Partitions* owned = mutable_if_unique(input)) {
          self.for_each_partition(input->size(), [&](std::size_t p) {
            for (auto& x : (*owned)[p]) {
              x = f(static_cast<const T&>(x));
            }
          });
          return input;
        }
      }
      auto out = std::make_shared<typename Rdd<U>::Partitions>(input->size());
      self.for_each_partition(input->size(), [&](std::size_t p) {
        const auto& src = (*input)[p];
        auto& dst = (*out)[p];
        dst.reserve(src.size());
        for (const auto& x : src) dst.push_back(f(x));
      });
      return typename Rdd<U>::PartitionsPtr(std::move(out));
    });
  }

  /// Lazy filter. When this evaluation uniquely owns its input the
  /// partitions are compacted in place (no new buffers); otherwise
  /// survivors are copied into right-sized fresh partitions.
  template <typename F>
  Rdd filter(F pred) const {
    auto self = *this;
    return Rdd(pool_, [self, pred] {
      auto input = self.materialize();
      if (Partitions* owned = mutable_if_unique(input)) {
        self.for_each_partition(input->size(), [&](std::size_t p) {
          auto& part = (*owned)[p];
          std::size_t write = 0;
          for (std::size_t i = 0; i < part.size(); ++i) {
            if (!pred(static_cast<const T&>(part[i]))) continue;
            if (write != i) part[write] = std::move(part[i]);
            ++write;
          }
          part.resize(write);
        });
        return input;
      }
      auto out = std::make_shared<Partitions>(input->size());
      self.for_each_partition(input->size(), [&](std::size_t p) {
        const auto& src = (*input)[p];
        auto& dst = (*out)[p];
        dst.reserve(src.size());
        for (const auto& x : src) {
          if (pred(x)) dst.push_back(x);
        }
      });
      return PartitionsPtr(std::move(out));
    });
  }

  /// Lazy flat-map.
  template <typename F>
  auto flat_map(F f) const
      -> Rdd<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    auto self = *this;
    return Rdd<U>(pool_, [self, f] {
      auto input = self.materialize();
      auto out = std::make_shared<typename Rdd<U>::Partitions>(input->size());
      self.for_each_partition(input->size(), [&](std::size_t p) {
        auto& dst = (*out)[p];
        for (const auto& x : (*input)[p]) {
          auto ys = f(x);
          dst.insert(dst.end(), std::make_move_iterator(ys.begin()),
                     std::make_move_iterator(ys.end()));
        }
      });
      return typename Rdd<U>::PartitionsPtr(std::move(out));
    });
  }

  /// Lazy per-partition transformation (mapPartitions).
  template <typename F>
  auto map_partitions(F f) const
      -> Rdd<typename std::invoke_result_t<F, const std::vector<T>&>::value_type> {
    using U = typename std::invoke_result_t<F, const std::vector<T>&>::value_type;
    auto self = *this;
    return Rdd<U>(pool_, [self, f] {
      auto input = self.materialize();
      auto out = std::make_shared<typename Rdd<U>::Partitions>(input->size());
      self.for_each_partition(input->size(),
                              [&](std::size_t p) { (*out)[p] = f((*input)[p]); });
      return typename Rdd<U>::PartitionsPtr(std::move(out));
    });
  }

  /// Marks this RDD cached: the first evaluation memoizes partitions.
  Rdd cache() const {
    Rdd out = *this;
    out.cache_ = std::make_shared<CacheSlot>();
    return out;
  }

  /// Lazy union: this RDD's partitions followed by \p other's.
  Rdd union_with(const Rdd& other) const {
    auto self = *this;
    return Rdd(pool_, [self, other] {
      auto a = self.materialize();
      auto b = other.materialize();
      auto out = std::make_shared<Partitions>();
      out->reserve(a->size() + b->size());
      append_partitions(*out, a);
      append_partitions(*out, b);
      return PartitionsPtr(std::move(out));
    });
  }

  /// Lazy de-duplication (requires operator< on T); result is sorted
  /// within one output partition.
  Rdd distinct() const {
    auto self = *this;
    return Rdd(pool_, [self] {
      std::set<T> seen;
      auto input = self.materialize();
      for (const auto& part : *input) {
        seen.insert(part.begin(), part.end());
      }
      auto out = std::make_shared<Partitions>(1);
      (*out)[0].assign(seen.begin(), seen.end());
      return PartitionsPtr(std::move(out));
    });
  }

  /// Lazy Bernoulli sample (deterministic for a fixed seed).
  Rdd sample(double fraction, std::uint64_t seed = 42) const {
    auto self = *this;
    return Rdd(pool_, [self, fraction, seed] {
      auto input = self.materialize();
      auto out = std::make_shared<Partitions>(input->size());
      for (std::size_t p = 0; p < input->size(); ++p) {
        // Per-partition RNG keyed by seed+index keeps evaluation
        // order-independent.
        common::Rng rng(seed + p);
        for (const auto& x : (*input)[p]) {
          if (rng.bernoulli(fraction)) (*out)[p].push_back(x);
        }
      }
      return PartitionsPtr(std::move(out));
    });
  }

  /// Lazy (element, global index) pairing, indices in partition order.
  Rdd<std::pair<T, std::size_t>> zip_with_index() const {
    auto self = *this;
    return Rdd<std::pair<T, std::size_t>>(pool_, [self] {
      auto input = self.materialize();
      auto out = std::make_shared<
          typename Rdd<std::pair<T, std::size_t>>::Partitions>(input->size());
      std::size_t index = 0;
      for (std::size_t p = 0; p < input->size(); ++p) {
        (*out)[p].reserve((*input)[p].size());
        for (const auto& x : (*input)[p]) {
          (*out)[p].emplace_back(x, index++);
        }
      }
      return typename Rdd<std::pair<T, std::size_t>>::PartitionsPtr(
          std::move(out));
    });
  }

  /// First n elements in partition order (eager). The lineage still
  /// evaluates (thunks are whole-lineage), but partition iteration stops
  /// as soon as n elements are gathered instead of walking — or copying —
  /// the rest of the dataset.
  std::vector<T> take(std::size_t n) const {
    std::vector<T> out;
    if (n == 0) return out;
    auto parts = materialize();
    for (const auto& part : *parts) {
      for (const auto& x : part) {
        out.push_back(x);
        if (out.size() == n) return out;
      }
    }
    return out;
  }

  /// First element; throws StateError on an empty RDD (eager).
  T first() const {
    auto head = take(1);
    if (head.empty()) throw common::StateError("first() on empty RDD");
    return head.front();
  }

  // ---- actions (eager) ----

  /// Single pass: size the output once, then copy (or move, when this
  /// evaluation uniquely owns the partitions) every element.
  std::vector<T> collect() const {
    auto parts = materialize();
    std::size_t total = 0;
    for (const auto& p : *parts) total += p.size();
    std::vector<T> out;
    out.reserve(total);
    if (Partitions* owned = mutable_if_unique(parts)) {
      for (auto& p : *owned) {
        out.insert(out.end(), std::make_move_iterator(p.begin()),
                   std::make_move_iterator(p.end()));
      }
    } else {
      for (const auto& p : *parts) {
        out.insert(out.end(), p.begin(), p.end());
      }
    }
    return out;
  }

  /// Counts without copying a single element.
  std::size_t count() const {
    auto parts = materialize();
    std::size_t n = 0;
    for (const auto& p : *parts) n += p.size();
    return n;
  }

  /// Tree reduction; throws StateError on an empty RDD.
  ///
  /// Each partition folds into its own slot (disjoint writes, no lock),
  /// and the final pass folds the slots in partition order — so the
  /// association order of \p f is a pure function of the data, never of
  /// which worker finished first. The previous push_back-under-a-mutex
  /// version ordered partials by thread completion, which is invisible
  /// to TSan but breaks run-digest replayability for any \p f that is
  /// not exactly associative and commutative (floating-point sums
  /// included).
  template <typename F>
  T reduce(F f) const {
    auto parts = materialize();
    std::vector<std::optional<T>> partials(parts->size());
    for_each_partition(parts->size(), [&](std::size_t p) {
      const auto& part = (*parts)[p];
      if (part.empty()) return;
      T acc = part.front();
      for (std::size_t i = 1; i < part.size(); ++i) {
        acc = f(acc, part[i]);
      }
      partials[p] = std::move(acc);
    });
    std::optional<T> acc;
    for (auto& partial : partials) {
      if (!partial.has_value()) continue;
      acc = acc.has_value() ? f(std::move(*acc), *partial)
                            : std::move(*partial);
    }
    if (!acc.has_value()) {
      throw common::StateError("reduce() on empty RDD");
    }
    return std::move(*acc);
  }

  /// fold with a zero value (safe on empty RDDs).
  template <typename F>
  T fold(T zero, F f) const {
    auto parts = materialize();
    T acc = zero;
    for (const auto& part : *parts) {
      for (const auto& x : part) acc = f(acc, x);
    }
    return acc;
  }

  std::size_t num_partitions() const { return materialize()->size(); }

  // ---- internal plumbing (public for cross-type access from free
  // functions like reduce_by_key) ----

  Rdd(std::shared_ptr<common::ThreadPool> pool,
      std::function<PartitionsPtr()> compute)
      : pool_(std::move(pool)), compute_(std::move(compute)) {}

  /// Evaluates the lineage (or returns the pinned cache) without copying:
  /// callers share the partitions through the const pointer.
  PartitionsPtr materialize() const {
    if (cache_) {
      common::MutexLock lock(cache_->mu);
      if (!cache_->value) {
        cache_->value = compute_();
      }
      return cache_->value;
    }
    return compute_();
  }

  /// The partitions behind \p parts when this evaluation is their only
  /// owner (a fresh, uncached computation) — safe to cannibalise by
  /// moving elements out; nullptr when cached or otherwise shared.
  static Partitions* mutable_if_unique(const PartitionsPtr& parts) {
    return parts.use_count() == 1 ? const_cast<Partitions*>(parts.get())
                                  : nullptr;
  }

  void for_each_partition(std::size_t n,
                          const std::function<void(std::size_t)>& fn) const {
    pool_->parallel_for(n, fn);
  }

  std::shared_ptr<common::ThreadPool> pool() const { return pool_; }

 private:
  template <typename U>
  friend class Rdd;

  /// Appends \p src's partitions to \p dst, moving them when uniquely
  /// owned (union_with's fast path).
  static void append_partitions(Partitions& dst, PartitionsPtr& src) {
    if (Partitions* owned = mutable_if_unique(src)) {
      dst.insert(dst.end(), std::make_move_iterator(owned->begin()),
                 std::make_move_iterator(owned->end()));
    } else {
      dst.insert(dst.end(), src->begin(), src->end());
    }
  }

  struct CacheSlot {
    common::Mutex mu;
    PartitionsPtr value HOH_GUARDED_BY(mu);
  };

  std::shared_ptr<common::ThreadPool> pool_;
  std::function<PartitionsPtr()> compute_;
  std::shared_ptr<CacheSlot> cache_;
};

/// reduceByKey for pair RDDs: each input partition folds its pairs into
/// flat, hash-partitioned runs holding one slot per distinct key, then
/// each output partition concatenates its runs and sorts only the
/// distinct keys — the same shuffle shape as the MapReduce engine, with
/// no per-key tree nodes and no sort over raw pairs.
template <typename K, typename V, typename F>
Rdd<std::pair<K, V>> reduce_by_key(const Rdd<std::pair<K, V>>& rdd, F f,
                                   std::size_t out_partitions = 0) {
  auto pool = rdd.pool();
  return Rdd<std::pair<K, V>>(pool, [rdd, f, out_partitions, pool] {
    auto input = rdd.materialize();
    const std::size_t out_n =
        out_partitions > 0 ? out_partitions
                           : std::max<std::size_t>(1, input->size());
    const auto less = [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
      return a.first < b.first;
    };
    // Applies f across each equal-key span of a key-sorted run, in place.
    const auto combine_sorted = [&f](std::vector<std::pair<K, V>>& run) {
      std::size_t write = 0;
      std::size_t i = 0;
      while (i < run.size()) {
        std::pair<K, V> acc = std::move(run[i]);
        std::size_t j = i + 1;
        while (j < run.size() && !(acc.first < run[j].first)) {
          acc.second = f(acc.second, run[j].second);
          ++j;
        }
        run[write++] = std::move(acc);
        i = j;
      }
      run.resize(write);
    };
    // Map side: fold each input partition into hash-partitioned flat runs
    // with one slot per distinct key (values combined in encounter order,
    // as the merged-tree implementation did). Only distinct keys ever get
    // sorted, so workloads with few keys pay no n·log n over raw pairs.
    std::vector<std::vector<std::vector<std::pair<K, V>>>> runs(input->size());
    pool->parallel_for(input->size(), [&](std::size_t p) {
      struct KeyEq {  // equality induced by operator<, the ordering we sort by
        bool operator()(const K& a, const K& b) const {
          return !(a < b) && !(b < a);
        }
      };
      auto& my_runs = runs[p];
      my_runs.resize(out_n);
      const auto& src = (*input)[p];
      std::hash<K> hasher;
      // key -> (run index, slot within run)
      //
      // Determinism audit (hoh_analyze det-unordered-emit): `slots` is a
      // probe-only index — iteration below walks `src` in partition
      // order and the flat runs it populates, and the reduce side
      // stable-sorts every run before it becomes output, so hash-bucket
      // order never reaches collected partitions or run digests.
      std::unordered_map<K, std::pair<std::size_t, std::size_t>, std::hash<K>,
                         KeyEq>
          slots;
      for (const auto& kv : src) {
        auto [it, fresh] =
            slots.try_emplace(kv.first, hasher(kv.first) % out_n, 0);
        auto& run = my_runs[it->second.first];
        if (fresh) {
          it->second.second = run.size();
          run.push_back(kv);
        } else {
          auto& acc = run[it->second.second].second;
          acc = f(acc, kv.second);
        }
      }
    });
    // Reduce side: concatenate run r from every map partition, one stable
    // sort, and a final combine scan (keys come out sorted, values folded
    // in map-partition order — same as the merged-tree implementation).
    auto out =
        std::make_shared<typename Rdd<std::pair<K, V>>::Partitions>(out_n);
    pool->parallel_for(out_n, [&](std::size_t r) {
      auto& dst = (*out)[r];
      std::size_t total = 0;
      for (const auto& per_map : runs) total += per_map[r].size();
      dst.reserve(total);
      for (auto& per_map : runs) {
        auto& run = per_map[r];
        dst.insert(dst.end(), std::make_move_iterator(run.begin()),
                   std::make_move_iterator(run.end()));
      }
      std::stable_sort(dst.begin(), dst.end(), less);
      combine_sorted(dst);
    });
    return typename Rdd<std::pair<K, V>>::PartitionsPtr(std::move(out));
  });
}

/// collect_as_map action for pair RDDs.
template <typename K, typename V>
std::map<K, V> collect_as_map(const Rdd<std::pair<K, V>>& rdd) {
  std::map<K, V> out;
  auto parts = rdd.materialize();
  for (const auto& part : *parts) {
    for (const auto& [k, v] : part) out[k] = v;
  }
  return out;
}

/// groupByKey: all values per key gathered into one vector (one output
/// partition per hash bucket, like reduce_by_key).
template <typename K, typename V>
Rdd<std::pair<K, std::vector<V>>> group_by_key(
    const Rdd<std::pair<K, V>>& rdd, std::size_t out_partitions = 0) {
  auto pool = rdd.pool();
  return Rdd<std::pair<K, std::vector<V>>>(pool, [rdd, out_partitions] {
    auto input = rdd.materialize();
    const std::size_t out_n = out_partitions > 0
                                  ? out_partitions
                                  : std::max<std::size_t>(1, input->size());
    std::vector<std::map<K, std::vector<V>>> buckets(out_n);
    std::hash<K> hasher;
    for (const auto& part : *input) {
      for (const auto& [k, v] : part) {
        buckets[hasher(k) % out_n][k].push_back(v);
      }
    }
    auto out = std::make_shared<
        typename Rdd<std::pair<K, std::vector<V>>>::Partitions>(out_n);
    for (std::size_t r = 0; r < out_n; ++r) {
      (*out)[r].assign(std::make_move_iterator(buckets[r].begin()),
                       std::make_move_iterator(buckets[r].end()));
    }
    return typename Rdd<std::pair<K, std::vector<V>>>::PartitionsPtr(
        std::move(out));
  });
}

/// map_values: transform V while keeping the key.
template <typename K, typename V, typename F>
auto map_values(const Rdd<std::pair<K, V>>& rdd, F f)
    -> Rdd<std::pair<K, std::invoke_result_t<F, const V&>>> {
  using W = std::invoke_result_t<F, const V&>;
  return rdd.map([f](const std::pair<K, V>& kv) {
    return std::pair<K, W>(kv.first, f(kv.second));
  });
}

/// Inner hash join: one output pair per matching (left, right) value
/// combination.
template <typename K, typename V, typename W>
Rdd<std::pair<K, std::pair<V, W>>> join(const Rdd<std::pair<K, V>>& left,
                                        const Rdd<std::pair<K, W>>& right,
                                        std::size_t out_partitions = 0) {
  auto pool = left.pool();
  return Rdd<std::pair<K, std::pair<V, W>>>(
      pool, [left, right, out_partitions] {
        auto grouped_left = group_by_key(left, out_partitions).materialize();
        auto grouped_right =
            group_by_key(right, out_partitions).materialize();
        // Build a lookup of the right side.
        std::map<K, std::vector<W>> rhs;
        for (const auto& part : *grouped_right) {
          for (const auto& [k, vs] : part) rhs[k] = vs;
        }
        auto out = std::make_shared<
            typename Rdd<std::pair<K, std::pair<V, W>>>::Partitions>(
            grouped_left->size());
        for (std::size_t p = 0; p < grouped_left->size(); ++p) {
          for (const auto& [k, vs] : (*grouped_left)[p]) {
            auto it = rhs.find(k);
            if (it == rhs.end()) continue;
            for (const auto& v : vs) {
              for (const auto& w : it->second) {
                (*out)[p].emplace_back(k, std::pair<V, W>(v, w));
              }
            }
          }
        }
        return typename Rdd<std::pair<K, std::pair<V, W>>>::PartitionsPtr(
            std::move(out));
      });
}

/// cogroup: per key, the value lists of both sides (keys present on
/// either side appear).
template <typename K, typename V, typename W>
Rdd<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> cogroup(
    const Rdd<std::pair<K, V>>& left, const Rdd<std::pair<K, W>>& right) {
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  auto pool = left.pool();
  return Rdd<Out>(pool, [left, right] {
    std::map<K, std::pair<std::vector<V>, std::vector<W>>> merged;
    auto lparts = left.materialize();
    for (const auto& part : *lparts) {
      for (const auto& [k, v] : part) merged[k].first.push_back(v);
    }
    auto rparts = right.materialize();
    for (const auto& part : *rparts) {
      for (const auto& [k, w] : part) merged[k].second.push_back(w);
    }
    auto out = std::make_shared<typename Rdd<Out>::Partitions>(1);
    (*out)[0].assign(merged.begin(), merged.end());
    return typename Rdd<Out>::PartitionsPtr(std::move(out));
  });
}

/// count_by_key action.
template <typename K, typename V>
std::map<K, std::size_t> count_by_key(const Rdd<std::pair<K, V>>& rdd) {
  std::map<K, std::size_t> out;
  auto parts = rdd.materialize();
  for (const auto& part : *parts) {
    for (const auto& [k, v] : part) out[k] += 1;
  }
  return out;
}

}  // namespace hoh::spark
