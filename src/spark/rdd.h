#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

/// \file rdd.h
/// A real, in-process mini-RDD engine: lazy, lineage-based, partitioned
/// collections evaluated in parallel on a thread pool. This is the
/// "memory-centric processing engine [that] can retain resources across
/// multiple task generations" (paper SS-II) in miniature — enough to run
/// genuine Spark-style analytics (including the K-Means example) against
/// the middleware. Transformations are lazy; actions evaluate the
/// lineage; cache() pins the materialized partitions.

namespace hoh::spark {

/// Shared execution environment: one thread pool + default parallelism.
class SparkEnv {
 public:
  explicit SparkEnv(std::size_t threads = 0)
      : pool_(std::make_shared<common::ThreadPool>(threads)) {}

  common::ThreadPool& pool() { return *pool_; }
  std::shared_ptr<common::ThreadPool> pool_ptr() const { return pool_; }
  std::size_t default_parallelism() const { return pool_->size(); }

 private:
  std::shared_ptr<common::ThreadPool> pool_;
};

template <typename T>
class Rdd {
 public:
  using Partitions = std::vector<std::vector<T>>;

  /// Distributes \p data over \p partitions partitions (0 = pool size).
  static Rdd parallelize(SparkEnv& env, std::vector<T> data,
                         std::size_t partitions = 0) {
    if (partitions == 0) partitions = env.default_parallelism();
    partitions = std::max<std::size_t>(1, partitions);
    auto parts = std::make_shared<Partitions>();
    parts->resize(partitions);
    const std::size_t n = data.size();
    const std::size_t chunk = (n + partitions - 1) / std::max<std::size_t>(partitions, 1);
    for (std::size_t p = 0; p < partitions; ++p) {
      const std::size_t lo = p * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      if (lo < hi) {
        (*parts)[p].assign(std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(lo)),
                           std::make_move_iterator(data.begin() + static_cast<std::ptrdiff_t>(hi)));
      }
    }
    return Rdd(env.pool_ptr(), [parts] { return *parts; });
  }

  /// Lazy element-wise transformation.
  template <typename F>
  auto map(F f) const -> Rdd<std::invoke_result_t<F, const T&>> {
    using U = std::invoke_result_t<F, const T&>;
    auto self = *this;
    return Rdd<U>(pool_, [self, f] {
      Partitions input = self.materialize();
      typename Rdd<U>::Partitions out(input.size());
      self.for_each_partition(input.size(), [&](std::size_t p) {
        out[p].reserve(input[p].size());
        for (const auto& x : input[p]) out[p].push_back(f(x));
      });
      return out;
    });
  }

  /// Lazy filter.
  template <typename F>
  Rdd filter(F pred) const {
    auto self = *this;
    return Rdd(pool_, [self, pred] {
      Partitions input = self.materialize();
      Partitions out(input.size());
      self.for_each_partition(input.size(), [&](std::size_t p) {
        for (const auto& x : input[p]) {
          if (pred(x)) out[p].push_back(x);
        }
      });
      return out;
    });
  }

  /// Lazy flat-map.
  template <typename F>
  auto flat_map(F f) const
      -> Rdd<typename std::invoke_result_t<F, const T&>::value_type> {
    using U = typename std::invoke_result_t<F, const T&>::value_type;
    auto self = *this;
    return Rdd<U>(pool_, [self, f] {
      Partitions input = self.materialize();
      typename Rdd<U>::Partitions out(input.size());
      self.for_each_partition(input.size(), [&](std::size_t p) {
        for (const auto& x : input[p]) {
          auto ys = f(x);
          out[p].insert(out[p].end(), std::make_move_iterator(ys.begin()),
                        std::make_move_iterator(ys.end()));
        }
      });
      return out;
    });
  }

  /// Lazy per-partition transformation (mapPartitions).
  template <typename F>
  auto map_partitions(F f) const
      -> Rdd<typename std::invoke_result_t<F, const std::vector<T>&>::value_type> {
    using U = typename std::invoke_result_t<F, const std::vector<T>&>::value_type;
    auto self = *this;
    return Rdd<U>(pool_, [self, f] {
      Partitions input = self.materialize();
      typename Rdd<U>::Partitions out(input.size());
      self.for_each_partition(input.size(),
                              [&](std::size_t p) { out[p] = f(input[p]); });
      return out;
    });
  }

  /// Marks this RDD cached: the first evaluation memoizes partitions.
  Rdd cache() const {
    Rdd out = *this;
    out.cache_ = std::make_shared<CacheSlot>();
    return out;
  }

  /// Lazy union: this RDD's partitions followed by \p other's.
  Rdd union_with(const Rdd& other) const {
    auto self = *this;
    return Rdd(pool_, [self, other] {
      Partitions a = self.materialize();
      Partitions b = other.materialize();
      a.insert(a.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
      return a;
    });
  }

  /// Lazy de-duplication (requires operator< on T); result is sorted
  /// within one output partition.
  Rdd distinct() const {
    auto self = *this;
    return Rdd(pool_, [self] {
      std::set<T> seen;
      for (const auto& part : self.materialize()) {
        seen.insert(part.begin(), part.end());
      }
      Partitions out(1);
      out[0].assign(seen.begin(), seen.end());
      return out;
    });
  }

  /// Lazy Bernoulli sample (deterministic for a fixed seed).
  Rdd sample(double fraction, std::uint64_t seed = 42) const {
    auto self = *this;
    return Rdd(pool_, [self, fraction, seed] {
      Partitions input = self.materialize();
      Partitions out(input.size());
      for (std::size_t p = 0; p < input.size(); ++p) {
        // Per-partition RNG keyed by seed+index keeps evaluation
        // order-independent.
        common::Rng rng(seed + p);
        for (const auto& x : input[p]) {
          if (rng.bernoulli(fraction)) out[p].push_back(x);
        }
      }
      return out;
    });
  }

  /// Lazy (element, global index) pairing, indices in partition order.
  Rdd<std::pair<T, std::size_t>> zip_with_index() const {
    auto self = *this;
    return Rdd<std::pair<T, std::size_t>>(pool_, [self] {
      Partitions input = self.materialize();
      typename Rdd<std::pair<T, std::size_t>>::Partitions out(input.size());
      std::size_t index = 0;
      for (std::size_t p = 0; p < input.size(); ++p) {
        out[p].reserve(input[p].size());
        for (const auto& x : input[p]) {
          out[p].emplace_back(x, index++);
        }
      }
      return out;
    });
  }

  /// First n elements in partition order (eager).
  std::vector<T> take(std::size_t n) const {
    std::vector<T> out;
    for (const auto& part : materialize()) {
      for (const auto& x : part) {
        if (out.size() >= n) return out;
        out.push_back(x);
      }
    }
    return out;
  }

  /// First element; throws StateError on an empty RDD (eager).
  T first() const {
    auto head = take(1);
    if (head.empty()) throw common::StateError("first() on empty RDD");
    return head.front();
  }

  // ---- actions (eager) ----

  std::vector<T> collect() const {
    Partitions parts = materialize();
    std::vector<T> out;
    for (auto& p : parts) {
      out.insert(out.end(), std::make_move_iterator(p.begin()),
                 std::make_move_iterator(p.end()));
    }
    return out;
  }

  std::size_t count() const {
    Partitions parts = materialize();
    std::size_t n = 0;
    for (const auto& p : parts) n += p.size();
    return n;
  }

  /// Tree reduction; throws StateError on an empty RDD.
  template <typename F>
  T reduce(F f) const {
    Partitions parts = materialize();
    std::vector<T> partials;
    common::Mutex mu;
    for_each_partition(parts.size(), [&](std::size_t p) {
      if (parts[p].empty()) return;
      T acc = parts[p].front();
      for (std::size_t i = 1; i < parts[p].size(); ++i) {
        acc = f(acc, parts[p][i]);
      }
      common::MutexLock lock(mu);
      partials.push_back(std::move(acc));
    });
    if (partials.empty()) {
      throw common::StateError("reduce() on empty RDD");
    }
    T acc = partials.front();
    for (std::size_t i = 1; i < partials.size(); ++i) {
      acc = f(acc, partials[i]);
    }
    return acc;
  }

  /// fold with a zero value (safe on empty RDDs).
  template <typename F>
  T fold(T zero, F f) const {
    Partitions parts = materialize();
    T acc = zero;
    for (const auto& part : parts) {
      for (const auto& x : part) acc = f(acc, x);
    }
    return acc;
  }

  std::size_t num_partitions() const { return materialize().size(); }

  // ---- internal plumbing (public for cross-type access from free
  // functions like reduce_by_key) ----

  Rdd(std::shared_ptr<common::ThreadPool> pool,
      std::function<Partitions()> compute)
      : pool_(std::move(pool)), compute_(std::move(compute)) {}

  Partitions materialize() const {
    if (cache_) {
      common::MutexLock lock(cache_->mu);
      if (!cache_->value) {
        cache_->value = std::make_shared<Partitions>(compute_());
      }
      return *cache_->value;
    }
    return compute_();
  }

  void for_each_partition(std::size_t n,
                          const std::function<void(std::size_t)>& fn) const {
    pool_->parallel_for(n, fn);
  }

  std::shared_ptr<common::ThreadPool> pool() const { return pool_; }

 private:
  template <typename U>
  friend class Rdd;

  struct CacheSlot {
    common::Mutex mu;
    std::shared_ptr<Partitions> value HOH_GUARDED_BY(mu);
  };

  std::shared_ptr<common::ThreadPool> pool_;
  std::function<Partitions()> compute_;
  std::shared_ptr<CacheSlot> cache_;
};

/// reduceByKey for pair RDDs: per-partition combine, hash-partitioned
/// merge into \p out_partitions output partitions (0 = input count).
template <typename K, typename V, typename F>
Rdd<std::pair<K, V>> reduce_by_key(const Rdd<std::pair<K, V>>& rdd, F f,
                                   std::size_t out_partitions = 0) {
  auto pool = rdd.pool();
  return Rdd<std::pair<K, V>>(pool, [rdd, f, out_partitions, pool] {
    auto input = rdd.materialize();
    const std::size_t out_n =
        out_partitions > 0 ? out_partitions : std::max<std::size_t>(1, input.size());
    // Map side: per-partition combine into per-reducer buckets.
    std::vector<std::vector<std::map<K, V>>> buckets(input.size());
    pool->parallel_for(input.size(), [&](std::size_t p) {
      buckets[p].resize(out_n);
      std::hash<K> hasher;
      for (const auto& [k, v] : input[p]) {
        auto& bucket = buckets[p][hasher(k) % out_n];
        auto it = bucket.find(k);
        if (it == bucket.end()) {
          bucket.emplace(k, v);
        } else {
          it->second = f(it->second, v);
        }
      }
    });
    // Reduce side: merge bucket r from every map partition.
    typename Rdd<std::pair<K, V>>::Partitions out(out_n);
    pool->parallel_for(out_n, [&](std::size_t r) {
      std::map<K, V> merged;
      for (std::size_t p = 0; p < buckets.size(); ++p) {
        for (const auto& [k, v] : buckets[p][r]) {
          auto it = merged.find(k);
          if (it == merged.end()) {
            merged.emplace(k, v);
          } else {
            it->second = f(it->second, v);
          }
        }
      }
      out[r].assign(merged.begin(), merged.end());
    });
    return out;
  });
}

/// collect_as_map action for pair RDDs.
template <typename K, typename V>
std::map<K, V> collect_as_map(const Rdd<std::pair<K, V>>& rdd) {
  std::map<K, V> out;
  for (auto& [k, v] : rdd.collect()) out[k] = v;
  return out;
}

/// groupByKey: all values per key gathered into one vector (one output
/// partition per hash bucket, like reduce_by_key).
template <typename K, typename V>
Rdd<std::pair<K, std::vector<V>>> group_by_key(
    const Rdd<std::pair<K, V>>& rdd, std::size_t out_partitions = 0) {
  auto pool = rdd.pool();
  return Rdd<std::pair<K, std::vector<V>>>(pool, [rdd, out_partitions] {
    auto input = rdd.materialize();
    const std::size_t out_n = out_partitions > 0
                                  ? out_partitions
                                  : std::max<std::size_t>(1, input.size());
    std::vector<std::map<K, std::vector<V>>> buckets(out_n);
    std::hash<K> hasher;
    for (const auto& part : input) {
      for (const auto& [k, v] : part) {
        buckets[hasher(k) % out_n][k].push_back(v);
      }
    }
    typename Rdd<std::pair<K, std::vector<V>>>::Partitions out(out_n);
    for (std::size_t r = 0; r < out_n; ++r) {
      out[r].assign(std::make_move_iterator(buckets[r].begin()),
                    std::make_move_iterator(buckets[r].end()));
    }
    return out;
  });
}

/// map_values: transform V while keeping the key.
template <typename K, typename V, typename F>
auto map_values(const Rdd<std::pair<K, V>>& rdd, F f)
    -> Rdd<std::pair<K, std::invoke_result_t<F, const V&>>> {
  using W = std::invoke_result_t<F, const V&>;
  return rdd.map([f](const std::pair<K, V>& kv) {
    return std::pair<K, W>(kv.first, f(kv.second));
  });
}

/// Inner hash join: one output pair per matching (left, right) value
/// combination.
template <typename K, typename V, typename W>
Rdd<std::pair<K, std::pair<V, W>>> join(const Rdd<std::pair<K, V>>& left,
                                        const Rdd<std::pair<K, W>>& right,
                                        std::size_t out_partitions = 0) {
  auto pool = left.pool();
  return Rdd<std::pair<K, std::pair<V, W>>>(
      pool, [left, right, out_partitions] {
        auto grouped_left = group_by_key(left, out_partitions).materialize();
        auto grouped_right =
            group_by_key(right, out_partitions).materialize();
        // Build a lookup of the right side.
        std::map<K, std::vector<W>> rhs;
        for (const auto& part : grouped_right) {
          for (const auto& [k, vs] : part) rhs[k] = vs;
        }
        typename Rdd<std::pair<K, std::pair<V, W>>>::Partitions out(
            grouped_left.size());
        for (std::size_t p = 0; p < grouped_left.size(); ++p) {
          for (const auto& [k, vs] : grouped_left[p]) {
            auto it = rhs.find(k);
            if (it == rhs.end()) continue;
            for (const auto& v : vs) {
              for (const auto& w : it->second) {
                out[p].emplace_back(k, std::pair<V, W>(v, w));
              }
            }
          }
        }
        return out;
      });
}

/// cogroup: per key, the value lists of both sides (keys present on
/// either side appear).
template <typename K, typename V, typename W>
Rdd<std::pair<K, std::pair<std::vector<V>, std::vector<W>>>> cogroup(
    const Rdd<std::pair<K, V>>& left, const Rdd<std::pair<K, W>>& right) {
  using Out = std::pair<K, std::pair<std::vector<V>, std::vector<W>>>;
  auto pool = left.pool();
  return Rdd<Out>(pool, [left, right] {
    std::map<K, std::pair<std::vector<V>, std::vector<W>>> merged;
    for (const auto& part : left.materialize()) {
      for (const auto& [k, v] : part) merged[k].first.push_back(v);
    }
    for (const auto& part : right.materialize()) {
      for (const auto& [k, w] : part) merged[k].second.push_back(w);
    }
    typename Rdd<Out>::Partitions out(1);
    out[0].assign(merged.begin(), merged.end());
    return out;
  });
}

/// count_by_key action.
template <typename K, typename V>
std::map<K, std::size_t> count_by_key(const Rdd<std::pair<K, V>>& rdd) {
  std::map<K, std::size_t> out;
  for (const auto& part : rdd.materialize()) {
    for (const auto& [k, v] : part) out[k] += 1;
  }
  return out;
}

}  // namespace hoh::spark
