#include "spark/dag_scheduler.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::spark {

std::string DagScheduler::submit(const SparkJobSpec& spec,
                                 std::function<void()> on_done) {
  if (spec.stages.empty()) {
    throw common::ConfigError("SparkJobSpec: needs at least one stage");
  }
  for (std::size_t i = 0; i < spec.stages.size(); ++i) {
    for (int parent : spec.stages[i].parents) {
      if (parent < 0 || parent >= static_cast<int>(i)) {
        throw common::ConfigError(common::strformat(
            "SparkJobSpec: stage %zu has invalid parent %d (parents must "
            "precede children)",
            i, parent));
      }
    }
    if (spec.stages[i].tasks < 1) {
      throw common::ConfigError("SparkJobSpec: stage needs >= 1 task");
    }
  }
  const std::string job_id = common::strformat(
      "job-%03llu", static_cast<unsigned long long>(next_job_++));
  JobRec rec;
  rec.spec = spec;
  rec.progress.stages_total = static_cast<int>(spec.stages.size());
  rec.waiting_on.reserve(spec.stages.size());
  for (const auto& stage : spec.stages) {
    rec.waiting_on.push_back(static_cast<int>(stage.parents.size()));
  }
  rec.submitted.assign(spec.stages.size(), false);
  rec.on_done = std::move(on_done);
  jobs_.emplace(job_id, std::move(rec));
  submit_ready_stages(job_id);
  return job_id;
}

void DagScheduler::submit_ready_stages(const std::string& job_id) {
  JobRec& job = jobs_.at(job_id);
  for (std::size_t i = 0; i < job.spec.stages.size(); ++i) {
    if (job.submitted[i] || job.waiting_on[i] > 0) continue;
    job.submitted[i] = true;
    const auto& stage = job.spec.stages[i];
    cluster_.run_stage(app_id_, stage.tasks,
                       [seconds = stage.task_seconds](int) {
                         return seconds;
                       },
                       [this, job_id, index = static_cast<int>(i)] {
                         on_stage_done(job_id, index);
                       });
  }
}

void DagScheduler::on_stage_done(const std::string& job_id,
                                 int stage_index) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  JobRec& job = it->second;
  job.progress.stages_done += 1;
  job.progress.completion_order.push_back(stage_index);
  // Unblock children.
  for (std::size_t i = 0; i < job.spec.stages.size(); ++i) {
    for (int parent : job.spec.stages[i].parents) {
      if (parent == stage_index) job.waiting_on[i] -= 1;
    }
  }
  if (job.progress.stages_done == job.progress.stages_total) {
    job.progress.finished = true;
    if (job.on_done) job.on_done();
    return;
  }
  submit_ready_stages(job_id);
}

SparkJobStatus DagScheduler::status(const std::string& job_id) const {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    throw common::NotFoundError("DagScheduler: unknown job " + job_id);
  }
  return it->second.progress;
}

}  // namespace hoh::spark
