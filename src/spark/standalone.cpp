#include "spark/standalone.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::spark {

std::string to_string(SparkAppState state) {
  switch (state) {
    case SparkAppState::kWaiting:
      return "WAITING";
    case SparkAppState::kRunning:
      return "RUNNING";
    case SparkAppState::kFinished:
      return "FINISHED";
    case SparkAppState::kKilled:
      return "KILLED";
  }
  return "?";
}

SparkStandaloneCluster::SparkStandaloneCluster(
    sim::Engine& engine, const cluster::MachineProfile& machine,
    const cluster::Allocation& allocation, SparkConfig config)
    : engine_(engine), config_(config) {
  if (allocation.empty()) {
    throw common::ConfigError("SparkStandaloneCluster: empty allocation");
  }
  master_node_ = allocation.nodes().front()->name();
  for (const auto& node : allocation.nodes()) {
    workers_.push_back(make_worker(node));
  }
  (void)machine;
  schedule_event_ = engine_.schedule_periodic(
      config_.master_schedule_interval, [this] { schedule_pass(); });
}

SparkStandaloneCluster::~SparkStandaloneCluster() { shutdown(); }

SparkStandaloneCluster::Worker SparkStandaloneCluster::make_worker(
    std::shared_ptr<cluster::Node> node) const {
  Worker w;
  w.node = std::move(node);
  w.free_cores = config_.worker_cores > 0 ? config_.worker_cores
                                          : w.node->spec().cores;
  w.free_memory_mb = config_.worker_memory_mb > 0
                         ? config_.worker_memory_mb
                         : w.node->spec().memory_mb - 1024;
  w.total_cores = w.free_cores;
  return w;
}

int SparkStandaloneCluster::live_total_cores() const {
  int total = 0;
  for (const auto& w : workers_) {
    if (w.alive && !w.decommissioning) total += w.total_cores;
  }
  return total;
}

void SparkStandaloneCluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  engine_.cancel(schedule_event_);
  for (auto& [id, app] : apps_) {
    if (app.state == SparkAppState::kWaiting ||
        app.state == SparkAppState::kRunning) {
      app.state = SparkAppState::kKilled;
    }
  }
}

std::string SparkStandaloneCluster::submit_application(
    const SparkAppDescriptor& descriptor, std::function<void()> on_ready) {
  if (shut_down_) {
    throw common::StateError("Spark master is down");
  }
  if (descriptor.executor_cores <= 0) {
    throw common::ConfigError("executor_cores must be >= 1");
  }
  const std::string app_id = common::strformat(
      "app-%04llu", static_cast<unsigned long long>(next_app_++));
  App app;
  app.descriptor = descriptor;
  const int total_cores = live_total_cores();
  app.max_cores_cap = descriptor.max_cores > 0
                          ? std::min(descriptor.max_cores, total_cores)
                          : total_cores;
  if (config_.dynamic_allocation) {
    // Start small; schedule_pass grows the target while tasks queue.
    app.wanted_cores = std::min(
        app.max_cores_cap,
        std::max(1, descriptor.min_executors) * descriptor.executor_cores);
  } else {
    app.wanted_cores = app.max_cores_cap;
  }
  app.on_ready = std::move(on_ready);
  apps_.emplace(app_id, std::move(app));
  return app_id;
}

SparkStandaloneCluster::App& SparkStandaloneCluster::find(
    const std::string& app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    throw common::NotFoundError("Spark: unknown app " + app_id);
  }
  return it->second;
}

const SparkStandaloneCluster::App& SparkStandaloneCluster::find(
    const std::string& app_id) const {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    throw common::NotFoundError("Spark: unknown app " + app_id);
  }
  return it->second;
}

SparkAppState SparkStandaloneCluster::app_state(
    const std::string& app_id) const {
  return find(app_id).state;
}

std::vector<ExecutorInfo> SparkStandaloneCluster::executors(
    const std::string& app_id) const {
  return find(app_id).executors;
}

int SparkStandaloneCluster::task_slots(const std::string& app_id) const {
  const App& app = find(app_id);
  int slots = 0;
  for (const auto& e : app.executors) slots += e.cores;
  return slots;
}

void SparkStandaloneCluster::schedule_pass() {
  if (shut_down_) return;
  const int live_total = live_total_cores();
  for (auto& [app_id, app] : apps_) {
    if (app.state != SparkAppState::kWaiting &&
        app.state != SparkAppState::kRunning) {
      continue;
    }
    // Re-derive the core ceiling from live capacity each pass so targets
    // track workers joining and leaving mid-run instead of a value cached
    // at submit time.
    app.max_cores_cap = app.descriptor.max_cores > 0
                            ? std::min(app.descriptor.max_cores, live_total)
                            : live_total;
    if (config_.dynamic_allocation) {
      adjust_dynamic_target(app_id, app);
      app.wanted_cores = std::min(app.wanted_cores, app.max_cores_cap);
    } else {
      app.wanted_cores = app.max_cores_cap;
    }
    int granted = 0;
    for (const auto& e : app.executors) granted += e.cores;

    // Grant executors until wanted_cores is covered. spreadOut: walk
    // workers round-robin; otherwise fill one worker before the next.
    bool progress = true;
    while (granted < app.wanted_cores && progress) {
      progress = false;
      // Order candidate workers by free cores (desc) for spread-out, or
      // ascending index for consolidate.
      std::vector<std::size_t> order(workers_.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      if (config_.spread_out) {
        std::stable_sort(order.begin(), order.end(),
                         [this](std::size_t a, std::size_t b) {
                           return workers_[a].free_cores >
                                  workers_[b].free_cores;
                         });
      }
      for (std::size_t wi : order) {
        Worker& w = workers_[wi];
        if (!w.alive || w.decommissioning) continue;
        const int cores = app.descriptor.executor_cores;
        const common::MemoryMb mem = app.descriptor.executor_memory_mb;
        if (w.free_cores < cores || w.free_memory_mb < mem) continue;
        if (!w.node->allocate(cluster::ResourceRequest{cores, mem})) continue;
        // One grant per placement round: the next round re-evaluates the
        // worker order (spreadOut re-sorts by free cores; consolidate
        // restarts from the first worker and packs it until full).
        w.free_cores -= cores;
        w.free_memory_mb -= mem;
        ExecutorInfo exec;
        exec.id = common::strformat(
            "exec-%llu", static_cast<unsigned long long>(next_executor_++));
        exec.worker_node = w.node->name();
        exec.cores = cores;
        exec.memory_mb = mem;
        app.executors.push_back(exec);
        granted += cores;
        progress = true;
        // Executor JVM comes up after the launch latency.
        engine_.schedule(config_.executor_launch_time, [this, app_id] {
          auto it = apps_.find(app_id);
          if (it == apps_.end()) return;
          App& a = it->second;
          a.ready_executors += 1;
          a.free_slots += a.descriptor.executor_cores;
          if (a.state == SparkAppState::kWaiting &&
              a.ready_executors == static_cast<int>(a.executors.size())) {
            a.state = SparkAppState::kRunning;
            if (a.on_ready) a.on_ready();
          }
          pump_tasks(app_id);
        });
        break;
      }
    }
  }
}

void SparkStandaloneCluster::run_stage(
    const std::string& app_id, int num_tasks,
    std::function<common::Seconds(int)> duration,
    std::function<void()> on_done) {
  App& app = find(app_id);
  if (app.state == SparkAppState::kFinished ||
      app.state == SparkAppState::kKilled) {
    throw common::StateError("Spark app " + app_id + " is finished");
  }
  Stage stage;
  for (int i = 0; i < num_tasks; ++i) {
    stage.pending.push_back(Task{duration ? duration(i) : 0.0});
  }
  stage.on_done = std::move(on_done);
  app.stages.push_back(std::move(stage));
  pump_tasks(app_id);
}

void SparkStandaloneCluster::pump_tasks(const std::string& app_id) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  App& app = it->second;
  if (app.stages.empty()) return;
  Stage& stage = app.stages.front();
  while (app.free_slots > 0 && !stage.pending.empty()) {
    const Task task = stage.pending.front();
    stage.pending.pop_front();
    app.free_slots -= 1;
    stage.running += 1;
    engine_.schedule(task.duration, [this, app_id] {
      auto ait = apps_.find(app_id);
      if (ait == apps_.end()) return;
      App& a = ait->second;
      a.free_slots += 1;
      if (a.stages.empty()) return;
      Stage& s = a.stages.front();
      s.running -= 1;
      if (s.pending.empty() && s.running == 0) {
        auto done = std::move(s.on_done);
        a.stages.pop_front();
        if (done) done();
        pump_tasks(app_id);  // next stage may start
      } else {
        pump_tasks(app_id);
      }
    });
  }
}

void SparkStandaloneCluster::finish_application(const std::string& app_id,
                                                bool success) {
  App& app = find(app_id);
  if (app.state == SparkAppState::kFinished ||
      app.state == SparkAppState::kKilled) {
    return;
  }
  app.state = success ? SparkAppState::kFinished : SparkAppState::kKilled;
  // Release executor resources back to workers and node ledgers.
  for (const auto& exec : app.executors) {
    for (auto& w : workers_) {
      if (w.node->name() == exec.worker_node) {
        w.free_cores += exec.cores;
        w.free_memory_mb += exec.memory_mb;
        w.node->release(
            cluster::ResourceRequest{exec.cores, exec.memory_mb});
        break;
      }
    }
  }
  app.executors.clear();
  app.free_slots = 0;
  app.stages.clear();
}

void SparkStandaloneCluster::adjust_dynamic_target(
    const std::string& app_id, App& app) {
  (void)app_id;
  // Pending tasks beyond the current slots? Ask for one more executor.
  int backlog = 0;
  if (!app.stages.empty()) {
    backlog = static_cast<int>(app.stages.front().pending.size());
  }
  if (backlog > app.free_slots) {
    app.wanted_cores = std::min(
        app.max_cores_cap,
        app.wanted_cores + app.descriptor.executor_cores);
    app.idle_since = -1.0;
    return;
  }
  // Fully idle (no stages at all): shed executors above the minimum once
  // the idle timeout elapses.
  const bool idle = app.stages.empty();
  if (!idle) {
    app.idle_since = -1.0;
    return;
  }
  if (app.idle_since < 0.0) {
    app.idle_since = engine_.now();
    return;
  }
  if (engine_.now() - app.idle_since < config_.executor_idle_timeout) {
    return;
  }
  const int min_cores =
      std::max(1, app.descriptor.min_executors) *
      app.descriptor.executor_cores;
  while (static_cast<int>(app.executors.size()) *
                 app.descriptor.executor_cores >
             min_cores &&
         app.free_slots >= app.descriptor.executor_cores) {
    // Release the most recently granted executor.
    const ExecutorInfo exec = app.executors.back();
    app.executors.pop_back();
    app.ready_executors =
        app.ready_executors > 0 ? app.ready_executors - 1 : 0;
    app.free_slots -= exec.cores;
    app.wanted_cores = std::max(min_cores, app.wanted_cores - exec.cores);
    for (auto& w : workers_) {
      if (w.node->name() == exec.worker_node) {
        w.free_cores += exec.cores;
        w.free_memory_mb += exec.memory_mb;
        w.node->release(
            cluster::ResourceRequest{exec.cores, exec.memory_mb});
        break;
      }
    }
  }
}

void SparkStandaloneCluster::withdraw_executors(Worker& w) {
  const std::string& node = w.node->name();
  for (auto& [app_id, app] : apps_) {
    std::vector<ExecutorInfo> kept;
    for (const auto& exec : app.executors) {
      if (exec.worker_node != node) {
        kept.push_back(exec);
        continue;
      }
      // Release the node ledger and withdraw idle slots.
      w.node->release(cluster::ResourceRequest{exec.cores, exec.memory_mb});
      w.free_cores += exec.cores;
      w.free_memory_mb += exec.memory_mb;
      app.ready_executors =
          app.ready_executors > 0 ? app.ready_executors - 1 : 0;
      app.free_slots = std::max(0, app.free_slots - exec.cores);
    }
    app.executors = std::move(kept);
  }
}

void SparkStandaloneCluster::fail_worker(const std::string& node) {
  for (auto& w : workers_) {
    if (w.node->name() != node || !w.alive) continue;
    w.alive = false;
    withdraw_executors(w);
    return;
  }
  throw common::NotFoundError("Spark: unknown worker " + node);
}

void SparkStandaloneCluster::add_worker(std::shared_ptr<cluster::Node> node) {
  if (shut_down_) {
    throw common::StateError("Spark master is down");
  }
  for (const auto& w : workers_) {
    if (w.node->name() == node->name()) {
      throw common::StateError("Spark: worker already registered on " +
                               node->name());
    }
  }
  workers_.push_back(make_worker(std::move(node)));
}

void SparkStandaloneCluster::decommission_worker(const std::string& node) {
  for (auto& w : workers_) {
    if (w.node->name() != node) continue;
    if (!w.alive || w.decommissioning) return;
    w.decommissioning = true;
    withdraw_executors(w);
    return;
  }
  throw common::NotFoundError("Spark: unknown worker " + node);
}

bool SparkStandaloneCluster::worker_drained(const std::string& node) const {
  for (const auto& [id, app] : apps_) {
    for (const auto& exec : app.executors) {
      if (exec.worker_node == node) return false;
    }
  }
  return true;
}

void SparkStandaloneCluster::remove_worker(const std::string& node) {
  auto it = std::find_if(workers_.begin(), workers_.end(),
                         [&](const Worker& w) {
                           return w.node->name() == node;
                         });
  if (it == workers_.end()) {
    throw common::NotFoundError("Spark: unknown worker " + node);
  }
  if (!worker_drained(node)) {
    throw common::StateError("Spark: worker " + node +
                             " still hosts executors");
  }
  workers_.erase(it);
}

std::size_t SparkStandaloneCluster::live_worker_count() const {
  std::size_t n = 0;
  for (const auto& w : workers_) {
    if (w.alive) ++n;
  }
  return n;
}

common::Json SparkStandaloneCluster::status() const {
  common::Json j;
  j["master"] = master_node_;
  common::JsonArray worker_rows;
  for (const auto& w : workers_) {
    common::Json row;
    row["node"] = w.node->name();
    row["freeCores"] = static_cast<std::int64_t>(w.free_cores);
    row["freeMemoryMB"] = w.free_memory_mb;
    worker_rows.push_back(std::move(row));
  }
  j["workers"] = std::move(worker_rows);
  std::int64_t running = 0;
  for (const auto& [id, app] : apps_) {
    if (app.state == SparkAppState::kRunning) ++running;
  }
  j["runningApps"] = running;
  return j;
}

}  // namespace hoh::spark
