#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "spark/standalone.h"

/// \file dag_scheduler.h
/// Spark's DAG scheduler in miniature: a job is a DAG of stages (wide
/// dependencies = stage boundaries); a stage becomes runnable once every
/// parent finished, and its tasks then occupy the application's executor
/// slots. This models how "Spark ... can retain resources across multiple
/// task generations" (paper SS-II): one long-lived executor set serves
/// all stages of all jobs.

namespace hoh::spark {

/// One stage of a job.
struct StageSpec {
  std::string name = "stage";
  int tasks = 1;
  common::Seconds task_seconds = 1.0;
  /// Indices of parent stages within the job (must be < this index).
  std::vector<int> parents;
};

/// A job: stages in topological-friendly index order.
struct SparkJobSpec {
  std::string name = "job";
  std::vector<StageSpec> stages;
};

/// Progress snapshot of a job.
struct SparkJobStatus {
  int stages_done = 0;
  int stages_total = 0;
  bool finished = false;
  /// Completion order (stage indices), for schedule verification.
  std::vector<int> completion_order;
};

/// Schedules stage DAGs onto one Spark application.
class DagScheduler {
 public:
  /// \p app_id must identify a submitted application on \p cluster.
  DagScheduler(SparkStandaloneCluster& cluster, std::string app_id)
      : cluster_(cluster), app_id_(std::move(app_id)) {}

  DagScheduler(const DagScheduler&) = delete;
  DagScheduler& operator=(const DagScheduler&) = delete;

  /// Validates the DAG (parent indices in range, acyclic by construction
  /// since parents must precede children) and starts it. Returns a job id.
  std::string submit(const SparkJobSpec& spec,
                     std::function<void()> on_done = nullptr);

  SparkJobStatus status(const std::string& job_id) const;

 private:
  struct JobRec {
    SparkJobSpec spec;
    SparkJobStatus progress;
    std::vector<int> waiting_on;  // unfinished parents per stage
    std::vector<bool> submitted;
    std::function<void()> on_done;
  };

  void submit_ready_stages(const std::string& job_id);
  void on_stage_done(const std::string& job_id, int stage_index);

  SparkStandaloneCluster& cluster_;
  std::string app_id_;
  std::map<std::string, JobRec> jobs_;
  std::uint64_t next_job_ = 0;
};

}  // namespace hoh::spark
