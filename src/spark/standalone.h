#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "common/json.h"
#include "sim/engine.h"

/// \file standalone.h
/// Spark standalone cluster simulator (paper SS-III-D: RADICAL-Pilot
/// integrates Spark "via the standalone deployment mode" because a
/// single-user pilot gains nothing from YARN multi-tenancy). One Master,
/// one Worker per node; applications get executors; tasks occupy executor
/// cores for simulated durations.

namespace hoh::spark {

/// spark-env.sh equivalents.
struct SparkConfig {
  int worker_cores = 0;                   // 0 = node cores
  common::MemoryMb worker_memory_mb = 0;  // 0 = node memory - 1 GiB
  common::Seconds executor_launch_time = 4.0;  // JVM spin-up
  common::Seconds master_schedule_interval = 0.5;
  /// spark.deploy.spreadOut: spread executors across workers (true) or
  /// consolidate onto few (false).
  bool spread_out = true;

  /// spark.dynamicAllocation.enabled: applications grow their executor
  /// set while tasks queue and shed idle executors after the timeout.
  bool dynamic_allocation = false;
  common::Seconds executor_idle_timeout = 60.0;
};

/// What an application asks for.
struct SparkAppDescriptor {
  std::string name = "spark-app";
  int executor_cores = 1;
  common::MemoryMb executor_memory_mb = 1024;
  /// Total cores wanted across executors (spark.cores.max); 0 = all.
  /// Under dynamic allocation this instead caps growth; the app starts
  /// from min_executors.
  int max_cores = 0;

  /// spark.dynamicAllocation.minExecutors (dynamic allocation only).
  int min_executors = 1;
};

enum class SparkAppState { kWaiting, kRunning, kFinished, kKilled };

std::string to_string(SparkAppState state);

struct ExecutorInfo {
  std::string id;
  std::string worker_node;
  int cores = 0;
  common::MemoryMb memory_mb = 0;
};

/// Master + workers over an allocation.
class SparkStandaloneCluster {
 public:
  SparkStandaloneCluster(sim::Engine& engine,
                         const cluster::MachineProfile& machine,
                         const cluster::Allocation& allocation,
                         SparkConfig config = {});
  ~SparkStandaloneCluster();

  SparkStandaloneCluster(const SparkStandaloneCluster&) = delete;
  SparkStandaloneCluster& operator=(const SparkStandaloneCluster&) = delete;

  /// Registers an application; executors are granted on scheduler passes.
  /// \p on_ready fires when all executors are up.
  std::string submit_application(const SparkAppDescriptor& descriptor,
                                 std::function<void()> on_ready = nullptr);

  SparkAppState app_state(const std::string& app_id) const;
  std::vector<ExecutorInfo> executors(const std::string& app_id) const;

  /// Total task slots (cores across ready executors) of an app.
  int task_slots(const std::string& app_id) const;

  /// Runs a stage of \p num_tasks tasks; task i takes duration(i)
  /// simulated seconds on one core. \p on_done fires when every task
  /// finished. Tasks beyond the slot count queue (wave scheduling).
  void run_stage(const std::string& app_id, int num_tasks,
                 std::function<common::Seconds(int)> duration,
                 std::function<void()> on_done);

  /// Finishes an application, releasing its executors.
  void finish_application(const std::string& app_id,
                          bool success = true);

  /// Simulates loss of a worker: its executors disappear from every
  /// application (idle slots are withdrawn; tasks already running are
  /// assumed to sit on surviving executors and finish) and applications
  /// reacquire executors on surviving workers up to their core target on
  /// subsequent master passes.
  void fail_worker(const std::string& node);

  /// Registers a worker on a freshly granted allocation node (elastic
  /// grow). Applications below their core target acquire executors on it
  /// from the next master pass.
  void add_worker(std::shared_ptr<cluster::Node> node);

  /// Graceful shrink: marks the worker decommissioning and sheds its
  /// executors through the same withdrawal/reacquisition machinery as
  /// `fail_worker` — idle slots are withdrawn, running tasks finish on
  /// the app's remaining slots, and the master re-grants on other
  /// workers. No task is lost.
  void decommission_worker(const std::string& node);

  /// True when no application holds an executor on the worker.
  bool worker_drained(const std::string& node) const;

  /// Deregisters a drained (or dead) worker — final step of a shrink.
  /// Throws StateError while executors remain.
  void remove_worker(const std::string& node);

  std::size_t live_worker_count() const;

  /// Master web-UI style JSON.
  common::Json status() const;

  const std::string& master_node() const { return master_node_; }

  void shutdown();  // sbin/stop-all.sh

 private:
  struct Worker {
    std::shared_ptr<cluster::Node> node;
    int free_cores = 0;
    common::MemoryMb free_memory_mb = 0;
    int total_cores = 0;  // configured capacity (for live-total queries)
    bool alive = true;
    bool decommissioning = false;
  };

  struct Task {
    common::Seconds duration = 0.0;
  };

  struct Stage {
    std::deque<Task> pending;
    int running = 0;
    std::function<void()> on_done;
  };

  struct App {
    SparkAppDescriptor descriptor;
    SparkAppState state = SparkAppState::kWaiting;
    std::vector<ExecutorInfo> executors;
    int ready_executors = 0;
    int wanted_cores = 0;
    int max_cores_cap = 0;  // ceiling for dynamic growth
    std::function<void()> on_ready;
    int free_slots = 0;  // idle executor cores
    std::deque<Stage> stages;
    common::Seconds idle_since = -1.0;  // no pending work since then
  };

  App& find(const std::string& app_id);
  const App& find(const std::string& app_id) const;

  Worker make_worker(std::shared_ptr<cluster::Node> node) const;
  void withdraw_executors(Worker& w);

  /// Total configured cores across alive, non-decommissioning workers —
  /// the live ceiling application core targets track as the cluster
  /// grows and shrinks.
  int live_total_cores() const;

  void schedule_pass();
  void adjust_dynamic_target(const std::string& app_id, App& app);
  void pump_tasks(const std::string& app_id);

  sim::Engine& engine_;
  SparkConfig config_;
  std::string master_node_;
  std::vector<Worker> workers_;
  std::map<std::string, App> apps_;
  sim::EventHandle schedule_event_;
  bool shut_down_ = false;
  std::uint64_t next_app_ = 1;
  std::uint64_t next_executor_ = 0;
};

}  // namespace hoh::spark
