#include "pilot/pilot_data.h"

#include <numeric>

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::pilot {

std::string to_string(DataUnitState state) {
  switch (state) {
    case DataUnitState::kNew:
      return "New";
    case DataUnitState::kPending:
      return "Pending";
    case DataUnitState::kReplicating:
      return "Replicating";
    case DataUnitState::kReady:
      return "Ready";
    case DataUnitState::kFailed:
      return "Failed";
  }
  return "?";
}

common::Bytes DataUnit::total_bytes() const {
  common::Bytes total = 0;
  for (const auto& f : files_) total += f.size;
  return total;
}

std::shared_ptr<PilotData> DataUnitManager::create_pilot_data(
    const PilotDataDescription& description) {
  // Validates the machine (throws NotFoundError when unregistered).
  session_.saga().resource(description.machine);
  const std::string id = common::strformat(
      "pilot-data.%03llu", static_cast<unsigned long long>(next_pd_++));
  auto pd = std::shared_ptr<PilotData>(new PilotData(id, description));
  pilot_datas_.emplace(id, pd);
  session_.trace().record(session_.engine().now(), "pilot-data", "created",
                          {{"pd", id}, {"machine", description.machine}});
  return pd;
}

std::shared_ptr<PilotData> DataUnitManager::find_pd(
    const std::string& id) const {
  auto it = pilot_datas_.find(id);
  if (it == pilot_datas_.end()) {
    throw common::NotFoundError("unknown pilot-data: " + id);
  }
  return it->second;
}

std::shared_ptr<DataUnit> DataUnitManager::submit_data_unit(
    std::vector<DataFile> files, const std::shared_ptr<PilotData>& target) {
  if (target == nullptr) {
    throw common::ConfigError("submit_data_unit: null pilot-data");
  }
  const std::string id = common::strformat(
      "data-unit.%04llu", static_cast<unsigned long long>(next_du_++));
  auto unit = std::shared_ptr<DataUnit>(new DataUnit(id, std::move(files)));
  const common::Bytes bytes = unit->total_bytes();
  if (bytes > target->free()) {
    throw common::ResourceError("pilot-data " + target->id() +
                                " lacks capacity for " + id);
  }
  target->used_ += bytes;
  unit->state_ = DataUnitState::kPending;
  units_.push_back(unit);

  // Import from a remote source at WAN speed, then the local write.
  const auto& machine = session_.saga().resource(
      target->description().machine).profile;
  const common::Seconds duration =
      cluster::NetworkModel::wan_transfer_time(bytes, 50.0e6) +
      machine.storage_transfer_time(target->description().backend, bytes, 1);
  session_.engine().schedule(duration, [this, unit, target] {
    unit->state_ = DataUnitState::kReady;
    unit->locations_.push_back(target->id());
    session_.trace().record(session_.engine().now(), "pilot-data", "ready",
                            {{"du", unit->id()}, {"pd", target->id()}});
  });
  return unit;
}

void DataUnitManager::replicate(const std::shared_ptr<DataUnit>& unit,
                                const std::shared_ptr<PilotData>& target) {
  if (unit->state_ != DataUnitState::kReady) {
    throw common::StateError("data unit " + unit->id() +
                             " is not Ready; cannot replicate");
  }
  for (const auto& loc : unit->locations_) {
    if (loc == target->id()) return;  // already there
  }
  const common::Bytes bytes = unit->total_bytes();
  if (bytes > target->free()) {
    throw common::ResourceError("pilot-data " + target->id() +
                                " lacks capacity for replica of " +
                                unit->id());
  }
  target->used_ += bytes;
  unit->state_ = DataUnitState::kReplicating;

  const auto src = find_pd(unit->locations_.front());
  const auto& src_machine =
      session_.saga().resource(src->description().machine).profile;
  const auto& dst_machine =
      session_.saga().resource(target->description().machine).profile;
  common::Seconds duration = std::max(
      src_machine.storage_transfer_time(src->description().backend, bytes, 1),
      dst_machine.storage_transfer_time(target->description().backend,
                                        bytes, 1));
  if (src->description().machine != target->description().machine) {
    duration += cluster::NetworkModel::wan_transfer_time(bytes, 50.0e6);
  }
  session_.engine().schedule(duration, [this, unit, target] {
    unit->locations_.push_back(target->id());
    unit->state_ = DataUnitState::kReady;
    session_.trace().record(session_.engine().now(), "pilot-data",
                            "replicated",
                            {{"du", unit->id()}, {"pd", target->id()}});
  });
}

std::string DataUnitManager::location_on(const DataUnit& unit,
                                         const std::string& machine) const {
  for (const auto& loc : unit.locations()) {
    if (find_pd(loc)->description().machine == machine) return loc;
  }
  return "";
}

common::Seconds DataUnitManager::staging_cost(
    const DataUnit& unit, const std::string& machine) const {
  const common::Bytes bytes = unit.total_bytes();
  const auto& profile = session_.saga().resource(machine).profile;
  const std::string local = location_on(unit, machine);
  if (!local.empty()) {
    // On-machine: one read through the placeholder's backend.
    return profile.storage_transfer_time(
        find_pd(local)->description().backend, bytes, 1);
  }
  if (unit.locations().empty()) {
    throw common::StateError("data unit " + unit.id() + " has no replicas");
  }
  // Remote: WAN pull plus local write.
  return cluster::NetworkModel::wan_transfer_time(bytes, 50.0e6) +
         profile.storage_transfer_time(cluster::StorageBackend::kSharedFs,
                                       bytes, 1);
}

}  // namespace hoh::pilot
