#include "pilot/state_store.h"

#include <utility>

#include "common/error.h"
#include "net/json_codec.h"
#include "pilot/transitions.h"

namespace hoh::pilot {

namespace {

/// FNV-1a over the bucket name; stable across runs so shard placement —
/// and with it every digest — is deterministic.
std::uint64_t bucket_hash(const std::string& bucket) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bucket) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

StateStore::StateStore(sim::Engine& engine, common::Seconds op_latency)
    : engine_(engine), op_latency_(op_latency) {
  shards_.push_back(std::make_unique<Shard>());
}

StateStore::Shard& StateStore::shard_for(const std::string& bucket) const {
  return *shards_[bucket_hash(bucket) % shards_.size()];
}

bool StateStore::in_use() const {
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    if (!shard->collections.empty() || !shard->queues.empty() ||
        !shard->watchers.empty()) {
      return true;
    }
  }
  return false;
}

void StateStore::set_shard_count(std::size_t count) {
  if (count == 0 || count > kMaxShards) {
    throw common::ConfigError("StateStore: shard count must be in [1, " +
                              std::to_string(kMaxShards) + "]");
  }
  if (in_use()) {
    throw common::StateError(
        "StateStore::set_shard_count: store already holds documents, "
        "queues or watchers");
  }
  std::uint64_t carried = 0;
  std::uint64_t carried_muts = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    carried += shard->ops;
    carried_muts += shard->muts;
  }
  {
    common::MutexLock lock(id_mu_);
    ops_base_ += carried;
    muts_base_ += carried_muts;
  }
  shards_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void StateStore::put(const std::string& collection, const std::string& id,
                     common::Json document) {
  Shard& shard = shard_for(collection);
  {
    common::MutexLock lock(shard.mu);
    ++shard.ops;
    ++shard.muts;
    shard.collections[collection][id] = std::move(document);
  }
  notify(WatchEventType::kPut, collection, id);
}

std::optional<common::Json> StateStore::get(const std::string& collection,
                                            const std::string& id) const {
  Shard& shard = shard_for(collection);
  common::MutexLock lock(shard.mu);
  ++shard.ops;
  auto cit = shard.collections.find(collection);
  if (cit == shard.collections.end()) return std::nullopt;
  auto dit = cit->second.find(id);
  if (dit == cit->second.end()) return std::nullopt;
  return dit->second;
}

std::optional<common::Json> StateStore::get_field(
    const std::string& collection, const std::string& id,
    const std::string& field) const {
  Shard& shard = shard_for(collection);
  common::MutexLock lock(shard.mu);
  ++shard.ops;
  auto cit = shard.collections.find(collection);
  if (cit == shard.collections.end()) return std::nullopt;
  auto dit = cit->second.find(id);
  if (dit == cit->second.end()) return std::nullopt;
  if (!dit->second.is_object() || !dit->second.contains(field)) {
    return std::nullopt;
  }
  return dit->second.at(field);
}

void StateStore::update(const std::string& collection, const std::string& id,
                        const common::JsonObject& fields) {
  Shard& shard = shard_for(collection);
  {
    common::MutexLock lock(shard.mu);
    ++shard.ops;
    auto cit = shard.collections.find(collection);
    if (cit == shard.collections.end() || cit->second.count(id) == 0) {
      throw common::NotFoundError("StateStore: no document " + collection +
                                  "/" + id);
    }
    common::Json& doc = cit->second.at(id);
    // Lifecycle gate: the store is the single path every unit state write
    // takes (agent write-back, Unit-Manager cancellation), so an illegal
    // edge is stopped here no matter which component attempts it. Watchers
    // are notified only after the gate passed — they never observe an
    // illegal write.
    if (collection == "unit") {
      auto state_field = fields.find("state");
      if (state_field != fields.end() && doc.contains("state")) {
        validate_transition(
            unit_state_from_string(doc.at("state").as_string()),
            unit_state_from_string(state_field->second.as_string()), id);
      }
    }
    for (const auto& [k, v] : fields) doc[k] = v;
    ++shard.muts;
  }
  notify(WatchEventType::kUpdate, collection, id);
}

std::vector<std::pair<std::string, common::Json>> StateStore::find_all(
    const std::string& collection) const {
  Shard& shard = shard_for(collection);
  common::MutexLock lock(shard.mu);
  ++shard.ops;
  std::vector<std::pair<std::string, common::Json>> out;
  auto cit = shard.collections.find(collection);
  if (cit == shard.collections.end()) return out;
  out.assign(cit->second.begin(), cit->second.end());
  return out;
}

void StateStore::queue_push(const std::string& queue, const std::string& id) {
  Shard& shard = shard_for(queue);
  {
    common::MutexLock lock(shard.mu);
    ++shard.ops;
    ++shard.muts;
    shard.queues[queue].push_back(id);
  }
  notify(WatchEventType::kQueuePush, queue, id);
}

std::vector<std::string> StateStore::queue_pop_all(const std::string& queue) {
  Shard& shard = shard_for(queue);
  common::MutexLock lock(shard.mu);
  ++shard.ops;
  ++shard.muts;
  std::vector<std::string> out;
  auto it = shard.queues.find(queue);
  if (it == shard.queues.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  it->second.clear();
  return out;
}

std::size_t StateStore::queue_depth(const std::string& queue) const {
  Shard& shard = shard_for(queue);
  common::MutexLock lock(shard.mu);
  auto it = shard.queues.find(queue);
  return it == shard.queues.end() ? 0 : it->second.size();
}

std::uint64_t StateStore::op_count() const {
  std::uint64_t total = 0;
  {
    common::MutexLock lock(id_mu_);
    total = ops_base_;
  }
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    total += shard->ops;
  }
  return total;
}

std::uint64_t StateStore::mutation_count() const {
  std::uint64_t total = 0;
  {
    common::MutexLock lock(id_mu_);
    total = muts_base_;
  }
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    total += shard->muts;
  }
  return total;
}

WatchHandle StateStore::watch(const std::string& bucket,
                              const std::string& key_prefix,
                              WatchCallback callback) {
  const std::size_t shard_index = bucket_hash(bucket) % shards_.size();
  std::uint64_t id = 0;
  {
    common::MutexLock lock(id_mu_);
    id = (next_watch_seq_++ << 8) | shard_index;
  }
  Shard& shard = *shards_[shard_index];
  common::MutexLock lock(shard.mu);
  shard.watchers.emplace(id, Watcher{bucket, key_prefix, std::move(callback)});
  return WatchHandle(id);
}

bool StateStore::unwatch(WatchHandle handle) {
  if (!handle.valid()) return false;
  Shard& shard = *shards_[(handle.id_ & 0xff) % shards_.size()];
  common::MutexLock lock(shard.mu);
  return shard.watchers.erase(handle.id_) > 0;
}

std::size_t StateStore::watcher_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    common::MutexLock lock(shard->mu);
    n += shard->watchers.size();
  }
  return n;
}

void StateStore::notify(WatchEventType type, const std::string& bucket,
                        const std::string& key) {
  // Snapshot the ids of matching watchers; resolve them again at delivery
  // time so an unwatch between mutation and delivery (or during delivery
  // of the same mutation to an earlier watcher) suppresses the callback.
  Shard& shard = shard_for(bucket);
  std::vector<std::uint64_t> targets;
  {
    common::MutexLock lock(shard.mu);
    for (const auto& [id, w] : shard.watchers) {
      if (w.bucket == bucket && key.rfind(w.prefix, 0) == 0) {
        targets.push_back(id);
      }
    }
  }
  if (targets.empty()) return;
  // Coalesced delivery: mutations join one global FIFO; only the first
  // one pending schedules the zero-delay drain tick. A burst of k
  // mutations at one instant costs one engine event instead of k.
  bool need_schedule = false;
  {
    common::MutexLock lock(delivery_mu_);
    pending_deliveries_.push_back(
        PendingDelivery{std::move(targets), WatchEvent{type, bucket, key}});
    if (!delivery_scheduled_) {
      delivery_scheduled_ = true;
      need_schedule = true;
    }
  }
  if (need_schedule) {
    engine_.schedule(0.0, [this] { deliver_pending(); });
  }
}

void StateStore::deliver_pending() {
  // Swap the batch out first: mutations made by the callbacks below go
  // to a fresh tick at the same timestamp, preserving FIFO order.
  std::vector<PendingDelivery> batch;
  {
    common::MutexLock lock(delivery_mu_);
    batch.swap(pending_deliveries_);
    delivery_scheduled_ = false;
  }
  for (const PendingDelivery& delivery : batch) {
    for (const std::uint64_t id : delivery.targets) {
      if (transport_ != nullptr) {
        // Message boundary (DESIGN.md §14): the fan-out crosses the
        // transport as one WatchNotify per target; the store.notify
        // endpoint re-resolves the watcher and runs the callback, so
        // delivery semantics are identical in both modes.
        net::send(*transport_, "store.notify",
                  net::WatchNotify{
                      id, static_cast<std::uint8_t>(delivery.event.type),
                      delivery.event.bucket, delivery.event.key});
      } else {
        deliver_one(id, delivery.event);
      }
    }
  }
}

void StateStore::deliver_one(std::uint64_t watcher_id,
                             const WatchEvent& event) {
  Shard& shard = *shards_[(watcher_id & 0xff) % shards_.size()];
  WatchCallback fn;
  {
    common::MutexLock lock(shard.mu);
    auto it = shard.watchers.find(watcher_id);
    if (it == shard.watchers.end()) return;
    fn = it->second.fn;
  }
  fn(event);
}

void StateStore::set_transport(net::Transport* transport) {
  if (transport_ != nullptr) {
    transport_->unregister_endpoint("store.notify");
    transport_->unregister_endpoint("store.ingest");
  }
  transport_ = transport;
  if (transport_ == nullptr) return;
  transport_->register_endpoint(
      "store.notify", [this](const net::Envelope& env) {
        const auto msg = net::open_envelope<net::WatchNotify>(env);
        deliver_one(msg.watcher_id,
                    WatchEvent{static_cast<WatchEventType>(msg.event_type),
                               msg.bucket, msg.key});
        return net::make_envelope(net::Ack{});
      });
  transport_->register_endpoint(
      "store.ingest", [this](const net::Envelope& env) {
        const auto msg = net::open_envelope<net::StoreIngest>(env);
        net::Unpacker u(msg.document);
        put(msg.collection, msg.unit_id, net::unpack_json(u));
        if (!msg.queue.empty()) queue_push(msg.queue, msg.unit_id);
        return net::make_envelope(net::Ack{});
      });
}

}  // namespace hoh::pilot
