#include "pilot/state_store.h"

#include <utility>

#include "common/error.h"
#include "pilot/transitions.h"

namespace hoh::pilot {

void StateStore::put(const std::string& collection, const std::string& id,
                     common::Json document) {
  {
    common::MutexLock lock(mu_);
    ++ops_;
    collections_[collection][id] = std::move(document);
  }
  notify(WatchEventType::kPut, collection, id);
}

std::optional<common::Json> StateStore::get(const std::string& collection,
                                            const std::string& id) const {
  common::MutexLock lock(mu_);
  ++ops_;
  auto cit = collections_.find(collection);
  if (cit == collections_.end()) return std::nullopt;
  auto dit = cit->second.find(id);
  if (dit == cit->second.end()) return std::nullopt;
  return dit->second;
}

void StateStore::update(const std::string& collection, const std::string& id,
                        const common::JsonObject& fields) {
  {
    common::MutexLock lock(mu_);
    ++ops_;
    auto cit = collections_.find(collection);
    if (cit == collections_.end() || cit->second.count(id) == 0) {
      throw common::NotFoundError("StateStore: no document " + collection +
                                  "/" + id);
    }
    common::Json& doc = cit->second.at(id);
    // Lifecycle gate: the store is the single path every unit state write
    // takes (agent write-back, Unit-Manager cancellation), so an illegal
    // edge is stopped here no matter which component attempts it. Watchers
    // are notified only after the gate passed — they never observe an
    // illegal write.
    if (collection == "unit") {
      auto state_field = fields.find("state");
      if (state_field != fields.end() && doc.contains("state")) {
        validate_transition(
            unit_state_from_string(doc.at("state").as_string()),
            unit_state_from_string(state_field->second.as_string()), id);
      }
    }
    for (const auto& [k, v] : fields) doc[k] = v;
  }
  notify(WatchEventType::kUpdate, collection, id);
}

std::vector<std::pair<std::string, common::Json>> StateStore::find_all(
    const std::string& collection) const {
  common::MutexLock lock(mu_);
  ++ops_;
  std::vector<std::pair<std::string, common::Json>> out;
  auto cit = collections_.find(collection);
  if (cit == collections_.end()) return out;
  out.assign(cit->second.begin(), cit->second.end());
  return out;
}

void StateStore::queue_push(const std::string& queue, const std::string& id) {
  {
    common::MutexLock lock(mu_);
    ++ops_;
    queues_[queue].push_back(id);
  }
  notify(WatchEventType::kQueuePush, queue, id);
}

std::vector<std::string> StateStore::queue_pop_all(const std::string& queue) {
  common::MutexLock lock(mu_);
  ++ops_;
  std::vector<std::string> out;
  auto it = queues_.find(queue);
  if (it == queues_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  it->second.clear();
  return out;
}

std::size_t StateStore::queue_depth(const std::string& queue) const {
  common::MutexLock lock(mu_);
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.size();
}

std::uint64_t StateStore::op_count() const {
  common::MutexLock lock(mu_);
  return ops_;
}

WatchHandle StateStore::watch(const std::string& bucket,
                              const std::string& key_prefix,
                              WatchCallback callback) {
  common::MutexLock lock(mu_);
  const std::uint64_t id = next_watch_id_++;
  watchers_.emplace(id, Watcher{bucket, key_prefix, std::move(callback)});
  return WatchHandle(id);
}

bool StateStore::unwatch(WatchHandle handle) {
  if (!handle.valid()) return false;
  common::MutexLock lock(mu_);
  return watchers_.erase(handle.id_) > 0;
}

std::size_t StateStore::watcher_count() const {
  common::MutexLock lock(mu_);
  return watchers_.size();
}

void StateStore::notify(WatchEventType type, const std::string& bucket,
                        const std::string& key) {
  // Snapshot the ids of matching watchers; resolve them again at delivery
  // time so an unwatch between mutation and delivery (or during delivery
  // of the same mutation to an earlier watcher) suppresses the callback.
  std::vector<std::uint64_t> targets;
  {
    common::MutexLock lock(mu_);
    for (const auto& [id, w] : watchers_) {
      if (w.bucket == bucket && key.rfind(w.prefix, 0) == 0) {
        targets.push_back(id);
      }
    }
  }
  if (targets.empty()) return;
  WatchEvent event{type, bucket, key};
  engine_.schedule(0.0, [this, targets = std::move(targets),
                         event = std::move(event)] {
    for (const std::uint64_t id : targets) {
      WatchCallback fn;
      {
        common::MutexLock lock(mu_);
        auto it = watchers_.find(id);
        if (it == watchers_.end()) continue;
        fn = it->second.fn;
      }
      fn(event);
    }
  });
}

}  // namespace hoh::pilot
