#include "pilot/state_store.h"

#include "common/error.h"

namespace hoh::pilot {

void StateStore::put(const std::string& collection, const std::string& id,
                     common::Json document) {
  ++ops_;
  collections_[collection][id] = std::move(document);
}

std::optional<common::Json> StateStore::get(const std::string& collection,
                                            const std::string& id) const {
  ++ops_;
  auto cit = collections_.find(collection);
  if (cit == collections_.end()) return std::nullopt;
  auto dit = cit->second.find(id);
  if (dit == cit->second.end()) return std::nullopt;
  return dit->second;
}

void StateStore::update(const std::string& collection, const std::string& id,
                        const common::JsonObject& fields) {
  ++ops_;
  auto cit = collections_.find(collection);
  if (cit == collections_.end() || cit->second.count(id) == 0) {
    throw common::NotFoundError("StateStore: no document " + collection +
                                "/" + id);
  }
  common::Json& doc = cit->second.at(id);
  for (const auto& [k, v] : fields) doc[k] = v;
}

std::vector<std::pair<std::string, common::Json>> StateStore::find_all(
    const std::string& collection) const {
  ++ops_;
  std::vector<std::pair<std::string, common::Json>> out;
  auto cit = collections_.find(collection);
  if (cit == collections_.end()) return out;
  out.assign(cit->second.begin(), cit->second.end());
  return out;
}

void StateStore::queue_push(const std::string& queue, const std::string& id) {
  ++ops_;
  queues_[queue].push_back(id);
}

std::vector<std::string> StateStore::queue_pop_all(const std::string& queue) {
  ++ops_;
  std::vector<std::string> out;
  auto it = queues_.find(queue);
  if (it == queues_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  it->second.clear();
  return out;
}

std::size_t StateStore::queue_depth(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace hoh::pilot
