#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/control_plane.h"
#include "common/retry.h"
#include "pilot/descriptions.h"
#include "pilot/estimator.h"
#include "pilot/pilot_manager.h"
#include "pilot/session.h"
#include "pilot/states.h"

/// \file unit_manager.h
/// The Unit-Manager: accepts Compute-Unit descriptions, binds them to
/// pilots (U.1), and queues them in the shared state store for the
/// agents to pull (U.2). State queries read the unit documents the
/// agents write back.

namespace hoh::pilot {

class UnitManager;

/// Handle to one submitted Compute-Unit.
class ComputeUnit {
 public:
  const std::string& id() const { return id_; }
  const ComputeUnitDescription& description() const { return description_; }

  /// Current state, read from the shared store document.
  UnitState state() const;

  /// Pilot this unit was bound to.
  const std::string& pilot_id() const { return pilot_id_; }

 private:
  friend class UnitManager;
  ComputeUnit(UnitManager* manager, std::string id, std::string pilot_id,
              ComputeUnitDescription description)
      : manager_(manager),
        id_(std::move(id)),
        pilot_id_(std::move(pilot_id)),
        description_(std::move(description)) {}

  UnitManager* manager_;
  std::string id_;
  std::string pilot_id_;
  ComputeUnitDescription description_;
};

/// Unit scheduling policy across pilots.
enum class UnitSchedulingPolicy {
  kRoundRobin,   // cycle through pilots
  kLeastLoaded,  // pilot with fewest units bound so far
  kPredictive,   // pilot with least predicted outstanding work per core
                 // (paper SS-V "predictive scheduling" extension)
};

class UnitManager {
 public:
  /// \p estimator is used by kPredictive (a MovingAverageEstimator is
  /// created when none is supplied).
  explicit UnitManager(Session& session,
                       UnitSchedulingPolicy policy =
                           UnitSchedulingPolicy::kRoundRobin,
                       std::shared_ptr<RuntimeEstimator> estimator = nullptr)
      : session_(session),
        policy_(policy),
        estimator_(estimator != nullptr
                       ? std::move(estimator)
                       : std::make_shared<MovingAverageEstimator>()) {
    register_submit_endpoint();
  }

  UnitManager(const UnitManager&) = delete;
  UnitManager& operator=(const UnitManager&) = delete;

  /// Cancels the dependency sweep / unwatches the dependency watch. The
  /// engine and store outlive the manager, so leaving either armed would
  /// dangle `this`.
  ~UnitManager();

  /// Control-plane mode for dependency resolution (set before the first
  /// submit). kPoll: held units are re-checked by a 1 s periodic sweep.
  /// kWatch: a store watch on the "unit" collection re-checks exactly
  /// when some unit's state changed — dependency release happens at
  /// event time and costs nothing while nothing changes.
  void set_control_plane(common::ControlPlane plane) {
    control_plane_ = plane;
  }

  /// Registers a pilot as a unit target. With recovery enabled, a pilot
  /// added later (e.g. a resubmitted replacement) immediately absorbs
  /// units waiting for a live target.
  void add_pilot(std::shared_ptr<Pilot> pilot);

  /// Enables requeue-on-pilot-failure: units that die with their pilot
  /// (state kFailed) are re-dispatched onto a surviving pilot after the
  /// policy backoff, up to policy.max_attempts total executions each.
  /// Units whose budget is exhausted stay kFailed. Call before or after
  /// add_pilot — existing pilots are wired up too.
  void enable_recovery(common::RetryPolicy policy, std::uint64_t seed = 42);

  /// Units re-dispatched after pilot failure (recovery counter).
  std::size_t units_requeued() const { return units_requeued_; }
  /// Units that exhausted their retry budget and stayed kFailed.
  std::size_t units_abandoned() const { return units_abandoned_; }

  /// Submits units (U.1/U.2). Returns handles in input order. Units with
  /// depends_on are held client-side until every dependency is Done
  /// (released by a periodic dependency check), and canceled if a
  /// dependency fails or is canceled. Dependencies may reference units
  /// submitted earlier or in the same batch.
  std::vector<std::shared_ptr<ComputeUnit>> submit(
      const std::vector<ComputeUnitDescription>& descriptions);

  /// Single-unit convenience.
  std::shared_ptr<ComputeUnit> submit(
      const ComputeUnitDescription& description);

  /// True when every submitted unit reached a *settled* final state.
  /// With recovery enabled, a kFailed unit whose requeue is still
  /// scheduled or waiting for a live pilot counts as in flight, so
  /// barrier loops don't conclude a phase mid-recovery. Also folds
  /// finished units into the estimator (see reconcile()).
  bool all_done();

  std::size_t submitted() const { return units_.size(); }
  std::size_t done_count() const;

  /// Folds finished units back into the estimator and the per-pilot
  /// backlog accounting. Called implicitly by all_done()/done_count().
  void reconcile();

  RuntimeEstimator& estimator() { return *estimator_; }
  std::shared_ptr<RuntimeEstimator> estimator_ptr() { return estimator_; }

  Session& session() { return session_; }

  /// Message boundary (DESIGN.md §14): the endpoint clients (the tenant
  /// gateway) submit SubmitRequest messages to. Unique per manager, so
  /// several managers can share one session transport.
  const std::string& submit_endpoint() const { return submit_endpoint_; }

  /// Handle of a submitted unit; nullptr when unknown.
  std::shared_ptr<ComputeUnit> find_unit(const std::string& unit_id) const;

  /// Registered pilot by id; nullptr when unknown.
  std::shared_ptr<Pilot> pilot_by_id(const std::string& pilot_id) const;

  /// Gateway preemption path: re-dispatches a unit parked at kFailed
  /// (e.g. by Agent::preempt_unit) onto a live pilot, crossing the one
  /// legal out-edge of a final state — kFailed -> kPendingAgent, the
  /// same edge the fault-recovery requeue uses — and rebinding the
  /// pilot accounting. Unlike recovery it consumes no retry budget and
  /// applies no backoff. Returns false when the unit is unknown, not
  /// kFailed, or no live pilot exists.
  bool redispatch_failed(const std::string& unit_id);

 private:
  friend class ComputeUnit;

  std::string pick_pilot(const ComputeUnitDescription& desc);
  /// Registers submit_endpoint_ ("um<N>.submit") on the session
  /// transport; its handler unpacks the description and runs submit().
  void register_submit_endpoint();
  void dispatch_to_agent(const std::string& unit_id,
                         const std::string& pilot_id,
                         const ComputeUnitDescription& desc);
  void check_dependencies();

  // --- fault recovery (requeue units off a dead pilot) ---
  void watch_pilot_for_recovery(const std::shared_ptr<Pilot>& pilot);
  void handle_pilot_failure(const std::string& pilot_id);
  void try_requeue(const std::string& unit_id);
  void drain_pending_requeues();
  /// Any registered pilot not in a final state; nullptr when none.
  Pilot* find_live_pilot();

  Session& session_;
  UnitSchedulingPolicy policy_;
  std::string submit_endpoint_;
  std::shared_ptr<RuntimeEstimator> estimator_;
  std::map<std::string, double> backlog_seconds_;    // pilot -> predicted
  std::map<std::string, double> unit_predictions_;   // unit -> predicted
  std::map<std::string, bool> unit_reconciled_;      // unit -> folded back

  /// Incremental reconcile/all_done bookkeeping (DESIGN.md §13). The
  /// trace is append-only, so reconcile() scans it once past
  /// trace_scan_pos_ into per-unit Executing/Done time maps instead of
  /// re-walking the whole trace per finished unit; open_units_ holds
  /// only units not yet folded back, and unsettled_ holds units whose
  /// terminal outcome is not yet locked in (kDone/kCanceled are sinks
  /// and leave it; kFailed stays, since requeue/redispatch may revive
  /// it) — a barrier poll over 1M finished units costs O(1), not
  /// O(units) store reads.
  std::size_t trace_scan_pos_ = 0;
  std::map<std::string, double> exec_time_;          // unit -> Executing at
  std::map<std::string, double> done_time_;          // unit -> Done at
  std::vector<std::shared_ptr<ComputeUnit>> open_units_;
  std::vector<std::shared_ptr<ComputeUnit>> unsettled_;
  std::size_t settled_done_ = 0;  // kDone units dropped from unsettled_

  /// all_done() memo: valid while the store mutation count is unchanged
  /// and no recovery bookkeeping (which can move without a store write)
  /// was touched — see recovery_dirty_ sites.
  bool all_done_cached_ = false;
  bool all_done_cache_ = false;
  bool recovery_dirty_ = false;
  std::uint64_t all_done_muts_ = 0;

  /// Units held back by dependencies: (unit id, pilot id, description).
  struct HeldUnit {
    std::string unit_id;
    std::string pilot_id;
    ComputeUnitDescription desc;
  };
  std::vector<HeldUnit> held_;
  std::map<std::string, std::shared_ptr<ComputeUnit>> by_id_;
  sim::EventHandle dependency_check_;
  common::ControlPlane control_plane_ = common::ControlPlane::kPoll;
  WatchHandle dep_watch_;  // watch-mode replacement for dependency_check_
  std::vector<std::shared_ptr<Pilot>> pilots_;
  std::map<std::string, std::size_t> bound_counts_;  // pilot -> units
  std::vector<std::shared_ptr<ComputeUnit>> units_;
  std::size_t rr_next_ = 0;

  // Fault recovery: opt-in unit requeue off failed pilots.
  bool recovery_enabled_ = false;
  common::RetryPolicy recovery_policy_;
  common::Rng recovery_rng_{42};
  std::map<std::string, int> requeue_counts_;   // unit -> requeues done
  std::vector<std::string> pending_requeue_;    // waiting for a live pilot
  std::set<std::string> limbo_;  // kFailed but a requeue is in flight
  std::size_t units_requeued_ = 0;
  std::size_t units_abandoned_ = 0;
};

}  // namespace hoh::pilot
