#include "pilot/config_templates.h"

#include <algorithm>

namespace hoh::pilot {
namespace {

bool has_flash(const cluster::MachineProfile& machine) {
  return machine.node.local_ssd_bw > 0.0;
}

/// Scales a baseline latency by how much slower the machine's local tier
/// is than a 400 MB/s flash reference, clamped to [0.3, 1.5] x baseline.
common::Seconds scale_by_local_tier(const cluster::MachineProfile& machine,
                                    common::Seconds baseline) {
  const double best_bw =
      std::max(machine.node.local_disk_bw, machine.node.local_ssd_bw);
  if (best_bw <= 0.0) return baseline * 1.5;
  const double factor = std::clamp(400.0e6 / best_bw, 0.3, 1.5);
  return baseline * factor;
}

}  // namespace

AgentConfig tuned_agent_config(const cluster::MachineProfile& machine) {
  AgentConfig cfg;
  // Container localization and the RP-environment wrapper are dominated
  // by local-tier I/O.
  cfg.wrapper_setup_time = scale_by_local_tier(machine, 18.0);
  cfg.wrapper_cached_time = scale_by_local_tier(machine, 8.0);
  cfg.yarn.yarn.container_launch_time = scale_by_local_tier(machine, 5.0);
  cfg.yarn.yarn.am_launch_time = scale_by_local_tier(machine, 12.0);

  // NM capacity from the node spec (Hadoop 87.5% rule).
  cfg.yarn.yarn.nm_memory_mb = machine.node.memory_mb * 7 / 8;
  cfg.yarn.yarn.nm_vcores = machine.node.cores;
  cfg.yarn.yarn.maximum_allocation = {
      std::min<common::MemoryMb>(machine.node.memory_mb / 2, 16 * 1024),
      machine.node.cores};

  // Spark workers sized to the node.
  cfg.spark.worker_cores = machine.node.cores;
  cfg.spark.worker_memory_mb = machine.node.memory_mb - 2048;
  cfg.spark.executor_launch_time = scale_by_local_tier(machine, 4.0);
  return cfg;
}

common::Config yarn_site_template(const cluster::MachineProfile& machine) {
  common::Config c;
  c.set_int("yarn.nodemanager.resource.memory-mb",
            machine.node.memory_mb * 7 / 8);
  c.set_int("yarn.nodemanager.resource.cpu-vcores", machine.node.cores);
  c.set_int("yarn.scheduler.minimum-allocation-mb", 1024);
  c.set_int("yarn.scheduler.maximum-allocation-mb",
            std::min<common::MemoryMb>(machine.node.memory_mb / 2,
                                       16 * 1024));
  c.set("yarn.resourcemanager.scheduler.class",
        "org.apache.hadoop.yarn.server.resourcemanager.scheduler."
        "capacity.CapacityScheduler");
  // The SS-V optimization: put the shuffle spill directories on the
  // fastest node-local tier.
  c.set("yarn.nodemanager.local-dirs",
        has_flash(machine) ? "/flash/yarn/local" : "/tmp/yarn/local");
  c.set_bool("yarn.nodemanager.vmem-check-enabled", false);
  return c;
}

common::Config hdfs_site_template(const cluster::MachineProfile& machine,
                                  int nodes) {
  common::Config c;
  c.set_int("dfs.blocksize", 128 * common::kMiB);
  c.set_int("dfs.replication", std::min(3, std::max(1, nodes)));
  if (has_flash(machine)) {
    c.set("dfs.datanode.data.dir", "[SSD]/flash/hdfs/data");
    c.set("dfs.storage.policy", "ALL_SSD");
  } else {
    c.set("dfs.datanode.data.dir", "[DISK]/tmp/hdfs/data");
    c.set("dfs.storage.policy", "HOT");
  }
  return c;
}

common::Config spark_env_template(const cluster::MachineProfile& machine) {
  common::Config c;
  c.set_int("SPARK_WORKER_CORES", machine.node.cores);
  c.set_int("SPARK_WORKER_MEMORY_MB", machine.node.memory_mb - 2048);
  c.set("SPARK_LOCAL_DIRS",
        has_flash(machine) ? "/flash/spark" : "/tmp/spark");
  c.set_int("SPARK_WORKER_INSTANCES", 1);
  return c;
}

}  // namespace hoh::pilot
