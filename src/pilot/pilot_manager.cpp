#include "pilot/pilot_manager.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::pilot {

void Pilot::set_state(PilotState state) {
  if (state_ == state || is_final(state_)) return;
  state_ = state;
  manager_->session().trace().record(
      manager_->session().engine().now(), "pilot", "state",
      {{"pilot", id_}, {"state", to_string(state)}});
  for (const auto& cb : callbacks_) cb(state);
}

std::optional<common::Json> Pilot::heartbeat() const {
  return manager_->session().store().get("heartbeat", id_);
}

void Pilot::cancel() {
  if (is_final(state_)) return;
  if (agent_) agent_->stop();
  if (job_ && !saga::is_final(job_->state())) job_->cancel();
  set_state(PilotState::kCanceled);
}

PilotManager::~PilotManager() {
  // Stop agents while the session (engine, store, trace) is still alive;
  // anything the simulation still references later then finds the agent
  // already stopped.
  for (const auto& pilot : pilots_) {
    if (pilot->agent_ != nullptr) pilot->agent_->stop();
  }
}

std::shared_ptr<Pilot> PilotManager::submit_pilot(
    const PilotDescription& description, AgentConfig agent_config) {
  if (description.resource.empty()) {
    throw common::ConfigError("PilotDescription.resource must be set");
  }
  const saga::Url url(description.resource);
  auto& resource = session_.saga().resource(url.host());

  // Mode II needs the dedicated cluster to exist on that host.
  yarn::YarnCluster* external = nullptr;
  if (description.backend == AgentBackend::kYarnModeII) {
    external = session_.dedicated_hadoop(url.host());
    if (external == nullptr) {
      throw common::ConfigError(
          "Mode II requested but no dedicated Hadoop environment exists on " +
          url.host());
    }
  }

  const std::string pilot_id = session_.next_pilot_id();
  auto pilot = std::shared_ptr<Pilot>(
      new Pilot(this, pilot_id, description));

  if (description.agent_poll_interval > 0.0) {
    agent_config.poll_interval = description.agent_poll_interval;
  }

  saga::JobService& service = job_service(url);
  saga::JobDescription jd;
  jd.name = pilot_id;
  jd.executable = "radical-pilot-agent";
  jd.total_nodes = description.nodes;
  jd.wall_time_limit = description.runtime;
  jd.queue = description.queue;
  jd.project = description.project;

  // Callbacks capture the pilot weakly: the batch-scheduler keeps its
  // callbacks alive for the whole session, and a strong capture would
  // extend agent lifetime past the state store's (teardown ordering).
  std::weak_ptr<Pilot> weak = pilot;
  const cluster::MachineProfile& profile = resource.profile;
  pilot->job_ = service.submit(
      jd,
      [this, weak, &profile, agent_config,
       external](const cluster::Allocation& allocation) {
        auto pilot = weak.lock();
        if (pilot == nullptr) return;
        // P.2: placeholder job started; bring the agent up.
        pilot->set_state(PilotState::kLaunching);
        pilot->agent_ = std::make_unique<Agent>(
            session_.saga(), session_.store(), session_.transfer(),
            pilot->id_, profile, allocation, pilot->description_.backend,
            agent_config, external);
        pilot->agent_->start([weak] {
          if (auto p = weak.lock()) p->set_state(PilotState::kActive);
        });
      });

  pilot->job_->on_state_change([weak](saga::JobState state) {
    auto pilot = weak.lock();
    if (pilot == nullptr) return;
    switch (state) {
      case saga::JobState::kDone:
        if (pilot->agent_) pilot->agent_->stop();
        pilot->set_state(PilotState::kDone);
        break;
      case saga::JobState::kFailed:
        if (pilot->agent_) pilot->agent_->stop();
        pilot->set_state(PilotState::kFailed);
        break;
      case saga::JobState::kCanceled:
        if (pilot->agent_) pilot->agent_->stop();
        pilot->set_state(PilotState::kCanceled);
        break;
      default:
        break;
    }
  });

  pilot->set_state(PilotState::kPendingLaunch);
  pilots_.push_back(pilot);
  return pilot;
}

saga::JobService& PilotManager::job_service(const saga::Url& url) {
  auto it = services_.find(url.host());
  if (it == services_.end()) {
    it = services_
             .emplace(url.host(), std::make_unique<saga::JobService>(
                                      session_.saga(), url))
             .first;
  }
  return *it->second;
}

}  // namespace hoh::pilot
