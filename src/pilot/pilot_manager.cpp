#include "pilot/pilot_manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"
#include "net/message.h"
#include "net/transport.h"
#include "pilot/transitions.h"

namespace hoh::pilot {

void Pilot::set_state(PilotState state) {
  // Re-announcing the current state is a no-op and a transition out of a
  // final state is silently dropped (a late batch-job callback after
  // cancel()); everything else must be a legal Fig. 3 edge.
  if (state_ == state || is_final(state_)) return;
  validate_transition(state_, state, id_);
  state_ = state;
  manager_->session().trace().record(
      manager_->session().engine().now(), "pilot", "state",
      {{"pilot", id_}, {"state", to_string(state)}});
  for (const auto& cb : callbacks_) cb(state);
}

std::optional<common::Json> Pilot::heartbeat() const {
  return manager_->session().store().get("heartbeat", id_);
}

int Pilot::live_nodes() const {
  if (agent_ == nullptr) return 0;
  return static_cast<int>(agent_->allocation().nodes().size());
}

void Pilot::release_grow_segments() {
  // Grow segments die with the pilot: their batch jobs have no payload
  // of their own, so cancel whatever is still pending or running.
  for (auto& segment : grow_segments_) {
    if (segment.released) continue;
    segment.released = true;
    if (segment.job && !saga::is_final(segment.job->state())) {
      segment.job->cancel();
    }
  }
}

void Pilot::stop_agent(bool fail_units) {
  if (agent_ == nullptr) return;
  net::Transport& transport = manager_->session().transport();
  const std::string endpoint = "agent." + id_ + ".ctrl";
  if (transport.has_endpoint(endpoint)) {
    net::call<net::Ack>(
        transport, endpoint,
        net::AgentCommand{id_, fail_units ? net::AgentCommand::kStopFailUnits
                                          : net::AgentCommand::kStop});
  } else {
    agent_->stop(fail_units);
  }
}

void Pilot::cancel() {
  if (is_final(state_)) return;
  stop_agent();
  release_grow_segments();
  if (job_ && !saga::is_final(job_->state())) job_->cancel();
  set_state(PilotState::kCanceled);
}

PilotManager::~PilotManager() {
  *alive_ = false;  // defuse any pending resubmission lambdas
  // Stop agents while the session (engine, store, trace) is still alive;
  // anything the simulation still references later then finds the agent
  // already stopped.
  for (const auto& pilot : pilots_) {
    pilot->stop_agent();
    session_.transport().unregister_endpoint("pilot." + pilot->id_ +
                                             ".lifecycle");
  }
  for (auto& [id, lease] : heartbeat_leases_) {
    if (lease.watch.valid()) session_.store().unwatch(lease.watch);
  }
}

void PilotManager::observe_heartbeat_lease(const std::string& pilot_id,
                                           common::Seconds heartbeat_interval) {
  auto& lease = heartbeat_leases_[pilot_id];
  lease.interval = heartbeat_interval;
  lease.timer = std::make_unique<sim::DeadlineTimer>(
      session_.engine(), [this, pilot_id] {
        ++heartbeat_lease_expirations_;
        session_.trace().record(session_.engine().now(), "pilot",
                                "heartbeat_lease_expired",
                                {{"pilot", pilot_id}});
      });
  lease.watch = session_.store().watch(
      "heartbeat", pilot_id, [this, pilot_id](const WatchEvent&) {
        auto it = heartbeat_leases_.find(pilot_id);
        if (it == heartbeat_leases_.end()) return;
        const auto doc = session_.store().get("heartbeat", pilot_id);
        if (!doc.has_value()) return;
        if (!doc->at("alive").as_bool()) {
          // Tombstone: a deliberate stop retires the lease, it does not
          // expire it.
          it->second.timer->cancel();
          session_.store().unwatch(it->second.watch);
          it->second.watch = WatchHandle{};
          return;
        }
        it->second.timer->arm(kHeartbeatLeaseGrace * it->second.interval);
      });
}

void PilotManager::enable_recovery(common::RetryPolicy policy,
                                   RespawnHandler on_respawn,
                                   std::uint64_t seed) {
  policy.validate();
  recovery_enabled_ = true;
  recovery_policy_ = policy;
  recovery_rng_ = common::Rng(seed);
  on_respawn_ = std::move(on_respawn);
}

void PilotManager::maybe_resubmit(const std::shared_ptr<Pilot>& failed) {
  if (!recovery_enabled_) return;
  const auto it = chain_attempts_.find(failed->id_);
  const int attempt = it != chain_attempts_.end() ? it->second : 1;
  if (!recovery_policy_.allows(attempt + 1)) {
    session_.trace().record(session_.engine().now(), "recovery",
                            "pilot_abandoned",
                            {{"pilot", failed->id_},
                             {"attempts", std::to_string(attempt)}});
    return;
  }
  const common::Seconds backoff =
      recovery_policy_.backoff_for(attempt, recovery_rng_);
  session_.trace().record(session_.engine().now(), "recovery",
                          "pilot_resubmit_scheduled",
                          {{"pilot", failed->id_},
                           {"attempt", std::to_string(attempt + 1)},
                           {"backoff", std::to_string(backoff)}});
  std::weak_ptr<bool> alive = alive_;
  session_.engine().schedule(backoff, [this, alive, failed, attempt] {
    const auto guard = alive.lock();
    if (guard == nullptr || !*guard) return;
    auto replacement =
        submit_pilot(failed->description_, failed->agent_config_);
    chain_attempts_[replacement->id_] = attempt + 1;
    ++pilots_resubmitted_;
    session_.trace().record(session_.engine().now(), "recovery",
                            "pilot_resubmitted",
                            {{"failed", failed->id_},
                             {"replacement", replacement->id_},
                             {"attempt", std::to_string(attempt + 1)}});
    if (on_respawn_) on_respawn_(replacement, failed);
  });
}

std::shared_ptr<Pilot> PilotManager::submit_pilot(
    const PilotDescription& description, AgentConfig agent_config) {
  if (description.resource.empty()) {
    throw common::ConfigError("PilotDescription.resource must be set");
  }
  const saga::Url url(description.resource);
  auto& resource = session_.saga().resource(url.host());

  // Mode II needs the dedicated cluster to exist on that host.
  yarn::YarnCluster* external = nullptr;
  if (description.backend == AgentBackend::kYarnModeII) {
    external = session_.dedicated_hadoop(url.host());
    if (external == nullptr) {
      throw common::ConfigError(
          "Mode II requested but no dedicated Hadoop environment exists on " +
          url.host());
    }
  }

  const std::string pilot_id = session_.next_pilot_id();
  auto pilot = std::shared_ptr<Pilot>(
      new Pilot(this, pilot_id, description));

  if (description.agent_poll_interval > 0.0) {
    agent_config.poll_interval = description.agent_poll_interval;
  }
  // Message boundary (DESIGN.md §14): the agent joins the session
  // transport — control commands in, lifecycle events out — and any
  // Mode-I cluster it bootstraps wires its RM onto the same transport.
  agent_config.transport = &session_.transport();
  agent_config.event_endpoint = "pilot." + pilot_id + ".lifecycle";
  agent_config.yarn.yarn.transport = &session_.transport();
  pilot->agent_config_ = agent_config;

  if (agent_config.control_plane == common::ControlPlane::kWatch) {
    observe_heartbeat_lease(pilot_id, agent_config.heartbeat_interval);
  }

  saga::JobService& service = job_service(url);
  saga::JobDescription jd;
  jd.name = pilot_id;
  jd.executable = "radical-pilot-agent";
  jd.total_nodes = description.nodes;
  jd.wall_time_limit = description.runtime;
  jd.queue = description.queue;
  jd.project = description.project;

  // Callbacks capture the pilot weakly: the batch-scheduler keeps its
  // callbacks alive for the whole session, and a strong capture would
  // extend agent lifetime past the state store's (teardown ordering).
  std::weak_ptr<Pilot> weak = pilot;
  // Lifecycle endpoint: the agent's activation event lands here.
  session_.transport().register_endpoint(
      "pilot." + pilot_id + ".lifecycle", [weak](const net::Envelope& env) {
        const auto msg = net::open_envelope<net::AgentEvent>(env);
        if (msg.kind == net::AgentEvent::kActive) {
          if (auto p = weak.lock()) p->set_state(PilotState::kActive);
        }
        return net::make_envelope(net::Ack{});
      });
  const cluster::MachineProfile& profile = resource.profile;
  pilot->job_ = service.submit(
      jd,
      [this, weak, &profile, external](const cluster::Allocation& allocation) {
        auto pilot = weak.lock();
        if (pilot == nullptr) return;
        // P.2: placeholder job started; bring the agent up.
        pilot->set_state(PilotState::kLaunching);
        pilot->agent_ = std::make_unique<Agent>(
            session_.saga(), session_.store(), session_.transfer(),
            pilot->id_, profile, allocation, pilot->description_.backend,
            pilot->agent_config_, external);
        // P.2 over the boundary: the start command crosses as a message;
        // activation comes back as an AgentEvent on the lifecycle
        // endpoint registered above.
        net::call<net::Ack>(
            session_.transport(), "agent." + pilot->id_ + ".ctrl",
            net::AgentCommand{pilot->id_, net::AgentCommand::kStart});
      });

  pilot->job_->on_state_change([weak](saga::JobState state) {
    auto pilot = weak.lock();
    if (pilot == nullptr) return;
    switch (state) {
      case saga::JobState::kDone:
        pilot->stop_agent();
        pilot->release_grow_segments();
        pilot->set_state(PilotState::kDone);
        break;
      case saga::JobState::kFailed:
        // Involuntary death: units (queued and running) become kFailed so
        // the Unit-Manager may requeue them, unlike the kDone/kCanceled
        // paths where the backlog is deliberately canceled.
        pilot->stop_agent(/*fail_units=*/true);
        pilot->release_grow_segments();
        pilot->set_state(PilotState::kFailed);
        pilot->manager_->maybe_resubmit(pilot);
        break;
      case saga::JobState::kCanceled:
        pilot->stop_agent();
        pilot->release_grow_segments();
        pilot->set_state(PilotState::kCanceled);
        break;
      default:
        break;
    }
  });

  pilot->set_state(PilotState::kPendingLaunch);
  pilots_.push_back(pilot);
  return pilot;
}

void PilotManager::grow_pilot(const std::shared_ptr<Pilot>& pilot, int nodes,
                              std::function<void(int)> on_added) {
  if (nodes <= 0) {
    throw common::ConfigError("grow_pilot: nodes must be positive");
  }
  if (pilot == nullptr || is_final(pilot->state())) {
    throw common::StateError("grow_pilot: pilot is not running");
  }
  if (pilot->description_.backend == AgentBackend::kYarnModeII) {
    throw common::StateError(
        "grow_pilot: Mode II pilots cannot grow — the external cluster is "
        "not ours to resize");
  }
  const saga::Url url(pilot->description_.resource);
  saga::JobService& service = job_service(url);

  saga::JobDescription jd;
  jd.name = pilot->id_ + "-grow-" + std::to_string(pilot->next_grow_++);
  jd.executable = "radical-pilot-agent-grow";
  jd.total_nodes = nodes;
  jd.wall_time_limit = pilot->description_.runtime;
  jd.queue = pilot->description_.queue;
  jd.project = pilot->description_.project;

  pilot->pending_grow_nodes_ += nodes;
  session_.trace().record(session_.engine().now(), "pilot", "grow_requested",
                          {{"pilot", pilot->id_},
                           {"job", jd.name},
                           {"nodes", std::to_string(nodes)}});

  // The start callback needs the job handle (to hand nodes straight back
  // if the pilot died in the queue), but submit() only returns it after
  // registering the callback — route it through a shared holder.
  auto holder = std::make_shared<std::shared_ptr<saga::Job>>();
  auto landed = std::make_shared<bool>(false);
  std::weak_ptr<Pilot> weak = pilot;
  auto job = service.submit(
      jd, [this, weak, holder, landed, nodes,
           on_added](const cluster::Allocation& allocation) {
        *landed = true;
        auto pilot = weak.lock();
        if (pilot == nullptr || is_final(pilot->state()) ||
            pilot->agent_ == nullptr) {
          // Nobody left to take the nodes: return the allocation now.
          if (*holder != nullptr) (*holder)->complete();
          if (on_added) on_added(0);
          return;
        }
        pilot->pending_grow_nodes_ -= nodes;
        Pilot::GrowSegment segment;
        segment.job = *holder;
        segment.node_names = allocation.node_names();
        pilot->grow_segments_.push_back(std::move(segment));
        pilot->agent_->add_nodes(allocation.nodes());
        session_.trace().record(
            session_.engine().now(), "pilot", "grow_started",
            {{"pilot", pilot->id_},
             {"nodes", std::to_string(nodes)},
             {"total", std::to_string(pilot->live_nodes())}});
        if (on_added) on_added(nodes);
      });
  *holder = job;

  job->on_state_change([weak, landed, nodes](saga::JobState state) {
    // A grow job that dies in the queue must not keep inflating the
    // pending-grow ledger the elastic controller budgets against.
    if (!saga::is_final(state) || *landed) return;
    *landed = true;
    if (auto pilot = weak.lock()) {
      pilot->pending_grow_nodes_ =
          std::max(0, pilot->pending_grow_nodes_ - nodes);
    }
  });
}

void PilotManager::shrink_pilot(const std::shared_ptr<Pilot>& pilot,
                                int nodes, common::Seconds drain_timeout,
                                std::function<void(bool)> on_done) {
  if (nodes <= 0) {
    throw common::ConfigError("shrink_pilot: nodes must be positive");
  }
  if (pilot == nullptr || pilot->agent_ == nullptr) {
    throw common::StateError("shrink_pilot: pilot has no running agent");
  }
  // Whole segments, most recent first — a batch job cannot give back part
  // of its allocation, and the base placeholder job never shrinks.
  std::vector<std::size_t> chosen;
  int covered = 0;
  for (std::size_t i = pilot->grow_segments_.size(); i-- > 0;) {
    if (pilot->grow_segments_[i].released) continue;
    chosen.push_back(i);
    covered += static_cast<int>(pilot->grow_segments_[i].node_names.size());
    if (covered >= nodes) break;
  }
  if (chosen.empty()) {
    throw common::StateError(
        "shrink_pilot: no grow segments to release — the base allocation "
        "never shrinks");
  }
  std::vector<std::string> names;
  for (const auto i : chosen) {
    const auto& segment = pilot->grow_segments_[i];
    names.insert(names.end(), segment.node_names.begin(),
                 segment.node_names.end());
  }
  session_.trace().record(session_.engine().now(), "pilot", "shrink_requested",
                          {{"pilot", pilot->id_},
                           {"nodes", std::to_string(names.size())},
                           {"segments", std::to_string(chosen.size())}});
  std::weak_ptr<Pilot> weak = pilot;
  pilot->agent_->decommission_nodes(
      names, drain_timeout, [this, weak, chosen, on_done](bool clean) {
        auto pilot = weak.lock();
        if (pilot == nullptr) return;
        for (const auto i : chosen) {
          auto& segment = pilot->grow_segments_[i];
          segment.released = true;
          if (segment.job && !saga::is_final(segment.job->state())) {
            segment.job->complete();
          }
        }
        session_.trace().record(
            session_.engine().now(), "pilot", "shrink_done",
            {{"pilot", pilot->id_},
             {"clean", clean ? "true" : "false"},
             {"total", std::to_string(pilot->live_nodes())}});
        if (on_done) on_done(clean);
      });
}

saga::JobService& PilotManager::job_service(const saga::Url& url) {
  auto it = services_.find(url.host());
  if (it == services_.end()) {
    it = services_
             .emplace(url.host(), std::make_unique<saga::JobService>(
                                      session_.saga(), url))
             .first;
  }
  return *it->second;
}

}  // namespace hoh::pilot
