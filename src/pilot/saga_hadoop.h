#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "pilot/session.h"
#include "saga/job.h"
#include "spark/standalone.h"
#include "yarn/yarn_cluster.h"

/// \file saga_hadoop.h
/// SAGA-Hadoop (paper SS-III-A, Fig. 2): a light-weight standalone tool —
/// independent of the Pilot machinery — that spawns and controls Hadoop
/// or Spark clusters inside an allocation obtained from an HPC scheduler.
/// The four interactions of Fig. 2 map to: start_cluster (1),
/// submit_yarn_app / submit_spark_app (2), application status via the
/// framework handles (3), stop_cluster (4). Framework specifics live in
/// plugins, mirroring the paper's adaptor design.

namespace hoh::pilot {

enum class HadoopFramework { kYarn, kSpark };

std::string to_string(HadoopFramework framework);

enum class HadoopClusterState {
  kPending,   // batch job queued
  kStarting,  // allocation granted, daemons coming up
  kRunning,
  kStopped,
  kFailed,
};

std::string to_string(HadoopClusterState state);

class SagaHadoop {
 public:
  explicit SagaHadoop(Session& session) : session_(session) {}

  SagaHadoop(const SagaHadoop&) = delete;
  SagaHadoop& operator=(const SagaHadoop&) = delete;

  /// Step 1: start a cluster on \p resource_url (e.g. "slurm://stampede/")
  /// spanning \p nodes nodes. \p on_ready fires when the daemons are up.
  std::string start_cluster(const std::string& resource_url, int nodes,
                            HadoopFramework framework,
                            common::Seconds walltime = 3600.0,
                            std::function<void()> on_ready = nullptr);

  HadoopClusterState state(const std::string& cluster_id) const;

  /// Framework handles (step 2/3); nullptr until running or wrong kind.
  yarn::YarnCluster* yarn(const std::string& cluster_id);
  spark::SparkStandaloneCluster* spark(const std::string& cluster_id);

  /// Step 2 conveniences.
  std::string submit_yarn_app(const std::string& cluster_id,
                              yarn::AppDescriptor descriptor);
  std::string submit_spark_app(const std::string& cluster_id,
                               const spark::SparkAppDescriptor& descriptor,
                               std::function<void()> on_ready = nullptr);

  /// Step 4: stop daemons and release the allocation.
  void stop_cluster(const std::string& cluster_id);

 private:
  struct ClusterRec {
    HadoopFramework framework = HadoopFramework::kYarn;
    HadoopClusterState state = HadoopClusterState::kPending;
    std::shared_ptr<saga::Job> job;
    std::unique_ptr<yarn::YarnCluster> yarn;
    std::unique_ptr<spark::SparkStandaloneCluster> spark;
    const cluster::MachineProfile* machine = nullptr;
  };

  ClusterRec& find(const std::string& cluster_id);
  const ClusterRec& find(const std::string& cluster_id) const;

  Session& session_;
  std::map<std::string, ClusterRec> clusters_;
  std::map<std::string, std::unique_ptr<saga::JobService>> services_;
  std::uint64_t next_cluster_ = 0;
};

}  // namespace hoh::pilot
