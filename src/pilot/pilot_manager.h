#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/retry.h"
#include "pilot/agent/agent.h"
#include "pilot/descriptions.h"
#include "pilot/session.h"
#include "pilot/states.h"
#include "saga/job.h"

/// \file pilot_manager.h
/// The Pilot-Manager: "the central entity responsible for managing the
/// lifecycle of a set of Pilots" (paper SS-III-B). It submits the
/// placeholder job that runs the agent via the SAGA job API (steps
/// P.1-P.7) and tracks pilot states.

namespace hoh::pilot {

class PilotManager;

/// Handle to one pilot. The agent (once running) is reachable for
/// diagnostics; applications normally interact through the UnitManager.
class Pilot {
 public:
  /// One elastic grow increment: the incremental batch job plus the node
  /// names it contributed. Batch jobs release whole allocations only, so
  /// shrink returns whole segments, most recent first.
  struct GrowSegment {
    std::shared_ptr<saga::Job> job;
    std::vector<std::string> node_names;
    bool released = false;
  };

  const std::string& id() const { return id_; }
  const PilotDescription& description() const { return description_; }
  PilotState state() const { return state_; }

  /// Agent instance, nullptr until the placeholder job started.
  Agent* agent() { return agent_.get(); }

  /// Nodes currently in the agent allocation (base + landed grow
  /// segments); 0 before the placeholder job started.
  int live_nodes() const;

  /// Nodes requested by grow jobs still waiting in the batch queue.
  int pending_grow_nodes() const { return pending_grow_nodes_; }

  const std::vector<GrowSegment>& grow_segments() const {
    return grow_segments_;
  }

  /// Latest heartbeat document the agent wrote to the shared store
  /// (fields: alive, last_heartbeat, units_*), or nullopt before the
  /// first heartbeat. Clients use this to detect dead agents.
  std::optional<common::Json> heartbeat() const;

  void cancel();

  /// Registers a state-change callback.
  void on_state_change(std::function<void(PilotState)> callback) {
    callbacks_.push_back(std::move(callback));
  }

 private:
  friend class PilotManager;
  Pilot(PilotManager* manager, std::string id, PilotDescription description)
      : manager_(manager),
        id_(std::move(id)),
        description_(std::move(description)) {}

  void set_state(PilotState state);
  void release_grow_segments();

  /// Routes a stop to the agent over the session transport as an
  /// AgentCommand (direct call fallback for agents without a boundary).
  void stop_agent(bool fail_units = false);

  PilotManager* manager_;
  std::string id_;
  PilotDescription description_;
  PilotState state_ = PilotState::kNew;
  AgentConfig agent_config_;  // kept so a resubmission reuses it verbatim
  std::shared_ptr<saga::Job> job_;
  std::unique_ptr<Agent> agent_;
  std::vector<std::function<void(PilotState)>> callbacks_;
  std::vector<GrowSegment> grow_segments_;
  int pending_grow_nodes_ = 0;
  int next_grow_ = 1;
};

class PilotManager {
 public:
  explicit PilotManager(Session& session) : session_(session) {}

  /// Stops all agents (the session must still be alive — construct the
  /// PilotManager after the Session so destruction order is correct).
  ~PilotManager();

  PilotManager(const PilotManager&) = delete;
  PilotManager& operator=(const PilotManager&) = delete;

  /// P.1: submits the placeholder job for \p description. The returned
  /// pilot transitions New -> PendingLaunch -> Launching -> Active as the
  /// batch job runs and the agent bootstraps.
  std::shared_ptr<Pilot> submit_pilot(const PilotDescription& description,
                                      AgentConfig agent_config = {});

  /// Elastic grow: submits an incremental placeholder job for \p nodes
  /// additional nodes through the same job service, so the request pays
  /// real queue wait under the active batch policy. When the job starts,
  /// the agent bootstraps the new nodes (Mode-I NM/DataNode/worker
  /// registration) and \p on_added fires with the count actually added —
  /// 0 if the pilot was gone by then and the nodes went straight back.
  void grow_pilot(const std::shared_ptr<Pilot>& pilot, int nodes,
                  std::function<void(int added)> on_added = nullptr);

  /// Elastic shrink: picks unreleased grow segments most-recent-first
  /// until at least \p nodes are covered, gracefully drains them through
  /// the agent (see Agent::decommission_nodes) and completes each
  /// segment's batch job once its nodes left the allocation. The base
  /// allocation never shrinks. \p on_done fires with clean=false when the
  /// drain timed out and preempted (units requeued, never lost). Throws
  /// StateError when no segment is available or a drain is in progress.
  void shrink_pilot(const std::shared_ptr<Pilot>& pilot, int nodes,
                    common::Seconds drain_timeout,
                    std::function<void(bool clean)> on_done = nullptr);

  /// Fired when a failed pilot's replacement has been submitted, so the
  /// application can rebind (e.g. UnitManager::add_pilot the replacement).
  using RespawnHandler = std::function<void(
      const std::shared_ptr<Pilot>& replacement,
      const std::shared_ptr<Pilot>& failed)>;

  /// Enables pilot resubmission: when a pilot's placeholder job fails
  /// (node crash, walltime kill), a fresh pilot with the same description
  /// and agent config is submitted after the policy backoff. A failure
  /// *chain* (original + its replacements) is limited to
  /// policy.max_attempts submissions total; past that the chain is
  /// abandoned with a trace record.
  void enable_recovery(common::RetryPolicy policy,
                       RespawnHandler on_respawn = nullptr,
                       std::uint64_t seed = 42);

  /// Replacement pilots submitted by the recovery machinery.
  std::size_t pilots_resubmitted() const { return pilots_resubmitted_; }

  /// Watch-plane liveness observation: times a pilot's heartbeat lease
  /// expired (no heartbeat for kHeartbeatLeaseGrace intervals without a
  /// tombstone). Observational — actual death handling stays with the
  /// placeholder-job callbacks.
  std::size_t heartbeat_lease_expirations() const {
    return heartbeat_lease_expirations_;
  }

  Session& session() { return session_; }

  std::vector<std::shared_ptr<Pilot>> pilots() const { return pilots_; }

 private:
  friend class Pilot;

  /// One SAGA JobService per target host, created on demand.
  saga::JobService& job_service(const saga::Url& url);

  /// Called by the failed pilot's job callback; schedules the replacement
  /// submission (or abandons the chain) per the recovery policy.
  void maybe_resubmit(const std::shared_ptr<Pilot>& failed);

  /// Watch plane: subscribe to the pilot's heartbeat documents and keep a
  /// lease timer pushed out by each one. A tombstone (alive=false)
  /// retires the lease; silence past the grace window records a
  /// heartbeat_lease_expired trace event.
  void observe_heartbeat_lease(const std::string& pilot_id,
                               common::Seconds heartbeat_interval);

  /// Grace window for the heartbeat lease, in heartbeat intervals.
  static constexpr double kHeartbeatLeaseGrace = 3.0;

  struct HeartbeatLease {
    WatchHandle watch;
    std::unique_ptr<sim::DeadlineTimer> timer;
    common::Seconds interval = 10.0;
  };

  Session& session_;
  std::map<std::string, std::unique_ptr<saga::JobService>> services_;
  std::vector<std::shared_ptr<Pilot>> pilots_;

  // Fault recovery: opt-in resubmission of failed pilots.
  bool recovery_enabled_ = false;
  common::RetryPolicy recovery_policy_;
  common::Rng recovery_rng_{42};
  RespawnHandler on_respawn_;
  std::map<std::string, int> chain_attempts_;  // pilot -> submissions so far
  std::size_t pilots_resubmitted_ = 0;
  std::map<std::string, HeartbeatLease> heartbeat_leases_;  // pilot ->
  std::size_t heartbeat_lease_expirations_ = 0;
  /// Liveness guard for engine-scheduled resubmission lambdas: they may
  /// fire after this manager is destroyed (the engine outlives us).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace hoh::pilot
