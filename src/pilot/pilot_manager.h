#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pilot/agent/agent.h"
#include "pilot/descriptions.h"
#include "pilot/session.h"
#include "pilot/states.h"
#include "saga/job.h"

/// \file pilot_manager.h
/// The Pilot-Manager: "the central entity responsible for managing the
/// lifecycle of a set of Pilots" (paper SS-III-B). It submits the
/// placeholder job that runs the agent via the SAGA job API (steps
/// P.1-P.7) and tracks pilot states.

namespace hoh::pilot {

class PilotManager;

/// Handle to one pilot. The agent (once running) is reachable for
/// diagnostics; applications normally interact through the UnitManager.
class Pilot {
 public:
  const std::string& id() const { return id_; }
  const PilotDescription& description() const { return description_; }
  PilotState state() const { return state_; }

  /// Agent instance, nullptr until the placeholder job started.
  Agent* agent() { return agent_.get(); }

  /// Latest heartbeat document the agent wrote to the shared store
  /// (fields: alive, last_heartbeat, units_*), or nullopt before the
  /// first heartbeat. Clients use this to detect dead agents.
  std::optional<common::Json> heartbeat() const;

  void cancel();

  /// Registers a state-change callback.
  void on_state_change(std::function<void(PilotState)> callback) {
    callbacks_.push_back(std::move(callback));
  }

 private:
  friend class PilotManager;
  Pilot(PilotManager* manager, std::string id, PilotDescription description)
      : manager_(manager),
        id_(std::move(id)),
        description_(std::move(description)) {}

  void set_state(PilotState state);

  PilotManager* manager_;
  std::string id_;
  PilotDescription description_;
  PilotState state_ = PilotState::kNew;
  std::shared_ptr<saga::Job> job_;
  std::unique_ptr<Agent> agent_;
  std::vector<std::function<void(PilotState)>> callbacks_;
};

class PilotManager {
 public:
  explicit PilotManager(Session& session) : session_(session) {}

  /// Stops all agents (the session must still be alive — construct the
  /// PilotManager after the Session so destruction order is correct).
  ~PilotManager();

  PilotManager(const PilotManager&) = delete;
  PilotManager& operator=(const PilotManager&) = delete;

  /// P.1: submits the placeholder job for \p description. The returned
  /// pilot transitions New -> PendingLaunch -> Launching -> Active as the
  /// batch job runs and the agent bootstraps.
  std::shared_ptr<Pilot> submit_pilot(const PilotDescription& description,
                                      AgentConfig agent_config = {});

  Session& session() { return session_; }

  std::vector<std::shared_ptr<Pilot>> pilots() const { return pilots_; }

 private:
  friend class Pilot;

  /// One SAGA JobService per target host, created on demand.
  saga::JobService& job_service(const saga::Url& url);

  Session& session_;
  std::map<std::string, std::unique_ptr<saga::JobService>> services_;
  std::vector<std::shared_ptr<Pilot>> pilots_;
};

}  // namespace hoh::pilot
