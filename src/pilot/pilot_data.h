#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/storage.h"
#include "pilot/session.h"

/// \file pilot_data.h
/// The Pilot-Data abstraction (Luckow et al., JPDC 2014 — cited by the
/// paper as the data-side extension of the Pilot-Abstraction and "the
/// central component of a resource management middleware"). A PilotData
/// is a storage placeholder on one machine/backend; a DataUnit is a named
/// collection of files registered into one or more PilotData placeholders
/// and replicated between them. Compute-Unit descriptions can be bound to
/// DataUnits, which resolves input staging and locality hints.

namespace hoh::pilot {

class DataUnitManager;

/// Description of a storage placeholder.
struct PilotDataDescription {
  std::string machine;  // registered machine name
  cluster::StorageBackend backend = cluster::StorageBackend::kSharedFs;
  common::Bytes capacity = 100 * common::kGiB;
};

/// One logical file inside a DataUnit.
struct DataFile {
  std::string name;
  common::Bytes size = 0;
};

enum class DataUnitState { kNew, kPending, kReplicating, kReady, kFailed };

std::string to_string(DataUnitState state);

/// Handle to a storage placeholder.
class PilotData {
 public:
  const std::string& id() const { return id_; }
  const PilotDataDescription& description() const { return description_; }
  common::Bytes used() const { return used_; }
  common::Bytes free() const { return description_.capacity - used_; }

 private:
  friend class DataUnitManager;
  PilotData(std::string id, PilotDataDescription description)
      : id_(std::move(id)), description_(std::move(description)) {}

  std::string id_;
  PilotDataDescription description_;
  common::Bytes used_ = 0;
};

/// Handle to a data unit.
class DataUnit {
 public:
  const std::string& id() const { return id_; }
  DataUnitState state() const { return state_; }
  const std::vector<DataFile>& files() const { return files_; }
  common::Bytes total_bytes() const;

  /// Pilot-data placeholders currently holding a full replica.
  std::vector<std::string> locations() const { return locations_; }

 private:
  friend class DataUnitManager;
  DataUnit(std::string id, std::vector<DataFile> files)
      : id_(std::move(id)), files_(std::move(files)) {}

  std::string id_;
  std::vector<DataFile> files_;
  DataUnitState state_ = DataUnitState::kNew;
  std::vector<std::string> locations_;
};

/// Manages PilotData placeholders and DataUnits across them.
class DataUnitManager {
 public:
  explicit DataUnitManager(Session& session) : session_(session) {}

  DataUnitManager(const DataUnitManager&) = delete;
  DataUnitManager& operator=(const DataUnitManager&) = delete;

  /// Creates a storage placeholder; the machine must be registered.
  std::shared_ptr<PilotData> create_pilot_data(
      const PilotDataDescription& description);

  /// Registers a data unit into \p pilot_data. The import transfer is
  /// simulated (source assumed remote at WAN speed); the unit becomes
  /// kReady when it lands.
  std::shared_ptr<DataUnit> submit_data_unit(
      std::vector<DataFile> files, const std::shared_ptr<PilotData>& target);

  /// Replicates \p unit into \p target (inter-placeholder transfer);
  /// the unit is kReplicating until the copy completes, then kReady with
  /// both locations. Throws if the unit is not kReady or capacity lacks.
  void replicate(const std::shared_ptr<DataUnit>& unit,
                 const std::shared_ptr<PilotData>& target);

  /// The placeholder on \p machine holding the unit (locality query for
  /// compute/data co-placement); empty string when none.
  std::string location_on(const DataUnit& unit,
                          const std::string& machine) const;

  /// Estimated staging time of \p unit's bytes into node-local scratch on
  /// \p machine, given current placements (0 cost if a replica already
  /// resides on that machine's preferred backend).
  common::Seconds staging_cost(const DataUnit& unit,
                               const std::string& machine) const;

 private:
  std::shared_ptr<PilotData> find_pd(const std::string& id) const;

  Session& session_;
  std::map<std::string, std::shared_ptr<PilotData>> pilot_datas_;
  std::vector<std::shared_ptr<DataUnit>> units_;
  std::uint64_t next_pd_ = 0;
  std::uint64_t next_du_ = 0;
};

}  // namespace hoh::pilot
