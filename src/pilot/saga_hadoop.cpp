#include "pilot/saga_hadoop.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::pilot {

std::string to_string(HadoopFramework framework) {
  switch (framework) {
    case HadoopFramework::kYarn:
      return "yarn";
    case HadoopFramework::kSpark:
      return "spark";
  }
  return "?";
}

std::string to_string(HadoopClusterState state) {
  switch (state) {
    case HadoopClusterState::kPending:
      return "Pending";
    case HadoopClusterState::kStarting:
      return "Starting";
    case HadoopClusterState::kRunning:
      return "Running";
    case HadoopClusterState::kStopped:
      return "Stopped";
    case HadoopClusterState::kFailed:
      return "Failed";
  }
  return "?";
}

std::string SagaHadoop::start_cluster(const std::string& resource_url,
                                      int nodes, HadoopFramework framework,
                                      common::Seconds walltime,
                                      std::function<void()> on_ready) {
  const saga::Url url(resource_url);
  const std::string cluster_id = common::strformat(
      "hadoop-cluster.%03llu",
      static_cast<unsigned long long>(next_cluster_++));

  auto service_it = services_.find(url.host());
  if (service_it == services_.end()) {
    service_it = services_
                     .emplace(url.host(), std::make_unique<saga::JobService>(
                                              session_.saga(), url))
                     .first;
  }
  saga::JobService& service = *service_it->second;
  const cluster::MachineProfile& machine = service.profile();

  ClusterRec rec;
  rec.framework = framework;
  rec.machine = &machine;

  saga::JobDescription jd;
  jd.name = cluster_id;
  jd.executable = "saga-hadoop-bootstrap";
  jd.total_nodes = nodes;
  jd.wall_time_limit = walltime;

  rec.job = service.submit(jd, [this, cluster_id, framework, &machine,
                                ready = std::move(on_ready)](
                                   const cluster::Allocation& allocation) {
    ClusterRec& c = find(cluster_id);
    c.state = HadoopClusterState::kStarting;
    const int n = static_cast<int>(allocation.size());
    const common::Seconds boot =
        framework == HadoopFramework::kYarn
            ? machine.bootstrap.yarn_bootstrap_time(n)
            : machine.bootstrap.spark_bootstrap_time(n);
    session_.engine().schedule(boot, [this, cluster_id, framework, &machine,
                                      allocation, ready] {
      ClusterRec& c2 = find(cluster_id);
      if (c2.state != HadoopClusterState::kStarting) return;  // stopped
      if (framework == HadoopFramework::kYarn) {
        c2.yarn = std::make_unique<yarn::YarnCluster>(
            session_.engine(), machine, allocation);
      } else {
        c2.spark = std::make_unique<spark::SparkStandaloneCluster>(
            session_.engine(), machine, allocation);
      }
      c2.state = HadoopClusterState::kRunning;
      session_.trace().record(session_.engine().now(), "saga-hadoop",
                              "cluster_running",
                              {{"cluster", cluster_id},
                               {"framework", to_string(framework)}});
      if (ready) ready();
    });
  });

  rec.job->on_state_change([this, cluster_id](saga::JobState s) {
    if (s == saga::JobState::kFailed) {
      ClusterRec& c = find(cluster_id);
      if (c.state != HadoopClusterState::kStopped) {
        c.state = HadoopClusterState::kFailed;
      }
    }
  });

  clusters_.emplace(cluster_id, std::move(rec));
  return cluster_id;
}

SagaHadoop::ClusterRec& SagaHadoop::find(const std::string& cluster_id) {
  auto it = clusters_.find(cluster_id);
  if (it == clusters_.end()) {
    throw common::NotFoundError("SAGA-Hadoop: unknown cluster " + cluster_id);
  }
  return it->second;
}

const SagaHadoop::ClusterRec& SagaHadoop::find(
    const std::string& cluster_id) const {
  auto it = clusters_.find(cluster_id);
  if (it == clusters_.end()) {
    throw common::NotFoundError("SAGA-Hadoop: unknown cluster " + cluster_id);
  }
  return it->second;
}

HadoopClusterState SagaHadoop::state(const std::string& cluster_id) const {
  return find(cluster_id).state;
}

yarn::YarnCluster* SagaHadoop::yarn(const std::string& cluster_id) {
  return find(cluster_id).yarn.get();
}

spark::SparkStandaloneCluster* SagaHadoop::spark(
    const std::string& cluster_id) {
  return find(cluster_id).spark.get();
}

std::string SagaHadoop::submit_yarn_app(const std::string& cluster_id,
                                        yarn::AppDescriptor descriptor) {
  ClusterRec& c = find(cluster_id);
  if (c.state != HadoopClusterState::kRunning || c.yarn == nullptr) {
    throw common::StateError("cluster " + cluster_id +
                             " is not a running YARN cluster");
  }
  return c.yarn->resource_manager().submit_application(std::move(descriptor));
}

std::string SagaHadoop::submit_spark_app(
    const std::string& cluster_id, const spark::SparkAppDescriptor& descriptor,
    std::function<void()> on_ready) {
  ClusterRec& c = find(cluster_id);
  if (c.state != HadoopClusterState::kRunning || c.spark == nullptr) {
    throw common::StateError("cluster " + cluster_id +
                             " is not a running Spark cluster");
  }
  return c.spark->submit_application(descriptor, std::move(on_ready));
}

void SagaHadoop::stop_cluster(const std::string& cluster_id) {
  ClusterRec& c = find(cluster_id);
  if (c.state == HadoopClusterState::kStopped) return;
  if (c.yarn != nullptr) c.yarn->shutdown();
  if (c.spark != nullptr) c.spark->shutdown();
  if (c.job && !saga::is_final(c.job->state())) c.job->complete();
  c.state = HadoopClusterState::kStopped;
  session_.trace().record(session_.engine().now(), "saga-hadoop",
                          "cluster_stopped", {{"cluster", cluster_id}});
}

}  // namespace hoh::pilot
