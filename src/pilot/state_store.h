#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "sim/engine.h"

/// \file state_store.h
/// The shared document store the Unit-Manager and the agents communicate
/// through — the paper's MongoDB instance ("The Unit-Manager queues new
/// Compute-Units using a shared MongoDB instance (step U.2). The
/// RADICAL-Pilot-Agent periodically checks for new Compute-Units (U.3)").
/// Documents are JSON; named queues provide the U.2/U.3 handoff. Every
/// operation pays a configurable round-trip latency, which is how the
/// store's share of Compute-Unit startup latency enters the simulation.
///
/// Thread-safety: all operations lock an internal annotated Mutex, like
/// the real store's server-side concurrency control. The store is also
/// the single chokepoint every unit state write goes through, so
/// update() enforces the Fig. 3 lifecycle-transition table (see
/// pilot/transitions.h): merging an illegal "state" value into a "unit"
/// document throws StateError instead of corrupting the lifecycle.

namespace hoh::pilot {

/// In-memory document store with named FIFO queues.
class StateStore {
 public:
  explicit StateStore(sim::Engine& engine, common::Seconds op_latency = 0.05)
      : engine_(engine), op_latency_(op_latency) {}

  common::Seconds op_latency() const { return op_latency_; }

  /// Inserts or replaces a document.
  void put(const std::string& collection, const std::string& id,
           common::Json document) HOH_EXCLUDES(mu_);

  /// Reads a document; nullopt when absent.
  std::optional<common::Json> get(const std::string& collection,
                                  const std::string& id) const
      HOH_EXCLUDES(mu_);

  /// Merges \p fields into an existing document (top-level keys). A
  /// "state" merge into the "unit" collection is validated against the
  /// unit lifecycle-transition table and throws StateError on an illegal
  /// edge (e.g. Done -> Executing after a stale requeue).
  void update(const std::string& collection, const std::string& id,
              const common::JsonObject& fields) HOH_EXCLUDES(mu_);

  /// All documents of a collection (id order).
  std::vector<std::pair<std::string, common::Json>> find_all(
      const std::string& collection) const HOH_EXCLUDES(mu_);

  /// Appends an id to a named queue.
  void queue_push(const std::string& queue, const std::string& id)
      HOH_EXCLUDES(mu_);

  /// Drains the queue (agent poll). Returns ids in FIFO order.
  std::vector<std::string> queue_pop_all(const std::string& queue)
      HOH_EXCLUDES(mu_);

  std::size_t queue_depth(const std::string& queue) const HOH_EXCLUDES(mu_);

  /// Total simulated operations performed (for overhead accounting).
  std::uint64_t op_count() const HOH_EXCLUDES(mu_);

 private:
  sim::Engine& engine_;
  common::Seconds op_latency_;
  mutable common::Mutex mu_;
  mutable std::uint64_t ops_ HOH_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::map<std::string, common::Json>> collections_
      HOH_GUARDED_BY(mu_);
  std::map<std::string, std::deque<std::string>> queues_ HOH_GUARDED_BY(mu_);
};

}  // namespace hoh::pilot
