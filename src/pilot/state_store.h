#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "sim/engine.h"

/// \file state_store.h
/// The shared document store the Unit-Manager and the agents communicate
/// through — the paper's MongoDB instance ("The Unit-Manager queues new
/// Compute-Units using a shared MongoDB instance (step U.2). The
/// RADICAL-Pilot-Agent periodically checks for new Compute-Units (U.3)").
/// Documents are JSON; named queues provide the U.2/U.3 handoff. Every
/// operation pays a configurable round-trip latency, which is how the
/// store's share of Compute-Unit startup latency enters the simulation.
///
/// Thread-safety: all operations lock an internal annotated Mutex, like
/// the real store's server-side concurrency control. The store is also
/// the single chokepoint every unit state write goes through, so
/// update() enforces the Fig. 3 lifecycle-transition table (see
/// pilot/transitions.h): merging an illegal "state" value into a "unit"
/// document throws StateError instead of corrupting the lifecycle.
///
/// Watch/notify (etcd/ZooKeeper-style, DESIGN.md §10): watch() registers
/// a callback on a bucket (collection or queue name) and key prefix;
/// every put/update/queue_push under that bucket fires the matching
/// watchers. Delivery goes through the sim engine as one zero-delay
/// event per mutation, so (a) callbacks never run under the store mutex,
/// (b) delivery is deterministic — watchers fire in registration order,
/// mutations in FIFO order with everything else at that instant — and
/// (c) the transition gate in update() has already validated the write
/// by the time any watcher sees it.

namespace hoh::pilot {

/// What kind of store mutation fired a watch.
enum class WatchEventType { kPut, kUpdate, kQueuePush };

/// Delivered to watch callbacks. `bucket` is the collection name for
/// kPut/kUpdate and the queue name for kQueuePush; `key` is the document
/// id resp. the pushed queue element.
struct WatchEvent {
  WatchEventType type;
  std::string bucket;
  std::string key;
};

/// Handle for a registered watch; usable to unwatch.
class WatchHandle {
 public:
  WatchHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class StateStore;
  explicit WatchHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// In-memory document store with named FIFO queues.
class StateStore {
 public:
  using WatchCallback = std::function<void(const WatchEvent&)>;

  explicit StateStore(sim::Engine& engine, common::Seconds op_latency = 0.05)
      : engine_(engine), op_latency_(op_latency) {}

  common::Seconds op_latency() const { return op_latency_; }

  /// Inserts or replaces a document.
  void put(const std::string& collection, const std::string& id,
           common::Json document) HOH_EXCLUDES(mu_);

  /// Reads a document; nullopt when absent.
  std::optional<common::Json> get(const std::string& collection,
                                  const std::string& id) const
      HOH_EXCLUDES(mu_);

  /// Merges \p fields into an existing document (top-level keys). A
  /// "state" merge into the "unit" collection is validated against the
  /// unit lifecycle-transition table and throws StateError on an illegal
  /// edge (e.g. Done -> Executing after a stale requeue).
  void update(const std::string& collection, const std::string& id,
              const common::JsonObject& fields) HOH_EXCLUDES(mu_);

  /// All documents of a collection (id order).
  std::vector<std::pair<std::string, common::Json>> find_all(
      const std::string& collection) const HOH_EXCLUDES(mu_);

  /// Appends an id to a named queue.
  void queue_push(const std::string& queue, const std::string& id)
      HOH_EXCLUDES(mu_);

  /// Drains the queue (agent poll). Returns ids in FIFO order.
  std::vector<std::string> queue_pop_all(const std::string& queue)
      HOH_EXCLUDES(mu_);

  std::size_t queue_depth(const std::string& queue) const HOH_EXCLUDES(mu_);

  /// Total simulated operations performed (for overhead accounting).
  std::uint64_t op_count() const HOH_EXCLUDES(mu_);

  /// Registers a watch on \p bucket (a collection or queue name) for keys
  /// starting with \p key_prefix (empty = every key). The callback fires
  /// once per matching mutation, delivered through the sim engine at the
  /// mutation's timestamp (zero-delay event). Watchers registered earlier
  /// fire earlier for the same mutation.
  WatchHandle watch(const std::string& bucket, const std::string& key_prefix,
                    WatchCallback callback) HOH_EXCLUDES(mu_);

  /// Removes a watch. Pending deliveries for it are dropped (the watcher
  /// set is re-checked at delivery time). Returns false if the handle was
  /// invalid or already unwatched.
  bool unwatch(WatchHandle handle) HOH_EXCLUDES(mu_);

  /// Number of registered watchers (teardown hygiene checks).
  std::size_t watcher_count() const HOH_EXCLUDES(mu_);

 private:
  struct Watcher {
    std::string bucket;
    std::string prefix;
    WatchCallback fn;
  };

  /// Schedules delivery of one mutation to the watchers matching it.
  /// Called after the mutating critical section released mu_.
  void notify(WatchEventType type, const std::string& bucket,
              const std::string& key) HOH_EXCLUDES(mu_);

  sim::Engine& engine_;
  common::Seconds op_latency_;
  mutable common::Mutex mu_;
  mutable std::uint64_t ops_ HOH_GUARDED_BY(mu_) = 0;
  std::uint64_t next_watch_id_ HOH_GUARDED_BY(mu_) = 1;
  std::map<std::string, std::map<std::string, common::Json>> collections_
      HOH_GUARDED_BY(mu_);
  std::map<std::string, std::deque<std::string>> queues_ HOH_GUARDED_BY(mu_);
  /// Keyed by watch id; std::map iteration = registration-order delivery.
  std::map<std::uint64_t, Watcher> watchers_ HOH_GUARDED_BY(mu_);
};

}  // namespace hoh::pilot
