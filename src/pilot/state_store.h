#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "net/transport.h"
#include "sim/engine.h"

/// \file state_store.h
/// The shared document store the Unit-Manager and the agents communicate
/// through — the paper's MongoDB instance ("The Unit-Manager queues new
/// Compute-Units using a shared MongoDB instance (step U.2). The
/// RADICAL-Pilot-Agent periodically checks for new Compute-Units (U.3)").
/// Documents are JSON; named queues provide the U.2/U.3 handoff. Every
/// operation pays a configurable round-trip latency, which is how the
/// store's share of Compute-Unit startup latency enters the simulation.
///
/// Sharding (DESIGN.md §13): the store is internally split into
/// set_shard_count() shards, each with its own annotated Mutex. A bucket
/// (collection or queue name) hashes to exactly one shard, so all
/// operations, watchers and notifications for one bucket stay on one
/// lock — per-bucket FIFO and per-shard registration order are preserved
/// by construction, and two shard locks are never held at once. The
/// default is one shard, which is byte-for-byte the old single-lock
/// store; web-scale plans raise it via the "store_shards" plan key.
///
/// Thread-safety: all operations lock the owning shard's Mutex, like
/// the real store's server-side concurrency control. The store is also
/// the single chokepoint every unit state write goes through, so
/// update() enforces the Fig. 3 lifecycle-transition table (see
/// pilot/transitions.h): merging an illegal "state" value into a "unit"
/// document throws StateError instead of corrupting the lifecycle.
///
/// Watch/notify (etcd/ZooKeeper-style, DESIGN.md §10): watch() registers
/// a callback on a bucket and key prefix; every put/update/queue_push
/// under that bucket fires the matching watchers. Delivery goes through
/// the sim engine as a coalesced zero-delay tick: mutations enqueue onto
/// one global FIFO and a single drain event delivers every mutation
/// pending at that instant, so (a) callbacks never run under any store
/// mutex, (b) delivery is deterministic and independent of the shard
/// count — mutations in global FIFO order, watchers in registration
/// order — and (c) the transition gate in update() has already validated
/// the write by the time any watcher sees it. Mutations performed *by* a
/// watch callback go to a fresh tick at the same timestamp.

namespace hoh::pilot {

/// What kind of store mutation fired a watch.
enum class WatchEventType { kPut, kUpdate, kQueuePush };

/// Delivered to watch callbacks. `bucket` is the collection name for
/// kPut/kUpdate and the queue name for kQueuePush; `key` is the document
/// id resp. the pushed queue element.
struct WatchEvent {
  WatchEventType type;
  std::string bucket;
  std::string key;
};

/// Handle for a registered watch; usable to unwatch.
class WatchHandle {
 public:
  WatchHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class StateStore;
  explicit WatchHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// In-memory document store with named FIFO queues.
class StateStore {
 public:
  using WatchCallback = std::function<void(const WatchEvent&)>;

  /// Shard indices are packed into the low bits of watch ids.
  static constexpr std::size_t kMaxShards = 256;

  explicit StateStore(sim::Engine& engine, common::Seconds op_latency = 0.05);

  ~StateStore() { set_transport(nullptr); }  // drop transport endpoints

  common::Seconds op_latency() const { return op_latency_; }

  /// Re-partitions the (empty) store into \p count shards. Must be
  /// called before any document, queue element or watcher exists;
  /// throws StateError once the store is in use and ConfigError for
  /// count == 0 or count > kMaxShards.
  void set_shard_count(std::size_t count);

  std::size_t shard_count() const { return shards_.size(); }

  /// Inserts or replaces a document.
  void put(const std::string& collection, const std::string& id,
           common::Json document);

  /// Reads a document; nullopt when absent.
  std::optional<common::Json> get(const std::string& collection,
                                  const std::string& id) const;

  /// Reads one top-level field of a document; nullopt when the document
  /// or the field is absent. Same op accounting as get(), but copies one
  /// value instead of the whole document — the hot path for the
  /// Unit-Manager's barrier polls, which read only "state" out of a
  /// million unit documents (DESIGN.md §13).
  std::optional<common::Json> get_field(const std::string& collection,
                                        const std::string& id,
                                        const std::string& field) const;

  /// Merges \p fields into an existing document (top-level keys). A
  /// "state" merge into the "unit" collection is validated against the
  /// unit lifecycle-transition table and throws StateError on an illegal
  /// edge (e.g. Done -> Executing after a stale requeue).
  void update(const std::string& collection, const std::string& id,
              const common::JsonObject& fields);

  /// All documents of a collection (id order).
  std::vector<std::pair<std::string, common::Json>> find_all(
      const std::string& collection) const;

  /// Appends an id to a named queue.
  void queue_push(const std::string& queue, const std::string& id);

  /// Drains the queue (agent poll). Returns ids in FIFO order.
  std::vector<std::string> queue_pop_all(const std::string& queue);

  std::size_t queue_depth(const std::string& queue) const;

  /// Total simulated operations performed (for overhead accounting).
  std::uint64_t op_count() const;

  /// Total *mutations* (put/update/queue push/pop) — reads excluded.
  /// A poller that saw this unchanged knows no document or queue
  /// changed, so barrier checks can skip their rescan (DESIGN.md §13).
  std::uint64_t mutation_count() const;

  /// Registers a watch on \p bucket (a collection or queue name) for keys
  /// starting with \p key_prefix (empty = every key). The callback fires
  /// once per matching mutation, delivered through the sim engine at the
  /// mutation's timestamp (coalesced zero-delay tick). Watchers
  /// registered earlier fire earlier for the same mutation.
  WatchHandle watch(const std::string& bucket, const std::string& key_prefix,
                    WatchCallback callback);

  /// Removes a watch. Pending deliveries for it are dropped (the watcher
  /// set is re-checked at delivery time). Returns false if the handle was
  /// invalid or already unwatched.
  bool unwatch(WatchHandle handle);

  /// Number of registered watchers (teardown hygiene checks).
  std::size_t watcher_count() const;

  /// Attaches the store to the session's message boundary (DESIGN.md
  /// §14): registers the "store.notify" endpoint (watch fan-out) and
  /// the "store.ingest" endpoint (the U.2 document put + queue push as
  /// one message), and routes every watch delivery through
  /// transport->send as a WatchNotify. A Session always wires this; a
  /// store constructed standalone (unit tests) keeps the direct
  /// delivery path. Passing nullptr detaches.
  void set_transport(net::Transport* transport);

  net::Transport* transport() const { return transport_; }

 private:
  struct Watcher {
    std::string bucket;
    std::string prefix;
    WatchCallback fn;
  };

  /// One lock domain: the documents, queues and watchers of every bucket
  /// hashing here. Watch ids pack (registration counter << 8) | shard
  /// index, so map order inside a shard is registration order and
  /// unwatch/delivery recover the shard without a side table.
  struct Shard {
    mutable common::Mutex mu;
    mutable std::uint64_t ops HOH_GUARDED_BY(mu) = 0;
    std::uint64_t muts HOH_GUARDED_BY(mu) = 0;
    std::map<std::string, std::map<std::string, common::Json>> collections
        HOH_GUARDED_BY(mu);
    std::map<std::string, std::deque<std::string>> queues HOH_GUARDED_BY(mu);
    /// Keyed by watch id; std::map iteration = registration-order delivery.
    std::map<std::uint64_t, Watcher> watchers HOH_GUARDED_BY(mu);
  };

  /// One mutation awaiting watch delivery; targets were matched under
  /// the bucket's shard lock at mutation time and are re-resolved at
  /// delivery time.
  struct PendingDelivery {
    std::vector<std::uint64_t> targets;
    WatchEvent event;
  };

  Shard& shard_for(const std::string& bucket) const;

  /// Enqueues one mutation onto the global delivery FIFO and schedules
  /// the coalesced drain tick if none is pending. Called after the
  /// mutating critical section released its shard lock.
  void notify(WatchEventType type, const std::string& bucket,
              const std::string& key);

  /// The drain tick: delivers every mutation queued at this instant.
  void deliver_pending();

  /// Resolves one watcher id and runs its callback (the delivery step
  /// shared by the transport endpoint and the standalone path).
  void deliver_one(std::uint64_t watcher_id, const WatchEvent& event);

  bool in_use() const;

  sim::Engine& engine_;
  common::Seconds op_latency_;
  net::Transport* transport_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Watch-id allocation is global so registration order is total across
  /// shards; ops_base_ carries operation counts across re-sharding.
  mutable common::Mutex id_mu_;
  std::uint64_t next_watch_seq_ HOH_GUARDED_BY(id_mu_) = 1;
  std::uint64_t ops_base_ HOH_GUARDED_BY(id_mu_) = 0;
  std::uint64_t muts_base_ HOH_GUARDED_BY(id_mu_) = 0;

  /// Global mutation FIFO: delivery order is submission order no matter
  /// how many shards the buckets hash across.
  mutable common::Mutex delivery_mu_;
  std::vector<PendingDelivery> pending_deliveries_
      HOH_GUARDED_BY(delivery_mu_);
  bool delivery_scheduled_ HOH_GUARDED_BY(delivery_mu_) = false;
};

}  // namespace hoh::pilot
