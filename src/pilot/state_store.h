#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "sim/engine.h"

/// \file state_store.h
/// The shared document store the Unit-Manager and the agents communicate
/// through — the paper's MongoDB instance ("The Unit-Manager queues new
/// Compute-Units using a shared MongoDB instance (step U.2). The
/// RADICAL-Pilot-Agent periodically checks for new Compute-Units (U.3)").
/// Documents are JSON; named queues provide the U.2/U.3 handoff. Every
/// operation pays a configurable round-trip latency, which is how the
/// store's share of Compute-Unit startup latency enters the simulation.

namespace hoh::pilot {

/// In-memory document store with named FIFO queues.
class StateStore {
 public:
  explicit StateStore(sim::Engine& engine, common::Seconds op_latency = 0.05)
      : engine_(engine), op_latency_(op_latency) {}

  common::Seconds op_latency() const { return op_latency_; }

  /// Inserts or replaces a document.
  void put(const std::string& collection, const std::string& id,
           common::Json document);

  /// Reads a document; nullopt when absent.
  std::optional<common::Json> get(const std::string& collection,
                                  const std::string& id) const;

  /// Merges \p fields into an existing document (top-level keys).
  void update(const std::string& collection, const std::string& id,
              const common::JsonObject& fields);

  /// All documents of a collection (id order).
  std::vector<std::pair<std::string, common::Json>> find_all(
      const std::string& collection) const;

  /// Appends an id to a named queue.
  void queue_push(const std::string& queue, const std::string& id);

  /// Drains the queue (agent poll). Returns ids in FIFO order.
  std::vector<std::string> queue_pop_all(const std::string& queue);

  std::size_t queue_depth(const std::string& queue) const;

  /// Total simulated operations performed (for overhead accounting).
  std::uint64_t op_count() const { return ops_; }

 private:
  sim::Engine& engine_;
  common::Seconds op_latency_;
  mutable std::uint64_t ops_ = 0;
  std::map<std::string, std::map<std::string, common::Json>> collections_;
  std::map<std::string, std::deque<std::string>> queues_;
};

}  // namespace hoh::pilot
