#pragma once

#include "cluster/machine.h"
#include "common/config.h"
#include "pilot/agent/agent_config.h"

/// \file config_templates.h
/// Configuration templates (paper SS-V: "In the future, we will provide
/// configuration templates so that resource specific hardware can be
/// exploited, e.g. available SSDs can significantly enhance the shuffle
/// performance"). Each template derives tuned Hadoop/Spark settings and
/// agent knobs from a machine profile: SSD shuffle directories where
/// flash exists, NodeManager capacities from the node spec, and launch
/// latencies scaled to the local storage tier.

namespace hoh::pilot {

/// Agent configuration tuned for \p machine: container localization and
/// wrapper times scale with the node-local storage speed; the YARN
/// cluster config embeds the machine-derived NM capacities.
AgentConfig tuned_agent_config(const cluster::MachineProfile& machine);

/// yarn-site.xml contents for a deployment on \p machine
/// (NM memory/vcores, scheduler min/max allocation, shuffle directories
/// on the fastest local tier).
common::Config yarn_site_template(const cluster::MachineProfile& machine);

/// hdfs-site.xml contents (block size, replication capped by node count,
/// SSD storage tagging when flash exists).
common::Config hdfs_site_template(const cluster::MachineProfile& machine,
                                  int nodes);

/// spark-env.sh contents (worker cores/memory, SPARK_LOCAL_DIRS on the
/// fastest tier).
common::Config spark_env_template(const cluster::MachineProfile& machine);

}  // namespace hoh::pilot
