#pragma once

#include <map>
#include <memory>
#include <string>

#include "pilot/descriptions.h"

/// \file estimator.h
/// Predictive scheduling hook (paper SS-V future work: "introducing
/// predictive scheduling and other optimization"). An estimator predicts
/// a unit's runtime from its description and learns from observed
/// runtimes; the Unit-Manager's kPredictive policy uses it to bind units
/// to the pilot with the least predicted outstanding work.

namespace hoh::pilot {

class RuntimeEstimator {
 public:
  virtual ~RuntimeEstimator() = default;

  /// Predicted wall seconds for this unit once executing.
  virtual double predict(const ComputeUnitDescription& desc) const = 0;

  /// Feeds back an observed runtime.
  virtual void observe(const ComputeUnitDescription& desc,
                       double actual_seconds) = 0;
};

/// Exponential-moving-average estimator keyed by executable name.
/// Cold-start predictions return \p default_prediction.
class MovingAverageEstimator : public RuntimeEstimator {
 public:
  explicit MovingAverageEstimator(double alpha = 0.3,
                                  double default_prediction = 60.0)
      : alpha_(alpha), default_prediction_(default_prediction) {}

  double predict(const ComputeUnitDescription& desc) const override {
    auto it = averages_.find(desc.executable);
    return it == averages_.end() ? default_prediction_ : it->second;
  }

  void observe(const ComputeUnitDescription& desc,
               double actual_seconds) override {
    auto it = averages_.find(desc.executable);
    if (it == averages_.end()) {
      averages_[desc.executable] = actual_seconds;
    } else {
      it->second = alpha_ * actual_seconds + (1.0 - alpha_) * it->second;
    }
  }

  std::size_t observed_executables() const { return averages_.size(); }

 private:
  double alpha_;
  double default_prediction_;
  std::map<std::string, double> averages_;
};

}  // namespace hoh::pilot
