#pragma once

#include <string>

/// \file states.h
/// Lifecycle state models for Pilots and Compute-Units, following the
/// RADICAL-Pilot state diagrams (paper SS-III-B / Fig. 3).

namespace hoh::pilot {

/// Pilot lifecycle. kActive means the agent is up and pulling units.
enum class PilotState {
  kNew,
  kPendingLaunch,  // placeholder job queued at the batch system
  kLaunching,      // batch job running, agent bootstrapping (P.1-P.2)
  kActive,         // agent ready, processing Compute-Units
  kDone,
  kCanceled,
  kFailed,
};

std::string to_string(PilotState state);

/// Inverse of to_string; throws common::StateError on unknown names.
PilotState pilot_state_from_string(const std::string& name);

constexpr bool is_final(PilotState s) {
  return s == PilotState::kDone || s == PilotState::kCanceled ||
         s == PilotState::kFailed;
}

/// Compute-Unit lifecycle (U.1-U.7 in the paper's Fig. 3).
enum class UnitState {
  kNew,
  kUmgrScheduling,    // U.1: assigned to a pilot by the Unit-Manager
  kPendingAgent,      // U.2: queued in the shared state store
  kAgentScheduling,   // U.4: in the agent scheduler's queue
  kStagingInput,      // stage-in worker moving input files
  kExecuting,         // U.6: payload running (possibly inside YARN/Spark)
  kStagingOutput,     // stage-out worker moving results
  kDone,
  kCanceled,
  kFailed,
};

std::string to_string(UnitState state);

/// Inverse of to_string; throws common::StateError on unknown names.
UnitState unit_state_from_string(const std::string& name);

constexpr bool is_final(UnitState s) {
  return s == UnitState::kDone || s == UnitState::kCanceled ||
         s == UnitState::kFailed;
}

}  // namespace hoh::pilot
