#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cluster/machine.h"
#include "pilot/agent/agent_config.h"
#include "pilot/descriptions.h"
#include "pilot/state_store.h"
#include "pilot/states.h"
#include "saga/context.h"
#include "saga/file_transfer.h"
#include "spark/standalone.h"
#include "yarn/application_master.h"
#include "yarn/yarn_cluster.h"

/// \file agent.h
/// The RADICAL-Pilot agent (paper Fig. 3, right side). One agent runs on
/// the head node of a batch allocation and consists of the components the
/// paper names: the Local Resource Manager (environment discovery and, in
/// Mode I, Hadoop/Spark bootstrap), the Scheduler (cores for the plain
/// path; cores *and memory* for the YARN path), the Task Spawner and the
/// Launch Methods (fork / mpiexec / yarn / spark), a heartbeat monitor
/// and the stage-in/stage-out workers.

namespace hoh::pilot {

class Agent {
 public:
  /// \p external_yarn must be non-null for AgentBackend::kYarnModeII (the
  /// pre-existing cluster, e.g. Wrangler's dedicated Hadoop reservation).
  Agent(saga::SagaContext& saga, StateStore& store,
        saga::FileTransferService& transfer, std::string pilot_id,
        const cluster::MachineProfile& machine,
        cluster::Allocation allocation, AgentBackend backend,
        AgentConfig config, yarn::YarnCluster* external_yarn = nullptr);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// P.2: begins agent bootstrap (LRM environment discovery, Mode-I
  /// cluster bootstrap). When finished the agent is active and polling.
  /// \p on_active fires at that moment.
  void start(std::function<void()> on_active = nullptr);

  /// Stops the agent: tears down Mode-I clusters (the LRM "stops the
  /// Hadoop and YARN daemons and removes the associated data files"),
  /// cancels pending units, stops polling.
  void stop();

  bool active() const { return active_; }
  const std::string& pilot_id() const { return pilot_id_; }
  AgentBackend backend() const { return backend_; }
  const cluster::Allocation& allocation() const { return allocation_; }
  const AgentConfig& config() const { return config_; }

  /// Mode-I/II backend clusters (nullptr when not applicable).
  yarn::YarnCluster* yarn_cluster() {
    return external_yarn_ != nullptr ? external_yarn_ : owned_yarn_.get();
  }
  spark::SparkStandaloneCluster* spark_cluster() { return spark_.get(); }

  std::size_t units_completed() const { return units_completed_; }
  std::size_t units_failed() const { return units_failed_; }
  std::size_t units_queued() const { return queue_.size(); }
  std::size_t units_running() const { return running_; }

 private:
  struct UnitRec {
    std::string id;
    ComputeUnitDescription desc;
    UnitState state = UnitState::kPendingAgent;
    cluster::Node* node = nullptr;  // plain path assignment
    /// Gang-scheduled MPI units span nodes: each piece is one node's
    /// share of (cores, memory), released together on completion.
    std::vector<std::pair<cluster::Node*, cluster::ResourceRequest>> pieces;
    common::MemoryMb yarn_reserved_mb = 0;  // in-flight YARN gate share
  };

  // --- Local Resource Manager ---
  void lrm_bootstrap(std::function<void()> on_done);
  void lrm_teardown();

  // --- store interaction (U.3 / state write-back) ---
  void poll_store();
  void write_heartbeat();
  void set_unit_state(UnitRec& unit, UnitState state);

  // --- Scheduler (U.4/U.5) ---
  void schedule_queued();
  bool dispatch(const std::shared_ptr<UnitRec>& unit);
  bool try_gang_allocate(UnitRec& unit);

  // --- stage-in/out workers (bounded concurrency) ---
  void stage_in(std::shared_ptr<UnitRec> unit,
                std::function<void()> next);
  void stage_out(std::shared_ptr<UnitRec> unit,
                 std::function<void()> next);
  void enqueue_transfer(const saga::Url& src, const saga::Url& dst,
                        common::Bytes bytes, std::function<void()> done);
  void staging_slot_released();

  // --- Task Spawner + Launch Methods ---
  void exec_plain(std::shared_ptr<UnitRec> unit);
  void exec_yarn(std::shared_ptr<UnitRec> unit);
  void exec_yarn_submit(std::shared_ptr<UnitRec> unit,
                        yarn::ResourceManager& rm);
  void exec_yarn_in_container(std::shared_ptr<UnitRec> unit,
                              yarn::ApplicationMaster& am,
                              const yarn::Container& container,
                              bool dedicated_app);
  void exec_spark(std::shared_ptr<UnitRec> unit);
  void finish_unit(std::shared_ptr<UnitRec> unit, UnitState final_state);

  common::Seconds wrapper_time_for(const std::string& node);

  saga::SagaContext& saga_;
  StateStore& store_;
  saga::FileTransferService& transfer_;
  std::string pilot_id_;
  const cluster::MachineProfile& machine_;
  cluster::Allocation allocation_;
  AgentBackend backend_;
  AgentConfig config_;

  yarn::YarnCluster* external_yarn_ = nullptr;
  std::unique_ptr<yarn::YarnCluster> owned_yarn_;
  std::unique_ptr<spark::SparkStandaloneCluster> spark_;
  std::string spark_app_id_;

  // Shared-application extension state.
  std::string shared_app_id_;
  yarn::ApplicationMaster* shared_am_ = nullptr;
  std::deque<std::shared_ptr<UnitRec>> waiting_for_shared_am_;

  std::deque<std::shared_ptr<UnitRec>> queue_;  // agent scheduler queue
  std::map<std::string, bool> wrapper_cache_;   // node -> env localized
  common::MemoryMb yarn_inflight_mb_ = 0;       // dispatched, not finished
  common::Seconds spawner_free_at_ = 0.0;       // Task Spawner serialization
  int active_staging_ = 0;                      // stage-in/out worker slots
  std::deque<std::function<void()>> staging_backlog_;
  sim::EventHandle poll_event_;
  sim::EventHandle heartbeat_event_;
  bool active_ = false;
  bool stopped_ = false;
  bool saw_first_unit_ = false;
  std::size_t units_completed_ = 0;
  std::size_t units_failed_ = 0;
  std::size_t running_ = 0;
};

/// Serialization of unit documents for the state store.
common::Json unit_to_json(const ComputeUnitDescription& desc);
ComputeUnitDescription unit_from_json(const common::Json& doc);

}  // namespace hoh::pilot
