#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "common/object_pool.h"
#include "pilot/agent/agent_config.h"
#include "pilot/descriptions.h"
#include "pilot/state_store.h"
#include "pilot/states.h"
#include "saga/context.h"
#include "saga/file_transfer.h"
#include "spark/standalone.h"
#include "yarn/application_master.h"
#include "yarn/yarn_cluster.h"

/// \file agent.h
/// The RADICAL-Pilot agent (paper Fig. 3, right side). One agent runs on
/// the head node of a batch allocation and consists of the components the
/// paper names: the Local Resource Manager (environment discovery and, in
/// Mode I, Hadoop/Spark bootstrap), the Scheduler (cores for the plain
/// path; cores *and memory* for the YARN path), the Task Spawner and the
/// Launch Methods (fork / mpiexec / yarn / spark), a heartbeat monitor
/// and the stage-in/stage-out workers.

namespace hoh::pilot {

/// Live capacity snapshot of one agent's node set — the single query
/// elastic controllers and schedulers use instead of startup-cached
/// totals, so accounting stays consistent as nodes join and leave.
struct AgentCapacity {
  int nodes = 0;            // usable (non-draining) nodes
  int draining_nodes = 0;   // marked decommissioning, still held
  int total_cores = 0;
  int used_cores = 0;
  common::MemoryMb total_memory_mb = 0;
  common::MemoryMb used_memory_mb = 0;

  int idle_cores() const { return total_cores - used_cores; }
};

class Agent {
 public:
  /// \p external_yarn must be non-null for AgentBackend::kYarnModeII (the
  /// pre-existing cluster, e.g. Wrangler's dedicated Hadoop reservation).
  Agent(saga::SagaContext& saga, StateStore& store,
        saga::FileTransferService& transfer, std::string pilot_id,
        const cluster::MachineProfile& machine,
        cluster::Allocation allocation, AgentBackend backend,
        AgentConfig config, yarn::YarnCluster* external_yarn = nullptr);
  ~Agent();

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// P.2: begins agent bootstrap (LRM environment discovery, Mode-I
  /// cluster bootstrap). When finished the agent is active and polling.
  /// \p on_active fires at that moment.
  void start(std::function<void()> on_active = nullptr);

  /// Stops the agent: tears down Mode-I clusters (the LRM "stops the
  /// Hadoop and YARN daemons and removes the associated data files"),
  /// cancels pending units, stops polling.
  ///
  /// \p fail_units distinguishes a deliberate stop (cancel/normal end:
  /// queued units become kCanceled, a sink) from an involuntary one (the
  /// placeholder job died under the agent: queued AND running units
  /// become kFailed, the one final state the Unit-Manager may requeue
  /// from, with their node/core ledgers released).
  void stop(bool fail_units = false);

  bool active() const { return active_; }
  const std::string& pilot_id() const { return pilot_id_; }
  AgentBackend backend() const { return backend_; }
  const cluster::Allocation& allocation() const { return allocation_; }
  const AgentConfig& config() const { return config_; }

  /// Mode-I/II backend clusters (nullptr when not applicable).
  yarn::YarnCluster* yarn_cluster() {
    return external_yarn_ != nullptr ? external_yarn_ : owned_yarn_.get();
  }
  spark::SparkStandaloneCluster* spark_cluster() { return spark_.get(); }

  std::size_t units_completed() const { return units_completed_; }
  std::size_t units_failed() const { return units_failed_; }
  std::size_t units_queued() const { return queue_.size(); }
  std::size_t units_running() const { return running_; }

  // --- Elasticity (runtime resize of the node set) ---

  /// Live totals over the current allocation, excluding draining nodes.
  /// For YARN backends usage comes from the RM ledger (memory-only
  /// scheduling leaves node core ledgers untouched).
  AgentCapacity capacity();

  /// Mode-I incremental bootstrap of freshly granted nodes: after the
  /// per-node daemon start latency they register with the backend
  /// cluster (NM + DataNode for YARN, worker for Spark) and join the
  /// agent scheduler's allocation. Throws StateError for Mode II (the
  /// external cluster is not ours to grow).
  void add_nodes(std::vector<std::shared_ptr<cluster::Node>> nodes);

  /// Graceful drain-then-release. The named nodes are marked
  /// decommissioning (no new placements anywhere in the stack), running
  /// work is allowed to finish, HDFS re-replicates blocks off leaving
  /// DataNodes, then the nodes leave the allocation and \p on_released
  /// fires (clean=true). Past \p drain_timeout, executing units on the
  /// leaving nodes are preempted and requeued (clean=false) — the HDFS
  /// replication barrier is never skipped. The head node cannot leave.
  void decommission_nodes(std::vector<std::string> names,
                          common::Seconds drain_timeout,
                          std::function<void(bool clean)> on_released);

  bool draining() const { return !drain_names_.empty(); }
  std::size_t drain_timeouts() const { return drain_timeouts_; }

  /// Copies of the queued (not yet dispatched) unit descriptions — the
  /// backlog an elastic policy sizes against.
  std::vector<ComputeUnitDescription> queued_descriptions() const;

  /// Priority preemption (tenant gateway): withdraws one unit from this
  /// agent and parks it at kFailed — the one final state with a legal
  /// out-edge (kFailed -> kPendingAgent), so the caller can redispatch
  /// it later. A queued unit is simply removed; an executing one has
  /// its payload event canceled and its node/container ledgers
  /// released. Units mid-staging or waiting on the Task Spawner are
  /// refused (their continuations must run out) — callers try another
  /// victim. Returns whether the unit was preempted.
  bool preempt_unit(const std::string& unit_id);

  std::size_t units_preempted() const { return units_preempted_; }

  /// Watch-plane capacity/backlog signal: \p cb fires whenever the
  /// agent's capacity or backlog changed (unit finished, new units
  /// arrived, nodes joined or left). Subscribers (ElasticController)
  /// must guard their own lifetime (weak alive token) — the agent calls
  /// straight through. Cleared on stop().
  void on_capacity_event(std::function<void()> cb);

 private:
  struct UnitRec {
    std::string id;
    ComputeUnitDescription desc;
    UnitState state = UnitState::kPendingAgent;
    cluster::Node* node = nullptr;  // plain path assignment
    /// Gang-scheduled MPI units span nodes: each piece is one node's
    /// share of (cores, memory), released together on completion.
    std::vector<std::pair<cluster::Node*, cluster::ResourceRequest>> pieces;
    common::MemoryMb yarn_reserved_mb = 0;  // in-flight YARN gate share

    /// Preemption handle: the payload-duration event plus enough context
    /// to withdraw a YARN container, so a drain timeout can requeue the
    /// unit instead of losing it.
    sim::EventHandle exec_event;
    yarn::ApplicationMaster* am = nullptr;
    std::string container_id;
    std::string exec_node;
    bool dedicated_app = false;
  };

  // --- Local Resource Manager ---
  void lrm_bootstrap(std::function<void()> on_done);
  void lrm_teardown();

  // --- store interaction (U.3 / state write-back) ---
  void poll_store();
  void write_heartbeat();
  /// Watch mode: activity renews the heartbeat lease early (rate-limited
  /// to half the heartbeat interval) instead of waiting for the timer.
  void renew_heartbeat_lease();
  void notify_capacity_event();
  void set_unit_state(UnitRec& unit, UnitState state);

  // --- Scheduler (U.4/U.5) ---
  void schedule_queued();
  bool dispatch(const std::shared_ptr<UnitRec>& unit);
  bool try_gang_allocate(UnitRec& unit);

  // --- stage-in/out workers (bounded concurrency) ---
  void stage_in(std::shared_ptr<UnitRec> unit,
                std::function<void()> next);
  void stage_out(std::shared_ptr<UnitRec> unit,
                 std::function<void()> next);
  void enqueue_transfer(const saga::Url& src, const saga::Url& dst,
                        common::Bytes bytes, std::function<void()> done);
  void staging_slot_released();

  // --- Task Spawner + Launch Methods ---
  void exec_plain(std::shared_ptr<UnitRec> unit);
  void exec_yarn(std::shared_ptr<UnitRec> unit);
  void exec_yarn_submit(std::shared_ptr<UnitRec> unit,
                        yarn::ResourceManager& rm);
  void exec_yarn_in_container(std::shared_ptr<UnitRec> unit,
                              yarn::ApplicationMaster& am,
                              const yarn::Container& container,
                              bool dedicated_app);
  void exec_spark(std::shared_ptr<UnitRec> unit);
  void finish_unit(std::shared_ptr<UnitRec> unit, UnitState final_state);

  // --- drain machinery ---
  void drain_poll();
  void drain_escalate();
  void drain_finish();
  void requeue_unit(const std::shared_ptr<UnitRec>& unit);
  /// Plain-path first-fit cursor maintenance: a release on \p node may
  /// re-open capacity below the cursor, so the cursor moves back to its
  /// index (map rebuilt lazily after topology changes).
  void note_node_release(const cluster::Node* node);
  bool node_draining(const std::string& name) const {
    return draining_.count(name) > 0;
  }

  common::Seconds wrapper_time_for(const std::string& node);

  saga::SagaContext& saga_;
  StateStore& store_;
  saga::FileTransferService& transfer_;
  std::string pilot_id_;
  const cluster::MachineProfile& machine_;
  cluster::Allocation allocation_;
  AgentBackend backend_;
  AgentConfig config_;

  /// Control endpoint registered on config_.transport (empty when the
  /// agent runs without a message boundary).
  std::string ctrl_endpoint_;

  yarn::YarnCluster* external_yarn_ = nullptr;
  std::unique_ptr<yarn::YarnCluster> owned_yarn_;
  std::unique_ptr<spark::SparkStandaloneCluster> spark_;
  std::string spark_app_id_;

  // Shared-application extension state.
  std::string shared_app_id_;
  yarn::ApplicationMaster* shared_am_ = nullptr;
  std::deque<std::shared_ptr<UnitRec>> waiting_for_shared_am_;

  std::deque<std::shared_ptr<UnitRec>> queue_;  // agent scheduler queue
  std::map<std::string, std::shared_ptr<UnitRec>> running_units_;
  /// Unit records churn once per Compute-Unit; at web scale (1M units)
  /// they come from a slab arena instead of the general-purpose heap.
  /// The shared_ptr keeps the arena alive past the agent for records
  /// still referenced by continuations (DESIGN.md §13).
  std::shared_ptr<common::SlabArena> unit_arena_ =
      std::make_shared<common::SlabArena>();
  /// First-fit cursor for the plain scheduler: every non-draining node
  /// below the cursor has zero free cores, so a dispatch scan starts at
  /// the cursor — the 10k-node dispatch burst is O(units), not
  /// O(units * nodes). Releases move it back; topology changes reset it.
  std::size_t plain_cursor_ = 0;
  std::map<const cluster::Node*, std::size_t> node_pos_;
  bool node_pos_stale_ = true;
  std::set<std::string> draining_;              // nodes being drained
  std::vector<std::string> drain_names_;        // active drain, in order
  common::Seconds drain_deadline_ = 0.0;
  bool drain_escalated_ = false;
  std::function<void(bool)> drain_callback_;
  sim::EventHandle drain_poll_event_;
  std::size_t drain_timeouts_ = 0;
  std::map<std::string, bool> wrapper_cache_;   // node -> env localized
  common::MemoryMb yarn_inflight_mb_ = 0;       // dispatched, not finished
  common::Seconds spawner_free_at_ = 0.0;       // Task Spawner serialization
  int active_staging_ = 0;                      // stage-in/out worker slots
  std::deque<std::function<void()>> staging_backlog_;
  sim::EventHandle poll_event_;
  sim::EventHandle heartbeat_event_;
  // Watch-plane state (control_plane == kWatch): the store pushes queue
  // activity; the fallback timer covers lost wakeups; the heartbeat is a
  // lease renewed by activity; drains re-check on a bounded self
  // re-arming timer instead of a periodic.
  WatchHandle unit_watch_;
  sim::DeadlineTimer fallback_timer_;
  sim::DeadlineTimer heartbeat_lease_;
  sim::DeadlineTimer drain_recheck_;
  common::Seconds last_heartbeat_at_ = -1.0e18;
  std::vector<std::function<void()>> capacity_listeners_;
  bool active_ = false;
  bool stopped_ = false;
  bool saw_first_unit_ = false;
  std::size_t units_completed_ = 0;
  std::size_t units_failed_ = 0;
  std::size_t units_preempted_ = 0;
  std::size_t running_ = 0;
};

/// Serialization of unit documents for the state store.
common::Json unit_to_json(const ComputeUnitDescription& desc);
ComputeUnitDescription unit_from_json(const common::Json& doc);

}  // namespace hoh::pilot
