#include "pilot/agent/agent.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::pilot {

std::string to_string(PilotState state) {
  switch (state) {
    case PilotState::kNew:
      return "New";
    case PilotState::kPendingLaunch:
      return "PendingLaunch";
    case PilotState::kLaunching:
      return "Launching";
    case PilotState::kActive:
      return "Active";
    case PilotState::kDone:
      return "Done";
    case PilotState::kCanceled:
      return "Canceled";
    case PilotState::kFailed:
      return "Failed";
  }
  return "?";
}

std::string to_string(UnitState state) {
  switch (state) {
    case UnitState::kNew:
      return "New";
    case UnitState::kUmgrScheduling:
      return "UmgrScheduling";
    case UnitState::kPendingAgent:
      return "PendingAgent";
    case UnitState::kAgentScheduling:
      return "AgentScheduling";
    case UnitState::kStagingInput:
      return "StagingInput";
    case UnitState::kExecuting:
      return "Executing";
    case UnitState::kStagingOutput:
      return "StagingOutput";
    case UnitState::kDone:
      return "Done";
    case UnitState::kCanceled:
      return "Canceled";
    case UnitState::kFailed:
      return "Failed";
  }
  return "?";
}

PilotState pilot_state_from_string(const std::string& name) {
  static const std::map<std::string, PilotState> kNames = {
      {"New", PilotState::kNew},
      {"PendingLaunch", PilotState::kPendingLaunch},
      {"Launching", PilotState::kLaunching},
      {"Active", PilotState::kActive},
      {"Done", PilotState::kDone},
      {"Canceled", PilotState::kCanceled},
      {"Failed", PilotState::kFailed},
  };
  auto it = kNames.find(name);
  if (it == kNames.end()) {
    throw common::StateError("unknown pilot state: " + name);
  }
  return it->second;
}

UnitState unit_state_from_string(const std::string& name) {
  static const std::map<std::string, UnitState> kNames = {
      {"New", UnitState::kNew},
      {"UmgrScheduling", UnitState::kUmgrScheduling},
      {"PendingAgent", UnitState::kPendingAgent},
      {"AgentScheduling", UnitState::kAgentScheduling},
      {"StagingInput", UnitState::kStagingInput},
      {"Executing", UnitState::kExecuting},
      {"StagingOutput", UnitState::kStagingOutput},
      {"Done", UnitState::kDone},
      {"Canceled", UnitState::kCanceled},
      {"Failed", UnitState::kFailed},
  };
  auto it = kNames.find(name);
  if (it == kNames.end()) {
    throw common::StateError("unknown unit state: " + name);
  }
  return it->second;
}

std::string to_string(AgentBackend backend) {
  switch (backend) {
    case AgentBackend::kPlain:
      return "plain";
    case AgentBackend::kYarnModeI:
      return "yarn-mode1";
    case AgentBackend::kYarnModeII:
      return "yarn-mode2";
    case AgentBackend::kSparkModeI:
      return "spark-mode1";
  }
  return "?";
}

common::Json unit_to_json(const ComputeUnitDescription& desc) {
  common::Json j;
  j["name"] = desc.name;
  j["executable"] = desc.executable;
  common::JsonArray args;
  for (const auto& a : desc.arguments) args.emplace_back(a);
  j["arguments"] = std::move(args);
  j["cores"] = static_cast<std::int64_t>(desc.cores);
  j["memory_mb"] = desc.memory_mb;
  j["duration"] = desc.duration;
  j["exit_code"] = static_cast<std::int64_t>(desc.exit_code);
  j["is_mpi"] = desc.is_mpi;
  auto stage_list = [](const std::vector<StagedFile>& files) {
    common::JsonArray arr;
    for (const auto& f : files) {
      common::Json entry;
      entry["url"] = f.url.str();
      entry["size"] = f.size;
      arr.push_back(std::move(entry));
    }
    return arr;
  };
  j["input_staging"] = stage_list(desc.input_staging);
  j["output_staging"] = stage_list(desc.output_staging);
  common::JsonArray pref;
  for (const auto& n : desc.preferred_nodes) pref.emplace_back(n);
  j["preferred_nodes"] = std::move(pref);
  common::JsonArray deps;
  for (const auto& d : desc.depends_on) deps.emplace_back(d);
  j["depends_on"] = std::move(deps);
  return j;
}

ComputeUnitDescription unit_from_json(const common::Json& doc) {
  ComputeUnitDescription desc;
  desc.name = doc.at("name").as_string();
  desc.executable = doc.at("executable").as_string();
  for (const auto& a : doc.at("arguments").as_array()) {
    desc.arguments.push_back(a.as_string());
  }
  desc.cores = static_cast<int>(doc.at("cores").as_int());
  desc.memory_mb = doc.at("memory_mb").as_int();
  desc.duration = doc.at("duration").as_number();
  desc.exit_code = static_cast<int>(doc.at("exit_code").as_int());
  desc.is_mpi = doc.at("is_mpi").as_bool();
  auto parse_stage = [](const common::Json& arr) {
    std::vector<StagedFile> out;
    for (const auto& e : arr.as_array()) {
      out.push_back(StagedFile{saga::Url(e.at("url").as_string()),
                               e.at("size").as_int()});
    }
    return out;
  };
  desc.input_staging = parse_stage(doc.at("input_staging"));
  desc.output_staging = parse_stage(doc.at("output_staging"));
  for (const auto& n : doc.at("preferred_nodes").as_array()) {
    desc.preferred_nodes.push_back(n.as_string());
  }
  if (doc.contains("depends_on")) {
    for (const auto& d : doc.at("depends_on").as_array()) {
      desc.depends_on.push_back(d.as_string());
    }
  }
  return desc;
}

Agent::Agent(saga::SagaContext& saga, StateStore& store,
             saga::FileTransferService& transfer, std::string pilot_id,
             const cluster::MachineProfile& machine,
             cluster::Allocation allocation, AgentBackend backend,
             AgentConfig config, yarn::YarnCluster* external_yarn)
    : saga_(saga),
      store_(store),
      transfer_(transfer),
      pilot_id_(std::move(pilot_id)),
      machine_(machine),
      allocation_(std::move(allocation)),
      backend_(backend),
      config_(config),
      external_yarn_(external_yarn) {
  if (allocation_.empty()) {
    throw common::ConfigError("Agent: empty allocation");
  }
  if (backend_ == AgentBackend::kYarnModeII && external_yarn_ == nullptr) {
    throw common::ConfigError(
        "Agent: Mode II requires an existing YARN cluster");
  }
  if (config_.transport != nullptr) {
    // Message boundary (DESIGN.md §14): PilotManager commands arrive as
    // AgentCommand messages on the agent's control endpoint.
    ctrl_endpoint_ = "agent." + pilot_id_ + ".ctrl";
    config_.transport->register_endpoint(
        ctrl_endpoint_, [this](const net::Envelope& env) {
          const auto msg = net::open_envelope<net::AgentCommand>(env);
          switch (msg.op) {
            case net::AgentCommand::kStart:
              start();
              break;
            case net::AgentCommand::kStop:
              stop();
              break;
            case net::AgentCommand::kStopFailUnits:
              stop(/*fail_units=*/true);
              break;
            default:
              throw common::StateError("Agent: unknown AgentCommand op " +
                                       std::to_string(msg.op));
          }
          return net::make_envelope(net::Ack{});
        });
  }
}

Agent::~Agent() {
  stop();
  if (!ctrl_endpoint_.empty()) {
    config_.transport->unregister_endpoint(ctrl_endpoint_);
  }
}

void Agent::start(std::function<void()> on_active) {
  saga_.trace().record(saga_.engine().now(), "pilot", "agent_started",
                       {{"pilot", pilot_id_},
                        {"backend", to_string(backend_)}});
  saga_.trace().begin_span(saga_.engine().now(), "pilot", "agent_startup",
                           pilot_id_);
  // Agent process bootstrap (interpreter, components, store connection),
  // then the LRM takes over.
  saga_.engine().schedule(machine_.agent_bootstrap_time,
                          [this, cb = std::move(on_active)] {
    if (stopped_) return;
    lrm_bootstrap([this, cb] {
      if (stopped_) return;
      active_ = true;
      saga_.trace().record(saga_.engine().now(), "pilot", "agent_active",
                           {{"pilot", pilot_id_}});
      if (config_.control_plane == common::ControlPlane::kWatch) {
        // Watch plane: the Unit-Manager's queue_push wakes us through a
        // store watch; the fallback sweep only covers lost wakeups
        // (notifications consumed before activation). The heartbeat is a
        // lease timer — write_heartbeat() re-arms it, and activity
        // renews it early (renew_heartbeat_lease).
        unit_watch_ = store_.watch(
            "agent." + pilot_id_, "", [this](const WatchEvent&) {
              if (active_) poll_store();
            });
        fallback_timer_.bind(saga_.engine(), [this] {
          if (!active_) return;
          poll_store();
          fallback_timer_.arm(config_.watch_fallback_interval);
        });
        fallback_timer_.arm(config_.watch_fallback_interval);
        heartbeat_lease_.bind(saga_.engine(), [this] { write_heartbeat(); });
        write_heartbeat();
        poll_store();  // drain anything queued before activation
      } else {
        poll_event_ = saga_.engine().schedule_periodic(
            config_.poll_interval, [this] { poll_store(); });
        write_heartbeat();
        heartbeat_event_ = saga_.engine().schedule_periodic(
            config_.heartbeat_interval, [this] { write_heartbeat(); });
      }
      if (cb) cb();
      if (config_.transport != nullptr && !config_.event_endpoint.empty()) {
        // Activation crosses the boundary as a one-way lifecycle event.
        net::send(*config_.transport, config_.event_endpoint,
                  net::AgentEvent{pilot_id_, net::AgentEvent::kActive});
      }
    });
  });
}

void Agent::lrm_bootstrap(std::function<void()> on_done) {
  switch (backend_) {
    case AgentBackend::kPlain:
      // The LRM only parses the batch environment; negligible cost.
      on_done();
      return;
    case AgentBackend::kYarnModeI: {
      const common::Seconds dt = machine_.bootstrap.yarn_bootstrap_time(
          static_cast<int>(allocation_.size()));
      saga_.engine().schedule(dt, [this, dt, cb = std::move(on_done)] {
        if (stopped_) return;
        owned_yarn_ = std::make_unique<yarn::YarnCluster>(
            saga_.engine(), machine_, allocation_, config_.yarn);
        saga_.trace().record(
            saga_.engine().now(), "pilot", "yarn_bootstrapped",
            {{"pilot", pilot_id_},
             {"seconds", common::strformat("%.2f", dt)}});
        cb();
      });
      return;
    }
    case AgentBackend::kYarnModeII: {
      // Connect to the running RM and read its REST metrics once.
      saga_.engine().schedule(2.0, [this, cb = std::move(on_done)] {
        if (stopped_) return;
        const auto metrics = external_yarn_->resource_manager()
                                 .cluster_metrics();
        saga_.trace().record(
            saga_.engine().now(), "pilot", "yarn_connected",
            {{"pilot", pilot_id_},
             {"availableMB",
              std::to_string(metrics.at("clusterMetrics")
                                 .at("availableMB")
                                 .as_int())}});
        cb();
      });
      return;
    }
    case AgentBackend::kSparkModeI: {
      const common::Seconds dt = machine_.bootstrap.spark_bootstrap_time(
          static_cast<int>(allocation_.size()));
      saga_.engine().schedule(dt, [this, dt, cb = std::move(on_done)] {
        if (stopped_) return;
        spark_ = std::make_unique<spark::SparkStandaloneCluster>(
            saga_.engine(), machine_, allocation_, config_.spark);
        // One long-lived Spark application per pilot holds all slots.
        spark::SparkAppDescriptor app;
        app.name = pilot_id_;
        app.executor_cores = allocation_.nodes()[0]->spec().cores;
        app.executor_memory_mb =
            allocation_.nodes()[0]->spec().memory_mb - 2048;
        spark_app_id_ = spark_->submit_application(app);
        saga_.trace().record(
            saga_.engine().now(), "pilot", "spark_bootstrapped",
            {{"pilot", pilot_id_},
             {"seconds", common::strformat("%.2f", dt)}});
        cb();
      });
      return;
    }
  }
  throw common::ConfigError("Agent: unknown backend");
}

void Agent::lrm_teardown() {
  if (owned_yarn_ != nullptr) owned_yarn_->shutdown();
  if (spark_ != nullptr) {
    if (!spark_app_id_.empty()) {
      spark_->finish_application(spark_app_id_);
    }
    spark_->shutdown();
  }
}

void Agent::stop(bool fail_units) {
  if (stopped_) return;
  const bool was_active = active_;
  stopped_ = true;
  active_ = false;
  saga_.engine().cancel(poll_event_);
  saga_.engine().cancel(heartbeat_event_);
  saga_.engine().cancel(drain_poll_event_);
  if (unit_watch_.valid()) {
    store_.unwatch(unit_watch_);
    unit_watch_ = WatchHandle{};
  }
  fallback_timer_.cancel();
  heartbeat_lease_.cancel();
  drain_recheck_.cancel();
  capacity_listeners_.clear();
  drain_callback_ = nullptr;
  if (was_active) write_heartbeat();  // final tombstone (alive=false)
  // A deliberate stop cancels the backlog (sink state); an involuntary
  // one fails it, which is the only final state the Unit-Manager may
  // requeue onto a surviving pilot.
  const UnitState backlog_final =
      fail_units ? UnitState::kFailed : UnitState::kCanceled;
  for (auto& unit : queue_) {
    set_unit_state(*unit, backlog_final);
  }
  queue_.clear();
  for (auto& unit : waiting_for_shared_am_) {
    set_unit_state(*unit, backlog_final);
  }
  waiting_for_shared_am_.clear();
  if (fail_units) {
    // The allocation died mid-execution: in-flight units are lost too.
    // finish_unit releases their node/core ledgers so the nodes return
    // to the batch pool clean for the next (resubmitted) pilot.
    auto running = running_units_;
    for (auto& [id, unit] : running) {
      saga_.engine().cancel(unit->exec_event);
      finish_unit(unit, UnitState::kFailed);
    }
  }
  lrm_teardown();
  saga_.trace().record(saga_.engine().now(), "pilot", "agent_stopped",
                       {{"pilot", pilot_id_},
                        {"failed_units", fail_units ? "true" : "false"}});
}

void Agent::write_heartbeat() {
  common::Json doc;
  doc["pilot"] = pilot_id_;
  doc["alive"] = !stopped_;
  doc["last_heartbeat"] = saga_.engine().now();
  doc["units_completed"] = static_cast<std::int64_t>(units_completed_);
  doc["units_failed"] = static_cast<std::int64_t>(units_failed_);
  doc["units_running"] = static_cast<std::int64_t>(running_);
  store_.put("heartbeat", pilot_id_, std::move(doc));
  last_heartbeat_at_ = saga_.engine().now();
  if (config_.control_plane == common::ControlPlane::kWatch && !stopped_) {
    heartbeat_lease_.arm(config_.heartbeat_interval);
  }
}

void Agent::renew_heartbeat_lease() {
  if (config_.control_plane != common::ControlPlane::kWatch || !active_) {
    return;
  }
  if (saga_.engine().now() - last_heartbeat_at_ <
      config_.heartbeat_interval * 0.5) {
    return;
  }
  write_heartbeat();  // re-arms the lease, pushing the next write out
}

void Agent::on_capacity_event(std::function<void()> cb) {
  capacity_listeners_.push_back(std::move(cb));
}

void Agent::notify_capacity_event() {
  for (const auto& fn : capacity_listeners_) fn();
}

void Agent::poll_store() {
  if (!active_) return;
  const auto ids = store_.queue_pop_all("agent." + pilot_id_);
  for (const auto& id : ids) {
    auto doc = store_.get("unit", id);
    if (!doc.has_value()) continue;
    auto unit = std::allocate_shared<UnitRec>(
        common::PoolAllocator<UnitRec>(unit_arena_));
    unit->id = id;
    unit->desc = unit_from_json(doc->at("description"));
    set_unit_state(*unit, UnitState::kAgentScheduling);
    queue_.push_back(std::move(unit));
  }
  schedule_queued();
  if (!ids.empty()) {
    renew_heartbeat_lease();
    notify_capacity_event();  // backlog grew
  }
}

void Agent::set_unit_state(UnitRec& unit, UnitState state) {
  if (is_final(unit.state)) return;
  unit.state = state;
  store_.update("unit", unit.id,
                {{"state", common::Json(to_string(state))}});
  saga_.trace().record(saga_.engine().now(), "unit", to_string(state),
                       {{"unit", unit.id}, {"pilot", pilot_id_}});
  if (is_final(state)) {
    saga_.trace().end_span(saga_.engine().now(), "unit", "exec", unit.id);
  }
  if (state == UnitState::kExecuting) {
    saga_.trace().begin_span(saga_.engine().now(), "unit", "exec", unit.id);
    saga_.trace().end_span(saga_.engine().now(), "unit", "startup", unit.id);
    if (!saw_first_unit_) {
      saw_first_unit_ = true;
      saga_.trace().record(saga_.engine().now(), "pilot",
                           "first_unit_executing", {{"pilot", pilot_id_}});
      saga_.trace().end_span(saga_.engine().now(), "pilot", "agent_startup",
                             pilot_id_);
    }
  }
}

void Agent::schedule_queued() {
  if (!active_) return;
  std::deque<std::shared_ptr<UnitRec>> still_waiting;
  // Monotone-failure cutoff (DESIGN.md §13): within one pass capacity
  // only shrinks (dispatch allocates; releases arrive as later engine
  // events), so once an ask has failed, any later non-MPI ask needing at
  // least as many cores and as much memory must fail too and is skipped
  // without a node scan or an RM metrics call. MPI units are always
  // tried: gang allocation can succeed where single-node placement
  // failed.
  int failed_cores = -1;
  common::MemoryMb failed_mb = 0;
  while (!queue_.empty()) {
    auto unit = queue_.front();
    queue_.pop_front();
    const bool dominated = failed_cores >= 0 && !unit->desc.is_mpi &&
                           unit->desc.cores >= failed_cores &&
                           unit->desc.memory_mb >= failed_mb;
    if (dominated) {
      still_waiting.push_back(std::move(unit));
      continue;
    }
    if (dispatch(unit)) continue;
    if (!unit->desc.is_mpi &&
        (failed_cores < 0 || (unit->desc.cores <= failed_cores &&
                              unit->desc.memory_mb <= failed_mb))) {
      failed_cores = unit->desc.cores;
      failed_mb = unit->desc.memory_mb;
    }
    still_waiting.push_back(std::move(unit));
  }
  queue_ = std::move(still_waiting);
}

void Agent::note_node_release(const cluster::Node* node) {
  if (plain_cursor_ == 0) return;
  if (node_pos_stale_) {
    node_pos_.clear();
    const auto& nodes = allocation_.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      node_pos_[nodes[i].get()] = i;
    }
    node_pos_stale_ = false;
  }
  const auto it = node_pos_.find(node);
  plain_cursor_ =
      it == node_pos_.end() ? 0 : std::min(plain_cursor_, it->second);
}

bool Agent::dispatch(const std::shared_ptr<UnitRec>& unit) {
  switch (backend_) {
    case AgentBackend::kPlain: {
      // Continuous scheduler: first node with enough free cores+memory.
      const cluster::ResourceRequest req{unit->desc.cores,
                                         unit->desc.memory_mb};
      const auto& nodes = allocation_.nodes();
      // Advance the first-fit cursor past exhausted nodes; every
      // non-draining node below it has zero free cores and cannot host
      // any unit that wants a core, so the scan starts at the cursor.
      if (plain_cursor_ > nodes.size()) plain_cursor_ = 0;
      while (plain_cursor_ < nodes.size() &&
             nodes[plain_cursor_]->free_cores() == 0 &&
             !node_draining(nodes[plain_cursor_]->name())) {
        ++plain_cursor_;
      }
      const std::size_t start = unit->desc.cores > 0 ? plain_cursor_ : 0;
      for (std::size_t i = start; i < nodes.size(); ++i) {
        const auto& node = nodes[i];
        if (node_draining(node->name())) continue;
        if (node->allocate(req)) {
          unit->node = node.get();
          saga_.trace().record(saga_.engine().now(), "unit", "placed",
                               {{"unit", unit->id}, {"node", node->name()}});
          exec_plain(unit);
          return true;
        }
      }
      // MPI units gang-schedule across nodes when no single node can
      // host them (mpiexec spans the allocation).
      if (unit->desc.is_mpi && try_gang_allocate(*unit)) {
        std::string nodes;
        for (const auto& [node, piece] : unit->pieces) {
          if (!nodes.empty()) nodes += ",";
          nodes += node->name();
        }
        saga_.trace().record(saga_.engine().now(), "unit", "placed",
                             {{"unit", unit->id}, {"node", nodes}});
        exec_plain(unit);
        return true;
      }
      return false;  // stays queued until capacity frees up
    }
    case AgentBackend::kYarnModeI:
    case AgentBackend::kYarnModeII: {
      // The YARN scheduler gates on *memory and cores* using the RM's
      // REST metrics (paper SS-III-C), accounting for submissions whose
      // containers are not visible in the metrics yet.
      yarn::ResourceManager& rm = yarn_cluster()->resource_manager();
      const yarn::YarnConfig& ycfg = rm.config();
      const yarn::Resource cu =
          ycfg.normalize({unit->desc.memory_mb, unit->desc.cores});
      common::MemoryMb need = cu.memory_mb;
      if (!config_.reuse_yarn_app || shared_am_ == nullptr) {
        need += ycfg.normalize(config_.yarn.yarn.am_resource).memory_mb;
      }
      const auto metrics = rm.cluster_metrics().at("clusterMetrics");
      if (metrics.at("availableMB").as_int() - yarn_inflight_mb_ < need) {
        return false;
      }
      // Data-aware extension: steer the unit towards the node holding
      // most HDFS blocks of its first resident input.
      if (config_.data_aware_scheduling &&
          unit->desc.preferred_nodes.empty()) {
        for (const auto& f : unit->desc.input_staging) {
          if (f.url.scheme() == "hdfs" &&
              yarn_cluster()->hdfs().exists(f.url.path())) {
            const auto best = yarn_cluster()->hdfs().best_node(f.url.path());
            if (!best.empty()) unit->desc.preferred_nodes.push_back(best);
            break;
          }
        }
      }
      unit->yarn_reserved_mb = need;
      yarn_inflight_mb_ += need;
      exec_yarn(unit);
      return true;
    }
    case AgentBackend::kSparkModeI:
      // The Spark scheduler's own wave queueing handles backpressure.
      exec_spark(unit);
      return true;
  }
  return false;
}

void Agent::enqueue_transfer(const saga::Url& src, const saga::Url& dst,
                             common::Bytes bytes,
                             std::function<void()> done) {
  auto start = [this, src, dst, bytes, done = std::move(done)] {
    active_staging_ += 1;
    transfer_.transfer(src, dst, bytes, [this, done] {
      staging_slot_released();
      if (!stopped_ && done) done();
    });
  };
  if (active_staging_ < config_.max_concurrent_staging) {
    start();
  } else {
    staging_backlog_.push_back(std::move(start));
  }
}

void Agent::staging_slot_released() {
  active_staging_ = active_staging_ > 0 ? active_staging_ - 1 : 0;
  if (stopped_ || staging_backlog_.empty()) return;
  if (active_staging_ >= config_.max_concurrent_staging) return;
  auto next = std::move(staging_backlog_.front());
  staging_backlog_.pop_front();
  next();
}

void Agent::stage_in(std::shared_ptr<UnitRec> unit,
                     std::function<void()> next) {
  // Inputs already resident in this pilot's HDFS need no movement.
  std::vector<StagedFile> to_move;
  for (const auto& f : unit->desc.input_staging) {
    if (f.url.scheme() == "hdfs" && yarn_cluster() != nullptr &&
        yarn_cluster()->hdfs().exists(f.url.path())) {
      continue;
    }
    to_move.push_back(f);
  }
  if (to_move.empty()) {
    next();
    return;
  }
  set_unit_state(*unit, UnitState::kStagingInput);
  auto remaining = std::make_shared<std::size_t>(to_move.size());
  for (const auto& f : to_move) {
    const saga::Url dst("local://" + machine_.name + "/tmp/" + unit->id);
    enqueue_transfer(f.url, dst, f.size, [unit, remaining, next] {
      if (--(*remaining) == 0) next();
    });
  }
}

void Agent::stage_out(std::shared_ptr<UnitRec> unit,
                      std::function<void()> next) {
  if (unit->desc.output_staging.empty()) {
    next();
    return;
  }
  set_unit_state(*unit, UnitState::kStagingOutput);
  auto remaining =
      std::make_shared<std::size_t>(unit->desc.output_staging.size());
  for (const auto& f : unit->desc.output_staging) {
    const saga::Url src("local://" + machine_.name + "/tmp/" + unit->id);
    enqueue_transfer(src, f.url, f.size, [unit, remaining, next] {
      if (--(*remaining) == 0) next();
    });
  }
}

bool Agent::try_gang_allocate(UnitRec& unit) {
  // Greedy: walk nodes taking as many cores as each offers, memory split
  // proportionally to the cores taken. All-or-nothing.
  int remaining = unit.desc.cores;
  std::vector<std::pair<cluster::Node*, cluster::ResourceRequest>> taken;
  for (const auto& node : allocation_.nodes()) {
    if (remaining <= 0) break;
    if (node_draining(node->name())) continue;
    const int cores = std::min(remaining, node->free_cores());
    if (cores <= 0) continue;
    const common::MemoryMb memory =
        unit.desc.memory_mb * cores / unit.desc.cores;
    const cluster::ResourceRequest piece{cores, memory};
    if (!node->allocate(piece)) continue;
    taken.emplace_back(node.get(), piece);
    remaining -= cores;
  }
  if (remaining > 0) {
    for (const auto& [node, piece] : taken) node->release(piece);
    return false;
  }
  unit.pieces = std::move(taken);
  return true;
}

void Agent::finish_unit(std::shared_ptr<UnitRec> unit,
                        UnitState final_state) {
  if (unit->node != nullptr) {
    unit->node->release(cluster::ResourceRequest{unit->desc.cores,
                                                 unit->desc.memory_mb});
    note_node_release(unit->node);
    unit->node = nullptr;
  }
  for (const auto& [node, piece] : unit->pieces) {
    node->release(piece);
    note_node_release(node);
  }
  unit->pieces.clear();
  if (unit->yarn_reserved_mb > 0) {
    yarn_inflight_mb_ -= unit->yarn_reserved_mb;
    unit->yarn_reserved_mb = 0;
  }
  unit->exec_event = sim::EventHandle{};
  unit->am = nullptr;
  running_units_.erase(unit->id);
  running_ = running_ > 0 ? running_ - 1 : 0;
  set_unit_state(*unit, final_state);
  if (final_state == UnitState::kDone) {
    ++units_completed_;
  } else if (final_state == UnitState::kFailed) {
    ++units_failed_;
  }
  // Capacity freed: try to dispatch more queued units.
  if (active_) schedule_queued();
  renew_heartbeat_lease();
  notify_capacity_event();
}

common::Seconds Agent::wrapper_time_for(const std::string& node) {
  auto it = wrapper_cache_.find(node);
  if (it != wrapper_cache_.end() && it->second) {
    return config_.wrapper_cached_time;
  }
  wrapper_cache_[node] = true;
  return config_.wrapper_setup_time;
}

void Agent::exec_plain(std::shared_ptr<UnitRec> unit) {
  running_ += 1;
  running_units_[unit->id] = unit;
  stage_in(unit, [this, unit] {
    const common::Seconds launch_latency =
        unit->desc.is_mpi ? config_.mpiexec_latency : config_.spawn_latency;
    // The Task Spawner handles one launch at a time; later units wait
    // for it, then load their runtime environment in parallel.
    const common::Seconds now = saga_.engine().now();
    const common::Seconds spawn_starts = std::max(now, spawner_free_at_);
    spawner_free_at_ = spawn_starts + launch_latency;
    const common::Seconds delay =
        (spawn_starts - now) + launch_latency + config_.env_load_seconds;
    saga_.engine().schedule(delay, [this, unit] {
          if (stopped_) return;
          set_unit_state(*unit, UnitState::kExecuting);
          // A degraded node (FailureInjector slow-node episode) stretches
          // the payload wall time by its current speed factor.
          common::Seconds duration = unit->desc.duration;
          if (unit->node != nullptr) {
            duration *= unit->node->speed_factor();
          }
          unit->exec_event =
              saga_.engine().schedule(duration, [this, unit] {
            if (stopped_) return;
            unit->exec_event = sim::EventHandle{};
            // The Task Spawner "collects the exit code" (paper SS-III-B).
            if (unit->desc.exit_code != 0) {
              finish_unit(unit, UnitState::kFailed);
              return;
            }
            stage_out(unit, [this, unit] {
              finish_unit(unit, UnitState::kDone);
            });
          });
        });
  });
}

void Agent::exec_yarn(std::shared_ptr<UnitRec> unit) {
  running_ += 1;
  running_units_[unit->id] = unit;
  yarn::ResourceManager& rm = yarn_cluster()->resource_manager();
  saga_.trace().begin_span(saga_.engine().now(), "unit", "yarn_submit",
                           unit->id);
  stage_in(unit, [this, unit, &rm] {
    // Serialized `yarn jar` CLI submission round trip.
    const common::Seconds now = saga_.engine().now();
    const common::Seconds submit_starts = std::max(now, spawner_free_at_);
    spawner_free_at_ = submit_starts + config_.yarn_submit_latency;
    saga_.engine().schedule(
        (submit_starts - now) + config_.yarn_submit_latency,
        [this, unit, &rm] { exec_yarn_submit(unit, rm); });
  });
}

void Agent::exec_yarn_submit(std::shared_ptr<UnitRec> unit,
                             yarn::ResourceManager& rm) {
  if (stopped_) return;
  {
    if (config_.reuse_yarn_app) {
      if (shared_am_ != nullptr) {
        yarn::ContainerRequest req;
        req.resource = {unit->desc.memory_mb, unit->desc.cores};
        req.preferred_nodes = unit->desc.preferred_nodes;
        shared_am_->request_containers(
            1, req, [this, unit](const yarn::Container& c) {
              exec_yarn_in_container(unit, *shared_am_, c, false);
            });
        return;
      }
      waiting_for_shared_am_.push_back(unit);
      if (!shared_app_id_.empty()) return;  // AM already requested
      yarn::AppDescriptor app;
      app.name = "radical-pilot-shared";
      app.am_resource = config_.yarn.yarn.am_resource;
      app.on_am_start = [this](yarn::ApplicationMaster& am) {
        if (stopped_) return;
        shared_am_ = &am;
        auto waiting = std::move(waiting_for_shared_am_);
        waiting_for_shared_am_.clear();
        for (auto& w : waiting) {
          yarn::ContainerRequest req;
          req.resource = {w->desc.memory_mb, w->desc.cores};
          req.preferred_nodes = w->desc.preferred_nodes;
          shared_am_->request_containers(
              1, req, [this, w](const yarn::Container& c) {
                exec_yarn_in_container(w, *shared_am_, c, false);
              });
        }
      };
      shared_app_id_ = rm.submit_application(std::move(app));
      return;
    }
    // Paper default: one YARN application (own AM) per Compute-Unit.
    yarn::AppDescriptor app;
    app.name = unit->desc.name;
    app.am_resource = config_.yarn.yarn.am_resource;
    app.on_am_start = [this, unit](yarn::ApplicationMaster& am) {
      if (stopped_) return;
      yarn::ContainerRequest req;
      req.resource = {unit->desc.memory_mb, unit->desc.cores};
      req.preferred_nodes = unit->desc.preferred_nodes;
      am.request_containers(1, req,
                            [this, unit, &am](const yarn::Container& c) {
                              exec_yarn_in_container(unit, am, c, true);
                            });
    };
    rm.submit_application(std::move(app));
  }
}

void Agent::exec_yarn_in_container(std::shared_ptr<UnitRec> unit,
                                   yarn::ApplicationMaster& am,
                                   const yarn::Container& container,
                                   bool dedicated_app) {
  const std::string container_id = container.id;
  const std::string node = container.node;
  unit->am = &am;
  unit->container_id = container_id;
  unit->exec_node = node;
  unit->dedicated_app = dedicated_app;
  saga_.trace().record(saga_.engine().now(), "unit", "placed",
                       {{"unit", unit->id}, {"node", node}});
  am.launch(container_id, [this, unit, &am, container_id, node,
                           dedicated_app] {
    if (stopped_) return;
    // Wrapper script: sets up the RP environment inside the container
    // (cached per node by the NM's resource localization).
    saga_.engine().schedule(wrapper_time_for(node), [this, unit, &am,
                                                     container_id,
                                                     dedicated_app] {
      if (stopped_) return;
      if (unit->container_id != container_id) return;  // preempted
      set_unit_state(*unit, UnitState::kExecuting);
      saga_.trace().end_span(saga_.engine().now(), "unit", "yarn_submit",
                             unit->id);
      unit->exec_event =
          saga_.engine().schedule(unit->desc.duration, [this, unit, &am,
                                                        container_id,
                                                        dedicated_app] {
        if (stopped_) return;
        unit->exec_event = sim::EventHandle{};
        unit->am = nullptr;
        if (unit->desc.exit_code != 0) {
          am.kill_container(container_id);
          if (dedicated_app) am.unregister(false);
          finish_unit(unit, UnitState::kFailed);
          return;
        }
        am.complete_container(container_id);
        if (dedicated_app) am.unregister(true);
        stage_out(unit, [this, unit] {
          finish_unit(unit, UnitState::kDone);
        });
      });
    });
  });
}

// --------------------------------------------------------- elasticity ---

AgentCapacity Agent::capacity() {
  AgentCapacity cap;
  for (const auto& node : allocation_.nodes()) {
    if (node_draining(node->name())) {
      cap.draining_nodes += 1;
      continue;
    }
    cap.nodes += 1;
    cap.total_cores += node->spec().cores;
    cap.used_cores += node->used_cores();
    cap.total_memory_mb += node->spec().memory_mb;
    cap.used_memory_mb += node->used_memory_mb();
  }
  if (yarn::YarnCluster* yc = yarn_cluster()) {
    // Memory-only scheduling leaves node core ledgers untouched; the RM
    // ledger is the authority for YARN usage.
    const yarn::Resource used = yc->resource_manager().total_allocated();
    cap.used_cores = used.vcores;
    cap.used_memory_mb = used.memory_mb;
  }
  return cap;
}

std::vector<ComputeUnitDescription> Agent::queued_descriptions() const {
  std::vector<ComputeUnitDescription> out;
  out.reserve(queue_.size());
  for (const auto& unit : queue_) out.push_back(unit->desc);
  return out;
}

void Agent::add_nodes(std::vector<std::shared_ptr<cluster::Node>> nodes) {
  if (backend_ == AgentBackend::kYarnModeII) {
    throw common::StateError(
        "Agent: Mode II pilots cannot grow — the external cluster is not "
        "ours to resize");
  }
  if (nodes.empty() || stopped_) return;
  if (!active_) {
    // Bootstrap has not finished; the LRM picks the nodes up when it
    // builds the backend cluster from the (now larger) allocation.
    for (auto& node : nodes) allocation_.add(std::move(node));
    plain_cursor_ = 0;
    node_pos_stale_ = true;
    return;
  }
  // Per-node worker-daemon start before the capacity becomes usable.
  common::Seconds dt = machine_.bootstrap.configure_time;
  if (backend_ == AgentBackend::kYarnModeI) {
    dt += machine_.bootstrap.worker_daemon_start *
          static_cast<double>(nodes.size());
  } else if (backend_ == AgentBackend::kSparkModeI) {
    dt += machine_.bootstrap.spark_worker_start *
          static_cast<double>(nodes.size());
  }
  saga_.engine().schedule(dt, [this, nodes = std::move(nodes)] {
    if (stopped_) return;
    for (const auto& node : nodes) {
      if (owned_yarn_ != nullptr) owned_yarn_->add_nodes({node});
      if (spark_ != nullptr) spark_->add_worker(node);
      allocation_.add(node);
    }
    plain_cursor_ = 0;
    node_pos_stale_ = true;
    saga_.trace().record(
        saga_.engine().now(), "pilot", "resize",
        {{"pilot", pilot_id_},
         {"action", "grow"},
         {"nodes", std::to_string(nodes.size())},
         {"total", std::to_string(allocation_.size())}});
    schedule_queued();
    notify_capacity_event();  // capacity grew
  });
}

void Agent::decommission_nodes(std::vector<std::string> names,
                               common::Seconds drain_timeout,
                               std::function<void(bool)> on_released) {
  if (names.empty()) {
    if (on_released) on_released(true);
    return;
  }
  if (!drain_names_.empty()) {
    throw common::StateError("Agent: a drain is already in progress");
  }
  const std::string head = allocation_.nodes().front()->name();
  for (const auto& name : names) {
    if (name == head) {
      throw common::ConfigError(
          "Agent: cannot decommission the head node (hosts the agent and "
          "master daemons)");
    }
    const bool held = std::any_of(
        allocation_.nodes().begin(), allocation_.nodes().end(),
        [&](const std::shared_ptr<cluster::Node>& n) {
          return n->name() == name;
        });
    if (!held) {
      throw common::NotFoundError("Agent: node " + name +
                                  " is not part of the allocation");
    }
  }
  drain_names_ = names;
  drain_deadline_ = saga_.engine().now() + drain_timeout;
  drain_escalated_ = false;
  drain_callback_ = std::move(on_released);
  for (const auto& name : names) draining_.insert(name);
  saga_.trace().record(saga_.engine().now(), "pilot", "drain_started",
                       {{"pilot", pilot_id_},
                        {"nodes", std::to_string(names.size())}});
  if (owned_yarn_ != nullptr) owned_yarn_->decommission_nodes(names);
  if (spark_ != nullptr) {
    for (const auto& name : names) spark_->decommission_worker(name);
  }
  if (config_.control_plane == common::ControlPlane::kWatch) {
    // Drain progress has no single push source (NM container exits, HDFS
    // re-replication), so watch mode re-checks on a self re-arming timer
    // at the poll cadence — bounded to the drain window, not the whole
    // pilot lifetime.
    drain_recheck_.bind(saga_.engine(), [this] {
      if (stopped_ || drain_names_.empty()) return;
      drain_poll();
      if (!stopped_ && !drain_names_.empty()) {
        drain_recheck_.arm(config_.poll_interval);
      }
    });
    drain_recheck_.arm(config_.poll_interval);
  } else {
    drain_poll_event_ = saga_.engine().schedule_periodic(
        config_.poll_interval, [this] { drain_poll(); });
  }
}

void Agent::drain_poll() {
  if (stopped_) return;
  // Compute drained: no unit resources left on any leaving node.
  bool compute_drained = true;
  for (const auto& node : allocation_.nodes()) {
    if (!node_draining(node->name())) continue;
    if (node->used_cores() > 0 || node->used_memory_mb() > 0) {
      compute_drained = false;
      break;
    }
  }
  if (compute_drained && owned_yarn_ != nullptr) {
    for (const auto& name : drain_names_) {
      yarn::NodeManager& nm =
          owned_yarn_->resource_manager().node_manager(name);
      if (nm.alive() && nm.live_count() > 0) {
        compute_drained = false;
        break;
      }
    }
  }
  if (compute_drained && spark_ != nullptr) {
    for (const auto& name : drain_names_) {
      if (!spark_->worker_drained(name)) {
        compute_drained = false;
        break;
      }
    }
  }
  if (!compute_drained) {
    if (!drain_escalated_ && saga_.engine().now() >= drain_deadline_) {
      drain_escalate();
    }
    return;
  }
  // Data drained: blocks re-replicated off leaving DataNodes. This
  // barrier is never skipped — a drain timeout may preempt compute, but
  // releasing a node before its blocks are safe would lose data.
  if (owned_yarn_ != nullptr &&
      !owned_yarn_->decommission_complete(drain_names_)) {
    return;
  }
  drain_finish();
}

void Agent::drain_escalate() {
  drain_escalated_ = true;
  drain_timeouts_ += 1;
  saga_.trace().record(saga_.engine().now(), "pilot", "drain_timeout",
                       {{"pilot", pilot_id_},
                        {"nodes", std::to_string(drain_names_.size())}});
  // Preempt executing units on the leaving nodes; requeue_unit puts them
  // back on the agent queue, so they re-run elsewhere — escalation costs
  // wasted work, never lost units.
  std::vector<std::shared_ptr<UnitRec>> victims;
  for (const auto& [id, unit] : running_units_) {
    bool on_leaving = false;
    // A YARN unit is preemptible as soon as it holds a container on a
    // leaving node, even before it reaches Executing — fail_node below
    // would otherwise kill the container with no one requeueing the unit.
    if (unit->am != nullptr && node_draining(unit->exec_node)) {
      on_leaving = true;
    }
    if (unit->state == UnitState::kExecuting && unit->exec_event.valid()) {
      if (unit->node != nullptr && node_draining(unit->node->name())) {
        on_leaving = true;
      }
      for (const auto& [node, piece] : unit->pieces) {
        if (node_draining(node->name())) on_leaving = true;
      }
    }
    if (on_leaving) victims.push_back(unit);
  }
  for (const auto& unit : victims) requeue_unit(unit);
  // Anything still pinning a leaving NM (e.g. an Application Master
  // container) is evicted through the RM's node-loss path; the DataNode
  // stays alive, so no block is lost.
  if (owned_yarn_ != nullptr) {
    yarn::ResourceManager& rm = owned_yarn_->resource_manager();
    for (const auto& name : drain_names_) {
      yarn::NodeManager& nm = rm.node_manager(name);
      if (nm.alive() && nm.live_count() > 0) rm.fail_node(name);
    }
  }
  schedule_queued();
  notify_capacity_event();  // preempted units re-entered the backlog
}

void Agent::drain_finish() {
  saga_.engine().cancel(drain_poll_event_);
  drain_poll_event_ = sim::EventHandle{};
  drain_recheck_.cancel();
  if (owned_yarn_ != nullptr) owned_yarn_->remove_nodes(drain_names_);
  for (const auto& name : drain_names_) {
    if (spark_ != nullptr) spark_->remove_worker(name);
    allocation_.remove(name);
    draining_.erase(name);
    wrapper_cache_.erase(name);
  }
  plain_cursor_ = 0;
  node_pos_stale_ = true;
  saga_.trace().record(
      saga_.engine().now(), "pilot", "resize",
      {{"pilot", pilot_id_},
       {"action", "shrink"},
       {"nodes", std::to_string(drain_names_.size())},
       {"total", std::to_string(allocation_.size())},
       {"clean", drain_escalated_ ? "false" : "true"}});
  const bool clean = !drain_escalated_;
  drain_names_.clear();
  auto cb = std::move(drain_callback_);
  drain_callback_ = nullptr;
  if (cb) cb(clean);
  notify_capacity_event();  // capacity shrank
}

bool Agent::preempt_unit(const std::string& unit_id) {
  // Still queued: no resources held, just take it off the queue.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->id != unit_id) continue;
    auto unit = *it;
    queue_.erase(it);
    saga_.trace().record(saga_.engine().now(), "unit", "preempted",
                         {{"unit", unit->id}, {"pilot", pilot_id_}});
    set_unit_state(*unit, UnitState::kFailed);
    ++units_preempted_;
    notify_capacity_event();
    return true;
  }
  auto it = running_units_.find(unit_id);
  if (it == running_units_.end()) return false;
  auto unit = it->second;
  // Only a unit whose payload is actually running is preemptible here
  // (the drain path's criterion): one mid-staging or waiting on the
  // serialized Task Spawner holds continuations that must run out.
  if (unit->state != UnitState::kExecuting ||
      (!unit->exec_event.valid() && unit->am == nullptr)) {
    return false;
  }
  saga_.engine().cancel(unit->exec_event);
  unit->exec_event = sim::EventHandle{};
  if (unit->node != nullptr) {
    unit->node->release(cluster::ResourceRequest{unit->desc.cores,
                                                 unit->desc.memory_mb});
    note_node_release(unit->node);
    unit->node = nullptr;
  }
  for (const auto& [node, piece] : unit->pieces) {
    node->release(piece);
    note_node_release(node);
  }
  unit->pieces.clear();
  if (unit->am != nullptr) {
    unit->am->kill_container(unit->container_id);
    if (unit->dedicated_app) unit->am->unregister(false);
    unit->am = nullptr;
    unit->container_id.clear();
    unit->exec_node.clear();
    unit->dedicated_app = false;
  }
  if (unit->yarn_reserved_mb > 0) {
    yarn_inflight_mb_ -= unit->yarn_reserved_mb;
    unit->yarn_reserved_mb = 0;
  }
  running_units_.erase(unit->id);
  running_ = running_ > 0 ? running_ - 1 : 0;
  saga_.trace().record(saga_.engine().now(), "unit", "preempted",
                       {{"unit", unit->id}, {"pilot", pilot_id_}});
  // kFailed is legal from any non-final state and is the parking state
  // the caller redispatches from (kFailed -> kPendingAgent).
  set_unit_state(*unit, UnitState::kFailed);
  ++units_preempted_;
  // Capacity freed: the agent's own queued units may fit now.
  if (active_) schedule_queued();
  notify_capacity_event();
  return true;
}

void Agent::requeue_unit(const std::shared_ptr<UnitRec>& unit) {
  saga_.engine().cancel(unit->exec_event);
  unit->exec_event = sim::EventHandle{};
  if (unit->node != nullptr) {
    unit->node->release(cluster::ResourceRequest{unit->desc.cores,
                                                 unit->desc.memory_mb});
    note_node_release(unit->node);
    unit->node = nullptr;
  }
  for (const auto& [node, piece] : unit->pieces) {
    node->release(piece);
    note_node_release(node);
  }
  unit->pieces.clear();
  if (unit->am != nullptr) {
    unit->am->kill_container(unit->container_id);
    if (unit->dedicated_app) unit->am->unregister(false);
    unit->am = nullptr;
    unit->container_id.clear();
    unit->exec_node.clear();
    unit->dedicated_app = false;
  }
  if (unit->yarn_reserved_mb > 0) {
    yarn_inflight_mb_ -= unit->yarn_reserved_mb;
    unit->yarn_reserved_mb = 0;
  }
  running_units_.erase(unit->id);
  running_ = running_ > 0 ? running_ - 1 : 0;
  saga_.trace().end_span(saga_.engine().now(), "unit", "exec", unit->id);
  saga_.trace().record(saga_.engine().now(), "unit", "preempted",
                       {{"unit", unit->id}, {"pilot", pilot_id_}});
  set_unit_state(*unit, UnitState::kAgentScheduling);
  queue_.push_back(unit);
}

void Agent::exec_spark(std::shared_ptr<UnitRec> unit) {
  running_ += 1;
  running_units_[unit->id] = unit;
  stage_in(unit, [this, unit] {
    set_unit_state(*unit, UnitState::kExecuting);
    spark_->run_stage(spark_app_id_, unit->desc.cores,
                      [unit](int) { return unit->desc.duration; },
                      [this, unit] {
                        if (stopped_) return;
                        if (unit->desc.exit_code != 0) {
                          finish_unit(unit, UnitState::kFailed);
                          return;
                        }
                        stage_out(unit, [this, unit] {
                          finish_unit(unit, UnitState::kDone);
                        });
                      });
  });
}

}  // namespace hoh::pilot
