#pragma once

#include <string>

#include "common/control_plane.h"
#include "common/units.h"
#include "net/transport.h"
#include "spark/standalone.h"
#include "yarn/yarn_cluster.h"

/// \file agent_config.h
/// Tuning knobs of the RADICAL-Pilot agent and its launch methods.

namespace hoh::pilot {

struct AgentConfig {
  /// Control-plane mode (DESIGN.md §10). kPoll: U.3 store poll, heartbeat
  /// and drain checks run on fixed cadences. kWatch: the agent watches
  /// its store queue, heartbeats become a lease renewed by activity, and
  /// only a quiescent-fallback sweep remains periodic-ish (a self
  /// re-arming DeadlineTimer).
  common::ControlPlane control_plane = common::ControlPlane::kPoll;

  /// U.3: cadence at which the agent polls the state store for new units.
  common::Seconds poll_interval = 1.0;

  /// Watch mode: safety-net sweep interval. If no watch event arrives
  /// (e.g. a notification was consumed while the agent was inactive),
  /// the agent still re-checks its queue this often.
  common::Seconds watch_fallback_interval = 60.0;

  /// Stage-In/Out workers: how many file transfers the agent's staging
  /// components run concurrently (additional transfers queue).
  int max_concurrent_staging = 4;

  /// Heartbeat Monitor cadence: the agent writes a liveness document to
  /// the shared store so client-side components can detect dead agents.
  common::Seconds heartbeat_interval = 10.0;

  /// Plain launch methods. The Task Spawner is a single component
  /// (paper Fig. 3): it launches one unit at a time, so spawn latency is
  /// *serialized* across concurrently-dispatched units — the agent-side
  /// scaling bottleneck that caps plain-RP speedup at high task counts.
  common::Seconds spawn_latency = 0.2;    // fork/exec of one task
  common::Seconds mpiexec_latency = 1.0;  // mpiexec/aprun startup

  /// Serialized `yarn jar` submission latency per unit on the YARN path
  /// (the CLI round trip; the AM negotiation afterwards is parallel).
  common::Seconds yarn_submit_latency = 0.3;

  /// Per-unit runtime-environment load on the *plain* path (the task's
  /// interpreter and modules read through the machine's shared
  /// filesystem). Workload benches override this from the cost model.
  common::Seconds env_load_seconds = 0.5;

  /// YARN launch method: the paper's wrapper script that builds a
  /// RADICAL-Pilot environment inside the container. The first unit on a
  /// node pays the full localization; later units on that node hit the
  /// NM's localization cache.
  common::Seconds wrapper_setup_time = 18.0;
  common::Seconds wrapper_cached_time = 8.0;

  /// Extension (paper SS-V future work): keep one YARN application (one
  /// AM) alive for the whole pilot and run every unit in containers of
  /// that app, instead of one AM per unit.
  bool reuse_yarn_app = false;

  /// Extension: derive preferred nodes for units from HDFS block
  /// locations of their staged inputs.
  bool data_aware_scheduling = false;

  /// Message boundary (DESIGN.md §14): when set, the agent registers
  /// its control endpoint "agent.<pilot_id>.ctrl" (start/stop commands)
  /// on this transport and reports lifecycle events (activation) to
  /// \ref event_endpoint as AgentEvent messages. Must outlive the agent.
  /// nullptr keeps direct calls (standalone agents in unit tests).
  net::Transport* transport = nullptr;

  /// Where lifecycle AgentEvents go (the PilotManager registers
  /// "pilot.<pilot_id>.lifecycle" here). Empty = no events sent.
  std::string event_endpoint;

  /// Backend cluster configurations for Mode I bootstraps.
  yarn::YarnClusterConfig yarn;
  spark::SparkConfig spark;
};

}  // namespace hoh::pilot
