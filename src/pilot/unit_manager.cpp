#include "pilot/unit_manager.h"

#include <algorithm>

#include "common/error.h"
#include "common/string_util.h"
#include "net/json_codec.h"
#include "net/message.h"
#include "net/transport.h"
#include "pilot/agent/agent.h"

namespace hoh::pilot {

namespace {

/// Session-unique submit-endpoint prefix per manager (engine-thread
/// only; the names never enter digests).
std::string next_um_prefix() {
  static std::uint64_t counter = 0;
  return "um" + std::to_string(counter++);
}

}  // namespace

void UnitManager::register_submit_endpoint() {
  submit_endpoint_ = next_um_prefix() + ".submit";
  session_.transport().register_endpoint(
      submit_endpoint_, [this](const net::Envelope& env) {
        const auto msg = net::open_envelope<net::SubmitRequest>(env);
        net::Unpacker u(msg.description);
        const ComputeUnitDescription desc = unit_from_json(net::unpack_json(u));
        u.expect_done();
        return net::make_envelope(net::SubmitReply{submit(desc)->id()});
      });
}

UnitState ComputeUnit::state() const {
  const auto state =
      manager_->session().store().get_field("unit", id_, "state");
  if (!state.has_value()) return UnitState::kNew;
  return unit_state_from_string(state->as_string());
}

UnitManager::~UnitManager() {
  session_.transport().unregister_endpoint(submit_endpoint_);
  if (dependency_check_.valid()) {
    session_.engine().cancel(dependency_check_);
    dependency_check_ = sim::EventHandle{};
  }
  if (dep_watch_.valid()) {
    session_.store().unwatch(dep_watch_);
    dep_watch_ = WatchHandle{};
  }
}

void UnitManager::add_pilot(std::shared_ptr<Pilot> pilot) {
  recovery_dirty_ = true;
  if (pilot == nullptr) {
    throw common::ConfigError("UnitManager::add_pilot: null pilot");
  }
  bound_counts_.emplace(pilot->id(), 0);
  backlog_seconds_.emplace(pilot->id(), 0.0);
  pilots_.push_back(pilot);
  if (recovery_enabled_) {
    watch_pilot_for_recovery(pilot);
    // A replacement pilot may be exactly what stranded units wait for.
    drain_pending_requeues();
  }
}

std::string UnitManager::pick_pilot(const ComputeUnitDescription& /*desc*/) {
  if (pilots_.empty()) {
    throw common::StateError("UnitManager has no pilots");
  }
  // Dead pilots are never targets; fall back to any pilot only when all
  // are final (the submit still records the binding and the unit fails
  // with that pilot's queue).
  const auto usable = [this](const std::shared_ptr<Pilot>& p) {
    return !is_final(p->state());
  };
  const bool any_live = std::any_of(pilots_.begin(), pilots_.end(), usable);
  switch (policy_) {
    case UnitSchedulingPolicy::kRoundRobin: {
      for (std::size_t i = 0; i < pilots_.size(); ++i) {
        const auto& pilot = pilots_[rr_next_ % pilots_.size()];
        ++rr_next_;
        if (!any_live || usable(pilot)) return pilot->id();
      }
      return pilots_[rr_next_ % pilots_.size()]->id();
    }
    case UnitSchedulingPolicy::kLeastLoaded: {
      std::string best;
      std::size_t best_count = SIZE_MAX;
      for (const auto& pilot : pilots_) {
        if (any_live && !usable(pilot)) continue;
        const std::size_t count = bound_counts_.at(pilot->id());
        if (count < best_count) {
          best = pilot->id();
          best_count = count;
        }
      }
      return best;
    }
    case UnitSchedulingPolicy::kPredictive: {
      // Least predicted outstanding seconds, normalized by the pilot's
      // *live* node count so elastic resizes shift load immediately; the
      // description size stands in until the placeholder job starts.
      reconcile();
      std::string best;
      double best_backlog = 1e300;
      for (const auto& pilot : pilots_) {
        if (any_live && !usable(pilot)) continue;
        const int live = pilot->live_nodes() > 0
                             ? pilot->live_nodes()
                             : pilot->description().nodes;
        const double normalized = backlog_seconds_.at(pilot->id()) /
                                  static_cast<double>(std::max(1, live));
        if (normalized < best_backlog) {
          best = pilot->id();
          best_backlog = normalized;
        }
      }
      return best;
    }
  }
  throw common::ConfigError("unknown scheduling policy");
}

void UnitManager::enable_recovery(common::RetryPolicy policy,
                                  std::uint64_t seed) {
  recovery_dirty_ = true;
  policy.validate();
  recovery_policy_ = policy;
  recovery_rng_ = common::Rng(seed);
  if (recovery_enabled_) return;
  recovery_enabled_ = true;
  for (const auto& pilot : pilots_) watch_pilot_for_recovery(pilot);
}

void UnitManager::watch_pilot_for_recovery(
    const std::shared_ptr<Pilot>& pilot) {
  const std::string pilot_id = pilot->id();
  pilot->on_state_change([this, pilot_id](PilotState state) {
    if (state != PilotState::kFailed) return;
    // Decouple from the failure callback stack (the agent is mid-
    // teardown when the pilot announces kFailed).
    session_.engine().schedule(
        0.0, [this, pilot_id] { handle_pilot_failure(pilot_id); });
  });
}

void UnitManager::handle_pilot_failure(const std::string& pilot_id) {
  recovery_dirty_ = true;
  if (!recovery_enabled_) return;
  for (const auto& unit : units_) {
    if (unit->pilot_id() != pilot_id) continue;
    if (unit->state() != UnitState::kFailed) continue;
    const std::string unit_id = unit->id();
    const int requeues = requeue_counts_[unit_id];
    if (requeues < 0) continue;  // already abandoned
    // Total executions = 1 original + requeues; one more must fit the
    // budget.
    if (!recovery_policy_.allows(requeues + 2)) {
      ++units_abandoned_;
      requeue_counts_[unit_id] = -1;  // mark: budget gone, stop counting
      session_.trace().record(session_.engine().now(), "recovery",
                              "unit_abandoned",
                              {{"unit", unit_id},
                               {"pilot", pilot_id},
                               {"requeues", std::to_string(requeues)}});
      continue;
    }
    session_.trace().begin_span(session_.engine().now(), "recovery",
                                "unit_outage", unit_id);
    limbo_.insert(unit_id);
    const common::Seconds backoff =
        recovery_policy_.backoff_for(requeues + 1, recovery_rng_);
    session_.engine().schedule(backoff,
                               [this, unit_id] { try_requeue(unit_id); });
  }
}

Pilot* UnitManager::find_live_pilot() {
  for (const auto& pilot : pilots_) {
    if (!is_final(pilot->state())) return pilot.get();
  }
  return nullptr;
}

void UnitManager::try_requeue(const std::string& unit_id) {
  recovery_dirty_ = true;
  auto it = by_id_.find(unit_id);
  if (it == by_id_.end()) {
    limbo_.erase(unit_id);
    return;
  }
  auto& unit = it->second;
  if (unit->state() != UnitState::kFailed) {  // raced with something
    limbo_.erase(unit_id);
    return;
  }
  Pilot* target = find_live_pilot();
  if (target == nullptr) {
    // No live pilot yet: park until add_pilot delivers a replacement.
    pending_requeue_.push_back(unit_id);
    return;
  }
  const std::string from = unit->pilot_id();
  const std::string to = target->id();

  // Rebind accounting: the unit now counts against the new pilot.
  if (bound_counts_.count(from) > 0 && bound_counts_[from] > 0) {
    bound_counts_[from] -= 1;
  }
  bound_counts_[to] += 1;
  auto pred = unit_predictions_.find(unit_id);
  const double predicted =
      pred != unit_predictions_.end() ? pred->second : 0.0;
  if (unit_reconciled_.count(unit_id) == 0) {
    // Not folded back yet: the old pilot's backlog still carries it.
    backlog_seconds_[from] -= predicted;
  } else {
    // Folded back already: the unit is live again, re-open it so the
    // next reconcile() folds the new attempt too.
    open_units_.push_back(unit);
  }
  backlog_seconds_[to] += predicted;
  unit_reconciled_.erase(unit_id);
  unit->pilot_id_ = to;
  requeue_counts_[unit_id] += 1;
  ++units_requeued_;

  // kFailed -> kPendingAgent is the one legal edge out of a final state
  // (see transitions.h); then back onto a live agent queue (U.2 again).
  session_.store().update(
      "unit", unit_id,
      {{"state", common::Json(to_string(UnitState::kPendingAgent))},
       {"pilot", common::Json(to)}});
  session_.store().queue_push("agent." + to, unit_id);
  session_.trace().record(session_.engine().now(), "recovery",
                          "unit_requeued",
                          {{"unit", unit_id},
                           {"from", from},
                           {"to", to},
                           {"attempt",
                            std::to_string(requeue_counts_[unit_id] + 1)}});
  session_.trace().end_span(session_.engine().now(), "recovery",
                            "unit_outage", unit_id);
  limbo_.erase(unit_id);
}

std::shared_ptr<ComputeUnit> UnitManager::find_unit(
    const std::string& unit_id) const {
  auto it = by_id_.find(unit_id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::shared_ptr<Pilot> UnitManager::pilot_by_id(
    const std::string& pilot_id) const {
  for (const auto& pilot : pilots_) {
    if (pilot->id() == pilot_id) return pilot;
  }
  return nullptr;
}

bool UnitManager::redispatch_failed(const std::string& unit_id) {
  recovery_dirty_ = true;
  auto it = by_id_.find(unit_id);
  if (it == by_id_.end()) return false;
  auto& unit = it->second;
  if (unit->state() != UnitState::kFailed) return false;
  Pilot* target = find_live_pilot();
  if (target == nullptr) return false;
  const std::string from = unit->pilot_id();
  const std::string to = target->id();

  // Rebind accounting exactly like the recovery requeue: the unit now
  // counts against the target pilot's bindings and backlog.
  if (bound_counts_.count(from) > 0 && bound_counts_[from] > 0) {
    bound_counts_[from] -= 1;
  }
  bound_counts_[to] += 1;
  auto pred = unit_predictions_.find(unit_id);
  const double predicted =
      pred != unit_predictions_.end() ? pred->second : 0.0;
  if (unit_reconciled_.count(unit_id) == 0) {
    backlog_seconds_[from] -= predicted;
  } else {
    open_units_.push_back(unit);  // live again: reconcile the new attempt
  }
  backlog_seconds_[to] += predicted;
  unit_reconciled_.erase(unit_id);
  unit->pilot_id_ = to;

  session_.store().update(
      "unit", unit_id,
      {{"state", common::Json(to_string(UnitState::kPendingAgent))},
       {"pilot", common::Json(to)}});
  session_.store().queue_push("agent." + to, unit_id);
  session_.trace().record(session_.engine().now(), "tenant",
                          "unit_redispatched",
                          {{"unit", unit_id}, {"from", from}, {"to", to}});
  return true;
}

void UnitManager::drain_pending_requeues() {
  recovery_dirty_ = true;
  if (pending_requeue_.empty()) return;
  std::vector<std::string> waiting;
  waiting.swap(pending_requeue_);
  for (const auto& unit_id : waiting) try_requeue(unit_id);
}

void UnitManager::reconcile() {
  // Fold the trace increment into the per-unit time maps: the trace is
  // append-only, so every event is visited once per run, not once per
  // finished unit. (With trace rollup enabled, unit events are not
  // stored and the estimator simply never observes — scale runs use
  // known durations, not predictions.)
  const auto& events = session_.trace().events();
  for (; trace_scan_pos_ < events.size(); ++trace_scan_pos_) {
    const auto& e = events[trace_scan_pos_];
    if (e.category != "unit") continue;
    if (e.name != "Executing" && e.name != "Done") continue;
    const auto unit_attr = e.attrs.find("unit");
    if (unit_attr == e.attrs.end()) continue;
    if (e.name == "Executing") {
      exec_time_[unit_attr->second] = e.time;
    } else {
      done_time_[unit_attr->second] = e.time;
    }
  }
  std::vector<std::shared_ptr<ComputeUnit>> still_open;
  for (const auto& unit : open_units_) {
    if (unit_reconciled_.count(unit->id()) > 0) continue;
    const UnitState state = unit->state();
    if (!is_final(state)) {
      still_open.push_back(unit);
      continue;
    }
    unit_reconciled_[unit->id()] = true;
    auto pred = unit_predictions_.find(unit->id());
    if (pred != unit_predictions_.end()) {
      backlog_seconds_[unit->pilot_id()] -= pred->second;
    }
    // Observed runtime: Executing -> Done. Entries are dropped once
    // consumed; a later requeue re-records them.
    const auto exec_at = exec_time_.find(unit->id());
    const auto done_at = done_time_.find(unit->id());
    if (state == UnitState::kDone && exec_at != exec_time_.end() &&
        done_at != done_time_.end() && done_at->second >= exec_at->second) {
      estimator_->observe(unit->description(),
                          done_at->second - exec_at->second);
    }
    if (exec_at != exec_time_.end()) exec_time_.erase(exec_at);
    if (done_at != done_time_.end()) done_time_.erase(done_at);
  }
  open_units_ = std::move(still_open);
}

std::vector<std::shared_ptr<ComputeUnit>> UnitManager::submit(
    const std::vector<ComputeUnitDescription>& descriptions) {
  std::vector<std::shared_ptr<ComputeUnit>> out;
  out.reserve(descriptions.size());
  for (const auto& desc : descriptions) {
    if (desc.cores < 1) {
      throw common::ConfigError("ComputeUnitDescription.cores must be >= 1");
    }
    const std::string unit_id = session_.next_unit_id();
    const std::string pilot_id = pick_pilot(desc);  // U.1
    bound_counts_[pilot_id] += 1;
    const double predicted = estimator_->predict(desc);
    backlog_seconds_[pilot_id] += predicted;
    unit_predictions_[unit_id] = predicted;

    session_.trace().record(session_.engine().now(), "unit", "Submitted",
                            {{"unit", unit_id}, {"pilot", pilot_id}});
    session_.trace().begin_span(session_.engine().now(), "unit", "startup",
                                unit_id);

    if (desc.depends_on.empty()) {
      dispatch_to_agent(unit_id, pilot_id, desc);
    } else {
      // Held back: document exists (state New) so handles can query it.
      common::Json doc;
      doc["description"] = unit_to_json(desc);
      doc["state"] = to_string(UnitState::kNew);
      doc["pilot"] = pilot_id;
      session_.store().put("unit", unit_id, std::move(doc));
      held_.push_back(HeldUnit{unit_id, pilot_id, desc});
      if (control_plane_ == common::ControlPlane::kWatch) {
        // Watch plane: any unit-document state write (agent write-back,
        // cancellation) may resolve a dependency, so re-check on those
        // instead of sweeping every second.
        if (!dep_watch_.valid()) {
          dep_watch_ = session_.store().watch(
              "unit", "", [this](const WatchEvent& event) {
                if (event.type != WatchEventType::kUpdate) return;
                if (!held_.empty()) check_dependencies();
              });
        }
      } else if (!dependency_check_.valid()) {
        dependency_check_ = session_.engine().schedule_periodic(
            1.0, [this] { check_dependencies(); });
      }
    }

    auto handle = std::shared_ptr<ComputeUnit>(
        new ComputeUnit(this, unit_id, pilot_id, desc));
    by_id_[unit_id] = handle;
    out.push_back(std::move(handle));
  }
  units_.insert(units_.end(), out.begin(), out.end());
  open_units_.insert(open_units_.end(), out.begin(), out.end());
  unsettled_.insert(unsettled_.end(), out.begin(), out.end());
  return out;
}

void UnitManager::dispatch_to_agent(const std::string& unit_id,
                                    const std::string& pilot_id,
                                    const ComputeUnitDescription& desc) {
  common::Json doc;
  doc["description"] = unit_to_json(desc);
  doc["state"] = to_string(UnitState::kPendingAgent);
  doc["pilot"] = pilot_id;
  // U.2 over the message boundary: document put + agent queue push as
  // one StoreIngest through the session transport (DESIGN.md §14). The
  // document crosses as packed binary Json, bit-exact.
  net::Packer packer;
  net::pack_json(packer, doc);
  net::call<net::Ack>(
      session_.transport(), "store.ingest",
      net::StoreIngest{"unit", unit_id, "agent." + pilot_id, packer.take()});
}

void UnitManager::check_dependencies() {
  std::vector<HeldUnit> still_held;
  for (auto& held : held_) {
    bool ready = true;
    bool doomed = false;
    for (const auto& dep_id : held.desc.depends_on) {
      auto dep = by_id_.find(dep_id);
      if (dep == by_id_.end()) {
        doomed = true;  // unknown dependency can never resolve
        break;
      }
      const UnitState dep_state = dep->second->state();
      if (dep_state == UnitState::kFailed ||
          dep_state == UnitState::kCanceled) {
        doomed = true;
        break;
      }
      if (dep_state != UnitState::kDone) ready = false;
    }
    if (doomed) {
      session_.store().update(
          "unit", held.unit_id,
          {{"state", common::Json(to_string(UnitState::kCanceled))}});
      session_.trace().record(session_.engine().now(), "unit", "Canceled",
                              {{"unit", held.unit_id},
                               {"reason", "dependency-failed"}});
      continue;
    }
    if (!ready) {
      still_held.push_back(std::move(held));
      continue;
    }
    dispatch_to_agent(held.unit_id, held.pilot_id, held.desc);
  }
  held_ = std::move(still_held);
  if (held_.empty()) {
    if (dependency_check_.valid()) {
      session_.engine().cancel(dependency_check_);
      dependency_check_ = sim::EventHandle{};
    }
    if (dep_watch_.valid()) {
      session_.store().unwatch(dep_watch_);
      dep_watch_ = WatchHandle{};
    }
  }
}

std::shared_ptr<ComputeUnit> UnitManager::submit(
    const ComputeUnitDescription& description) {
  return submit(std::vector<ComputeUnitDescription>{description}).front();
}

bool UnitManager::all_done() {
  // Barrier fast path (DESIGN.md §13): unit and pilot states live in the
  // store, so if nothing was mutated since the last poll — and no
  // recovery bookkeeping (limbo/abandon triage) moved either — the
  // answer cannot have changed. Long-running waves poll every few
  // simulated seconds while nothing happens; this makes those polls
  // O(1) instead of O(in-flight units).
  const std::uint64_t muts = session_.store().mutation_count();
  if (all_done_cached_ && !recovery_dirty_ && muts == all_done_muts_) {
    return all_done_cache_;
  }
  reconcile();
  const auto settled_now = [this](const std::shared_ptr<ComputeUnit>& u,
                                  UnitState state) {
    if (state == UnitState::kFailed && recovery_enabled_) {
      if (limbo_.count(u->id()) > 0) {
        return false;  // requeue in flight: not settled yet
      }
      // A unit that died with its pilot but has not been triaged yet
      // (the zero-delay handle_pilot_failure event is still queued) is
      // equally in flight: without this, a barrier polling at the exact
      // crash instant concludes the run finished. Abandoned units
      // (budget gone, marked -1) are settled.
      const auto budget = requeue_counts_.find(u->id());
      const bool abandoned =
          budget != requeue_counts_.end() && budget->second < 0;
      if (!abandoned) {
        for (const auto& pilot : pilots_) {
          if (pilot->id() == u->pilot_id() &&
              pilot->state() == PilotState::kFailed) {
            return false;
          }
        }
      }
    }
    return is_final(state);
  };
  // Only units whose outcome is not locked in are re-read. kDone and
  // kCanceled are sinks and leave the working set for good; kFailed
  // stays (requeue/redispatch may cross its one legal out-edge).
  bool all = true;
  std::vector<std::shared_ptr<ComputeUnit>> still_unsettled;
  for (const auto& u : unsettled_) {
    const UnitState state = u->state();
    if (state == UnitState::kDone || state == UnitState::kCanceled) {
      if (state == UnitState::kDone) ++settled_done_;
      continue;
    }
    still_unsettled.push_back(u);
    if (!settled_now(u, state)) all = false;
  }
  unsettled_ = std::move(still_unsettled);
  all_done_cached_ = true;
  all_done_cache_ = all;
  all_done_muts_ = muts;
  recovery_dirty_ = false;
  return all;
}

std::size_t UnitManager::done_count() const {
  std::size_t n = settled_done_;
  for (const auto& u : unsettled_) {
    if (u->state() == UnitState::kDone) ++n;
  }
  return n;
}

}  // namespace hoh::pilot
