#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/id.h"
#include "net/transport.h"
#include "pilot/state_store.h"
#include "saga/context.h"
#include "saga/file_transfer.h"
#include "yarn/yarn_cluster.h"

/// \file session.h
/// A Session bundles everything one Pilot-API experiment shares: the
/// simulation engine and trace (via the SagaContext), the state store
/// (the "MongoDB"), the file-transfer service, and any dedicated Hadoop
/// environments (Wrangler's data-portal reservation, used by Mode II).

namespace hoh::pilot {

class Session {
 public:
  Session()
      : transport_(std::make_unique<net::InProcessTransport>()),
        store_(saga_.engine()),
        transfer_(saga_) {
    store_.set_transport(transport_.get());
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  saga::SagaContext& saga() { return saga_; }
  sim::Engine& engine() { return saga_.engine(); }
  sim::Trace& trace() { return saga_.trace(); }
  StateStore& store() { return store_; }
  saga::FileTransferService& transfer() { return transfer_; }

  /// The session's message boundary (DESIGN.md §14): every
  /// cross-component interaction routes through this transport.
  /// Defaults to InProcessTransport.
  net::Transport& transport() { return *transport_; }

  /// Swaps the transport implementation (plan key "transport":
  /// "socket"). Must happen before any manager or agent registered an
  /// endpoint; the store's endpoints are re-registered on the new
  /// transport here.
  void set_transport(std::unique_ptr<net::Transport> transport) {
    store_.set_transport(nullptr);
    transport_ = std::move(transport);
    store_.set_transport(transport_.get());
  }

  /// Registers a machine (forwarded to the SagaContext).
  saga::ResourceEntry& register_machine(
      const cluster::MachineProfile& profile, hpc::SchedulerKind kind,
      int managed_nodes = 0) {
    return saga_.register_machine(profile, kind, managed_nodes);
  }

  /// Brings up a *dedicated* Hadoop environment on \p host, on nodes
  /// outside the batch pool (the way Wrangler's reservation provides
  /// "dedicated Hadoop environments ... via the data portal"). Mode-II
  /// pilots on that host connect to it.
  yarn::YarnCluster& create_dedicated_hadoop(
      const std::string& host, int nodes,
      yarn::YarnClusterConfig config = {});

  /// The dedicated cluster of \p host, or nullptr.
  yarn::YarnCluster* dedicated_hadoop(const std::string& host);

  /// Session-wide unique ids: every PilotManager/UnitManager in the
  /// session draws from the same counters, so store documents never
  /// collide.
  std::string next_pilot_id() { return pilot_ids_.next(); }
  std::string next_unit_id() { return unit_ids_.next(); }

 private:
  struct DedicatedEnv {
    cluster::Allocation allocation;
    std::unique_ptr<yarn::YarnCluster> cluster;
  };

  saga::SagaContext saga_;
  std::unique_ptr<net::Transport> transport_;
  StateStore store_;
  saga::FileTransferService transfer_;
  std::map<std::string, DedicatedEnv> dedicated_;
  common::IdGenerator pilot_ids_{"pilot"};
  common::IdGenerator unit_ids_{"unit"};
};

}  // namespace hoh::pilot
