#include "pilot/session.h"

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::pilot {

yarn::YarnCluster& Session::create_dedicated_hadoop(
    const std::string& host, int nodes, yarn::YarnClusterConfig config) {
  if (dedicated_.count(host) > 0) {
    throw common::StateError("dedicated Hadoop already exists on " + host);
  }
  const auto& profile = saga_.resource(host).profile;
  std::vector<std::shared_ptr<cluster::Node>> ded_nodes;
  for (int i = 0; i < nodes; ++i) {
    ded_nodes.push_back(std::make_shared<cluster::Node>(
        common::strformat("%s-hadoop-%02d", host.c_str(), i), profile.node));
  }
  DedicatedEnv env;
  env.allocation = cluster::Allocation(std::move(ded_nodes));
  // Dedicated clusters live inside the session: their RM joins the
  // session's message boundary (DESIGN.md §14).
  config.yarn.transport = transport_.get();
  env.cluster = std::make_unique<yarn::YarnCluster>(
      saga_.engine(), profile, env.allocation, std::move(config));
  auto [it, inserted] = dedicated_.emplace(host, std::move(env));
  return *it->second.cluster;
}

yarn::YarnCluster* Session::dedicated_hadoop(const std::string& host) {
  auto it = dedicated_.find(host);
  return it == dedicated_.end() ? nullptr : it->second.cluster.get();
}

}  // namespace hoh::pilot
