#pragma once

#include <cstddef>
#include <string>

#include "common/error.h"
#include "pilot/states.h"

/// \file transitions.h
/// Compile-time lifecycle-transition tables for PilotState and UnitState,
/// mirroring the paper's Fig. 3 (pilot steps P.1-P.2, unit steps U.1-U.7)
/// plus the elasticity edges PR 1 added (a drain-timeout preempt requeues
/// an Executing unit back to AgentScheduling). The tables are constexpr
/// adjacency matrices with static_assert-checked structural properties:
/// final states are sinks and every state is reachable from kNew. The
/// validate_transition() gate is wired into StateStore::update (every
/// unit state write the agents and the Unit-Manager make) and
/// Pilot::set_state, so an illegal jump — e.g. kDone -> kExecuting after
/// a drain-timeout requeue races a completion — throws StateError loudly
/// instead of corrupting the lifecycle silently.

namespace hoh::pilot {

inline constexpr std::size_t kPilotStateCount = 7;
inline constexpr std::size_t kUnitStateCount = 10;

constexpr std::size_t state_index(PilotState s) {
  return static_cast<std::size_t>(s);
}
constexpr std::size_t state_index(UnitState s) {
  return static_cast<std::size_t>(s);
}

// clang-format off

/// Pilot lifecycle edges (row = from, column = to). Column order matches
/// the enum: New, PendingLaunch, Launching, Active, Done, Canceled, Failed.
inline constexpr bool kPilotTransitions[kPilotStateCount][kPilotStateCount] = {
    //                 New    PendL  Launch Active Done   Cancel Failed
    /* New          */ {false, true,  false, false, false, true,  true },
    /* PendingLaunch*/ {false, false, true,  false, true,  true,  true },
    /* Launching    */ {false, false, false, true,  true,  true,  true },
    /* Active       */ {false, false, false, false, true,  true,  true },
    /* Done         */ {false, false, false, false, false, false, false},
    /* Canceled     */ {false, false, false, false, false, false, false},
    /* Failed       */ {false, false, false, false, false, false, false},
};

/// Compute-Unit lifecycle edges (U.1-U.7). Column order matches the enum:
/// New, UmgrScheduling, PendingAgent, AgentScheduling, StagingInput,
/// Executing, StagingOutput, Done, Canceled, Failed.
///
/// The AgentScheduling back-edges from StagingInput/Executing are the
/// drain-timeout preempt: the agent withdraws the unit from a leaving
/// node and requeues it, so escalation costs wasted work, never units.
///
/// The single Failed -> PendingAgent edge is the fault-recovery requeue:
/// the Unit-Manager re-dispatches a unit that died with its pilot onto a
/// surviving pilot (within its retry budget). Failed is deliberately the
/// only final state with an out-edge — Done and Canceled stay sinks, so
/// finished or user-canceled work can never be re-executed.
inline constexpr bool kUnitTransitions[kUnitStateCount][kUnitStateCount] = {
    //                 New    Umgr   PendA  AgentS StageI Exec   StageO Done   Cancel Failed
    /* New          */ {false, true,  true,  false, false, false, false, false, true,  true },
    /* UmgrSchedul. */ {false, false, true,  false, false, false, false, false, true,  true },
    /* PendingAgent */ {false, false, false, true,  false, false, false, false, true,  true },
    /* AgentSchedul.*/ {false, false, false, false, true,  true,  false, false, true,  true },
    /* StagingInput */ {false, false, false, true,  false, true,  false, false, true,  true },
    /* Executing    */ {false, false, false, true,  false, false, true,  true,  true,  true },
    /* StagingOutput*/ {false, false, false, false, false, false, false, true,  true,  true },
    /* Done         */ {false, false, false, false, false, false, false, false, false, false},
    /* Canceled     */ {false, false, false, false, false, false, false, false, false, false},
    /* Failed       */ {false, false, true,  false, false, false, false, false, false, false},
};

// clang-format on

/// True when \p from -> \p to is a legal edge. Self-transitions on
/// non-final states are legal no-ops (a requeued unit that never left
/// AgentScheduling re-announces its state); final states are sinks.
constexpr bool transition_allowed(PilotState from, PilotState to) {
  if (from == to) return !is_final(from);
  return kPilotTransitions[state_index(from)][state_index(to)];
}

constexpr bool transition_allowed(UnitState from, UnitState to) {
  if (from == to) return !is_final(from);
  return kUnitTransitions[state_index(from)][state_index(to)];
}

namespace detail {

/// Constexpr reachability closure from state 0 (kNew) over an N x N
/// adjacency matrix: true iff every state is reachable.
template <std::size_t N>
constexpr bool all_reachable_from_new(const bool (&adj)[N][N]) {
  bool reached[N] = {};
  reached[0] = true;
  // N rounds of relaxation reach any node a path exists to.
  for (std::size_t round = 0; round < N; ++round) {
    for (std::size_t u = 0; u < N; ++u) {
      if (!reached[u]) continue;
      for (std::size_t v = 0; v < N; ++v) {
        if (adj[u][v]) reached[v] = true;
      }
    }
  }
  for (std::size_t v = 0; v < N; ++v) {
    if (!reached[v]) return false;
  }
  return true;
}

template <std::size_t N>
constexpr bool row_is_sink(const bool (&adj)[N][N], std::size_t row) {
  for (std::size_t v = 0; v < N; ++v) {
    if (adj[row][v]) return false;
  }
  return true;
}

/// Number of out-edges from \p row.
template <std::size_t N>
constexpr std::size_t row_degree(const bool (&adj)[N][N], std::size_t row) {
  std::size_t n = 0;
  for (std::size_t v = 0; v < N; ++v) {
    if (adj[row][v]) ++n;
  }
  return n;
}

/// Every non-final state can reach at least one final state directly or
/// transitively (no livelock corner in the table itself).
template <std::size_t N>
constexpr bool can_reach(const bool (&adj)[N][N], std::size_t from,
                         std::size_t to) {
  bool reached[N] = {};
  reached[from] = true;
  for (std::size_t round = 0; round < N; ++round) {
    for (std::size_t u = 0; u < N; ++u) {
      if (!reached[u]) continue;
      for (std::size_t v = 0; v < N; ++v) {
        if (adj[u][v]) reached[v] = true;
      }
    }
  }
  return reached[to];
}

}  // namespace detail

// --- structural properties, checked at compile time -----------------------

static_assert(detail::all_reachable_from_new(kPilotTransitions),
              "every PilotState must be reachable from kNew");
static_assert(detail::all_reachable_from_new(kUnitTransitions),
              "every UnitState must be reachable from kNew");

static_assert(detail::row_is_sink(kPilotTransitions,
                                  state_index(PilotState::kDone)) &&
                  detail::row_is_sink(kPilotTransitions,
                                      state_index(PilotState::kCanceled)) &&
                  detail::row_is_sink(kPilotTransitions,
                                      state_index(PilotState::kFailed)),
              "final PilotStates must be sinks");
static_assert(detail::row_is_sink(kUnitTransitions,
                                  state_index(UnitState::kDone)) &&
                  detail::row_is_sink(kUnitTransitions,
                                      state_index(UnitState::kCanceled)),
              "Done/Canceled UnitStates must be sinks");
static_assert(detail::row_degree(kUnitTransitions,
                                 state_index(UnitState::kFailed)) == 1 &&
                  transition_allowed(UnitState::kFailed,
                                     UnitState::kPendingAgent),
              "kFailed's only out-edge must be the recovery requeue "
              "(Failed -> PendingAgent)");
static_assert(!transition_allowed(UnitState::kDone,
                                  UnitState::kPendingAgent) &&
                  !transition_allowed(UnitState::kCanceled,
                                      UnitState::kPendingAgent),
              "only failed units may be requeued — never finished or "
              "user-canceled ones");

static_assert(detail::can_reach(kUnitTransitions,
                                state_index(UnitState::kNew),
                                state_index(UnitState::kDone)),
              "the happy path New -> ... -> Done must exist");
static_assert(detail::can_reach(kPilotTransitions,
                                state_index(PilotState::kNew),
                                state_index(PilotState::kDone)),
              "the happy path New -> ... -> Done must exist");
static_assert(transition_allowed(UnitState::kExecuting,
                                 UnitState::kAgentScheduling),
              "drain-timeout preempt (Executing -> AgentScheduling) must be "
              "a legal requeue edge");
static_assert(!transition_allowed(UnitState::kDone, UnitState::kExecuting),
              "a finished unit must never re-execute (the requeue race the "
              "gate exists to catch)");

// --- runtime gate ---------------------------------------------------------

/// Throws common::StateError when \p from -> \p to is illegal. \p what
/// names the entity for the error message ("unit.0003", "pilot.0001").
inline void validate_transition(PilotState from, PilotState to,
                                const std::string& what) {
  if (transition_allowed(from, to)) return;
  throw common::StateError("illegal pilot state transition " + what + ": " +
                           to_string(from) + " -> " + to_string(to));
}

inline void validate_transition(UnitState from, UnitState to,
                                const std::string& what) {
  if (transition_allowed(from, to)) return;
  throw common::StateError("illegal unit state transition " + what + ": " +
                           to_string(from) + " -> " + to_string(to));
}

}  // namespace hoh::pilot
