#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "saga/url.h"

/// \file descriptions.h
/// Pilot and Compute-Unit descriptions — the user-facing vocabulary of
/// the Pilot-API ("Pilots are described using a Pilot description, which
/// contains the resource requirements of the Pilot").

namespace hoh::pilot {

/// How the agent provisions its execution backend (paper Fig. 1).
enum class AgentBackend {
  kPlain,       // classic RADICAL-Pilot: fork/mpiexec on the allocation
  kYarnModeI,   // bootstrap YARN + HDFS on the allocation (Hadoop on HPC)
  kYarnModeII,  // connect to an existing YARN cluster (HPC on Hadoop)
  kSparkModeI,  // bootstrap a standalone Spark cluster on the allocation
};

std::string to_string(AgentBackend backend);

/// Resource request for one pilot.
struct PilotDescription {
  /// Target resource, e.g. "slurm://stampede/" or "sge://wrangler/".
  std::string resource;
  int nodes = 1;
  common::Seconds runtime = 3600.0;  // walltime
  std::string queue = "normal";
  std::string project;
  AgentBackend backend = AgentBackend::kPlain;

  /// Agent tuning knobs (see AgentConfig for semantics); 0 keeps default.
  common::Seconds agent_poll_interval = 0.0;
};

/// A file a Compute-Unit stages in or out.
struct StagedFile {
  saga::Url url;          // source (stage-in) or destination (stage-out)
  common::Bytes size = 0;
};

/// What a Compute-Unit runs. In this reproduction the payload's work is a
/// simulated duration (produced by a workload cost model); everything
/// around it — scheduling, launching, staging, YARN/Spark dispatch — is
/// executed by the real middleware code paths.
struct ComputeUnitDescription {
  std::string name = "unit";
  std::string executable = "/bin/task";
  std::vector<std::string> arguments;

  int cores = 1;
  common::MemoryMb memory_mb = 2048;

  /// Virtual seconds of payload work once running.
  common::Seconds duration = 1.0;

  /// Simulated exit code of the payload: non-zero marks the unit Failed
  /// after it runs (failure-injection hook for tests and resilience
  /// studies).
  int exit_code = 0;

  std::vector<StagedFile> input_staging;
  std::vector<StagedFile> output_staging;

  /// Nodes this unit prefers (data locality, filled by data-aware
  /// schedulers). Empty = anywhere.
  std::vector<std::string> preferred_nodes;

  /// MPI units are gang-scheduled across cores (launch via mpiexec).
  bool is_mpi = false;

  /// Unit ids this unit must wait for (workflow dependencies). The
  /// Unit-Manager holds the unit back until every dependency is Done;
  /// if any dependency fails or is canceled, the unit is canceled.
  std::vector<std::string> depends_on;
};

}  // namespace hoh::pilot
