#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace hoh::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
    ++tasks_submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    const std::function<void(std::size_t)>* pf_fn = nullptr;
    std::size_t pf_lo = 0;
    std::size_t pf_hi = 0;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty() &&
             !(pf_active_ && pf_next_ < pf_n_)) {
        cv_.wait(mutex_);
      }
      if (pf_active_ && pf_next_ < pf_n_) {
        // Claim the next chunk of the shared parallel_for job; no queue
        // entry or closure is ever allocated for it.
        pf_fn = pf_fn_;
        pf_lo = pf_next_;
        pf_hi = std::min(pf_n_, pf_lo + pf_chunk_);
        pf_next_ = pf_hi;
        ++pf_running_;
      } else if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      } else if (stopping_) {
        return;
      } else {
        continue;
      }
    }
    if (pf_fn != nullptr) {
      std::exception_ptr err;
      try {
        for (std::size_t i = pf_lo; i < pf_hi; ++i) (*pf_fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      bool done = false;
      {
        MutexLock lock(mutex_);
        if (err && !pf_error_) pf_error_ = err;
        --pf_running_;
        done = pf_next_ >= pf_n_ && pf_running_ == 0;
      }
      if (done) pf_cv_.notify_all();
      continue;
    }
    job();
    {
      MutexLock lock(mutex_);
      --active_;
      ++tasks_completed_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0 || pf_active_) idle_cv_.wait(mutex_);
}

std::size_t ThreadPool::tasks_submitted() const {
  MutexLock lock(mutex_);
  return tasks_submitted_;
}

std::size_t ThreadPool::tasks_completed() const {
  MutexLock lock(mutex_);
  return tasks_completed_;
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The pool owns one reusable parallel_for job slot. The caller arms it
  // and then behaves like a worker: everyone claims contiguous chunks
  // under the mutex and runs them unlocked. Steady state is zero-alloc —
  // no queue entries, closures or futures per chunk — which is what the
  // BM_RddPipeline flat spot came down to.
  const std::size_t lanes = std::min(n, workers_.size() + 1);
  const std::size_t chunk = (n + lanes - 1) / lanes;
  bool shared = false;
  {
    MutexLock lock(mutex_);
    if (!pf_active_ && chunk < n) {
      pf_active_ = true;
      pf_fn_ = &fn;
      pf_n_ = n;
      pf_chunk_ = chunk;
      pf_next_ = 0;
      pf_running_ = 0;
      pf_error_ = nullptr;
      shared = true;
    }
  }
  if (!shared) {
    // Single chunk, or a nested/concurrent parallel_for while the slot
    // is busy: run sequentially on the caller (exceptions propagate).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  cv_.notify_all();
  // Claim chunks alongside the workers; the first claim is [0, chunk),
  // the same leading range the caller always ran.
  std::exception_ptr caller_error;
  for (;;) {
    std::size_t lo = 0;
    std::size_t hi = 0;
    {
      MutexLock lock(mutex_);
      if (pf_next_ >= pf_n_) break;
      lo = pf_next_;
      hi = std::min(pf_n_, lo + pf_chunk_);
      pf_next_ = hi;
      ++pf_running_;
    }
    try {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    } catch (...) {
      if (!caller_error) caller_error = std::current_exception();
    }
    {
      MutexLock lock(mutex_);
      --pf_running_;
    }
  }
  {
    // Workers still reference the job slot (and fn) until the claimed
    // chunks drain; always wait before propagating any exception.
    MutexLock lock(mutex_);
    while (pf_running_ != 0) pf_cv_.wait(mutex_);
    if (!caller_error && pf_error_) caller_error = pf_error_;
    pf_active_ = false;
    pf_fn_ = nullptr;
  }
  idle_cv_.notify_all();
  if (caller_error) std::rethrow_exception(caller_error);
}

}  // namespace hoh::common
