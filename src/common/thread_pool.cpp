#include "common/thread_pool.h"

#include <algorithm>

namespace hoh::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace hoh::common
