#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace hoh::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
    ++tasks_submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      MutexLock lock(mutex_);
      --active_;
      ++tasks_completed_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

std::size_t ThreadPool::tasks_submitted() const {
  MutexLock lock(mutex_);
  return tasks_submitted_;
}

std::size_t ThreadPool::tasks_completed() const {
  MutexLock lock(mutex_);
  return tasks_completed_;
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The calling thread is one execution lane and runs the first chunk
  // itself; the workers take the remaining chunks through a single
  // stack-allocated latch. Compared to one packaged_task + future per
  // chunk this does no per-chunk heap allocation and wakes the caller
  // exactly once.
  const std::size_t lanes = std::min(n, workers_.size() + 1);
  const std::size_t chunk = (n + lanes - 1) / lanes;
  struct Latch {
    Mutex mu;
    CondVar cv;
    std::size_t pending HOH_GUARDED_BY(mu) = 0;
    std::exception_ptr error HOH_GUARDED_BY(mu);
  } latch;
  {
    MutexLock lock(latch.mu);
    for (std::size_t lo = chunk; lo < n; lo += chunk) ++latch.pending;
  }
  for (std::size_t lo = chunk; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    enqueue([lo, hi, &fn, &latch] {
      std::exception_ptr err;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      MutexLock lock(latch.mu);
      if (err && !latch.error) latch.error = err;
      if (--latch.pending == 0) latch.cv.notify_all();
    });
  }
  std::exception_ptr caller_error;
  try {
    const std::size_t hi = std::min(n, chunk);
    for (std::size_t i = 0; i < hi; ++i) fn(i);
  } catch (...) {
    caller_error = std::current_exception();
  }
  {
    // Workers still reference the latch (and fn) until pending drains;
    // always wait before propagating any exception.
    MutexLock lock(latch.mu);
    while (latch.pending != 0) latch.cv.wait(latch.mu);
    if (!caller_error && latch.error) caller_error = latch.error;
  }
  if (caller_error) std::rethrow_exception(caller_error);
}

}  // namespace hoh::common
