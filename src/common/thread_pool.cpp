#include "common/thread_pool.h"

#include <algorithm>

namespace hoh::common {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(job));
    ++tasks_submitted_;
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      MutexLock lock(mutex_);
      --active_;
      ++tasks_completed_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_cv_.wait(mutex_);
}

std::size_t ThreadPool::tasks_submitted() const {
  MutexLock lock(mutex_);
  return tasks_submitted_;
}

std::size_t ThreadPool::tasks_completed() const {
  MutexLock lock(mutex_);
  return tasks_completed_;
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace hoh::common
