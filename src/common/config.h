#pragma once

#include <map>
#include <optional>
#include <string>

/// \file config.h
/// Hadoop-style key/value configuration. Mode-I bootstrap renders these
/// into the classic *-site.xml documents (core-site.xml, hdfs-site.xml,
/// yarn-site.xml, mapred-site.xml, spark-env.sh) that the paper's LRM
/// writes onto the allocation.

namespace hoh::common {

/// Ordered string key/value configuration with typed getters.
class Config {
 public:
  Config() = default;

  void set(const std::string& key, std::string value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  bool contains(const std::string& key) const;
  std::size_t size() const { return values_.size(); }

  /// Typed getters; return the default when absent. Malformed numeric
  /// values throw ConfigError.
  std::string get(const std::string& key,
                  const std::string& def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;
  double get_double(const std::string& key, double def = 0.0) const;
  bool get_bool(const std::string& key, bool def = false) const;

  /// Merges \p other into this config (other wins on conflicts).
  void merge(const Config& other);

  const std::map<std::string, std::string>& values() const { return values_; }

  /// Renders the Hadoop *-site.xml representation of this config.
  std::string to_xml() const;

  /// Renders "key=value" lines (spark-env.sh style, sorted by key).
  std::string to_properties() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace hoh::common
