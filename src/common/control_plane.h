#pragma once

#include <string>

#include "common/error.h"

/// \file control_plane.h
/// Control-plane mode shared by the pilot, YARN and elastic layers (see
/// DESIGN.md §10). kPoll is the paper-faithful periodic-polling plane
/// (agent store polls, RM scheduler loop, dependency sweeps); kWatch is
/// the event-driven plane (store watches, lease timers, demand-driven
/// scheduler passes) whose executed-event count grows with work instead
/// of with virtual time. Both planes must complete the same unit set —
/// the keystone plans assert byte-identical output digests across modes.

namespace hoh::common {

enum class ControlPlane {
  kPoll,   // legacy: fixed-cadence schedule_periodic everywhere
  kWatch,  // event-driven: store watch/notify + DeadlineTimer leases
};

inline std::string to_string(ControlPlane plane) {
  return plane == ControlPlane::kWatch ? "watch" : "poll";
}

inline ControlPlane control_plane_from_string(const std::string& s) {
  if (s == "poll") return ControlPlane::kPoll;
  if (s == "watch") return ControlPlane::kWatch;
  throw ConfigError("unknown control_plane \"" + s +
                    "\" (expected \"poll\" or \"watch\")");
}

}  // namespace hoh::common
