#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

/// \file json.h
/// Minimal JSON value type with a serializer and recursive-descent parser.
/// Used for the YARN REST-style metrics snapshots, the state-store
/// documents, and Hadoop-style configuration file rendering. Numbers are
/// stored as double; object keys keep insertion-independent (sorted) order
/// via std::map so serialization is deterministic.

namespace hoh::common {

class Json;

using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// Immutable-ish JSON value (copyable, value semantics).
class Json {
 public:
  using Value = std::variant<std::nullptr_t, bool, double, std::string,
                             JsonArray, JsonObject>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(std::int64_t i) : value_(static_cast<double>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<double>(i)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw std::bad_variant_access on mismatch.
  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  std::int64_t as_int() const { return static_cast<std::int64_t>(as_number()); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member access; creates the member (converting this value to an
  /// object if it was null).
  Json& operator[](const std::string& key);
  /// Const lookup; throws NotFoundError if absent or not an object.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  /// Serializes to compact JSON; \p indent > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document; throws ConfigError on malformed input.
  static Json parse(const std::string& text);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

 private:
  void dump_to(std::string& out, int indent, int depth) const;
  Value value_;
};

}  // namespace hoh::common
