#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace hoh::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

Logging::Sink& sink_storage() {
  static Logging::Sink sink;
  return sink;
}

Logging::TimeProvider& time_storage() {
  static Logging::TimeProvider provider;
  return provider;
}

void stderr_sink(LogLevel level, std::string_view tag,
                 std::string_view message) {
  double t = -1.0;
  {
    std::lock_guard<std::mutex> lock(sink_mutex());
    if (time_storage()) t = time_storage()();
  }
  if (t >= 0.0) {
    std::fprintf(stderr, "[%9.3f] %-5s %s: %.*s\n", t,
                 std::string(log_level_name(level)).c_str(),
                 std::string(tag).c_str(), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(stderr, "%-5s %s: %.*s\n",
                 std::string(log_level_name(level)).c_str(),
                 std::string(tag).c_str(), static_cast<int>(message.size()),
                 message.data());
  }
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logging::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel Logging::level() { return g_level.load(std::memory_order_relaxed); }

void Logging::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_storage() = std::move(sink);
}

void Logging::set_time_provider(TimeProvider provider) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  time_storage() = std::move(provider);
}

void Logging::log(LogLevel level, std::string_view tag,
                  std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  Sink sink_copy;
  {
    std::lock_guard<std::mutex> lock(sink_mutex());
    sink_copy = sink_storage();
  }
  if (sink_copy) {
    sink_copy(level, tag, message);
  } else {
    stderr_sink(level, tag, message);
  }
}

}  // namespace hoh::common
