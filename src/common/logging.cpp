#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.h"

namespace hoh::common {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Global sink + time provider behind one annotated mutex, so the
/// thread-safety analysis ties every access to the lock (a bare
/// function-local static cannot carry GUARDED_BY).
struct SinkRegistry {
  Mutex mu;
  Logging::Sink sink HOH_GUARDED_BY(mu);
  Logging::TimeProvider time HOH_GUARDED_BY(mu);
};

SinkRegistry& registry() {
  static SinkRegistry r;
  return r;
}

void stderr_sink(LogLevel level, std::string_view tag,
                 std::string_view message) {
  // Copy out, then call unlocked: a provider wired to sim::Engine::now
  // must not run under the logging lock (lock-ordering rule: the logging
  // mutex is a leaf — never held across user callbacks).
  Logging::TimeProvider provider;
  {
    SinkRegistry& r = registry();
    MutexLock lock(r.mu);
    provider = r.time;
  }
  double t = -1.0;
  if (provider) t = provider();
  if (t >= 0.0) {
    std::fprintf(stderr, "[%9.3f] %-5s %s: %.*s\n", t,
                 std::string(log_level_name(level)).c_str(),
                 std::string(tag).c_str(), static_cast<int>(message.size()),
                 message.data());
  } else {
    std::fprintf(stderr, "%-5s %s: %.*s\n",
                 std::string(log_level_name(level)).c_str(),
                 std::string(tag).c_str(), static_cast<int>(message.size()),
                 message.data());
  }
}

}  // namespace

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logging::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel Logging::level() { return g_level.load(std::memory_order_relaxed); }

void Logging::set_sink(Sink sink) {
  SinkRegistry& r = registry();
  MutexLock lock(r.mu);
  r.sink = std::move(sink);
}

void Logging::set_time_provider(TimeProvider provider) {
  SinkRegistry& r = registry();
  MutexLock lock(r.mu);
  r.time = std::move(provider);
}

void Logging::log(LogLevel level, std::string_view tag,
                  std::string_view message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  Sink sink_copy;
  {
    SinkRegistry& r = registry();
    MutexLock lock(r.mu);
    sink_copy = r.sink;
  }
  if (sink_copy) {
    sink_copy(level, tag, message);
  } else {
    stderr_sink(level, tag, message);
  }
}

}  // namespace hoh::common
