#pragma once

#include <cstdint>

/// \file units.h
/// Unit conventions used across the codebase:
///   * memory    : MiB (std::int64_t)
///   * data size : bytes (std::int64_t), helpers for KiB/MiB/GiB
///   * time      : seconds (double) on the simulation clock
///   * bandwidth : bytes per second (double)
/// Keeping scalar types with documented units (rather than heavy strong
/// types) matches what the schedulers and cost models compute with, while
/// the helpers below keep literals readable.

namespace hoh::common {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

/// Memory expressed in MiB.
using MemoryMb = std::int64_t;

/// Data sizes expressed in bytes.
using Bytes = std::int64_t;

/// Simulation time in seconds.
using Seconds = double;

/// Bandwidth in bytes/second.
using BytesPerSec = double;

constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kKiB;
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kMiB;
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kGiB;
}

/// Converts a byte count to MiB, rounding down.
constexpr MemoryMb bytes_to_mb(Bytes b) { return b / kMiB; }

/// Converts MiB to bytes.
constexpr Bytes mb_to_bytes(MemoryMb mb) { return mb * kMiB; }

}  // namespace hoh::common
