#include "common/statistics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hoh::common {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double median(std::vector<double> samples) {
  return percentile(std::move(samples), 0.5);
}

std::string summarize(const RunningStats& stats) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f sd=%.3f min=%.3f max=%.3f", stats.count(),
                stats.mean(), stats.stddev(), stats.min(), stats.max());
  return buf;
}

}  // namespace hoh::common
