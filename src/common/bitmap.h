#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

/// \file bitmap.h
/// Word-packed bitmap for resource accounting (DESIGN.md §13) — the
/// SLURM job_resources idiom: node availability lives in one bit per
/// node, so "how many nodes are free" is a popcount sweep and "lowest
/// free node" is a count-trailing-zeros scan instead of a per-node
/// linear walk over vector<bool> or shared_ptr tables.

namespace hoh::common {

class Bitmap {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit Bitmap(std::size_t size = 0, bool value = false) {
    assign(size, value);
  }

  void assign(std::size_t size, bool value) {
    size_ = size;
    words_.assign((size + 63) / 64, value ? ~std::uint64_t{0} : 0);
    trim();
  }

  std::size_t size() const { return size_; }

  bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }

  void reset(std::size_t i) {
    words_[i / 64] &= ~(std::uint64_t{1} << (i % 64));
  }

  /// Number of set bits.
  std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += std::popcount(w);
    return n;
  }

  /// Index of the first set bit at or after \p from; npos if none.
  std::size_t find_first(std::size_t from = 0) const {
    if (from >= size_) return npos;
    std::size_t word = from / 64;
    std::uint64_t bits = words_[word] & (~std::uint64_t{0} << (from % 64));
    for (;;) {
      if (bits != 0) {
        return word * 64 + std::countr_zero(bits);
      }
      if (++word == words_.size()) return npos;
      bits = words_[word];
    }
  }

 private:
  /// Clears bits beyond size_ so count()/find_first() never see them.
  void trim() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hoh::common
