#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace hoh::common {

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = JsonObject{};
  return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
  if (!is_object()) throw NotFoundError("Json::at on non-object: " + key);
  const auto& obj = as_object();
  auto it = obj.find(key);
  if (it == obj.end()) throw NotFoundError("Json key not found: " + key);
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", d);
    out += buf;
  }
}

void indent_to(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    append_number(out, as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const auto& arr = as_array();
    out.push_back('[');
    bool first = true;
    for (const auto& v : arr) {
      if (!first) out.push_back(',');
      first = false;
      indent_to(out, indent, depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    if (!arr.empty()) indent_to(out, indent, depth);
    out.push_back(']');
  } else {
    const auto& obj = as_object();
    out.push_back('{');
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out.push_back(',');
      first = false;
      indent_to(out, indent, depth + 1);
      append_escaped(out, k);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      v.dump_to(out, indent, depth + 1);
    }
    if (!obj.empty()) indent_to(out, indent, depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string view with position.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ConfigError("JSON parse error at offset " + std::to_string(pos_) +
                      ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char next() {
    char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (next() != c) fail(std::string("expected '") + c + "'");
  }

  bool consume_literal(const char* lit) {
    std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      next();
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      next();
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case '"':
          case '\\':
          case '/':
            out.push_back(e);
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = next();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit");
              }
            }
            // Only BMP code points; encode as UTF-8.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') next();
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number: " + token);
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace hoh::common
