#pragma once

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.h"
#include "common/random.h"
#include "common/units.h"

/// \file retry.h
/// Retry/backoff vocabulary shared by every recovery path in the stack
/// (task re-execution, unit requeue, pilot resubmission). A RetryPolicy
/// is the budget — max attempts, exponential backoff with jitter, an
/// optional per-attempt timeout — and RetryableOp drives one operation
/// through that budget on a simulation engine, so recovery timing is
/// part of the deterministic event schedule rather than wall-clock code.

namespace hoh::common {

/// Retry budget: how many attempts, how long to wait between them.
struct RetryPolicy {
  /// Total attempts including the first one; 1 = no retries.
  int max_attempts = 3;

  /// Backoff before retry k (k = 1 after the first failure) is
  /// base_backoff * multiplier^(k-1), capped at max_backoff, then
  /// scaled by a uniform jitter factor in [1-jitter, 1+jitter].
  Seconds base_backoff = 1.0;
  double multiplier = 2.0;
  Seconds max_backoff = 120.0;
  double jitter = 0.1;

  /// Per-attempt timeout; 0 disables it. A RetryableOp attempt that has
  /// neither succeeded nor failed by then counts as failed.
  Seconds attempt_timeout = 0.0;

  /// Throws ConfigError on nonsense values.
  void validate() const {
    if (max_attempts < 1) {
      throw ConfigError("RetryPolicy: max_attempts must be >= 1");
    }
    if (base_backoff < 0.0 || max_backoff < 0.0 || attempt_timeout < 0.0) {
      throw ConfigError("RetryPolicy: backoffs/timeout must be >= 0");
    }
    if (multiplier < 1.0) {
      throw ConfigError("RetryPolicy: multiplier must be >= 1");
    }
    if (jitter < 0.0 || jitter >= 1.0) {
      throw ConfigError("RetryPolicy: jitter must be in [0, 1)");
    }
  }

  /// True while attempt number \p next_attempt (1-based) is inside the
  /// budget.
  bool allows(int next_attempt) const { return next_attempt <= max_attempts; }

  /// Backoff before retry \p retry_number (1-based: the wait after the
  /// retry_number-th failure). Jitter is drawn from \p rng so replays
  /// with the same seed produce the same schedule.
  Seconds backoff_for(int retry_number, Rng& rng) const {
    const int k = std::max(1, retry_number);
    Seconds delay =
        base_backoff * std::pow(multiplier, static_cast<double>(k - 1));
    delay = std::min(delay, max_backoff);
    if (jitter > 0.0 && delay > 0.0) {
      delay *= rng.uniform(1.0 - jitter, 1.0 + jitter);
    }
    return delay;
  }
};

/// Drives one asynchronous operation through a RetryPolicy on a
/// sim-style engine (anything with schedule(delay, fn) -> handle and
/// cancel(handle)). The attempt callback starts the work; the component
/// reports the outcome back through succeed()/fail(). Failures within
/// budget schedule the next attempt after the policy backoff; a
/// per-attempt timeout (when configured) counts as a failure, and a late
/// succeed()/fail() from a timed-out attempt is ignored.
template <typename Engine>
class RetryableOp {
 public:
  /// \p attempt receives the 1-based attempt number. \p on_finished
  /// fires exactly once with (succeeded, attempts_used).
  RetryableOp(Engine& engine, RetryPolicy policy, Rng& rng,
              std::function<void(int attempt)> attempt,
              std::function<void(bool ok, int attempts)> on_finished = nullptr)
      : engine_(engine),
        policy_(policy),
        rng_(rng),
        attempt_(std::move(attempt)),
        on_finished_(std::move(on_finished)) {
    policy_.validate();
    if (!attempt_) {
      throw ConfigError("RetryableOp: attempt callback must be set");
    }
  }

  ~RetryableOp() { cancel(); }

  RetryableOp(const RetryableOp&) = delete;
  RetryableOp& operator=(const RetryableOp&) = delete;

  /// Launches attempt 1 immediately (synchronously).
  void start() {
    if (started_ || finished_) return;
    started_ = true;
    begin_attempt();
  }

  /// The current attempt succeeded: the op is finished.
  void succeed() { resolve(true); }

  /// The current attempt failed: back off and retry, or exhaust.
  void fail() { resolve(false); }

  /// Abandons the op; no further attempts, on_finished never fires.
  void cancel() {
    finished_ = true;
    engine_.cancel(timeout_event_);
    engine_.cancel(retry_event_);
  }

  int attempts_started() const { return attempts_; }
  bool finished() const { return finished_; }
  bool succeeded() const { return succeeded_; }

 private:
  void begin_attempt() {
    ++attempts_;
    ++epoch_;
    attempt_open_ = true;
    if (policy_.attempt_timeout > 0.0) {
      const int my_epoch = epoch_;
      timeout_event_ = engine_.schedule(policy_.attempt_timeout, [this,
                                                                  my_epoch] {
        if (finished_ || my_epoch != epoch_ || !attempt_open_) return;
        resolve(false);
      });
    }
    attempt_(attempts_);
  }

  void resolve(bool ok) {
    if (finished_ || !attempt_open_) return;  // stale or already settled
    attempt_open_ = false;
    engine_.cancel(timeout_event_);
    if (ok) {
      finished_ = true;
      succeeded_ = true;
      if (on_finished_) on_finished_(true, attempts_);
      return;
    }
    if (!policy_.allows(attempts_ + 1)) {
      finished_ = true;
      if (on_finished_) on_finished_(false, attempts_);
      return;
    }
    retry_event_ = engine_.schedule(policy_.backoff_for(attempts_, rng_),
                                    [this] {
                                      if (finished_) return;
                                      begin_attempt();
                                    });
  }

  Engine& engine_;
  RetryPolicy policy_;
  Rng& rng_;
  std::function<void(int)> attempt_;
  std::function<void(bool, int)> on_finished_;
  decltype(std::declval<Engine&>().schedule(
      Seconds{}, std::function<void()>{})) timeout_event_{};
  decltype(std::declval<Engine&>().schedule(
      Seconds{}, std::function<void()>{})) retry_event_{};
  int attempts_ = 0;
  int epoch_ = 0;
  bool started_ = false;
  bool attempt_open_ = false;
  bool finished_ = false;
  bool succeeded_ = false;
};

}  // namespace hoh::common
