#pragma once

#include <cstddef>
#include <string>
#include <vector>

/// \file statistics.h
/// Small statistics helpers used by benchmarks and the trace analyzer:
/// a streaming accumulator (Welford) and batch percentile/summary
/// utilities.

namespace hoh::common {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample set using linear interpolation; \p q in [0,1].
/// The input is copied and sorted. Empty input returns 0.
double percentile(std::vector<double> samples, double q);

/// Median convenience wrapper.
double median(std::vector<double> samples);

/// One-line human-readable summary: "n=.. mean=.. sd=.. min=.. max=..".
std::string summarize(const RunningStats& stats);

}  // namespace hoh::common
