#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace hoh::common {

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::normal_at_least(double mean, double stddev, double lo) {
  return std::max(lo, normal(mean, stddev));
}

double Rng::exponential(double mean) {
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::lognormal(double median, double sigma) {
  std::lognormal_distribution<double> d(std::log(median), sigma);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace hoh::common
