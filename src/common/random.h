#pragma once

#include <cstdint>
#include <random>
#include <vector>

/// \file random.h
/// Deterministic random-number facade. Every stochastic component takes an
/// Rng (or a seed) explicitly so whole-system simulations replay exactly.

namespace hoh::common {

/// Seedable RNG wrapper around mt19937_64 with the handful of
/// distributions the simulators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Normal truncated at \p lo (values below are clamped).
  double normal_at_least(double mean, double stddev, double lo);

  /// Exponential with the given mean (not rate).
  double exponential(double mean);

  /// Log-normal parameterized by the *resulting* median and sigma.
  double lognormal(double median, double sigma);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Direct access for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hoh::common
