#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// \file string_util.h
/// Small string helpers shared across modules.

namespace hoh::common {

/// Splits on a single-character delimiter; empty tokens are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins tokens with a separator.
std::string join(const std::vector<std::string>& tokens,
                 std::string_view sep);

/// True if \p s starts with \p prefix.
bool starts_with(std::string_view s, std::string_view prefix);

/// Strips leading and trailing whitespace.
std::string trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "1.5 GiB".
std::string format_bytes(std::int64_t bytes);

/// Human-readable duration, e.g. "2m03s" or "45.2s".
std::string format_seconds(double seconds);

}  // namespace hoh::common
