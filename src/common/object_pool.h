#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <new>
#include <vector>

/// \file object_pool.h
/// Slab-arena allocation for high-churn simulation objects (DESIGN.md
/// §13). A web-scale run allocates and frees millions of short-lived
/// records — engine events, Compute-Unit records, queue entries — and
/// the general-purpose heap dominates the profile long before the model
/// does. A SlabArena hands out fixed-size blocks carved from large
/// slabs and recycles them through per-size free lists: steady-state
/// acquire/release is a pointer pop/push with no malloc traffic.
///
/// Single-threaded by design: every user is an actor on the one
/// simulation engine thread. Do not share an arena across threads.

namespace hoh::common {

/// Bump-pointer slab allocator with per-size-class free lists. Blocks
/// are recycled, slabs are only released when the arena dies; peak
/// footprint is the high-water mark of live objects, not the total
/// number ever allocated.
class SlabArena {
 public:
  explicit SlabArena(std::size_t slab_bytes = 64 * 1024)
      : slab_bytes_(slab_bytes < 1024 ? 1024 : slab_bytes) {}

  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  /// Returns a block of at least \p bytes, recycled if one of this size
  /// class is free. Blocks larger than a slab fall through to the heap.
  void* acquire(std::size_t bytes) {
    const std::size_t size = size_class(bytes);
    if (size > slab_bytes_) return ::operator new(size);
    FreeNode*& head = free_[size];
    if (head != nullptr) {
      FreeNode* node = head;
      head = node->next;
      ++live_;
      return node;
    }
    if (slab_used_ + size > slab_bytes_ || slabs_.empty()) {
      slabs_.push_back(std::make_unique<std::byte[]>(slab_bytes_));
      slab_used_ = 0;
    }
    void* p = slabs_.back().get() + slab_used_;
    slab_used_ += size;
    ++live_;
    return p;
  }

  /// Returns a block to its size class's free list. \p bytes must match
  /// the acquire() request.
  void release(void* p, std::size_t bytes) {
    const std::size_t size = size_class(bytes);
    if (size > slab_bytes_) {
      ::operator delete(p);
      return;
    }
    FreeNode*& head = free_[size];
    auto* node = static_cast<FreeNode*>(p);
    node->next = head;
    head = node;
    --live_;
  }

  /// Blocks currently handed out (slab-backed size classes only).
  std::size_t live() const { return live_; }

  std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  /// Rounds up so every block can hold a FreeNode and stays max-aligned.
  static std::size_t size_class(std::size_t bytes) {
    const std::size_t unit = alignof(std::max_align_t);
    std::size_t size = bytes < sizeof(FreeNode) ? sizeof(FreeNode) : bytes;
    return (size + unit - 1) / unit * unit;
  }

  std::size_t slab_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::size_t slab_used_ = 0;
  std::size_t live_ = 0;
  std::map<std::size_t, FreeNode*> free_;  // size class -> recycled blocks
};

/// std-allocator adapter over a shared SlabArena, usable with
/// std::allocate_shared so a record and its control block land in one
/// recycled slab block. Copies share the arena; the shared_ptr keeps the
/// arena alive until the last block is returned, so pooled objects may
/// outlive the actor that created them.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(std::shared_ptr<SlabArena> arena)
      : arena_(std::move(arena)) {}

  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->acquire(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) { arena_->release(p, n * sizeof(T)); }

  const std::shared_ptr<SlabArena>& arena() const { return arena_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const {
    return !(*this == other);
  }

 private:
  std::shared_ptr<SlabArena> arena_;
};

}  // namespace hoh::common
