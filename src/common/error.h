#pragma once

#include <stdexcept>
#include <string>

/// \file error.h
/// Exception hierarchy shared by every hoh library. Components throw these
/// for programmer errors and unrecoverable misconfiguration; recoverable
/// runtime outcomes (a failed task, a preempted container) are modelled as
/// states, never as exceptions.

namespace hoh::common {

/// Base class for all exceptions thrown by hoh libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// An operation was attempted on an entity in an incompatible lifecycle
/// state (e.g. submitting a unit to a cancelled pilot).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// A description or configuration failed validation.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A named entity (job, pilot, unit, file, node) was not found.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// A resource request can never be satisfied (e.g. a container larger than
/// any node in the cluster).
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what) : Error(what) {}
};

}  // namespace hoh::common
