#include "common/string_util.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace hoh::common {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& tokens,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i) out += sep;
    out += tokens[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string format_bytes(std::int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (std::abs(v) >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  if (u == 0) return strformat("%lld B", static_cast<long long>(bytes));
  return strformat("%.1f %s", v, units[u]);
}

std::string format_seconds(double seconds) {
  if (seconds < 60.0) return strformat("%.1fs", seconds);
  const int mins = static_cast<int>(seconds / 60.0);
  const double rem = seconds - mins * 60.0;
  if (mins < 60) return strformat("%dm%04.1fs", mins, rem);
  const int hours = mins / 60;
  return strformat("%dh%02dm%02.0fs", hours, mins % 60, rem);
}

}  // namespace hoh::common
