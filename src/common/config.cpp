#include "common/config.h"

#include <cstdlib>

#include "common/error.h"
#include "common/string_util.h"

namespace hoh::common {

void Config::set(const std::string& key, std::string value) {
  values_[key] = std::move(value);
}

void Config::set_int(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}

void Config::set_double(const std::string& key, double value) {
  values_[key] = strformat("%.10g", value);
}

void Config::set_bool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Config::contains(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string Config::get(const std::string& key,
                        const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw ConfigError("config key '" + key + "' is not an integer: '" +
                      it->second + "'");
  }
  return v;
}

double Config::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw ConfigError("config key '" + key + "' is not a number: '" +
                      it->second + "'");
  }
  return v;
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw ConfigError("config key '" + key + "' is not a bool: '" +
                    it->second + "'");
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::string Config::to_xml() const {
  std::string out = "<?xml version=\"1.0\"?>\n<configuration>\n";
  for (const auto& [k, v] : values_) {
    out += "  <property>\n    <name>" + k + "</name>\n    <value>" + v +
           "</value>\n  </property>\n";
  }
  out += "</configuration>\n";
  return out;
}

std::string Config::to_properties() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    out += k + "=" + v + "\n";
  }
  return out;
}

}  // namespace hoh::common
