#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

/// \file logging.h
/// Lightweight leveled logger. Components log with a tag (their module
/// name); the global sink decides what is emitted. The default sink writes
/// to stderr; tests can install a capture sink. A simulation-time provider
/// can be registered so log lines carry the virtual clock instead of wall
/// time.

namespace hoh::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns a short name ("DEBUG", "INFO", ...) for a level.
std::string_view log_level_name(LogLevel level);

/// Global logging configuration. All methods are thread-safe.
class Logging {
 public:
  using Sink = std::function<void(LogLevel, std::string_view tag,
                                  std::string_view message)>;
  using TimeProvider = std::function<double()>;

  /// Minimum level that is emitted (default: kWarn, so tests stay quiet).
  static void set_level(LogLevel level);
  static LogLevel level();

  /// Replaces the output sink. Passing nullptr restores the stderr sink.
  static void set_sink(Sink sink);

  /// Registers a virtual-clock provider used to stamp messages; pass
  /// nullptr to clear. Typically wired to sim::Engine::now.
  static void set_time_provider(TimeProvider provider);

  /// Emits a message if \p level passes the filter.
  static void log(LogLevel level, std::string_view tag,
                  std::string_view message);
};

/// Per-component logger handle; cheap to copy.
class Logger {
 public:
  explicit Logger(std::string tag) : tag_(std::move(tag)) {}

  void debug(std::string_view msg) const {
    Logging::log(LogLevel::kDebug, tag_, msg);
  }
  void info(std::string_view msg) const {
    Logging::log(LogLevel::kInfo, tag_, msg);
  }
  void warn(std::string_view msg) const {
    Logging::log(LogLevel::kWarn, tag_, msg);
  }
  void error(std::string_view msg) const {
    Logging::log(LogLevel::kError, tag_, msg);
  }

  const std::string& tag() const { return tag_; }

 private:
  std::string tag_;
};

}  // namespace hoh::common
