#pragma once

#include <condition_variable>
#include <mutex>

/// \file thread_annotations.h
/// Clang thread-safety annotations (-Wthread-safety) plus the annotated
/// capability types the rest of the codebase uses instead of naked
/// std::mutex / std::lock_guard. Under Clang the HOH_* macros expand to
/// the `thread_safety` attributes and the analysis enforces, at compile
/// time, that every GUARDED_BY field is only touched with its mutex held
/// and that every REQUIRES method is only called under the right lock.
/// Under other compilers the macros expand to nothing and the wrappers
/// cost exactly one forwarded call.
///
/// Usage pattern:
///
///   class Worker {
///     void drain() HOH_EXCLUDES(mu_);
///    private:
///     common::Mutex mu_;
///     std::deque<Job> queue_ HOH_GUARDED_BY(mu_);
///   };
///
///   void Worker::drain() {
///     common::MutexLock lock(mu_);
///     queue_.clear();
///   }
///
/// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the full
/// attribute semantics. tools/lint/check_concurrency.py rejects naked
/// std::mutex in src/ so new code cannot bypass the analysis.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HOH_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HOH_THREAD_ANNOTATION
#define HOH_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

/// Marks a type as a lockable capability ("mutex" names the kind).
#define HOH_CAPABILITY(x) HOH_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability for its whole lifetime.
#define HOH_SCOPED_CAPABILITY HOH_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written with the given capability held.
#define HOH_GUARDED_BY(x) HOH_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* is guarded by the given capability.
#define HOH_PT_GUARDED_BY(x) HOH_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define HOH_REQUIRES(...) \
  HOH_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called *without* the capability held (deadlock guard).
#define HOH_EXCLUDES(...) HOH_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define HOH_ACQUIRE(...) \
  HOH_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define HOH_RELEASE(...) \
  HOH_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define HOH_TRY_ACQUIRE(...) \
  HOH_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Declares a lock-ordering edge: this mutex is acquired after \p x.
#define HOH_ACQUIRED_AFTER(...) \
  HOH_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model; use sparingly and
/// justify with a comment.
#define HOH_NO_THREAD_SAFETY_ANALYSIS \
  HOH_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Function returns a reference to the given capability.
#define HOH_RETURN_CAPABILITY(x) HOH_THREAD_ANNOTATION(lock_returned(x))

namespace hoh::common {

/// Annotated mutex. Identical to std::mutex at runtime; under Clang the
/// analysis tracks it as a capability so GUARDED_BY / REQUIRES are
/// enforced at compile time.
class HOH_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HOH_ACQUIRE() { mu_.lock(); }
  void unlock() HOH_RELEASE() { mu_.unlock(); }
  bool try_lock() HOH_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated scoped lock (the std::lock_guard replacement).
class HOH_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HOH_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HOH_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() is annotated REQUIRES so
/// the analysis checks the caller holds the mutex; the predicate loop
/// stays at the call site (`while (!pred()) cv.wait(mu);`), which keeps
/// guarded reads inside the analyzed function body rather than inside an
/// unannotated lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) HOH_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hoh::common
