#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

/// \file thread_pool.h
/// Fixed-size thread pool used by the *real* execution engines (the
/// threaded MapReduce engine, the mini-RDD engine, native K-Means). The
/// simulated components never touch it — they run on the single-threaded
/// discrete-event engine.

namespace hoh::common {

/// Fixed-size FIFO thread pool. Tasks may themselves submit tasks.
/// Destruction drains the queue (waits for all submitted work).
class ThreadPool {
 public:
  /// \p num_threads 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// Work is split into contiguous chunks claimed from one shared job
  /// slot (zero-alloc steady state: no per-chunk queue entries or
  /// closures). Nested or concurrent calls run inline on the caller.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Blocks until the queue is empty and no worker is running a task.
  /// Quiesce point for drain paths and tests; the pool stays usable.
  /// Note: tasks submitted *while* waiting extend the wait.
  void wait_idle() HOH_EXCLUDES(mutex_);

  // --- monitoring counters (all read under the pool mutex; callers on
  // other threads see a consistent snapshot, not torn values) ---

  /// Tasks handed to the pool so far (including still-queued ones).
  std::size_t tasks_submitted() const HOH_EXCLUDES(mutex_);

  /// Tasks that finished running (normally or by throwing).
  std::size_t tasks_completed() const HOH_EXCLUDES(mutex_);

  /// Tasks waiting in the queue right now.
  std::size_t queue_depth() const HOH_EXCLUDES(mutex_);

 private:
  void enqueue(std::function<void()> job) HOH_EXCLUDES(mutex_);
  void worker_loop();

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ HOH_GUARDED_BY(mutex_);
  std::size_t active_ HOH_GUARDED_BY(mutex_) = 0;
  bool stopping_ HOH_GUARDED_BY(mutex_) = false;
  std::size_t tasks_submitted_ HOH_GUARDED_BY(mutex_) = 0;
  std::size_t tasks_completed_ HOH_GUARDED_BY(mutex_) = 0;

  // The shared parallel_for job slot (object-pool style: one reusable
  // record instead of one heap closure per chunk). While pf_active_,
  // workers and the caller claim [pf_next_, pf_next_ + pf_chunk_) ranges
  // under the pool mutex and run them unlocked; the caller owns the fn
  // and blocks until pf_running_ drains, so the pointer stays valid.
  CondVar pf_cv_;
  const std::function<void(std::size_t)>* pf_fn_ HOH_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t pf_n_ HOH_GUARDED_BY(mutex_) = 0;
  std::size_t pf_chunk_ HOH_GUARDED_BY(mutex_) = 0;
  std::size_t pf_next_ HOH_GUARDED_BY(mutex_) = 0;
  std::size_t pf_running_ HOH_GUARDED_BY(mutex_) = 0;
  bool pf_active_ HOH_GUARDED_BY(mutex_) = false;
  std::exception_ptr pf_error_ HOH_GUARDED_BY(mutex_);
};

}  // namespace hoh::common
