#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// Fixed-size thread pool used by the *real* execution engines (the
/// threaded MapReduce engine, the mini-RDD engine, native K-Means). The
/// simulated components never touch it — they run on the single-threaded
/// discrete-event engine.

namespace hoh::common {

/// Fixed-size FIFO thread pool. Tasks may themselves submit tasks.
/// Destruction drains the queue (waits for all submitted work).
class ThreadPool {
 public:
  /// \p num_threads 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and blocks until done.
  /// Work is split into contiguous chunks, one per worker.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Blocks until the queue is empty and no worker is running a task.
  /// Quiesce point for drain paths and tests; the pool stays usable.
  /// Note: tasks submitted *while* waiting extend the wait.
  void wait_idle();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace hoh::common
