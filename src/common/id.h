#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

/// \file id.h
/// Small typed-id helpers. Every managed entity (pilot, unit, job,
/// container, block, ...) carries a human-readable string id with a
/// component prefix, e.g. "pilot.0003" or "container_07_000012".

namespace hoh::common {

/// Monotonic per-prefix id generator.
///
/// Thread-safety: the counter is an explicit std::atomic and the prefix
/// is immutable after construction, so next()/issued() are safe from any
/// thread without a lock — two threads can never draw the same id
/// (fetch_add hands out distinct values). Relaxed ordering suffices:
/// uniqueness needs atomicity of the increment only, and no other memory
/// is published through the counter. tests/common_id_test.cpp stresses
/// this with concurrent generators.
class IdGenerator {
 public:
  explicit IdGenerator(std::string prefix) : prefix_(std::move(prefix)) {}

  IdGenerator(const IdGenerator&) = delete;
  IdGenerator& operator=(const IdGenerator&) = delete;

  /// Returns e.g. "pilot.0000", "pilot.0001", ...
  std::string next() {
    const std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ".%04llu",
                  static_cast<unsigned long long>(n));
    return prefix_ + buf;
  }

  /// Number of ids handed out so far.
  std::uint64_t issued() const {
    return counter_.load(std::memory_order_relaxed);
  }

 private:
  const std::string prefix_;
  std::atomic<std::uint64_t> counter_{0};
};

}  // namespace hoh::common
