#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace hoh::sim {

void Engine::push_entry(Seconds at, std::uint64_t id) {
  queue_.push_back(Entry{at, next_seq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), EntryCompare{});
}

void Engine::pop_entry() {
  std::pop_heap(queue_.begin(), queue_.end(), EntryCompare{});
  queue_.pop_back();
}

EventHandle Engine::schedule(Seconds delay, Callback fn) {
  if (delay < 0.0) {
    throw common::ConfigError("Engine::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Engine::schedule_at(Seconds at, Callback fn) {
  if (at < now_) {
    throw common::ConfigError("Engine::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  callbacks_.emplace(id, std::move(fn));
  push_entry(at, id);
  return EventHandle(id);
}

EventHandle Engine::schedule_periodic(Seconds period, Callback fn) {
  if (period <= 0.0) {
    throw common::ConfigError("Engine::schedule_periodic: period must be > 0");
  }
  const std::uint64_t id = next_id_++;
  periodics_.emplace(id, Periodic{period, std::move(fn)});
  // The periodic's queue entries reuse the same id; firing re-schedules.
  callbacks_.emplace(id, [this, id] {
    auto it = periodics_.find(id);
    if (it == periodics_.end()) return;
    // Re-arm first so the callback can cancel its own series. Copy the
    // callback out of the map: cancel() from within the callback erases
    // the map node, which must not destroy the std::function mid-call.
    push_entry(now_ + it->second.period, id);
    Callback user_fn = it->second.fn;
    user_fn();
  });
  push_entry(now_ + period, id);
  return EventHandle(id);
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  bool erased = false;
  if (callbacks_.erase(handle.id_) > 0) {
    ++cancelled_pending_;
    erased = true;
  }
  if (periodics_.erase(handle.id_) > 0) erased = true;
  // Compact once dead entries dominate, so workloads that arm and
  // supersede many lease timers keep the heap (and pop cost) bounded by
  // live work, not by cancellation history.
  if (cancelled_pending_ * 2 > queue_.size()) compact();
  return erased;
}

void Engine::compact() {
  std::erase_if(queue_, [this](const Entry& e) {
    return callbacks_.find(e.id) == callbacks_.end();
  });
  std::make_heap(queue_.begin(), queue_.end(), EntryCompare{});
  cancelled_pending_ = 0;
  ++compactions_;
}

bool Engine::pop_and_run() {
  while (!queue_.empty()) {
    Entry e = queue_.front();
    pop_entry();
    auto it = callbacks_.find(e.id);
    if (it == callbacks_.end()) {
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;  // cancelled
    }
    now_ = e.at;
    const bool periodic = periodics_.count(e.id) > 0;
    Callback fn;
    if (periodic) {
      fn = it->second;  // keep registered for the next firing
    } else {
      fn = std::move(it->second);
      callbacks_.erase(it);
    }
    ++executed_;
    fn();
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_and_run()) ++n;
  return n;
}

std::size_t Engine::run_until(Seconds until) {
  std::size_t n = 0;
  for (;;) {
    // Peek for the next live event.
    while (!queue_.empty() && callbacks_.count(queue_.front().id) == 0) {
      pop_entry();
      if (cancelled_pending_ > 0) --cancelled_pending_;
    }
    if (queue_.empty() || queue_.front().at > until) break;
    if (!pop_and_run()) break;
    ++n;
  }
  if (now_ < until && (queue_.empty() || queue_.front().at > until)) {
    now_ = until;
  }
  return n;
}

bool Engine::step() { return pop_and_run(); }

DeadlineTimer::DeadlineTimer(Engine& engine, Engine::Callback fn) {
  bind(engine, std::move(fn));
}

DeadlineTimer::~DeadlineTimer() { cancel(); }

void DeadlineTimer::bind(Engine& engine, Engine::Callback fn) {
  cancel();
  engine_ = &engine;
  fn_ = std::move(fn);
}

void DeadlineTimer::arm(Seconds delay) {
  if (engine_ == nullptr) {
    throw common::ConfigError("DeadlineTimer::arm: not bound to an engine");
  }
  arm_at(engine_->now() + delay);
}

void DeadlineTimer::arm_at(Seconds at) {
  if (engine_ == nullptr) {
    throw common::ConfigError("DeadlineTimer::arm_at: not bound to an engine");
  }
  cancel();
  event_ = engine_->schedule_at(at, [this] {
    armed_ = false;
    event_ = EventHandle{};
    fn_();
  });
  deadline_ = at;
  armed_ = true;
}

void DeadlineTimer::cancel() {
  if (armed_ && engine_ != nullptr) {
    engine_->cancel(event_);
  }
  event_ = EventHandle{};
  armed_ = false;
}

}  // namespace hoh::sim
