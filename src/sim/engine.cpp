#include "sim/engine.h"

#include <algorithm>
#include <utility>

#include "common/error.h"

namespace hoh::sim {

void Engine::push_entry(Seconds at, std::uint64_t id) {
  queue_.push_back(Entry{at, next_seq_++, id});
  std::push_heap(queue_.begin(), queue_.end(), EntryCompare{});
}

void Engine::pop_entry() {
  std::pop_heap(queue_.begin(), queue_.end(), EntryCompare{});
  queue_.pop_back();
}

EventHandle Engine::schedule(Seconds delay, Callback fn) {
  if (delay < 0.0) {
    throw common::ConfigError("Engine::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

std::uint64_t Engine::alloc_slot(Callback fn, bool periodic, Seconds period) {
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.live = true;
  slot.periodic = periodic;
  slot.period = period;
  return (static_cast<std::uint64_t>(index) << 32) | slot.gen;
}

void Engine::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.fn = nullptr;
  slot.live = false;
  slot.periodic = false;
  ++slot.gen;
  if (slot.gen == 0) slot.gen = 1;  // keep ids nonzero on wrap
  free_slots_.push_back(index);
}

Engine::Slot* Engine::resolve(std::uint64_t id) {
  const auto index = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (index >= slots_.size()) return nullptr;
  Slot& slot = slots_[index];
  return (slot.live && slot.gen == gen) ? &slot : nullptr;
}

EventHandle Engine::schedule_at(Seconds at, Callback fn) {
  if (at < now_) {
    throw common::ConfigError("Engine::schedule_at: time in the past");
  }
  const std::uint64_t id = alloc_slot(std::move(fn), false, 0.0);
  push_entry(at, id);
  return EventHandle(id);
}

EventHandle Engine::schedule_periodic(Seconds period, Callback fn) {
  if (period <= 0.0) {
    throw common::ConfigError("Engine::schedule_periodic: period must be > 0");
  }
  // The periodic's queue entries reuse the same id; firing re-schedules.
  const std::uint64_t id = alloc_slot(std::move(fn), true, period);
  push_entry(now_ + period, id);
  return EventHandle(id);
}

bool Engine::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  Slot* slot = resolve(handle.id_);
  if (slot == nullptr) return false;  // already fired or cancelled
  release_slot(static_cast<std::uint32_t>(handle.id_ >> 32));
  ++cancelled_pending_;
  // Compact once dead entries dominate, so workloads that arm and
  // supersede many lease timers keep the heap (and pop cost) bounded by
  // live work, not by cancellation history.
  if (cancelled_pending_ * 2 > queue_.size()) compact();
  return true;
}

void Engine::compact() {
  std::erase_if(queue_,
                [this](const Entry& e) { return resolve(e.id) == nullptr; });
  std::make_heap(queue_.begin(), queue_.end(), EntryCompare{});
  cancelled_pending_ = 0;
  ++compactions_;
}

bool Engine::pop_and_run() {
  while (!queue_.empty()) {
    Entry e = queue_.front();
    pop_entry();
    Slot* slot = resolve(e.id);
    if (slot == nullptr) {
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;  // cancelled
    }
    now_ = e.at;
    ++executed_;
    if (slot->periodic) {
      // Re-arm first so the callback can cancel its own series. Copy the
      // callback out of the slot: cancel() from within the callback (or
      // new events growing the slot vector) must not destroy or move the
      // std::function mid-call.
      push_entry(now_ + slot->period, e.id);
      Callback fn = slot->fn;
      fn();
    } else {
      Callback fn = std::move(slot->fn);
      release_slot(static_cast<std::uint32_t>(e.id >> 32));
      fn();
    }
    return true;
  }
  return false;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && pop_and_run()) ++n;
  return n;
}

std::size_t Engine::run_until(Seconds until) {
  std::size_t n = 0;
  for (;;) {
    // Peek for the next live event.
    while (!queue_.empty() && resolve(queue_.front().id) == nullptr) {
      pop_entry();
      if (cancelled_pending_ > 0) --cancelled_pending_;
    }
    if (queue_.empty() || queue_.front().at > until) break;
    if (!pop_and_run()) break;
    ++n;
  }
  if (now_ < until && (queue_.empty() || queue_.front().at > until)) {
    now_ = until;
  }
  return n;
}

bool Engine::step() { return pop_and_run(); }

DeadlineTimer::DeadlineTimer(Engine& engine, Engine::Callback fn) {
  bind(engine, std::move(fn));
}

DeadlineTimer::~DeadlineTimer() { cancel(); }

void DeadlineTimer::bind(Engine& engine, Engine::Callback fn) {
  cancel();
  engine_ = &engine;
  fn_ = std::move(fn);
}

void DeadlineTimer::arm(Seconds delay) {
  if (engine_ == nullptr) {
    throw common::ConfigError("DeadlineTimer::arm: not bound to an engine");
  }
  arm_at(engine_->now() + delay);
}

void DeadlineTimer::arm_at(Seconds at) {
  if (engine_ == nullptr) {
    throw common::ConfigError("DeadlineTimer::arm_at: not bound to an engine");
  }
  cancel();
  event_ = engine_->schedule_at(at, [this] {
    armed_ = false;
    event_ = EventHandle{};
    fn_();
  });
  deadline_ = at;
  armed_ = true;
}

void DeadlineTimer::cancel() {
  if (armed_ && engine_ != nullptr) {
    engine_->cancel(event_);
  }
  event_ = EventHandle{};
  armed_ = false;
}

}  // namespace hoh::sim
